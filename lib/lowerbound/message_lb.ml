let bound ~t = (t + 1) / 2 * (t / 2)

type audit_result = {
  total_sent : int;
  threshold : int;
  min_received : int * int;
  isolation_threshold : int;
  isolable : int list;
  paid : bool;
}

let audit ~honest_sent ~honest_received ~t =
  let threshold = bound ~t in
  let isolation_threshold = (t + 1) / 2 in
  let min_received =
    Array.to_seqi honest_received
    |> Seq.fold_left
         (fun (bi, bc) (i, c) -> if c < bc then (i, c) else (bi, bc))
         (-1, max_int)
  in
  let isolable =
    Array.to_seqi honest_received
    |> Seq.filter_map (fun (i, c) -> if c < isolation_threshold then Some i else None)
    |> List.of_seq
  in
  {
    total_sent = honest_sent;
    threshold;
    min_received;
    isolation_threshold;
    isolable;
    paid = honest_sent >= threshold || isolable = [];
  }

module Demo = struct
  (* The cheap protocol: sender 0 broadcasts its value in round 1; every
     process decides the value it heard, or the prediction-derived
     default 0 when it heard nothing. One round, n messages - far below
     the bound, so the proof's adversary breaks it. *)

  module R = Bap_sim.Runtime.Make (struct
    type t = int
  end)

  type outcome = {
    good_decisions : (int * int) list;
    bad_decisions : (int * int) list;
    starved : int;
    agreement_broken : bool;
  }

  let cheap_protocol ~sender ~input ctx =
    let me = R.id ctx in
    let inbox =
      if me = sender then R.broadcast ctx input else R.silent_round ctx
    in
    match Bap_sim.Inbox.get inbox sender with v :: _ -> v | [] -> 0

  let run ~n =
    if n < 3 then invalid_arg "Message_lb.Demo.run: n >= 3 required";
    let sender = 0 in
    let q = n - 1 in
    (* E_good: everyone honest, sender input 1, predictions all correct.
       All processes decide 1. *)
    let good =
      R.run ~n ~faulty:[||] ~adversary:Bap_sim.Adversary.passive
        (cheap_protocol ~sender ~input:1)
    in
    (* E_bad: the sender is faulty and behaves exactly as in E_good
       except that it starves q. For q this execution is
       indistinguishable from one in which the (honest) sender never
       spoke and the prediction default applies; for everyone else it is
       indistinguishable from E_good. *)
    let starve_q =
      Bap_sim.Adversary.drop_to (fun recipient -> recipient = q)
    in
    let bad =
      R.run ~n ~faulty:[| sender |] ~adversary:starve_q
        (cheap_protocol ~sender ~input:1)
    in
    let good_decisions = R.honest_decisions good in
    let bad_decisions = R.honest_decisions bad in
    let q_decision = List.assoc q bad_decisions in
    let others_agree_on_one =
      List.for_all (fun (i, v) -> i = q || v = 1) bad_decisions
    in
    {
      good_decisions;
      bad_decisions;
      starved = q;
      agreement_broken = others_agree_on_one && q_decision <> 1;
    }
end
