(** Rendering a lint run against its baseline, human and JSON. *)

val pp_human : Format.formatter -> Baseline.diff -> unit
val to_json : Baseline.diff -> string
