(* Source loading: read an .ml file, parse it with the compiler's own
   parser (compiler-libs, no ppx), and extract waiver comments.

   Waivers are the escape hatch for rules that are deliberately
   conservative: a comment containing

     LINT: waive <RULE-ID> [<RULE-ID>...] <reason>

   on the same line as a finding, or on the line directly above it,
   suppresses those rule ids at that site. The reason is free text but
   socially mandatory — a waiver with no justification should not
   survive review. *)

type t = {
  path : string;  (** Repo-relative path with [/] separators. *)
  text : string;
  structure : Parsetree.structure option;  (** [None] when parsing failed. *)
  parse_error : (int * int * string) option;  (** line, col, message. *)
  waivers : (int * string list) list;  (** line -> waived rule ids. *)
}

let is_rule_id s =
  String.length s = 4
  && s.[0] >= 'A'
  && s.[0] <= 'Z'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 3)

(* Find "LINT: waive" markers line by line. Comment syntax is not
   tracked — the marker is specific enough that a string match is
   exact in practice, and it keeps waivers usable from any position
   (end-of-line, own line, inside a doc comment). *)
let waivers_of_text text =
  let find_marker line =
    let marker = "LINT: waive" in
    let n = String.length line and m = String.length marker in
    let rec scan i =
      if i + m > n then None
      else if String.sub line i m = marker then Some (i + m)
      else scan (i + 1)
    in
    scan 0
  in
  let rule_ids_after line start =
    let words =
      String.split_on_char ' ' (String.sub line start (String.length line - start))
    in
    let rec take acc = function
      | [] -> List.rev acc
      | "" :: rest -> take acc rest
      | w :: rest ->
        let w = String.trim w in
        let w =
          (* allow comma-separated lists: "D003, S001" *)
          if String.length w > 0 && w.[String.length w - 1] = ',' then
            String.sub w 0 (String.length w - 1)
          else w
        in
        if is_rule_id w then take (w :: acc) rest
        else List.rev acc (* ids come first; the rest is the reason *)
    in
    take [] words
  in
  let lines = String.split_on_char '\n' text in
  List.filteri (fun _ _ -> true) lines
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (lnum, line) ->
         match find_marker line with
         | None -> None
         | Some start -> (
           match rule_ids_after line start with
           | [] -> None
           | ids -> Some (lnum, ids)))

let waived t ~rule_id ~line =
  let at l =
    match List.assoc_opt l t.waivers with
    | Some ids -> List.mem rule_id ids
    | None -> false
  in
  at line || at (line - 1)

let parse ~path text =
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure ->
    {
      path;
      text;
      structure = Some structure;
      parse_error = None;
      waivers = waivers_of_text text;
    }
  | exception exn ->
    let pos_of (loc : Location.t) =
      ( loc.Location.loc_start.Lexing.pos_lnum,
        loc.Location.loc_start.Lexing.pos_cnum - loc.Location.loc_start.Lexing.pos_bol
      )
    in
    let line, col, msg =
      match exn with
      | Syntaxerr.Error e ->
        let l, c = pos_of (Syntaxerr.location_of_error e) in
        (l, c, "syntax error")
      | Lexer.Error (_, loc) ->
        let l, c = pos_of loc in
        (l, c, "lexical error")
      | exn -> (1, 0, Printexc.to_string exn)
    in
    {
      path;
      text;
      structure = None;
      parse_error = Some (line, col, msg);
      waivers = waivers_of_text text;
    }

let load ~root rel =
  let full = Filename.concat root rel in
  let ic = open_in_bin full in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse ~path:rel text
