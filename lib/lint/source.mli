(** Source loading and parsing for the linter (compiler-libs parser, no
    ppx), plus waiver-comment extraction.

    A comment containing [LINT: waive <RULE-ID> ... <reason>] on the
    same line as a finding or the line directly above suppresses those
    rule ids at that site. *)

type t = {
  path : string;  (** Repo-relative path with [/] separators. *)
  text : string;
  structure : Parsetree.structure option;  (** [None] when parsing failed. *)
  parse_error : (int * int * string) option;  (** line, col, message. *)
  waivers : (int * string list) list;  (** line -> waived rule ids. *)
}

val parse : path:string -> string -> t
(** Parse source text; never raises (parse failures are recorded in
    [parse_error]). *)

val load : root:string -> string -> t
(** [load ~root rel] reads and parses [root/rel]. *)

val waived : t -> rule_id:string -> line:int -> bool
(** Is this rule waived at this line (same-line or line-above
    comment)? *)

val waivers_of_text : string -> (int * string list) list
