(** The rule catalog's implementation: one Parsetree walk per file.

    Checks are syntactic (no typing pass) and tuned to the repo's
    idioms; see DESIGN.md "Static analysis" for the catalog and
    {!Source} for the waiver-comment escape hatch. *)

val check : Source.t -> Finding.t list
(** All AST-level rules on one parsed file, waivers applied, sorted.
    A file that failed to parse yields a single X001 finding. *)

val check_interfaces : mls:string list -> mlis:string list -> Finding.t list
(** L002: every [.ml] in an interface-complete library (lib/core,
    lib/chaos, lib/lint) must have a sibling [.mli]. Paths are
    repo-relative. *)
