(* A lint finding and the rule catalog it draws from.

   Every rule has a stable id (never reuse a retired one), a severity,
   and a one-line rationale; DESIGN.md carries the long-form catalog.
   Findings are ordered and compared structurally so that reports,
   baselines, and diffs are all deterministic. *)

type severity = Error | Warning

let severity_to_string = function Error -> "error" | Warning -> "warning"

type rule = {
  id : string;
  severity : severity;
  summary : string;  (** One line; the finding message adds specifics. *)
}

(* The catalog. D = determinism, P = cell purity, S = domain safety,
   L = layering / interface hygiene, C = checkability. *)
let catalog =
  [
    {
      id = "D001";
      severity = Error;
      summary =
        "stdlib Random outside lib/sim/rng.ml: all randomness must flow from a \
         seeded Rng stream";
    };
    {
      id = "D002";
      severity = Error;
      summary =
        "wall-clock read (Unix.gettimeofday/Unix.time/Sys.time) outside the \
         timing shims in lib/exec and bin, or a Gc counter read outside the \
         lib/telemetry memprobe";
    };
    {
      id = "D003";
      severity = Error;
      summary =
        "Hashtbl.iter, or Hashtbl.fold whose result is not passed through a \
         sort: iteration order depends on table internals";
    };
    {
      id = "D004";
      severity = Error;
      summary =
        "polymorphic =/compare on a protocol-shaped value, or Hashtbl.hash \
         anywhere: use the domain's equal/compare and an explicit hash";
    };
    {
      id = "D005";
      severity = Error;
      summary = "Marshal outside lib/exec/cache.ml: serialization goes through Wire";
    };
    {
      id = "P001";
      severity = Error;
      summary =
        "printing inside a Plan cell body: cells return rows, rendering is \
         serial by design";
    };
    {
      id = "S001";
      severity = Error;
      summary =
        "top-level mutable state (ref/Hashtbl/lazy/...) in library code runs \
         under the domain pool: use Atomic or waive with a reason";
    };
    {
      id = "L001";
      severity = Error;
      summary =
        "layering: lib/sim and lib/core must not reference Chaos, Exec or \
         Experiments";
    };
    {
      id = "L002";
      severity = Warning;
      summary = "module without an .mli in an interface-complete library";
    };
    {
      id = "C001";
      severity = Error;
      summary =
        "direct Rng draw at an adversary decision point: choices must be \
         expressed as Bap_sim.Decision nodes so bap_check can enumerate them \
         and counterexamples replay deterministically";
    };
    {
      id = "R001";
      severity = Error;
      summary =
        "bare `with _ ->` / `try ... with e -> ()` swallowing exceptions \
         outside the supervisor: failures must surface as typed Cell_failure \
         outcomes";
    };
    {
      id = "X001";
      severity = Error;
      summary = "source file failed to parse";
    };
  ]

let rule id =
  match List.find_opt (fun r -> r.id = id) catalog with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Finding.rule: unknown rule id %s" id)

type t = {
  rule_id : string;
  file : string;  (** Repo-relative path with [/] separators. *)
  line : int;  (** 1-based; 0 for file-level findings. *)
  col : int;  (** 0-based, as in compiler locations. *)
  message : string;
}

let v ~rule_id ~file ~line ~col message =
  ignore (rule rule_id);
  { rule_id; file; line; col; message }

(* (file, line, col, rule) order: report and baseline layout. *)
let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule_id b.rule_id

let severity_of f = (rule f.rule_id).severity

let pp ppf f =
  Fmt.pf ppf "%s:%d:%d: [%s] %s (%s)" f.file f.line f.col f.rule_id f.message
    (severity_to_string (severity_of f))
