(* The grandfather file: a committed JSON list of known findings.

   The gate fails only on findings absent from the baseline, so
   pre-existing debt does not block unrelated PRs while every *new*
   violation does. Entries are keyed on (rule, file, line) — precise
   enough to pin a site, cheap to regenerate with --update-baseline
   when line numbers drift. Stale entries (baselined findings that no
   longer occur) are reported so the file shrinks over time instead of
   fossilizing. *)

type entry = { rule_id : string; file : string; line : int }

let entry_of_finding (f : Finding.t) =
  { rule_id = f.Finding.rule_id; file = f.Finding.file; line = f.Finding.line }

let compare_entry a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c else String.compare a.rule_id b.rule_id

let to_json entries =
  let entry e =
    Printf.sprintf "    {\"rule\": \"%s\", \"file\": \"%s\", \"line\": %d}"
      (Json.escape e.rule_id) (Json.escape e.file) e.line
  in
  Printf.sprintf "{\n  \"version\": 1,\n  \"findings\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.map entry (List.sort_uniq compare_entry entries)))

let of_json text =
  let j = Json.parse text in
  match Json.to_list (Json.member "findings" j) with
  | None -> invalid_arg "lint baseline: missing \"findings\" array"
  | Some es ->
    List.map
      (fun e ->
        match
          ( Json.to_string (Json.member "rule" e),
            Json.to_string (Json.member "file" e),
            Json.to_int (Json.member "line" e) )
        with
        | Some rule_id, Some file, Some line -> { rule_id; file; line }
        | _ -> invalid_arg "lint baseline: malformed entry")
      es

let load path =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    of_json text

let save path findings =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json (List.map entry_of_finding findings)))

type diff = {
  fresh : Finding.t list;  (** Findings not covered by the baseline. *)
  stale : entry list;  (** Baseline entries that no longer fire. *)
  grandfathered : int;  (** Findings matched by the baseline. *)
}

let diff ~baseline findings =
  let covers e (f : Finding.t) =
    e.rule_id = f.Finding.rule_id && e.file = f.Finding.file && e.line = f.Finding.line
  in
  let fresh =
    List.filter (fun f -> not (List.exists (fun e -> covers e f) baseline)) findings
  in
  let stale =
    List.filter (fun e -> not (List.exists (fun f -> covers e f) findings)) baseline
    |> List.sort compare_entry
  in
  {
    fresh = List.sort Finding.compare_finding fresh;
    stale;
    grandfathered = List.length findings - List.length fresh;
  }
