(** Lint findings and the rule catalog.

    Rule ids are stable: a retired id is never reused, and the gate
    keys baseline entries on them. The long-form catalog (rationale,
    how to waive) lives in DESIGN.md. *)

type severity = Error | Warning

val severity_to_string : severity -> string

type rule = {
  id : string;
  severity : severity;
  summary : string;
}

val catalog : rule list

val rule : string -> rule
(** @raise Invalid_argument on an unknown id. *)

type t = {
  rule_id : string;
  file : string;  (** Repo-relative path with [/] separators. *)
  line : int;  (** 1-based; 0 for file-level findings. *)
  col : int;  (** 0-based, as in compiler locations. *)
  message : string;
}

val v : rule_id:string -> file:string -> line:int -> col:int -> string -> t
(** @raise Invalid_argument on an unknown rule id. *)

val compare_finding : t -> t -> int
(** Deterministic report order: file, then line, column, rule id. *)

val severity_of : t -> severity
val pp : t Fmt.t
