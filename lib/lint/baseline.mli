(** The committed grandfather file (lint-baseline.json): pre-existing
    findings the gate tolerates, keyed on (rule, file, line). *)

type entry = { rule_id : string; file : string; line : int }

val entry_of_finding : Finding.t -> entry
val compare_entry : entry -> entry -> int

val load : string -> entry list
(** Missing file means an empty baseline. @raise Invalid_argument or
    {!Json.Parse} on a malformed one. *)

val save : string -> Finding.t list -> unit

val to_json : entry list -> string
val of_json : string -> entry list

type diff = {
  fresh : Finding.t list;  (** Findings not covered by the baseline. *)
  stale : entry list;  (** Baseline entries that no longer fire. *)
  grandfathered : int;  (** Findings matched by the baseline. *)
}

val diff : baseline:entry list -> Finding.t list -> diff
