(* The driver logic behind bin/bap_lint.exe: discover sources, run the
   rule walk on each, add the file-set checks, and keep everything
   deterministic (directory listings are sorted — Sys.readdir order is
   unspecified, and a linter that cares about Hashtbl orderings had
   better not depend on readdir's). *)

let scanned_roots = [ "lib"; "bin"; "test" ]

let rec walk_dir acc dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then acc
  else
    Array.to_list (Sys.readdir dir)
    |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           let full = Filename.concat dir entry in
           if Sys.is_directory full then walk_dir acc full else full :: acc)
         acc

(* Repo-relative paths with '/' separators, sorted. *)
let discover ~root =
  let rel full =
    let root_pfx = Filename.concat root "" in
    let s =
      if String.length full >= String.length root_pfx
         && String.sub full 0 (String.length root_pfx) = root_pfx
      then String.sub full (String.length root_pfx) (String.length full - String.length root_pfx)
      else full
    in
    String.map (fun c -> if c = '\\' then '/' else c) s
  in
  let files =
    List.fold_left (fun acc d -> walk_dir acc (Filename.concat root d)) [] scanned_roots
  in
  let by_ext ext =
    files
    |> List.filter (fun f -> Filename.check_suffix f ext)
    |> List.map rel
    |> List.sort String.compare
  in
  (by_ext ".ml", by_ext ".mli")

let lint_string ~path text = Rules.check (Source.parse ~path text)

let lint_tree ~root =
  let mls, mlis = discover ~root in
  let per_file =
    List.concat_map (fun ml -> Rules.check (Source.load ~root ml)) mls
  in
  let interfaces = Rules.check_interfaces ~mls ~mlis in
  List.sort Finding.compare_finding (per_file @ interfaces)
