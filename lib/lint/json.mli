(** Minimal JSON reader/printer helpers for the repo's committed
    baseline artifacts. Supports exactly the subset those files use; not
    a general-purpose JSON library. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse of string

val parse : string -> t
(** @raise Parse on malformed input. *)

val member : string -> t -> t option
val to_int : t option -> int option
val to_float : t option -> float option
val to_bool : t option -> bool option
val to_string : t option -> string option
val to_list : t option -> t list option

val escape : string -> string
(** Escape a string for embedding between double quotes in JSON
    output. *)
