(* Rendering a lint run: compiler-style human lines (file:line:col so
   editors jump to the site) and a machine-readable --json form. Both
   are emitted in {!Finding.compare_finding} order, so output is a pure
   function of the findings. *)

let pp_human ppf (d : Baseline.diff) =
  List.iter (fun f -> Fmt.pf ppf "%a@." Finding.pp f) d.Baseline.fresh;
  List.iter
    (fun (e : Baseline.entry) ->
      Fmt.pf ppf "stale baseline entry: %s:%d [%s] no longer fires@." e.Baseline.file
        e.Baseline.line e.Baseline.rule_id)
    d.Baseline.stale;
  let verdict =
    match d.Baseline.fresh with
    | [] -> "ok"
    | fresh -> Printf.sprintf "%d new finding(s)" (List.length fresh)
  in
  Fmt.pf ppf "bap_lint: %s, %d grandfathered, %d stale baseline entr(ies)@."
    verdict d.Baseline.grandfathered
    (List.length d.Baseline.stale)

let json_of_finding (f : Finding.t) =
  Printf.sprintf
    "    {\"rule\": \"%s\", \"severity\": \"%s\", \"file\": \"%s\", \"line\": %d, \
     \"col\": %d, \"message\": \"%s\"}"
    (Json.escape f.Finding.rule_id)
    (Finding.severity_to_string (Finding.severity_of f))
    (Json.escape f.Finding.file) f.Finding.line f.Finding.col
    (Json.escape f.Finding.message)

(* The --json document: new findings only (the gate's subject), plus
   counters mirroring the human summary. *)
let to_json (d : Baseline.diff) =
  Printf.sprintf
    "{\n\
    \  \"version\": 1,\n\
    \  \"new\": [\n\
     %s\n\
    \  ],\n\
    \  \"grandfathered\": %d,\n\
    \  \"stale\": %d\n\
     }\n"
    (String.concat ",\n" (List.map json_of_finding d.Baseline.fresh))
    d.Baseline.grandfathered
    (List.length d.Baseline.stale)
