(** Source discovery and whole-tree linting. *)

val scanned_roots : string list
(** Directories under the repo root whose [.ml] files are linted:
    [lib], [bin], [test]. *)

val discover : root:string -> string list * string list
(** Repo-relative (mls, mlis) under {!scanned_roots}, sorted — the walk
    is deterministic regardless of readdir order. *)

val lint_string : path:string -> string -> Finding.t list
(** Lint source text as if it lived at [path] (which selects the
    allowlists). Used by the test fixtures. Interface-presence (L002)
    is a file-set property and is not checked here. *)

val lint_tree : root:string -> Finding.t list
(** Lint every scanned [.ml] plus the file-set checks, sorted. *)
