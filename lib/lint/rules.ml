(* The rule engine: one Parsetree walk per file, a catalog of project
   invariants checked along the way.

   The checks are deliberately syntactic (no typing pass), so each rule
   is tuned to be quiet on the repo's idioms and conservative where the
   type is unknowable; the waiver comment (see {!Source}) is the escape
   hatch when a rule is wrong about a specific site. Paths are always
   repo-relative with [/] separators — allowlists are path predicates.

   Rule ids and severities live in {!Finding.catalog}; the long-form
   rationale is DESIGN.md's "Static analysis" section. *)

open Parsetree

(* ---------- path predicates (the allowlists) ---------- *)

let in_dir dir path =
  let prefix = dir ^ "/" in
  String.length path >= String.length prefix
  && String.sub path 0 (String.length prefix) = prefix

let rng_home = "lib/sim/rng.ml"
let marshal_home = "lib/exec/cache.ml"

(* The one place allowed to fold arbitrary exceptions into data: that is
   its whole job (raises become typed Cell_failure outcomes there). *)
let supervisor_home = "lib/exec/supervisor.ml"

(* Wall-clock reads are the business of the execution engine (worker
   pools, cache timing), the telemetry spine (optional wall_us stamps on
   trace events — everything logical stays seq-numbered), the serve
   layer (admission stamps, watchdog deadlines, latency quantiles — a
   service's observable behaviour is wall-clock by nature), and the
   CLIs/benches that report them. *)
let clock_allowed path =
  in_dir "lib/exec" path || in_dir "lib/telemetry" path
  || in_dir "lib/serve" path || in_dir "bin" path || in_dir "bench" path

(* D002's GC leg: GC counter reads are the allocation observatory's
   business, and only lib/telemetry (the Memprobe) may perform them.
   A stray Gc.minor_words elsewhere double-counts against the probe's
   per-span attribution and silently diverges on a runtime with
   different GC accounting; everything reads allocation through
   Bap_telemetry.Memprobe instead. *)
let gc_allowed path = in_dir "lib/telemetry" path

(* C001: code that executes adversary behavior (adversary strategies,
   the fault injector), the enumerable choice space, and the checker
   itself must not draw randomness directly — a hidden draw there makes
   counterexample replay nondeterministic and exhaustive enumeration
   unsound. Choices belong in Bap_sim.Decision nodes; Decision.sample
   (lib/sim/decision.ml) is the one bridge back to Rng, and the legacy
   sampled generator Schedule.gen stays legal because Space mirrors its
   alphabet as an enumerable tree. *)
let decision_restricted path =
  path = "lib/sim/adversary.ml" || path = "lib/chaos/injector.ml"
  || path = "lib/chaos/space.ml" || in_dir "lib/check" path
let layer_restricted path = in_dir "lib/sim" path || in_dir "lib/core" path
let in_experiments path = in_dir "lib/experiments" path
let in_lib path = in_dir "lib" path

(* Libraries whose modules must all carry an .mli. lib/core is the
   protocol surface; lib/chaos, lib/check, lib/lint, lib/serve and
   lib/telemetry are post-hygiene code. *)
let interface_complete path =
  in_dir "lib/core" path || in_dir "lib/chaos" path || in_dir "lib/check" path
  || in_dir "lib/lint" path || in_dir "lib/serve" path
  || in_dir "lib/telemetry" path

(* ---------- identifier helpers ---------- *)

let ident_str lid = String.concat "." (Longident.flatten lid)

let strip_stdlib s =
  let p = "Stdlib." in
  if String.length s > String.length p && String.sub s 0 (String.length p) = p then
    String.sub s (String.length p) (String.length s - String.length p)
  else s

let head_module lid = match Longident.flatten lid with [] -> "" | m :: _ -> m

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Head identifier of a (possibly nested) application:
   [head_ident (f a b)] = head of [f]. *)
let rec head_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (strip_stdlib (ident_str txt))
  | Pexp_apply (f, _) -> head_ident f
  | _ -> None

let sort_functions =
  [
    "List.sort";
    "List.stable_sort";
    "List.fast_sort";
    "List.sort_uniq";
    "Array.sort";
    "Array.stable_sort";
    "Array.fast_sort";
  ]

let is_sort_head e =
  match head_ident e with Some h -> List.mem h sort_functions | None -> false

let cell_markers =
  [ "Plan.cell"; "Plan.row_cell"; "Bap_exec.Plan.cell"; "Bap_exec.Plan.row_cell" ]

let print_functions =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "print_int";
    "print_char";
    "print_float";
    "prerr_string";
    "prerr_endline";
    "prerr_newline";
    "output_string";
    "Printf.printf";
    "Printf.eprintf";
    "Format.printf";
    "Format.eprintf";
    "Format.print_string";
    "Fmt.pr";
    "Fmt.epr";
    "Table.print";
    "Bap_stats.Table.print";
  ]

let clock_functions = [ "Unix.gettimeofday"; "Unix.time"; "Sys.time" ]

(* Specific stdlib Gc entry points, not the head module: lib/core has a
   legitimate local [module Gc = Graded_core_set.Make ...] (graded
   consensus), so only the stdlib functions' full names count. *)
let gc_functions =
  [
    "Gc.stat";
    "Gc.quick_stat";
    "Gc.counters";
    "Gc.minor_words";
    "Gc.allocated_bytes";
    "Gc.minor";
    "Gc.major";
    "Gc.major_slice";
    "Gc.full_major";
    "Gc.compact";
    "Gc.set";
    "Gc.get";
    "Gc.Memprof.start";
    "Gc.Memprof.stop";
  ]
let forbidden_layer_heads = [ "Bap_chaos"; "Bap_exec"; "Bap_experiments" ]

(* Mutable-state creators for S001. [Atomic.make] is the sanctioned
   one and is absent from this list; [lazy] is handled structurally
   (forcing an unsynchronized lazy from two domains races). *)
let state_creators =
  [ "ref"; "Hashtbl.create"; "Queue.create"; "Stack.create"; "Buffer.create" ]

(* Syntactically protocol-shaped: a qualified-constructor application
   ([W.Advice a], [Schedule.Crash_at {...}]) or a record literal.
   Unqualified constructors ([Some x], [x :: tl], [[]]) stay quiet —
   they are overwhelmingly options/lists of primitives in this
   codebase, and flagging them would drown the signal. *)
let rec protocol_shaped e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Ldot _; _ }, Some _) -> true
  | Pexp_record _ -> true
  | Pexp_tuple es -> List.exists protocol_shaped es
  | Pexp_constraint (e, _) -> protocol_shaped e
  | _ -> false

(* R001: a handler that swallows every exception. Catch-all patterns
   ([_], also through alias/constraint/or) always swallow; a named
   binder ([with e -> ...]) only counts when the body is literally [()]
   — binding-and-inspecting or re-raising idioms stay quiet, since the
   exception's identity survives. *)
let rec catch_all_pat p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> catch_all_pat p
  | Ppat_or (a, b) -> catch_all_pat a || catch_all_pat b
  | _ -> false

let rec is_unit_expr e =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident "()"; _ }, None) -> true
  | Pexp_constraint (e, _) -> is_unit_expr e
  | _ -> false

let swallows_exception_case c =
  c.pc_guard = None
  && (catch_all_pat c.pc_lhs
     ||
     match c.pc_lhs.ppat_desc with
     | Ppat_var _ -> is_unit_expr c.pc_rhs
     | _ -> false)

(* ---------- the walk ---------- *)

type ctx = {
  sorted : bool;  (** Inside an expression whose result is sorted. *)
  in_cell : bool;  (** Inside the body argument of [Plan.(row_)cell]. *)
}

let check (src : Source.t) : Finding.t list =
  let path = src.Source.path in
  let findings = ref [] in
  let emit ~loc rule_id msg =
    let pos = loc.Location.loc_start in
    let line = pos.Lexing.pos_lnum in
    let col = pos.Lexing.pos_cnum - pos.Lexing.pos_bol in
    findings := Finding.v ~rule_id ~file:path ~line ~col msg :: !findings
  in
  let ctx = ref { sorted = false; in_cell = false } in
  let with_ctx c f =
    let saved = !ctx in
    ctx := c;
    f ();
    ctx := saved
  in
  (* Checks on every identifier occurrence (including apply heads and
     functions passed as values). *)
  let check_ident ~loc lid =
    let name = strip_stdlib (ident_str lid) in
    if (name = "Random" || starts_with ~prefix:"Random." name) && path <> rng_home then
      emit ~loc "D001"
        (Printf.sprintf "%s: draw from a seeded Bap_sim.Rng stream instead" name);
    if
      (name = "Rng" || starts_with ~prefix:"Rng." name
      || starts_with ~prefix:"Bap_sim.Rng." name)
      && decision_restricted path
    then
      emit ~loc "C001"
        (Printf.sprintf
           "%s draws randomness at an adversary decision point; express the choice \
            as a Bap_sim.Decision node"
           name);
    if List.mem name clock_functions && not (clock_allowed path) then
      emit ~loc "D002"
        (Printf.sprintf "%s reads the wall clock; timing belongs to lib/exec and bin"
           name);
    if List.mem name gc_functions && not (gc_allowed path) then
      emit ~loc "D002"
        (Printf.sprintf
           "%s reads the GC outside lib/telemetry; go through \
            Bap_telemetry.Memprobe"
           name);
    if starts_with ~prefix:"Marshal." name && path <> marshal_home then
      emit ~loc "D005"
        (Printf.sprintf "%s: byte serialization goes through Wire (or lib/exec/cache.ml)"
           name);
    if name = "Hashtbl.hash" then
      emit ~loc "D004"
        "Hashtbl.hash is version- and representation-dependent; use an explicit hash";
    if !ctx.in_cell && List.mem name print_functions then
      emit ~loc "P001"
        (Printf.sprintf "%s inside a Plan cell body; cells return rows, render prints"
           name);
    if layer_restricted path && List.mem (head_module lid) forbidden_layer_heads then
      emit ~loc "L001"
        (Printf.sprintf "%s referenced from %s; lib/sim and lib/core sit below it"
           (ident_str lid) path)
  in
  (* S001 helpers: is this structure-level binding a function, and does
     a non-function binding create unsynchronized mutable state? *)
  let rec is_function e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> true
    | Pexp_newtype (_, e) | Pexp_constraint (e, _) -> is_function e
    | _ -> false
  in
  let rec find_state_creation e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> None (* created at call time, not module init *)
    | Pexp_lazy _ -> Some ("lazy", e.pexp_loc)
    | Pexp_apply (f, args) -> (
      match head_ident f with
      | Some h when List.mem h state_creators -> Some (h, e.pexp_loc)
      | _ ->
        List.fold_left
          (fun acc (_, a) ->
            match acc with Some _ -> acc | None -> find_state_creation a)
          (find_state_creation f) args)
    | Pexp_tuple es | Pexp_array es ->
      List.fold_left
        (fun acc e -> match acc with Some _ -> acc | None -> find_state_creation e)
        None es
    | Pexp_record (fields, base) ->
      let in_fields =
        List.fold_left
          (fun acc (_, e) -> match acc with Some _ -> acc | None -> find_state_creation e)
          None fields
      in
      (match in_fields with
      | Some _ -> in_fields
      | None -> ( match base with Some b -> find_state_creation b | None -> None))
    | Pexp_construct (_, Some e)
    | Pexp_variant (_, Some e)
    | Pexp_constraint (e, _)
    | Pexp_open (_, e) ->
      find_state_creation e
    | Pexp_let (_, bindings, body) ->
      let in_bindings =
        List.fold_left
          (fun acc vb ->
            match acc with Some _ -> acc | None -> find_state_creation vb.pvb_expr)
          None bindings
      in
      (match in_bindings with Some _ -> in_bindings | None -> find_state_creation body)
    | Pexp_sequence (a, b) -> (
      match find_state_creation a with Some s -> Some s | None -> find_state_creation b)
    | Pexp_ifthenelse (c, t, e) -> (
      match find_state_creation c with
      | Some s -> Some s
      | None -> (
        match find_state_creation t with
        | Some s -> Some s
        | None -> ( match e with Some e -> find_state_creation e | None -> None)))
    | _ -> None
  in
  let default = Ast_iterator.default_iterator in
  let iterator =
    {
      default with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } -> check_ident ~loc txt
          | _ -> ());
          (* R001: exception-swallowing handlers. *)
          (if path <> supervisor_home then
             match e.pexp_desc with
             | Pexp_try (_, cases) ->
               List.iter
                 (fun c ->
                   if swallows_exception_case c then
                     emit ~loc:c.pc_lhs.ppat_loc "R001"
                       "handler swallows every exception; catch the expected \
                        constructors or run the code under the supervisor")
                 cases
             | Pexp_match (_, cases) ->
               List.iter
                 (fun c ->
                   match c.pc_lhs.ppat_desc with
                   | Ppat_exception p
                     when c.pc_guard = None
                          && (catch_all_pat p
                             ||
                             match p.ppat_desc with
                             | Ppat_var _ -> is_unit_expr c.pc_rhs
                             | _ -> false) ->
                     emit ~loc:c.pc_lhs.ppat_loc "R001"
                       "exception case swallows every exception; match the \
                        expected constructors or run the code under the \
                        supervisor"
                   | _ -> ())
                 cases
             | _ -> ());
          match e.pexp_desc with
          | Pexp_apply (f, args) -> (
            (* D003: Hashtbl iteration order. *)
            (match head_ident f with
            | Some "Hashtbl.iter" ->
              emit ~loc:e.pexp_loc "D003"
                "Hashtbl.iter visits bindings in internal order; iterate a sorted \
                 projection instead"
            | Some "Hashtbl.fold" when not !ctx.sorted ->
              emit ~loc:e.pexp_loc "D003"
                "Hashtbl.fold result not passed through a sort; accumulator order \
                 depends on table internals"
            | _ -> ());
            (* D004: polymorphic comparison of protocol-shaped values. *)
            (match head_ident f with
            | Some (("=" | "<>" | "compare") as op)
              when List.exists (fun (_, a) -> protocol_shaped a) args ->
              emit ~loc:e.pexp_loc "D004"
                (Printf.sprintf
                   "polymorphic %s on a protocol value; use the domain's equal/compare"
                   op)
            | _ -> ());
            (* Context transitions. *)
            match (head_ident f, args) with
            | Some "|>", [ (_, l); (_, r) ] when is_sort_head r ->
              with_ctx { !ctx with sorted = true } (fun () -> it.Ast_iterator.expr it l);
              it.Ast_iterator.expr it r
            | Some "@@", [ (_, l); (_, r) ] when is_sort_head l ->
              it.Ast_iterator.expr it l;
              with_ctx { !ctx with sorted = true } (fun () -> it.Ast_iterator.expr it r)
            | Some h, _ when List.mem h sort_functions ->
              it.Ast_iterator.expr it f;
              with_ctx { !ctx with sorted = true } (fun () ->
                  List.iter (fun (_, a) -> it.Ast_iterator.expr it a) args)
            | Some h, _ when List.mem h cell_markers && in_experiments path -> (
              it.Ast_iterator.expr it f;
              match List.rev args with
              | (_, body) :: before ->
                List.iter (fun (_, a) -> it.Ast_iterator.expr it a) (List.rev before);
                with_ctx { !ctx with in_cell = true } (fun () ->
                    it.Ast_iterator.expr it body)
              | [] -> ())
            | _ -> default.expr it e)
          | Pexp_fun _ | Pexp_function _ when !ctx.sorted ->
            (* A lambda body's interior folds are not the sorted result. *)
            with_ctx { !ctx with sorted = false } (fun () -> default.expr it e)
          | _ -> default.expr it e)
      ;
      structure_item =
        (fun it item ->
          (match item.pstr_desc with
          | Pstr_value (_, bindings) when in_lib path ->
            List.iter
              (fun vb ->
                if not (is_function vb.pvb_expr) then
                  match find_state_creation vb.pvb_expr with
                  | Some (creator, loc) ->
                    emit ~loc "S001"
                      (Printf.sprintf
                         "top-level %s is shared mutable state under the domain pool; \
                          use Atomic or waive with a reason"
                         creator)
                  | None -> ())
              bindings
          | _ -> ());
          default.structure_item it item)
      ;
      module_expr =
        (fun it m ->
          (match m.pmod_desc with
          | Pmod_ident { txt; loc } when layer_restricted path ->
            if List.mem (head_module txt) forbidden_layer_heads then
              emit ~loc "L001"
                (Printf.sprintf "module %s referenced from %s; lib/sim and lib/core sit \
                                 below it"
                   (ident_str txt) path)
          | _ -> ());
          default.module_expr it m)
      ;
      open_description =
        (fun it o ->
          (if layer_restricted path then
             let lid = o.popen_expr in
             if List.mem (head_module lid.Location.txt) forbidden_layer_heads then
               emit ~loc:lid.Location.loc "L001"
                 (Printf.sprintf "open %s from %s; lib/sim and lib/core sit below it"
                    (ident_str lid.Location.txt) path));
          default.open_description it o)
      ;
      typ =
        (fun it t ->
          (match t.ptyp_desc with
          | Ptyp_constr ({ txt; loc }, _) when layer_restricted path ->
            if List.mem (head_module txt) forbidden_layer_heads then
              emit ~loc "L001"
                (Printf.sprintf "type %s referenced from %s; lib/sim and lib/core sit \
                                 below it"
                   (ident_str txt) path)
          | _ -> ());
          default.typ it t)
      ;
    }
  in
  (match src.Source.structure with
  | Some structure -> iterator.structure iterator structure
  | None -> ());
  (match src.Source.parse_error with
  | Some (line, col, msg) ->
    findings := Finding.v ~rule_id:"X001" ~file:path ~line ~col msg :: !findings
  | None -> ());
  !findings
  |> List.filter (fun f ->
         not
           (Source.waived src ~rule_id:f.Finding.rule_id ~line:f.Finding.line))
  |> List.sort Finding.compare_finding

(* L002 is a file-set property, not an AST one: the engine hands us the
   directory listing. [mls] and [mlis] are repo-relative paths. *)
let check_interfaces ~mls ~mlis =
  List.filter_map
    (fun ml ->
      if not (interface_complete ml) then None
      else
        let mli = Filename.remove_extension ml ^ ".mli" in
        if List.mem mli mlis then None
        else
          Some
            (Finding.v ~rule_id:"L002" ~file:ml ~line:1 ~col:0
               (Printf.sprintf
                  "missing %s: modules in this library declare their interface"
                  (Filename.basename mli))))
    (List.sort String.compare mls)
