(** The bounded configuration universe: every (faulty set, input
    vector, advice-error placement, fault schedule) the checker must
    visit, as one {!Bap_sim.Decision} tree whose leaves are engine
    configurations. Checker and fuzzer share the engine, the oracles
    and the fault alphabet ({!Bap_chaos.Space}), so exhausting this
    tree is a statement about the very semantics the fuzzer samples. *)

module E = Bap_chaos.Fuzz.E

type params = {
  protocol : E.protocol;
  n : int;
  t : int;  (** Fault-tolerance parameter; faulty sets range over size <= t. *)
  budget : int;  (** Advice error budget B (honest receivers only). *)
  input_values : int list;  (** Per-process input domain; default [\[0; 1\]]. *)
  bounds : Bap_chaos.Space.bounds;  (** Fault-schedule bounds. *)
}

val default_params : protocol:E.protocol -> n:int -> t:int -> params
(** [budget = 1], binary inputs, {!Bap_chaos.Space.default_bounds}. *)

val uses_advice : E.protocol -> bool
(** The baselines ignore advice; their advice dimension collapses to
    the ground truth instead of multiplying the space. *)

val configs : params -> E.config Bap_sim.Decision.t
(** The full universe. Decision order is faulty set, then inputs, then
    advice errors, then schedule — later spaces depend on earlier
    choices. Every leaf is a distinct configuration. *)
