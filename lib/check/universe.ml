(* The bounded configuration universe: every (faulty set, input vector,
   advice-error placement, fault schedule) the checker must visit, as
   one decision tree.

   Decision order is faulty -> inputs -> advice -> schedule, because the
   later spaces depend on the earlier choices: the fault alphabet and
   the ground-truth advice are both functions of the faulty set. The
   leaves are exactly the {!Bap_chaos.Fuzz.E.config} values the fuzzer
   could in principle generate inside the same bounds — checker and
   fuzzer share the engine, the oracles, and (through
   {!Bap_chaos.Space}) the fault alphabet, so "exhaustive over this
   tree" is a statement about the very semantics the fuzzer samples.

   The advice dimension follows the paper's model: only bits handed to
   honest processes count toward the error budget B (faulty processes'
   advice is adversary-controlled anyway, and the schedule's
   [Advice_flip] faults cover tampering in transit). The baselines
   ignore advice entirely, so their advice dimension collapses to the
   ground truth — enumerating it would multiply the space by a factor
   the protocol provably never reads. *)

module Decision = Bap_sim.Decision
module Advice = Bap_prediction.Advice
module Gen = Bap_prediction.Gen
module Space = Bap_chaos.Space
module E = Bap_chaos.Fuzz.E

type params = {
  protocol : E.protocol;
  n : int;
  t : int;  (** Fault-tolerance parameter; faulty sets range over size <= t. *)
  budget : int;  (** Advice error budget B (honest receivers only). *)
  input_values : int list;  (** Per-process input domain; default [\[0; 1\]]. *)
  bounds : Space.bounds;  (** Fault-schedule bounds, see {!Bap_chaos.Space}. *)
}

let default_params ~protocol ~n ~t =
  {
    protocol;
    n;
    t;
    budget = 1;
    input_values = [ 0; 1 ];
    bounds = Space.default_bounds;
  }

let uses_advice = function
  | E.Unauth | E.Auth -> true
  | E.Es_baseline | E.Pk_baseline -> false

let faulty_sets ~n ~t = Decision.subsets ~label:"faulty" ~limit:t (List.init n Fun.id)

let input_vectors ~values n =
  let rec go acc i =
    if i = n then Decision.return (Array.of_list (List.rev acc))
    else Decision.pick ~label:"input" values (fun v -> go (v :: acc) (i + 1))
  in
  go [] 0

(* Ground truth plus every placement of at most [budget] wrong bits
   across (honest receiver, subject) pairs. *)
let advice_vectors ~protocol ~n ~faulty ~budget =
  let base = Gen.perfect ~n ~faulty in
  if (not (uses_advice protocol)) || budget <= 0 then Decision.return base
  else begin
    let is_faulty = Array.make n false in
    Array.iter (fun p -> if p >= 0 && p < n then is_faulty.(p) <- true) faulty;
    let pairs =
      List.init n Fun.id
      |> List.concat_map (fun i ->
             if is_faulty.(i) then [] else List.init n (fun j -> (i, j)))
    in
    Decision.subsets ~label:"advice-error" ~limit:budget pairs
    |> Decision.map (fun flips ->
           let advice = Array.copy base in
           List.iter (fun (i, j) -> advice.(i) <- Advice.flip advice.(i) j) flips;
           advice)
  end

let configs p =
  let open Decision in
  let* faulty_list = faulty_sets ~n:p.n ~t:p.t in
  let faulty = Array.of_list faulty_list in
  let* inputs = input_vectors ~values:p.input_values p.n in
  let* advice = advice_vectors ~protocol:p.protocol ~n:p.n ~faulty ~budget:p.budget in
  let* schedule = Space.schedules ~n:p.n ~faulty p.bounds in
  return { E.protocol = p.protocol; t = p.t; faulty; inputs; advice; schedule }
