(* Canonical configuration keys, with process-permutation symmetry
   reduction over the honest "plain" suffix.

   Two configurations that differ only by a relabelling of
   interchangeable honest processes reach the same verdicts, so the
   checker should run one of them and count the other as a symmetry
   hit. The subtlety is which processes are interchangeable: the
   protocols in this repository are *not* fully id-symmetric —

   - the phase-king families fix kings by identifier (phase [p]'s king
     is [p - 1], so ids [0 .. t] carry roles);
   - the prediction wrapper ranks processes by trust score with ties
     broken by identifier, so *every* id can influence committee
     selection.

   [role_bound] encodes exactly that: ids below it may carry a role and
   are never permuted; for the wrapper families it is [max_int], i.e.
   the reduction is disabled entirely rather than risked (see the
   soundness discussion in DESIGN.md). A process is "plain" when its id
   is at least the role bound, it is honest, and no schedule fault
   references it (as actor, destination, or advice bit) — permuting a
   referenced id would change which edges the faults hit.

   Canonical form sorts the plain ids by input value and relabels. A
   final guard re-checks that the advice matrix is invariant under the
   relabelling (rows and columns both move); when it is not, the
   permutation is not an automorphism of the configuration and we fall
   back to the identity — losing a potential hit, never soundness. An
   equivariance regression test (test/test_check.ml) backs the
   role-bound table: it runs permuted configurations through the real
   engine and requires isomorphic reports. *)

module E = Bap_chaos.Fuzz.E
module Advice = Bap_prediction.Advice
module Bitset = Bap_sim.Bitset
module Schedule = Bap_chaos.Schedule

let role_bound ~protocol ~t =
  match protocol with
  | E.Unauth | E.Auth -> max_int
  | E.Es_baseline | E.Pk_baseline -> t + 1

(* Every process id a fault mentions. An [Advice_flip]'s [bit] indexes
   a *subject* process, so it pins that id too. *)
let referenced = function
  | Schedule.Crash_at { proc; _ } | Schedule.Equivocate { proc; _ } -> [ proc ]
  | Schedule.Omit_to { proc; dst; _ } -> [ proc; dst ]
  | Schedule.Advice_flip { proc; bit } -> [ proc; bit ]
  | Schedule.Drop { src; dst; _ }
  | Schedule.Duplicate { src; dst; _ }
  | Schedule.Reorder { src; dst; _ }
  | Schedule.Corrupt { src; dst; _ } ->
    [ src; dst ]

let permute_advice ~inv advice =
  let n = Array.length advice in
  Array.init n (fun i ->
      let row = advice.(inv.(i)) in
      Advice.init n (fun j -> Advice.get row inv.(j)))

let canonicalize cfg =
  let n = E.n_of cfg in
  let bound = role_bound ~protocol:cfg.E.protocol ~t:cfg.E.t in
  if bound >= n then cfg
  else begin
    let pinned = Array.make n false in
    Array.iter (fun p -> if p >= 0 && p < n then pinned.(p) <- true) cfg.E.faulty;
    List.iter
      (fun f ->
        List.iter (fun i -> if i >= 0 && i < n then pinned.(i) <- true) (referenced f))
      cfg.E.schedule;
    let plain =
      List.init n Fun.id |> List.filter (fun i -> i >= bound && not pinned.(i))
    in
    match plain with
    | [] | [ _ ] -> cfg
    | _ ->
      (* Relabel so plain slots hold inputs in ascending order; the
         stable sort makes the representative deterministic. *)
      let sorted =
        List.stable_sort
          (fun a b -> compare cfg.E.inputs.(a) cfg.E.inputs.(b))
          plain
      in
      let perm = Array.init n Fun.id in
      List.iter2 (fun slot orig -> perm.(orig) <- slot) plain sorted;
      let inv = Array.make n 0 in
      Array.iteri (fun i p -> inv.(p) <- i) perm;
      let advice = permute_advice ~inv cfg.E.advice in
      let automorphism =
        try Array.for_all2 Advice.equal advice cfg.E.advice
        with Invalid_argument _ -> false
      in
      if not automorphism then cfg
      else
        let inputs = Array.init n (fun i -> cfg.E.inputs.(inv.(i))) in
        { cfg with E.inputs; advice }
  end

(* The dedup key: one string, fully determined by the configuration.
   The faulty set goes through a {!Bitset} so the key is insensitive to
   the array's element order. *)
let key cfg =
  let n = E.n_of cfg in
  let b = Buffer.create 128 in
  Buffer.add_string b (E.protocol_name cfg.E.protocol);
  Buffer.add_char b '/';
  Buffer.add_string b (string_of_int cfg.E.t);
  Buffer.add_char b '/';
  let faulty = Bitset.of_list n (Array.to_list cfg.E.faulty) in
  for i = 0 to n - 1 do
    Buffer.add_char b (if Bitset.get faulty i then '1' else '0')
  done;
  Buffer.add_char b '/';
  Array.iter
    (fun v ->
      Buffer.add_string b (string_of_int v);
      Buffer.add_char b ',')
    cfg.E.inputs;
  Buffer.add_char b '/';
  Array.iter
    (fun a ->
      Buffer.add_string b (Advice.to_bits a);
      Buffer.add_char b ',')
    cfg.E.advice;
  Buffer.add_char b '/';
  Buffer.add_string b (Fmt.str "%a" Schedule.pp cfg.E.schedule);
  Buffer.contents b
