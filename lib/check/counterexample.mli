(** Counterexample serialization: a violating configuration as JSON,
    loadable by [bap_fuzz --replay] so the checker's findings rerun
    under the fuzzer's engine entry points byte-identically. Emitter
    and parser live together: the format has exactly one definition. *)

module E = Bap_chaos.Fuzz.E

type t = {
  config : E.config;
  sabotage : bool;  (** Replay must re-plant the self-test bug. *)
  violations : string list;  (** Rendered verdicts; informational. *)
  path : Bap_sim.Decision.path;  (** Universe branch indices; informational. *)
}

val of_explore : sabotage:bool -> Explore.counterexample -> t

val to_json : t -> string
(** One counterexample as a single-line JSON object. *)

val file_to_string : t list -> string
(** The file format: [{"version":1,"counterexamples":[...]}]. *)

val write : path:string -> t list -> unit

val of_string : string -> (t list, string) result
(** Parse a counterexample file; a bare counterexample object (no
    wrapper) is accepted too, for hand-trimmed repros. *)

val load : path:string -> (t list, string) result
