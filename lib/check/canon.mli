(** Canonical configuration keys with process-permutation symmetry
    reduction over the honest "plain" suffix.

    The protocols are not fully id-symmetric (phase kings are fixed by
    identifier; the wrapper's trust ranking breaks ties by identifier),
    so the reduction only permutes ids at or above a per-family
    {!role_bound}, and only when the permutation is an automorphism of
    the whole configuration. Falling back to the identity loses a
    potential dedup hit, never soundness. *)

module E = Bap_chaos.Fuzz.E

val role_bound : protocol:E.protocol -> t:int -> int
(** Ids below this may carry a protocol role and are never permuted.
    [t + 1] for the phase-king families (kings are ids [0 .. t]);
    [max_int] — reduction disabled — for the wrapper families, whose
    trust-ranking tie-breaks make every id significant. *)

val canonicalize : E.config -> E.config
(** The symmetry representative: plain ids (at or above the role bound,
    honest, unreferenced by any schedule fault) relabelled so their
    inputs ascend, provided the relabelling leaves the advice matrix
    invariant; the configuration itself otherwise. *)

val key : E.config -> string
(** Serialized dedup key of a configuration, bitset-normalised over the
    faulty set. Equal keys imply equal checker verdicts. Compose with
    {!canonicalize} to get symmetry-reduced keys. *)
