(* Counterexample serialization: a violating configuration as JSON,
   loadable by [bap_fuzz --replay] so the checker's findings rerun
   under the fuzzer's engine entry points ({!Bap_chaos.Fuzz.run_one} /
   {!Bap_chaos.Fuzz.shrink}) byte-identically.

   The JSON carries everything a replay needs — protocol, t, faulty
   set, inputs, advice bit-vectors, the schedule fault by fault, and
   whether the run was sabotaged (the harness self-test plants its bug
   through the same flag on replay). The rendered violations and the
   universe decision path ride along for reporting; replays recompute
   verdicts from scratch rather than trusting them. The emitter and the
   parser live next to each other so the format has exactly one
   definition; parsing uses the project's own {!Bap_telemetry.Json}
   (the image has no json library). *)

module E = Bap_chaos.Fuzz.E
module Schedule = Bap_chaos.Schedule
module Advice = Bap_prediction.Advice
module Json = Bap_telemetry.Json

type t = {
  config : E.config;
  sabotage : bool;  (** Replay must re-plant the self-test bug. *)
  violations : string list;  (** Rendered verdicts; informational. *)
  path : Bap_sim.Decision.path;  (** Universe branch indices; informational. *)
}

let of_explore ~sabotage (cex : Explore.counterexample) =
  {
    config = cex.Explore.config;
    sabotage;
    violations =
      List.map (Fmt.str "%a" E.Oracle.pp_violation) cex.Explore.report.E.violations;
    path = cex.Explore.path;
  }

(* -- Emitting -- *)

let fault_to_json b fault =
  let obj fields =
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%s" k v))
      fields;
    Buffer.add_char b '}'
  in
  let kind k = ("kind", Printf.sprintf "\"%s\"" k) in
  let int k v = (k, string_of_int v) in
  match fault with
  | Schedule.Crash_at { proc; round } ->
    obj [ kind "crash_at"; int "proc" proc; int "round" round ]
  | Schedule.Omit_to { proc; dst; first; last } ->
    obj [ kind "omit_to"; int "proc" proc; int "dst" dst; int "first" first;
          int "last" last ]
  | Schedule.Drop { src; dst; round } ->
    obj [ kind "drop"; int "src" src; int "dst" dst; int "round" round ]
  | Schedule.Duplicate { src; dst; round } ->
    obj [ kind "duplicate"; int "src" src; int "dst" dst; int "round" round ]
  | Schedule.Reorder { src; dst; round } ->
    obj [ kind "reorder"; int "src" src; int "dst" dst; int "round" round ]
  | Schedule.Corrupt { src; dst; round; bit } ->
    obj [ kind "corrupt"; int "src" src; int "dst" dst; int "round" round;
          int "bit" bit ]
  | Schedule.Equivocate { proc; first; last; salt } ->
    obj [ kind "equivocate"; int "proc" proc; int "first" first; int "last" last;
          int "salt" salt ]
  | Schedule.Advice_flip { proc; bit } ->
    obj [ kind "advice_flip"; int "proc" proc; int "bit" bit ]

let add_int_list b l =
  Buffer.add_char b '[';
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int v))
    l;
  Buffer.add_char b ']'

let to_json cex =
  let b = Buffer.create 512 in
  let cfg = cex.config in
  Buffer.add_string b
    (Printf.sprintf "{\"protocol\":\"%s\",\"t\":%d,\"sabotage\":%b,\"faulty\":"
       (E.protocol_name cfg.E.protocol) cfg.E.t cex.sabotage);
  add_int_list b (Array.to_list cfg.E.faulty);
  Buffer.add_string b ",\"inputs\":";
  add_int_list b (Array.to_list cfg.E.inputs);
  Buffer.add_string b ",\"advice\":[";
  Array.iteri
    (fun i a ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\"" (Advice.to_bits a)))
    cfg.E.advice;
  Buffer.add_string b "],\"schedule\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      fault_to_json b f)
    cfg.E.schedule;
  Buffer.add_string b "],\"violations\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\"" (Json.escape v)))
    cex.violations;
  Buffer.add_string b "],\"path\":";
  add_int_list b cex.path;
  Buffer.add_char b '}';
  Buffer.contents b

let file_to_string cexs =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"version\":1,\"counterexamples\":[";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (to_json c))
    cexs;
  Buffer.add_string b "]}\n";
  Buffer.contents b

let write ~path cexs =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (file_to_string cexs))

(* -- Parsing -- *)

let ( let* ) r f = Result.bind r f

let field name conv j ~what =
  match conv (Json.member name j) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "counterexample: missing or bad %s %S" what name)

let int_list name j =
  match Json.to_list (Json.member name j) with
  | None -> Error (Printf.sprintf "counterexample: missing list %S" name)
  | Some l ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | x :: rest -> (
        match Json.to_int (Some x) with
        | Some v -> go (v :: acc) rest
        | None -> Error (Printf.sprintf "counterexample: non-integer in %S" name))
    in
    go [] l

let fault_of_json j =
  let i name = field name Json.to_int j ~what:"field" in
  let* kind = field "kind" Json.to_string j ~what:"fault kind" in
  match kind with
  | "crash_at" ->
    let* proc = i "proc" in
    let* round = i "round" in
    Ok (Schedule.Crash_at { proc; round })
  | "omit_to" ->
    let* proc = i "proc" in
    let* dst = i "dst" in
    let* first = i "first" in
    let* last = i "last" in
    Ok (Schedule.Omit_to { proc; dst; first; last })
  | "drop" ->
    let* src = i "src" in
    let* dst = i "dst" in
    let* round = i "round" in
    Ok (Schedule.Drop { src; dst; round })
  | "duplicate" ->
    let* src = i "src" in
    let* dst = i "dst" in
    let* round = i "round" in
    Ok (Schedule.Duplicate { src; dst; round })
  | "reorder" ->
    let* src = i "src" in
    let* dst = i "dst" in
    let* round = i "round" in
    Ok (Schedule.Reorder { src; dst; round })
  | "corrupt" ->
    let* src = i "src" in
    let* dst = i "dst" in
    let* round = i "round" in
    let* bit = i "bit" in
    Ok (Schedule.Corrupt { src; dst; round; bit })
  | "equivocate" ->
    let* proc = i "proc" in
    let* first = i "first" in
    let* last = i "last" in
    let* salt = i "salt" in
    Ok (Schedule.Equivocate { proc; first; last; salt })
  | "advice_flip" ->
    let* proc = i "proc" in
    let* bit = i "bit" in
    Ok (Schedule.Advice_flip { proc; bit })
  | k -> Error (Printf.sprintf "counterexample: unknown fault kind %S" k)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let of_json j =
  let* name = field "protocol" Json.to_string j ~what:"protocol" in
  let* protocol =
    match Bap_chaos.Fuzz.protocol_of_name name with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "counterexample: unknown protocol %S" name)
  in
  let* t = field "t" Json.to_int j ~what:"t" in
  let* sabotage = field "sabotage" Json.to_bool j ~what:"sabotage" in
  let* faulty = int_list "faulty" j in
  let* inputs = int_list "inputs" j in
  let* advice_l =
    match Json.to_list (Json.member "advice" j) with
    | Some l -> Ok l
    | None -> Error "counterexample: missing list \"advice\""
  in
  let* advice =
    map_result
      (fun a ->
        match Json.to_string (Some a) with
        | Some bits -> (
          match Advice.of_bits bits with
          | Some v -> Ok v
          | None -> Error (Printf.sprintf "counterexample: bad advice bits %S" bits))
        | None -> Error "counterexample: non-string advice entry")
      advice_l
  in
  let* schedule_l =
    match Json.to_list (Json.member "schedule" j) with
    | Some l -> Ok l
    | None -> Error "counterexample: missing list \"schedule\""
  in
  let* schedule = map_result fault_of_json schedule_l in
  let* violations =
    match Json.to_list (Json.member "violations" j) with
    | None -> Ok []
    | Some l ->
      map_result
        (fun v ->
          match Json.to_string (Some v) with
          | Some s -> Ok s
          | None -> Error "counterexample: non-string violation")
        l
  in
  let* path =
    match Json.member "path" j with None -> Ok [] | Some _ -> int_list "path" j
  in
  Ok
    {
      config =
        {
          E.protocol;
          t;
          faulty = Array.of_list faulty;
          inputs = Array.of_list inputs;
          advice = Array.of_list advice;
          schedule;
        };
      sabotage;
      violations;
      path;
    }

let of_string s =
  match Json.parse s with
  | exception Json.Parse msg -> Error (Printf.sprintf "counterexample: %s" msg)
  | j -> (
    match Json.to_list (Json.member "counterexamples" j) with
    | Some l -> map_result of_json l
    | None -> (
      (* A bare counterexample object is accepted too — handy for
         hand-trimmed repros. *)
      match Json.member "protocol" j with
      | Some _ ->
        let* one = of_json j in
        Ok [ one ]
      | None -> Error "counterexample: no \"counterexamples\" list"))

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | s -> of_string s
