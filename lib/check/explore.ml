(* The explorer: walk every leaf of the configuration universe, dedup
   through canonical keys, run the chaos engine on each representative,
   and record every oracle violation with the decision path that
   reaches it.

   Because the simulator's effect handlers use one-shot continuations,
   there is no mid-run state forking: the checker is a *stateless*
   bounded model checker — each state is a complete configuration, each
   transition a whole engine run. DFS streams the leaves in tree order
   with O(depth) memory; BFS materialises the leaves and sweeps them in
   fault-count layers (all fault-free runs first, then single-fault
   runs, ...), which finds a minimal-layer counterexample first at the
   cost of holding the frontier. [frontier_peak] reports the widest
   layer in both orders — for BFS that is literally the peak resident
   frontier.

   Engine runs go through the trace-free fast path
   ([E.run ~with_trace:false]): the monitor-soundness oracle needs a
   delivery trace and is therefore out of the checker's scope (the
   sampled fuzzer keeps it); agreement, validity and the round bound
   are checked on every state. Stats are mirrored into the telemetry
   metrics registry under [check.*]. *)

module E = Bap_chaos.Fuzz.E
module Fuzz = Bap_chaos.Fuzz
module Schedule = Bap_chaos.Schedule
module Decision = Bap_sim.Decision
module Tel = Bap_telemetry.Telemetry

type order = Dfs | Bfs

type counterexample = {
  config : E.config;
  report : E.report;
  path : Decision.path;  (** Root-to-leaf branch indices in the universe tree. *)
}

type stats = {
  leaves : int;  (** Configurations enumerated. *)
  states : int;  (** Unique canonical states actually run. *)
  symmetry_hits : int;  (** Leaves deduplicated against an earlier state. *)
  frontier_peak : int;  (** Widest fault-count layer. *)
  violations : int;
}

type result = { stats : stats; counterexamples : counterexample list }

let pp_stats ppf s =
  Fmt.pf ppf
    "leaves=%d states=%d symmetry_hits=%d frontier_peak=%d violations=%d"
    s.leaves s.states s.symmetry_hits s.frontier_peak s.violations

let run ?(order = Dfs) ?(symmetry = true) ?(sabotage = false)
    ?(progress = fun ~leaves:_ ~states:_ ~violations:_ -> ()) params =
  let tree = Universe.configs params in
  let seen = Hashtbl.create 4096 in
  let layer_width = Hashtbl.create 8 in
  let frontier_peak = ref 0 in
  let leaves = ref 0 in
  let states = ref 0 in
  let symmetry_hits = ref 0 in
  let violations = ref 0 in
  let counterexamples = ref [] in
  let visit cfg ~path =
    incr leaves;
    Tel.Metrics.counter "check.leaves" 1;
    let layer = Schedule.length cfg.E.schedule in
    let width = 1 + Option.value ~default:0 (Hashtbl.find_opt layer_width layer) in
    Hashtbl.replace layer_width layer width;
    if width > !frontier_peak then frontier_peak := width;
    let key = Canon.key (if symmetry then Canon.canonicalize cfg else cfg) in
    if Hashtbl.mem seen key then begin
      (* The universe never produces two identical leaves, so a key
         collision is always a symmetry win. *)
      incr symmetry_hits;
      Tel.Metrics.counter "check.symmetry_hits" 1
    end
    else begin
      Hashtbl.add seen key ();
      incr states;
      Tel.Metrics.counter "check.states" 1;
      let report =
        E.run ~sabotage_validity:sabotage ~with_trace:false ~mutant:Fuzz.mutant cfg
      in
      if report.E.violations <> [] then begin
        incr violations;
        Tel.Metrics.counter "check.violations" 1;
        counterexamples := { config = cfg; report; path } :: !counterexamples
      end;
      progress ~leaves:!leaves ~states:!states ~violations:!violations
    end
  in
  (match order with
  | Dfs -> Decision.iter visit tree
  | Bfs ->
    let buckets = Hashtbl.create 8 in
    Decision.iter
      (fun cfg ~path ->
        let layer = Schedule.length cfg.E.schedule in
        let prev = Option.value ~default:[] (Hashtbl.find_opt buckets layer) in
        Hashtbl.replace buckets layer ((cfg, path) :: prev))
      tree;
    Hashtbl.fold (fun layer _ acc -> layer :: acc) buckets []
    |> List.sort compare
    |> List.iter (fun layer ->
           Hashtbl.find buckets layer
           |> List.rev
           |> List.iter (fun (cfg, path) -> visit cfg ~path)));
  let frontier_peak = !frontier_peak in
  Tel.Metrics.gauge_max "check.frontier_peak" frontier_peak;
  let stats =
    {
      leaves = !leaves;
      states = !states;
      symmetry_hits = !symmetry_hits;
      frontier_peak;
      violations = !violations;
    }
  in
  { stats; counterexamples = List.rev !counterexamples }
