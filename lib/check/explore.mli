(** The explorer: every leaf of the configuration universe, deduped
    through {!Canon} keys, run through the chaos engine's oracles.

    A {e stateless} bounded model checker — the simulator's one-shot
    continuations rule out mid-run forking, so each state is a complete
    configuration and each transition a whole engine run. The
    monitor-soundness oracle needs a delivery trace and is out of the
    checker's scope (the sampled fuzzer keeps it); agreement, validity
    and the round bound are checked on every state. *)

module E = Bap_chaos.Fuzz.E

type order =
  | Dfs  (** Stream leaves in tree order; O(depth) memory. *)
  | Bfs
      (** Materialise leaves, sweep fault-count layers in order: all
          fault-free runs first, then single-fault runs, ... — finds a
          minimal-layer counterexample first at the cost of holding the
          frontier. *)

type counterexample = {
  config : E.config;
  report : E.report;
  path : Bap_sim.Decision.path;
      (** Root-to-leaf branch indices in the universe tree. *)
}

type stats = {
  leaves : int;  (** Configurations enumerated. *)
  states : int;  (** Unique canonical states actually run. *)
  symmetry_hits : int;  (** Leaves deduplicated against an earlier state. *)
  frontier_peak : int;  (** Widest fault-count layer. *)
  violations : int;
}

type result = { stats : stats; counterexamples : counterexample list }

val pp_stats : Format.formatter -> stats -> unit

val run :
  ?order:order ->
  ?symmetry:bool ->
  ?sabotage:bool ->
  ?progress:(leaves:int -> states:int -> violations:int -> unit) ->
  Universe.params ->
  result
(** Exhaust the universe. [symmetry] (default true) dedups through
    {!Canon.canonicalize}; [sabotage] plants the harness self-test bug
    ({!Bap_chaos.Fuzz.run_one}'s [?sabotage]), which the checker must
    then catch. Stats are mirrored into the telemetry metrics registry
    under [check.*]. *)
