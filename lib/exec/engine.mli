(** The execution engine: fan experiment cells out over a domain pool,
    short-circuit through the journal and the result cache, reassemble
    tables in canonical order.

    Output on stdout is byte-identical whatever the pool size, cache or
    journal state, because cells never print — every byte comes from the
    plans' [render] functions, called serially in plan order after all
    cells have finished.

    With a [supervisor], cell failures no longer abort the sweep: each
    failing attempt is retried per the supervisor's budget and cells
    that exhaust it are quarantined — omitted from their plan's render
    input and listed in [stats.quarantined], leaving the sweep complete
    but DEGRADED. With a [journal], every finished cell is flushed to a
    write-ahead log as it completes, so a killed sweep resumes without
    recomputing. *)

type stats = {
  total_cells : int;
  cache_hits : int;
  journal_hits : int;  (** Cells replayed from a resumed journal. *)
  executed : int;  (** Cells actually run this time. *)
  retried : int;  (** Failed attempts that were retried (and so re-run). *)
  quarantined : (string * string) list;
      (** [(exp_id, cell key)] of cells that exhausted their retry
          budget, in plan order. Empty = clean run. *)
  ledgers : (string * Supervisor.attempt_record list) list;
      (** Per-cell failure ledgers ({!Plan.cell_id} keyed), for every
          cell that failed at least one attempt. Deterministic for a
          fixed supervisor seed. *)
  cache_corrupt : int;  (** Corrupt cache entries deleted during the run. *)
  jobs : int;  (** Pool parallelism used (1 when no pool given). *)
  wall : float;  (** Seconds spent computing (excludes rendering). *)
}

val degraded : stats -> bool
(** [quarantined <> []] — the sweep completed but lost cells. *)

val run :
  ?pool:Pool.t ->
  ?cache:Cache.t ->
  ?journal:Journal.t ->
  ?supervisor:Supervisor.t ->
  ?render:bool ->
  Plan.t list ->
  stats
(** Run every plan's cells — journal replay first, then cache, then the
    pool for the rest (inline when [pool] is absent) — persisting each
    fresh result to journal and cache as it completes, then render each
    plan in order. [render:false] skips the rendering pass — for timing
    sweeps without producing output.

    Without [supervisor], a raising cell re-raises after the whole batch
    has settled (everything finished is already journaled) and nothing
    is rendered. With one, failures are retried/quarantined and the run
    always renders — partially, if cells were lost. *)

val run_serial : Plan.t -> unit
(** [run ~pool:none ~cache:none] on one plan: the reference serial
    path. *)

val stats_json : stats -> string
(** The same report as {!pp_stats} in machine-readable JSON (version 1):
    scalar fields plus the quarantined list and per-cell failure
    ledgers. Consumed by [bap_gate --check-stats]. *)

val pp_stats : Format.formatter -> stats -> unit
(** One-line report, e.g.
    ["26 cells: 20 cached, 6 ran on 8 workers in 1.24s, 3 from journal,
      2 failed attempt(s) retried, cache corrupt entries: 1, DEGRADED:
      1 cell(s) quarantined"] — the optional segments appear only when
    nonzero. *)
