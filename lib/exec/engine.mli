(** The execution engine: fan experiment cells out over a domain pool,
    short-circuit through the result cache, reassemble tables in
    canonical order.

    Output on stdout is byte-identical whatever the pool size or cache
    state, because cells never print — every byte comes from the plans'
    [render] functions, called serially in plan order after all cells
    have finished. *)

type stats = {
  total_cells : int;
  cache_hits : int;
  executed : int;  (** [total_cells - cache_hits]. *)
  jobs : int;  (** Pool parallelism used (1 when no pool given). *)
  wall : float;  (** Seconds spent computing (excludes rendering). *)
}

val run : ?pool:Pool.t -> ?cache:Cache.t -> ?render:bool -> Plan.t list -> stats
(** Run every plan's cells (cache first, then the pool for the misses,
    inline when [pool] is absent), store fresh results back, then render
    each plan in order. [render:false] skips the rendering pass — for
    timing sweeps without producing output. If any cell raised, its
    exception is re-raised after the whole batch has settled and nothing
    is rendered or stored. *)

val run_serial : Plan.t -> unit
(** [run ~pool:none ~cache:none] on one plan: the reference serial
    path. *)

val pp_stats : Format.formatter -> stats -> unit
(** One-line report, e.g.
    ["26 cells: 20 cached, 6 ran on 8 workers in 1.24s"]. *)
