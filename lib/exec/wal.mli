(** Reusable write-ahead log core.

    The digest-framed record / torn-tail machinery behind both the
    sweep journal ({!Journal}) and the serve-layer instance journal
    ({!Bap_servelib.Journal}). A log is a header line
    [<magic> <fingerprint>] followed by framed records
    [rec <tag> <key> <len> <md5hex>] + payload; the digest makes any
    torn or damaged record — and everything after it — detectable, and
    the fingerprint makes a log written by a different build invalid
    wholesale.

    One flush per record is the crash-safety contract: after {!append}
    returns, a SIGKILL cannot lose that record. Opening is best-effort —
    an unwritable path degrades to "no logging" rather than failing the
    caller — but degradation is loud: a stderr warning and a telemetry
    instant ([wal_degraded], counter [wal.degraded]) fire so the
    operator can tell durability is off. *)

type record = { tag : string; key : string; payload : string }

type t

val open_ :
  ?resume:bool -> magic:string -> path:string -> fingerprint:string -> unit -> t
(** [resume:false] (default) truncates any existing log and writes a
    fresh header. [resume:true] loads the valid prefix of an existing
    log into {!records} (stale-fingerprint logs load zero records),
    truncates any torn tail — rewriting the valid prefix wholesale if
    truncation itself fails — and appends after it. *)

val records : t -> record list
(** The valid prefix loaded at open, in file order. Empty unless
    [resume:true] found a same-fingerprint log. *)

val append : t -> tag:string -> key:string -> string -> unit
(** Frame, write, and flush one record. [tag] and [key] must be
    non-empty and contain no spaces or newlines ([Invalid_argument]
    otherwise); the payload is arbitrary bytes. Thread-safe. No
    dedup — callers own their idempotence policy. *)

val active : t -> bool
(** [false] once the log has degraded to "no logging" (unwritable path
    at open, or a write error since). *)

val appends : t -> int
(** Records successfully appended (and flushed) since open. *)

val path : t -> string

val close : t -> unit
(** Flush and release the file handle. Idempotent. *)

val signal_close : t -> unit
(** Signal-handler-safe {!close}: acquires the lock with a non-blocking
    attempt, so a handler that interrupted {!append} mid-record cannot
    self-deadlock. If the lock is contended, nothing is done — every
    appended record is already flushed, so nothing recorded is lost. *)
