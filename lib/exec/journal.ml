(* Crash-safe write-ahead journal for sweeps.

   Every completed cell is appended as one framed record and flushed
   before the sweep moves on, so a SIGKILL (or CI timeout, or Ctrl-C)
   loses at most the cells that had not finished. On resume the valid
   prefix is replayed, a torn tail is truncated away, and the sweep
   re-runs only what is missing — producing byte-identical tables to an
   uninterrupted run at any --jobs level, because rendering order comes
   from the plan, never from completion order.

   The framing, torn-tail truncation, per-record flush, and loud
   best-effort degradation all live in the shared {!Wal} core (extracted
   in PR 9 so the serve layer's instance journal reuses them); this
   module owns only the sweep-specific parts: cell addressing, row
   payload codec, and at-most-once dedup of addresses. Records are
   tagged "cell" and keyed by the Cache.cell_address of the cell under
   the journal's fingerprint; a journal written by a different build
   fails the WAL header check and is discarded wholesale, exactly like
   the cache. *)

type t = {
  wal : Wal.t;
  entries : (string, Cache.rows) Hashtbl.t;
  fp : string;
  jm : Mutex.t;
}

let default_path = Filename.concat "results" "sweep.journal"
let magic = "bap-journal 2"

let open_ ?(resume = false) ~path ~fingerprint () =
  let wal = Wal.open_ ~resume ~magic ~path ~fingerprint () in
  let entries = Hashtbl.create 64 in
  List.iter
    (fun (r : Wal.record) ->
      if String.equal r.tag "cell" then
        match Cache.decode_rows r.payload with
        | Some rows -> Hashtbl.replace entries r.key rows
        | None -> ())
    (Wal.records wal);
  { wal; entries; fp = fingerprint; jm = Mutex.create () }

let find t addr = Hashtbl.find_opt t.entries addr

let append t addr rows =
  (* The dedup check and the table update must both sit inside the lock:
     append runs concurrently from every pool worker, and OCaml 5's
     Hashtbl is not domain-safe — a racing replace/resize can corrupt
     the table. (The WAL has its own lock, but the dedup decision and
     the write must be atomic together.) *)
  Mutex.lock t.jm;
  if not (Hashtbl.mem t.entries addr) then begin
    Bap_telemetry.Telemetry.Metrics.counter "journal.appends" 1;
    Hashtbl.replace t.entries addr rows;
    Wal.append t.wal ~tag:"cell" ~key:addr (Cache.encode_rows rows)
  end;
  Mutex.unlock t.jm

let address t = Cache.cell_address ~fingerprint:t.fp
let entries t = Hashtbl.length t.entries
let path t = Wal.path t.wal
let close t = Wal.close t.wal

let signal_close t =
  (* Delegates to the WAL's try-lock close; see {!Wal.signal_close} for
     why a blocking lock would self-deadlock under a signal handler. *)
  Wal.signal_close t.wal
