(* Crash-safe write-ahead journal for sweeps.

   Every completed cell is appended as one framed record and flushed
   before the sweep moves on, so a SIGKILL (or CI timeout, or Ctrl-C)
   loses at most the cells that had not finished. On resume the valid
   prefix is replayed, a torn tail is truncated away, and the sweep
   re-runs only what is missing — producing byte-identical tables to an
   uninterrupted run at any --jobs level, because rendering order comes
   from the plan, never from completion order.

   On-disk format (text, line-framed):

     bap-journal 1 <fingerprint>\n
     cell <addr> <payload-bytes> <md5 hex of payload>\n
     <payload>
     cell ...

   where <addr> is the Cache.cell_address of the cell under
   <fingerprint> and <payload> is Cache.encode_rows of its result
   (payloads end in '\n' by construction). The digest makes any torn or
   damaged record — and everything after it — detectable; the
   fingerprint makes a journal written by a different build invalid as
   a whole, exactly like the cache. *)

type t = {
  jpath : string;
  fp : string;
  entries : (string, Cache.rows) Hashtbl.t;
  mutable oc : out_channel option;
  jm : Mutex.t;
}

let default_path = Filename.concat "results" "sweep.journal"

let header_of fp = Printf.sprintf "bap-journal 1 %s\n" fp

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse the longest valid prefix. Returns the entries found (in file
   order) and the byte offset where validity ends. A header mismatch
   validates zero bytes, discarding the stale journal wholesale. *)
let parse_prefix ~fp s =
  let header = header_of fp in
  let hlen = String.length header in
  if String.length s < hlen || not (String.equal (String.sub s 0 hlen) header)
  then ([], 0)
  else begin
    let entries = ref [] in
    let pos = ref hlen in
    let valid = ref hlen in
    let ok = ref true in
    while !ok do
      match String.index_from_opt s !pos '\n' with
      | None -> ok := false
      | Some eol -> (
        let line = String.sub s !pos (eol - !pos) in
        match String.split_on_char ' ' line with
        | [ "cell"; addr; len; digest ] -> (
          match int_of_string_opt len with
          | Some n when n >= 0 && eol + 1 + n <= String.length s ->
            let payload = String.sub s (eol + 1) n in
            if String.equal digest (Digest.to_hex (Digest.string payload)) then (
              match Cache.decode_rows payload with
              | Some rows ->
                entries := (addr, rows) :: !entries;
                pos := eol + 1 + n;
                valid := !pos
              | None -> ok := false)
            else ok := false
          | _ -> ok := false)
        | _ -> ok := false)
    done;
    (List.rev !entries, !valid)
  end

let write_record oc addr rows =
  let payload = Cache.encode_rows rows in
  Printf.fprintf oc "cell %s %d %s\n%s" addr (String.length payload)
    (Digest.to_hex (Digest.string payload))
    payload

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

(* Best-effort open: an unwritable journal path degrades to "no
   journaling" (oc = None) rather than failing the sweep. *)
let open_ ?(resume = false) ~path ~fingerprint () =
  let entries = Hashtbl.create 64 in
  let t =
    { jpath = path; fp = fingerprint; entries; oc = None; jm = Mutex.create () }
  in
  mkdir_p (Filename.dirname path);
  (try
     if resume && Sys.file_exists path then begin
       let contents = read_file path in
       let parsed, valid = parse_prefix ~fp:fingerprint contents in
       List.iter (fun (addr, rows) -> Hashtbl.replace entries addr rows) parsed;
       if valid = 0 then begin
         (* Stale build or corrupt header: start the journal over. *)
         let oc = open_out_bin path in
         output_string oc (header_of fingerprint);
         flush oc;
         t.oc <- Some oc
       end
       else begin
         (* Drop the torn tail, then append after the valid prefix. *)
         let truncated =
           valid = String.length contents
           || (try Unix.truncate path valid; true
               with Unix.Unix_error _ -> false)
         in
         if truncated then begin
           let oc =
             open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
           in
           t.oc <- Some oc
         end
         else begin
           (* Truncate failed, so the torn tail is stuck on disk. Appending
              after it would hide every later record behind the corrupt one
              on the next resume — rewrite the valid prefix fresh instead. *)
           let oc = open_out_bin path in
           output_string oc (header_of fingerprint);
           List.iter (fun (addr, rows) -> write_record oc addr rows) parsed;
           flush oc;
           t.oc <- Some oc
         end
       end
     end
     else begin
       let oc = open_out_bin path in
       output_string oc (header_of fingerprint);
       flush oc;
       t.oc <- Some oc
     end
   with Sys_error _ -> ());
  t

let find t addr = Hashtbl.find_opt t.entries addr

let append t addr rows =
  (* The dedup check and the table update must both sit inside the lock:
     append runs concurrently from every pool worker, and OCaml 5's
     Hashtbl is not domain-safe — a racing replace/resize can corrupt
     the table. *)
  Mutex.lock t.jm;
  if not (Hashtbl.mem t.entries addr) then begin
    Bap_telemetry.Telemetry.Metrics.counter "journal.appends" 1;
    Hashtbl.replace t.entries addr rows;
    match t.oc with
    | Some oc -> (
      try
        write_record oc addr rows;
        (* One flush per record is the crash-safety contract: after
           [append] returns, a SIGKILL cannot lose this cell. *)
        flush oc
      with Sys_error _ -> t.oc <- None)
    | None -> ()
  end;
  Mutex.unlock t.jm

let address t = Cache.cell_address ~fingerprint:t.fp
let entries t = Hashtbl.length t.entries
let path t = t.jpath

let close_locked t =
  match t.oc with
  | Some oc ->
    (try flush oc with Sys_error _ -> ());
    close_out_noerr oc;
    t.oc <- None
  | None -> ()

let close t =
  Mutex.lock t.jm;
  close_locked t;
  Mutex.unlock t.jm

let signal_close t =
  (* Called from a signal handler, which may have interrupted the very
     thread that holds [t.jm] inside [append] — a blocking lock would
     self-deadlock. If the lock is contended we simply skip the close:
     every record is flushed as it is appended, so at most one
     in-progress record is lost, and the resume path discards a torn
     tail anyway. *)
  if Mutex.try_lock t.jm then begin
    close_locked t;
    Mutex.unlock t.jm
  end
