(** Experiments as data: a plan is a list of independent, deterministic
    cells plus a pure rendering step.

    Each cell is a closed job — it derives its own RNG from constants in
    its key, touches no state shared with other cells, and returns table
    rows instead of printing. That contract is what lets the engine run
    cells on any domain in any order, cache them content-addressed, and
    still reassemble output byte-identical to a serial run. *)

type row = string list

type cell = {
  key : string;
      (** Canonical id within the experiment, e.g. ["f=3,m=4"]. Together
          with the experiment id, scope and code fingerprint it addresses
          the cell's cache entry, so it must encode every parameter the
          cell's result depends on (the code fingerprint covers the
          rest). *)
  run : unit -> row list;
}

type t = {
  exp_id : string;  (** "E1" .. "E13". *)
  scope : string;  (** Sweep variant, e.g. ["quick"] or ["full"]. *)
  cells : cell list;
  render : (string * row list) list -> unit;
      (** Print the experiment's output given every cell's rows, in
          canonical [cells] order, keyed by [cell.key]. Runs serially on
          the main domain; all printing belongs here. *)
}

val cell : string -> (unit -> row list) -> cell

val row_cell : string -> (unit -> row) -> cell
(** Cell producing exactly one row. *)

val rows : (string * row list) list -> row list
(** Concatenate all rows in canonical order — the common rendering
    input. *)

val scope_of_quick : bool -> string

val keys : t -> string list
(** Every cell key, in canonical order — what a complete table contains,
    so renderers can name exactly which cells a DEGRADED run lost. *)

val cell_id : exp_id:string -> scope:string -> key:string -> string
(** ["E1/full/f=3,m=4"] — the human-readable cell identity used by the
    supervisor's quarantine reports and chaos schedules (the cache and
    journal use {!Cache.cell_address}, which also folds in the code
    fingerprint). *)
