(* Work-stealing pool of domains. One mutex guards the deques and the
   completion counter: the jobs this pool exists for are whole
   experiment cells (milliseconds to seconds of simulation each), so
   queue operations are nowhere near the contention point and the
   simple locking discipline keeps the completion / shutdown handshakes
   obviously correct. The stealing structure (one deque per worker,
   round-robin victim scan) is what balances an uneven batch. *)

type task = { run : unit -> unit }

type state = {
  jobs : int;
  m : Mutex.t;
  work : Condition.t; (* workers sleep here when every deque is dry *)
  donec : Condition.t; (* the submitter sleeps here during a batch *)
  queues : task Queue.t array; (* queues.(i) is worker i's deque *)
  mutable pending : int; (* submitted, not yet completed *)
  mutable stop : bool;
}

type t =
  | Inline
  | Par of { st : state; domains : unit Domain.t array; mutable down : bool }

let default_jobs () = Domain.recommended_domain_count ()

(* Pop the caller's own deque, else steal from the first non-empty peer
   (scanning round-robin from the caller). Must hold [st.m]. *)
let find_task st i =
  let rec scan k =
    if k = st.jobs then None
    else
      let j = (i + k) mod st.jobs in
      if Queue.is_empty st.queues.(j) then scan (k + 1)
      else begin
        if k > 0 then Bap_telemetry.Telemetry.Metrics.counter "pool.steals" 1;
        Some (Queue.pop st.queues.(j))
      end
  in
  scan 0

let complete_one st =
  st.pending <- st.pending - 1;
  if st.pending = 0 then Condition.broadcast st.donec

(* Workers own slot [1 .. jobs-1]; slot 0 belongs to the submitter. *)
let worker st i =
  Mutex.lock st.m;
  let rec loop () =
    match find_task st i with
    | Some t ->
      Mutex.unlock st.m;
      t.run ();
      Mutex.lock st.m;
      complete_one st;
      loop ()
    | None ->
      if st.stop then Mutex.unlock st.m
      else begin
        Condition.wait st.work st.m;
        loop ()
      end
  in
  loop ()

let create ~jobs =
  if jobs <= 1 then Inline
  else
    let st =
      {
        jobs;
        m = Mutex.create ();
        work = Condition.create ();
        donec = Condition.create ();
        queues = Array.init jobs (fun _ -> Queue.create ());
        pending = 0;
        stop = false;
      }
    in
    let domains =
      Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker st (k + 1)))
    in
    Par { st; domains; down = false }

let size = function Inline -> 1 | Par { st; _ } -> st.jobs

(* A raising [on_result] callback would kill the worker domain that ran
   it and deadlock the batch's completion handshake, so it is guarded:
   persistence hooks are best-effort by contract and report their own
   failures through their own channels (e.g. the journal degrading to
   closed). *)
(* LINT: waive R001 guard keeps worker domains alive; hooks self-report *)
let guarded_cb cb i = try cb i with _ -> ()

let run_all ?on_result t fs =
  let notify i = match on_result with Some cb -> guarded_cb cb i | None -> () in
  match t with
  | Inline ->
    Array.mapi
      (fun i f ->
        let r = try Ok (f ()) with e -> Error e in
        notify i;
        r)
      fs
  | Par p ->
    if p.down then invalid_arg "Pool.run_all: pool is shut down";
    let st = p.st in
    let n = Array.length fs in
    let results =
      Array.map (fun _ -> Error (Invalid_argument "Pool.run_all: task never ran")) fs
    in
    if n > 0 then begin
      Mutex.lock st.m;
      Array.iteri
        (fun i f ->
          let run () =
            results.(i) <- (try Ok (f ()) with e -> Error e);
            notify i
          in
          Queue.push { run } st.queues.(i mod st.jobs))
        fs;
      st.pending <- st.pending + n;
      Bap_telemetry.Telemetry.Metrics.gauge_max "pool.pending" st.pending;
      Condition.broadcast st.work;
      (* The submitting domain works through the batch too (as worker 0)
         and only sleeps once every remaining task is already running on
         some other domain. *)
      let rec help () =
        if st.pending > 0 then
          match find_task st 0 with
          | Some tk ->
            Mutex.unlock st.m;
            tk.run ();
            Mutex.lock st.m;
            complete_one st;
            help ()
          | None ->
            Condition.wait st.donec st.m;
            help ()
      in
      help ();
      Mutex.unlock st.m
    end;
    results

let shutdown = function
  | Inline -> ()
  | Par p ->
    if not p.down then begin
      p.down <- true;
      Mutex.lock p.st.m;
      p.st.stop <- true;
      Condition.broadcast p.st.work;
      Mutex.unlock p.st.m;
      Array.iter Domain.join p.domains
    end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
