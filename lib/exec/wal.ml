(* Reusable write-ahead log core.

   Extracted from the sweep journal (PR 4) so the serve layer can reuse
   the same digest-framed record / torn-tail machinery for its instance
   journal. A WAL is a header line followed by framed records:

     <magic> <fingerprint>\n
     rec <tag> <key> <payload-bytes> <md5 hex of payload>\n
     <payload>
     rec ...

   [magic] names the log kind ("bap-journal 1", "bap-serve-journal 1");
   the fingerprint makes a log written by a different build invalid as a
   whole, exactly like the cache. [tag] and [key] are caller-chosen
   space-free tokens; the digest makes any torn or damaged record — and
   everything after it — detectable. One flush per record is the
   crash-safety contract: after [append] returns, a SIGKILL cannot lose
   that record.

   Opening is best-effort: an unwritable path degrades to "no logging"
   (oc = None), but loudly — a stderr warning plus a telemetry instant —
   so an operator can tell durability is off (the silent version of this
   degradation was the ISSUE 9 satellite bug). *)

module Tel = Bap_telemetry.Telemetry

type record = { tag : string; key : string; payload : string }

type t = {
  wpath : string;
  magic : string;
  fp : string;
  mutable loaded : record list;
  mutable appends : int;
  mutable oc : out_channel option;
  wm : Mutex.t;
}

let header_of ~magic fp = Printf.sprintf "%s %s\n" magic fp

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let token_ok s = s <> "" && not (String.contains s ' ') && not (String.contains s '\n')

(* Parse the longest valid prefix. Returns the records found (in file
   order) and the byte offset where validity ends. A header mismatch
   validates zero bytes, discarding the stale log wholesale. *)
let parse_prefix ~magic ~fp s =
  let header = header_of ~magic fp in
  let hlen = String.length header in
  if String.length s < hlen || not (String.equal (String.sub s 0 hlen) header)
  then ([], 0)
  else begin
    let records = ref [] in
    let pos = ref hlen in
    let valid = ref hlen in
    let ok = ref true in
    while !ok do
      match String.index_from_opt s !pos '\n' with
      | None -> ok := false
      | Some eol -> (
        let line = String.sub s !pos (eol - !pos) in
        match String.split_on_char ' ' line with
        | [ "rec"; tag; key; len; digest ] -> (
          match int_of_string_opt len with
          | Some n when n >= 0 && eol + 1 + n <= String.length s ->
            let payload = String.sub s (eol + 1) n in
            if String.equal digest (Digest.to_hex (Digest.string payload))
            then begin
              records := { tag; key; payload } :: !records;
              pos := eol + 1 + n;
              valid := !pos
            end
            else ok := false
          | _ -> ok := false)
        | _ -> ok := false)
    done;
    (List.rev !records, !valid)
  end

let write_record oc { tag; key; payload } =
  Printf.fprintf oc "rec %s %s %d %s\n%s" tag key (String.length payload)
    (Digest.to_hex (Digest.string payload))
    payload

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

(* The loud half of best-effort degradation (ISSUE 9 satellite): the
   operator must be able to tell durability is off. *)
let warn_degraded ~magic ~path reason =
  Tel.Metrics.counter "wal.degraded" 1;
  Tel.instant ~cat:"exec" ~name:"wal_degraded"
    ~attrs:(fun () ->
      [ ("magic", Tel.Str magic); ("path", Tel.Str path);
        ("reason", Tel.Str reason) ])
    ();
  Printf.eprintf
    "[wal] WARNING: %s at %s is disabled (%s); running WITHOUT durability\n%!"
    magic path reason

let open_ ?(resume = false) ~magic ~path ~fingerprint () =
  let t =
    { wpath = path; magic; fp = fingerprint; loaded = []; appends = 0;
      oc = None; wm = Mutex.create () }
  in
  mkdir_p (Filename.dirname path);
  try
    if resume && Sys.file_exists path then begin
      let contents = read_file path in
      let parsed, valid = parse_prefix ~magic ~fp:fingerprint contents in
      t.loaded <- parsed;
      if valid = 0 then begin
        (* Stale build or corrupt header: start the log over. *)
        let oc = open_out_bin path in
        output_string oc (header_of ~magic fingerprint);
        flush oc;
        t.oc <- Some oc;
        t.loaded <- [];
        t
      end
      else begin
        (* Drop the torn tail, then append after the valid prefix. *)
        let truncated =
          valid = String.length contents
          || (try Unix.truncate path valid; true
              with Unix.Unix_error _ -> false)
        in
        if truncated then begin
          let oc =
            open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
          in
          t.oc <- Some oc
        end
        else begin
          (* Truncate failed, so the torn tail is stuck on disk. Appending
             after it would hide every later record behind the corrupt one
             on the next resume — rewrite the valid prefix fresh instead. *)
          let oc = open_out_bin path in
          output_string oc (header_of ~magic fingerprint);
          List.iter (fun r -> write_record oc r) parsed;
          flush oc;
          t.oc <- Some oc
        end;
        t
      end
    end
    else begin
      let oc = open_out_bin path in
      output_string oc (header_of ~magic fingerprint);
      flush oc;
      t.oc <- Some oc;
      t
    end
  with Sys_error msg ->
    warn_degraded ~magic ~path msg;
    t

let records t = t.loaded
let active t = t.oc <> None
let path t = t.wpath
let appends t = t.appends

let append t ~tag ~key payload =
  if not (token_ok tag && token_ok key) then
    invalid_arg "Wal.append: tag/key must be non-empty and space/newline-free";
  Mutex.lock t.wm;
  (match t.oc with
  | Some oc -> (
    try
      write_record oc { tag; key; payload };
      (* One flush per record is the crash-safety contract. *)
      flush oc;
      t.appends <- t.appends + 1
    with Sys_error msg ->
      t.oc <- None;
      warn_degraded ~magic:t.magic ~path:t.wpath msg)
  | None -> ());
  Mutex.unlock t.wm

let close_locked t =
  match t.oc with
  | Some oc ->
    (try flush oc with Sys_error _ -> ());
    close_out_noerr oc;
    t.oc <- None
  | None -> ()

let close t =
  Mutex.lock t.wm;
  close_locked t;
  Mutex.unlock t.wm

let signal_close t =
  (* Called from a signal handler, which may have interrupted the very
     thread that holds [t.wm] inside [append] — a blocking lock would
     self-deadlock. If the lock is contended we simply skip the close:
     every record is flushed as it is appended, so at most one
     in-progress record is lost, and the resume path discards a torn
     tail anyway. *)
  if Mutex.try_lock t.wm then begin
    close_locked t;
    Mutex.unlock t.wm
  end
