(* Supervised cell execution: the self-healing layer between the plans
   and the pool.

   Every attempt at a cell runs under an optional watchdog deadline;
   raises and timeouts are captured as typed [failure_kind]s instead of
   tearing down the pool; failed cells are retried up to a bounded
   budget with a deterministic (seeded, no wall-clock) backoff ledger;
   cells that exhaust the budget are quarantined and the sweep finishes
   DEGRADED instead of dying.

   Two deliberate asymmetries, both documented in DESIGN.md:

   - The watchdog is *cooperative*. OCaml domains cannot be killed, so
     cancellation is a flag the running cell observes at {!tick} (and
     which injected chaos hangs poll). A cell that never ticks cannot
     be interrupted — the deadline then bounds only cooperative and
     injected work. The watchdog's clock is real wall time, but the
     sweep's *output* never depends on it: a timeout only decides
     whether an attempt failed, and chaos schedules make that decision
     reproducible.

   - The backoff ledger is computed, not slept. Cells are deterministic
     in-process jobs, so re-running sooner cannot perturb them; the
     ledger records the exact schedule a multi-process or remote
     backend would honour, and re-runs of the same seed produce the
     same ledger byte for byte. *)

type injected = Inject_crash | Inject_hang

type failure_kind =
  | Crashed of string  (** the attempt raised; [Printexc.to_string] of it *)
  | Timed_out of float  (** the watchdog deadline (seconds) expired *)

type attempt_record = { attempt : int; kind : failure_kind; backoff_ms : int }

type 'a outcome =
  | Completed of { value : 'a; attempts : int; ledger : attempt_record list }
  | Quarantined of { ledger : attempt_record list }

type config = {
  retries : int;
  timeout_s : float option;
  seed : int;
  inject : (key:string -> attempt:int -> injected option) option;
}

let default_config = { retries = 2; timeout_s = None; seed = 0; inject = None }

exception Cell_timeout

(* ---------- the watchdog ---------- *)

type token = {
  deadline : float;
  cancelled : bool Atomic.t;
  finished : bool Atomic.t;
}

type watchdog = {
  wm : Mutex.t;
  mutable watched : token list;
  mutable wstop : bool;
  mutable dom : unit Domain.t option;
}

(* The running attempt's token, so arbitrarily deep cell code can reach
   its own cancellation flag without threading it through every call. *)
let current_token : token option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let watchdog_tick_s = 0.005

let rec watchdog_loop wd =
  Mutex.lock wd.wm;
  let stop = wd.wstop in
  if not stop then begin
    let now = Unix.gettimeofday () in
    wd.watched <- List.filter (fun tok -> not (Atomic.get tok.finished)) wd.watched;
    List.iter
      (fun tok -> if now > tok.deadline then Atomic.set tok.cancelled true)
      wd.watched
  end;
  Mutex.unlock wd.wm;
  if not stop then begin
    Unix.sleepf watchdog_tick_s;
    watchdog_loop wd
  end

let start_watchdog () =
  let wd = { wm = Mutex.create (); watched = []; wstop = false; dom = None } in
  wd.dom <- Some (Domain.spawn (fun () -> watchdog_loop wd));
  wd

let stop_watchdog wd =
  Mutex.lock wd.wm;
  wd.wstop <- true;
  Mutex.unlock wd.wm;
  match wd.dom with
  | Some d ->
    Domain.join d;
    wd.dom <- None
  | None -> ()

(* Run [f] (given its token) under a deadline. The token is published in
   domain-local storage for {!tick} and retired on every exit path. *)
let guard wd ~timeout f =
  let tok =
    {
      deadline = Unix.gettimeofday () +. timeout;
      cancelled = Atomic.make false;
      finished = Atomic.make false;
    }
  in
  Mutex.lock wd.wm;
  wd.watched <- tok :: wd.watched;
  Mutex.unlock wd.wm;
  Domain.DLS.set current_token (Some tok);
  let retire () =
    Atomic.set tok.finished true;
    Domain.DLS.set current_token None
  in
  match f tok with
  | v ->
    retire ();
    Ok v
  | exception Cell_timeout ->
    retire ();
    Error (Timed_out timeout)
  | exception e ->
    retire ();
    Error (Crashed (Printexc.to_string e))

let tick () =
  match Domain.DLS.get current_token with
  | Some tok when Atomic.get tok.cancelled -> raise Cell_timeout
  | _ -> ()

(* Injected hang: spin politely until the watchdog cancels us — the
   shape of a real hung cell, minus the infinite part. *)
let hang_until_cancelled tok =
  while not (Atomic.get tok.cancelled) do
    Unix.sleepf 0.001
  done;
  raise Cell_timeout

(* ---------- deterministic backoff ---------- *)

let djb2 s =
  String.fold_left (fun h c -> ((h * 33) + Char.code c) land max_int) 5381 s

let backoff_ms ~seed ~key ~attempt =
  (* Exponential base with seeded jitter in [0, base): collision-free
     enough to spread a fleet, fully determined by (seed, key, attempt). *)
  let base = 25 * (1 lsl min attempt 6) in
  base + (djb2 (Printf.sprintf "%d|%s|%d" seed key attempt) mod base)

(* ---------- the supervisor ---------- *)

type t = { config : config; watchdog : watchdog option }

let start config =
  {
    config;
    watchdog =
      (match config.timeout_s with
      | Some _ -> Some (start_watchdog ())
      | None -> None);
  }

let stop t = Option.iter stop_watchdog t.watchdog

let with_supervisor config f =
  let t = start config in
  Fun.protect ~finally:(fun () -> stop t) (fun () -> f t)

let run_attempt t ~key ~attempt f =
  let injected =
    match t.config.inject with None -> None | Some g -> g ~key ~attempt
  in
  match (injected, t.watchdog, t.config.timeout_s) with
  | Some Inject_crash, _, _ -> Error (Crashed "chaos: injected worker crash")
  | Some Inject_hang, Some wd, Some timeout ->
    guard wd ~timeout (fun tok -> hang_until_cancelled tok)
  | Some Inject_hang, _, _ ->
    (* No watchdog configured: the hang is detected degenerately, at
       once, so chaos schedules stay runnable in every configuration. *)
    Error (Timed_out 0.)
  | None, Some wd, Some timeout -> guard wd ~timeout (fun _tok -> f ())
  | None, _, _ -> (
    match f () with
    | v -> Ok v
    | exception Cell_timeout -> Error (Timed_out 0.)
    | exception e -> Error (Crashed (Printexc.to_string e)))

let supervise t ~key f =
  let module Tel = Bap_telemetry.Telemetry in
  let retries = max 0 t.config.retries in
  let rec go attempt ledger =
    match run_attempt t ~key ~attempt f with
    | Ok v -> Completed { value = v; attempts = attempt + 1; ledger = List.rev ledger }
    | Error kind ->
      let entry =
        { attempt; kind; backoff_ms = backoff_ms ~seed:t.config.seed ~key ~attempt }
      in
      let kind_name =
        match kind with Crashed _ -> "crashed" | Timed_out _ -> "timed_out"
      in
      Tel.Metrics.counter "supervisor.failed_attempts" 1;
      if attempt >= retries then begin
        Tel.instant ~cat:"exec" ~name:"quarantine"
          ~attrs:(fun () ->
            [
              ("key", Tel.Str key);
              ("attempt", Tel.Int attempt);
              ("kind", Tel.Str kind_name);
            ])
          ();
        Tel.Metrics.counter "supervisor.quarantined" 1;
        Quarantined { ledger = List.rev (entry :: ledger) }
      end
      else begin
        Tel.instant ~cat:"exec" ~name:"retry"
          ~attrs:(fun () ->
            [
              ("key", Tel.Str key);
              ("attempt", Tel.Int attempt);
              ("kind", Tel.Str kind_name);
              ("backoff_ms", Tel.Int entry.backoff_ms);
            ])
          ();
        Tel.Metrics.counter "supervisor.retries" 1;
        go (attempt + 1) (entry :: ledger)
      end
  in
  go 0 []

(* ---------- reporting ---------- *)

let pp_failure ppf = function
  | Crashed msg -> Format.fprintf ppf "crashed: %s" msg
  | Timed_out s -> Format.fprintf ppf "timed out after %.3gs" s

let pp_attempt ppf r =
  Format.fprintf ppf "attempt %d: %a (backoff %dms)" r.attempt pp_failure r.kind
    r.backoff_ms

let pp_ledger ppf ledger =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
    pp_attempt ppf ledger

(* ---------- signal handling for the sweep CLIs ---------- *)

let install_exit_handlers ?(on_signal = fun ~signal_name:_ -> ()) () =
  let handler name code =
    Sys.Signal_handle
      (fun _ ->
        on_signal ~signal_name:name;
        (* A JSONL trace of an interrupted run is the one most worth
           having; flush it with the signal-safe path before dying.
           Runs that exit normally flush via [shutdown] instead. *)
        Bap_telemetry.Telemetry.signal_shutdown ();
        exit code)
  in
  (* 128 + signal number, the shell convention for signal deaths. *)
  (try Sys.set_signal Sys.sigint (handler "SIGINT" 130)
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigterm (handler "SIGTERM" 143)
  with Invalid_argument _ | Sys_error _ -> ()
