(** Work-stealing pool of OCaml 5 domains.

    Built for coarse-grained jobs (whole experiment cells, milliseconds
    to seconds each): every worker owns a deque of tasks and steals from
    its peers once its own runs dry, so an uneven batch still keeps all
    domains busy. No dependency beyond the standard library.

    A pool with [jobs <= 1] spawns no domains at all and runs every
    batch inline, in submission order — the exact serial semantics the
    deterministic experiment tables are specified against. *)

type t

val create : jobs:int -> t
(** [create ~jobs] starts [jobs - 1] worker domains (the submitting
    domain acts as the remaining worker while it waits). [jobs <= 1]
    creates an inline pool with no domains. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val size : t -> int
(** Parallelism the pool was created with (>= 1). *)

val run_all :
  ?on_result:(int -> unit) -> t -> (unit -> 'a) array -> ('a, exn) result array
(** Run a batch, blocking until every task has finished. Result [i]
    belongs to task [i] whatever order the tasks actually ran in. A
    task's exception is captured in its own slot; it neither kills the
    worker nor poisons the rest of the batch, and the pool stays usable
    for further batches. Raises [Invalid_argument] after {!shutdown}.

    [on_result i] fires on the domain that ran task [i], right after its
    slot is written — the engine's incremental-persistence hook (journal
    append, cache store), so a kill mid-batch loses only unfinished
    cells. The callback must be thread-safe; exceptions it raises are
    swallowed (a raising hook would kill its worker domain). *)

val shutdown : t -> unit
(** Join all worker domains. Idempotent. Any batch submitted after
    shutdown raises. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] and shuts the pool down afterwards,
    also on exception. *)
