type stats = {
  total_cells : int;
  cache_hits : int;
  executed : int;
  jobs : int;
  wall : float;
}

(* A cell of some plan, flattened into the global batch. *)
type slot = {
  plan_idx : int;
  cell : Plan.cell;
  addr : string option; (* cache address, when a cache is in play *)
  mutable result : Plan.row list option; (* None until computed *)
}

let run ?pool ?(cache : Cache.t option) ?(render = true) (plans : Plan.t list) =
  let t0 = Unix.gettimeofday () in
  let slots =
    List.concat
      (List.mapi
         (fun plan_idx (p : Plan.t) ->
           List.map
             (fun (cell : Plan.cell) ->
               let addr =
                 Option.map
                   (fun c ->
                     Cache.key c ~exp_id:p.exp_id ~scope:p.scope ~cell_key:cell.key)
                   cache
               in
               { plan_idx; cell; addr; result = None })
             p.cells)
         plans)
  in
  (* Cache pass. *)
  List.iter
    (fun s ->
      match (cache, s.addr) with
      | Some c, Some a -> s.result <- Cache.find c a
      | _ -> ())
    slots;
  let misses = List.filter (fun s -> s.result = None) slots in
  let cache_hits = List.length slots - List.length misses in
  (* Compute pass: the pool when given, inline otherwise. *)
  let tasks =
    Array.of_list (List.map (fun s () -> s.cell.Plan.run ()) misses)
  in
  let results =
    match pool with
    | Some pool -> Pool.run_all pool tasks
    | None -> Array.map (fun f -> try Ok (f ()) with e -> Error e) tasks
  in
  Array.iter (function Error e -> raise e | Ok _ -> ()) results;
  List.iteri
    (fun i s ->
      match results.(i) with
      | Ok rows -> s.result <- Some rows
      | Error _ -> assert false)
    misses;
  (* Persist fresh results. *)
  (match cache with
  | None -> ()
  | Some c ->
    List.iter
      (fun s ->
        match (s.addr, s.result) with
        | Some a, Some rows -> Cache.store c a rows
        | _ -> ())
      misses);
  let wall = Unix.gettimeofday () -. t0 in
  (* Render serially, in plan order, cells in canonical order. *)
  if render then
    List.iteri
      (fun plan_idx (p : Plan.t) ->
        let mine = List.filter (fun s -> s.plan_idx = plan_idx) slots in
        let keyed =
          List.map (fun s -> (s.cell.Plan.key, Option.get s.result)) mine
        in
        p.render keyed)
      plans;
  {
    total_cells = List.length slots;
    cache_hits;
    executed = List.length misses;
    jobs = (match pool with Some p -> Pool.size p | None -> 1);
    wall;
  }

let run_serial plan = ignore (run [ plan ])

let pp_stats ppf s =
  Format.fprintf ppf "%d cells: %d cached, %d ran on %d worker%s in %.2fs"
    s.total_cells s.cache_hits s.executed s.jobs
    (if s.jobs = 1 then "" else "s")
    s.wall
