module Tel = Bap_telemetry.Telemetry
module Memprobe = Bap_telemetry.Memprobe

type stats = {
  total_cells : int;
  cache_hits : int;
  journal_hits : int;
  executed : int;
  retried : int;
  quarantined : (string * string) list;
  ledgers : (string * Supervisor.attempt_record list) list;
  cache_corrupt : int;
  jobs : int;
  wall : float;
}

let degraded s = s.quarantined <> []

(* A cell of some plan, flattened into the global batch. *)
type slot = {
  plan_idx : int;
  exp_id : string;
  cell : Plan.cell;
  cid : string; (* Plan.cell_id — supervisor / chaos / report identity *)
  addr : string option; (* cache address, when a cache is in play *)
  jaddr : string option; (* journal address, when a journal is in play *)
  mutable result : Plan.row list option; (* None until computed *)
  mutable origin : string; (* "journal-hit" / "cache-hit", "" when computed *)
  mutable ledger : Supervisor.attempt_record list;
  mutable quarantined : bool;
}

let run ?pool ?(cache : Cache.t option) ?(journal : Journal.t option)
    ?(supervisor : Supervisor.t option) ?(render = true) (plans : Plan.t list) =
  let t0 = Unix.gettimeofday () in
  (* The sweep span's end attributes are deliberately scheduling-free:
     no jobs, no wall time — those live in the metrics snapshot, so the
     logical trace stays identical across --jobs settings. *)
  let out = ref None in
  let sweep_mw0 = ref 0. in
  Tel.span ~cat:"exec" ~name:"sweep"
    ~attrs:(fun () ->
      if Memprobe.enabled () then sweep_mw0 := Memprobe.domain_minor_words ();
      [ ("plans", Tel.Int (List.length plans)) ])
    ~end_attrs:(fun () ->
      let base =
        match !out with
        | None -> []
        | Some s ->
          [
            ("cells", Tel.Int s.total_cells);
            ("executed", Tel.Int s.executed);
            ("cache_hits", Tel.Int s.cache_hits);
            ("journal_hits", Tel.Int s.journal_hits);
            ("retried", Tel.Int s.retried);
            ("quarantined", Tel.Int (List.length s.quarantined));
          ]
      in
      (* The submitting domain's own words: at --jobs 1 this includes
         the (inline) cells, which the alloc report subtracts back out;
         at --jobs > 1 the cells allocate on worker domains and this is
         pure harness overhead (journal, cache, render). *)
      if Memprobe.enabled () then
        base
        @ [
            ( "minor_words",
              Tel.Int
                (int_of_float (Memprobe.domain_minor_words () -. !sweep_mw0))
            );
          ]
      else base)
  @@ fun () ->
  let slots =
    List.concat
      (List.mapi
         (fun plan_idx (p : Plan.t) ->
           List.map
             (fun (cell : Plan.cell) ->
               let addr =
                 Option.map
                   (fun c ->
                     Cache.key c ~exp_id:p.exp_id ~scope:p.scope ~cell_key:cell.key)
                   cache
               in
               let jaddr =
                 Option.map
                   (fun j ->
                     Journal.address j ~exp_id:p.exp_id ~scope:p.scope
                       ~cell_key:cell.key)
                   journal
               in
               {
                 plan_idx;
                 exp_id = p.exp_id;
                 cell;
                 cid = Plan.cell_id ~exp_id:p.exp_id ~scope:p.scope ~key:cell.key;
                 addr;
                 jaddr;
                 result = None;
                 origin = "";
                 ledger = [];
                 quarantined = false;
               })
             p.cells)
         plans)
  in
  (* Journal pass first: the journal is this sweep's own write-ahead log,
     so a resumed run trusts it before consulting the shared cache. *)
  List.iter
    (fun s ->
      match (journal, s.jaddr) with
      | Some j, Some a ->
        s.result <- Journal.find j a;
        if s.result <> None then s.origin <- "journal-hit"
      | _ -> ())
    slots;
  let journal_hits = List.length (List.filter (fun s -> s.result <> None) slots) in
  (* Cache pass. *)
  List.iter
    (fun s ->
      match (cache, s.addr) with
      | Some c, Some a when s.result = None ->
        s.result <- Cache.find c a;
        if s.result <> None then s.origin <- "cache-hit"
      | _ -> ())
    slots;
  (* Short-circuited cells still appear in the trace: one instant per
     hit, in deterministic slot order on the main track. *)
  List.iter
    (fun s ->
      if s.origin <> "" then
        Tel.instant ~cat:"exec" ~name:"cell"
          ~attrs:(fun () ->
            [ ("id", Tel.Str s.cid); ("outcome", Tel.Str s.origin) ])
          ())
    slots;
  let misses = List.filter (fun s -> s.result = None) slots in
  let cache_hits = List.length slots - List.length misses - journal_hits in
  (* Anything already known (journal or cache hit) still belongs in the
     journal, so a later resume never depends on the cache's fate. *)
  let persist_known s =
    match (journal, s.jaddr, s.result) with
    | Some j, Some a, Some rows -> Journal.append j a rows
    | _ -> ()
  in
  List.iter (fun s -> if s.result <> None then persist_known s) slots;
  (* Persist one freshly computed slot: journal first (the crash-safety
     contract), then the cache. Runs on the computing domain via the
     pool's on_result hook, so a kill loses only unfinished cells. *)
  let persist_fresh s =
    (match (journal, s.jaddr, s.result) with
    | Some j, Some a, Some rows -> Journal.append j a rows
    | _ -> ());
    match (cache, s.addr, s.result) with
    | Some c, Some a, Some rows -> Cache.store c a rows
    | _ -> ()
  in
  (* Compute pass: the pool when given, inline otherwise. Supervised
     tasks fold every failure into their slot and never raise; the
     unsupervised path keeps the historical re-raise semantics. *)
  let miss_arr = Array.of_list misses in
  (* Each executing cell gets its own telemetry track named by its cell
     id: per-track event order is then the cell's own program order,
     independent of which domain ran it or in what interleaving. *)
  (* With the memprobe on, the cell span's End event carries the cell's
     domain-local minor-words delta (a pool task is a whole cell on one
     domain, so the number is deterministic at any --jobs), the cell is
     a memprobe frame ("cell": the runs inside self-subtract from it in
     the metrics registry), and the per-cell words land in the
     [exec.cell_minor_words] histogram. Probe off: exact pre-probe
     bytes, nothing measured. *)
  let in_cell_span s body () =
    Tel.with_track s.cid @@ fun () ->
    let measured = Memprobe.enabled () in
    let mw0 = if measured then Memprobe.domain_minor_words () else 0. in
    let finish () =
      if measured then
        Tel.Metrics.observe "exec.cell_minor_words"
          (int_of_float (Memprobe.domain_minor_words () -. mw0))
    in
    Fun.protect ~finally:finish @@ fun () ->
    Memprobe.phase_if measured "cell" @@ fun () ->
    Tel.span ~cat:"exec" ~name:"cell"
      ~attrs:(fun () -> [ ("id", Tel.Str s.cid) ])
      ~end_attrs:(fun () ->
        let base =
          [
            ( "outcome",
              Tel.Str (if s.quarantined then "quarantined" else "executed") );
            ("failed_attempts", Tel.Int (List.length s.ledger));
          ]
        in
        if measured then
          base
          @ [
              ( "minor_words",
                Tel.Int (int_of_float (Memprobe.domain_minor_words () -. mw0))
              );
            ]
        else base)
      body
  in
  let tasks =
    Array.map
      (fun s ->
        match supervisor with
        | None ->
          in_cell_span s (fun () ->
              s.result <- Some (s.cell.Plan.run ());
              ())
        | Some sup ->
          in_cell_span s (fun () ->
              (match Supervisor.supervise sup ~key:s.cid s.cell.Plan.run with
              | Supervisor.Completed { value; ledger; _ } ->
                s.result <- Some value;
                s.ledger <- ledger
              | Supervisor.Quarantined { ledger } ->
                s.quarantined <- true;
                s.ledger <- ledger);
              ()))
      miss_arr
  in
  let on_result i = persist_fresh miss_arr.(i) in
  let results =
    match pool with
    | Some pool -> Pool.run_all ~on_result pool tasks
    | None ->
      Array.mapi
        (fun i f ->
          let r = try Ok (f ()) with e -> Error e in
          on_result i;
          r)
        tasks
  in
  (* Without a supervisor a raise still aborts the sweep (after the batch
     has settled and everything finished is journaled). *)
  Array.iter (function Error e -> raise e | Ok () -> ()) results;
  let wall = Unix.gettimeofday () -. t0 in
  (* Render serially, in plan order, cells in canonical order.
     Quarantined cells are simply absent from their plan's input — the
     renderer prints a partial table and the runner marks it DEGRADED. *)
  if render then
    List.iteri
      (fun plan_idx (p : Plan.t) ->
        let mine = List.filter (fun s -> s.plan_idx = plan_idx) slots in
        let keyed =
          List.filter_map
            (fun s ->
              Option.map (fun rows -> (s.cell.Plan.key, rows)) s.result)
            mine
        in
        p.render keyed)
      plans;
  let failed = List.filter (fun s -> s.ledger <> []) misses in
  let s =
    {
      total_cells = List.length slots;
      cache_hits;
      journal_hits;
      executed = Array.length miss_arr;
      retried =
        List.fold_left
          (fun acc s ->
            acc
            + List.length s.ledger
            - if s.quarantined then 1 else 0
            (* a quarantined cell's final failure was not retried *))
          0 failed;
      quarantined =
        List.filter_map
          (fun s -> if s.quarantined then Some (s.exp_id, s.cell.Plan.key) else None)
          misses;
      ledgers = List.map (fun s -> (s.cid, s.ledger)) failed;
      cache_corrupt = (match cache with Some c -> Cache.corrupt_count c | None -> 0);
      jobs = (match pool with Some p -> Pool.size p | None -> 1);
      wall;
    }
  in
  Tel.Metrics.counter "exec.cells" s.total_cells;
  Tel.Metrics.counter "exec.cache_hits" s.cache_hits;
  Tel.Metrics.counter "exec.journal_hits" s.journal_hits;
  Tel.Metrics.counter "exec.executed" s.executed;
  Tel.Metrics.counter "exec.retried" s.retried;
  Tel.Metrics.counter "exec.quarantined" (List.length s.quarantined);
  Tel.Metrics.counter "exec.cache_corrupt" s.cache_corrupt;
  out := Some s;
  s

let run_serial plan = ignore (run [ plan ])

let pp_stats ppf s =
  Format.fprintf ppf "%d cells: %d cached, %d ran on %d worker%s in %.2fs"
    s.total_cells s.cache_hits s.executed s.jobs
    (if s.jobs = 1 then "" else "s")
    s.wall;
  if s.journal_hits > 0 then
    Format.fprintf ppf ", %d from journal" s.journal_hits;
  if s.retried > 0 then
    Format.fprintf ppf ", %d failed attempt(s) retried" s.retried;
  if s.cache_corrupt > 0 then
    Format.fprintf ppf ", cache corrupt entries: %d" s.cache_corrupt;
  if s.quarantined <> [] then
    Format.fprintf ppf ", DEGRADED: %d cell(s) quarantined"
      (List.length s.quarantined)

(* Machine-readable form of the same report, for --stats-json and
   bap_gate --check-stats. Keys are fixed; the parser side lives in
   Bap_telemetry.Json. *)
let stats_json (s : stats) =
  let esc = Bap_telemetry.Json.escape in
  let attempt (a : Supervisor.attempt_record) =
    let kind, detail =
      match a.kind with
      | Supervisor.Crashed msg -> ("crashed", Printf.sprintf ", \"detail\": \"%s\"" (esc msg))
      | Supervisor.Timed_out d -> ("timed_out", Printf.sprintf ", \"deadline_s\": %g" d)
    in
    Printf.sprintf "{\"attempt\": %d, \"kind\": \"%s\"%s, \"backoff_ms\": %d}"
      a.attempt kind detail a.backoff_ms
  in
  let quarantined =
    List.map
      (fun (exp_id, key) ->
        Printf.sprintf "{\"exp_id\": \"%s\", \"key\": \"%s\"}" (esc exp_id) (esc key))
      s.quarantined
  in
  let ledgers =
    List.map
      (fun (cid, ledger) ->
        Printf.sprintf "{\"cell\": \"%s\", \"attempts\": [%s]}" (esc cid)
          (String.concat ", " (List.map attempt ledger)))
      s.ledgers
  in
  Printf.sprintf
    "{\n\
    \  \"version\": 1,\n\
    \  \"total_cells\": %d,\n\
    \  \"cache_hits\": %d,\n\
    \  \"journal_hits\": %d,\n\
    \  \"executed\": %d,\n\
    \  \"retried\": %d,\n\
    \  \"cache_corrupt\": %d,\n\
    \  \"jobs\": %d,\n\
    \  \"wall_s\": %.3f,\n\
    \  \"quarantined\": [%s],\n\
    \  \"ledgers\": [%s]\n\
     }\n"
    s.total_cells s.cache_hits s.journal_hits s.executed s.retried s.cache_corrupt
    s.jobs s.wall
    (String.concat ", " quarantined)
    (String.concat ", " ledgers)
