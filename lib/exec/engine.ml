type stats = {
  total_cells : int;
  cache_hits : int;
  journal_hits : int;
  executed : int;
  retried : int;
  quarantined : (string * string) list;
  ledgers : (string * Supervisor.attempt_record list) list;
  cache_corrupt : int;
  jobs : int;
  wall : float;
}

let degraded s = s.quarantined <> []

(* A cell of some plan, flattened into the global batch. *)
type slot = {
  plan_idx : int;
  exp_id : string;
  cell : Plan.cell;
  cid : string; (* Plan.cell_id — supervisor / chaos / report identity *)
  addr : string option; (* cache address, when a cache is in play *)
  jaddr : string option; (* journal address, when a journal is in play *)
  mutable result : Plan.row list option; (* None until computed *)
  mutable ledger : Supervisor.attempt_record list;
  mutable quarantined : bool;
}

let run ?pool ?(cache : Cache.t option) ?(journal : Journal.t option)
    ?(supervisor : Supervisor.t option) ?(render = true) (plans : Plan.t list) =
  let t0 = Unix.gettimeofday () in
  let slots =
    List.concat
      (List.mapi
         (fun plan_idx (p : Plan.t) ->
           List.map
             (fun (cell : Plan.cell) ->
               let addr =
                 Option.map
                   (fun c ->
                     Cache.key c ~exp_id:p.exp_id ~scope:p.scope ~cell_key:cell.key)
                   cache
               in
               let jaddr =
                 Option.map
                   (fun j ->
                     Journal.address j ~exp_id:p.exp_id ~scope:p.scope
                       ~cell_key:cell.key)
                   journal
               in
               {
                 plan_idx;
                 exp_id = p.exp_id;
                 cell;
                 cid = Plan.cell_id ~exp_id:p.exp_id ~scope:p.scope ~key:cell.key;
                 addr;
                 jaddr;
                 result = None;
                 ledger = [];
                 quarantined = false;
               })
             p.cells)
         plans)
  in
  (* Journal pass first: the journal is this sweep's own write-ahead log,
     so a resumed run trusts it before consulting the shared cache. *)
  List.iter
    (fun s ->
      match (journal, s.jaddr) with
      | Some j, Some a -> s.result <- Journal.find j a
      | _ -> ())
    slots;
  let journal_hits = List.length (List.filter (fun s -> s.result <> None) slots) in
  (* Cache pass. *)
  List.iter
    (fun s ->
      match (cache, s.addr) with
      | Some c, Some a when s.result = None -> s.result <- Cache.find c a
      | _ -> ())
    slots;
  let misses = List.filter (fun s -> s.result = None) slots in
  let cache_hits = List.length slots - List.length misses - journal_hits in
  (* Anything already known (journal or cache hit) still belongs in the
     journal, so a later resume never depends on the cache's fate. *)
  let persist_known s =
    match (journal, s.jaddr, s.result) with
    | Some j, Some a, Some rows -> Journal.append j a rows
    | _ -> ()
  in
  List.iter (fun s -> if s.result <> None then persist_known s) slots;
  (* Persist one freshly computed slot: journal first (the crash-safety
     contract), then the cache. Runs on the computing domain via the
     pool's on_result hook, so a kill loses only unfinished cells. *)
  let persist_fresh s =
    (match (journal, s.jaddr, s.result) with
    | Some j, Some a, Some rows -> Journal.append j a rows
    | _ -> ());
    match (cache, s.addr, s.result) with
    | Some c, Some a, Some rows -> Cache.store c a rows
    | _ -> ()
  in
  (* Compute pass: the pool when given, inline otherwise. Supervised
     tasks fold every failure into their slot and never raise; the
     unsupervised path keeps the historical re-raise semantics. *)
  let miss_arr = Array.of_list misses in
  let tasks =
    Array.map
      (fun s ->
        match supervisor with
        | None ->
          fun () ->
            s.result <- Some (s.cell.Plan.run ());
            ()
        | Some sup ->
          fun () ->
            (match Supervisor.supervise sup ~key:s.cid s.cell.Plan.run with
            | Supervisor.Completed { value; ledger; _ } ->
              s.result <- Some value;
              s.ledger <- ledger
            | Supervisor.Quarantined { ledger } ->
              s.quarantined <- true;
              s.ledger <- ledger);
            ())
      miss_arr
  in
  let on_result i = persist_fresh miss_arr.(i) in
  let results =
    match pool with
    | Some pool -> Pool.run_all ~on_result pool tasks
    | None ->
      Array.mapi
        (fun i f ->
          let r = try Ok (f ()) with e -> Error e in
          on_result i;
          r)
        tasks
  in
  (* Without a supervisor a raise still aborts the sweep (after the batch
     has settled and everything finished is journaled). *)
  Array.iter (function Error e -> raise e | Ok () -> ()) results;
  let wall = Unix.gettimeofday () -. t0 in
  (* Render serially, in plan order, cells in canonical order.
     Quarantined cells are simply absent from their plan's input — the
     renderer prints a partial table and the runner marks it DEGRADED. *)
  if render then
    List.iteri
      (fun plan_idx (p : Plan.t) ->
        let mine = List.filter (fun s -> s.plan_idx = plan_idx) slots in
        let keyed =
          List.filter_map
            (fun s ->
              Option.map (fun rows -> (s.cell.Plan.key, rows)) s.result)
            mine
        in
        p.render keyed)
      plans;
  let failed = List.filter (fun s -> s.ledger <> []) misses in
  {
    total_cells = List.length slots;
    cache_hits;
    journal_hits;
    executed = Array.length miss_arr;
    retried =
      List.fold_left
        (fun acc s ->
          acc
          + List.length s.ledger
          - if s.quarantined then 1 else 0
          (* a quarantined cell's final failure was not retried *))
        0 failed;
    quarantined =
      List.filter_map
        (fun s -> if s.quarantined then Some (s.exp_id, s.cell.Plan.key) else None)
        misses;
    ledgers = List.map (fun s -> (s.cid, s.ledger)) failed;
    cache_corrupt = (match cache with Some c -> Cache.corrupt_count c | None -> 0);
    jobs = (match pool with Some p -> Pool.size p | None -> 1);
    wall;
  }

let run_serial plan = ignore (run [ plan ])

let pp_stats ppf s =
  Format.fprintf ppf "%d cells: %d cached, %d ran on %d worker%s in %.2fs"
    s.total_cells s.cache_hits s.executed s.jobs
    (if s.jobs = 1 then "" else "s")
    s.wall;
  if s.journal_hits > 0 then
    Format.fprintf ppf ", %d from journal" s.journal_hits;
  if s.retried > 0 then
    Format.fprintf ppf ", %d failed attempt(s) retried" s.retried;
  if s.cache_corrupt > 0 then
    Format.fprintf ppf ", cache corrupt entries: %d" s.cache_corrupt;
  if s.quarantined <> [] then
    Format.fprintf ppf ", DEGRADED: %d cell(s) quarantined"
      (List.length s.quarantined)
