(** Crash-safe write-ahead journal for sweeps.

    Each completed cell is appended as one digest-framed record and
    flushed before the sweep moves on: after {!append} returns, a
    SIGKILL cannot lose that cell. Resuming ([open_ ~resume:true])
    replays the longest valid prefix, truncates any torn tail, and
    leaves the engine to re-run only the missing cells — output is
    byte-identical to an uninterrupted run at any [--jobs] level
    because render order comes from the plan, not completion order.

    Records are keyed by {!Cache.cell_address} under the journal's
    fingerprint; a journal written by a different build fails the header
    check and is discarded wholesale, mirroring cache invalidation.
    Framing, torn-tail truncation and flushing live in the shared
    {!Wal} core. Opening is best-effort: an unwritable path degrades to
    "no journaling" rather than failing the sweep — loudly, via the
    WAL's stderr warning and [wal_degraded] telemetry instant. *)

type t

val default_path : string
(** ["results/sweep.journal"]. *)

val open_ : ?resume:bool -> path:string -> fingerprint:string -> unit -> t
(** [resume:false] (default) truncates any existing journal and writes a
    fresh header. [resume:true] loads the valid prefix of an existing
    journal (stale-fingerprint journals load zero entries) and appends
    after it. *)

val address : t -> exp_id:string -> scope:string -> cell_key:string -> string
(** A cell's record key — {!Cache.cell_address} under this journal's
    fingerprint. *)

val find : t -> string -> Cache.rows option
(** Rows recorded for an address, if any (loaded at open or appended
    since). *)

val append : t -> string -> Cache.rows -> unit
(** Record a completed cell and flush. Duplicate addresses are ignored.
    Thread-safe. *)

val entries : t -> int
(** Number of distinct cells recorded. *)

val path : t -> string

val close : t -> unit
(** Flush and release the file handle. Idempotent. *)

val signal_close : t -> unit
(** Signal-handler-safe {!close}: acquires the journal lock with a
    non-blocking attempt, so a handler that interrupted {!append}
    mid-record cannot self-deadlock on the lock it already holds. If
    the lock is contended, nothing is done — every appended record is
    already flushed, so nothing recorded is lost. *)
