(** Supervised cell execution: watchdog deadlines, typed failures,
    bounded deterministic retry, quarantine.

    The supervisor sits between {!Engine} and the raw cell thunks. Each
    attempt runs under an optional cooperative deadline; raises and
    timeouts become typed {!failure_kind}s instead of escaping into the
    pool; failures are retried up to [config.retries] extra times with a
    deterministic seeded backoff ledger; cells that exhaust the budget
    come back as {!Quarantined} so the sweep can finish DEGRADED with
    partial tables instead of aborting.

    Cancellation is cooperative: OCaml domains cannot be killed, so the
    watchdog sets a flag that the running cell observes at {!tick}. A
    cell that never calls [tick] is not interruptible; the deadline then
    bounds only cooperative and injected work. Retry never sleeps — the
    backoff values are recorded in the ledger (what a distributed
    backend would wait), keeping sweeps fast and byte-reproducible. *)

(** Faults a chaos harness can inject into an attempt. *)
type injected = Inject_crash | Inject_hang

type failure_kind =
  | Crashed of string  (** the attempt raised; [Printexc.to_string] of it *)
  | Timed_out of float  (** the watchdog deadline (seconds) expired *)

type attempt_record = { attempt : int; kind : failure_kind; backoff_ms : int }

type 'a outcome =
  | Completed of { value : 'a; attempts : int; ledger : attempt_record list }
  | Quarantined of { ledger : attempt_record list }

type config = {
  retries : int;  (** extra attempts after the first; 2 → at most 3 runs *)
  timeout_s : float option;  (** per-attempt deadline; [None] = no watchdog *)
  seed : int;  (** seeds the backoff jitter (and nothing else) *)
  inject : (key:string -> attempt:int -> injected option) option;
      (** chaos hook, consulted before each attempt *)
}

val default_config : config
(** [{ retries = 2; timeout_s = None; seed = 0; inject = None }] *)

type t

val start : config -> t
(** Spawns the watchdog domain iff [timeout_s] is set. *)

val stop : t -> unit
(** Joins the watchdog domain. Idempotent. *)

val with_supervisor : config -> (t -> 'a) -> 'a
(** [start]/[stop] bracket, exception-safe. *)

val supervise : t -> key:string -> (unit -> 'a) -> 'a outcome
(** Run one cell under supervision. Never raises from the cell body:
    every raise or timeout is folded into the returned outcome. [key]
    identifies the cell in chaos schedules and backoff derivation. *)

val tick : unit -> unit
(** Cooperative cancellation point: raises the internal timeout
    exception iff the current attempt has exceeded its deadline. Safe
    (and a no-op) outside supervised code. *)

val backoff_ms : seed:int -> key:string -> attempt:int -> int
(** Deterministic backoff for a failed attempt: exponential base
    [25 * 2^min(attempt,6)] ms plus seeded jitter in [0, base). Pure. *)

val pp_failure : Format.formatter -> failure_kind -> unit
val pp_attempt : Format.formatter -> attempt_record -> unit
val pp_ledger : Format.formatter -> attempt_record list -> unit

val install_exit_handlers :
  ?on_signal:(signal_name:string -> unit) -> unit -> unit
(** Install SIGINT/SIGTERM handlers that run [on_signal] (flush the
    journal, print the resume command, ...), flush any installed
    telemetry sink via the signal-safe [Telemetry.signal_shutdown],
    and exit 130/143 — the 128+signo shell convention — instead of
    dying mid-write with a stack trace, a bogus zero, or an empty
    trace file. *)
