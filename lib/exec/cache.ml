type rows = string list list

type t = { root : string; fingerprint : string; corrupt : int Atomic.t }

let default_dir = Filename.concat "results" "cache"

let code_fingerprint () =
  match Digest.file Sys.executable_name with
  | d -> Digest.to_hex d
  | exception Sys_error _ -> "no-executable-fingerprint"

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let create ?fingerprint ~dir () =
  let fingerprint =
    match fingerprint with Some f -> f | None -> code_fingerprint ()
  in
  mkdir_p dir;
  { root = dir; fingerprint; corrupt = Atomic.make 0 }

let dir t = t.root
let fingerprint t = t.fingerprint
let corrupt_count t = Atomic.get t.corrupt

let cell_address ~fingerprint ~exp_id ~scope ~cell_key =
  Digest.to_hex
    (Digest.string (String.concat "\x00" [ fingerprint; exp_id; scope; cell_key ]))

let key t ~exp_id ~scope ~cell_key =
  cell_address ~fingerprint:t.fingerprint ~exp_id ~scope ~cell_key

let path t k = Filename.concat t.root (k ^ ".rows")

(* Row payload, line oriented:
     <field-count>TAB<escaped field>TAB...   (one line per row)
   Fields go through String.escaped, which escapes tabs and newlines, so
   splitting on the literal TAB is unambiguous. An entry on disk wraps
   the payload with a digest:
     bap-cache 2
     <md5 hex of the payload>
     <payload lines...>
   Verify-on-read of the digest catches torn writes *and* bit flips
   inside field text, which the v1 per-line field counts could not. *)

let magic = "bap-cache 2"

let encode_rows rows =
  let b = Buffer.create 256 in
  List.iter
    (fun row ->
      Buffer.add_string b
        (String.concat "\t"
           (string_of_int (List.length row) :: List.map String.escaped row));
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let decode_rows s =
  let lines =
    (* A well-formed payload ends in '\n'; the final split fragment is
       the empty string, not a row. *)
    match String.split_on_char '\n' s with
    | ls when List.length ls > 0 && String.equal (List.nth ls (List.length ls - 1)) "" ->
      List.filteri (fun i _ -> i < List.length ls - 1) ls
    | ls -> ls
  in
  let parse_row line =
    match String.split_on_char '\t' line with
    | count :: fields -> (
      match int_of_string_opt count with
      | Some c when c = List.length fields -> (
        try Some (List.map Scanf.unescaped fields)
        with Scanf.Scan_failure _ | Failure _ -> None)
      | _ -> None)
    | [] -> None
  in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | l :: ls -> ( match parse_row l with Some r -> go (r :: acc) ls | None -> None)
  in
  go [] lines

let encode rows =
  let payload = encode_rows rows in
  String.concat "\n" [ magic; Digest.to_hex (Digest.string payload); payload ]

let decode s =
  match String.index_opt s '\n' with
  | None -> None
  | Some i -> (
    if not (String.equal (String.sub s 0 i) magic) then None
    else
      match String.index_from_opt s (i + 1) '\n' with
      | None -> None
      | Some j ->
        let digest = String.sub s (i + 1) (j - i - 1) in
        let payload = String.sub s (j + 1) (String.length s - j - 1) in
        if String.equal digest (Digest.to_hex (Digest.string payload)) then
          decode_rows payload
        else None)

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find t k =
  let p = path t k in
  if not (Sys.file_exists p) then None
  else
    let contents = try Some (read_file p) with Sys_error _ -> None in
    match Option.map decode contents with
    | Some (Some rows) -> Some rows
    | Some None ->
      (* Corrupt entry: a torn write or on-disk damage. Leaving it would
         cost a decode on every future run — delete it, count it, and
         let the engine surface the tally. *)
      Atomic.incr t.corrupt;
      (try Sys.remove p with Sys_error _ -> ());
      None
    | None -> None

let store t k rows =
  try
    mkdir_p t.root;
    let tmp = Filename.temp_file ~temp_dir:t.root "cell" ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (encode rows));
    Sys.rename tmp (path t k)
  with Sys_error _ -> ()
