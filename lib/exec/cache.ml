type rows = string list list

type t = { root : string; fingerprint : string }

let default_dir = Filename.concat "results" "cache"

let code_fingerprint () =
  match Digest.file Sys.executable_name with
  | d -> Digest.to_hex d
  | exception _ -> "no-executable-fingerprint"

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let create ?fingerprint ~dir () =
  let fingerprint =
    match fingerprint with Some f -> f | None -> code_fingerprint ()
  in
  (try mkdir_p dir with _ -> ());
  { root = dir; fingerprint }

let dir t = t.root

let key t ~exp_id ~scope ~cell_key =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ t.fingerprint; exp_id; scope; cell_key ]))

let path t k = Filename.concat t.root (k ^ ".rows")

(* Entry format, line oriented:
     bap-cache 1
     <number of rows>
     <field-count>TAB<escaped field>TAB...   (one line per row)
   Fields go through String.escaped, which escapes tabs and newlines, so
   splitting on the literal TAB is unambiguous. *)

let magic = "bap-cache 1"

let encode rows =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  Buffer.add_char b '\n';
  Buffer.add_string b (string_of_int (List.length rows));
  Buffer.add_char b '\n';
  List.iter
    (fun row ->
      Buffer.add_string b
        (String.concat "\t"
           (string_of_int (List.length row) :: List.map String.escaped row));
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let decode s =
  match String.split_on_char '\n' s with
  | m :: count :: rest when String.equal m magic -> (
    match int_of_string_opt count with
    | None -> None
    | Some nrows when nrows >= 0 && List.length rest >= nrows ->
      let parse_row line =
        match String.split_on_char '\t' line with
        | count :: fields -> (
          match int_of_string_opt count with
          | Some c when c = List.length fields -> (
            try Some (List.map Scanf.unescaped fields) with _ -> None)
          | _ -> None)
        | [] -> None
      in
      let rec take k = function
        | _ when k = 0 -> Some []
        | [] -> None
        | l :: ls -> (
          match (parse_row l, take (k - 1) ls) with
          | Some row, Some rows -> Some (row :: rows)
          | _ -> None)
      in
      take nrows rest
    | Some _ -> None)
  | _ -> None

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find t k =
  let p = path t k in
  if Sys.file_exists p then (try decode (read_file p) with _ -> None) else None

let store t k rows =
  try
    mkdir_p t.root;
    let tmp = Filename.temp_file ~temp_dir:t.root "cell" ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (encode rows));
    Sys.rename tmp (path t k)
  with _ -> ()
