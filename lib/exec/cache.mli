(** Content-addressed cache of experiment-cell results.

    A cell's address is the MD5 of (code fingerprint, experiment id,
    scope, cell key). The code fingerprint defaults to the digest of the
    running executable, so rebuilding with different code invalidates
    every entry while re-running the same binary hits; experiments never
    need to declare which code they depend on. Entries live one per file
    under the cache directory ([results/cache/] by default) as a
    digest-framed text payload (format [bap-cache 2]), and are written
    atomically (temp file + rename) so concurrent writers of the same
    key cannot tear an entry. A corrupt entry — torn write, bit flip,
    stale v1 format — is treated as a miss, deleted from disk, and
    counted; the engine surfaces the tally in its summary line. *)

type t

type rows = string list list
(** The table rows a cell produced. *)

val code_fingerprint : unit -> string
(** Digest of [Sys.executable_name] (hex). Falls back to a constant when
    the executable cannot be read (e.g. self-deleted binary). *)

val default_dir : string
(** ["results/cache"]. *)

val create : ?fingerprint:string -> dir:string -> unit -> t
(** Open (and create if needed) a cache rooted at [dir].
    [fingerprint] overrides the code fingerprint — tests use this to
    exercise invalidation. *)

val dir : t -> string

val fingerprint : t -> string
(** The fingerprint this cache (and any journal sharing it) is keyed on. *)

val cell_address :
  fingerprint:string -> exp_id:string -> scope:string -> cell_key:string -> string
(** Stable hex address of one cell. The same address scheme keys the
    sweep journal, so cache and journal agree on cell identity. *)

val key : t -> exp_id:string -> scope:string -> cell_key:string -> string
(** [cell_address] under the cache's own fingerprint. *)

val find : t -> string -> rows option
(** Lookup by {!key}. Corrupt or unreadable entries behave as misses;
    corrupt ones are additionally deleted and counted. *)

val store : t -> string -> rows -> unit
(** Persist a cell result. Best-effort: an unwritable cache directory
    degrades to "no caching" rather than failing the run. *)

val corrupt_count : t -> int
(** Corrupt entries encountered (and deleted) since [create]. *)

val encode_rows : rows -> string
(** Serialize rows to the line-oriented payload format (no digest
    framing). Shared with the journal's record payloads. *)

val decode_rows : string -> rows option
(** Inverse of {!encode_rows}; [None] on any malformation. *)
