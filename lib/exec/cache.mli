(** Content-addressed cache of experiment-cell results.

    A cell's address is the MD5 of (code fingerprint, experiment id,
    scope, cell key). The code fingerprint defaults to the digest of the
    running executable, so rebuilding with different code invalidates
    every entry while re-running the same binary hits; experiments never
    need to declare which code they depend on. Entries live one per file
    under the cache directory ([results/cache/] by default) in a plain
    line-oriented text format, and are written atomically (temp file +
    rename) so concurrent writers of the same key cannot tear an
    entry. *)

type t

type rows = string list list
(** The table rows a cell produced. *)

val code_fingerprint : unit -> string
(** Digest of [Sys.executable_name] (hex). Falls back to a constant when
    the executable cannot be read (e.g. self-deleted binary). *)

val default_dir : string
(** ["results/cache"]. *)

val create : ?fingerprint:string -> dir:string -> unit -> t
(** Open (and create if needed) a cache rooted at [dir].
    [fingerprint] overrides the code fingerprint — tests use this to
    exercise invalidation. *)

val dir : t -> string

val key : t -> exp_id:string -> scope:string -> cell_key:string -> string
(** Stable hex address of one cell under the cache's fingerprint. *)

val find : t -> string -> rows option
(** Lookup by {!key}. Corrupt or unreadable entries behave as misses. *)

val store : t -> string -> rows -> unit
(** Persist a cell result. Best-effort: an unwritable cache directory
    degrades to "no caching" rather than failing the run. *)
