type row = string list
type cell = { key : string; run : unit -> row list }

type t = {
  exp_id : string;
  scope : string;
  cells : cell list;
  render : (string * row list) list -> unit;
}

let cell key run = { key; run }
let row_cell key run = { key; run = (fun () -> [ run () ]) }
let rows results = List.concat_map snd results
let scope_of_quick quick = if quick then "quick" else "full"
let keys t = List.map (fun c -> c.key) t.cells
let cell_id ~exp_id ~scope ~key = String.concat "/" [ exp_id; scope; key ]
