(* E11 (the paper's motivating feedback loop, made executable):
   repeated agreement slots over the same cluster, with the network-tap
   monitor of [Bap_monitor] turning each slot's observed misbehaviour
   into the next slot's predictions. Slot 1 starts with no information
   (everyone predicted honest: B = f * (n - f)); every slot in which the
   adversary acts detectably improves the advice and speeds up the
   following slots.

   The slots form one causal chain (slot k's evidence feeds slot k+1),
   so the whole experiment is a single cell rather than one per slot. *)

open Common
module Repeated = Bap_monitor.Repeated.Make (Bap_core.Value.Int)

let slots = 4

let plan ?(quick = false) () =
  let n = if quick then 31 else 61 in
  let t = (n - 1) / 3 in
  let f = t in
  let cells =
    [
      Plan.cell "slots" (fun () ->
          let faulty = Array.init f Fun.id in
          let rng = Rng.create 77 in
          let inputs = Array.init n (fun _ -> Rng.int rng 2) in
          (* The strongest attacker in the library; the monitor catches the
             coalition members it mutes in mandatory broadcast rounds, so
             every slot shrinks the usable coalition. *)
          let module RAdv = Bap_adversary.Strategies.Make (Bap_core.Value.Int) (Repeated.S.W) in
          let adversary =
            RAdv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -1_000_000 - r)
          in
          let results = Repeated.run_slots ~slots ~t ~faulty ~inputs ~adversary () in
          List.map
            (fun r ->
              [
                fi r.Repeated.slot;
                fi r.Repeated.b;
                fi r.Repeated.decided_round;
                fi r.Repeated.messages;
                fi (List.length r.Repeated.new_suspects);
                fi (List.length r.Repeated.suspected);
                (if r.Repeated.agreement then "yes" else "NO");
              ])
            results);
    ]
  in
  {
    Plan.exp_id = "E11";
    scope = Plan.scope_of_quick quick;
    cells;
    render =
      (fun results ->
        header
          (Printf.sprintf
             "E11  learned advice across %d agreement slots  (n=%d, t=f=%d, adaptive splitter)"
             slots n t);
        Table.print
          ~headers:
            [ "slot"; "B (going in)"; "decided"; "msgs"; "new suspects"; "total suspects"; "correct" ]
          (Plan.rows results);
        Printf.printf
          "\nDetectable misbehaviour is self-defeating: each slot's evidence improves\n\
           the next slot's predictions, so the decision time drops toward the\n\
           perfect-advice floor.\n");
  }

let run ?quick () = Bap_exec.Engine.run_serial (plan ?quick ())
