(* E7 (Lemma 1 and Lemma 5): the classification protocol misclassifies
   at most O(B/n) processes, and every window of leader positions keeps
   a large common core across the honest orderings. Sweeps the error
   budget under the three placements. *)

open Common

let plan ?(quick = false) () =
  let n = if quick then 31 else 61 in
  let t = (n - 1) / 3 in
  let f = t in
  let cell (placement, name) budget =
    Plan.row_cell (Printf.sprintf "placement=%s,budget=%d" name budget) (fun () ->
        let rng = Rng.create (budget + seed_of_string name) in
        let faulty = Array.of_list (Rng.sample_without_replacement rng f n) in
        let advice = Gen.generate ~rng ~n ~faulty ~budget placement in
        let b = (Quality.measure ~n ~faulty advice).Quality.b in
        let w = { n; t; faulty; inputs = Array.make n 0; advice; b } in
        let k_a = measure_k_a ~adversary:Adv.advice_liar_then_silent w in
        let bound = b / max 1 (((n + 1) / 2) - f) in
        [
          name;
          fi b;
          ff (float_of_int b /. float_of_int n);
          fi k_a;
          fi bound;
          (if k_a <= bound then "yes" else "NO");
        ])
  in
  let cells =
    List.concat_map
      (fun p -> List.map (cell p) [ 0; n / 2; n; 2 * n; 4 * n ])
      [ (Gen.Uniform, "uniform"); (Gen.Focused, "focused"); (Gen.Scattered, "scattered") ]
  in
  table_plan ~quick ~exp_id:"E7"
    ~title:
      (Printf.sprintf "E7  classification quality vs B  (n=%d, t=f=%d, lying faulty)" n t)
    ~headers:[ "placement"; "B"; "B/n"; "k_A"; "B/(n/2 - f)"; "k_A <= bound" ]
    cells

let run ?quick () = Bap_exec.Engine.run_serial (plan ?quick ())
