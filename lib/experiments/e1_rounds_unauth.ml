(* E1 (Theorem 11, round complexity): decision rounds of the
   unauthenticated Algorithm 1 as a function of the prediction error
   budget B, for several actual fault counts f. The paper's claim:
   decisions within O(min{B/n + 1, f}) rounds, i.e. growing with the
   misclassification level B/n and capped by the early-stopping side
   when f is small. *)

open Common

let plan ?(quick = false) () =
  let n = if quick then 31 else 61 in
  let t = (n - 1) / 3 in
  let trials = if quick then 2 else 3 in
  let cell f m =
    Plan.row_cell (Printf.sprintf "f=%d,m=%d" f m) (fun () ->
        let decided = ref [] and bs = ref [] and kas = ref [] and ok = ref true in
        for trial = 1 to trials do
          let rng = Rng.create ((97 * f) + (13 * m) + trial) in
          let w = make_workload ~rng ~n ~t ~f ~target_misclassified:m () in
          let adversary =
            Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun round -> -1_000_000 - round)
          in
          let d, _, _, correct, _ = run_unauth ~adversary w in
          let k_a = measure_k_a ~adversary w in
          decided := d :: !decided;
          bs := w.b :: !bs;
          kas := k_a :: !kas;
          ok := !ok && correct
        done;
        let b_mean = (Summary.of_ints !bs).Summary.mean in
        [
          fi n;
          fi f;
          fi m;
          ff b_mean;
          ff (b_mean /. float_of_int n);
          Summary.mean_string !kas;
          Summary.mean_string !decided;
          fi (min (m + 1) (f + 2));
          (if !ok then "yes" else "NO");
        ])
  in
  (* Scale block: the same claim measured as n grows (counted core).
     With B/n and the fault ratio held fixed, the decided round must stay
     flat — the theorem's bound depends on B/n and f only through the
     min, never on n directly. One trial per point; the runs are
     deterministic anyway. *)
  let scale_cell n' =
    Plan.row_cell (Printf.sprintf "scale,n=%d" n') (fun () ->
        let t' = (n' - 1) / 3 in
        let f = t' / 2 in
        let m = 2 in
        let rng = Rng.create (100_003 + n') in
        let w = make_workload ~rng ~n:n' ~t:t' ~f ~target_misclassified:m () in
        let adversary = Adv.advice_liar_then_silent in
        let d, _, _, correct, _ = run_unauth ~adversary w in
        let k_a = measure_k_a ~adversary w in
        [
          fi n';
          fi f;
          fi m;
          fi w.b;
          ff (float_of_int w.b /. float_of_int n');
          fi k_a;
          fi d;
          fi (min (m + 1) (f + 2));
          (if correct then "yes" else "NO");
        ])
  in
  let scale_sizes = if quick then [ 61; 125 ] else [ 31; 61; 125; 250; 500; 1000 ] in
  let cells =
    List.concat_map
      (fun f -> List.map (cell f) [ 0; 1; 2; 4; 8; 10; 12 ])
      [ 0; t / 2; t ]
    @ List.map scale_cell scale_sizes
  in
  table_plan ~quick ~exp_id:"E1"
    ~title:
      (Printf.sprintf
         "E1  unauth rounds vs B  (n=%d, t=%d, focused errors + lying faulty; \
          scale rows: f=t/2, m=2, liar-then-silent)"
         n t)
    ~headers:
      [
        "n"; "f"; "target-m"; "B"; "B/n"; "k_A"; "decided-round"; "min(m+1,f+2)"; "correct";
      ]
    cells

let run ?quick () = Bap_exec.Engine.run_serial (plan ?quick ())
