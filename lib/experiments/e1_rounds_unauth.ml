(* E1 (Theorem 11, round complexity): decision rounds of the
   unauthenticated Algorithm 1 as a function of the prediction error
   budget B, for several actual fault counts f. The paper's claim:
   decisions within O(min{B/n + 1, f}) rounds, i.e. growing with the
   misclassification level B/n and capped by the early-stopping side
   when f is small. *)

open Common

let plan ?(quick = false) () =
  let n = if quick then 31 else 61 in
  let t = (n - 1) / 3 in
  let trials = if quick then 2 else 3 in
  let cell f m =
    Plan.row_cell (Printf.sprintf "f=%d,m=%d" f m) (fun () ->
        let decided = ref [] and bs = ref [] and kas = ref [] and ok = ref true in
        for trial = 1 to trials do
          let rng = Rng.create ((97 * f) + (13 * m) + trial) in
          let w = make_workload ~rng ~n ~t ~f ~target_misclassified:m () in
          let adversary =
            Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun round -> -1_000_000 - round)
          in
          let d, _, _, correct, _ = run_unauth ~adversary w in
          let k_a = measure_k_a ~adversary w in
          decided := d :: !decided;
          bs := w.b :: !bs;
          kas := k_a :: !kas;
          ok := !ok && correct
        done;
        let b_mean = (Summary.of_ints !bs).Summary.mean in
        [
          fi f;
          fi m;
          ff b_mean;
          ff (b_mean /. float_of_int n);
          Summary.mean_string !kas;
          Summary.mean_string !decided;
          fi (min (m + 1) (f + 2));
          (if !ok then "yes" else "NO");
        ])
  in
  let cells =
    List.concat_map
      (fun f -> List.map (cell f) [ 0; 1; 2; 4; 8; 10; 12 ])
      [ 0; t / 2; t ]
  in
  table_plan ~quick ~exp_id:"E1"
    ~title:
      (Printf.sprintf
         "E1  unauth rounds vs B  (n=%d, t=%d, focused errors + lying faulty)" n t)
    ~headers:
      [ "f"; "target-m"; "B"; "B/n"; "k_A"; "decided-round"; "min(m+1,f+2)"; "correct" ]
    cells

let run ?quick () = Bap_exec.Engine.run_serial (plan ?quick ())
