(* E4 (Theorem 12, message complexity): honest messages of the
   authenticated stack as n grows - O(n^3 log(min{B/n, f})) in the
   paper's accounting, dominated by the n parallel Byzantine broadcasts
   of Algorithm 7. *)

open Common

let plan ?(quick = false) () =
  let sizes = if quick then [ 11; 17; 21 ] else [ 11; 21; 31; 41 ] in
  let cell n =
    Plan.row_cell (Printf.sprintf "n=%d" n) (fun () ->
        let t = max 1 ((9 * n / 20) - 1) in
        let f = t / 2 in
        let rng = Rng.create (2000 + n) in
        let w = make_workload ~rng ~n ~t ~f ~target_misclassified:2 () in
        let _, _, msgs, correct, _ =
          run_auth ~adversary:(fun _ -> Adv.advice_liar_then_silent) w
        in
        let n2 = float_of_int (n * n) in
        let n3 = n2 *. float_of_int n in
        [
          fi n;
          fi t;
          fi f;
          fi msgs;
          ff (float_of_int msgs /. n2);
          Printf.sprintf "%.3f" (float_of_int msgs /. n3);
          (if correct then "yes" else "NO");
        ])
  in
  table_plan ~quick ~exp_id:"E4"
    ~title:"E4  auth messages vs n  (f = t/2 silent faults, 2 misclassified)"
    ~headers:[ "n"; "t"; "f"; "msgs"; "msgs/n^2"; "msgs/n^3"; "correct" ]
    (List.map cell sizes)

let run ?quick () = Bap_exec.Engine.run_serial (plan ?quick ())
