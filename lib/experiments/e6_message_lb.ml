(* E6 (Theorem 14): even with 100% correct predictions the protocol
   sends Omega(t^2) messages. We sweep t, run the wrapper with perfect
   advice and f = 0 (the adversary cannot even act), and audit the
   execution against the Dolev-Reischuk dichotomy: pay ceil(t/2) *
   floor(t/2) messages or leave some process isolable. The second table
   runs the proof's indistinguishability construction against a cheap
   prediction-trusting protocol and shows the resulting agreement
   violation. *)

open Common
module Message_lb = Bap_lowerbound.Message_lb

let plan ?(quick = false) () =
  let sizes = if quick then [ 13; 22; 31 ] else [ 13; 22; 31; 46; 61 ] in
  let cell n =
    Plan.row_cell (Printf.sprintf "n=%d" n) (fun () ->
        let t = (n - 1) / 3 in
        let rng = Rng.create (3000 + n) in
        let w = make_workload ~rng ~n ~t ~f:0 ~target_misclassified:0 () in
        let _, _, msgs, correct, o = run_unauth ~adversary:Adversary.passive w in
        let audit =
          Message_lb.audit ~honest_sent:msgs ~honest_received:o.S.R.honest_received ~t
        in
        [
          fi n;
          fi t;
          fi msgs;
          fi audit.Message_lb.threshold;
          fi (snd audit.Message_lb.min_received);
          fi audit.Message_lb.isolation_threshold;
          (if audit.Message_lb.paid then "yes" else "NO");
          (if correct then "yes" else "NO");
        ])
  in
  (* The proof construction against an under-communicating protocol,
     reduced to the strings the prose below needs. *)
  let demo_cell =
    Plan.row_cell "demo" (fun () ->
        let demo = Message_lb.Demo.run ~n:(List.hd sizes) in
        [
          fi (snd (List.hd demo.Message_lb.Demo.good_decisions));
          fi demo.Message_lb.Demo.starved;
          fi (List.assoc demo.Message_lb.Demo.starved demo.Message_lb.Demo.bad_decisions);
          string_of_bool demo.Message_lb.Demo.agreement_broken;
        ])
  in
  {
    Plan.exp_id = "E6";
    scope = Plan.scope_of_quick quick;
    cells = List.map cell sizes @ [ demo_cell ];
    render =
      (fun results ->
        header "E6  message lower bound audit  (perfect predictions, f=0)";
        let table_rows =
          Plan.rows (List.filter (fun (k, _) -> k <> "demo") results)
        in
        Table.print
          ~headers:
            [ "n"; "t"; "msgs"; "t^2/4"; "min-received"; "isolation-thr"; "paid"; "correct" ]
          table_rows;
        match List.assoc "demo" results with
        | [ [ good; starved; starved_decides; broken ] ] ->
          Printf.printf
            "\nDolev-Reischuk demo vs cheap prediction-trusting broadcast (n=%d):\n"
            (List.hd sizes);
          Printf.printf "  E_good: all honest decide %s\n" good;
          Printf.printf "  E_bad:  starved process %s decides %s, everyone else decides 1\n"
            starved starved_decides;
          Printf.printf
            "  agreement broken: %s  (hence Omega(n + t^2) messages are necessary)\n" broken
        | _ -> invalid_arg "E6: malformed demo cell");
  }

let run ?quick () = Bap_exec.Engine.run_serial (plan ?quick ())
