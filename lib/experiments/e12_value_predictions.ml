(* E12 (extension beyond the paper - its conclusion asks about other
   prediction types): value predictions. Each process additionally
   receives a predicted decision value; the wrapper's fast path decides
   in O(1) rounds when the predictions are shared, whatever the
   classification advice does. The sweep varies the fraction of
   processes holding the "right" prediction. *)

open Common

let plan ?(quick = false) () =
  let n = if quick then 31 else 61 in
  let t = (n - 1) / 3 in
  let f = t in
  let cell accurate_fraction =
    Plan.row_cell
      (Printf.sprintf "acc=%d" (int_of_float (accurate_fraction *. 100.)))
      (fun () ->
        let adversary =
          Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -1_000_000 - r)
        in
        let rng = Rng.create (6000 + int_of_float (accurate_fraction *. 100.)) in
        (* Classification advice is garbage (everything covered), so the
           classification path alone would be slow. *)
        let w = make_workload ~rng ~n ~t ~f ~target_misclassified:f () in
        let preds =
          Array.init n (fun _ ->
              if Rng.float rng < accurate_fraction then 1 else Rng.int rng 2)
        in
        let o =
          S.run_unauth ~t ~faulty:w.faulty ~inputs:w.inputs ~advice:w.advice ~adversary
            ~value_predictions:preds ()
        in
        let o_base =
          S.run_unauth ~t ~faulty:w.faulty ~inputs:w.inputs ~advice:w.advice ~adversary ()
        in
        [
          Printf.sprintf "%.0f%%" (accurate_fraction *. 100.);
          fi (S.decision_round o);
          fi (S.decision_round o_base);
          (if S.agreement o && S.unanimous_validity ~inputs:w.inputs ~faulty:w.faulty o
           then "yes"
           else "NO");
        ])
  in
  table_plan ~quick ~exp_id:"E12"
    ~title:
      (Printf.sprintf "E12  value predictions (extension)  (n=%d, t=f=%d, splitter)" n t)
    ~headers:
      [ "shared prediction"; "decided (with value preds)"; "decided (without)"; "correct" ]
    (List.map cell [ 1.0; 0.9; 0.5; 0.0 ])

let run ?quick () = Bap_exec.Engine.run_serial (plan ?quick ())
