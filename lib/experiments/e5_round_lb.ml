(* E5 (Theorem 13): the measured decision round against the round lower
   bound min{f+2, t+1, B/(n-f)+2, B/(n-t)+1} over a joint (f, B) sweep.
   The bound and the measurement should rise and cap together (the
   theorem says the *shape* min{B/n, f} is forced); the measured value
   sits a constant factor above the bound because each of the paper's
   "rounds" costs a constant number of protocol rounds per wrapper
   phase. *)

open Common
module Round_lb = Bap_lowerbound.Round_lb

let plan ?(quick = false) () =
  let n = if quick then 31 else 61 in
  let t = (n - 1) / 3 in
  let cell f m =
    Plan.row_cell (Printf.sprintf "f=%d,m=%d" f m) (fun () ->
        let rng = Rng.create ((7 * f) + (29 * m) + 5) in
        let w = make_workload ~rng ~n ~t ~f ~target_misclassified:m () in
        let d, _, _, correct, _ =
          run_unauth
            ~adversary:
              (Adv.adaptive_splitter ~n_minus_t:(n - t)
                 ~junk:(fun round -> -1_000_000 - round))
            w
        in
        let lb = Round_lb.bound ~n ~t ~f ~b:w.b in
        [
          fi f;
          fi m;
          fi w.b;
          fi lb;
          fi d;
          ff (float_of_int d /. float_of_int (max 1 lb));
          (if correct then "yes" else "NO");
        ])
  in
  let cells =
    List.concat_map
      (fun f -> List.map (cell f) [ 0; 1; 2; 4; 8; 12 ])
      [ 0; 2; t / 2; t ]
  in
  table_plan ~quick ~exp_id:"E5"
    ~title:(Printf.sprintf "E5  round lower bound vs measured  (n=%d, t=%d)" n t)
    ~headers:[ "f"; "target-m"; "B"; "LB"; "measured"; "measured/LB"; "correct" ]
    cells

let run ?quick () = Bap_exec.Engine.run_serial (plan ?quick ())
