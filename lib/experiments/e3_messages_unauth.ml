(* E3 (Theorem 11, message complexity): honest messages of the
   unauthenticated stack as n grows, at a fixed misclassification level.
   The paper claims O(n^2 log(min{B/n, f})) in the model where the
   early-stopping black box costs O(n^2) per invocation; our phase-king
   early stopping costs O(n^2) per round, so the table reports both the
   raw total and the per-component attribution that isolates the
   prediction machinery (classify + gc + bc). *)

open Common

let plan ?(quick = false) () =
  let sizes =
    (* The counted core makes the large points affordable: the n=1000
       cell runs in seconds where the concrete engine took minutes. *)
    if quick then [ 16; 25; 31 ] else [ 16; 31; 46; 61; 125; 250; 500; 1000 ]
  in
  let cell n =
    Plan.row_cell (Printf.sprintf "n=%d" n) (fun () ->
        let t = (n - 1) / 3 in
        let f = t / 2 in
        let rng = Rng.create (1000 + n) in
        let w = make_workload ~rng ~n ~t ~f ~target_misclassified:2 () in
        let _, _, msgs, correct, o = run_unauth ~adversary:Adv.advice_liar_then_silent w in
        let cfg = S.unauth_config ~t in
        let by = S.messages_by_component cfg ~t o in
        let comp label = Option.value (List.assoc_opt label by) ~default:0 in
        let prediction_machinery = comp "classify" + comp "gc" + comp "bc" in
        let n2 = float_of_int (n * n) in
        [
          fi n;
          fi t;
          fi f;
          fi msgs;
          ff (float_of_int msgs /. n2);
          fi prediction_machinery;
          ff (float_of_int prediction_machinery /. n2);
          fi (comp "es");
          (if correct then "yes" else "NO");
        ])
  in
  table_plan ~quick ~exp_id:"E3"
    ~title:"E3  unauth messages vs n  (f = t/2 silent faults, 2 misclassified)"
    ~headers:
      [ "n"; "t"; "f"; "msgs"; "msgs/n^2"; "pred-mach"; "pred/n^2"; "es-msgs"; "correct" ]
    (List.map cell sizes)

let run ?quick () = Bap_exec.Engine.run_serial (plan ?quick ())
