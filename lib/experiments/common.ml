(* Shared machinery for the experiment sweeps (E1-E8 in DESIGN.md):
   a fixed integer-valued stack, workload construction with a target
   misclassification level, and result-row helpers. *)

module V = Bap_core.Value.Int
module S = Bap_core.Stack.Make (V)
module Adv = Bap_adversary.Strategies.Make (V) (S.W)
module B = Bap_baselines.Baseline_runs.Make (V)
module Gen = Bap_prediction.Gen
module Quality = Bap_prediction.Quality
module Advice = Bap_prediction.Advice
module Classification = Bap_core.Classification
module Rng = Bap_sim.Rng
module Adversary = Bap_sim.Adversary
module Table = Bap_stats.Table
module Summary = Bap_stats.Summary

type workload = {
  n : int;
  t : int;
  faulty : int array;
  inputs : int array;
  advice : Advice.t array;
  b : int;  (** Measured number of incorrect advice bits. *)
}

(* Budget that makes [m] processes misclassified when combined with the
   advice-liar adversary: each target needs majority-threshold minus the
   f colluding faulty votes. *)
let budget_for_misclassified ~n ~f m =
  let per_target = max 1 (Classification.majority_threshold n - f) in
  m * per_target

let make_workload ?placement ?(faulty_mode = `First_kings) ~rng ~n ~t ~f
    ~target_misclassified () =
  let faulty =
    match faulty_mode with
    | `Random -> Array.of_list (Rng.sample_without_replacement rng f n)
    | `First_kings ->
      (* Worst case for the early-stopping component: the faults occupy
         the first f king slots. *)
      Array.init f Fun.id
  in
  let inputs = Array.init n (fun _ -> Rng.int rng 2) in
  let per_target = max 1 (Classification.majority_threshold n - f) in
  let placement = Option.value placement ~default:(Gen.Targeted per_target) in
  let budget = budget_for_misclassified ~n ~f target_misclassified in
  let advice =
    if target_misclassified = 0 then Gen.perfect ~n ~faulty
    else Gen.generate ~rng ~n ~faulty ~budget placement
  in
  let b = (Quality.measure ~n ~faulty advice).Quality.b in
  { n; t; faulty; inputs; advice; b }

(* Run the unauthenticated stack on a workload; returns
   (decided_round, rounds, messages, agreement && validity). *)
let run_unauth ?(adversary = Adversary.silent) w =
  let o =
    S.run_unauth ~t:w.t ~faulty:w.faulty ~inputs:w.inputs ~advice:w.advice ~adversary ()
  in
  ( S.decision_round o,
    o.S.R.rounds,
    o.S.R.honest_sent,
    S.agreement o && S.unanimous_validity ~inputs:w.inputs ~faulty:w.faulty o,
    o )

let run_auth ?adversary w =
  let adversary = match adversary with Some a -> a | None -> fun _ -> Adversary.silent in
  let o, _ =
    S.run_auth ~t:w.t ~faulty:w.faulty ~inputs:w.inputs ~advice:w.advice ~adversary ()
  in
  ( S.decision_round o,
    o.S.R.rounds,
    o.S.R.honest_sent,
    S.agreement o && S.unanimous_validity ~inputs:w.inputs ~faulty:w.faulty o,
    o )

(* Measured misclassification level after the classification round, for
   reporting k_A next to B. *)
let measure_k_a ?(adversary = Adversary.silent) w =
  let outcome =
    S.R.run ~n:w.n ~faulty:w.faulty ~adversary (fun ctx ->
        S.Classify_p.run ctx w.advice.(S.R.id ctx))
  in
  let honest_classifications = S.R.honest_decisions outcome in
  let k_a, _, _ =
    Classification.k_counts ~n:w.n ~faulty:w.faulty ~honest_classifications
  in
  k_a

(* Explicit djb2-style string hash for deriving cell RNG seeds.
   Hashtbl.hash would also be deterministic within one binary, but its
   value is an implementation detail of the runtime — a compiler bump
   would silently reseed every sweep that used it. *)
let seed_of_string s =
  String.fold_left (fun h c -> ((h * 33) + Char.code c) land 0x3FFFFFFF) 5381 s

let header title =
  Printf.printf "\n== %s ==\n" title

let fi = string_of_int
let ff f = Printf.sprintf "%.2f" f

module Plan = Bap_exec.Plan

(* The common experiment shape: independent cells, one table, rows in
   canonical cell order. Cells must not print (see [Plan]); the header
   and the table are emitted by [render] on the main domain. *)
let table_plan ~quick ~exp_id ~title ~headers cells =
  {
    Plan.exp_id;
    scope = Plan.scope_of_quick quick;
    cells;
    render =
      (fun results ->
        header title;
        Table.print ~headers (Plan.rows results));
  }
