(* Run the experiment suite (E1-E13 from DESIGN.md) through the
   execution engine (lib/exec). [quick] shrinks the sweeps to
   bench-friendly sizes; [pool]/[cache] fan the cells out over domains
   and skip cells whose results are already cached. Output is
   byte-identical whatever the pool size or cache state. *)

module Engine = Bap_exec.Engine
module Plan = Bap_exec.Plan

let all = [
  ("E1", "unauth rounds vs B (Thm 11)", E1_rounds_unauth.plan);
  ("E2", "auth rounds vs B (Thm 12)", E2_rounds_auth.plan);
  ("E3", "unauth messages vs n (Thm 11)", E3_messages_unauth.plan);
  ("E4", "auth messages vs n (Thm 12)", E4_messages_auth.plan);
  ("E5", "round lower bound (Thm 13)", E5_round_lb.plan);
  ("E6", "message lower bound (Thm 14)", E6_message_lb.plan);
  ("E7", "classification quality (Lemma 1)", E7_classification.plan);
  ("E8", "predictions vs baselines", E8_crossover.plan);
  ("E9", "classification-vote ablation", E9_voting_ablation.plan);
  ("E10", "communication complexity in bits", E10_communication.plan);
  ("E11", "learned advice across slots", E11_learned_advice.plan);
  ("E12", "value predictions (extension)", E12_value_predictions.plan);
  ("E13", "component ablation of Algorithm 1", E13_component_ablation.plan);
]

(* Under a supervisor, a quarantined cell is simply missing from the
   render input. The renderers themselves stay oblivious — this wrapper
   prints the explicit DEGRADED marker under any table that came up
   short, naming exactly the cells that were lost. *)
let wrap_degraded (p : Plan.t) =
  let render keyed =
    p.render keyed;
    let present = List.map fst keyed in
    let missing =
      List.filter (fun k -> not (List.mem k present)) (Plan.keys p)
    in
    Bap_stats.Table.print_degraded ~exp_id:p.exp_id ~quarantined:missing
  in
  { p with render }

let plans ?quick () =
  List.map (fun (_, _, plan) -> wrap_degraded (plan ?quick ())) all

let run_all ?quick ?pool ?cache ?journal ?supervisor ?render () =
  Engine.run ?pool ?cache ?journal ?supervisor ?render (plans ?quick ())

let run_one ?quick ?pool ?cache ?journal ?supervisor id =
  match
    List.find_opt
      (fun (eid, _, _) -> String.lowercase_ascii eid = String.lowercase_ascii id)
      all
  with
  | Some (_, _, plan) ->
    Some
      (Engine.run ?pool ?cache ?journal ?supervisor
         [ wrap_degraded (plan ?quick ()) ])
  | None -> None
