(* E13 (ablation of Algorithm 1's interleaving): the wrapper runs BOTH
   an early-stopping BA (wins when f is small) and a conditional
   classification BA (wins when the advice is good) each phase. This
   table removes each component in turn:

   - without the early-stopping component, termination-with-agreement
     depends entirely on the advice: with enough misclassifications the
     honest processes can finish the final phase still split (the
     "correct" column turns NO);
   - without the classification BA, good advice buys nothing and the
     decision falls back to the O(f) path;
   - the full wrapper takes the better of the two in every cell.

   (A NO in this table is an ablation demonstrating a *removed*
   guarantee, not a bug: the shipped configuration always keeps both
   components.) *)

open Common

let plan ?(quick = false) () =
  let n = if quick then 31 else 61 in
  let t = (n - 1) / 3 in
  let cell (f, m) =
    Plan.row_cell (Printf.sprintf "f=%d,m=%d" f m) (fun () ->
        let adversary =
          Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -1_000_000 - r)
        in
        let full = S.unauth_config ~t in
        let no_es = { full with S.Wrapper.ablate_es = true } in
        let no_bc = { full with S.Wrapper.ablate_bc = true } in
        let rng = Rng.create ((41 * f) + m) in
        let w = make_workload ~rng ~n ~t ~f ~target_misclassified:m () in
        let variant config =
          let o =
            S.run_unauth ~t ~faulty:w.faulty ~inputs:w.inputs ~advice:w.advice ~adversary
              ~config ()
          in
          let ok =
            S.agreement o && S.unanimous_validity ~inputs:w.inputs ~faulty:w.faulty o
          in
          Printf.sprintf "%d%s" (S.decision_round o) (if ok then "" else " (NO!)")
        in
        [ fi f; fi m; variant full; variant no_bc; variant no_es ])
  in
  table_plan ~quick ~exp_id:"E13"
    ~title:
      (Printf.sprintf "E13  component ablation of Algorithm 1  (n=%d, t=%d, splitter)" n t)
    ~headers:[ "f"; "target-m"; "full wrapper"; "without class-BA"; "without early-stop" ]
    (List.map cell [ (0, 0); (0, t); (t / 2, 0); (t, 0); (t, 2); (t, t) ])

let run ?quick () = Bap_exec.Engine.run_serial (plan ?quick ())
