(* E10 (the paper's conclusion on communication complexity): the bit
   complexity of the implementation as n grows. The conclusion notes
   that the advice-voting step alone already costs O(n^3) bits (n^2
   advice broadcasts of n bits each); this table measures it, together
   with the full executions of both stacks. *)

open Common

let classify_bits ~n ~f =
  (* (n - f) honest senders, each broadcasting an (n + 32)-bit advice
     message to n - 1 peers. *)
  (n - f) * (n - 1) * (n + 32)

let plan ?(quick = false) () =
  let sizes = if quick then [ 16; 25; 31 ] else [ 16; 31; 46; 61 ] in
  let cell n =
    Plan.row_cell (Printf.sprintf "n=%d" n) (fun () ->
        let t = (n - 1) / 3 in
        let f = t / 2 in
        let rng = Rng.create (5000 + n) in
        let w = make_workload ~rng ~n ~t ~f ~target_misclassified:2 () in
        let _, _, _, ok_u, o_u = run_unauth ~adversary:Adv.advice_liar_then_silent w in
        let auth_n = if quick && n > 25 then None else Some n in
        let auth_bits =
          match auth_n with
          | None -> None
          | Some _ ->
            let _, _, _, _, o_a =
              run_auth ~adversary:(fun _ -> Adv.advice_liar_then_silent) w
            in
            Some o_a.S.R.honest_bits
        in
        let n3 = float_of_int (n * n * n) in
        [
          fi n;
          fi t;
          fi (classify_bits ~n ~f);
          fi o_u.S.R.honest_bits;
          ff (float_of_int o_u.S.R.honest_bits /. n3);
          (match auth_bits with Some b -> fi b | None -> "-");
          (match auth_bits with Some b -> ff (float_of_int b /. n3) | None -> "-");
          (if ok_u then "yes" else "NO");
        ])
  in
  table_plan ~quick ~exp_id:"E10"
    ~title:"E10  communication complexity in bits  (f = t/2, 2 misclassified)"
    ~headers:
      [
        "n"; "t"; "classify-bits"; "unauth-bits"; "unauth/n^3"; "auth-bits"; "auth/n^3";
        "correct";
      ]
    (List.map cell sizes)

let run ?quick () = Bap_exec.Engine.run_serial (plan ?quick ())
