(* E9 (ablation of the paper's "first key ingredient", Section 6): what
   happens if processes trust their raw advice instead of running the
   classification vote of Algorithm 2?

   Without the vote, the honest processes' views of who is trustworthy
   diverge by up to B bits instead of O(B/n) processes, so the leader
   blocks of Algorithm 5 stop having common cores and the conditional BA
   stops helping; correctness survives (the wrapper's graded consensus
   protects it) but the decision falls back to the early-stopping path.
   The table compares the divergence metric and the decision round with
   and without the vote, on uniformly scattered errors that the vote
   absorbs completely. *)

open Common
module C = Bap_core.Classification

let divergence ~n ~faulty honest_classifications =
  (* |U M_i| when each process uses the given classification. *)
  let k, _, _ = C.k_counts ~n ~faulty ~honest_classifications in
  k

let plan ?(quick = false) () =
  let n = if quick then 31 else 61 in
  let t = (n - 1) / 3 in
  let f = t in
  let cell budget =
    Plan.row_cell (Printf.sprintf "budget=%d" budget) (fun () ->
        let rng = Rng.create (4000 + budget) in
        let faulty = Array.init f Fun.id in
        let advice = Gen.generate ~rng ~n ~faulty ~budget Gen.Uniform in
        let b = (Quality.measure ~n ~faulty advice).Quality.b in
        let inputs = Array.init n (fun _ -> Rng.int rng 2) in
        let w = { n; t; faulty; inputs; advice; b } in
        let adversary =
          Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -1_000_000 - r)
        in
        (* Divergence with the vote (k_A) and without (raw advice). *)
        let k_vote = measure_k_a ~adversary w in
        let honest = List.filter (fun i -> not (Array.mem i faulty)) (List.init n Fun.id) in
        let k_raw = divergence ~n ~faulty (List.map (fun i -> (i, advice.(i))) honest) in
        let o_vote = S.run_unauth ~t ~faulty ~inputs ~advice ~adversary () in
        let o_raw =
          S.run_unauth ~t ~faulty ~inputs ~advice ~adversary
            ~config:(S.unauth_config_no_vote ~t) ()
        in
        [
          fi b;
          ff (float_of_int b /. float_of_int n);
          fi k_vote;
          fi k_raw;
          fi (S.decision_round o_vote);
          fi (S.decision_round o_raw);
          (if S.agreement o_vote && S.agreement o_raw then "yes" else "NO");
        ])
  in
  table_plan ~quick ~exp_id:"E9"
    ~title:
      (Printf.sprintf "E9  ablation: classification vote vs raw advice  (n=%d, t=f=%d)" n t)
    ~headers:
      [ "B"; "B/n"; "k_A (vote)"; "k_A (raw)"; "decided (vote)"; "decided (raw)"; "correct" ]
    (List.map cell [ 0; n / 2; n; 2 * n; 4 * n ])

let run ?quick () = Bap_exec.Engine.run_serial (plan ?quick ())
