(* E8 (the paper's "graceful degradation" story): decision rounds of the
   prediction wrapper against the no-prediction baselines as the advice
   quality degrades. With good advice the wrapper wins; with garbage
   advice it never does worse than the early-stopping baseline's O(f)
   (up to the wrapper's constant), and both beat the always-Theta(t)
   plain phase king when f << t. *)

open Common

let plan ?(quick = false) () =
  let n = if quick then 31 else 61 in
  let t = (n - 1) / 3 in
  let cell f m =
    Plan.row_cell (Printf.sprintf "f=%d,m=%d" f m) (fun () ->
        let rng = Rng.create ((31 * f) + m) in
        let w = make_workload ~rng ~n ~t ~f ~target_misclassified:m () in
        let d, _, _, ok, _ =
          run_unauth
            ~adversary:
              (Adv.adaptive_splitter ~n_minus_t:(n - t)
                 ~junk:(fun round -> -1_000_000 - round))
            w
        in
        let es =
          B.run_early_stopping ~t ~faulty:w.faulty ~inputs:w.inputs
            ~adversary:Bap_sim.Adversary.silent ()
        in
        let pk =
          B.run_phase_king ~t ~faulty:w.faulty ~inputs:w.inputs
            ~adversary:Bap_sim.Adversary.silent ()
        in
        [
          fi f;
          fi m;
          fi w.b;
          fi d;
          fi es.B.decided_round;
          fi pk.B.rounds;
          (if ok && es.B.agreement && pk.B.agreement then "yes" else "NO");
        ])
  in
  let cells =
    List.concat_map (fun f -> List.map (cell f) [ 0; 2; 8; 12 ]) [ 0; 2; t / 2; t ]
  in
  table_plan ~quick ~exp_id:"E8"
    ~title:
      (Printf.sprintf "E8  predictions vs baselines  (n=%d, t=%d, silent+lying faults)" n t)
    ~headers:
      [ "f"; "target-m"; "B"; "wrapper-decided"; "es-baseline"; "phase-king"; "correct" ]
    cells

let run ?quick () = Bap_exec.Engine.run_serial (plan ?quick ())
