(* E2 (Theorem 12, round complexity): the authenticated Algorithm 1
   keeps the O(min{B/n + 1, f}) decision rounds for t up to just below
   n/2 and for error budgets far beyond the unauthenticated n^(3/2)
   barrier (here up to Theta(n^2) planted bits). *)

open Common

let plan ?(quick = false) () =
  let n = if quick then 21 else 41 in
  let t = (9 * n / 20) - 1 in
  (* ~0.45 n *)
  let t = max 1 t in
  let trials = if quick then 2 else 3 in
  let cell f m =
    Plan.row_cell (Printf.sprintf "f=%d,m=%d" f m) (fun () ->
        let decided = ref [] and bs = ref [] and kas = ref [] and ok = ref true in
        for trial = 1 to trials do
          let rng = Rng.create ((101 * f) + (17 * m) + trial) in
          let w = make_workload ~rng ~n ~t ~f ~target_misclassified:m () in
          let adversary pki = Adv.prediction_attacker_auth ~pki ~v0:0 ~v1:1 in
          let d, _, _, correct, _ = run_auth ~adversary w in
          let k_a = measure_k_a ~adversary:(Adv.prediction_attacker ~v0:0 ~v1:1) w in
          decided := d :: !decided;
          bs := w.b :: !bs;
          kas := k_a :: !kas;
          ok := !ok && correct
        done;
        let b_mean = (Summary.of_ints !bs).Summary.mean in
        [
          fi f;
          fi m;
          ff b_mean;
          ff (b_mean /. float_of_int n);
          Summary.mean_string !kas;
          Summary.mean_string !decided;
          (if !ok then "yes" else "NO");
        ])
  in
  let cells =
    List.concat_map (fun f -> List.map (cell f) [ 0; 1; 2; 4 ]) [ 0; t / 2; t ]
  in
  table_plan ~quick ~exp_id:"E2"
    ~title:
      (Printf.sprintf "E2  auth rounds vs B  (n=%d, t=%d ~ 0.45n, focused errors)" n t)
    ~headers:[ "f"; "target-m"; "B"; "B/n"; "k_A"; "decided-round"; "correct" ]
    cells

let run ?quick () = Bap_exec.Engine.run_serial (plan ?quick ())
