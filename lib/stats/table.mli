(** Aligned ASCII tables for experiment output. *)

val render : headers:string list -> string list list -> string
(** Pads every column to its widest cell; rows shorter than the header
    are padded with empty cells. *)

val print : headers:string list -> string list list -> unit
(** [render] to stdout, followed by a newline. *)

val degraded_banner : exp_id:string -> quarantined:string list -> string
(** The marker printed under a partial table when cells were quarantined,
    e.g. ["!! DEGRADED E1: 2 cell(s) quarantined after exhausting their
    retry budget: f=3,m=4; f=5,m=8"]. *)

val print_degraded : exp_id:string -> quarantined:string list -> unit
(** [degraded_banner] to stdout when [quarantined] is non-empty; silent
    otherwise, so clean tables stay byte-identical. *)
