let render ~headers rows =
  let cols = List.length headers in
  let pad row = row @ List.init (max 0 (cols - List.length row)) (fun _ -> "") in
  let rows = List.map pad rows in
  let widths = Array.make (max cols 1) 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < cols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    (headers :: rows);
  let fmt_row row =
    String.concat "  "
      (List.mapi (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ') row)
  in
  let sep =
    String.concat "  " (List.init cols (fun i -> String.make widths.(i) '-'))
  in
  String.concat "\n" (fmt_row headers :: sep :: List.map fmt_row rows)

let print ~headers rows = print_endline (render ~headers rows)

let degraded_banner ~exp_id ~quarantined =
  Printf.sprintf
    "!! DEGRADED %s: %d cell(s) quarantined after exhausting their retry \
     budget: %s"
    exp_id
    (List.length quarantined)
    (String.concat "; " quarantined)

let print_degraded ~exp_id ~quarantined =
  if quarantined <> [] then print_endline (degraded_banner ~exp_id ~quarantined)
