type t = { count : int; mean : float; min : int; max : int; total : int }

let of_ints = function
  | [] -> invalid_arg "Summary.of_ints: empty"
  | xs ->
    let count = List.length xs in
    let total = List.fold_left ( + ) 0 xs in
    {
      count;
      total;
      mean = float_of_int total /. float_of_int count;
      min = List.fold_left min max_int xs;
      max = List.fold_left max min_int xs;
    }

(* Exact merge of two partial aggregates: the mean is recomputed from
   the totals, so merging per-job summaries in any association order
   equals summarising the concatenated samples. *)
let merge a b =
  let count = a.count + b.count in
  let total = a.total + b.total in
  {
    count;
    total;
    mean = float_of_int total /. float_of_int count;
    min = min a.min b.min;
    max = max a.max b.max;
  }

let merge_all = function
  | [] -> invalid_arg "Summary.merge_all: empty"
  | s :: ss -> List.fold_left merge s ss

let pp ppf s = Fmt.pf ppf "mean %.1f (min %d, max %d, n=%d)" s.mean s.min s.max s.count
let mean_string xs = Printf.sprintf "%.1f" (of_ints xs).mean
