(** Small numeric aggregates over repeated trials. *)

type t = { count : int; mean : float; min : int; max : int; total : int }

val of_ints : int list -> t
(** Raises [Invalid_argument] on the empty list. *)

val merge : t -> t -> t
(** Combine two partial aggregates exactly: [merge (of_ints a) (of_ints b)]
    equals [of_ints (a @ b)] (the mean is recomputed from totals, not
    averaged). Lets parallel jobs summarise their own trials and the
    collector fold the pieces. *)

val merge_all : t list -> t
(** Left fold of {!merge}. Raises [Invalid_argument] on the empty
    list. *)

val pp : t Fmt.t
val mean_string : int list -> string
(** Mean with one decimal, e.g. ["12.3"]. *)
