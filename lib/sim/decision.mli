(** Enumerable adversary decisions.

    A ['a t] is a finite decision tree: each {!choose} node is one
    adversary (or configuration) choice with a known arity, each leaf a
    fully determined value — for the chaos layer, a fault schedule. One
    tree value serves three consumers: the model checker enumerates
    every leaf ({!iter}), a fuzzer samples one leaf from a seeded
    stream ({!sample}), and a replayer follows a recorded branch-index
    path back to any leaf ({!follow}). Trees are closure-built and
    never materialised. *)

type 'a t =
  | Return of 'a
  | Choose of { label : string; arity : int; child : int -> 'a t }

type path = int list
(** Branch indices from root to leaf; the serializable identity of one
    fully resolved set of decisions. *)

val return : 'a -> 'a t

val choose : label:string -> arity:int -> (int -> 'a t) -> 'a t
(** A decision point with [arity] alternatives. Arity-1 nodes collapse
    to their only child (they decide nothing). Raises [Invalid_argument]
    on non-positive arity. *)

val pick : label:string -> 'a list -> ('a -> 'b t) -> 'b t
(** [pick ~label alts next]: choose one of [alts], then continue.
    Raises [Invalid_argument] on an empty list. *)

val subsets : label:string -> limit:int -> 'a list -> 'a list t
(** The tree whose leaves are exactly the subsets of at most [limit]
    items, each leaf listing its elements in the input order. The empty
    subset is always a leaf. *)

val map : ('a -> 'b) -> 'a t -> 'b t
val bind : 'a t -> ('a -> 'b t) -> 'b t

val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
(** [bind] as a binding operator: sequential decisions read top-down. *)

val iter : ('a -> path:path -> unit) -> 'a t -> unit
(** Depth-first enumeration of every leaf, lowest branch index first —
    the checker's notion of "all behaviours". *)

val count : 'a t -> int
(** Number of leaves. Costs a full enumeration; meant for reporting,
    not for hot paths. *)

val follow : 'a t -> path -> 'a option
(** Replay a recorded path; [None] if it runs off the tree. *)

val sample : Rng.t -> 'a t -> 'a * path
(** One uniform-per-node root-to-leaf walk from a seeded stream: the
    fuzzing semantics of the same tree. *)

val depth : 'a t -> int
(** Longest root-to-leaf decision count. Full enumeration cost. *)
