(* Flat bitset over the process identifier space [0, n). One int array
   word per 63 ids keeps membership, popcount and intersection O(n/63)
   instead of O(n) - the representation behind counted sender sets and
   the prediction layer's advice vectors. *)

type t = { length : int; words : int array }

let bits_per_word = Sys.int_size (* 63 on 64-bit *)

let words_for length = (length + bits_per_word - 1) / bits_per_word

let create length =
  if length < 0 then invalid_arg "Bitset.create: negative length";
  { length; words = Array.make (max 1 (words_for length)) 0 }

let length t = t.length

let check t i op =
  if i < 0 || i >= t.length then
    invalid_arg (Printf.sprintf "Bitset.%s: index %d out of [0, %d)" op i t.length)

let set t i =
  check t i "set";
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let clear t i =
  check t i "clear";
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let assign t i bit = if bit then set t i else clear t i

let get t i =
  check t i "get";
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

let mem t i = i >= 0 && i < t.length && get t i

let reset t = Array.fill t.words 0 (Array.length t.words) 0

let copy t = { length = t.length; words = Array.copy t.words }

let init length f =
  let t = create length in
  for i = 0 to length - 1 do
    if f i then set t i
  done;
  t

let of_list length ids =
  let t = create length in
  List.iter (fun i -> set t i) ids;
  t

let popcount_word w =
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0 w

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let iter t ~f =
  (* Ascending id order: word-major, bit-minor. *)
  Array.iteri
    (fun wi word ->
      if word <> 0 then begin
        let base = wi * bits_per_word in
        let w = ref word in
        while !w <> 0 do
          let b = !w land - !w in
          (* index of the lowest set bit *)
          let rec log2 acc m = if m = 1 then acc else log2 (acc + 1) (m lsr 1) in
          f (base + log2 0 b);
          w := !w land lnot b
        done
      end)
    t.words

let fold t ~init ~f =
  let acc = ref init in
  iter t ~f:(fun i -> acc := f !acc i);
  !acc

let to_list t = List.rev (fold t ~init:[] ~f:(fun acc i -> i :: acc))

let equal a b =
  a.length = b.length
  && begin
       let ok = ref true in
       Array.iteri (fun i w -> if w <> b.words.(i) then ok := false) a.words;
       !ok
     end

let inter a b =
  if a.length <> b.length then invalid_arg "Bitset.inter: length mismatch";
  let t = create a.length in
  Array.iteri (fun i w -> t.words.(i) <- w land b.words.(i)) a.words;
  t

let union_into ~into b =
  if into.length <> b.length then invalid_arg "Bitset.union_into: length mismatch";
  Array.iteri (fun i w -> into.words.(i) <- into.words.(i) lor w) b.words

let is_empty t = Array.for_all (fun w -> w = 0) t.words
