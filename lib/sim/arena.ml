(* Preallocated per-round buffers for the concrete delivery path. The
   n x n outbox/traffic matrices are allocated once per execution and
   wiped between rounds, so the per-pair path allocates no arrays on the
   round hot path (the lists it stores are the protocol's own). *)

type 'msg t = {
  n : int;
  out : 'msg list array array;  (* puppet outboxes, [src].(dst) *)
  eff : 'msg list array array;  (* post-adversary traffic, [src].(dst) *)
}

let create n =
  if n <= 0 then invalid_arg "Arena.create: n must be positive";
  { n; out = Array.make_matrix n n []; eff = Array.make_matrix n n [] }

let clear t =
  for src = 0 to t.n - 1 do
    Array.fill t.out.(src) 0 t.n [];
    Array.fill t.eff.(src) 0 t.n []
  done
