(** Byzantine adversary interface for the lock-step runtime.

    The runtime spawns the honest protocol code for *every* process,
    including the faulty ones; faulty copies are "puppets". Each round the
    adversary may

    - rewrite the outbox of every puppet ({!handlers.filter}), and
    - inject arbitrary extra messages from faulty senders
      ({!handlers.inject}).

    The adversary is {e rushing}: both hooks observe the messages the
    honest processes send in the current round before the adversary's own
    messages are fixed. Dropping everything a puppet says and relying on
    [inject] alone gives a fully custom Byzantine strategy; the identity
    filter with no injection gives faulty processes that follow the
    protocol. *)

type 'msg send = { src : int; dst : int; payload : 'msg }
(** One adversary-chosen message. [src] must be a faulty process. *)

type 'msg view = {
  round : int;  (** Current round, starting at 1. *)
  n : int;
  faulty : int array;  (** Identifiers of the faulty processes. *)
  honest_out : sender:int -> recipient:int -> 'msg list;
      (** Messages each honest process sends this round (rushing). *)
}

type 'msg handlers = {
  filter : 'msg view -> src:int -> (int -> 'msg list) -> int -> 'msg list;
      (** [filter view ~src outbox] rewrites puppet [src]'s outbox; the
          result is queried once per recipient. *)
  inject : 'msg view -> 'msg send list;
      (** Extra messages from faulty senders, delivered this round. *)
  filter_in : 'msg view -> dst:int -> src:int -> 'msg list -> 'msg list;
      (** Rewrites what puppet [dst] receives from [src] (faulty
          processes may pretend not to have received messages, as in the
          Dolev-Reischuk lower-bound construction). Honest processes'
          inboxes are never filtered. *)
}

val identity_filter : 'msg view -> src:int -> (int -> 'msg list) -> int -> 'msg list
(** Keeps the puppet outbox unchanged. *)

val mute_filter : 'msg view -> src:int -> (int -> 'msg list) -> int -> 'msg list
(** Drops everything a puppet says. *)

val no_inject : 'msg view -> 'msg send list
val identity_in : 'msg view -> dst:int -> src:int -> 'msg list -> 'msg list

val handlers :
  ?filter:('msg view -> src:int -> (int -> 'msg list) -> int -> 'msg list) ->
  ?inject:('msg view -> 'msg send list) ->
  ?filter_in:('msg view -> dst:int -> src:int -> 'msg list -> 'msg list) ->
  unit ->
  'msg handlers
(** Handlers with identity/empty defaults. Pass the exported combinators
    above (they are the defaults) rather than re-implementing them: the
    runtime's counted fast path recognises them {e physically} and skips
    the per-pair calls they would make — any observably equivalent
    closure stays correct but runs on the per-pair path. *)

type 'msg t = {
  name : string;
  make : n:int -> faulty:int array -> 'msg handlers;
      (** Fresh per-execution handler state. *)
}

val passive : 'msg t
(** Faulty processes follow the protocol exactly (crash-free run). *)

val silent : 'msg t
(** Faulty processes never send anything (crash at time 0). *)

val silent_after : int -> 'msg t
(** Follow the protocol through the given round, then go silent: a crash
    failure at a chosen time. *)

val drop_to : (int -> bool) -> 'msg t
(** Follow the protocol but omit all messages to recipients selected by
    the predicate (receive-omission as seen by the targets). *)

val rewrite : string -> ('msg view -> src:int -> dst:int -> 'msg -> 'msg list) -> 'msg t
(** [rewrite name f] applies [f] to every puppet message; [f] may drop
    (return []), keep, modify or multiply a message. *)

val compose : 'msg t list -> 'msg t
(** [compose advs] chains the adversaries left to right: each [filter]
    (and [filter_in]) sees the previous one's output as its input, and
    the [inject] lists are concatenated in order. [compose \[\]] is
    {!passive}. Because a later filter re-reads the earlier ones'
    outboxes, the per-recipient "called exactly once" guarantee of the
    runtime holds only for the whole composition; individual stages must
    therefore be effect-free (every combinator in this library and in
    [Bap_chaos] is). *)

val custom : string -> (n:int -> faulty:int array -> 'msg view -> 'msg send list) -> 'msg t
(** Fully scripted adversary: puppets are muted and every faulty message
    comes from the supplied function. *)

val stateful_custom :
  string -> (n:int -> faulty:int array -> ('msg view -> 'msg send list)) -> 'msg t
(** Like {!custom} but [make] runs once per execution, so the returned
    closure can carry mutable state across rounds. *)
