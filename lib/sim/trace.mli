(** Bounded execution trace for debugging protocol runs.

    A trace records delivery and decision events as the runtime executes.
    Recording is cheap and bounded: once [limit] events have been stored,
    further events are counted but dropped. *)

type 'msg event =
  | Round_begin of int  (** A new synchronous round starts. *)
  | Round_end of int
      (** The round's deliveries and process steps are complete. Every
          [Round_begin r] is paired with a [Round_end r], so a round's
          extent no longer has to be inferred from the next
          [Round_begin]. *)
  | Deliver of { src : int; dst : int; msg : 'msg; byzantine : bool }
      (** [msg] was delivered from [src] to [dst]; [byzantine] marks
          messages emitted (or rewritten) by the adversary. *)
  | Decide of { who : int; round : int }
      (** Process [who]'s protocol function returned during [round]. *)

type 'msg t

val create : ?limit:int -> unit -> 'msg t
(** Fresh trace retaining at most [limit] (default 100_000) events. *)

val record : 'msg t -> 'msg event -> unit

val events : 'msg t -> 'msg event list
(** Events in chronological order. *)

val dropped : 'msg t -> int
(** Number of events discarded because the limit was reached. *)

val pp : 'msg Fmt.t -> 'msg t Fmt.t
(** Human-readable rendering, one event per line. When events were
    discarded, a final [... (N events dropped)] line reports the
    count. *)
