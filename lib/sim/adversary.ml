type 'msg send = { src : int; dst : int; payload : 'msg }

type 'msg view = {
  round : int;
  n : int;
  faulty : int array;
  honest_out : sender:int -> recipient:int -> 'msg list;
}

type 'msg handlers = {
  filter : 'msg view -> src:int -> (int -> 'msg list) -> int -> 'msg list;
  inject : 'msg view -> 'msg send list;
  filter_in : 'msg view -> dst:int -> src:int -> 'msg list -> 'msg list;
}

type 'msg t = { name : string; make : n:int -> faulty:int array -> 'msg handlers }

let identity_filter _view ~src:_ outbox recipient = outbox recipient
let mute_filter _view ~src:_ _outbox _recipient = []
let no_inject _view = []
let identity_in _view ~dst:_ ~src:_ msgs = msgs

let handlers ?(filter = identity_filter) ?(inject = no_inject) ?(filter_in = identity_in) ()
    =
  { filter; inject; filter_in }

let passive =
  { name = "passive"; make = (fun ~n:_ ~faulty:_ -> handlers ()) }

let silent =
  { name = "silent"; make = (fun ~n:_ ~faulty:_ -> handlers ~filter:mute_filter ()) }

let silent_after last_round =
  {
    name = Printf.sprintf "silent-after-%d" last_round;
    make =
      (fun ~n:_ ~faulty:_ ->
        let filter view ~src:_ outbox recipient =
          if view.round <= last_round then outbox recipient else []
        in
        handlers ~filter ());
  }

let drop_to targeted =
  {
    name = "drop-to";
    make =
      (fun ~n:_ ~faulty:_ ->
        let filter _view ~src:_ outbox recipient =
          if targeted recipient then [] else outbox recipient
        in
        handlers ~filter ());
  }

let rewrite name f =
  {
    name;
    make =
      (fun ~n:_ ~faulty:_ ->
        let filter view ~src outbox recipient =
          List.concat_map (fun m -> f view ~src ~dst:recipient m) (outbox recipient)
        in
        handlers ~filter ());
  }

let compose = function
  | [] -> passive
  | [ a ] -> a
  | advs ->
    {
      name = String.concat "+" (List.map (fun a -> a.name) advs);
      make =
        (fun ~n ~faulty ->
          let hs = List.map (fun a -> a.make ~n ~faulty) advs in
          let filter view ~src outbox recipient =
            let outbox =
              List.fold_left
                (fun outbox h dst -> h.filter view ~src outbox dst)
                outbox hs
            in
            outbox recipient
          in
          let inject view = List.concat_map (fun h -> h.inject view) hs in
          let filter_in view ~dst ~src msgs =
            List.fold_left (fun msgs h -> h.filter_in view ~dst ~src msgs) msgs hs
          in
          { filter; inject; filter_in });
    }

let custom name step =
  {
    name;
    make = (fun ~n ~faulty -> handlers ~filter:mute_filter ~inject:(step ~n ~faulty) ());
  }

let stateful_custom name make_step =
  {
    name;
    make =
      (fun ~n ~faulty ->
        let step = make_step ~n ~faulty in
        handlers ~filter:mute_filter ~inject:step ());
  }
