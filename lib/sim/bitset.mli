(** Flat bitsets over the process identifier space [0, n).

    The scalable-core representation for sender sets and prediction
    vectors: one machine word per {!bits_per_word} identifiers, so
    membership is O(1) and popcount / intersection are O(n / word size).
    Mutable; modules that expose bitsets behind functional interfaces
    (e.g. the prediction layer) copy before mutating. *)

type t

val bits_per_word : int

val create : int -> t
(** All-zero bitset of the given length. @raise Invalid_argument on a
    negative length. *)

val length : t -> int
val init : int -> (int -> bool) -> t
val of_list : int -> int list -> t

val set : t -> int -> unit
val clear : t -> int -> unit
val assign : t -> int -> bool -> unit
val get : t -> int -> bool
(** @raise Invalid_argument when the index is outside [0, length). *)

val mem : t -> int -> bool
(** Like {!get} but total: [false] outside [0, length). *)

val reset : t -> unit
(** Clear every bit, keeping the allocation (arena reuse). *)

val copy : t -> t
val cardinal : t -> int

val iter : t -> f:(int -> unit) -> unit
(** Ascending identifier order. *)

val fold : t -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Ascending identifier order. *)

val to_list : t -> int list
(** Ascending. *)

val equal : t -> t -> bool
val inter : t -> t -> t
val union_into : into:t -> t -> unit
val is_empty : t -> bool
