(** Lock-step synchronous round runtime.

    The runtime executes one protocol function per process in
    round-lock-step, exactly matching the synchronous model of the paper:
    in each round every process sends messages, the (rushing) adversary
    fixes the faulty processes' messages after seeing the honest ones, and
    then every process receives the round's messages and computes.

    Protocol code is written in direct style: it calls {!S.exchange} once
    per round and otherwise is ordinary OCaml. Suspension is implemented
    with OCaml 5 effect handlers, so sub-protocols compose by plain
    function calls — Algorithm 1 of the paper is literally a [for] loop
    over function calls.

    Two delivery engines implement the same semantics:

    - the {e concrete} per-pair path routes every message individually
      through a pair of arena-backed n x n matrices; it is the reference
      semantics and the only path when a trace or network hook observes
      individual edges;
    - the {e counted} path aggregates identical honest broadcasts into
      (payload, sender-bitset) groups and never materialises the n
      copies, falling back to per-pair handling only for function-shaped
      outboxes and for faulty senders whose filter is not one of the
      canonical {!Adversary} combinators.

    The two paths are byte-identical in every observable: decisions,
    rounds, all message/bit accounting, adversary call order, and raised
    exceptions (asserted by differential tests at small n). *)

module type MSG = sig
  type t
end

module type S = sig
  type msg

  type ctx
  (** Per-process handle: identity plus the current round. *)

  val id : ctx -> int
  val n : ctx -> int

  val round : ctx -> int
  (** Rounds start at 1; 0 before the first exchange. *)

  val exchange : ctx -> (int -> msg list) -> msg Inbox.t
  (** [exchange ctx outbox] ends the local computation for this round.
      [outbox j] is the list of messages sent to process [j] (the function
      is called exactly once per recipient, including the caller itself,
      and must be effect-free). The result is the round's inbox: slot [j]
      holds the messages received from process [j]. Messages to self are
      delivered but never counted in the message-complexity metrics.

      A function-shaped outbox forces per-recipient materialisation; use
      {!broadcast_list} when every recipient gets the same messages so
      the counted engine can aggregate. *)

  val broadcast_list : ctx -> msg list -> msg Inbox.t
  (** Send the same message list to everybody (including self). The
      counted engine's native shape: identical honest broadcasts
      collapse into one (payload, sender-set) group. *)

  val broadcast : ctx -> msg -> msg Inbox.t
  (** Send one message to everybody (including self). *)

  val send_to : ctx -> (int * msg) list -> msg Inbox.t
  (** Sparse unicast: send each [(recipient, msg)] pair. *)

  val silent_round : ctx -> msg Inbox.t
  (** Send nothing, still receive. *)

  val skip : ctx -> int -> unit
  (** [skip ctx r] spends [r] silent rounds, discarding the inboxes. Used
      to pad sub-protocols to a fixed duration. *)

  type 'r outcome = {
    n : int;
    faulty : int array;
    decisions : 'r option array;
        (** Return value of each process's protocol function. Faulty slots
            are the *puppet* results (the protocol code the adversary was
            rewriting) and carry no correctness meaning. *)
    decision_round : int array;  (** Round of return, [-1] if never. *)
    rounds : int;  (** Last round executed (= last honest return). *)
    honest_sent : int;
        (** Messages sent by honest processes to other processes (self
            deliveries excluded), i.e. the paper's message complexity. *)
    honest_per_round : int array;
    honest_received : int array;
        (** [honest_received.(j)] counts the messages process [j] received
            from honest senders (self-deliveries excluded); used by the
            Dolev-Reischuk message-lower-bound audit. *)
    honest_bits : int;
        (** Communication complexity: total size (in bits, as reported by
            [run]'s [msg_size]) of the honest messages; 0 when no
            [msg_size] was supplied. *)
    adversary_sent : int;
  }

  exception Round_limit_exceeded of int

  val run :
    ?max_rounds:int ->
    ?trace:msg Trace.t ->
    ?msg_size:(msg -> int) ->
    ?network:(round:int -> src:int -> dst:int -> msg list -> msg list) ->
    ?group_key:(msg -> string option) ->
    ?mode:[ `Auto | `Concrete ] ->
    n:int ->
    faulty:int array ->
    adversary:msg Adversary.t ->
    (ctx -> 'r) ->
    'r outcome
  (** Execute one synchronous run. Every process (honest and faulty) runs
      the given function; faulty copies are puppets whose messages the
      adversary rewrites or replaces (see {!Adversary}). The run ends when
      every honest process has returned.

      [network] is the fault-injection hook of the chaos layer: after the
      adversary has fixed the round's traffic, [network ~round ~src ~dst
      msgs] rewrites the messages in flight on every directed edge
      (including self-delivery edges — leave those untouched to stay
      within the synchronous model). It runs before metric accounting and
      trace recording, so both reflect what was actually delivered.
      Perturbing honest-to-honest edges beyond reordering or duplication
      steps outside the paper's reliable-channel model; the chaos layer's
      schedule generator keeps inside it, but the hook itself is
      deliberately unrestricted so tests can probe the envelope.

      [group_key] enables broadcast aggregation on the counted path: it
      must be an {e injective} encoding of a message ([None] for messages
      that must not be grouped, e.g. signed ones — they then travel as
      per-sender entries). Omitting it still avoids the n x n matrices
      but aggregates nothing. [msg_size] and [group_key] are called once
      per distinct payload on the counted path and once per delivered
      message on the concrete one, so both must be pure.

      [mode] selects the engine: [`Auto] (default) uses the counted path
      whenever no [trace] and no [network] hook is installed, [`Concrete]
      forces the per-pair reference path (differential testing).

      @raise Round_limit_exceeded after [max_rounds] (default 100_000)
      rounds with honest processes still running.
      @raise Invalid_argument if a faulty id is out of range or the
      adversary injects a message from a non-faulty or out-of-range
      source, or to an out-of-range destination. *)

  val honest_decisions : 'r outcome -> (int * 'r) list
  (** Decisions of the honest processes, as [(id, value)] pairs. *)
end

module Make (M : MSG) : S with type msg = M.t
