type 'msg event =
  | Round_begin of int
  | Round_end of int
  | Deliver of { src : int; dst : int; msg : 'msg; byzantine : bool }
  | Decide of { who : int; round : int }

type 'msg t = {
  limit : int;
  mutable count : int;
  mutable dropped : int;
  mutable rev_events : 'msg event list;
}

let create ?(limit = 100_000) () = { limit; count = 0; dropped = 0; rev_events = [] }

let record t e =
  if t.count < t.limit then begin
    t.rev_events <- e :: t.rev_events;
    t.count <- t.count + 1
  end
  else t.dropped <- t.dropped + 1

let events t = List.rev t.rev_events

let dropped t = t.dropped

let pp_event pp_msg ppf = function
  | Round_begin r -> Fmt.pf ppf "-- round %d --" r
  | Round_end r -> Fmt.pf ppf "-- round %d ends --" r
  | Deliver { src; dst; msg; byzantine } ->
    Fmt.pf ppf "%d -> %d%s: %a" src dst (if byzantine then " [byz]" else "") pp_msg msg
  | Decide { who; round } -> Fmt.pf ppf "process %d returned in round %d" who round

let pp pp_msg ppf t =
  let evs = events t in
  Fmt.(list ~sep:cut (pp_event pp_msg)) ppf evs;
  if t.dropped > 0 then begin
    (* No leading cut when every event was dropped: the count line must
       render on its own, not after a blank line. *)
    if evs <> [] then Fmt.cut ppf ();
    Fmt.pf ppf "... (%d events dropped)" t.dropped
  end
