(** A round's inbox and the per-sender vote extracts protocols read off
    it.

    An inbox (as returned by {!Runtime.S.exchange}) maps each sender to
    the messages it delivered this round. Two representations coexist:
    the classic concrete per-sender array, and the scalable core's
    counted form, where identical honest broadcasts collapse into
    (payload, sender-bitset) groups plus sparse per-sender overrides.
    All reading operations behave identically on both; the runtime's
    differential tests assert byte-identical protocol outcomes.

    Byzantine senders may deliver several or malformed messages;
    protocol steps therefore parse with a partial function and, where a
    threshold is being counted, must take at most one vote per sender —
    {!first} enforces exactly that. *)

type 'msg t

type 'a votes
(** At most one accepted value per sender. *)

val concrete : 'msg list array -> 'msg t
(** Wrap a per-sender array (slot [s] = messages from sender [s]). *)

val counted :
  n:int ->
  groups:('msg list * Bitset.t) array ->
  direct:(int * 'msg list) array ->
  'msg t
(** Counted representation. Invariants (the runtime maintains them): a
    sender is in at most one group's bitset; [direct] is sorted by
    sender ascending and disjoint from every group; a sender in neither
    delivered nothing. *)

val size : 'msg t -> int
(** Number of processes [n]. *)

val get : 'msg t -> int -> 'msg list
(** Messages from one sender ([[]] if it delivered nothing). *)

val to_array : 'msg t -> 'msg list array

val iter : 'msg t -> f:('msg list -> unit) -> unit
(** Slots in sender order, including empty ones. *)

val iteri : 'msg t -> f:(int -> 'msg list -> unit) -> unit

val first : 'msg t -> f:('msg -> 'a option) -> 'a votes
(** [first inbox ~f] keeps, per sender, the first message that [f]
    accepts. On a counted inbox [f] runs once per distinct payload, so
    it must be pure. *)

val firsti : 'msg t -> f:(int -> 'msg -> 'a option) -> 'a votes
(** Like {!first} for sender-dependent parsers (e.g. signature checks
    against the channel). Runs once per sender on any representation. *)

val all : 'msg t -> f:('msg -> 'a option) -> 'a list array
(** Every accepted message, per sender. *)

val votes : 'a option array -> 'a votes
(** Wrap a plain per-sender vote array (e.g. one assembled locally). *)

val votes_length : 'a votes -> int
val votes_get : 'a votes -> int -> 'a option
val votes_to_array : 'a votes -> 'a option array
val votes_mapi : 'a votes -> f:(int -> 'a option -> 'b option) -> 'b votes

val fold_weighted : 'a votes -> init:'b -> f:('b -> 'a -> int -> 'b) -> 'b
(** Fold over (value, multiplicity) entries. The counted representation
    presents each distinct value once with its sender-count, the
    concrete one each sender separately — [f] must therefore be
    insensitive to grouping and visit order (counts, sums, min/max). *)

val count : 'a votes -> eq:('a -> 'a -> bool) -> 'a -> int
(** Number of senders whose (unique) accepted value equals the given
    one. *)

val plurality : 'a votes -> compare:('a -> 'a -> int) -> ('a * int) option
(** The value accepted from the most senders together with its
    multiplicity; ties broken towards the smallest value. [None] when no
    sender's value was accepted. *)

val senders : 'a votes -> int list
(** Senders with an accepted value, ascending. *)

val restrict : 'a votes -> keep:Bitset.t -> 'a votes
(** Drop the votes of senders outside [keep] (listening-set
    restriction). *)
