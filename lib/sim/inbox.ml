(* A round's inbox in one of two representations:

   - [Concrete]: the classic per-sender array of message lists.
   - [Counted]: the scalable-core aggregate - identical honest
     broadcasts collapse into (payload, sender bitset) groups, plus a
     sparse sorted array of per-sender overrides. A sender appears
     either in exactly one group or in [direct], never both; a sender in
     neither delivered nothing.

   Every reading operation is defined so that the two representations of
   the same traffic are observably identical; the runtime's differential
   tests assert this end to end. *)

type 'msg t =
  | Concrete of 'msg list array
  | Counted of {
      n : int;
      groups : ('msg list * Bitset.t) array;
      direct : (int * 'msg list) array;  (* sorted by sender, ascending *)
    }

type 'a votes =
  | Varr of 'a option array
  | Vcnt of {
      n : int;
      groups : ('a option * Bitset.t) array;
      direct : (int * 'a option) array;  (* sorted by sender, ascending *)
    }

let concrete arr = Concrete arr

let counted ~n ~groups ~direct = Counted { n; groups; direct }

let size = function Concrete arr -> Array.length arr | Counted { n; _ } -> n

(* Binary search over a sparse sorted-by-sender array. *)
let find_sparse arr sender =
  let lo = ref 0 and hi = ref (Array.length arr - 1) and found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let s, v = arr.(mid) in
    if s = sender then begin
      found := Some v;
      lo := !hi + 1
    end
    else if s < sender then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let get t sender =
  match t with
  | Concrete arr -> arr.(sender)
  | Counted { n; groups; direct } ->
    if sender < 0 || sender >= n then invalid_arg "Inbox.get: sender out of range";
    (match find_sparse direct sender with
    | Some msgs -> msgs
    | None ->
      let rec scan i =
        if i >= Array.length groups then []
        else
          let msgs, senders = groups.(i) in
          if Bitset.get senders sender then msgs else scan (i + 1)
      in
      scan 0)

let to_array = function
  | Concrete arr -> Array.copy arr
  | Counted { n; groups; direct } ->
    let arr = Array.make n [] in
    Array.iter
      (fun (msgs, senders) -> Bitset.iter senders ~f:(fun s -> arr.(s) <- msgs))
      groups;
    Array.iter (fun (s, msgs) -> arr.(s) <- msgs) direct;
    arr

let iteri t ~f =
  match t with
  | Concrete arr -> Array.iteri f arr
  | Counted _ -> Array.iteri f (to_array t)

let iter t ~f = iteri t ~f:(fun _ msgs -> f msgs)

let first t ~f =
  match t with
  | Concrete arr -> Varr (Array.map (fun msgs -> List.find_map f msgs) arr)
  | Counted { n; groups; direct } ->
    (* [f] runs once per distinct payload list, not once per sender: it
       must be a pure parser (every protocol step's is). *)
    Vcnt
      {
        n;
        groups = Array.map (fun (msgs, senders) -> (List.find_map f msgs, senders)) groups;
        direct = Array.map (fun (s, msgs) -> (s, List.find_map f msgs)) direct;
      }

let firsti t ~f =
  match t with
  | Concrete arr -> Varr (Array.mapi (fun sender msgs -> List.find_map (f sender) msgs) arr)
  | Counted { n; groups; direct } ->
    let arr = Array.make n None in
    Array.iter
      (fun (msgs, senders) ->
        Bitset.iter senders ~f:(fun s -> arr.(s) <- List.find_map (f s) msgs))
      groups;
    Array.iter (fun (s, msgs) -> arr.(s) <- List.find_map (f s) msgs) direct;
    Varr arr

let all t ~f = Array.map (fun msgs -> List.filter_map f msgs) (to_array t)

(* -- votes -- *)

let votes arr = Varr arr

let votes_length = function Varr arr -> Array.length arr | Vcnt { n; _ } -> n

let votes_get v sender =
  match v with
  | Varr arr -> arr.(sender)
  | Vcnt { n; groups; direct } ->
    if sender < 0 || sender >= n then invalid_arg "Inbox.votes_get: sender out of range";
    (match find_sparse direct sender with
    | Some entry -> entry
    | None ->
      let rec scan i =
        if i >= Array.length groups then None
        else
          let entry, senders = groups.(i) in
          if Bitset.get senders sender then entry else scan (i + 1)
      in
      scan 0)

let votes_to_array = function
  | Varr arr -> Array.copy arr
  | Vcnt { n; groups; direct } ->
    let arr = Array.make n None in
    Array.iter
      (fun (entry, senders) ->
        match entry with
        | None -> ()
        | Some _ -> Bitset.iter senders ~f:(fun s -> arr.(s) <- entry))
      groups;
    Array.iter (fun (s, entry) -> arr.(s) <- entry) direct;
    arr

let votes_mapi v ~f =
  match v with
  | Varr arr -> Varr (Array.mapi f arr)
  | Vcnt _ -> Varr (Array.mapi f (votes_to_array v))

(* Fold over (value, multiplicity) pairs. The counted representation
   visits each distinct accepted value once with its sender-set
   cardinality, the concrete one visits senders ascending with
   multiplicity 1 - so [f] must be insensitive to grouping and order
   (counting and min/max tallies are). *)
let fold_weighted v ~init ~f =
  match v with
  | Varr arr ->
    Array.fold_left
      (fun acc -> function Some x -> f acc x 1 | None -> acc)
      init arr
  | Vcnt { groups; direct; _ } ->
    let acc = ref init in
    Array.iter
      (fun (entry, senders) ->
        match entry with
        | None -> ()
        | Some x ->
          let c = Bitset.cardinal senders in
          if c > 0 then acc := f !acc x c)
      groups;
    Array.iter
      (fun (_, entry) -> match entry with Some x -> acc := f !acc x 1 | None -> ())
      direct;
    !acc

let count v ~eq x =
  fold_weighted v ~init:0 ~f:(fun acc w mult -> if eq x w then acc + mult else acc)

let plurality v ~compare =
  (* Tally multiplicities with an association list keyed by [compare];
     the distinct-value count is small (one entry per candidate). *)
  let counts =
    fold_weighted v ~init:[] ~f:(fun counts x mult ->
        match List.partition (fun (w, _) -> compare x w = 0) counts with
        | [ (_, c) ], rest -> (x, c + mult) :: rest
        | [], rest -> (x, mult) :: rest
        | _ :: _ :: _, _ -> assert false)
  in
  List.fold_left
    (fun best (x, c) ->
      match best with
      | None -> Some (x, c)
      | Some (bv, bc) -> if c > bc || (c = bc && compare x bv < 0) then Some (x, c) else best)
    None counts

let senders v =
  match v with
  | Varr arr ->
    let acc = ref [] in
    for i = Array.length arr - 1 downto 0 do
      match arr.(i) with Some _ -> acc := i :: !acc | None -> ()
    done;
    !acc
  | Vcnt { n; groups; direct } ->
    let present = Bitset.create n in
    Array.iter
      (fun (entry, senders) ->
        match entry with None -> () | Some _ -> Bitset.union_into ~into:present senders)
      groups;
    Array.iter
      (fun (s, entry) -> match entry with Some _ -> Bitset.set present s | None -> ())
      direct;
    Bitset.to_list present

let restrict v ~keep =
  match v with
  | Varr arr -> Varr (Array.mapi (fun s entry -> if Bitset.mem keep s then entry else None) arr)
  | Vcnt { n; groups; direct } ->
    Vcnt
      {
        n;
        groups = Array.map (fun (entry, senders) -> (entry, Bitset.inter senders keep)) groups;
        direct = Array.of_list (List.filter (fun (s, _) -> Bitset.mem keep s) (Array.to_list direct));
      }
