(* Enumerable adversary decisions.

   Every choice an adversary (or a configuration generator) makes is a
   node in a finite decision tree: a labelled branch point with a known
   arity and a child per alternative. The same tree value supports all
   three consumers of adversarial nondeterminism in this repository:

   - the model checker walks {e every} leaf ({!iter}), which is what
     makes its "all behaviours within the bounds" claim meaningful;
   - a fuzzer samples one root-to-leaf path from a seeded stream
     ({!sample}), giving the familiar randomized campaign;
   - a replayer follows a recorded path ({!follow}), so any leaf —
     in particular a violating one — is reproducible from the plain
     [int list] of branch indices.

   Trees are built with closures, so the space is never materialised;
   only the path currently being walked is live. Leaf payloads are
   ordinary values (for the chaos layer: fault schedules), which keeps
   the compilation from decisions to running adversaries in one place —
   {!Bap_chaos.Injector} — shared by checker and fuzzer alike. *)

type 'a t =
  | Return of 'a
  | Choose of { label : string; arity : int; child : int -> 'a t }

type path = int list

let return v = Return v

let choose ~label ~arity child =
  if arity <= 0 then invalid_arg "Decision.choose: arity must be positive";
  if arity = 1 then child 0 else Choose { label; arity; child }

let pick ~label alternatives next =
  let alts = Array.of_list alternatives in
  let arity = Array.length alts in
  if arity = 0 then invalid_arg "Decision.pick: no alternatives";
  choose ~label ~arity (fun i -> next alts.(i))

(* All subsets of at most [limit] items, indices strictly increasing, so
   every subset appears exactly once and lists its elements in the input
   order. Each node chooses either "stop here" (branch 0) or the next
   element's offset past the previous choice. Shared by the fault-space
   and configuration enumerations: one combinator, one subset
   semantics. *)
let subsets ~label ~limit items =
  let alpha = Array.of_list items in
  let total = Array.length alpha in
  let rec extend acc start remaining =
    let available = total - start in
    if remaining = 0 || available = 0 then Return (List.rev acc)
    else
      choose ~label ~arity:(available + 1) (fun i ->
          if i = 0 then Return (List.rev acc)
          else
            let idx = start + i - 1 in
            extend (alpha.(idx) :: acc) (idx + 1) (remaining - 1))
  in
  extend [] 0 (max 0 limit)

let rec map f = function
  | Return v -> Return (f v)
  | Choose { label; arity; child } ->
    Choose { label; arity; child = (fun i -> map f (child i)) }

let rec bind t f =
  match t with
  | Return v -> f v
  | Choose { label; arity; child } ->
    Choose { label; arity; child = (fun i -> bind (child i) f) }

let ( let* ) = bind

(* DFS over every leaf, lowest branch index first. The path handed to
   the visitor is root-to-leaf. *)
let iter visit t =
  let rec go prefix = function
    | Return v -> visit v ~path:(List.rev prefix)
    | Choose { arity; child; _ } ->
      for i = 0 to arity - 1 do
        go (i :: prefix) (child i)
      done
  in
  go [] t

let count t =
  let n = ref 0 in
  iter (fun _ ~path:_ -> incr n) t;
  !n

let follow t path =
  let rec go t path =
    match (t, path) with
    | Return v, [] -> Some v
    | Return _, _ :: _ -> None
    | Choose _, [] -> None
    | Choose { arity; child; _ }, i :: rest ->
      if i < 0 || i >= arity then None else go (child i) rest
  in
  go t path

let sample rng t =
  let rec go acc = function
    | Return v -> (v, List.rev acc)
    | Choose { arity; child; _ } ->
      let i = Rng.int rng arity in
      go (i :: acc) (child i)
  in
  go [] t

let rec depth = function
  | Return _ -> 0
  | Choose { arity; child; _ } ->
    let d = ref 0 in
    for i = 0 to arity - 1 do
      d := max !d (depth (child i))
    done;
    1 + !d
