(** Reusable round buffers for {!Runtime}'s concrete delivery path.

    One arena lives for a whole execution; {!clear} wipes it between
    rounds instead of reallocating two n x n matrices per round. The
    no-leak property (a cleared arena never shows a previous round's
    message) is asserted by the inbox property tests. *)

type 'msg t = {
  n : int;
  out : 'msg list array array;  (** Puppet outboxes, [[src].(dst)]. *)
  eff : 'msg list array array;  (** Post-adversary traffic, [[src].(dst)]. *)
}

val create : int -> 'msg t
val clear : 'msg t -> unit
