module type MSG = sig
  type t
end

module type S = sig
  type msg
  type ctx

  val id : ctx -> int
  val n : ctx -> int
  val round : ctx -> int
  val exchange : ctx -> (int -> msg list) -> msg list array
  val broadcast : ctx -> msg -> msg list array
  val send_to : ctx -> (int * msg) list -> msg list array
  val silent_round : ctx -> msg list array
  val skip : ctx -> int -> unit

  type 'r outcome = {
    n : int;
    faulty : int array;
    decisions : 'r option array;
    decision_round : int array;
    rounds : int;
    honest_sent : int;
    honest_per_round : int array;
    honest_received : int array;
    honest_bits : int;
    adversary_sent : int;
  }

  exception Round_limit_exceeded of int

  val run :
    ?max_rounds:int ->
    ?trace:msg Trace.t ->
    ?msg_size:(msg -> int) ->
    ?network:(round:int -> src:int -> dst:int -> msg list -> msg list) ->
    n:int ->
    faulty:int array ->
    adversary:msg Adversary.t ->
    (ctx -> 'r) ->
    'r outcome

  val honest_decisions : 'r outcome -> (int * 'r) list
end

module Make (M : MSG) : S with type msg = M.t = struct
  module Tel = Bap_telemetry.Telemetry

  type msg = M.t
  type ctx = { ctx_id : int; ctx_n : int; mutable ctx_round : int }

  let id c = c.ctx_id
  let n c = c.ctx_n
  let round c = c.ctx_round

  type _ Effect.t += Exchange : (int -> msg list) -> msg list array Effect.t

  let exchange _ctx outbox = Effect.perform (Exchange outbox)
  let broadcast ctx m = exchange ctx (fun _ -> [ m ])

  let send_to ctx pairs =
    let outbox j = List.filter_map (fun (dst, m) -> if dst = j then Some m else None) pairs in
    exchange ctx outbox

  let silent_round ctx = exchange ctx (fun _ -> [])

  let skip ctx r =
    for _ = 1 to r do
      ignore (silent_round ctx)
    done

  type 'r outcome = {
    n : int;
    faulty : int array;
    decisions : 'r option array;
    decision_round : int array;
    rounds : int;
    honest_sent : int;
    honest_per_round : int array;
    honest_received : int array;
    honest_bits : int;
    adversary_sent : int;
  }

  exception Round_limit_exceeded of int

  (* A fiber is either finished with a result or suspended at an
     [exchange], holding its outbox and the continuation expecting the
     round's inbox. *)
  type 'r status =
    | Finished of 'r
    | Yielded of (int -> msg list) * (msg list array, 'r status) Effect.Deep.continuation

  let spawn (body : unit -> 'r) : 'r status =
    Effect.Deep.match_with body ()
      {
        retc = (fun r -> Finished r);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Exchange outbox ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) -> Yielded (outbox, k))
            | _ -> None);
      }

  let run ?(max_rounds = 100_000) ?trace ?msg_size ?network ~n ~faulty ~adversary body =
    let is_faulty = Array.make n false in
    Array.iter
      (fun i ->
        if i < 0 || i >= n then invalid_arg "Runtime.run: faulty id out of range";
        is_faulty.(i) <- true)
      faulty;
    let handlers = adversary.Adversary.make ~n ~faulty in
    let ctxs = Array.init n (fun i -> { ctx_id = i; ctx_n = n; ctx_round = 0 }) in
    let decisions = Array.make n None in
    let decision_round = Array.make n (-1) in
    let record e = match trace with Some t -> Trace.record t e | None -> () in
    let note_finish i r round =
      decisions.(i) <- Some r;
      decision_round.(i) <- round;
      record (Trace.Decide { who = i; round })
    in
    let honest_sent = ref 0 in
    let honest_bits = ref 0 in
    let honest_received = Array.make n 0 in
    let adversary_sent = ref 0 in
    let per_round = ref [] in
    let round = ref 0 in
    (* The sim.run span covers the spawn too: the first segment of every
       protocol (up to its first exchange) runs inside [spawn], and any
       phase spans it opens must land inside this one. *)
    Tel.span ~cat:"sim" ~name:"sim.run"
      ~attrs:(fun () -> [ ("n", Tel.Int n); ("f", Tel.Int (Array.length faulty)) ])
      ~end_attrs:(fun () ->
        [
          ("rounds", Tel.Int !round);
          ("msgs", Tel.Int !honest_sent);
          ("bits", Tel.Int !honest_bits);
          ("adversary_msgs", Tel.Int !adversary_sent);
        ])
      (fun () ->
    let status = Array.init n (fun i -> spawn (fun () -> body ctxs.(i))) in
    Array.iteri
      (fun i st -> match st with Finished r -> note_finish i r 0 | Yielded _ -> ())
      status;
    let honest_running () =
      let any = ref false in
      Array.iteri
        (fun i st ->
          match st with Yielded _ when not is_faulty.(i) -> any := true | _ -> ())
        status;
      !any
    in
    let this_round = ref 0 in
    let bits0 = ref 0 in
    while honest_running () do
      incr round;
      if !round > max_rounds then raise (Round_limit_exceeded max_rounds);
      record (Trace.Round_begin !round);
      this_round := 0;
      bits0 := !honest_bits;
      Tel.span ~cat:"sim" ~name:"round"
        ~attrs:(fun () -> [ ("round", Tel.Int !round) ])
        ~end_attrs:(fun () ->
          [
            ("msgs", Tel.Int !this_round);
            ("bits", Tel.Int (!honest_bits - !bits0));
          ])
        (fun () ->
      Array.iter (fun c -> c.ctx_round <- !round) ctxs;
      (* Materialise the outboxes so each is evaluated exactly once. *)
      let out = Array.make_matrix n n [] in
      Array.iteri
        (fun src st ->
          match st with
          | Yielded (outbox, _) ->
            for dst = 0 to n - 1 do
              out.(src).(dst) <- outbox dst
            done
          | Finished _ -> ())
        status;
      let view =
        {
          Adversary.round = !round;
          n;
          faulty;
          honest_out =
            (fun ~sender ~recipient ->
              if is_faulty.(sender) then [] else out.(sender).(recipient));
        }
      in
      let eff_out = Array.make_matrix n n [] in
      for src = 0 to n - 1 do
        if is_faulty.(src) then begin
          let puppet dst = out.(src).(dst) in
          for dst = 0 to n - 1 do
            eff_out.(src).(dst) <- handlers.Adversary.filter view ~src puppet dst
          done
        end
        else
          for dst = 0 to n - 1 do
            eff_out.(src).(dst) <- out.(src).(dst)
          done
      done;
      List.iter
        (fun { Adversary.src; dst; payload } ->
          (* Reject bad injections loudly: silently accepting a send from
             an honest id would let a buggy adversary forge honest
             behaviour and corrupt every message-complexity metric. *)
          if src < 0 || src >= n then
            invalid_arg
              (Printf.sprintf
                 "Runtime.run: adversary injected from out-of-range source %d (round %d)"
                 src !round);
          if not is_faulty.(src) then
            invalid_arg
              (Printf.sprintf
                 "Runtime.run: adversary injected from non-faulty source %d (round %d)"
                 src !round);
          if dst < 0 || dst >= n then
            invalid_arg
              (Printf.sprintf
                 "Runtime.run: adversary injected to out-of-range destination %d (round %d)"
                 dst !round);
          eff_out.(src).(dst) <- eff_out.(src).(dst) @ [ payload ])
        (handlers.Adversary.inject view);
      (match network with
      | None -> ()
      | Some perturb ->
        for src = 0 to n - 1 do
          for dst = 0 to n - 1 do
            eff_out.(src).(dst) <- perturb ~round:!round ~src ~dst eff_out.(src).(dst)
          done
        done);
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then begin
            let c = List.length eff_out.(src).(dst) in
            if is_faulty.(src) then adversary_sent := !adversary_sent + c
            else begin
              this_round := !this_round + c;
              honest_received.(dst) <- honest_received.(dst) + c;
              match msg_size with
              | Some size ->
                List.iter (fun m -> honest_bits := !honest_bits + size m) eff_out.(src).(dst)
              | None -> ()
            end
          end
        done
      done;
      honest_sent := !honest_sent + !this_round;
      per_round := !this_round :: !per_round;
      (match trace with
      | None -> ()
      | Some t ->
        for src = 0 to n - 1 do
          for dst = 0 to n - 1 do
            List.iter
              (fun m ->
                Trace.record t
                  (Trace.Deliver { src; dst; msg = m; byzantine = is_faulty.(src) }))
              eff_out.(src).(dst)
          done
        done);
      Array.iteri
        (fun i st ->
          match st with
          | Finished _ -> ()
          | Yielded (_, k) ->
            let inbox =
              if is_faulty.(i) then
                Array.init n (fun src ->
                    handlers.Adversary.filter_in view ~dst:i ~src eff_out.(src).(i))
              else Array.init n (fun src -> eff_out.(src).(i))
            in
            let st' = Effect.Deep.continue k inbox in
            status.(i) <- st';
            (match st' with Finished r -> note_finish i r !round | Yielded _ -> ()))
        status);
      record (Trace.Round_end !round);
      Tel.Metrics.counter "sim.rounds" 1;
      Tel.Metrics.counter "sim.msgs" !this_round;
      Tel.Metrics.counter "sim.bits" (!honest_bits - !bits0);
      Tel.Metrics.observe "sim.round_msgs" !this_round
    done);
    {
      n;
      faulty;
      decisions;
      decision_round;
      rounds = !round;
      honest_sent = !honest_sent;
      honest_per_round = Array.of_list (List.rev !per_round);
      honest_received;
      honest_bits = !honest_bits;
      adversary_sent = !adversary_sent;
    }

  let honest_decisions outcome =
    let is_faulty = Array.make outcome.n false in
    Array.iter (fun i -> is_faulty.(i) <- true) outcome.faulty;
    let acc = ref [] in
    for i = outcome.n - 1 downto 0 do
      if not is_faulty.(i) then
        match outcome.decisions.(i) with Some v -> acc := (i, v) :: !acc | None -> ()
    done;
    !acc
end
