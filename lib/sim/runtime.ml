module type MSG = sig
  type t
end

module type S = sig
  type msg
  type ctx

  val id : ctx -> int
  val n : ctx -> int
  val round : ctx -> int
  val exchange : ctx -> (int -> msg list) -> msg Inbox.t
  val broadcast_list : ctx -> msg list -> msg Inbox.t
  val broadcast : ctx -> msg -> msg Inbox.t
  val send_to : ctx -> (int * msg) list -> msg Inbox.t
  val silent_round : ctx -> msg Inbox.t
  val skip : ctx -> int -> unit

  type 'r outcome = {
    n : int;
    faulty : int array;
    decisions : 'r option array;
    decision_round : int array;
    rounds : int;
    honest_sent : int;
    honest_per_round : int array;
    honest_received : int array;
    honest_bits : int;
    adversary_sent : int;
  }

  exception Round_limit_exceeded of int

  val run :
    ?max_rounds:int ->
    ?trace:msg Trace.t ->
    ?msg_size:(msg -> int) ->
    ?network:(round:int -> src:int -> dst:int -> msg list -> msg list) ->
    ?group_key:(msg -> string option) ->
    ?mode:[ `Auto | `Concrete ] ->
    n:int ->
    faulty:int array ->
    adversary:msg Adversary.t ->
    (ctx -> 'r) ->
    'r outcome

  val honest_decisions : 'r outcome -> (int * 'r) list
end

module Make (M : MSG) : S with type msg = M.t = struct
  module Tel = Bap_telemetry.Telemetry
  module Memprobe = Bap_telemetry.Memprobe

  type msg = M.t
  type ctx = { ctx_id : int; ctx_n : int; mutable ctx_round : int }

  let id c = c.ctx_id
  let n c = c.ctx_n
  let round c = c.ctx_round

  (* The two outbox shapes a fiber can yield. [Obroadcast] is the
     counted engine's native form: recipient-independent, so identical
     honest broadcasts aggregate into one (payload, sender-set) group.
     [Ofun] forces per-recipient materialisation on either path. *)
  type outbox = Obroadcast of msg list | Ofun of (int -> msg list)

  type _ Effect.t += Exchange : outbox -> msg Inbox.t Effect.t

  let exchange _ctx f = Effect.perform (Exchange (Ofun f))
  let broadcast_list _ctx msgs = Effect.perform (Exchange (Obroadcast msgs))
  let broadcast ctx m = broadcast_list ctx [ m ]

  let send_to ctx pairs =
    let outbox j = List.filter_map (fun (dst, m) -> if dst = j then Some m else None) pairs in
    exchange ctx outbox

  let silent_round ctx = broadcast_list ctx []

  let skip ctx r =
    for _ = 1 to r do
      ignore (silent_round ctx)
    done

  type 'r outcome = {
    n : int;
    faulty : int array;
    decisions : 'r option array;
    decision_round : int array;
    rounds : int;
    honest_sent : int;
    honest_per_round : int array;
    honest_received : int array;
    honest_bits : int;
    adversary_sent : int;
  }

  exception Round_limit_exceeded of int

  (* A fiber is either finished with a result or suspended at an
     [exchange], holding its outbox and the continuation expecting the
     round's inbox. *)
  type 'r status =
    | Finished of 'r
    | Yielded of outbox * (msg Inbox.t, 'r status) Effect.Deep.continuation

  let spawn (body : unit -> 'r) : 'r status =
    Effect.Deep.match_with body ()
      {
        retc = (fun r -> Finished r);
        exnc = raise;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Exchange ob ->
              Some
                (fun (k : (a, _) Effect.Deep.continuation) -> Yielded (ob, k))
            | _ -> None);
      }

  (* A sender's effective traffic shape on the counted path. *)
  type shape = RNone | RBroadcast of msg list | RRow of msg list array

  (* Injective key for a whole broadcast list: netstring-join of the
     per-message keys, [None] as soon as one message must not group. *)
  let key_of gk msgs =
    let rec go buf = function
      | [] -> Some (Buffer.contents buf)
      | m :: rest -> (
        match gk m with
        | None -> None
        | Some s ->
          Buffer.add_string buf (string_of_int (String.length s));
          Buffer.add_char buf ':';
          Buffer.add_string buf s;
          go buf rest)
    in
    go (Buffer.create 64) msgs

  let run ?(max_rounds = 100_000) ?trace ?msg_size ?network ?group_key ?(mode = `Auto)
      ~n ~faulty ~adversary body =
    let is_faulty = Array.make n false in
    Array.iter
      (fun i ->
        if i < 0 || i >= n then invalid_arg "Runtime.run: faulty id out of range";
        is_faulty.(i) <- true)
      faulty;
    let handlers = adversary.Adversary.make ~n ~faulty in
    let ctxs = Array.init n (fun i -> { ctx_id = i; ctx_n = n; ctx_round = 0 }) in
    let decisions = Array.make n None in
    let decision_round = Array.make n (-1) in
    let record e = match trace with Some t -> Trace.record t e | None -> () in
    let note_finish i r round =
      decisions.(i) <- Some r;
      decision_round.(i) <- round;
      record (Trace.Decide { who = i; round })
    in
    let honest_sent = ref 0 in
    let honest_bits = ref 0 in
    let honest_received = Array.make n 0 in
    let adversary_sent = ref 0 in
    let per_round = ref [] in
    let round = ref 0 in
    (* The counted engine is byte-identical to the concrete one but
       cannot feed a per-edge trace or network hook, so either observer
       forces the reference path. *)
    let counted_ok =
      match mode with
      | `Concrete -> false
      | `Auto -> Option.is_none trace && Option.is_none network
    in
    let validate_send { Adversary.src; dst; _ } =
      (* Reject bad injections loudly: silently accepting a send from an
         honest id would let a buggy adversary forge honest behaviour
         and corrupt every message-complexity metric. *)
      if src < 0 || src >= n then
        invalid_arg
          (Printf.sprintf
             "Runtime.run: adversary injected from out-of-range source %d (round %d)"
             src !round);
      if not is_faulty.(src) then
        invalid_arg
          (Printf.sprintf
             "Runtime.run: adversary injected from non-faulty source %d (round %d)"
             src !round);
      if dst < 0 || dst >= n then
        invalid_arg
          (Printf.sprintf
             "Runtime.run: adversary injected to out-of-range destination %d (round %d)"
             dst !round)
    in
    (* The sim.run span covers the spawn too: the first segment of every
       protocol (up to its first exchange) runs inside [spawn], and any
       phase spans it opens must land inside this one.

       Allocation attribution rides the same span when the memprobe is
       on: [run_mw0] is stamped by the Begin-attr thunk (entry) and the
       domain-local delta lands as the last End attr, so memprobe-off
       traces keep the exact pre-probe bytes. The whole run is also a
       memprobe phase, which makes the protocols' nested [Phase_span]
       frames self-subtract from it in the metrics registry. *)
    let run_mw0 = ref 0. in
    Tel.span ~cat:"sim" ~name:"sim.run"
      ~attrs:(fun () ->
        if Memprobe.enabled () then run_mw0 := Memprobe.domain_minor_words ();
        [ ("n", Tel.Int n); ("f", Tel.Int (Array.length faulty)) ])
      ~end_attrs:(fun () ->
        let base =
          [
            ("rounds", Tel.Int !round);
            ("msgs", Tel.Int !honest_sent);
            ("bits", Tel.Int !honest_bits);
            ("adversary_msgs", Tel.Int !adversary_sent);
          ]
        in
        if Memprobe.enabled () then
          base
          @ [
              ( "minor_words",
                Tel.Int
                  (int_of_float (Memprobe.domain_minor_words () -. !run_mw0)) );
            ]
        else base)
      (fun () ->
    Memprobe.phase "sim.run" @@ fun () ->
    let status = Array.init n (fun i -> spawn (fun () -> body ctxs.(i))) in
    Array.iteri
      (fun i st -> match st with Finished r -> note_finish i r 0 | Yielded _ -> ())
      status;
    let honest_running () =
      let any = ref false in
      Array.iteri
        (fun i st ->
          match st with Yielded _ when not is_faulty.(i) -> any := true | _ -> ())
        status;
      !any
    in
    let this_round = ref 0 in
    let bits0 = ref 0 in
    let mw0 = ref 0. in
    (* -- concrete (per-pair) engine: the reference semantics -- *)
    let arena = if counted_ok then None else Some (Arena.create n) in
    let concrete_round (arena : msg Arena.t) =
      Arena.clear arena;
      let out = arena.Arena.out and eff = arena.Arena.eff in
      (* Materialise the outboxes so each is evaluated exactly once. *)
      Array.iteri
        (fun src st ->
          match st with
          | Yielded (Obroadcast msgs, _) -> Array.fill out.(src) 0 n msgs
          | Yielded (Ofun f, _) ->
            for dst = 0 to n - 1 do
              out.(src).(dst) <- f dst
            done
          | Finished _ -> ())
        status;
      let view =
        {
          Adversary.round = !round;
          n;
          faulty;
          honest_out =
            (fun ~sender ~recipient ->
              if is_faulty.(sender) then [] else out.(sender).(recipient));
        }
      in
      for src = 0 to n - 1 do
        if is_faulty.(src) then begin
          let puppet dst = out.(src).(dst) in
          for dst = 0 to n - 1 do
            eff.(src).(dst) <- handlers.Adversary.filter view ~src puppet dst
          done
        end
        else Array.blit out.(src) 0 eff.(src) 0 n
      done;
      (match handlers.Adversary.inject view with
      | [] -> ()
      | sends ->
        (* Group per (src, dst) so each slot takes one append instead of
           one quadratic [@ [m]] per injected message; delivery order is
           the injection order, pinned by a regression test. *)
        let extras = Hashtbl.create 16 in
        let touched = ref [] in
        List.iter
          (fun ({ Adversary.src; dst; payload } as send) ->
            validate_send send;
            let key = (src * n) + dst in
            match Hashtbl.find_opt extras key with
            | None ->
              touched := key :: !touched;
              Hashtbl.replace extras key [ payload ]
            | Some acc -> Hashtbl.replace extras key (payload :: acc))
          sends;
        List.iter
          (fun key ->
            let src = key / n and dst = key mod n in
            eff.(src).(dst) <- eff.(src).(dst) @ List.rev (Hashtbl.find extras key))
          (List.rev !touched));
      (match network with
      | None -> ()
      | Some perturb ->
        for src = 0 to n - 1 do
          for dst = 0 to n - 1 do
            eff.(src).(dst) <- perturb ~round:!round ~src ~dst eff.(src).(dst)
          done
        done);
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then begin
            let c = List.length eff.(src).(dst) in
            if is_faulty.(src) then adversary_sent := !adversary_sent + c
            else begin
              this_round := !this_round + c;
              honest_received.(dst) <- honest_received.(dst) + c;
              match msg_size with
              | Some size ->
                List.iter (fun m -> honest_bits := !honest_bits + size m) eff.(src).(dst)
              | None -> ()
            end
          end
        done
      done;
      (match trace with
      | None -> ()
      | Some t ->
        for src = 0 to n - 1 do
          for dst = 0 to n - 1 do
            List.iter
              (fun m ->
                Trace.record t
                  (Trace.Deliver { src; dst; msg = m; byzantine = is_faulty.(src) }))
              eff.(src).(dst)
          done
        done);
      Array.iteri
        (fun i st ->
          match st with
          | Finished _ -> ()
          | Yielded (_, k) ->
            let inbox =
              if is_faulty.(i) then
                Inbox.concrete
                  (Array.init n (fun src ->
                       handlers.Adversary.filter_in view ~dst:i ~src eff.(src).(i)))
              else Inbox.concrete (Array.init n (fun src -> eff.(src).(i)))
            in
            let st' = Effect.Deep.continue k inbox in
            status.(i) <- st';
            (match st' with Finished r -> note_finish i r !round | Yielded _ -> ()))
        status
    in
    (* -- counted engine: aggregates identical honest broadcasts -- *)
    let faulty_sorted =
      let a = Array.copy faulty in
      Array.sort Int.compare a;
      a
    in
    (* Per-round scratch, allocated once per run and wiped between
       rounds (the counted path's arena). *)
    let kind : shape array = Array.make n RNone in
    let ekind : shape array = Array.make n RNone in
    let grouped = Array.make n false in
    let own_len = Array.make n 0 in
    let inj_rev : (int * msg) list array = Array.make n [] in
    let group_tbl : (string, msg list * Bitset.t) Hashtbl.t = Hashtbl.create 64 in
    let size_sum msgs =
      match msg_size with
      | None -> 0
      | Some size -> List.fold_left (fun acc m -> acc + size m) 0 msgs
    in
    let counted_round () =
      Array.fill kind 0 n RNone;
      Array.fill ekind 0 n RNone;
      Array.fill grouped 0 n false;
      Array.fill own_len 0 n 0;
      (* 1. Materialise outboxes: same evaluation order and call counts
         as the concrete path (function outboxes run once per recipient,
         destinations ascending, sources ascending). *)
      Array.iteri
        (fun src st ->
          match st with
          | Yielded (Obroadcast msgs, _) -> kind.(src) <- RBroadcast msgs
          | Yielded (Ofun f, _) -> kind.(src) <- RRow (Array.init n f)
          | Finished _ -> ())
        status;
      let view =
        {
          Adversary.round = !round;
          n;
          faulty;
          honest_out =
            (fun ~sender ~recipient ->
              if is_faulty.(sender) then []
              else
                match kind.(sender) with
                | RNone -> []
                | RBroadcast msgs -> msgs
                | RRow r -> r.(recipient));
        }
      in
      (* 2. Honest senders: aggregate broadcast shapes into groups. *)
      Hashtbl.reset group_tbl;
      let groups_rev = ref [] in
      let base_honest_total = ref 0 in
      let bits_per_recipient = ref 0 in
      for src = 0 to n - 1 do
        if not is_faulty.(src) then
          match kind.(src) with
          | RNone | RBroadcast [] -> ()
          | RBroadcast msgs as k ->
            ekind.(src) <- k;
            let len = List.length msgs in
            base_honest_total := !base_honest_total + len;
            own_len.(src) <- len;
            bits_per_recipient := !bits_per_recipient + size_sum msgs;
            (match group_key with
            | None -> ()
            | Some gk -> (
              match key_of gk msgs with
              | None -> ()
              | Some key -> (
                grouped.(src) <- true;
                match Hashtbl.find_opt group_tbl key with
                | Some (_, set) -> Bitset.set set src
                | None ->
                  let set = Bitset.create n in
                  Bitset.set set src;
                  let entry = (msgs, set) in
                  Hashtbl.replace group_tbl key entry;
                  groups_rev := entry :: !groups_rev)))
          | RRow _ as k -> ekind.(src) <- k
      done;
      (* 3. Faulty senders, ascending (the concrete path's filter-call
         order). The canonical combinators are recognised physically:
         they are pure, so skipping their calls is unobservable. *)
      Array.iter
        (fun src ->
          let pk = kind.(src) in
          if handlers.Adversary.filter == Adversary.mute_filter then ()
          else if handlers.Adversary.filter == Adversary.identity_filter then (
            match pk with RNone | RBroadcast [] -> () | k -> ekind.(src) <- k)
          else begin
            let puppet dst =
              match pk with RNone -> [] | RBroadcast msgs -> msgs | RRow r -> r.(dst)
            in
            ekind.(src) <-
              RRow (Array.init n (fun dst -> handlers.Adversary.filter view ~src puppet dst))
          end)
        faulty_sorted;
      (* 4. Injections, validated in order with the concrete path's
         exact errors. *)
      let touched_dsts = ref [] in
      let inj_adv = ref 0 in
      List.iter
        (fun ({ Adversary.src; dst; payload } as send) ->
          validate_send send;
          if dst <> src then incr inj_adv;
          (match inj_rev.(dst) with [] -> touched_dsts := dst :: !touched_dsts | _ :: _ -> ());
          inj_rev.(dst) <- (src, payload) :: inj_rev.(dst))
        (handlers.Adversary.inject view);
      (* 5. Accounting: identical totals, computed per group / sender
         instead of per pair. *)
      this_round := !this_round + (!base_honest_total * (n - 1));
      honest_bits := !honest_bits + (!bits_per_recipient * (n - 1));
      for dst = 0 to n - 1 do
        honest_received.(dst) <- honest_received.(dst) + !base_honest_total - own_len.(dst)
      done;
      for src = 0 to n - 1 do
        match ekind.(src) with
        | RNone -> ()
        | RBroadcast msgs ->
          if is_faulty.(src) then
            adversary_sent := !adversary_sent + (List.length msgs * (n - 1))
        | RRow r ->
          if is_faulty.(src) then
            for dst = 0 to n - 1 do
              if dst <> src then adversary_sent := !adversary_sent + List.length r.(dst)
            done
          else
            for dst = 0 to n - 1 do
              if dst <> src then begin
                let c = List.length r.(dst) in
                this_round := !this_round + c;
                honest_received.(dst) <- honest_received.(dst) + c;
                honest_bits := !honest_bits + size_sum r.(dst)
              end
            done
      done;
      adversary_sent := !adversary_sent + !inj_adv;
      (* 6. Assemble inboxes. With no function-shaped traffic and no
         injections every recipient shares one immutable inbox. *)
      let groups_arr = Array.of_list (List.rev !groups_rev) in
      let shared_direct =
        let acc = ref [] in
        for src = n - 1 downto 0 do
          if not grouped.(src) then
            match ekind.(src) with
            | RBroadcast msgs -> acc := (src, msgs) :: !acc
            | RNone | RRow _ -> ()
        done;
        Array.of_list !acc
      in
      let rows_exist = Array.exists (function RRow _ -> true | _ -> false) ekind in
      let have_extras =
        rows_exist || (match !touched_dsts with [] -> false | _ :: _ -> true)
      in
      let shared_inbox =
        if have_extras then None
        else Some (Inbox.counted ~n ~groups:groups_arr ~direct:shared_direct)
      in
      let base_of src dst =
        match ekind.(src) with RNone -> [] | RBroadcast msgs -> msgs | RRow r -> r.(dst)
      in
      let overrides_for i =
        let ov = ref [] in
        if rows_exist then
          for src = 0 to n - 1 do
            match ekind.(src) with
            | RRow r -> (
              match r.(i) with [] -> () | msgs -> ov := (src, msgs) :: !ov)
            | RNone | RBroadcast _ -> ()
          done;
        List.iter
          (fun (src, payload) ->
            match List.assoc_opt src !ov with
            | Some cur -> ov := (src, cur @ [ payload ]) :: List.remove_assoc src !ov
            | None -> ov := (src, base_of src i @ [ payload ]) :: !ov)
          (List.rev inj_rev.(i));
        !ov
      in
      let inbox_for i =
        match shared_inbox with
        | Some shared -> shared
        | None -> (
          match overrides_for i with
          | [] -> Inbox.counted ~n ~groups:groups_arr ~direct:shared_direct
          | ov ->
            let ov_sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) ov in
            (* Keep the group/direct disjointness invariant: an
               overridden sender leaves its group for this recipient. *)
            let grouped_ov = List.filter (fun (src, _) -> grouped.(src)) ov_sorted in
            let groups_i =
              match grouped_ov with
              | [] -> groups_arr
              | _ :: _ ->
                Array.map
                  (fun (msgs, set) ->
                    if List.exists (fun (src, _) -> Bitset.get set src) grouped_ov then begin
                      let set' = Bitset.copy set in
                      List.iter
                        (fun (src, _) -> if Bitset.get set' src then Bitset.clear set' src)
                        grouped_ov;
                      (msgs, set')
                    end
                    else (msgs, set))
                  groups_arr
            in
            let rec merge acc ds ovs =
              match (ds, ovs) with
              | [], rest | rest, [] -> List.rev_append acc rest
              | ((s1, _) as d) :: ds', ((s2, _) as o) :: ovs' ->
                if s1 < s2 then merge (d :: acc) ds' ovs
                else if s1 > s2 then merge (o :: acc) ds ovs'
                else merge (o :: acc) ds' ovs'
            in
            let direct = Array.of_list (merge [] (Array.to_list shared_direct) ov_sorted) in
            Inbox.counted ~n ~groups:groups_i ~direct)
      in
      let skip_filter_in = handlers.Adversary.filter_in == Adversary.identity_in in
      Array.iteri
        (fun i st ->
          match st with
          | Finished _ -> ()
          | Yielded (_, k) ->
            let inbox =
              if is_faulty.(i) && not skip_filter_in then begin
                let ov = overrides_for i in
                let slot src =
                  match List.assoc_opt src ov with
                  | Some msgs -> msgs
                  | None -> base_of src i
                in
                Inbox.concrete
                  (Array.init n (fun src ->
                       handlers.Adversary.filter_in view ~dst:i ~src (slot src)))
              end
              else inbox_for i
            in
            let st' = Effect.Deep.continue k inbox in
            status.(i) <- st';
            (match st' with Finished r -> note_finish i r !round | Yielded _ -> ()))
        status;
      List.iter (fun dst -> inj_rev.(dst) <- []) !touched_dsts
    in
    while honest_running () do
      incr round;
      if !round > max_rounds then raise (Round_limit_exceeded max_rounds);
      record (Trace.Round_begin !round);
      this_round := 0;
      bits0 := !honest_bits;
      Tel.span ~cat:"sim" ~name:"round"
        ~attrs:(fun () ->
          if Memprobe.enabled () then mw0 := Memprobe.domain_minor_words ();
          [ ("round", Tel.Int !round) ])
        ~end_attrs:(fun () ->
          let base =
            [
              ("msgs", Tel.Int !this_round);
              ("bits", Tel.Int (!honest_bits - !bits0));
            ]
          in
          if Memprobe.enabled () then
            base
            @ [
                ( "minor_words",
                  Tel.Int
                    (int_of_float (Memprobe.domain_minor_words () -. !mw0)) );
              ]
          else base)
        (fun () ->
          Array.iter (fun c -> c.ctx_round <- !round) ctxs;
          match arena with
          | Some a -> concrete_round a
          | None -> counted_round ());
      honest_sent := !honest_sent + !this_round;
      per_round := !this_round :: !per_round;
      record (Trace.Round_end !round);
      Tel.Metrics.counter "sim.rounds" 1;
      Tel.Metrics.counter "sim.msgs" !this_round;
      Tel.Metrics.counter "sim.bits" (!honest_bits - !bits0);
      Tel.Metrics.observe "sim.round_msgs" !this_round
    done);
    {
      n;
      faulty;
      decisions;
      decision_round;
      rounds = !round;
      honest_sent = !honest_sent;
      honest_per_round = Array.of_list (List.rev !per_round);
      honest_received;
      honest_bits = !honest_bits;
      adversary_sent = !adversary_sent;
    }

  let honest_decisions outcome =
    let is_faulty = Array.make outcome.n false in
    Array.iter (fun i -> is_faulty.(i) <- true) outcome.faulty;
    let acc = ref [] in
    for i = outcome.n - 1 downto 0 do
      if not is_faulty.(i) then
        match outcome.decisions.(i) with Some v -> acc := (i, v) :: !acc | None -> ()
    done;
    !acc
end
