(* Plain unauthenticated graded consensus for t < n/3 (the paper's
   Theorem 7, restated from Civit et al.). It is Algorithm 3 with the
   listening set fixed to everyone, which turns the thresholds
   2k+1 / k+1 over |L| = 3k+1 listeners into n-t / t+1 over n.

   Properties (for t < n/3, i.e. n >= 3t + 1):

   - Strong Unanimity: if every honest process inputs v, all n - t >= 2t+1
     honest INIT votes carry v, so every honest process adopts b = v and
     echoes it, yielding n - t echoes of v and grade 1 everywhere.
   - Coherence: if some honest process returns (v, 1) it saw n - t echoes
     of v, at least n - 2t >= t + 1 of them honest. Every honest process
     therefore sees >= t + 1 echoes of v. An honest process with b <> bot
     has b = v (two values cannot each collect n - t first-round votes,
     and an honest echoer of w <> v would imply w collected n - t votes);
     an honest process with b = bot sees v at least t + 1 times and no
     other value more than t times (only faulty echo other values), so it
     returns (v, 0). *)

module Inbox = Bap_sim.Inbox

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : int
  (** Always 2. *)

  val run : R.ctx -> t:int -> tag:W.tag -> V.t -> V.t * int
  (** Returns [(value, grade)] with grade 0 or 1. Requires t < n/3 for
      the strong-unanimity and coherence guarantees. *)
end = struct
  module Ps = Phase_span.Make (R)

  let rounds = 2

  let run ctx ~t ~tag v =
    Ps.run ctx "gc" @@ fun () ->
    let n = R.n ctx in
    let inbox = R.broadcast ctx (W.Gc_init (tag, v)) in
    let votes =
      Inbox.first inbox ~f:(function
        | W.Gc_init (tg, w) when tg = tag -> Some w
        | _ -> None)
    in
    let b =
      match Inbox.plurality votes ~compare:V.compare with
      | Some (w, c) when c >= n - t -> Some w
      | Some _ | None -> None
    in
    let second = match b with Some w -> [ W.Gc_echo (tag, w) ] | None -> [] in
    let inbox' = R.broadcast_list ctx second in
    let echoes =
      Inbox.first inbox' ~f:(function
        | W.Gc_echo (tg, w) when tg = tag -> Some w
        | _ -> None)
    in
    match b with
    | Some bv -> if Inbox.count echoes ~eq:V.equal bv >= n - t then (bv, 1) else (bv, 0)
    | None -> (
      match Inbox.plurality echoes ~compare:V.compare with
      | Some (w, c) when c >= t + 1 -> (w, 0)
      | Some _ | None -> (v, 0))
end
