(* Algorithm 4: Conciliation with Core Set.

   One round: processes in their own L broadcast (value, L). Each
   process builds the "leader graph" on the senders it heard from, with
   an edge (y, z) whenever y is in the set L_z that z declared, computes
   for each z in L_i the minimum input among self-listening sources that
   reach z, and returns the plurality of these minima over its listening
   set.

   Agreement and strong unanimity (Lemmas 13-14) hold when every honest
   L_i contains only honest processes, |L_i| = 3k+1, and a core set G of
   >= 2k+1 honest processes lies in every honest L_i. *)

module Inbox = Bap_sim.Inbox

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : int
  (** Always 1. *)

  val run : R.ctx -> l_set:int list -> tag:W.tag -> V.t -> V.t
end = struct
  let rounds = 1

  module Ps = Phase_span.Make (R)

  let run ctx ~l_set ~tag v =
    Ps.run ctx "conciliate" @@ fun () ->
    let n = R.n ctx in
    let me = R.id ctx in
    let in_l = List.mem me l_set in
    let inbox =
      if in_l then R.broadcast ctx (W.Conc (tag, v, l_set)) else R.silent_round ctx
    in
    let received =
      Inbox.first inbox ~f:(function
        | W.Conc (tg, w, l) when tg = tag -> Some (w, l)
        | _ -> None)
    in
    (* T_i: identifiers we heard from. E_i: (y, z) with y in z's declared
       set. A source y qualifies if y listed itself (y in L_y). *)
    let in_t i = Option.is_some (Inbox.votes_get received i) in
    let declared_l z =
      match Inbox.votes_get received z with Some (_, l) -> l | None -> []
    in
    let value_of y =
      match Inbox.votes_get received y with Some (w, _) -> Some w | None -> None
    in
    let qualifies y = in_t y && List.mem y (declared_l y) in
    (* Reverse reachability: sources that reach z, including z itself. *)
    let sources_reaching z =
      let visited = Array.make n false in
      let rec explore u =
        if not visited.(u) then begin
          visited.(u) <- true;
          (* predecessors y of u: edge (y, u) iff y in T and y in L_u *)
          List.iter (fun y -> if in_t y && y <> u then explore y) (declared_l u)
        end
      in
      explore z;
      visited
    in
    let m_of z =
      let reach = sources_reaching z in
      let best = ref None in
      for y = 0 to n - 1 do
        if reach.(y) && qualifies y then
          match value_of y with
          | None -> ()
          | Some w -> (
            match !best with
            | None -> best := Some w
            | Some b -> if V.compare w b < 0 then best := Some w)
      done;
      !best
    in
    let minima =
      List.filter_map (fun z -> if in_t z then m_of z else None) l_set
    in
    (* Plurality over the multiset {m_i[j] | j in T_i inter L_i}; ties to
       the smallest value; input kept if the multiset is empty. *)
    let counted = Inbox.votes (Array.of_list (List.map Option.some minima)) in
    match Inbox.plurality counted ~compare:V.compare with
    | Some (w, _) -> w
    | None -> v
end
