(* Algorithm 1: Byzantine Agreement with Predictions - the high-level
   guess-and-double wrapper.

   After one classification round, the wrapper runs ceil(log2 t) + 1
   phases. Phase phi assumes k = 2^(phi-1) classification errors: it
   interleaves three graded consensus calls (protecting validity and
   detecting agreement) with a truncated early-stopping BA (wins when
   f <= k) and a conditional BA-with-classification (wins when at most k
   processes are misclassified). Every sub-protocol consumes a fixed,
   deterministic number of rounds, so honest processes stay in lock-step
   without any explicit timer.

   The wrapper is parametric in the three sub-protocols; Stack
   instantiates it once with the unauthenticated components (Theorem 11)
   and once with the authenticated ones (Theorem 12). *)

module Advice = Bap_prediction.Advice

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) =
struct
  module Classify_p = Classify.Make (W) (R)
  module Es = Early_stopping.Make (V) (W) (R)
  module Tel = Bap_telemetry.Telemetry

  type config = {
    classify : R.ctx -> Advice.t -> Advice.t;
        (** The classification step (normally Algorithm 2); must consume
            exactly one round. Replaceable for ablation studies (e.g.
            trusting the raw advice without the vote). *)
    gc : R.ctx -> tag:W.tag -> V.t -> V.t * int;
    gc_rounds : int;
    bc : R.ctx -> k:int -> base_tag:W.tag -> V.t -> Advice.t -> V.t;
        (** The conditional BA with classification; must consume exactly
            [bc_rounds k] rounds and [bc_tags k] tags. *)
    bc_rounds : k:int -> int;
    bc_tags : k:int -> int;
    ablate_es : bool;
        (** Ablation switch: replace the early-stopping sub-protocol with
            silence of the same duration. Correctness is then conditional
            on the classification BA eventually succeeding - used by
            experiment E13 to show the interleaving is necessary. *)
    ablate_bc : bool;  (** Same for the conditional BA with classification. *)
  }

  let phases_total ~t =
    if t <= 1 then 1
    else begin
      (* ceil(log2 t) + 1 *)
      let rec go acc p = if p >= t then acc + 1 else go (acc + 1) (p * 2) in
      go 0 1
    end

  let k_of_phase phi = 1 lsl (phi - 1)
  let es_phases ~t ~k = min (k + 1) (t + 1)

  (* Deterministic round layout: (component, phase, first, last) with
     1-based inclusive round numbers. Used by the experiment harness to
     attribute message counts to components. [value_prediction] adds the
     optional fast-path segment (see {!run}). *)
  let schedule ?(value_prediction = false) cfg ~t =
    let segments = ref [] in
    let now = ref 0 in
    let push label phi len =
      if len > 0 then begin
        segments := (label, phi, !now + 1, !now + len) :: !segments;
        now := !now + len
      end
    in
    push "classify" 0 Classify_p.rounds;
    if value_prediction then push "value-pred" 0 (2 * cfg.gc_rounds);
    for phi = 1 to phases_total ~t do
      let k = k_of_phase phi in
      push "gc" phi cfg.gc_rounds;
      push "es" phi (Es.rounds ~gc_rounds:cfg.gc_rounds ~phases:(es_phases ~t ~k));
      push "gc" phi cfg.gc_rounds;
      push "bc" phi (cfg.bc_rounds ~k);
      push "gc" phi cfg.gc_rounds
    done;
    List.rev !segments

  let rounds ?value_prediction cfg ~t =
    List.fold_left
      (fun acc (_, _, _, last) -> max acc last)
      0
      (schedule ?value_prediction cfg ~t)

  type 'v result = {
    value : 'v;
    decided_round : int;
        (** Round in which the decision became fixed (the paper's time
            complexity counts up to this point; the process keeps helping
            for one more phase before its function returns). *)
  }

  (* [value_prediction] is an extension beyond the paper (its conclusion
     asks about other prediction types): each process may additionally
     receive a {e predicted decision value}. After classification, a
     fast path runs one graded consensus on the inputs (protecting
     strong unanimity), adopts the predicted value on grade 0, and
     checks for agreement with a second graded consensus. When the value
     predictions are accurate and shared, every honest process decides
     within O(1) rounds even from split inputs; when they are garbage,
     the cost is a constant two graded-consensus calls and the regular
     phases proceed unchanged. Correctness is inherited from the same
     argument as the wrapper's phases: the fast path only fixes a
     decision through a grade-1 graded consensus, whose coherence makes
     every honest process carry the same value into phase 1. *)
  let run ?value_prediction cfg ctx ~t x advice =
    (* One span per lock-step schedule, not one per process: process 0's
       fiber stands for the run (see Phase_span). *)
    let emit = R.id ctx = 0 in
    Tel.span_if emit ~cat:"core" ~name:"wrapper"
      ~attrs:(fun () -> [ ("round", Tel.Int (R.round ctx)); ("t", Tel.Int t) ])
      ~end_attrs:(fun () -> [ ("round", Tel.Int (R.round ctx)) ])
    @@ fun () ->
    let c = cfg.classify ctx advice in
    let v = ref x in
    let decision = ref None in
    let decided_round = ref 0 in
    let result = ref None in
    let next_tag = ref 0 in
    let fresh count =
      let tag = !next_tag in
      next_tag := tag + count;
      tag
    in
    (match value_prediction with
    | None -> ()
    | Some predicted ->
      Tel.span_if emit ~cat:"core" ~name:"value-pred"
        ~attrs:(fun () -> [ ("round", Tel.Int (R.round ctx)) ])
        ~end_attrs:(fun () -> [ ("round", Tel.Int (R.round ctx)) ])
        (fun () ->
          let v1, g1 = cfg.gc ctx ~tag:(fresh 1) !v in
          v := if g1 = 0 then predicted else v1;
          let v2, g2 = cfg.gc ctx ~tag:(fresh 1) !v in
          v := v2;
          if g2 = 1 then begin
            decision := Some !v;
            decided_round := R.round ctx
          end));
    (try
       for phi = 1 to phases_total ~t do
         Tel.span_if emit ~cat:"core" ~name:"phase"
           ~attrs:(fun () ->
             [
               ("round", Tel.Int (R.round ctx));
               ("phi", Tel.Int phi);
               ("k", Tel.Int (k_of_phase phi));
             ])
           ~end_attrs:(fun () -> [ ("round", Tel.Int (R.round ctx)) ])
         @@ fun () ->
         let k = k_of_phase phi in
         let v1, g1 = cfg.gc ctx ~tag:(fresh 1) !v in
         v := v1;
         let phases = es_phases ~t ~k in
         if cfg.ablate_es then begin
           ignore (fresh (Es.tags_used ~phases));
           R.skip ctx (Es.rounds ~gc_rounds:cfg.gc_rounds ~phases)
         end
         else begin
           let es_result =
             Es.run ctx ~gc:cfg.gc ~gc_rounds:cfg.gc_rounds ~phases
               ~base_tag:(fresh (Es.tags_used ~phases))
               !v
           in
           if g1 = 0 then v := es_result.Es.value
         end;
         let v2, g2 = cfg.gc ctx ~tag:(fresh 1) !v in
         v := v2;
         if cfg.ablate_bc then begin
           ignore (fresh (cfg.bc_tags ~k));
           R.skip ctx (cfg.bc_rounds ~k)
         end
         else begin
           let v'' = cfg.bc ctx ~k ~base_tag:(fresh (cfg.bc_tags ~k)) !v c in
           if g2 = 0 then v := v''
         end;
         let v3, g3 = cfg.gc ctx ~tag:(fresh 1) !v in
         v := v3;
         (match !decision with
         | Some d ->
           result := Some d;
           raise Exit
         | None -> ());
         if g3 = 1 then begin
           decision := Some !v;
           decided_round := R.round ctx
         end
       done;
       result :=
         (match !decision with
         | Some d -> Some d
         | None ->
           decided_round := R.round ctx;
           Some !v)
     with Exit -> ());
    { value = Option.get !result; decided_round = !decided_round }
end
