(* Authenticated graded consensus for t < n/2 (the paper's Theorem 8,
   whose construction it takes off the shelf from Momose-Ren). We build
   it from n parallel signed gradecasts, Katz-Koo style, combined so that
   each process sends one message per round: 3 rounds, O(n^2) messages.

   Gradecast (dealer d), combined over all dealers:
   - Round 1: every process, acting as a dealer, broadcasts its signed
     value.
   - Round 2: every process broadcasts, for each dealer proposal it
     received *directly* in round 1, that proposal plus its own echo
     signature on it. (Honest processes therefore echo at most one value
     per dealer.)
   - Round 3: every process broadcasts, per dealer: an echo certificate
     (n - t echo signatures on one proposal) if it assembled one, and a
     conflict proof (two dealer signatures on different values) if it saw
     one.

   Delivery for dealer d at process i (levels 2 / 1 / 0):
   - level 2 on v: i assembled its own certificate for (d, v) at the end
     of round 2 and saw no conflicting dealer signature through round 3;
   - level 1 on v: i holds (own or received) valid certificates for d and
     they all carry the same value v;
   - level 0 (bot): otherwise.

   Why this is a correct gradecast for t < n/2:
   - If i delivers level 2 on v, then no honest process echoed any
     v' <> v for d (an honest echo is broadcast, so i would have seen the
     conflicting dealer signature in round 2). A certificate for (d, v')
     needs n - t >= t + 1 echo signatures, at least one honest - so no
     certificate for any v' exists anywhere. Since i broadcast its own
     certificate in round 3, every honest process holds a certificate for
     (d, v) and no conflicting one: everyone delivers v at level >= 1.
   - If d is honest, unforgeability means no conflicting signature ever
     exists and every honest process assembles the full certificate in
     round 2: everyone delivers d's value at level 2.

   Graded consensus on top: let M_i(w) = #dealers delivered at level 2
   with value w, and m_i(w) = #dealers delivered at level >= 1 with value
   w. Each dealer contributes to at most one value, so at most one w can
   reach m_i(w) >= n - t (2(n-t) > n). Output (w, 1) if M_i(w) >= n - t;
   else (w, 0) if m_i(w) >= n - t; else (input, 0).
   - Strong unanimity: with unanimous honest input v, the >= n - t honest
     dealers all deliver (v, 2) everywhere.
   - Coherence: M_i(w) >= n - t at one process makes m_j(w) >= n - t at
     every honest j (gradecast level 2 forces level >= 1 with the same
     value everywhere), and w is the unique such value. *)

module Pki = Bap_crypto.Pki
module Inbox = Bap_sim.Inbox

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : int
  (** Always 3. *)

  val gradecast :
    R.ctx -> pki:Pki.t -> key:Pki.key -> t:int -> tag:W.tag -> V.t -> (V.t * int) option array
  (** The underlying n-dealer signed gradecast: slot [d] holds process
      [d]'s delivered [(value, level)] with level 2 or 1, or [None] for
      bot. For t < n/2: an honest dealer is delivered at level 2 by
      everyone, and a level-2 delivery at any honest process forces a
      level >= 1 delivery of the same value at every honest process. *)

  val run : R.ctx -> pki:Pki.t -> key:Pki.key -> t:int -> tag:W.tag -> V.t -> V.t * int
  (** Requires t < n/2 for the guarantees. Consumes one tag. *)
end = struct
  let rounds = 3

  (* Per-dealer bookkeeping during one run. *)
  type dealer_state = {
    mutable proposals : (V.t * W.signed_value) list;  (* distinct values seen, dealer-signed *)
    mutable echoes : (V.t * (int * Pki.signature) list) list;  (* per value: distinct echoers *)
    mutable certs : (V.t * W.echo_cert) list;  (* distinct values with a valid certificate *)
    mutable direct : W.signed_value option;  (* round-1 proposal received from the dealer *)
  }

  let gradecast ctx ~pki ~key ~t ~tag v =
    let n = R.n ctx in
    let quorum = n - t in
    let states =
      Array.init n (fun _ -> { proposals = []; echoes = []; certs = []; direct = None })
    in
    let note_proposal d (sv : W.signed_value) =
      (* Cheap structural checks before any signature verification: the
         same proposal arrives from up to n senders per round. *)
      if sv.W.sv_dealer = d then begin
        let st = states.(d) in
        if
          (not (List.exists (fun (w, _) -> V.equal w sv.W.sv_value) st.proposals))
          && W.valid_signed_value pki sv
        then st.proposals <- (sv.W.sv_value, sv) :: st.proposals
      end
    in
    let note_echo d echoer (sv : W.signed_value) echo_sig =
      if sv.W.sv_dealer = d then begin
        let st = states.(d) in
        let existing =
          match List.find_opt (fun (w, _) -> V.equal w sv.W.sv_value) st.echoes with
          | Some (_, es) -> es
          | None -> []
        in
        let sv_known_valid =
          List.exists (fun (w, _) -> V.equal w sv.W.sv_value) st.proposals
        in
        if
          (not (List.mem_assoc echoer existing))
          && (sv_known_valid || W.valid_signed_value pki sv)
          && Pki.verify pki ~signer:echoer ~payload:(W.echo_payload sv) echo_sig
        then begin
          note_proposal d sv;
          st.echoes <-
            (sv.W.sv_value, (echoer, echo_sig) :: existing)
            :: List.filter (fun (w, _) -> not (V.equal w sv.W.sv_value)) st.echoes
        end
      end
    in
    let note_cert d (cert : W.echo_cert) =
      if cert.W.ec_signed.W.sv_dealer = d then begin
        let st = states.(d) in
        let v' = cert.W.ec_signed.W.sv_value in
        if
          (not (List.exists (fun (w, _) -> V.equal w v') st.certs))
          && W.valid_echo_cert pki ~threshold:quorum cert
        then begin
          note_proposal d cert.W.ec_signed;
          st.certs <- (v', cert) :: st.certs
        end
      end
    in
    (* Round 1: dealer role. *)
    let me = R.id ctx in
    let my_sv =
      {
        W.sv_dealer = me;
        sv_value = v;
        sv_sig = Pki.sign key (W.dealer_payload ~dealer:me v);
      }
    in
    let inbox1 = R.broadcast ctx (W.Gcast_init (tag, my_sv)) in
    Inbox.iteri inbox1 ~f:(fun sender msgs ->
        List.iter
          (function
            | W.Gcast_init (tg, sv)
              when tg = tag && sv.W.sv_dealer = sender && W.valid_signed_value pki sv ->
              note_proposal sender sv;
              if Option.is_none states.(sender).direct then states.(sender).direct <- Some sv
            | _ -> ())
          msgs);
    (* Round 2: echo the directly received proposals. *)
    let my_echoes =
      List.filter_map
        (fun st ->
          match st.direct with
          | None -> None
          | Some sv ->
            Some { W.ge_signed = sv; ge_sig = Pki.sign key (W.echo_payload sv) })
        (Array.to_list states)
    in
    let inbox2 = R.broadcast ctx (W.Gcast_echo (tag, my_echoes)) in
    Inbox.iteri inbox2 ~f:(fun sender msgs ->
        List.iter
          (function
            | W.Gcast_echo (tg, echoes) when tg = tag ->
              List.iter
                (fun { W.ge_signed; ge_sig } ->
                  note_echo ge_signed.W.sv_dealer sender ge_signed ge_sig)
                echoes
            | _ -> ())
          msgs);
    (* Assemble own certificates from round-2 echoes. *)
    let own_cert_round2 = Array.make n None in
    Array.iteri
      (fun d st ->
        List.iter
          (fun (w, echoers) ->
            if List.length echoers >= quorum && Option.is_none own_cert_round2.(d) then begin
              let signed =
                match List.find_opt (fun (w', _) -> V.equal w w') st.proposals with
                | Some (_, sv) -> sv
                | None -> assert false
              in
              let cert = { W.ec_signed = signed; ec_echoes = echoers } in
              own_cert_round2.(d) <- Some cert;
              note_cert d cert
            end)
          st.echoes)
      states;
    let conflict_round2 = Array.map (fun st -> List.length st.proposals >= 2) states in
    (* Round 3: report certificates and conflicts. *)
    let my_reports =
      List.filter_map
        (fun d ->
          let cert = own_cert_round2.(d) in
          let conflict =
            match states.(d).proposals with
            | (_, a) :: (_, b) :: _ -> Some (a, b)
            | _ -> None
          in
          match (cert, conflict) with
          | None, None -> None
          | _ -> Some { W.gr_dealer = d; gr_cert = cert; gr_conflict = conflict })
        (List.init n (fun d -> d))
    in
    let inbox3 = R.broadcast ctx (W.Gcast_report (tag, my_reports)) in
    Inbox.iter inbox3 ~f:(fun msgs ->
        List.iter
          (function
            | W.Gcast_report (tg, reports) when tg = tag ->
              List.iter
                (fun { W.gr_dealer = d; gr_cert; gr_conflict } ->
                  if d >= 0 && d < n then begin
                    (match gr_cert with Some c -> note_cert d c | None -> ());
                    match gr_conflict with
                    | Some (a, b)
                      when a.W.sv_dealer = d && b.W.sv_dealer = d
                           && (not (V.equal a.W.sv_value b.W.sv_value))
                           && W.valid_signed_value pki a && W.valid_signed_value pki b ->
                      note_proposal d a;
                      note_proposal d b
                    | _ -> ()
                  end)
                reports
            | _ -> ())
          msgs);
    (* Deliver per dealer. *)
    Array.mapi
      (fun d st ->
        let conflict_final = List.length st.proposals >= 2 in
        match (own_cert_round2.(d), conflict_round2.(d) || conflict_final) with
        | Some cert, false -> Some (cert.W.ec_signed.W.sv_value, 2)
        | _ -> (
          match st.certs with
          | [ (w, _) ] -> Some (w, 1)
          | [] | _ :: _ :: _ -> None))
      states

  module Ps = Phase_span.Make (R)

  let run ctx ~pki ~key ~t ~tag v =
    Ps.run ctx "gc" @@ fun () ->
    let n = R.n ctx in
    let quorum = n - t in
    let deliveries = gradecast ctx ~pki ~key ~t ~tag v in
    (* Graded consensus decision. *)
    let level_count ~min_level w =
      Array.fold_left
        (fun acc -> function
          | Some (w', lvl) when lvl >= min_level && V.equal w w' -> acc + 1
          | _ -> acc)
        0 deliveries
    in
    let candidate =
      Array.fold_left
        (fun acc d ->
          match (acc, d) with
          | Some _, _ -> acc
          | None, Some (w, _) when level_count ~min_level:1 w >= quorum -> Some w
          | None, _ -> None)
        None deliveries
    in
    match candidate with
    | Some w -> if level_count ~min_level:2 w >= quorum then (w, 1) else (w, 0)
    | None -> (v, 0)
end
