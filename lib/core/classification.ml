module Advice = Bap_prediction.Advice
module Inbox = Bap_sim.Inbox

let majority_threshold n = (n + 2) / 2

let vote ~n received =
  let threshold = majority_threshold n in
  (* One tally pass per distinct vector (the counted inbox presents each
     with its sender multiplicity), not one per sender: with good advice
     the classify round costs O(n) per process instead of O(n^2). *)
  let counts = Array.make n 0 in
  Inbox.fold_weighted received ~init:() ~f:(fun () a mult ->
      if Advice.length a = n then
        for j = 0 to n - 1 do
          if Advice.get a j then counts.(j) <- counts.(j) + mult
        done);
  Advice.init n (fun j -> counts.(j) >= threshold)

let pi c =
  let n = Advice.length c in
  let honest = ref [] and faulty = ref [] in
  for i = n - 1 downto 0 do
    if Advice.get c i then honest := i :: !honest else faulty := i :: !faulty
  done;
  Array.of_list (!honest @ !faulty)

let position c i =
  let order = pi c in
  let rec find j = if order.(j) = i then j else find (j + 1) in
  find 0

let misclassified_by ~faulty c =
  let n = Advice.length c in
  let truth = Advice.ground_truth ~n ~faulty in
  Advice.error_positions ~truth c

let misclassified_union ~n ~faulty ~honest_classifications =
  let seen = Array.make n false in
  List.iter
    (fun (_, c) -> List.iter (fun j -> seen.(j) <- true) (misclassified_by ~faulty c))
    honest_classifications;
  let acc = ref [] in
  for j = n - 1 downto 0 do
    if seen.(j) then acc := j :: !acc
  done;
  !acc

let k_counts ~n ~faulty ~honest_classifications =
  let union = misclassified_union ~n ~faulty ~honest_classifications in
  let is_faulty = Array.make n false in
  Array.iter (fun j -> is_faulty.(j) <- true) faulty;
  let k_f = List.length (List.filter (fun j -> is_faulty.(j)) union) in
  let k_h = List.length union - k_f in
  (List.length union, k_f, k_h)

let common_window ~honest_classifications ~l ~r =
  match honest_classifications with
  | [] -> []
  | (_, c0) :: _ ->
    let in_window c =
      let order = pi c in
      let members = ref [] in
      for j = min r (Array.length order - 1) downto l do
        members := order.(j) :: !members
      done;
      !members
    in
    let first = in_window c0 in
    List.filter
      (fun id ->
        List.for_all (fun (_, c) -> List.mem id (in_window c)) honest_classifications)
      first
    |> List.sort Int.compare
