(** Algorithm 6: Byzantine Broadcast with an Implicit Committee.

    A Dolev-Strong signature-chain broadcast truncated to k+1 rounds,
    where only processes that can attach a committee certificate (t+1
    signatures on <COMMITTEE, p_j>) may start or extend chains. If at
    most k faulty processes hold committee certificates, a chain of
    length k+1 contains an honest committee member's signature, which
    gives the classic relay guarantee (Lemmas 21-23): committee
    agreement, validity with a sender certificate, and default (bot)
    without one. The module runs any number of instances (distinct
    senders) in parallel over the same k+1 rounds. *)

module Pki = Bap_crypto.Pki

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : k:int -> int
  (** Exactly [k + 1]. *)

  val run_parallel :
    R.ctx ->
    pki:Pki.t ->
    key:Pki.key ->
    t:int ->
    k:int ->
    tag:W.tag ->
    cc:W.committee_cert option ->
    V.t ->
    V.t option array
  (** Run n parallel instances, one per sender; this process's input is
      used in the instance where it is the sender. Slot [s] of the result
      is instance [s]'s output ([None] is the paper's bot). *)

  val run_single :
    R.ctx ->
    pki:Pki.t ->
    key:Pki.key ->
    t:int ->
    k:int ->
    tag:W.tag ->
    cc:W.committee_cert option ->
    sender:int ->
    V.t ->
    V.t option
  (** A single instance with a designated [sender]; the value argument is
      only used by the sender itself. Same round count. *)
end
