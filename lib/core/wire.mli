(** Wire format shared by every protocol in one stack instance.

    All sub-protocols of Algorithm 1 run inside a single fiber per
    process, so their messages share one variant type. Instance [tag]s
    disambiguate concurrent or successive sub-protocol instances;
    honest processes run in lock-step so tags are computed identically
    everywhere, and each protocol step only parses messages carrying
    its own tag. *)

module Pki = Bap_crypto.Pki
module Advice = Bap_prediction.Advice

module type S = sig
  type value

  type tag = int

  (** {1 Authenticated gradecast} (building block of the t < n/2 graded
      consensus) *)

  type signed_value = { sv_dealer : int; sv_value : value; sv_sig : Pki.signature }
  (** A dealer's signed proposal. *)

  type gcast_echo = { ge_signed : signed_value; ge_sig : Pki.signature }
  (** An echoer's signature over a dealer proposal it received directly. *)

  type echo_cert = { ec_signed : signed_value; ec_echoes : (int * Pki.signature) list }
  (** [n - t] echo signatures on one dealer proposal. *)

  type gcast_report = {
    gr_dealer : int;
    gr_cert : echo_cert option;
    gr_conflict : (signed_value * signed_value) option;
        (** Two dealer signatures on different values: equivocation proof. *)
  }

  (** {1 Committee machinery} (Algorithms 6 and 7) *)

  type committee_cert = { cc_member : int; cc_sigs : (int * Pki.signature) list }

  type chain =
    | Chain_root of { value : value; cert : committee_cert; link_sig : Pki.signature }
    | Chain_link of { prev : chain; signer : int; cert : committee_cert; link_sig : Pki.signature }

  (** {1 Plain Dolev-Strong chains} (baseline, no committee) *)

  type ds_chain =
    | Ds_root of { sender : int; value : value; link_sig : Pki.signature }
    | Ds_link of { prev : ds_chain; signer : int; link_sig : Pki.signature }

  type t =
    | Advice of Advice.t
    | Gc_init of tag * value  (** Graded consensus round 1 / gradecast value. *)
    | Gc_echo of tag * value  (** Graded consensus round 2. *)
    | Conc of tag * value * int list  (** Conciliation: value and the sender's [L] set. *)
    | King of tag * value  (** Early-stopping phase-king broadcast. *)
    | Gcast_init of tag * signed_value
    | Gcast_echo of tag * gcast_echo list
    | Gcast_report of tag * gcast_report list
    | Committee_vote of tag * Pki.signature
    | Bb_chain of tag * int * chain  (** [int] is the broadcast instance's sender. *)
    | Ds_chain of tag * int * ds_chain  (** Baseline Dolev-Strong broadcast instance. *)
    | Final_value of tag * value * committee_cert

  (** {1 Signature payloads} *)

  val committee_payload : int -> string
  val dealer_payload : dealer:int -> value -> string
  val echo_payload : signed_value -> string
  val chain_root_payload : value -> committee_cert -> string
  val chain_link_payload : chain -> committee_cert -> string

  (** {1 Validation} *)

  val valid_signed_value : Pki.t -> signed_value -> bool

  val valid_echo_cert : Pki.t -> threshold:int -> echo_cert -> bool
  (** Valid iff it carries [threshold] echo signatures by distinct
      processes over a valid dealer signature. *)

  val valid_committee_cert : Pki.t -> quorum:int -> committee_cert -> bool
  (** Valid iff it carries [quorum] signatures by distinct processes on
      [committee_payload cc_member]. *)

  val chain_value : chain -> value

  val chain_sender : chain -> int
  (** The process that started the chain (its root certificate member). *)

  val chain_signers : chain -> int list
  (** Signers from root to tip. *)

  val chain_length : chain -> int

  val valid_chain : Pki.t -> quorum:int -> sender:int -> length:int -> chain -> bool
  (** A valid message chain of exactly [length] links started by
      [sender]: every link is correctly signed by a distinct process that
      carries a valid committee certificate ([quorum] = t + 1). *)

  val ds_root_payload : sender:int -> value -> string
  val ds_link_payload : ds_chain -> string
  val ds_chain_value : ds_chain -> value
  val ds_chain_sender : ds_chain -> int
  val ds_chain_signers : ds_chain -> int list
  val ds_chain_length : ds_chain -> int

  val valid_ds_chain : Pki.t -> sender:int -> length:int -> ds_chain -> bool
  (** Classic Dolev-Strong validity: [length] distinct correct
      signatures, rooted at [sender]. *)

  val size_bits : t -> int
  (** Estimated wire size of a message in bits, for communication-
      complexity accounting: values cost their canonical encoding,
      signatures a constant 256 bits, identifiers and tags 32 bits. *)

  (** {1 Byte-level codec} for the signature-free messages, used by the
      chaos layer's corruption injector (flip bits in the encoded
      bytes, then decode what survives). Signature-carrying messages
      have no codec: signatures are unforgeable capabilities with
      deliberately no decoder (see {!Pki.encode}), which models the
      fact that a corrupted signed message can never verify and is
      therefore equivalent to a drop. *)

  val encode_plain : t -> string option
  (** [Some bytes] for [Advice], [Gc_init], [Gc_echo], [Conc] and
      [King]; [None] for the signature-carrying constructors. *)

  val decode_plain : string -> t option
  (** Total inverse: [decode_plain bytes] is [Some m] iff [bytes] is
      exactly [encode_plain m]'s output for some [m] (up to the value
      domain's own [decode] laxity). Never raises, whatever the input —
      corrupted bytes must fail cleanly, not leak exceptions into
      protocol code. *)

  val pp : t Fmt.t
end

module Make (V : Value.S) : S with type value = V.t
