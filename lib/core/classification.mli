(** Pure classification machinery (Section 6 of the paper).

    The voting rule of Algorithm 2, the ordering [pi] used to prioritise
    leaders, and the analysis quantities used by the lemmas of Section 6
    (number of misclassified processes, core sets). Everything here is a
    pure function so tests and experiments can exercise the lemmas
    without running the network protocol; {!Classify} wraps the voting
    rule in the actual one-round broadcast. *)

module Advice = Bap_prediction.Advice
module Inbox = Bap_sim.Inbox

val majority_threshold : int -> int
(** [ceil ((n+1)/2)], the vote count needed to classify a process as
    honest. *)

val vote : n:int -> Advice.t Inbox.votes -> Advice.t
(** The voting rule: the votes hold the advice vector accepted from each
    process (at most one per sender). Process [j] is classified honest
    iff at least [majority_threshold n] received vectors predict it
    honest; vectors of the wrong length are ignored. *)

val pi : Advice.t -> int array
(** The ordering [pi(c)]: identifiers classified honest in increasing
    order, followed by identifiers classified faulty in increasing
    order. *)

val position : Advice.t -> int -> int
(** [position c i] is the 0-based position of identifier [i] in [pi c]
    (the paper's positions are 1-based; we use 0-based throughout the
    code and shift only in documentation). *)

(** Analysis over a set of honest classification vectors. *)

val misclassified_by : faulty:int array -> Advice.t -> int list
(** Processes whose bit in the classification differs from the ground
    truth, ascending. *)

val misclassified_union :
  n:int -> faulty:int array -> honest_classifications:(int * Advice.t) list -> int list
(** The union [U M_i] over the given honest processes' classifications;
    its size is the paper's [k_A]. *)

val k_counts :
  n:int -> faulty:int array -> honest_classifications:(int * Advice.t) list -> int * int * int
(** [(k_a, k_f, k_h)]: misclassified processes in total, faulty ones
    misclassified as honest, honest ones misclassified as faulty. *)

val common_window :
  honest_classifications:(int * Advice.t) list -> l:int -> r:int -> int list
(** Identifiers appearing in positions [l..r] (0-based, inclusive) of
    [pi c_i] for {e every} given classification — the candidate core set
    of Lemma 5. *)
