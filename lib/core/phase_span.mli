(** Per-sub-protocol telemetry spans for lock-step protocol code. *)

module Make (R : Bap_sim.Runtime.S) : sig
  val run : R.ctx -> string -> (unit -> 'a) -> 'a
  (** [run ctx name f] wraps [f] in a [cat:"core"] span named [name],
      emitted only from process 0 (all processes execute the same
      deterministic schedule, so one copy suffices). Begin and end
      events carry the current round, giving the span the round extent
      [begin.round + 1 .. end.round]. When the allocation probe is on
      ([Bap_telemetry.Memprobe.enabled]), the End event additionally
      carries the phase's domain-local [minor_words] delta and the
      phase becomes a [Memprobe.phase_if] frame, folding its GC deltas
      into the metrics registry under [name]; with the probe off the
      span bytes are identical to an unprobed build. *)
end
