(* Wire format shared by every protocol in one stack instance.

   All sub-protocols of Algorithm 1 run inside a single fiber per
   process, so their messages share one variant type. Instance [tag]s
   disambiguate concurrent or successive sub-protocol instances; honest
   processes run in lock-step so tags are computed identically
   everywhere, and each protocol step only parses messages carrying its
   own tag. *)

module Pki = Bap_crypto.Pki
module Encode = Bap_crypto.Encode
module Advice = Bap_prediction.Advice

module type S = sig
  type value

  type tag = int

  (* -- Authenticated gradecast (building block of the t < n/2 graded
        consensus) -- *)

  type signed_value = { sv_dealer : int; sv_value : value; sv_sig : Pki.signature }
  (** A dealer's signed proposal. *)

  type gcast_echo = { ge_signed : signed_value; ge_sig : Pki.signature }
  (** An echoer's signature over a dealer proposal it received directly. *)

  type echo_cert = { ec_signed : signed_value; ec_echoes : (int * Pki.signature) list }
  (** [n - t] echo signatures on one dealer proposal. *)

  type gcast_report = {
    gr_dealer : int;
    gr_cert : echo_cert option;
    gr_conflict : (signed_value * signed_value) option;
        (** Two dealer signatures on different values: equivocation proof. *)
  }

  (* -- Committee machinery (Algorithms 6 and 7) -- *)

  type committee_cert = { cc_member : int; cc_sigs : (int * Pki.signature) list }

  type chain =
    | Chain_root of { value : value; cert : committee_cert; link_sig : Pki.signature }
    | Chain_link of { prev : chain; signer : int; cert : committee_cert; link_sig : Pki.signature }

  (* -- Plain Dolev-Strong chains (baseline, no committee) -- *)

  type ds_chain =
    | Ds_root of { sender : int; value : value; link_sig : Pki.signature }
    | Ds_link of { prev : ds_chain; signer : int; link_sig : Pki.signature }

  type t =
    | Advice of Advice.t
    | Gc_init of tag * value  (** Graded consensus round 1 / gradecast value. *)
    | Gc_echo of tag * value  (** Graded consensus round 2. *)
    | Conc of tag * value * int list  (** Conciliation: value and the sender's [L] set. *)
    | King of tag * value  (** Early-stopping phase-king broadcast. *)
    | Gcast_init of tag * signed_value
    | Gcast_echo of tag * gcast_echo list
    | Gcast_report of tag * gcast_report list
    | Committee_vote of tag * Pki.signature
    | Bb_chain of tag * int * chain  (** [int] is the broadcast instance's sender. *)
    | Ds_chain of tag * int * ds_chain  (** Baseline Dolev-Strong broadcast instance. *)
    | Final_value of tag * value * committee_cert

  (* Signature payloads. *)

  val committee_payload : int -> string
  val dealer_payload : dealer:int -> value -> string
  val echo_payload : signed_value -> string
  val chain_root_payload : value -> committee_cert -> string
  val chain_link_payload : chain -> committee_cert -> string

  (* Validation. *)

  val valid_signed_value : Pki.t -> signed_value -> bool

  val valid_echo_cert : Pki.t -> threshold:int -> echo_cert -> bool
  (** Valid iff it carries [threshold] echo signatures by distinct
      processes over a valid dealer signature. *)

  val valid_committee_cert : Pki.t -> quorum:int -> committee_cert -> bool
  (** Valid iff it carries [quorum] signatures by distinct processes on
      [committee_payload cc_member]. *)

  val chain_value : chain -> value
  val chain_sender : chain -> int
  (** The process that started the chain (its root certificate member). *)

  val chain_signers : chain -> int list
  (** Signers from root to tip. *)

  val chain_length : chain -> int

  val valid_chain : Pki.t -> quorum:int -> sender:int -> length:int -> chain -> bool
  (** A valid message chain of exactly [length] links started by
      [sender]: every link is correctly signed by a distinct process that
      carries a valid committee certificate ([quorum] = t + 1). *)

  val ds_root_payload : sender:int -> value -> string
  val ds_link_payload : ds_chain -> string
  val ds_chain_value : ds_chain -> value
  val ds_chain_sender : ds_chain -> int
  val ds_chain_signers : ds_chain -> int list
  val ds_chain_length : ds_chain -> int

  val valid_ds_chain : Pki.t -> sender:int -> length:int -> ds_chain -> bool
  (** Classic Dolev-Strong validity: [length] distinct correct
      signatures, rooted at [sender]. *)

  val size_bits : t -> int
  (** Estimated wire size of a message in bits, for communication-
      complexity accounting: values cost their canonical encoding,
      signatures a constant 256 bits, identifiers and tags 32 bits. *)

  (* Byte-level codec for the signature-free messages, used by the chaos
     layer's corruption injector (flip bits in the encoded bytes, then
     decode what survives). Signature-carrying messages have no codec:
     signatures are unforgeable capabilities with deliberately no decoder
     (see {!Pki.encode}), which models the fact that a corrupted signed
     message can never verify and is therefore equivalent to a drop. *)

  val encode_plain : t -> string option
  (** [Some bytes] for [Advice], [Gc_init], [Gc_echo], [Conc] and
      [King]; [None] for the signature-carrying constructors. *)

  val decode_plain : string -> t option
  (** Total inverse: [decode_plain bytes] is [Some m] iff [bytes] is
      exactly [encode_plain m]'s output for some [m] (up to the value
      domain's own [decode] laxity). Never raises, whatever the input —
      corrupted bytes must fail cleanly, not leak exceptions into
      protocol code. *)

  val pp : t Fmt.t
end

module Make (V : Value.S) : S with type value = V.t = struct
  type value = V.t
  type tag = int

  type signed_value = { sv_dealer : int; sv_value : value; sv_sig : Pki.signature }
  type gcast_echo = { ge_signed : signed_value; ge_sig : Pki.signature }
  type echo_cert = { ec_signed : signed_value; ec_echoes : (int * Pki.signature) list }

  type gcast_report = {
    gr_dealer : int;
    gr_cert : echo_cert option;
    gr_conflict : (signed_value * signed_value) option;
  }

  type committee_cert = { cc_member : int; cc_sigs : (int * Pki.signature) list }

  type chain =
    | Chain_root of { value : value; cert : committee_cert; link_sig : Pki.signature }
    | Chain_link of { prev : chain; signer : int; cert : committee_cert; link_sig : Pki.signature }

  type ds_chain =
    | Ds_root of { sender : int; value : value; link_sig : Pki.signature }
    | Ds_link of { prev : ds_chain; signer : int; link_sig : Pki.signature }

  type t =
    | Advice of Advice.t
    | Gc_init of tag * value
    | Gc_echo of tag * value
    | Conc of tag * value * int list
    | King of tag * value
    | Gcast_init of tag * signed_value
    | Gcast_echo of tag * gcast_echo list
    | Gcast_report of tag * gcast_report list
    | Committee_vote of tag * Pki.signature
    | Bb_chain of tag * int * chain
    | Ds_chain of tag * int * ds_chain
    | Final_value of tag * value * committee_cert

  let committee_payload member = Encode.tagged "committee" (Encode.int member)

  let dealer_payload ~dealer v =
    Encode.tagged "dealer" (Encode.pair (Encode.int dealer) (V.encode v))

  let echo_payload sv =
    Encode.tagged "echo" (Encode.pair (Encode.int sv.sv_dealer) (V.encode sv.sv_value))

  let encode_committee_cert cert =
    Encode.pair
      (Encode.int cert.cc_member)
      (Encode.list
         (List.map
            (fun (signer, s) -> Encode.pair (Encode.int signer) (Encode.str (Pki.encode s)))
            cert.cc_sigs))

  let chain_root_payload v cert =
    Encode.tagged "chain-root" (Encode.pair (V.encode v) (encode_committee_cert cert))

  let rec encode_chain = function
    | Chain_root { value; cert; link_sig } ->
      Encode.tagged "root"
        (Encode.triple (V.encode value) (encode_committee_cert cert)
           (Encode.str (Pki.encode link_sig)))
    | Chain_link { prev; signer; cert; link_sig } ->
      Encode.tagged "link"
        (Encode.list
           [
             encode_chain prev;
             Encode.int signer;
             encode_committee_cert cert;
             Encode.str (Pki.encode link_sig);
           ])

  let chain_link_payload prev cert =
    Encode.tagged "chain-link" (Encode.pair (encode_chain prev) (encode_committee_cert cert))

  let valid_signed_value pki sv =
    Pki.verify pki ~signer:sv.sv_dealer
      ~payload:(dealer_payload ~dealer:sv.sv_dealer sv.sv_value)
      sv.sv_sig

  let distinct_signers sigs =
    let signers = List.map fst sigs in
    List.length (List.sort_uniq Int.compare signers) = List.length signers

  let valid_echo_cert pki ~threshold cert =
    valid_signed_value pki cert.ec_signed
    && List.length cert.ec_echoes >= threshold
    && distinct_signers cert.ec_echoes
    && List.for_all
         (fun (echoer, s) ->
           Pki.verify pki ~signer:echoer ~payload:(echo_payload cert.ec_signed) s)
         cert.ec_echoes

  let valid_committee_cert pki ~quorum cert =
    List.length cert.cc_sigs >= quorum
    && distinct_signers cert.cc_sigs
    && List.for_all
         (fun (signer, s) ->
           Pki.verify pki ~signer ~payload:(committee_payload cert.cc_member) s)
         cert.cc_sigs

  let rec chain_value = function
    | Chain_root { value; _ } -> value
    | Chain_link { prev; _ } -> chain_value prev

  let rec chain_sender = function
    | Chain_root { cert; _ } -> cert.cc_member
    | Chain_link { prev; _ } -> chain_sender prev

  let rec chain_signers = function
    | Chain_root { cert; _ } -> [ cert.cc_member ]
    | Chain_link { prev; signer; _ } -> chain_signers prev @ [ signer ]

  let rec chain_length = function
    | Chain_root _ -> 1
    | Chain_link { prev; _ } -> 1 + chain_length prev

  let rec valid_links pki ~quorum = function
    | Chain_root { value; cert; link_sig } ->
      valid_committee_cert pki ~quorum cert
      && Pki.verify pki ~signer:cert.cc_member ~payload:(chain_root_payload value cert) link_sig
    | Chain_link { prev; signer; cert; link_sig } ->
      cert.cc_member = signer
      && valid_committee_cert pki ~quorum cert
      && Pki.verify pki ~signer ~payload:(chain_link_payload prev cert) link_sig
      && valid_links pki ~quorum prev

  let valid_chain pki ~quorum ~sender ~length chain =
    chain_length chain = length
    && chain_sender chain = sender
    && (let signers = chain_signers chain in
        List.length (List.sort_uniq Int.compare signers) = List.length signers)
    && valid_links pki ~quorum chain

  let ds_root_payload ~sender v =
    Encode.tagged "ds-root" (Encode.pair (Encode.int sender) (V.encode v))

  let rec encode_ds_chain = function
    | Ds_root { sender; value; link_sig } ->
      Encode.tagged "ds-root"
        (Encode.triple (Encode.int sender) (V.encode value) (Encode.str (Pki.encode link_sig)))
    | Ds_link { prev; signer; link_sig } ->
      Encode.tagged "ds-link"
        (Encode.triple (encode_ds_chain prev) (Encode.int signer)
           (Encode.str (Pki.encode link_sig)))

  let ds_link_payload prev = Encode.tagged "ds-link" (encode_ds_chain prev)

  let rec ds_chain_value = function
    | Ds_root { value; _ } -> value
    | Ds_link { prev; _ } -> ds_chain_value prev

  let rec ds_chain_sender = function
    | Ds_root { sender; _ } -> sender
    | Ds_link { prev; _ } -> ds_chain_sender prev

  let rec ds_chain_signers = function
    | Ds_root { sender; _ } -> [ sender ]
    | Ds_link { prev; signer; _ } -> ds_chain_signers prev @ [ signer ]

  let rec ds_chain_length = function
    | Ds_root _ -> 1
    | Ds_link { prev; _ } -> 1 + ds_chain_length prev

  let rec valid_ds_links pki = function
    | Ds_root { sender; value; link_sig } ->
      Pki.verify pki ~signer:sender ~payload:(ds_root_payload ~sender value) link_sig
    | Ds_link { prev; signer; link_sig } ->
      Pki.verify pki ~signer ~payload:(ds_link_payload prev) link_sig
      && valid_ds_links pki prev

  let valid_ds_chain pki ~sender ~length chain =
    ds_chain_length chain = length
    && ds_chain_sender chain = sender
    && (let signers = ds_chain_signers chain in
        List.length (List.sort_uniq Int.compare signers) = List.length signers)
    && valid_ds_links pki chain

  let sig_bits = 256
  let id_bits = 32
  let value_bits v = 8 * String.length (V.encode v)
  let sv_bits (sv : signed_value) = id_bits + value_bits sv.sv_value + sig_bits

  let committee_cert_bits cert =
    id_bits + (List.length cert.cc_sigs * (id_bits + sig_bits))

  let echo_cert_bits cert =
    sv_bits cert.ec_signed + (List.length cert.ec_echoes * (id_bits + sig_bits))

  let rec chain_bits = function
    | Chain_root { value; cert; link_sig = _ } ->
      value_bits value + committee_cert_bits cert + sig_bits
    | Chain_link { prev; signer = _; cert; link_sig = _ } ->
      chain_bits prev + id_bits + committee_cert_bits cert + sig_bits

  let rec ds_chain_bits = function
    | Ds_root { sender = _; value; link_sig = _ } -> id_bits + value_bits value + sig_bits
    | Ds_link { prev; signer = _; link_sig = _ } -> ds_chain_bits prev + id_bits + sig_bits

  let size_bits = function
    | Advice a -> id_bits + Advice.length a
    | Gc_init (_, v) | Gc_echo (_, v) | King (_, v) -> id_bits + value_bits v
    | Conc (_, v, l) -> id_bits + value_bits v + (id_bits * List.length l)
    | Gcast_init (_, sv) -> id_bits + sv_bits sv
    | Gcast_echo (_, echoes) ->
      id_bits + List.fold_left (fun acc e -> acc + sv_bits e.ge_signed + sig_bits) 0 echoes
    | Gcast_report (_, reports) ->
      id_bits
      + List.fold_left
          (fun acc r ->
            acc + id_bits
            + (match r.gr_cert with Some c -> echo_cert_bits c | None -> 0)
            + match r.gr_conflict with Some (a, b) -> sv_bits a + sv_bits b | None -> 0)
          0 reports
    | Committee_vote (_, _) -> id_bits + sig_bits
    | Bb_chain (_, _, chain) -> (2 * id_bits) + chain_bits chain
    | Ds_chain (_, _, chain) -> (2 * id_bits) + ds_chain_bits chain
    | Final_value (_, v, cert) -> id_bits + value_bits v + committee_cert_bits cert

  (* -- plain-message codec -- *)

  let encode_plain = function
    | Advice a -> Some (Encode.str "A" ^ Encode.str (Advice.to_bits a))
    | Gc_init (tag, v) ->
      Some (Encode.str "I" ^ Encode.int tag ^ Encode.str (V.encode v))
    | Gc_echo (tag, v) ->
      Some (Encode.str "E" ^ Encode.int tag ^ Encode.str (V.encode v))
    | King (tag, v) ->
      Some (Encode.str "K" ^ Encode.int tag ^ Encode.str (V.encode v))
    | Conc (tag, v, l) ->
      Some
        (Encode.str "C" ^ Encode.int tag ^ Encode.str (V.encode v)
        ^ String.concat "" (List.map Encode.int l))
    | Gcast_init _ | Gcast_echo _ | Gcast_report _ | Committee_vote _ | Bb_chain _
    | Ds_chain _ | Final_value _ ->
      None

  (* Netstring reader matching {!Encode}'s <len>:<bytes> fields. *)
  let read_field s pos =
    let len = String.length s in
    let rec digits i acc count =
      if i >= len || count > 9 then None
      else
        match s.[i] with
        | '0' .. '9' -> digits (i + 1) ((acc * 10) + (Char.code s.[i] - 48)) (count + 1)
        | ':' when count > 0 -> Some (i + 1, acc)
        | _ -> None
    in
    match digits pos 0 0 with
    | None -> None
    | Some (start, flen) ->
      if flen < 0 || start + flen > len then None
      else Some (String.sub s start flen, start + flen)

  let ( let* ) = Option.bind

  let read_int s pos =
    let* raw, pos = read_field s pos in
    let* i = int_of_string_opt raw in
    Some (i, pos)

  let read_value s pos =
    let* raw, pos = read_field s pos in
    let* v = V.decode raw in
    Some (v, pos)

  let rec read_ints s pos acc =
    if pos = String.length s then Some (List.rev acc)
    else
      let* i, pos = read_int s pos in
      read_ints s pos (i :: acc)

  let decode_plain s =
    let finish pos m = if pos = String.length s then Some m else None in
    let* kind, pos = read_field s 0 in
    match kind with
    | "A" ->
      let* raw, pos = read_field s pos in
      let* a = Advice.of_bits raw in
      finish pos (Advice a)
    | "I" ->
      let* tag, pos = read_int s pos in
      let* v, pos = read_value s pos in
      finish pos (Gc_init (tag, v))
    | "E" ->
      let* tag, pos = read_int s pos in
      let* v, pos = read_value s pos in
      finish pos (Gc_echo (tag, v))
    | "K" ->
      let* tag, pos = read_int s pos in
      let* v, pos = read_value s pos in
      finish pos (King (tag, v))
    | "C" ->
      let* tag, pos = read_int s pos in
      let* v, pos = read_value s pos in
      let* l = read_ints s pos [] in
      Some (Conc (tag, v, l))
    | _ -> None

  let pp ppf = function
    | Advice a -> Fmt.pf ppf "Advice(%a)" Advice.pp a
    | Gc_init (tag, v) -> Fmt.pf ppf "Gc_init(#%d, %a)" tag V.pp v
    | Gc_echo (tag, v) -> Fmt.pf ppf "Gc_echo(#%d, %a)" tag V.pp v
    | Conc (tag, v, l) ->
      Fmt.pf ppf "Conc(#%d, %a, {%a})" tag V.pp v Fmt.(list ~sep:comma int) l
    | King (tag, v) -> Fmt.pf ppf "King(#%d, %a)" tag V.pp v
    | Gcast_init (tag, sv) -> Fmt.pf ppf "Gcast_init(#%d, %d:%a)" tag sv.sv_dealer V.pp sv.sv_value
    | Gcast_echo (tag, svs) -> Fmt.pf ppf "Gcast_echo(#%d, %d dealers)" tag (List.length svs)
    | Gcast_report (tag, rs) -> Fmt.pf ppf "Gcast_report(#%d, %d reports)" tag (List.length rs)
    | Committee_vote (tag, _) -> Fmt.pf ppf "Committee_vote(#%d)" tag
    | Bb_chain (tag, s, c) ->
      Fmt.pf ppf "Bb_chain(#%d, sender %d, len %d, %a)" tag s (chain_length c) V.pp (chain_value c)
    | Ds_chain (tag, s, c) ->
      Fmt.pf ppf "Ds_chain(#%d, sender %d, len %d, %a)" tag s (ds_chain_length c) V.pp
        (ds_chain_value c)
    | Final_value (tag, v, _) -> Fmt.pf ppf "Final_value(#%d, %a)" tag V.pp v
end
