(* Algorithm 6: Byzantine Broadcast with an Implicit Committee.

   A Dolev-Strong signature-chain broadcast truncated to k+1 rounds,
   where only processes that can attach a committee certificate (t+1
   signatures on <COMMITTEE, p_j>) may start or extend chains. If at
   most k faulty processes hold committee certificates, a chain of
   length k+1 contains an honest committee member's signature, which
   gives the classic relay guarantee (Lemmas 21-23):

   - Committee Agreement: all honest committee members return the same
     value;
   - Validity with Sender Certificate: an honest certified sender's
     value is returned by everyone;
   - Default without Sender Certificate: everyone returns bot.

   The module runs any number of instances (distinct senders) in
   parallel over the same k+1 rounds: Algorithm 7 needs all n instances
   at once, and running them in lock-step is also how the paper counts
   its rounds. *)

module Pki = Bap_crypto.Pki

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : k:int -> int
  (** Exactly [k + 1]. *)

  val run_parallel :
    R.ctx ->
    pki:Pki.t ->
    key:Pki.key ->
    t:int ->
    k:int ->
    tag:W.tag ->
    cc:W.committee_cert option ->
    V.t ->
    V.t option array
  (** Run n parallel instances, one per sender; this process's input is
      used in the instance where it is the sender. Slot [s] of the result
      is instance [s]'s output ([None] is the paper's bot). *)

  val run_single :
    R.ctx ->
    pki:Pki.t ->
    key:Pki.key ->
    t:int ->
    k:int ->
    tag:W.tag ->
    cc:W.committee_cert option ->
    sender:int ->
    V.t ->
    V.t option
  (** A single instance with a designated [sender]; the value argument is
      only used by the sender itself. Same round count. *)
end = struct
  let rounds ~k = k + 1

  type instance_state = {
    sender : int;
    mutable accepted : V.t list;  (* X_i, at most two values *)
    mutable fresh : W.chain list;  (* R_i: valid chains from the last round *)
  }

  module Ps = Phase_span.Make (R)

  let run_instances ctx ~pki ~key ~t ~k ~tag ~cc ~senders x =
    Ps.run ctx "bb" @@ fun () ->
    let n = R.n ctx in
    let me = R.id ctx in
    let quorum = t + 1 in
    let states = List.map (fun s -> { sender = s; accepted = []; fresh = [] }) senders in
    let has_cert =
      match cc with
      | Some cert ->
        cert.W.cc_member = me && W.valid_committee_cert pki ~quorum cert
      | None -> false
    in
    let collect inbox ~length =
      (* Valid chains of the expected length per instance, from any
         transporter (validity comes from the signatures, not the
         channel). *)
      List.iter
        (fun st ->
          let chains = ref [] in
          Bap_sim.Inbox.iter inbox ~f:(fun msgs ->
              List.iter
                (function
                  | W.Bb_chain (tg, s, chain)
                    when tg = tag && s = st.sender
                         && W.valid_chain pki ~quorum ~sender:st.sender ~length chain ->
                    chains := chain :: !chains
                  | _ -> ())
                msgs);
          st.fresh <- List.rev !chains)
        states
    in
    (* Round 1: certified senders start their chains. *)
    let root_msgs =
      List.filter_map
        (fun st ->
          if st.sender = me && has_cert then begin
            st.accepted <- [ x ];
            let cert = Option.get cc in
            let link_sig = Pki.sign key (W.chain_root_payload x cert) in
            Some (W.Bb_chain (tag, me, W.Chain_root { value = x; cert; link_sig }))
          end
          else None)
        states
    in
    let inbox = R.broadcast_list ctx root_msgs in
    collect inbox ~length:1;
    (* Rounds 2 .. k+1: accept new values and relay extended chains. *)
    for j = 2 to k + 1 do
      let extensions = ref [] in
      List.iter
        (fun st ->
          List.iter
            (fun chain ->
              let v = W.chain_value chain in
              if
                (not (List.exists (V.equal v) st.accepted))
                && List.length st.accepted < 2
              then begin
                st.accepted <- st.accepted @ [ v ];
                if has_cert && not (List.mem me (W.chain_signers chain)) then begin
                  let cert = Option.get cc in
                  let link_sig = Pki.sign key (W.chain_link_payload chain cert) in
                  extensions :=
                    W.Bb_chain
                      (tag, st.sender, W.Chain_link { prev = chain; signer = me; cert; link_sig })
                    :: !extensions
                end
              end)
            st.fresh)
        states;
      let out = List.rev !extensions in
      let inbox = R.broadcast_list ctx out in
      collect inbox ~length:j
    done;
    (* Final acceptance pass over the chains of round k+1 (no relay). *)
    List.iter
      (fun st ->
        List.iter
          (fun chain ->
            let v = W.chain_value chain in
            if (not (List.exists (V.equal v) st.accepted)) && List.length st.accepted < 2
            then st.accepted <- st.accepted @ [ v ])
          st.fresh)
      states;
    let result = Array.make n None in
    List.iter
      (fun st ->
        result.(st.sender) <- (match st.accepted with [ v ] -> Some v | [] | _ :: _ :: _ -> None))
      states;
    result

  let run_parallel ctx ~pki ~key ~t ~k ~tag ~cc x =
    let n = R.n ctx in
    run_instances ctx ~pki ~key ~t ~k ~tag ~cc ~senders:(List.init n (fun s -> s)) x

  let run_single ctx ~pki ~key ~t ~k ~tag ~cc ~sender x =
    let result = run_instances ctx ~pki ~key ~t ~k ~tag ~cc ~senders:[ sender ] x in
    result.(sender)
end
