(* Algorithm 7: Authenticated Byzantine Agreement with Classification.

   Phase structure (k + 3 rounds total):
   1. Committee election: every process sends a signed <COMMITTEE, p_j>
      vote to the 2k+1 processes it ranks highest in pi(c_i); a process
      collecting t+1 votes assembles a committee certificate.
   2. n parallel Byzantine Broadcasts with implicit committee (k + 1
      rounds) through which committee members disseminate their values.
   3. Final round: committee members broadcast the plurality of the
      broadcast outputs together with their certificate; everyone
      decides the plurality of the certified announcements.

   Under k >= #misclassified, 2k+1 <= n - t - k and t < n/2, Lemma 24
   gives at most k faulty and at least k+1 honest certified members, so
   the broadcasts agree (Lemma 23) and the honest announcements outnumber
   the faulty ones (Lemmas 25-27). *)

module Advice = Bap_prediction.Advice
module Pki = Bap_crypto.Pki
module Inbox = Bap_sim.Inbox

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : k:int -> int
  (** Exactly [k + 3]. *)

  val feasible : n:int -> t:int -> k:int -> bool
  (** [2k+1 <= n - t - k] and [t < n/2]. *)

  val max_feasible_k : n:int -> t:int -> int

  val run :
    R.ctx ->
    pki:Pki.t ->
    key:Pki.key ->
    t:int ->
    k:int ->
    base_tag:W.tag ->
    V.t ->
    Advice.t ->
    V.t
  (** Consumes tags [base_tag .. base_tag + 2]. *)
end = struct
  module Bb = Bb_committee.Make (V) (W) (R)

  let rounds ~k = k + 3

  let feasible ~n ~t ~k = (2 * k) + 1 <= n - t - k && 2 * t < n

  let max_feasible_k ~n ~t =
    let rec grow k = if feasible ~n ~t ~k:(k + 1) then grow (k + 1) else k in
    if feasible ~n ~t ~k:0 then grow 0 else -1

  module Ps = Phase_span.Make (R)

  let run ctx ~pki ~key ~t ~k ~base_tag x c =
    Ps.run ctx "bc" @@ fun () ->
    let n = R.n ctx in
    if not (feasible ~n ~t ~k) then begin
      (* Common knowledge: all honest skip together (see Algorithm 5). *)
      R.skip ctx (rounds ~k);
      x
    end
    else begin
      let me = R.id ctx in
      let quorum = t + 1 in
      let vote_tag = base_tag and bb_tag = base_tag + 1 and final_tag = base_tag + 2 in
      (* Round 1: committee votes to the 2k+1 most trusted processes. *)
      let order = Classification.pi c in
      let l_set = List.init ((2 * k) + 1) (fun j -> order.(j)) in
      let votes =
        List.map
          (fun j -> (j, W.Committee_vote (vote_tag, Pki.sign key (W.committee_payload j))))
          l_set
      in
      let inbox = R.send_to ctx votes in
      let signatures =
        Inbox.firsti inbox ~f:(fun sender -> function
          | W.Committee_vote (tg, s)
            when tg = vote_tag
                 && Pki.verify pki ~signer:sender ~payload:(W.committee_payload me) s ->
            Some s
          | _ -> None)
      in
      let supporter_ids = Inbox.senders signatures in
      let cc =
        if List.length supporter_ids >= quorum then
          let chosen = List.filteri (fun idx _ -> idx < quorum) supporter_ids in
          Some
            {
              W.cc_member = me;
              cc_sigs = List.map (fun j -> (j, Option.get (Inbox.votes_get signatures j))) chosen;
            }
        else None
      in
      (* Rounds 2 .. k+2: the n parallel broadcasts. *)
      let bb = Bb.run_parallel ctx ~pki ~key ~t ~k ~tag:bb_tag ~cc x in
      (* Round k+3: certified members announce the plurality. *)
      let my_plurality =
        match Inbox.plurality (Inbox.votes bb) ~compare:V.compare with
        | Some (w, _) -> w
        | None -> x
      in
      let final_out =
        match cc with
        | Some cert -> [ W.Final_value (final_tag, my_plurality, cert) ]
        | None -> []
      in
      let inbox = R.broadcast_list ctx final_out in
      let announcements =
        Inbox.first inbox ~f:(function
          | W.Final_value (tg, w, cert)
            when tg = final_tag && W.valid_committee_cert pki ~quorum cert ->
            Some (cert.W.cc_member, w)
          | _ -> None)
      in
      (* Only count an announcement if the certificate names its sender. *)
      let certified =
        Inbox.votes_mapi announcements ~f:(fun sender entry ->
            match entry with
            | Some (member, w) when member = sender -> Some w
            | Some _ | None -> None)
      in
      match Inbox.plurality certified ~compare:V.compare with
      | Some (w, _) -> w
      | None -> x
    end
end
