(** Algorithm 7: Authenticated Byzantine Agreement with Classification.

    k + 3 rounds: committee election (one round of signed votes to the
    2k+1 most trusted processes), n parallel Byzantine Broadcasts with
    implicit committee (k + 1 rounds), and a final round in which
    committee members announce the plurality of the broadcast outputs.
    Under k >= #misclassified, 2k+1 <= n - t - k and t < n/2, honest
    certified members outnumber faulty ones and everyone decides the
    same plurality (Lemmas 24-27). *)

module Advice = Bap_prediction.Advice
module Pki = Bap_crypto.Pki

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : k:int -> int
  (** Exactly [k + 3]. *)

  val feasible : n:int -> t:int -> k:int -> bool
  (** [2k+1 <= n - t - k] and [t < n/2]. *)

  val max_feasible_k : n:int -> t:int -> int

  val run :
    R.ctx ->
    pki:Pki.t ->
    key:Pki.key ->
    t:int ->
    k:int ->
    base_tag:W.tag ->
    V.t ->
    Advice.t ->
    V.t
  (** Consumes tags [base_tag .. base_tag + 2]. *)
end
