(* Algorithm 5: Unauthenticated Byzantine Agreement with Classification.

   2k+1 phases of 5 rounds each (graded consensus, conciliation, graded
   consensus). In phase phi, process i listens to the phi-th block of
   3k+1 identifiers of its ordering pi(c_i): predicted-honest identifiers
   first, predicted-faulty last.

   Guarantees (Theorem 5): if k bounds the number of misclassified
   processes and (2k+1)(3k+1) <= n - t - k, agreement and strong
   unanimity hold; every honest process decides within 5(2k+1) rounds and
   sends at most 5n messages, for O(n k^2) messages in total. Whatever
   the classification quality, the protocol consumes exactly [rounds k]
   rounds (early deciders pad with silent rounds), so it composes with
   the fixed-duration phases of Algorithm 1. *)

module Advice = Bap_prediction.Advice

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : k:int -> int
  (** Exactly [5 * (2k + 1)]. *)

  val feasible : n:int -> t:int -> k:int -> bool
  (** The side condition [(2k+1)(3k+1) <= n - t - k] under which
      Theorem 5 applies. *)

  val max_feasible_k : n:int -> t:int -> int
  (** Largest [k >= 0] with [feasible ~n ~t ~k], or [-1] if none. *)

  val run :
    R.ctx -> t:int -> k:int -> base_tag:W.tag -> V.t -> Advice.t -> V.t
  (** [run ctx ~t ~k ~base_tag input classification] consumes tags
      [base_tag .. base_tag + 3*(2k+1) - 1]. *)
end = struct
  module Gc = Graded_core_set.Make (V) (W) (R)
  module Conc = Conciliate.Make (V) (W) (R)

  let phases k = (2 * k) + 1
  let rounds ~k = 5 * phases k

  let feasible ~n ~t ~k = ((2 * k) + 1) * ((3 * k) + 1) <= n - t - k

  let max_feasible_k ~n ~t =
    let rec grow k = if feasible ~n ~t ~k:(k + 1) then grow (k + 1) else k in
    if feasible ~n ~t ~k:0 then grow 0 else -1

  let block order ~k ~phi =
    (* 0-based positions (3k+1)(phi-1) .. (3k+1)phi - 1 of pi(c_i). *)
    let width = (3 * k) + 1 in
    let lo = width * (phi - 1) in
    List.init width (fun j -> order.(lo + j))

  module Ps = Phase_span.Make (R)

  let run ctx ~t ~k ~base_tag x c =
    Ps.run ctx "bc" @@ fun () ->
    if not (feasible ~n:(R.n ctx) ~t ~k) then begin
      (* The side condition is common knowledge (it only depends on n, t
         and k), so all honest processes skip together: they spend the
         protocol's round budget silently and return their input. The
         wrapper's graded consensus protects correctness in this case. *)
      R.skip ctx (rounds ~k);
      x
    end
    else begin
    let order = Classification.pi c in
    let v = ref x in
    let decision = ref None in
    let result = ref None in
    let rounds_spent = ref 0 in
    (try
       for phi = 1 to phases k do
         let l_set = block order ~k ~phi in
         let tag = base_tag + (3 * (phi - 1)) in
         let v1, g1 = Gc.run ctx ~k ~l_set ~tag !v in
         v := v1;
         let v' = Conc.run ctx ~l_set ~tag:(tag + 1) !v in
         if g1 = 0 then v := v';
         let v2, g2 = Gc.run ctx ~k ~l_set ~tag:(tag + 2) !v in
         v := v2;
         rounds_spent := !rounds_spent + 5;
         (match !decision with
         | Some d ->
           result := Some d;
           raise Exit
         | None -> ());
         if g2 = 1 then decision := Some !v
       done;
       result := (match !decision with Some d -> Some d | None -> Some !v)
     with Exit -> ());
    R.skip ctx (rounds ~k - !rounds_spent);
    Option.get !result
    end
end
