(** Plain unauthenticated graded consensus for t < n/3 (the paper's
    Theorem 7, restated from Civit et al.): Algorithm 3 with the
    listening set fixed to everyone, which turns the thresholds
    2k+1 / k+1 over |L| = 3k+1 listeners into n-t / t+1 over n. *)

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : int
  (** Always 2. *)

  val run : R.ctx -> t:int -> tag:W.tag -> V.t -> V.t * int
  (** Returns [(value, grade)] with grade 0 or 1. Requires t < n/3 for
      the strong-unanimity and coherence guarantees. *)
end
