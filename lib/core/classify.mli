(** Algorithm 2: one round of advice broadcasting followed by the
    majority vote of {!Classification.vote}. *)

module Make (W : Wire.S) (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : int
  (** Always 1. *)

  val run : R.ctx -> Bap_prediction.Advice.t -> Bap_prediction.Advice.t
  (** [run ctx advice] broadcasts the advice vector, collects everyone
      else's, and returns this process's classification [c_i]. A process
      [j] is classified honest iff at least [ceil((n+1)/2)] received
      vectors (own included) predict it honest; vectors of the wrong
      length and duplicate vectors from one sender are ignored. *)
end
