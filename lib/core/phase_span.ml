(* Telemetry helper for lock-step protocol code: one span per
   sub-protocol invocation, emitted by process 0 only.

   Every process runs the same deterministic schedule, so emitting from
   all n fibers would record n copies of each phase; process 0's fiber
   is the run's schedule. Begin/end both carry the process's current
   round r: a sub-protocol entered at round r first affects the wire in
   round r + 1, so its round extent is [begin.round + 1, end.round] —
   the convention bap_trace's summary uses for attribution.

   With the memprobe on, each phase is also an allocation frame: its
   domain-local minor-words delta rides the End event (appended after
   the logical attrs, so probe-off traces keep the exact pre-probe
   bytes) and its GC deltas fold into the metrics registry under the
   phase name via [Memprobe.phase_if]. One caveat, documented rather
   than fought: all n fibers of a run interleave on one domain, so the
   delta counts the whole run's allocation during the phase's extent —
   the allocation twin of the round-ownership convention above, exact
   at round granularity because the protocols are lock-step. *)

module Tel = Bap_telemetry.Telemetry
module Memprobe = Bap_telemetry.Memprobe

module Make (R : Bap_sim.Runtime.S) = struct
  let run ctx name f =
    let witness = R.id ctx = 0 in
    let measured = witness && Memprobe.enabled () in
    let mw0 = ref 0. in
    Memprobe.phase_if measured name @@ fun () ->
    Tel.span_if witness ~cat:"core" ~name
      ~attrs:(fun () ->
        if measured then mw0 := Memprobe.domain_minor_words ();
        [ ("round", Tel.Int (R.round ctx)) ])
      ~end_attrs:(fun () ->
        let base = [ ("round", Tel.Int (R.round ctx)) ] in
        if measured then
          base
          @ [
              ( "minor_words",
                Tel.Int (int_of_float (Memprobe.domain_minor_words () -. !mw0))
              );
            ]
        else base)
      f
end
