(* Telemetry helper for lock-step protocol code: one span per
   sub-protocol invocation, emitted by process 0 only.

   Every process runs the same deterministic schedule, so emitting from
   all n fibers would record n copies of each phase; process 0's fiber
   is the run's schedule. Begin/end both carry the process's current
   round r: a sub-protocol entered at round r first affects the wire in
   round r + 1, so its round extent is [begin.round + 1, end.round] —
   the convention bap_trace's summary uses for attribution. *)

module Tel = Bap_telemetry.Telemetry

module Make (R : Bap_sim.Runtime.S) = struct
  let run ctx name f =
    Tel.span_if (R.id ctx = 0) ~cat:"core" ~name
      ~attrs:(fun () -> [ ("round", Tel.Int (R.round ctx)) ])
      ~end_attrs:(fun () -> [ ("round", Tel.Int (R.round ctx)) ])
      f
end
