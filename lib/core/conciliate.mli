(** Algorithm 4: Conciliation with Core Set.

    One round: processes in their own L broadcast (value, L), build the
    "leader graph" on the senders heard from, compute per listener the
    minimum input among self-listening sources that reach it, and
    return the plurality of these minima. Agreement and strong
    unanimity (Lemmas 13-14) hold when every honest L_i contains only
    honest processes, |L_i| = 3k+1, and a core set G of >= 2k+1 honest
    processes lies in every honest L_i. *)

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : int
  (** Always 1. *)

  val run : R.ctx -> l_set:int list -> tag:W.tag -> V.t -> V.t
end
