(* Early-stopping phase-king Byzantine agreement (the paper's
   ba-early-stopping black box, Theorems 9/10).

   The protocol is parametric in a graded-consensus implementation, so
   one module serves both stacks: with the unauthenticated GC it is the
   t < n/3 protocol of Theorem 9, with the authenticated GC the t < n/2
   protocol of Theorem 10.

   Phase p (kings rotate over identifiers p-1 = 0, 1, 2, ...):
     (v, g1) <- gc(v);  king broadcasts v;  if g1 = 0 adopt the king's
     value;  (v, g2) <- gc(v);  if already decided, stop helping (exit);
     if g2 = 1, decide v.

   - Strong unanimity: with unanimous input v, every gc returns (v, 1)
     and king values are ignored.
   - Agreement: in the first phase with an honest king, either some
     honest process left gc-1 with grade 1 on v - then by coherence the
     king holds v and every grade-0 process adopts v - or all adopt the
     king's value; either way the phase ends unanimous and everyone
     decides in it. Hence agreement holds whenever phases >= f + 1.
   - The paper's [32] achieves O(n^2) total messages via recursion; this
     implementation spends O(n^2) per phase, which the experiments
     report separately (see DESIGN.md).

   Every run consumes exactly [rounds] rounds; early deciders pad. *)

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  type gc = R.ctx -> tag:W.tag -> V.t -> V.t * int
  (** A graded consensus of fixed duration. *)

  val rounds : gc_rounds:int -> phases:int -> int
  (** [phases * (2 * gc_rounds + 1)]. *)

  val tags_used : phases:int -> int
  (** 3 per phase. *)

  type 'v result = { value : 'v; decided_round : int }
  (** [decided_round] is the runtime round in which the decision was
      fixed (0 when the protocol fell back to its current value at the
      end without a grade-1 confirmation). *)

  val run :
    R.ctx -> gc:gc -> gc_rounds:int -> phases:int -> base_tag:W.tag -> V.t -> V.t result
end = struct
  type 'v result = { value : 'v; decided_round : int }
  type gc = R.ctx -> tag:W.tag -> V.t -> V.t * int

  let rounds ~gc_rounds ~phases = phases * ((2 * gc_rounds) + 1)
  let tags_used ~phases = 3 * phases

  module Ps = Phase_span.Make (R)

  let run ctx ~gc ~gc_rounds ~phases ~base_tag x =
    Ps.run ctx "es" @@ fun () ->
    let n = R.n ctx in
    let me = R.id ctx in
    let v = ref x in
    let decision = ref None in
    let decided_round = ref 0 in
    let result = ref None in
    let rounds_spent = ref 0 in
    (try
       for p = 1 to phases do
         let tag = base_tag + (3 * (p - 1)) in
         let king = (p - 1) mod n in
         let v1, g1 = gc ctx ~tag !v in
         v := v1;
         let inbox =
           if me = king then R.broadcast ctx (W.King (tag + 1, !v)) else R.silent_round ctx
         in
         let king_value =
           List.find_map
             (function W.King (tg, w) when tg = tag + 1 -> Some w | _ -> None)
             (Bap_sim.Inbox.get inbox king)
         in
         if g1 = 0 then v := Option.value king_value ~default:!v;
         let v2, g2 = gc ctx ~tag:(tag + 2) !v in
         v := v2;
         rounds_spent := !rounds_spent + (2 * gc_rounds) + 1;
         (match !decision with
         | Some d ->
           result := Some d;
           raise Exit
         | None -> ());
         if g2 = 1 then begin
           decision := Some !v;
           decided_round := R.round ctx
         end
       done;
       result := (match !decision with Some d -> Some d | None -> Some !v)
     with Exit -> ());
    R.skip ctx (rounds ~gc_rounds ~phases - !rounds_spent);
    { value = Option.get !result; decided_round = !decided_round }
end
