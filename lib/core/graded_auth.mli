(** Authenticated graded consensus for t < n/2 (the paper's Theorem 8,
    taken off the shelf from Momose-Ren): n parallel signed gradecasts,
    Katz-Koo style, combined so that each process sends one message per
    round — 3 rounds, O(n^2) messages. See the implementation for the
    full correctness argument. *)

module Pki = Bap_crypto.Pki

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : int
  (** Always 3. *)

  val gradecast :
    R.ctx -> pki:Pki.t -> key:Pki.key -> t:int -> tag:W.tag -> V.t -> (V.t * int) option array
  (** The underlying n-dealer signed gradecast: slot [d] holds process
      [d]'s delivered [(value, level)] with level 2 or 1, or [None] for
      bot. For t < n/2: an honest dealer is delivered at level 2 by
      everyone, and a level-2 delivery at any honest process forces a
      level >= 1 delivery of the same value at every honest process. *)

  val run : R.ctx -> pki:Pki.t -> key:Pki.key -> t:int -> tag:W.tag -> V.t -> V.t * int
  (** Requires t < n/2 for the guarantees. Consumes one tag. *)
end
