(** Decision-value domains.

    Every protocol in this library is polymorphic in the value being
    agreed upon, expressed as a functor over {!S}. [encode] must be
    injective: it is the byte string that gets signed in the
    authenticated protocols. *)

module type S = sig
  type t

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : t Fmt.t

  val encode : t -> string
  (** Injective canonical encoding (used as signature payload). *)

  val decode : string -> t option
  (** Total left inverse of [encode]: [decode (encode v) = Some v], and
      [None] on any string outside [encode]'s image that the domain can
      detect. Used by the wire codec and the chaos layer's corruption
      injector, so it must never raise. *)
end

module Int : S with type t = int
module Bool : S with type t = bool
module String : S with type t = string
