(* Algorithm 3: Unauthenticated Graded Consensus with Core Set.

   Each process listens only to the 3k+1 processes in its set L_i.
   Strong unanimity and coherence (Lemmas 7-9) hold whenever |L_i| = 3k+1
   for every honest i and some core set G of >= 2k+1 honest processes is
   contained in every honest L_i. Without the condition the protocol is
   still safe to run (it always terminates in 2 rounds) but returns
   arbitrary grades. *)

module Inbox = Bap_sim.Inbox

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : int
  (** Always 2. *)

  val run : R.ctx -> k:int -> l_set:int list -> tag:W.tag -> V.t -> V.t * int
  (** [run ctx ~k ~l_set ~tag v] plays Algorithm 3 with listening set
      [l_set] (which must have size 3k+1 for the guarantees to apply).
      Only processes with [id ctx] in their own [l_set] send messages;
      messages from senders outside [l_set] are ignored. *)
end = struct
  let rounds = 2

  module Ps = Phase_span.Make (R)

  let run ctx ~k ~l_set ~tag v =
    Ps.run ctx "gcs" @@ fun () ->
    let me = R.id ctx in
    let n = R.n ctx in
    let keep = Bap_sim.Bitset.of_list n l_set in
    let restrict votes = Inbox.restrict votes ~keep in
    let in_l = List.mem me l_set in
    (* Round 1: members of their own L broadcast their input. *)
    let inbox =
      if in_l then R.broadcast ctx (W.Gc_init (tag, v)) else R.silent_round ctx
    in
    let votes =
      restrict
        (Inbox.first inbox ~f:(function
          | W.Gc_init (tg, w) when tg = tag -> Some w
          | _ -> None))
    in
    let b =
      match Inbox.plurality votes ~compare:V.compare with
      | Some (w, c) when c >= (2 * k) + 1 -> Some w
      | Some _ | None -> None
    in
    (* Round 2: echo b if set. *)
    let second =
      match b with Some w when in_l -> [ W.Gc_echo (tag, w) ] | Some _ | None -> []
    in
    let inbox' = R.broadcast_list ctx second in
    let echoes =
      restrict
        (Inbox.first inbox' ~f:(function
          | W.Gc_echo (tg, w) when tg = tag -> Some w
          | _ -> None))
    in
    match b with
    | Some bv ->
      if Inbox.count echoes ~eq:V.equal bv >= (2 * k) + 1 then (bv, 1) else (bv, 0)
    | None -> (
      match Inbox.plurality echoes ~compare:V.compare with
      | Some (w, c) when c >= k + 1 -> (w, 0)
      | Some _ | None -> (v, 0))
end
