(** Algorithm 5: Unauthenticated Byzantine Agreement with
    Classification.

    2k+1 phases of 5 rounds each (graded consensus, conciliation,
    graded consensus); in phase phi, process i listens to the phi-th
    block of 3k+1 identifiers of its ordering pi(c_i). Under Theorem
    5's side condition, agreement and strong unanimity hold and every
    honest process decides within 5(2k+1) rounds. Whatever the
    classification quality, the protocol consumes exactly [rounds ~k]
    rounds (early deciders pad with silent rounds), so it composes with
    the fixed-duration phases of Algorithm 1. *)

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : k:int -> int
  (** Exactly [5 * (2k + 1)]. *)

  val feasible : n:int -> t:int -> k:int -> bool
  (** The side condition [(2k+1)(3k+1) <= n - t - k] under which
      Theorem 5 applies. *)

  val max_feasible_k : n:int -> t:int -> int
  (** Largest [k >= 0] with [feasible ~n ~t ~k], or [-1] if none. *)

  val run :
    R.ctx -> t:int -> k:int -> base_tag:W.tag -> V.t -> Bap_prediction.Advice.t -> V.t
  (** [run ctx ~t ~k ~base_tag input classification] consumes tags
      [base_tag .. base_tag + 3*(2k+1) - 1]. *)
end
