(** Algorithm 3: Unauthenticated Graded Consensus with Core Set.

    Each process listens only to the 3k+1 processes in its set L_i.
    Strong unanimity and coherence (Lemmas 7-9) hold whenever
    |L_i| = 3k+1 for every honest i and some core set G of >= 2k+1
    honest processes is contained in every honest L_i. Without the
    condition the protocol is still safe to run (it always terminates
    in 2 rounds) but returns arbitrary grades. *)

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : int
  (** Always 2. *)

  val run : R.ctx -> k:int -> l_set:int list -> tag:W.tag -> V.t -> V.t * int
  (** [run ctx ~k ~l_set ~tag v] plays Algorithm 3 with listening set
      [l_set] (which must have size 3k+1 for the guarantees to apply).
      Only processes with [id ctx] in their own [l_set] send messages;
      messages from senders outside [l_set] are ignored. *)
end
