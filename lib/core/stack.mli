(** One fully instantiated protocol stack per value domain.

    [Stack.Make (V)] fixes the wire format and the lock-step runtime
    for value type [V.t] and instantiates every protocol of the paper
    against them, together with one-call harnesses that run a complete
    execution (Algorithm 1 and its sub-protocols) under a chosen fault
    set, adversary, and advice. *)

module Advice = Bap_prediction.Advice
module Pki = Bap_crypto.Pki
module Adversary = Bap_sim.Adversary
module Trace = Bap_sim.Trace

module Make (V : Value.S) : sig
  module W : Wire.S with type value = V.t
  module R : Bap_sim.Runtime.S with type msg = W.t
  module Classify_p : module type of Classify.Make (W) (R)
  module Graded_unauth : module type of Graded_unauth.Make (V) (W) (R)
  module Graded_auth : module type of Graded_auth.Make (V) (W) (R)
  module Graded_core_set : module type of Graded_core_set.Make (V) (W) (R)
  module Conciliate : module type of Conciliate.Make (V) (W) (R)
  module Ba_class_unauth : module type of Ba_class_unauth.Make (V) (W) (R)
  module Bb_committee : module type of Bb_committee.Make (V) (W) (R)
  module Ba_class_auth : module type of Ba_class_auth.Make (V) (W) (R)
  module Early_stopping : module type of Early_stopping.Make (V) (W) (R)
  module Wrapper : module type of Wrapper.Make (V) (W) (R)

  (** {1 Wrapper configurations} *)

  val unauth_config : t:int -> Wrapper.config
  (** Theorem 11: unauthenticated components (t < n/3). *)

  val auth_config : pki:Pki.t -> key:Pki.key -> t:int -> Wrapper.config
  (** Theorem 12: authenticated components (t < n/2). *)

  val no_vote_classify : R.ctx -> Advice.t -> Advice.t
  (** Ablation: skip the classification vote and trust the raw advice
      (still consuming the round so the schedule is unchanged). *)

  val unauth_config_no_vote : t:int -> Wrapper.config

  (** {1 One-call execution harnesses} *)

  val run_unauth :
    ?adversary:W.t Adversary.t ->
    ?trace:W.t Trace.t ->
    ?max_rounds:int ->
    ?network:(round:int -> src:int -> dst:int -> W.t list -> W.t list) ->
    ?mode:[ `Auto | `Concrete ] ->
    ?config:Wrapper.config ->
    ?value_predictions:V.t array ->
    t:int ->
    faulty:int array ->
    inputs:V.t array ->
    advice:Advice.t array ->
    unit ->
    V.t Wrapper.result R.outcome
  (** Run the full unauthenticated stack; [n] is [Array.length inputs].
      Raises [Invalid_argument] if advice and inputs disagree on [n] or
      more than [t] processes are marked faulty. *)

  val run_auth :
    ?adversary:(Pki.t -> W.t Adversary.t) ->
    ?trace:W.t Trace.t ->
    ?max_rounds:int ->
    ?network:(round:int -> src:int -> dst:int -> W.t list -> W.t list) ->
    ?mode:[ `Auto | `Concrete ] ->
    ?value_predictions:V.t array ->
    t:int ->
    faulty:int array ->
    inputs:V.t array ->
    advice:Advice.t array ->
    unit ->
    V.t Wrapper.result R.outcome * Pki.t
  (** Same for the authenticated stack. A fresh PKI is created per run
      and returned; the adversary constructor receives it so corrupted
      processes can sign with their own keys. *)

  (** {1 Metric helpers} *)

  val agreement : V.t Wrapper.result R.outcome -> bool
  (** All honest decisions carry equal values (vacuously true when no
      honest process decided). *)

  val decision_round : V.t Wrapper.result R.outcome -> int
  (** The paper's time complexity: the round by which the last honest
      process has fixed its decision. *)

  val unanimous_validity : inputs:V.t array -> faulty:int array -> V.t Wrapper.result R.outcome -> bool
  (** With unanimous honest input [v], every honest decision is [v];
      true whenever honest inputs are split. *)

  val messages_by_component :
    ?value_prediction:bool -> Wrapper.config -> t:int -> 'r R.outcome -> (string * int) list
  (** Attribute per-round honest message counts to wrapper components
      using the deterministic schedule, sorted by component label. *)
end
