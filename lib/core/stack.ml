(* One fully instantiated protocol stack per value domain.

   [Stack.Make (V)] fixes the wire format and the lock-step runtime for
   value type [V.t] and instantiates every protocol of the paper against
   them, together with one-call harnesses that run a complete execution
   (Algorithm 1 and its sub-protocols) under a chosen fault set,
   adversary, and advice. *)

module Advice = Bap_prediction.Advice
module Pki = Bap_crypto.Pki
module Adversary = Bap_sim.Adversary
module Trace = Bap_sim.Trace

module Make (V : Value.S) = struct
  module W = Wire.Make (V)
  module R = Bap_sim.Runtime.Make (W)
  module Classify_p = Classify.Make (W) (R)
  module Graded_unauth = Graded_unauth.Make (V) (W) (R)
  module Graded_auth = Graded_auth.Make (V) (W) (R)
  module Graded_core_set = Graded_core_set.Make (V) (W) (R)
  module Conciliate = Conciliate.Make (V) (W) (R)
  module Ba_class_unauth = Ba_class_unauth.Make (V) (W) (R)
  module Bb_committee = Bb_committee.Make (V) (W) (R)
  module Ba_class_auth = Ba_class_auth.Make (V) (W) (R)
  module Early_stopping = Early_stopping.Make (V) (W) (R)
  module Wrapper = Wrapper.Make (V) (W) (R)

  (* -- Wrapper configurations -- *)

  let unauth_config ~t : Wrapper.config =
    {
      classify = Classify_p.run;
      gc = (fun ctx ~tag v -> Graded_unauth.run ctx ~t ~tag v);
      gc_rounds = Graded_unauth.rounds;
      bc = (fun ctx ~k ~base_tag v c -> Ba_class_unauth.run ctx ~t ~k ~base_tag v c);
      bc_rounds = (fun ~k -> Ba_class_unauth.rounds ~k);
      bc_tags = (fun ~k -> 3 * ((2 * k) + 1));
      ablate_es = false;
      ablate_bc = false;
    }

  let auth_config ~pki ~key ~t : Wrapper.config =
    {
      classify = Classify_p.run;
      gc = (fun ctx ~tag v -> Graded_auth.run ctx ~pki ~key ~t ~tag v);
      gc_rounds = Graded_auth.rounds;
      bc =
        (fun ctx ~k ~base_tag v c -> Ba_class_auth.run ctx ~pki ~key ~t ~k ~base_tag v c);
      bc_rounds = (fun ~k -> Ba_class_auth.rounds ~k);
      bc_tags = (fun ~k:_ -> 3);
      ablate_es = false;
      ablate_bc = false;
    }

  (* Ablation: skip the classification vote and trust the raw advice
     (still consuming the round so the schedule is unchanged). *)
  let no_vote_classify ctx advice =
    ignore (R.silent_round ctx);
    advice

  let unauth_config_no_vote ~t =
    { (unauth_config ~t) with Wrapper.classify = no_vote_classify }

  (* -- One-call execution harnesses -- *)

  let check_args ~t ~faulty ~inputs ~advice =
    let n = Array.length inputs in
    if Array.length advice <> n then invalid_arg "Stack: advice length <> inputs length";
    if Array.length faulty > t then invalid_arg "Stack: more faulty processes than t";
    n

  let run_unauth ?(adversary = Adversary.passive) ?trace ?max_rounds ?network ?mode
      ?config ?value_predictions ~t ~faulty ~inputs ~advice () :
      V.t Wrapper.result R.outcome =
    let n = check_args ~t ~faulty ~inputs ~advice in
    let config = Option.value config ~default:(unauth_config ~t) in
    R.run ?max_rounds ?trace ?network ?mode ~msg_size:W.size_bits
      ~group_key:W.encode_plain ~n ~faulty ~adversary (fun ctx ->
        let i = R.id ctx in
        let value_prediction =
          Option.map (fun (preds : V.t array) -> preds.(i)) value_predictions
        in
        Wrapper.run ?value_prediction config ctx ~t inputs.(i) advice.(i))

  let run_auth ?adversary ?trace ?max_rounds ?network ?mode ?value_predictions ~t
      ~faulty ~inputs ~advice () : V.t Wrapper.result R.outcome * Pki.t =
    let n = check_args ~t ~faulty ~inputs ~advice in
    let pki = Pki.create ~n in
    let adversary =
      match adversary with Some make -> make pki | None -> Adversary.passive
    in
    let outcome =
      R.run ?max_rounds ?trace ?network ?mode ~msg_size:W.size_bits
        ~group_key:W.encode_plain ~n ~faulty ~adversary (fun ctx ->
          let i = R.id ctx in
          let key = Pki.key pki i in
          let value_prediction =
            Option.map (fun (preds : V.t array) -> preds.(i)) value_predictions
          in
          Wrapper.run ?value_prediction (auth_config ~pki ~key ~t) ctx ~t inputs.(i)
            advice.(i))
    in
    (outcome, pki)

  (* -- Metric helpers -- *)

  let agreement outcome =
    match R.honest_decisions outcome with
    | [] -> true
    | (_, r) :: rest ->
      List.for_all (fun (_, r') -> V.equal r.Wrapper.value r'.Wrapper.value) rest

  let decision_round outcome =
    (* The paper's time complexity: the round by which the last honest
       process has fixed its decision. *)
    List.fold_left
      (fun acc (_, r) -> max acc r.Wrapper.decided_round)
      0
      (R.honest_decisions outcome)

  let unanimous_validity ~inputs ~faulty outcome =
    let is_faulty = Array.make (Array.length inputs) false in
    Array.iter (fun j -> is_faulty.(j) <- true) faulty;
    let honest_inputs =
      Array.to_list inputs
      |> List.filteri (fun i _ -> not is_faulty.(i))
      |> List.sort_uniq V.compare
    in
    match honest_inputs with
    | [ v ] ->
      List.for_all
        (fun (_, r) -> V.equal v r.Wrapper.value)
        (R.honest_decisions outcome)
    | _ -> true

  (* Attribute per-round honest message counts to wrapper components
     using the deterministic schedule. *)
  let messages_by_component ?value_prediction cfg ~t (outcome : _ R.outcome) =
    let sched = Wrapper.schedule ?value_prediction cfg ~t in
    let totals = Hashtbl.create 8 in
    Array.iteri
      (fun idx count ->
        let round = idx + 1 in
        let label =
          match
            List.find_opt (fun (_, _, first, last) -> round >= first && round <= last) sched
          with
          | Some (label, _, _, _) -> label
          | None -> "other"
        in
        Hashtbl.replace totals label
          (count + Option.value (Hashtbl.find_opt totals label) ~default:0))
      outcome.R.honest_per_round;
    Hashtbl.fold (fun label count acc -> (label, count) :: acc) totals []
    |> List.sort compare
end
