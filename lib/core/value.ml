module type S = sig
  type t

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : t Fmt.t
  val encode : t -> string
  val decode : string -> t option
end

module Int = struct
  type t = int

  let equal = Int.equal
  let compare = Int.compare
  let pp = Fmt.int
  let encode = string_of_int
  let decode = int_of_string_opt
end

module Bool = struct
  type t = bool

  let equal = Bool.equal
  let compare = Bool.compare
  let pp = Fmt.bool
  let encode b = if b then "1" else "0"
  let decode = function "1" -> Some true | "0" -> Some false | _ -> None
end

module String = struct
  type t = string

  let equal = String.equal
  let compare = String.compare
  let pp = Fmt.string
  let encode s = s
  let decode s = Some s
end
