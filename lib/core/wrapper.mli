(** Algorithm 1: Byzantine Agreement with Predictions — the high-level
    guess-and-double wrapper.

    After one classification round, the wrapper runs ceil(log2 t) + 1
    phases. Phase phi assumes k = 2^(phi-1) classification errors: it
    interleaves three graded consensus calls (protecting validity and
    detecting agreement) with a truncated early-stopping BA (wins when
    f <= k) and a conditional BA-with-classification (wins when at most
    k processes are misclassified). Every sub-protocol consumes a
    fixed, deterministic number of rounds, so honest processes stay in
    lock-step without any explicit timer.

    The wrapper is parametric in the three sub-protocols; {!Stack}
    instantiates it once with the unauthenticated components (Theorem
    11) and once with the authenticated ones (Theorem 12). *)

module Advice = Bap_prediction.Advice

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  type config = {
    classify : R.ctx -> Advice.t -> Advice.t;
        (** The classification step (normally Algorithm 2); must consume
            exactly one round. Replaceable for ablation studies (e.g.
            trusting the raw advice without the vote). *)
    gc : R.ctx -> tag:W.tag -> V.t -> V.t * int;
    gc_rounds : int;
    bc : R.ctx -> k:int -> base_tag:W.tag -> V.t -> Advice.t -> V.t;
        (** The conditional BA with classification; must consume exactly
            [bc_rounds k] rounds and [bc_tags k] tags. *)
    bc_rounds : k:int -> int;
    bc_tags : k:int -> int;
    ablate_es : bool;
        (** Ablation switch: replace the early-stopping sub-protocol with
            silence of the same duration. Correctness is then conditional
            on the classification BA eventually succeeding — used by
            experiment E13 to show the interleaving is necessary. *)
    ablate_bc : bool;  (** Same for the conditional BA with classification. *)
  }

  val phases_total : t:int -> int
  (** [ceil(log2 t) + 1] (and 1 for t <= 1). *)

  val k_of_phase : int -> int
  (** [2^(phi - 1)] for the 1-based phase number [phi]. *)

  val es_phases : t:int -> k:int -> int
  (** Phase-king phases budgeted for the early-stopping BA in a wrapper
      phase assuming k errors: [min (k + 1) (t + 1)]. *)

  val schedule : ?value_prediction:bool -> config -> t:int -> (string * int * int * int) list
  (** Deterministic round layout: [(component, phase, first, last)] with
      1-based inclusive round numbers. Used by the experiment harness to
      attribute message counts to components. [value_prediction] adds
      the optional fast-path segment (see {!run}). *)

  val rounds : ?value_prediction:bool -> config -> t:int -> int
  (** Total lock-step rounds a run consumes: the last round of
      {!schedule}. *)

  type 'v result = {
    value : 'v;
    decided_round : int;
        (** Round in which the decision became fixed (the paper's time
            complexity counts up to this point; the process keeps helping
            for one more phase before its function returns). *)
  }

  val run :
    ?value_prediction:V.t -> config -> R.ctx -> t:int -> V.t -> Advice.t -> V.t result
  (** [run cfg ctx ~t input advice] plays Algorithm 1 at process
      [R.id ctx]. [value_prediction] enables the fast-path extension
      beyond the paper: one graded consensus on the inputs, adoption of
      the predicted value on grade 0, and an agreement check via a
      second graded consensus — O(1) decision when predictions are
      accurate and shared, two graded-consensus calls of overhead when
      they are garbage. *)
end
