(* Algorithm 2: one round of advice broadcasting followed by the
   majority vote of {!Classification.vote}. *)

module Advice = Bap_prediction.Advice
module Inbox = Bap_sim.Inbox

module Make
    (W : Wire.S)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : int
  (** Always 1. *)

  val run : R.ctx -> Advice.t -> Advice.t
  (** [run ctx advice] broadcasts the advice vector, collects everyone
      else's, and returns this process's classification [c_i]. A process
      [j] is classified honest iff at least [ceil((n+1)/2)] received
      vectors (own included) predict it honest; vectors of the wrong
      length and duplicate vectors from one sender are ignored. *)
end = struct
  module Ps = Phase_span.Make (R)

  let rounds = 1

  let run ctx advice =
    Ps.run ctx "classify" (fun () ->
        let inbox = R.broadcast ctx (W.Advice advice) in
        let received =
          Inbox.first inbox ~f:(function W.Advice a -> Some a | _ -> None)
        in
        Classification.vote ~n:(R.n ctx) received)
end
