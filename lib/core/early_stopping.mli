(** Early-stopping phase-king Byzantine agreement (the paper's
    ba-early-stopping black box, Theorems 9/10).

    The protocol is parametric in a graded-consensus implementation, so
    one module serves both stacks: with the unauthenticated GC it is
    the t < n/3 protocol of Theorem 9, with the authenticated GC the
    t < n/2 protocol of Theorem 10. Kings rotate over identifiers
    p-1 = 0, 1, 2, ...; agreement holds whenever [phases >= f + 1].
    Every run consumes exactly [rounds] rounds; early deciders pad. *)

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  type gc = R.ctx -> tag:W.tag -> V.t -> V.t * int
  (** A graded consensus of fixed duration. *)

  val rounds : gc_rounds:int -> phases:int -> int
  (** [phases * (2 * gc_rounds + 1)]. *)

  val tags_used : phases:int -> int
  (** 3 per phase. *)

  type 'v result = { value : 'v; decided_round : int }
  (** [decided_round] is the runtime round in which the decision was
      fixed (0 when the protocol fell back to its current value at the
      end without a grade-1 confirmation). *)

  val run :
    R.ctx -> gc:gc -> gc_rounds:int -> phases:int -> base_tag:W.tag -> V.t -> V.t result
end
