(* A network-tap security monitor: the component the paper assumes as
   its source of predictions (Darktrace/Vectra/Zeek in the
   introduction), built for real on top of the simulator's traces.

   The observer watches all traffic of an execution and flags processes
   on behavioural evidence only (it never looks at the trace's
   ground-truth [byzantine] bit):

   - {b equivocation}: sending two different payloads for the same
     broadcast-shaped message (same round, same constructor, same tag /
     instance) to different recipients;
   - {b mandatory-broadcast silence}: in an Algorithm 1 execution every
     process must broadcast its advice in round 1 and its graded-
     consensus vote in round 2 (no honest process can have terminated
     yet); a process that says nothing in those rounds is flagged;
   - {b malformed advice}: an advice vector of the wrong length;
   - {b degenerate leader sets}: a conciliation message declaring a
     leader set of size <= 1, which no honest process ever sends
     (honest L sets have 3k+1 >= 4 members).

   Detection is sound for these classes (honest processes never trigger
   them) but deliberately incomplete - a faulty process that follows the
   protocol to the letter is undetectable, and also harmless. This is
   exactly the prediction model of the paper: advice that may miss
   attackers and is refreshed between executions. The detection rules
   are an arms race - an attacker aware of a rule can often adapt around
   it (the paper's footnote about novel attacks evading monitoring), and
   the agreement protocol is exactly what keeps such an attacker from
   ever threatening safety. *)

module Advice = Bap_prediction.Advice
module Trace = Bap_sim.Trace

module Make (V : Bap_core.Value.S) (W : Bap_core.Wire.S with type value = V.t) = struct
  type verdict = {
    suspects : int list;  (** Flagged processes, ascending. *)
    evidence : (int * string) list;  (** Per-suspect human-readable reason. *)
  }

  (* The broadcast-shaped payload of a message, if the protocol requires
     this message to be identical towards every recipient. Returns a
     fingerprint that must match across recipients, keyed by an instance
     discriminator. *)
  let broadcast_fingerprint (msg : W.t) =
    match msg with
    | W.Advice a -> Some (("advice", 0), Fmt.str "%a" Advice.pp a)
    | W.Gc_init (tag, v) -> Some (("gc-init", tag), V.encode v)
    | W.Gc_echo (tag, v) -> Some (("gc-echo", tag), V.encode v)
    | W.King (tag, v) -> Some (("king", tag), V.encode v)
    | W.Conc (tag, v, l) ->
      Some
        ( ("conc", tag),
          String.concat ";" (V.encode v :: List.map string_of_int l) )
    | W.Gcast_init (tag, sv) -> Some (("gcast-init", tag), V.encode sv.W.sv_value)
    | W.Final_value (tag, v, _) -> Some (("final", tag), V.encode v)
    (* Unicast or legitimately recipient-dependent messages: no
       fingerprint. Chains are re-broadcast by relays and a process may
       broadcast two chains per instance legally, so they are analysed
       separately below. *)
    | W.Gcast_echo _ | W.Gcast_report _ | W.Committee_vote _ | W.Bb_chain _
    | W.Ds_chain _ ->
      None

  (* Chain-root equivocation: two roots for the same broadcast instance
     with different values, signed by the same sender. *)
  let root_fingerprint (msg : W.t) =
    match msg with
    | W.Bb_chain (tag, instance, W.Chain_root { value; _ }) ->
      Some ((tag, instance), V.encode value)
    | W.Ds_chain (tag, instance, W.Ds_root { value; _ }) ->
      Some ((tag + 1_000_000, instance), V.encode value)
    | _ -> None

  let observe ~n trace =
    let suspects = Hashtbl.create 8 in
    let flag who reason =
      if not (Hashtbl.mem suspects who) then Hashtbl.replace suspects who reason
    in
    (* Group deliveries by round and source. *)
    let round = ref 0 in
    (* (src, shape-key) -> fingerprint seen this round *)
    let seen : (int * (string * int), string) Hashtbl.t = Hashtbl.create 64 in
    let roots : (int * (int * int), string) Hashtbl.t = Hashtbl.create 16 in
    let spoke_round1 = Array.make n false in
    let spoke_round2 = Array.make n false in
    let round2_speakers = ref 0 in
    List.iter
      (fun event ->
        match event with
        | Trace.Round_begin r ->
          round := r;
          Hashtbl.reset seen;
          Hashtbl.reset roots
        | Trace.Round_end _ -> ()
        | Trace.Decide _ -> ()
        | Trace.Deliver { src; dst = _; msg; byzantine = _ } ->
          if !round = 1 && src >= 0 && src < n then spoke_round1.(src) <- true;
          if !round = 2 && src >= 0 && src < n && not spoke_round2.(src) then begin
            spoke_round2.(src) <- true;
            incr round2_speakers
          end;
          (match msg with
          | W.Advice a when Advice.length a <> n ->
            flag src (Printf.sprintf "malformed advice in round %d" !round)
          | W.Conc (_, _, l) when List.length l <= 1 ->
            flag src (Printf.sprintf "degenerate leader set in round %d" !round)
          | _ -> ());
          (match broadcast_fingerprint msg with
          | Some (key, fp) -> (
            match Hashtbl.find_opt seen (src, key) with
            | Some fp' when fp' <> fp ->
              flag src (Printf.sprintf "equivocation in round %d" !round)
            | Some _ -> ()
            | None -> Hashtbl.replace seen (src, key) fp)
          | None -> ());
          match root_fingerprint msg with
          | Some (key, fp) -> (
            match Hashtbl.find_opt roots (src, key) with
            | Some fp' when fp' <> fp ->
              flag src (Printf.sprintf "conflicting chain roots in round %d" !round)
            | Some _ -> ()
            | None -> Hashtbl.replace roots (src, key) fp)
          | None -> ())
      (Trace.events trace);
    for src = 0 to n - 1 do
      if not spoke_round1.(src) then flag src "silent in the advice round"
    done;
    (* Only meaningful when round 2 was indeed a mandatory broadcast
       (a majority spoke). *)
    if !round2_speakers > n / 2 then
      for src = 0 to n - 1 do
        if not spoke_round2.(src) then flag src "silent in a mandatory broadcast round"
      done;
    let evidence =
      Hashtbl.fold (fun who reason acc -> (who, reason) :: acc) suspects []
      |> List.sort compare
    in
    { suspects = List.map fst evidence; evidence }

  (* Advice for the next execution: previously flagged processes are
     predicted faulty, everyone else honest. All processes receive the
     same vector - the monitor is a shared network tap. *)
  let advice_of_verdict ~n verdict =
    let a = Advice.init n (fun j -> not (List.mem j verdict.suspects)) in
    Array.make n a
end
