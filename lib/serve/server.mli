(** The always-on agreement service loop.

    One process, one server: frames arrive on stdin (or a Unix-domain
    socket, one client at a time), pass through typed admission, fan
    out over the domain pool under supervision, and leave as response
    frames in arrival order. The failure envelope, end to end:

    - {b overload}: admission sheds past the bounded queue with typed
      [Overload] rejections — memory use is constant under any offered
      load;
    - {b hostile frames}: a malformed or invalid payload costs one
      typed rejection; an oversized length prefix poisons only that
      connection (the stream cannot be resynchronised), which is
      finished and closed, never the process;
    - {b torn streams}: a client vanishing mid-frame is counted and
      absorbed like the journal's torn tail;
    - {b poisoned instances}: crashes and watchdog timeouts retry
      deterministically, then degrade to a [Degraded] response;
    - {b drain}: SIGTERM/SIGINT stop admission, finish the accepted
      backlog, flush telemetry, and exit 143/130 — never mid-write;
    - {b inspection}: a bounded flight recorder keeps the last
      [flight_capacity] service events in memory; SIGUSR1 dumps it
      (with GC and {!Health} snapshots) to stderr and the flight file,
      a quarantine dumps it automatically, and an [{"admin":"stats"}]
      frame is answered with the same data as one typed JSON frame —
      no restart, no effect on the instance ledger;
    - {b SIGKILL / power loss}: with [journal_path] set, every
      admitted instance is journaled at accept and its answer is
      journaled (and flushed) {e before} the response frame is
      written. A [resume] restart replays the journal's valid prefix,
      re-dispatches every accepted-unanswered instance, and answers
      retransmits of already-answered keys by replaying the journaled
      bytes — each accepted instance is answered {e exactly once}
      across incarnations.

    The loop runs on the calling domain; instance execution is the
    only parallel part. *)

type config = {
  jobs : int;  (** pool domains for instance execution *)
  queue_capacity : int;  (** admission bound; excess is shed *)
  batch : int;  (** max instances per pool dispatch *)
  retries : int;  (** supervised retry budget per instance *)
  timeout_s : float option;  (** per-attempt watchdog deadline *)
  max_frame : int;  (** frame payload cap in bytes *)
  seed : int;  (** supervisor backoff seed *)
  inject :
    (key:string -> attempt:int -> Bap_exec.Supervisor.injected option) option;
      (** chaos hook into instance attempts *)
  journal_path : string option;
      (** instance journal location; [None] = no durability *)
  resume : bool;
      (** replay the journal's valid prefix and re-dispatch its
          accepted-unanswered instances before the first connection *)
  kill9 : (key:string -> bool) option;
      (** chaos crash probe, polled just before each answer is
          journaled; [true] raises {!Kill9} — equivalent to a SIGKILL
          at the worst point, since every journal record is already
          flushed *)
  flight_capacity : int;
      (** flight-recorder ring size: the last N service events are
          retained in memory for dumps and the Stats admin frame *)
  flight_dump : string option;
      (** where flight dumps land beside stderr; defaults to
          ["<journal_path>.flight"] when durable, else stderr only *)
}

val default_config : config
(** jobs 1, queue 1024, batch 64, retries 2, timeout 10s, 1 MiB
    frames, seed 0, no injection, no journal, no kill9, flight ring
    of 256. *)

type stats = {
  connections : int;
  accepted : int;
      (** admitted past the queue gate; journal-derived (distinct keys,
          union across incarnations) when durable *)
  responded : int;
      (** accepted instances answered (ok or degraded); journal-derived
          when durable *)
  completed : int;
  degraded : int;
  rejected_overload : int;
  rejected_malformed : int;
  rejected_invalid : int;
  rejected_draining : int;
  dropped_disconnect : int;
      (** accepted instances whose answer was lost to a vanished
          client — explicitly counted at each drop site, never derived;
          always 0 when durable (the backlog is journaled instead) *)
  recovered : int;
      (** accepted-unanswered instances re-dispatched at resume *)
  replayed : int;  (** retransmits answered from the journal verbatim *)
  suppressed : int;
      (** duplicate accepts of a still-pending key, not enqueued twice *)
  torn_streams : int;
  poisoned_streams : int;  (** connections killed by an oversized prefix *)
  durable : bool;
      (** journaling was configured and still active at exit *)
  wall_s : float;
  health : Health.summary;
  exit_code : int;  (** 0 on EOF, 130/143 after a drain signal *)
}

exception Kill9 of string
(** Raised out of the serve call when the [kill9] probe fires; the
    argument is the instance key at the crash point. In-process chaos
    only — the daemon turns the probe into a real [SIGKILL]. *)

val serve_fds : config -> in_fd:Unix.file_descr -> out_fd:Unix.file_descr -> stats
(** Serve one frame stream (the stdin/stdout mode). Returns after EOF
    or drain. *)

val serve_socket : config -> path:string -> stats
(** Bind a Unix-domain socket and serve clients sequentially until
    drain. The socket file is unlinked on exit. *)

val request_drain : code:int -> unit
(** Flip the process-wide drain flag (first caller wins): stop
    admitting, finish the backlog, make the serve call return with
    [exit_code = code]. Safe from signal handlers and other domains. *)

val draining : unit -> bool

val install_signal_handlers : unit -> unit
(** SIGTERM -> drain with 143, SIGINT -> drain with 130, SIGPIPE
    ignored (a vanished client must surface as [EPIPE], not death),
    SIGUSR1 -> dump the flight recorder (with GC and health snapshots)
    at the next loop head — live inspection without a restart. *)

val report : stats -> string
(** Human summary, one line per concern; includes the
    ["accepted=N responded=N dropped=N"] line the serve-smoke CI job
    greps, plus a journal line when durable. *)
