(* The service loop. Single reader/writer domain; the pool supplies the
   parallelism. The loop's invariants:

   - every frame read produces exactly one response frame, unless the
     client is gone (counted as dropped) or the stream died before the
     frame completed (counted as torn);
   - in-process buffering is bounded by (queue_capacity + one decoder
     chunk + one max_frame): overload is shed at admission, not
     absorbed;
   - a drain request is observed at every loop head and at every
     batch boundary, so SIGTERM latency is one batch, not one
     connection.

   Batching policy: frames are admitted greedily while bytes are
   already buffered, and a dispatch fires as soon as the input goes
   momentarily quiet or the batch cap is reached. Light load therefore
   gets per-request latency close to one instance's cost; sustained
   load gets full batches and the pool's throughput. *)

module Pool = Bap_exec.Pool
module Supervisor = Bap_exec.Supervisor
module Tel = Bap_telemetry.Telemetry

type config = {
  jobs : int;
  queue_capacity : int;
  batch : int;
  retries : int;
  timeout_s : float option;
  max_frame : int;
  seed : int;
  inject :
    (key:string -> attempt:int -> Bap_exec.Supervisor.injected option) option;
}

let default_config =
  {
    jobs = 1;
    queue_capacity = 1024;
    batch = 64;
    retries = 2;
    timeout_s = Some 10.;
    max_frame = Frame.default_max_len;
    seed = 0;
    inject = None;
  }

type stats = {
  connections : int;
  accepted : int;
  responded : int;
  completed : int;
  degraded : int;
  rejected_overload : int;
  rejected_malformed : int;
  rejected_invalid : int;
  rejected_draining : int;
  dropped_disconnect : int;
  torn_streams : int;
  poisoned_streams : int;
  wall_s : float;
  health : Health.summary;
  exit_code : int;
}

(* ---------- drain flag ---------- *)

(* 0 = running; otherwise the exit code the drain was requested with.
   One flag per process: a signal handler has no server handle, and one
   server per process is the deployment shape. First request wins so a
   SIGTERM followed by an impatient SIGINT keeps the original code. *)
let drain_flag : int Atomic.t = Atomic.make 0

let request_drain ~code =
  ignore (Atomic.compare_and_set drain_flag 0 (if code = 0 then -1 else code))

let drain_code () = match Atomic.get drain_flag with -1 -> 0 | c -> c
let draining () = Atomic.get drain_flag <> 0

let install_signal_handlers () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let on name code =
    Sys.Signal_handle
      (fun _ ->
        (* Handlers only flip the flag; the loop owns every exit path,
           so telemetry and the accepted backlog are never abandoned
           mid-write. *)
        Tel.instant ~cat:"serve" ~name ();
        request_drain ~code)
  in
  (try Sys.set_signal Sys.sigint (on "sigint" 130)
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigterm (on "sigterm" 143)
  with Invalid_argument _ | Sys_error _ -> ()

(* ---------- server state ---------- *)

type server = {
  cfg : config;
  adm : Admission.t;
  disp : Dispatch.t;
  health : Health.t;
  started : float;
  mutable connections : int;
  mutable responded : int;
  mutable completed : int;
  mutable degraded : int;
  mutable rej_overload : int;
  mutable rej_malformed : int;
  mutable rej_invalid : int;
  mutable rej_draining : int;
  mutable torn : int;
  mutable poisoned : int;
}

exception Client_gone

let now_us () = Unix.gettimeofday () *. 1e6

(* ---------- robust fd IO ---------- *)

let rec write_all fd b pos len =
  if len > 0 then begin
    let k =
      try Unix.write fd b pos len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        raise Client_gone
    in
    write_all fd b (pos + k) (len - k)
  end

let readable fd ~timeout =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let read_chunk fd chunk =
  try Unix.read fd chunk 0 (Bytes.length chunk) with
  | Unix.Unix_error (Unix.EINTR, _, _) -> -1 (* retry at next loop head *)
  | Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) -> 0

(* ---------- responses ---------- *)

let send_response srv out_fd (resp : Instance.response) =
  (match resp with
  | Instance.Done _ ->
    srv.completed <- srv.completed + 1;
    srv.responded <- srv.responded + 1
  | Instance.Degraded _ ->
    srv.degraded <- srv.degraded + 1;
    srv.responded <- srv.responded + 1
  | Instance.Rejected { reason; _ } -> (
    match reason with
    | Instance.Overload -> srv.rej_overload <- srv.rej_overload + 1
    | Instance.Malformed _ ->
      srv.rej_malformed <- srv.rej_malformed + 1;
      Tel.Metrics.counter "serve.rejected.malformed" 1
    | Instance.Invalid _ ->
      srv.rej_invalid <- srv.rej_invalid + 1;
      Tel.Metrics.counter "serve.rejected.invalid" 1
    | Instance.Draining -> srv.rej_draining <- srv.rej_draining + 1));
  let wire = Frame.encode (Instance.response_to_json resp) in
  write_all out_fd (Bytes.unsafe_of_string wire) 0 (String.length wire)

let process_payload srv out_fd payload =
  match Instance.parse payload with
  | Error (`Malformed msg) ->
    send_response srv out_fd
      (Instance.Rejected { id = -1; reason = Instance.Malformed msg })
  | Error (`Invalid (id, msg)) ->
    send_response srv out_fd
      (Instance.Rejected { id; reason = Instance.Invalid msg })
  | Ok spec -> (
    match Admission.offer srv.adm ~now_us:(now_us ()) spec with
    | Admission.Enqueued -> ()
    | Admission.Shed reason ->
      send_response srv out_fd
        (Instance.Rejected { id = spec.Instance.id; reason }))

let dispatch_queued srv out_fd =
  let batch = Admission.take_batch srv.adm ~max:srv.cfg.batch in
  if batch <> [] then begin
    let responses =
      Tel.span ~cat:"serve" ~name:"dispatch"
        ~attrs:(fun () -> [ ("batch", Tel.Int (List.length batch)) ])
        (fun () -> Dispatch.run srv.disp batch)
    in
    List.iter
      (fun ((e : Admission.entry), resp) ->
        send_response srv out_fd resp;
        Health.record_latency srv.health ~us:(now_us () -. e.Admission.arrival_us))
      responses
  end

(* Finish every accepted entry. Called on EOF, drain, and poisoned
   streams: accepted work is answered, never silently dropped. *)
let flush_backlog srv out_fd =
  while Admission.depth srv.adm > 0 do
    dispatch_queued srv out_fd
  done

(* ---------- one connection ---------- *)

let serve_connection srv ~in_fd ~out_fd =
  srv.connections <- srv.connections + 1;
  let dec = Frame.decoder ~max_len:srv.cfg.max_frame () in
  let chunk = Bytes.create 65536 in
  (* Pull every decodable frame into admission. [`Poisoned] means an
     oversized prefix: one rejection, then the connection dies. *)
  let rec drain_decoder () =
    match Frame.next dec with
    | Frame.Frame payload ->
      process_payload srv out_fd payload;
      drain_decoder ()
    | Frame.Await -> `More
    | Frame.Oversized n ->
      srv.poisoned <- srv.poisoned + 1;
      Tel.Metrics.counter "serve.poisoned_streams" 1;
      send_response srv out_fd
        (Instance.Rejected
           {
             id = -1;
             reason =
               Instance.Malformed
                 (Printf.sprintf
                    "oversized frame (%d bytes > %d); closing connection" n
                    srv.cfg.max_frame);
           });
      `Poisoned
  in
  let finish ~torn =
    flush_backlog srv out_fd;
    if torn then begin
      srv.torn <- srv.torn + 1;
      Tel.Metrics.counter "serve.torn_streams" 1
    end
  in
  let rec loop () =
    if draining () then finish ~torn:(Frame.buffered dec > 0)
    else
      match drain_decoder () with
      | `Poisoned -> finish ~torn:false
      | `More ->
        if Admission.depth srv.adm >= srv.cfg.batch then begin
          dispatch_queued srv out_fd;
          loop ()
        end
        else begin
          let timeout = if Admission.depth srv.adm > 0 then 0. else 0.05 in
          if readable in_fd ~timeout then begin
            match read_chunk in_fd chunk with
            | 0 -> finish ~torn:(Frame.buffered dec > 0)
            | k ->
              if k > 0 then Frame.feed dec chunk ~pos:0 ~len:k;
              loop ()
          end
          else if Admission.depth srv.adm > 0 then begin
            (* Input went quiet with work queued: dispatch now, favouring
               latency over batch fill. *)
            dispatch_queued srv out_fd;
            loop ()
          end
          else loop ()
        end
  in
  try loop () with
  | Client_gone ->
    (* Nobody is listening: answering the backlog would block forever,
       so it is dropped — visibly (the exact count is derived at
       finalize as accepted - responded, covering the batch that was
       mid-dispatch too). *)
    let lost = Admission.depth srv.adm in
    ignore (Admission.take_batch srv.adm ~max:lost);
    Tel.Metrics.counter "serve.dropped_disconnect" lost;
    srv.torn <- srv.torn + 1;
    Tel.Metrics.counter "serve.torn_streams" 1

(* ---------- serve entry points ---------- *)

let make_server cfg disp =
  {
    cfg;
    adm = Admission.create ~capacity:cfg.queue_capacity;
    disp;
    health = Health.create ();
    started = Unix.gettimeofday ();
    connections = 0;
    responded = 0;
    completed = 0;
    degraded = 0;
    rej_overload = 0;
    rej_malformed = 0;
    rej_invalid = 0;
    rej_draining = 0;
    torn = 0;
    poisoned = 0;
  }

let finalize srv =
  let wall_s = Unix.gettimeofday () -. srv.started in
  let accepted = Admission.accepted_total srv.adm in
  {
    connections = srv.connections;
    accepted;
    responded = srv.responded;
    completed = srv.completed;
    degraded = srv.degraded;
    rejected_overload = srv.rej_overload;
    rejected_malformed = srv.rej_malformed;
    rejected_invalid = srv.rej_invalid;
    rejected_draining = srv.rej_draining;
    dropped_disconnect = accepted - srv.responded;
    torn_streams = srv.torn;
    poisoned_streams = srv.poisoned;
    wall_s;
    health = Health.summarize srv.health ~wall_s;
    exit_code = (if draining () then drain_code () else 0);
  }

let with_server cfg f =
  (* A fresh serve call un-drains the process flag: the previous
     server's drain must not poison a bench re-run in the same
     process. *)
  Atomic.set drain_flag 0;
  let scfg =
    {
      Supervisor.retries = cfg.retries;
      timeout_s = cfg.timeout_s;
      seed = cfg.seed;
      inject = cfg.inject;
    }
  in
  Supervisor.with_supervisor scfg (fun sup ->
      Pool.with_pool ~jobs:cfg.jobs (fun pool ->
          let srv = make_server cfg (Dispatch.create ~pool ~supervisor:sup) in
          f srv;
          finalize srv))

let serve_fds cfg ~in_fd ~out_fd =
  with_server cfg (fun srv ->
      Tel.span ~cat:"serve" ~name:"connection" (fun () ->
          serve_connection srv ~in_fd ~out_fd))

let serve_socket cfg ~path =
  with_server cfg (fun srv ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close lfd with Unix.Unix_error _ -> ());
          try Unix.unlink path with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.bind lfd (Unix.ADDR_UNIX path);
          Unix.listen lfd 8;
          let rec accept_loop () =
            if not (draining ()) then
              if readable lfd ~timeout:0.25 then begin
                match Unix.accept lfd with
                | fd, _ ->
                  Fun.protect
                    ~finally:(fun () ->
                      try Unix.close fd with Unix.Unix_error _ -> ())
                    (fun () ->
                      Tel.span ~cat:"serve" ~name:"connection" (fun () ->
                          serve_connection srv ~in_fd:fd ~out_fd:fd));
                  accept_loop ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
              end
              else accept_loop ()
          in
          accept_loop ()))

let report (s : stats) =
  String.concat "\n"
    [
      Printf.sprintf "[serve] %d connection(s) in %.2fs, exit %d" s.connections
        s.wall_s s.exit_code;
      Printf.sprintf "[serve] accepted=%d responded=%d dropped=%d" s.accepted
        s.responded s.dropped_disconnect;
      Printf.sprintf "[serve] completed=%d degraded=%d" s.completed s.degraded;
      Printf.sprintf
        "[serve] rejected: overload=%d malformed=%d invalid=%d draining=%d"
        s.rejected_overload s.rejected_malformed s.rejected_invalid
        s.rejected_draining;
      Printf.sprintf "[serve] streams: torn=%d poisoned=%d" s.torn_streams
        s.poisoned_streams;
      Format.asprintf "[serve] %a" Health.pp_summary s.health;
    ]
