(* The service loop. Single reader/writer domain; the pool supplies the
   parallelism. The loop's invariants:

   - every frame read produces exactly one response frame, unless the
     client is gone (journaled for later replay when durable, counted
     as dropped when not) or the stream died before the frame completed
     (counted as torn);
   - in-process buffering is bounded by (queue_capacity + one decoder
     chunk + one max_frame): overload is shed at admission, not
     absorbed;
   - a drain request is observed at every loop head and at every
     batch boundary, so SIGTERM latency is one batch, not one
     connection.

   Batching policy: frames are admitted greedily while bytes are
   already buffered, and a dispatch fires as soon as the input goes
   momentarily quiet or the batch cap is reached. Light load therefore
   gets per-request latency close to one instance's cost; sustained
   load gets full batches and the pool's throughput.

   Durability (ISSUE 9): with [journal_path] set, every admitted
   instance is logged at accept and again at respond — the respond
   record is flushed before the response frame touches the wire. A
   SIGKILL therefore loses nothing accepted: [resume] replays the
   journal's valid prefix, re-dispatches every accepted-unanswered
   instance through the normal Dispatch path before the first
   connection, and answers retransmits of already-answered keys by
   replaying the journaled bytes verbatim. Each accepted instance is
   answered exactly once across incarnations. *)

module Pool = Bap_exec.Pool
module Supervisor = Bap_exec.Supervisor
module Tel = Bap_telemetry.Telemetry
module Memprobe = Bap_telemetry.Memprobe

type config = {
  jobs : int;
  queue_capacity : int;
  batch : int;
  retries : int;
  timeout_s : float option;
  max_frame : int;
  seed : int;
  inject :
    (key:string -> attempt:int -> Bap_exec.Supervisor.injected option) option;
  journal_path : string option;
  resume : bool;
  kill9 : (key:string -> bool) option;
  flight_capacity : int;
  flight_dump : string option;
}

let default_config =
  {
    jobs = 1;
    queue_capacity = 1024;
    batch = 64;
    retries = 2;
    timeout_s = Some 10.;
    max_frame = Frame.default_max_len;
    seed = 0;
    inject = None;
    journal_path = None;
    resume = false;
    kill9 = None;
    flight_capacity = 256;
    flight_dump = None;
  }

type stats = {
  connections : int;
  accepted : int;
  responded : int;
  completed : int;
  degraded : int;
  rejected_overload : int;
  rejected_malformed : int;
  rejected_invalid : int;
  rejected_draining : int;
  dropped_disconnect : int;
  recovered : int;
  replayed : int;
  suppressed : int;
  torn_streams : int;
  poisoned_streams : int;
  durable : bool;
  wall_s : float;
  health : Health.summary;
  exit_code : int;
}

(* ---------- drain flag ---------- *)

(* 0 = running; otherwise the exit code the drain was requested with.
   One flag per process: a signal handler has no server handle, and one
   server per process is the deployment shape. First request wins so a
   SIGTERM followed by an impatient SIGINT keeps the original code. *)
let drain_flag : int Atomic.t = Atomic.make 0

let request_drain ~code =
  ignore (Atomic.compare_and_set drain_flag 0 (if code = 0 then -1 else code))

let drain_code () = match Atomic.get drain_flag with -1 -> 0 | c -> c
let draining () = Atomic.get drain_flag <> 0

(* SIGUSR1 = "dump the flight recorder". Same discipline as drain: the
   handler only flips the flag; the loop, which owns the recorder and
   stderr, dumps at its next head. *)
let usr1_flag : bool Atomic.t = Atomic.make false

let install_signal_handlers () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let on name code =
    Sys.Signal_handle
      (fun _ ->
        (* Handlers only flip the flag; the loop owns every exit path,
           so telemetry and the accepted backlog are never abandoned
           mid-write. *)
        Tel.instant ~cat:"serve" ~name ();
        request_drain ~code)
  in
  (try Sys.set_signal Sys.sigint (on "sigint" 130)
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigterm (on "sigterm" 143)
   with Invalid_argument _ | Sys_error _ -> ());
  try
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle
         (fun _ ->
           Tel.instant ~cat:"serve" ~name:"sigusr1" ();
           Atomic.set usr1_flag true))
  with Invalid_argument _ | Sys_error _ -> ()

(* ---------- server state ---------- *)

type server = {
  cfg : config;
  adm : Admission.t;
  disp : Dispatch.t;
  health : Health.t;
  journal : Journal.t option;
  flight : Flight.t;
  flight_path : string option;
      (* where dumps land beside stderr: [flight_dump], defaulting to
         "<journal_path>.flight" when durable — the black box lives
         next to the instance journal *)
  started : float;
  mutable connections : int;
  mutable responded : int;
  mutable completed : int;
  mutable degraded : int;
  mutable rej_overload : int;
  mutable rej_malformed : int;
  mutable rej_invalid : int;
  mutable rej_draining : int;
  mutable dropped : int;
      (* explicitly counted at each drop site, never derived (the old
         accepted - responded derivation double-counts once resumed
         instances answer in a later incarnation) *)
  mutable recovered_n : int;
  mutable replayed : int;
  mutable suppressed : int;
  mutable torn : int;
  mutable poisoned : int;
}

exception Client_gone
exception Kill9 of string

let now_us () = Unix.gettimeofday () *. 1e6

(* ---------- robust fd IO ---------- *)

let rec write_all fd b pos len =
  if len > 0 then begin
    let k =
      try Unix.write fd b pos len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        raise Client_gone
    in
    write_all fd b (pos + k) (len - k)
  end

let readable fd ~timeout =
  match Unix.select [ fd ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let read_chunk fd chunk =
  try Unix.read fd chunk 0 (Bytes.length chunk) with
  | Unix.Unix_error (Unix.EINTR, _, _) -> -1 (* retry at next loop head *)
  | Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) -> 0

(* ---------- responses ---------- *)

let write_frame out_fd json =
  let wire = Frame.encode json in
  write_all out_fd (Bytes.unsafe_of_string wire) 0 (String.length wire)

(* ---------- flight recorder plumbing ---------- *)

let render_flight srv =
  let wall_s = Unix.gettimeofday () -. srv.started in
  Flight.dump srv.flight ~gc:(Memprobe.snapshot ())
    ~health:(Health.summarize srv.health ~wall_s)

(* Dump the black box: always to stderr, and to the flight file when
   one is configured (or implied by the journal). A dump failure is
   never allowed to take the service down — the recorder is
   observability, not correctness. *)
let dump_flight srv ~reason =
  let text = render_flight srv in
  Printf.eprintf "[serve] flight dump (%s)\n%s%!" reason text;
  match srv.flight_path with
  | None -> ()
  | Some path -> (
    try
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          Printf.fprintf oc "[serve] flight dump (%s)\n%s" reason text)
    with Sys_error _ -> ())

(* Observed at every loop head, like drain: a SIGUSR1 anywhere between
   two heads costs one dump, and the handler itself never touches the
   recorder. *)
let check_usr1 srv =
  if Atomic.exchange usr1_flag false then begin
    Flight.record srv.flight ~kind:"signal" ~key:"sigusr1"
      ~detail:"flight dump requested";
    dump_flight srv ~reason:"SIGUSR1"
  end

let reason_name = function
  | Instance.Overload -> "overload"
  | Instance.Malformed _ -> "malformed"
  | Instance.Invalid _ -> "invalid"
  | Instance.Draining -> "draining"

(* Rejections are not accepted work: no journal record, no drop
   accounting — one typed frame and done. *)
let send_rejection srv out_fd (resp : Instance.response) =
  (match resp with
  | Instance.Rejected { id; reason } -> (
    Flight.record srv.flight ~kind:"reject" ~key:(string_of_int id)
      ~detail:(reason_name reason);
    match reason with
    | Instance.Overload -> srv.rej_overload <- srv.rej_overload + 1
    | Instance.Malformed _ ->
      srv.rej_malformed <- srv.rej_malformed + 1;
      Tel.Metrics.counter "serve.rejected.malformed" 1
    | Instance.Invalid _ ->
      srv.rej_invalid <- srv.rej_invalid + 1;
      Tel.Metrics.counter "serve.rejected.invalid" 1
    | Instance.Draining -> srv.rej_draining <- srv.rej_draining + 1)
  | Instance.Done _ | Instance.Degraded _ -> ());
  write_frame out_fd (Instance.response_to_json resp)

let count_answered srv (resp : Instance.response) =
  (match resp with
  | Instance.Done _ -> srv.completed <- srv.completed + 1
  | Instance.Degraded _ -> srv.degraded <- srv.degraded + 1
  | Instance.Rejected _ -> ());
  srv.responded <- srv.responded + 1

(* Answer one accepted entry. Order is the durability contract:
   kill9 probe (the crash point chaos exercises), journal respond +
   flush, counters, then the frame. An answer counts as responded once
   it is durable or delivered; with no journal and a vanished client it
   is an explicit drop. [out_fd = None] answers into the journal only —
   the Client_gone backlog and resume recovery use that. *)
let answer_entry srv out_fd (spec : Instance.spec) (resp : Instance.response) =
  let key = Instance.key spec in
  (match srv.cfg.kill9 with
  | Some probe when probe ~key -> raise (Kill9 key)
  | _ -> ());
  let json = Instance.response_to_json resp in
  let journaled =
    match srv.journal with
    | Some j ->
      Journal.respond j ~key json;
      (* A degraded journal holds nothing: only an active one makes an
         undelivered answer durable. *)
      Journal.active j
    | None -> false
  in
  let write_err =
    match out_fd with
    | None -> None
    | Some fd -> ( try write_frame fd json; None with Client_gone -> Some Client_gone)
  in
  let delivered = out_fd <> None && write_err = None in
  if journaled || delivered then begin
    count_answered srv resp;
    match resp with
    | Instance.Degraded { attempts; _ } ->
      (* A quarantine is exactly the moment the black box exists for:
         dump it while the evidence — the events leading here — is
         still in the ring. *)
      Flight.record srv.flight ~kind:"quarantine" ~key
        ~detail:(Printf.sprintf "degraded after %d attempt(s)" attempts);
      dump_flight srv ~reason:"quarantine"
    | Instance.Done _ | Instance.Rejected _ ->
      Flight.record srv.flight ~kind:"respond" ~key
        ~detail:(if delivered then "ok" else "journaled")
  end
  else begin
    (* Not durable and the client vanished mid-write: the answer is
       gone. Count the drop here, at the site, never by derivation. *)
    srv.dropped <- srv.dropped + 1;
    Flight.record srv.flight ~kind:"drop" ~key
      ~detail:"client gone, answer not durable";
    Tel.Metrics.counter "serve.dropped_disconnect" 1
  end;
  match write_err with Some e -> raise e | None -> ()

let enqueue_spec srv out_fd spec =
  match Admission.offer srv.adm ~now_us:(now_us ()) spec with
  | Admission.Enqueued -> (
    Flight.record srv.flight ~kind:"accept" ~key:(Instance.key spec) ~detail:"";
    match srv.journal with
    | Some j -> ignore (Journal.accept j spec)
    | None -> ())
  | Admission.Shed reason ->
    send_rejection srv out_fd
      (Instance.Rejected { id = spec.Instance.id; reason })

(* The typed Stats admin frame: counters, health, a GC snapshot, and
   the flight recorder's retained window — live introspection without a
   restart and without perturbing the instance ledger (no admission, no
   journal record, not counted as accepted or responded). *)
let admin_stats_json srv =
  let wall_s = Unix.gettimeofday () -. srv.started in
  let h = Health.summarize srv.health ~wall_s in
  let gc = Memprobe.snapshot () in
  let accepted, responded =
    match srv.journal with
    | Some j -> (Journal.accepted j, Journal.answered j)
    | None -> (Admission.accepted_total srv.adm, srv.responded)
  in
  Printf.sprintf
    "{\"status\":\"stats\",\"accepted\":%d,\"responded\":%d,\"completed\":%d,\
     \"degraded\":%d,\"dropped\":%d,\"connections\":%d,\"queue_depth\":%d,\
     \"health\":{\"completed\":%d,\"per_sec\":%.1f,\"p50_us\":%d,\
     \"p99_us\":%d,\"max_us\":%d,\"heap_words\":%d,\"compactions\":%d},\
     \"gc\":{\"minor_words\":%.0f,\"promoted_words\":%.0f,\
     \"major_words\":%.0f,\"minor_collections\":%d,\"major_collections\":%d,\
     \"compactions\":%d,\"heap_words\":%d},\"flight\":%s}"
    accepted responded srv.completed srv.degraded srv.dropped srv.connections
    (Admission.depth srv.adm) h.Health.completed h.Health.per_sec
    h.Health.p50_us h.Health.p99_us h.Health.max_us h.Health.heap_words
    h.Health.compactions gc.Memprobe.minor_words gc.Memprobe.promoted_words
    gc.Memprobe.major_words gc.Memprobe.minor_collections
    gc.Memprobe.major_collections gc.Memprobe.compactions
    gc.Memprobe.heap_words
    (Flight.to_json srv.flight)

let process_payload srv out_fd payload =
  match Instance.parse_admin payload with
  | Some Instance.Stats ->
    Flight.record srv.flight ~kind:"admin" ~key:"stats" ~detail:"";
    write_frame out_fd (admin_stats_json srv)
  | None -> (
  match Instance.parse payload with
  | Error (`Malformed msg) ->
    send_rejection srv out_fd
      (Instance.Rejected { id = -1; reason = Instance.Malformed msg })
  | Error (`Invalid (id, msg)) ->
    send_rejection srv out_fd
      (Instance.Rejected { id; reason = Instance.Invalid msg })
  | Ok spec -> (
    match srv.journal with
    | None -> enqueue_spec srv out_fd spec
    | Some j -> (
      match Journal.lookup j (Instance.key spec) with
      | Some (Journal.Answered bytes) ->
        (* Already answered (this or a previous incarnation): replay
           the journaled bytes verbatim — never re-execute. *)
        srv.replayed <- srv.replayed + 1;
        Flight.record srv.flight ~kind:"replay" ~key:(Instance.key spec)
          ~detail:"answered from journal";
        Tel.Metrics.counter "serve.replayed" 1;
        write_frame out_fd bytes
      | Some (Journal.Pending _) ->
        (* An earlier accept owns this key and will answer it; a second
           response would break exactly-once. *)
        srv.suppressed <- srv.suppressed + 1;
        Flight.record srv.flight ~kind:"suppress" ~key:(Instance.key spec)
          ~detail:"duplicate of a pending key";
        Tel.Metrics.counter "serve.suppressed" 1
      | None -> enqueue_spec srv out_fd spec)))

(* Dispatch one batch and answer it. [out_fd = None] (client gone,
   journal on) answers into the journal only. A client vanishing
   mid-batch flips the rest of the batch to the no-client path — the
   work is already done; it is journaled when durable, or an explicit
   drop when not — then re-raises. *)
let dispatch_entries srv out_fd entries =
  if entries <> [] then begin
    let responses =
      Tel.span ~cat:"serve" ~name:"dispatch"
        ~attrs:(fun () -> [ ("batch", Tel.Int (List.length entries)) ])
        (fun () -> Dispatch.run srv.disp entries)
    in
    let gone = ref false in
    List.iter
      (fun ((e : Admission.entry), resp) ->
        let out = if !gone then None else out_fd in
        match answer_entry srv out e.Admission.spec resp with
        | () ->
          if out <> None then
            Health.record_latency srv.health
              ~us:(now_us () -. e.Admission.arrival_us)
        | exception Client_gone -> gone := true)
      responses;
    if !gone then raise Client_gone
  end

let dispatch_queued srv out_fd =
  dispatch_entries srv out_fd
    (Admission.take_batch srv.adm ~max:srv.cfg.batch)

(* Finish every accepted entry. Called on EOF, drain, and poisoned
   streams: accepted work is answered, never silently dropped. *)
let flush_backlog srv out_fd =
  while Admission.depth srv.adm > 0 do
    dispatch_queued srv out_fd
  done

(* Re-dispatch every accepted-unanswered instance from the journal,
   before the first connection. The answers land in the journal as
   respond records; the clients that owned them are gone, so delivery
   happens when they reconnect and retransmit (journal lookup ->
   replay). Runs through the normal Dispatch/supervisor path: a
   poisoned recovered instance degrades, never aborts, the restart. *)
let recover_pending srv =
  match srv.journal with
  | None -> ()
  | Some j ->
    let pending = Journal.recovered j in
    if pending <> [] then begin
      let n = List.length pending in
      srv.recovered_n <- n;
      Flight.record srv.flight ~kind:"recover" ~key:"resume"
        ~detail:(Printf.sprintf "%d accepted-unanswered instance(s)" n);
      Printf.eprintf
        "[serve] resume: re-dispatching %d accepted-unanswered instance(s)\n%!"
        n;
      Tel.span ~cat:"serve" ~name:"recover"
        ~attrs:(fun () -> [ ("pending", Tel.Int n) ])
        (fun () ->
          let rec batches = function
            | [] -> ()
            | rest ->
              let k = min srv.cfg.batch (List.length rest) in
              let batch = List.filteri (fun i _ -> i < k) rest in
              let tail = List.filteri (fun i _ -> i >= k) rest in
              let entries =
                List.map
                  (fun (_key, spec) ->
                    { Admission.spec; arrival_us = now_us () })
                  batch
              in
              dispatch_entries srv None entries;
              batches tail
          in
          batches pending)
    end

(* ---------- one connection ---------- *)

let serve_connection srv ~in_fd ~out_fd =
  srv.connections <- srv.connections + 1;
  let dec = Frame.decoder ~max_len:srv.cfg.max_frame () in
  let chunk = Bytes.create 65536 in
  (* Pull every decodable frame into admission. [`Poisoned] means an
     oversized prefix: one rejection, then the connection dies. *)
  let rec drain_decoder () =
    match Frame.next dec with
    | Frame.Frame payload ->
      process_payload srv out_fd payload;
      drain_decoder ()
    | Frame.Await -> `More
    | Frame.Oversized n ->
      srv.poisoned <- srv.poisoned + 1;
      Tel.Metrics.counter "serve.poisoned_streams" 1;
      send_rejection srv out_fd
        (Instance.Rejected
           {
             id = -1;
             reason =
               Instance.Malformed
                 (Printf.sprintf
                    "oversized frame (%d bytes > %d); closing connection" n
                    srv.cfg.max_frame);
           });
      `Poisoned
  in
  let finish ~torn =
    flush_backlog srv (Some out_fd);
    if torn then begin
      srv.torn <- srv.torn + 1;
      Tel.Metrics.counter "serve.torn_streams" 1
    end
  in
  let rec loop () =
    check_usr1 srv;
    if draining () then finish ~torn:(Frame.buffered dec > 0)
    else
      match drain_decoder () with
      | `Poisoned -> finish ~torn:false
      | `More ->
        if Admission.depth srv.adm >= srv.cfg.batch then begin
          dispatch_queued srv (Some out_fd);
          loop ()
        end
        else begin
          let timeout = if Admission.depth srv.adm > 0 then 0. else 0.05 in
          if readable in_fd ~timeout then begin
            match read_chunk in_fd chunk with
            | 0 -> finish ~torn:(Frame.buffered dec > 0)
            | k ->
              if k > 0 then Frame.feed dec chunk ~pos:0 ~len:k;
              loop ()
          end
          else if Admission.depth srv.adm > 0 then begin
            (* Input went quiet with work queued: dispatch now, favouring
               latency over batch fill. *)
            dispatch_queued srv (Some out_fd);
            loop ()
          end
          else loop ()
        end
  in
  try loop () with
  | Client_gone ->
    (* Nobody is listening. With a journal the accepted backlog is
       still executed and journaled — the answers are durable and
       replayed when the client reconnects and retransmits, so nothing
       is dropped. Without one, answering would block forever: the
       backlog is dropped, each entry explicitly counted at this site. *)
    (match srv.journal with
    | Some _ -> flush_backlog srv None
    | None ->
      let lost = Admission.depth srv.adm in
      ignore (Admission.take_batch srv.adm ~max:lost);
      srv.dropped <- srv.dropped + lost;
      Tel.Metrics.counter "serve.dropped_disconnect" lost);
    srv.torn <- srv.torn + 1;
    Tel.Metrics.counter "serve.torn_streams" 1

(* ---------- serve entry points ---------- *)

let make_server cfg disp =
  let journal =
    Option.map
      (fun path -> Journal.open_ ~resume:cfg.resume ~path ())
      cfg.journal_path
  in
  let flight_path =
    match cfg.flight_dump with
    | Some _ as p -> p
    | None -> Option.map (fun p -> p ^ ".flight") cfg.journal_path
  in
  {
    cfg;
    adm = Admission.create ~capacity:cfg.queue_capacity;
    disp;
    health = Health.create ();
    journal;
    flight = Flight.create ~capacity:(max 1 cfg.flight_capacity) ();
    flight_path;
    started = Unix.gettimeofday ();
    connections = 0;
    responded = 0;
    completed = 0;
    degraded = 0;
    rej_overload = 0;
    rej_malformed = 0;
    rej_invalid = 0;
    rej_draining = 0;
    dropped = 0;
    recovered_n = 0;
    replayed = 0;
    suppressed = 0;
    torn = 0;
    poisoned = 0;
  }

let finalize srv =
  let wall_s = Unix.gettimeofday () -. srv.started in
  (* Journal-derived accounting when durable: accepted and responded
     are the union across incarnations (the journal is the ledger), so
     accepted = responded after a clean recovery. Without a journal the
     counters are this-process, and dropped is the explicitly counted
     total — never the accepted - responded derivation. *)
  let accepted, responded =
    match srv.journal with
    | Some j -> (Journal.accepted j, Journal.answered j)
    | None -> (Admission.accepted_total srv.adm, srv.responded)
  in
  {
    connections = srv.connections;
    accepted;
    responded;
    completed = srv.completed;
    degraded = srv.degraded;
    rejected_overload = srv.rej_overload;
    rejected_malformed = srv.rej_malformed;
    rejected_invalid = srv.rej_invalid;
    rejected_draining = srv.rej_draining;
    dropped_disconnect = srv.dropped;
    recovered = srv.recovered_n;
    replayed = srv.replayed;
    suppressed = srv.suppressed;
    torn_streams = srv.torn;
    poisoned_streams = srv.poisoned;
    durable = (match srv.journal with Some j -> Journal.active j | None -> false);
    wall_s;
    health = Health.summarize srv.health ~wall_s;
    exit_code = (if draining () then drain_code () else 0);
  }

let with_server cfg f =
  (* A fresh serve call un-drains the process flag: the previous
     server's drain must not poison a bench re-run in the same
     process. Likewise a stale SIGUSR1 must not dump the new server's
     empty ring on its first loop head. *)
  Atomic.set drain_flag 0;
  Atomic.set usr1_flag false;
  let scfg =
    {
      Supervisor.retries = cfg.retries;
      timeout_s = cfg.timeout_s;
      seed = cfg.seed;
      inject = cfg.inject;
    }
  in
  Supervisor.with_supervisor scfg (fun sup ->
      Pool.with_pool ~jobs:cfg.jobs (fun pool ->
          let srv = make_server cfg (Dispatch.create ~pool ~supervisor:sup) in
          Fun.protect
            ~finally:(fun () ->
              match srv.journal with Some j -> Journal.close j | None -> ())
            (fun () ->
              recover_pending srv;
              f srv;
              finalize srv)))

let serve_fds cfg ~in_fd ~out_fd =
  with_server cfg (fun srv ->
      Tel.span ~cat:"serve" ~name:"connection" (fun () ->
          serve_connection srv ~in_fd ~out_fd))

let serve_socket cfg ~path =
  with_server cfg (fun srv ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Fun.protect
        ~finally:(fun () ->
          (try Unix.close lfd with Unix.Unix_error _ -> ());
          try Unix.unlink path with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.bind lfd (Unix.ADDR_UNIX path);
          Unix.listen lfd 8;
          let rec accept_loop () =
            check_usr1 srv;
            if not (draining ()) then
              if readable lfd ~timeout:0.25 then begin
                match Unix.accept lfd with
                | fd, _ ->
                  Fun.protect
                    ~finally:(fun () ->
                      try Unix.close fd with Unix.Unix_error _ -> ())
                    (fun () ->
                      Tel.span ~cat:"serve" ~name:"connection" (fun () ->
                          serve_connection srv ~in_fd:fd ~out_fd:fd));
                  accept_loop ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
              end
              else accept_loop ()
          in
          accept_loop ()))

let report (s : stats) =
  String.concat "\n"
    ([
       Printf.sprintf "[serve] %d connection(s) in %.2fs, exit %d"
         s.connections s.wall_s s.exit_code;
       Printf.sprintf "[serve] accepted=%d responded=%d dropped=%d" s.accepted
         s.responded s.dropped_disconnect;
       Printf.sprintf "[serve] completed=%d degraded=%d" s.completed s.degraded;
       Printf.sprintf
         "[serve] rejected: overload=%d malformed=%d invalid=%d draining=%d"
         s.rejected_overload s.rejected_malformed s.rejected_invalid
         s.rejected_draining;
       Printf.sprintf "[serve] streams: torn=%d poisoned=%d" s.torn_streams
         s.poisoned_streams;
     ]
    @ (if s.durable then
         [
           Printf.sprintf "[serve] journal: recovered=%d replayed=%d suppressed=%d"
             s.recovered s.replayed s.suppressed;
         ]
       else [])
    @ [ Format.asprintf "[serve] %a" Health.pp_summary s.health ])
