(* The instance journal: durability for the always-on service.

   Two record kinds ride the shared WAL core (Bap_exec.Wal):

     rec accept  <key> ... payload = the request JSON (with client id)
     rec respond <key> ... payload = the response JSON bytes, verbatim

   keyed by Instance.key — the client-id-free canonical identity — and
   fingerprinted by the executable digest, so a journal written by a
   different build is discarded wholesale. An accept is appended (and
   flushed) when the instance passes admission; a respond is appended
   before the response frame touches the wire. The crash contract that
   buys:

   - accept in journal, no respond: the server died owning the
     instance. Resume re-dispatches it; the client never saw a
     response, so it retransmits and collects the recovered one.
   - respond in journal: the answer bytes are durable. Whether or not
     the frame reached the client, a retransmit of that key replays the
     exact journaled bytes — answered exactly once, delivered at least
     once, byte-identical always.

   The table maps each key to Pending (accepted, not yet answered) or
   Answered (the durable response bytes). All calls run on the serve
   loop's domain; the WAL has its own lock for the signal path. *)

module Wal = Bap_exec.Wal
module Cache = Bap_exec.Cache
module Tel = Bap_telemetry.Telemetry

type state = Pending of Instance.spec | Answered of string

type t = {
  wal : Wal.t;
  table : (string, state) Hashtbl.t;
  mutable accepts : int;  (* distinct keys ever accepted, incl. loaded *)
  mutable answers : int;  (* distinct keys answered, incl. loaded *)
  recovered : (string * Instance.spec) list;  (* pending at open, file order *)
}

let default_path = Filename.concat "results" "serve.journal"
let magic = "bap-serve-journal 1"

let open_ ?(resume = false) ~path () =
  let wal =
    Wal.open_ ~resume ~magic ~path ~fingerprint:(Cache.code_fingerprint ()) ()
  in
  let table = Hashtbl.create 256 in
  let order = ref [] in
  let accepts = ref 0 in
  let answers = ref 0 in
  List.iter
    (fun (r : Wal.record) ->
      match r.tag with
      | "accept" -> (
        if not (Hashtbl.mem table r.key) then
          match Instance.parse r.payload with
          | Ok spec ->
            Hashtbl.replace table r.key (Pending spec);
            order := (r.key, spec) :: !order;
            incr accepts
          | Error _ ->
            (* Digest-valid but unparseable: a writer bug, not a torn
               write. Skip the record rather than poison the resume. *)
            ())
      | "respond" -> (
        match Hashtbl.find_opt table r.key with
        | Some (Answered _) -> () (* first answer wins, even on load *)
        | (Some (Pending _) | None) as prev ->
          if prev = None then incr accepts;
          incr answers;
          Hashtbl.replace table r.key (Answered r.payload))
      | _ -> ())
    (Wal.records wal);
  let recovered =
    List.rev !order
    |> List.filter (fun (k, _) ->
           match Hashtbl.find_opt table k with
           | Some (Pending _) -> true
           | _ -> false)
  in
  if recovered <> [] then begin
    Tel.Metrics.counter "serve.journal.recovered" (List.length recovered);
    Tel.instant ~cat:"serve" ~name:"journal_recovered"
      ~attrs:(fun () -> [ ("pending", Tel.Int (List.length recovered)) ])
      ()
  end;
  { wal; table; accepts = !accepts; answers = !answers; recovered }

let lookup t key = Hashtbl.find_opt t.table key

let accept t (spec : Instance.spec) =
  let key = Instance.key spec in
  match Hashtbl.find_opt t.table key with
  | Some (Answered bytes) -> `Replay bytes
  | Some (Pending _) -> `Duplicate
  | None ->
    Hashtbl.replace t.table key (Pending spec);
    t.accepts <- t.accepts + 1;
    Wal.append t.wal ~tag:"accept" ~key (Instance.request_json spec);
    Tel.Metrics.counter "serve.journal.accepts" 1;
    `Logged

let respond t ~key bytes =
  match Hashtbl.find_opt t.table key with
  | Some (Answered _) -> () (* first answer wins: no record, no overwrite *)
  | (Some (Pending _) | None) as prev ->
    if prev = None then t.accepts <- t.accepts + 1;
    t.answers <- t.answers + 1;
    Hashtbl.replace t.table key (Answered bytes);
    (* Flushed before the caller writes the response frame: that
       ordering is the exactly-once contract. *)
    Wal.append t.wal ~tag:"respond" ~key bytes;
    Tel.Metrics.counter "serve.journal.responds" 1

let recovered t = t.recovered
let accepted t = t.accepts
let answered t = t.answers
let active t = Wal.active t.wal
let path t = Wal.path t.wal
let close t = Wal.close t.wal
let signal_close t = Wal.signal_close t.wal
