(** The instance journal: durability for the always-on service.

    Rides the shared {!Bap_exec.Wal} core. Every admitted instance is
    logged at {e accept} (payload: the request JSON) and again at
    {e respond} (payload: the response bytes, verbatim), keyed by
    {!Instance.key} — the client-id-free canonical identity — and
    flushed before the response frame is written. Across a SIGKILL and
    a [--resume] restart that yields:

    - accept without respond: the server died owning the instance; it
      is in {!recovered} and must be re-dispatched. The client never
      received a response (the respond record is flushed first), so it
      will retransmit and collect the recovered answer.
    - respond present: the answer bytes are durable; {!accept} on a
      retransmit of that key returns [`Replay bytes] and the server
      resends the exact journaled bytes.

    Each accepted instance is therefore {e answered exactly once}
    across incarnations — recomputed never, replayed verbatim on
    retransmit. All calls belong to the serve loop's domain; only
    {!signal_close} is safe from a signal handler. *)

type state =
  | Pending of Instance.spec  (** accepted, not yet answered *)
  | Answered of string  (** the journaled response bytes *)

type t

val default_path : string
(** ["results/serve.journal"]. *)

val open_ : ?resume:bool -> path:string -> unit -> t
(** Fingerprinted by {!Bap_exec.Cache.code_fingerprint}, so a journal
    from a different build loads zero records. [resume:true] replays
    the valid prefix (truncating any torn tail) and exposes
    accepted-unanswered instances via {!recovered}. Best-effort like
    the sweep journal: an unwritable path degrades to "no durability"
    with the WAL's loud warning; {!active} reports which. *)

val accept : t -> Instance.spec -> [ `Logged | `Duplicate | `Replay of string ]
(** Journal an admitted instance. [`Logged]: fresh key, the accept
    record is flushed — enqueue it. [`Duplicate]: the key is already
    pending (an earlier accept owns it) — do not enqueue again.
    [`Replay bytes]: the key was already answered — resend [bytes],
    do not re-execute. *)

val respond : t -> key:string -> string -> unit
(** Journal the response bytes for [key] and flush. Must be called
    {e before} the response frame is written: a crash between the two
    leaves the answer durable and the client retransmitting, which
    replays it. Idempotent per key (first answer wins). *)

val lookup : t -> string -> state option

val recovered : t -> (string * Instance.spec) list
(** Accepted-unanswered instances loaded at open, in journal (accept)
    order. Empty unless [resume:true]. *)

val accepted : t -> int
(** Distinct keys ever accepted, including those loaded at open. *)

val answered : t -> int
(** Distinct keys answered, including those loaded at open. *)

val active : t -> bool
(** [false] when journaling degraded to "no durability". *)

val path : t -> string
val close : t -> unit

val signal_close : t -> unit
(** Signal-handler-safe close; see {!Bap_exec.Wal.signal_close}. *)
