(** Typed admission control: a bounded queue that sheds, never buffers.

    Every request the server reads is {e offered} here before any work
    happens. The queue has a hard capacity; an offer past capacity
    comes back as a typed [Overload] rejection immediately, so a
    client flooding the service costs one response frame per excess
    request and zero memory growth. Draining flips the gate: every
    subsequent offer is rejected with [Draining] while the already
    accepted backlog is finished (or explicitly rejected back) by the
    server loop.

    Owned by the single server loop domain; not thread-safe. *)

type entry = {
  spec : Instance.spec;
  arrival_us : float;  (** wall stamp for latency accounting only *)
}

type t

val create : capacity:int -> t
(** [capacity >= 1]; raises [Invalid_argument] otherwise. *)

type decision = Enqueued | Shed of Instance.reject_reason

val offer : t -> now_us:float -> Instance.spec -> decision
(** Admit or shed one parsed, validated request. *)

val start_drain : t -> unit
(** Stop admitting; idempotent. Already queued entries stay queued. *)

val draining : t -> bool

val depth : t -> int
(** Entries admitted and not yet taken. *)

val accepted_total : t -> int
(** Entries ever admitted (monotonic). *)

val take_batch : t -> max:int -> entry list
(** Dequeue up to [max] entries, FIFO. *)
