(* Bounded admission queue. The capacity check is the service's
   overload story in one line: work either fits in the fixed backlog or
   is rejected with a typed reason the client can act on. Nothing here
   ever grows with offered load. *)

module Tel = Bap_telemetry.Telemetry

type entry = { spec : Instance.spec; arrival_us : float }

type t = {
  capacity : int;
  q : entry Queue.t;
  mutable draining : bool;
  mutable accepted : int;
}

type decision = Enqueued | Shed of Instance.reject_reason

let create ~capacity =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  { capacity; q = Queue.create (); draining = false; accepted = 0 }

let offer t ~now_us spec =
  if t.draining then begin
    Tel.Metrics.counter "serve.rejected.draining" 1;
    Shed Instance.Draining
  end
  else if Queue.length t.q >= t.capacity then begin
    Tel.Metrics.counter "serve.rejected.overload" 1;
    Shed Instance.Overload
  end
  else begin
    Queue.push { spec; arrival_us = now_us } t.q;
    t.accepted <- t.accepted + 1;
    Tel.Metrics.counter "serve.accepted" 1;
    Tel.Metrics.gauge_max "serve.queue_depth" (Queue.length t.q);
    Enqueued
  end

let start_drain t = t.draining <- true
let draining t = t.draining
let depth t = Queue.length t.q
let accepted_total t = t.accepted

let take_batch t ~max =
  let rec go acc k =
    if k = 0 || Queue.is_empty t.q then List.rev acc
    else go (Queue.pop t.q :: acc) (k - 1)
  in
  go [] (Stdlib.max 0 max)
