(** Service health accounting: latency quantiles and throughput.

    Latencies are recorded into power-of-two log buckets (64 of them,
    microsecond-indexed), which makes p50/p99 an O(64) scan with
    bounded relative error (a quantile is reported as its bucket's
    upper bound) and zero allocation on the hot path. Everything also
    feeds the telemetry metrics registry, so [--metrics-json] captures
    the same numbers machine-readably.

    Owned by the server loop domain; not thread-safe. *)

type t

val create : unit -> t

val record_latency : t -> us:float -> unit
(** One accepted instance's admission-to-response latency. *)

val count : t -> int

val quantile : t -> float -> int
(** [quantile t 0.99] in microseconds (bucket upper bound); 0 when
    empty. [q] outside [0,1] is clamped. *)

type summary = {
  completed : int;
  p50_us : int;
  p99_us : int;
  max_us : int;
  per_sec : float;
  heap_words : int;  (** major-heap size at summarize time *)
  compactions : int;  (** heap compactions since process start *)
}

val summarize : t -> wall_s:float -> summary
(** Also publishes [serve.latency_p50_us] / [serve.latency_p99_us],
    [serve.instances_per_sec], [serve.heap_words] and
    [serve.compactions] gauges to the registry. The heap fields come
    from a {!Bap_telemetry.Memprobe.snapshot} — a [Gc.quick_stat]
    behind the D002 boundary, cheap enough for every summary. *)

val pp_summary : Format.formatter -> summary -> unit
