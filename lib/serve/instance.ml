(* One agreement instance = one complete protocol execution, specified
   by (family, n, f, m, seed) and nothing else. The workload derivation
   is the exact construction the batch sweeps use
   (Bap_experiments.Common.make_workload seeded from the spec), so a
   served instance and a batch cell with the same parameters are the
   same computation — the chaos bench's byte-identity oracle rests on
   that.

   The adversary is the silent one on every family: the service's
   threat model is hostile *clients and load*, not a fresh protocol
   adversary per request; protocol-adversary sweeps stay the business
   of the experiment tables. *)

module C = Bap_experiments.Common
module Json = Bap_telemetry.Json
module Supervisor = Bap_exec.Supervisor

type family = Unauth | Auth | Es | Pk

type spec = { id : int; family : family; n : int; f : int; m : int; seed : int }
type metrics = { decided : int; rounds : int; msgs : int; agreement : bool }

type reject_reason =
  | Overload
  | Malformed of string
  | Invalid of string
  | Draining

type response =
  | Done of { id : int; metrics : metrics }
  | Degraded of { id : int; attempts : int }
  | Rejected of { id : int; reason : reject_reason }

let max_n = 256

let family_name = function
  | Unauth -> "unauth"
  | Auth -> "auth"
  | Es -> "es"
  | Pk -> "pk"

let family_of_name = function
  | "unauth" -> Some Unauth
  | "auth" -> Some Auth
  | "es" -> Some Es
  | "pk" -> Some Pk
  | _ -> None

let t_of family ~n =
  match family with
  | Auth -> max 1 ((9 * n / 20) - 1)
  | Unauth | Es | Pk -> (n - 1) / 3

let validate s =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if s.id < 0 then err "id must be >= 0, got %d" s.id
  else if s.n < 4 then err "n must be >= 4, got %d" s.n
  else if s.n > max_n then err "n must be <= %d, got %d" max_n s.n
  else begin
    let t = t_of s.family ~n:s.n in
    if s.f < 0 || s.f > t then
      err "f must be in [0, %d] for %s at n=%d, got %d" t
        (family_name s.family) s.n s.f
    else if s.m < 0 || s.m > s.n then err "m must be in [0, n], got %d" s.m
    else if s.seed < 0 then err "seed must be >= 0, got %d" s.seed
    else Ok ()
  end

let key s =
  Printf.sprintf "%s,n=%d,f=%d,m=%d,seed=%d" (family_name s.family) s.n s.f s.m
    s.seed

(* ---------- wire forms ---------- *)

let request_json s =
  Printf.sprintf "{\"id\":%d,\"family\":\"%s\",\"n\":%d,\"f\":%d,\"m\":%d,\"seed\":%d}"
    s.id (family_name s.family) s.n s.f s.m s.seed

let parse payload =
  match Json.parse payload with
  | exception Json.Parse msg -> Error (`Malformed msg)
  | j -> (
    let int k = Json.to_int (Json.member k j) in
    let id = Option.value ~default:(-1) (int "id") in
    match Json.to_string (Json.member "family" j) with
    | None -> Error (`Invalid (id, "missing or non-string field: family"))
    | Some fam -> (
      match family_of_name fam with
      | None -> Error (`Invalid (id, Printf.sprintf "unknown family %S" fam))
      | Some family -> (
        match (int "id", int "n", int "f") with
        | None, _, _ -> Error (`Invalid (id, "missing integer field: id"))
        | _, None, _ -> Error (`Invalid (id, "missing integer field: n"))
        | _, _, None -> Error (`Invalid (id, "missing integer field: f"))
        | Some id, Some n, Some f -> (
          let s =
            {
              id;
              family;
              n;
              f;
              m = Option.value ~default:0 (int "m");
              seed = Option.value ~default:0 (int "seed");
            }
          in
          match validate s with Ok () -> Ok s | Error msg -> Error (`Invalid (id, msg))))))

(* Admin frames share the wire with instance requests but are not
   instances: no admission, no journal record, no effect on the
   accepted/responded ledger. The shape is {"admin":"stats"}; anything
   else falls through to instance parsing, so a client typo still gets
   a typed Malformed/Invalid rejection rather than silence. *)
type admin = Stats

let parse_admin payload =
  match Json.parse payload with
  | exception Json.Parse _ -> None
  | j -> (
    match Json.to_string (Json.member "admin" j) with
    | Some "stats" -> Some Stats
    | Some _ | None -> None)

let reason_json = function
  | Overload -> "\"reason\":\"overload\""
  | Malformed d ->
    Printf.sprintf "\"reason\":\"malformed\",\"detail\":\"%s\"" (Json.escape d)
  | Invalid d ->
    Printf.sprintf "\"reason\":\"invalid\",\"detail\":\"%s\"" (Json.escape d)
  | Draining -> "\"reason\":\"draining\""

let response_to_json = function
  | Done { id; metrics = m } ->
    Printf.sprintf
      "{\"id\":%d,\"status\":\"ok\",\"decided\":%d,\"rounds\":%d,\"msgs\":%d,\"agreement\":%b}"
      id m.decided m.rounds m.msgs m.agreement
  | Degraded { id; attempts } ->
    Printf.sprintf "{\"id\":%d,\"status\":\"degraded\",\"attempts\":%d}" id attempts
  | Rejected { id; reason } ->
    Printf.sprintf "{\"id\":%d,\"status\":\"rejected\",%s}" id (reason_json reason)

let response_id payload =
  match Json.parse payload with
  | exception Json.Parse _ -> None
  | j -> Json.to_int (Json.member "id" j)

(* ---------- execution ---------- *)

(* Cooperative cancellation on every delivered edge: a supervised
   instance observes its watchdog deadline mid-round instead of only
   between attempts; outside supervision, tick is a no-op and the hook
   is the identity, so metrics and results are untouched. *)
let tick_network ~round:_ ~src:_ ~dst:_ msgs =
  Supervisor.tick ();
  msgs

let execute s =
  let t = t_of s.family ~n:s.n in
  let rng = C.Rng.create s.seed in
  let w =
    C.make_workload ~rng ~n:s.n ~t ~f:s.f ~target_misclassified:s.m ()
  in
  match s.family with
  | Unauth ->
    let o =
      C.S.run_unauth ~adversary:C.Adversary.silent ~network:tick_network ~t
        ~faulty:w.C.faulty ~inputs:w.C.inputs ~advice:w.C.advice ()
    in
    {
      decided = C.S.decision_round o;
      rounds = o.C.S.R.rounds;
      msgs = o.C.S.R.honest_sent;
      agreement =
        C.S.agreement o
        && C.S.unanimous_validity ~inputs:w.C.inputs ~faulty:w.C.faulty o;
    }
  | Auth ->
    let o, _ =
      C.S.run_auth
        ~adversary:(fun _ -> C.Adversary.silent)
        ~network:tick_network ~t ~faulty:w.C.faulty ~inputs:w.C.inputs
        ~advice:w.C.advice ()
    in
    {
      decided = C.S.decision_round o;
      rounds = o.C.S.R.rounds;
      msgs = o.C.S.R.honest_sent;
      agreement =
        C.S.agreement o
        && C.S.unanimous_validity ~inputs:w.C.inputs ~faulty:w.C.faulty o;
    }
  | Es | Pk ->
    let r =
      match s.family with
      | Es ->
        C.B.run_early_stopping ~adversary:C.Adversary.silent ~t
          ~faulty:w.C.faulty ~inputs:w.C.inputs ()
      | _ ->
        C.B.run_phase_king ~adversary:C.Adversary.silent ~t ~faulty:w.C.faulty
          ~inputs:w.C.inputs ()
    in
    {
      decided = r.C.B.decided_round;
      rounds = r.C.B.rounds;
      msgs = r.C.B.messages;
      agreement = r.C.B.agreement;
    }
