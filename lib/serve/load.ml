(* The load generator is also the oracle. It generates the workload
   deterministically, keeps its own record of exactly which bytes went
   onto the wire (including the chaos damage it inflicted), and then
   recomputes every spec serially to compare against what the service
   answered. The service under test never knows which of its clients
   is the auditor.

   Resilience (ISSUE 9): the socket client can reconnect with
   deterministic seeded backoff and retransmit unanswered requests by
   id — which is exactly what makes it the crash-restart oracle: a
   durable server that was SIGKILLed mid-load and resumed must answer
   the retransmits with bytes identical to a clean run, each id exactly
   once. *)

module Harness = Bap_chaos.Harness
module Json = Bap_telemetry.Json

type outcome = {
  sent : int;
  corrupted : int;
  disconnects : int;
  retransmits : int;  (* request frames sent again after a reconnect *)
  responses : int;
  ok : int;
  degraded : int;
  rejected : int;
  unanswered : int;
  duplicates : int;  (* extra responses for an already-answered id *)
  mismatches : int;
  per_sec : float;
  server : Server.stats option;
}

(* ---------- workload plan ---------- *)

let plan_specs ~instances ~families ~n =
  let families = if families = [] then [ Instance.Pk ] else families in
  let k = List.length families in
  List.init instances (fun i ->
      let family = List.nth families (i mod k) in
      let t = Instance.t_of family ~n in
      {
        Instance.id = i;
        family;
        n;
        f = i mod (t + 1);
        m = i mod 2;
        seed = (7 * i) + 1;
      })

type item = {
  spec : Instance.spec;
  wire : string;  (* frame bytes as they will hit the wire *)
  corrupt : bool;
  disconnect : bool;  (* close after a strict prefix of [wire] *)
  respond_disconnect : bool;
      (* send [wire] whole, then hang up before reading the response *)
}

let plan_items ?chaos ~instances ~families ~n () =
  plan_specs ~instances ~families ~n
  |> List.map (fun spec ->
         let payload = Instance.request_json spec in
         let key = string_of_int spec.Instance.id in
         let clean =
           {
             spec;
             wire = Frame.encode payload;
             corrupt = false;
             disconnect = false;
             respond_disconnect = false;
           }
         in
         match Option.map (fun h -> (h, Harness.frame_fault h ~key)) chaos with
         | None | Some (_, None) -> clean
         | Some (h, Some Harness.Corrupt_payload) ->
           let off, mask =
             Harness.corrupt_byte h ~key ~len:(String.length payload)
           in
           let b = Bytes.of_string payload in
           Bytes.set b off
             (Char.chr (Char.code (Bytes.get b off) lxor mask land 0xff));
           { clean with wire = Frame.encode (Bytes.to_string b); corrupt = true }
         | Some (_, Some Harness.Disconnect_mid_frame) ->
           { clean with disconnect = true }
         | Some (_, Some Harness.Disconnect_on_respond) ->
           { clean with respond_disconnect = true })

(* ---------- client-side IO ---------- *)

exception Server_gone

let rec write_all fd s pos len =
  if len > 0 then begin
    let k =
      try Unix.write_substring fd s pos len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
      | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
        raise Server_gone
    in
    write_all fd s (pos + k) (len - k)
  end

(* Read response frames until EOF. A client reader never trusts the
   server: garbage is absorbed by the codec and surfaces as counts. *)
let read_responses fd =
  let dec = Frame.decoder () in
  let buf = Bytes.create 65536 in
  let out = ref [] in
  let rec drain () =
    match Frame.next dec with
    | Frame.Frame p ->
      out := p :: !out;
      drain ()
    | Frame.Await | Frame.Oversized _ -> ()
  in
  let rec loop () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> ()
    | k ->
      Frame.feed dec buf ~pos:0 ~len:k;
      drain ();
      loop ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF), _, _) -> ()
  in
  loop ();
  List.rev !out

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* Deterministic seeded backoff: exponential base with a djb2 jitter,
   never a Random draw (D001). Same seed, same waits. *)
let djb2 s =
  String.fold_left (fun h c -> ((h * 33) + Char.code c) land max_int) 5381 s

let backoff_s ~seed ~attempt =
  let base = 0.05 *. float_of_int (1 lsl min attempt 5) in
  let jitter =
    float_of_int (djb2 (Printf.sprintf "%d|backoff|%d" seed attempt) mod 50)
    /. 1000.
  in
  Float.min 1.6 base +. jitter

(* ---------- the oracle ---------- *)

let response_parts payload =
  match Json.parse payload with
  | j ->
    (Json.to_int (Json.member "id" j), Json.to_string (Json.member "status" j))
  | exception Json.Parse _ -> (None, None)

(* The reference result: what a serial batch run of this spec produces,
   rendered exactly as the service renders it. *)
let expected_ok spec =
  Instance.response_to_json
    (Instance.Done { id = spec.Instance.id; metrics = Instance.execute spec })

type audit = {
  a_ok : int;
  a_degraded : int;
  a_rejected : int;
  a_unanswered : int;
  a_duplicates : int;
  a_mismatches : int;
  a_responses : int;
}

let audit_responses ~sent_items ~payloads =
  let by_id = Hashtbl.create 997 in
  List.iter
    (fun p ->
      match response_parts p with
      | Some id, Some st -> Hashtbl.add by_id id (st, p)
      | _ -> Hashtbl.add by_id min_int ("unparseable", p))
    payloads;
  List.fold_left
    (fun a (it : item) ->
      if it.corrupt then a
      else
        match Hashtbl.find_all by_id it.spec.Instance.id with
        | [] -> { a with a_unanswered = a.a_unanswered + 1 }
        | entries ->
          let expect = lazy (expected_ok it.spec) in
          (* With chaos corruption on, a flipped id digit can alias a
             clean id: judge by the best entry, not every entry. *)
          let score (st, p) =
            match st with
            | "ok" when p = Lazy.force expect -> 3
            | "degraded" -> 2
            | "rejected" -> 1
            | _ -> 0
          in
          let best =
            List.fold_left
              (fun acc e -> if score e > score acc then e else acc)
              (List.hd entries) (List.tl entries)
          in
          let a =
            { a with a_duplicates = a.a_duplicates + List.length entries - 1 }
          in
          (match score best with
          | 3 -> { a with a_ok = a.a_ok + 1 }
          | 2 -> { a with a_degraded = a.a_degraded + 1 }
          | 1 -> { a with a_rejected = a.a_rejected + 1 }
          | _ -> { a with a_mismatches = a.a_mismatches + 1 }))
    {
      a_ok = 0;
      a_degraded = 0;
      a_rejected = 0;
      a_unanswered = 0;
      a_duplicates = 0;
      a_mismatches = 0;
      a_responses = List.length payloads;
    }
    sent_items

let outcome_of ~sent_items ~payloads ~disconnects ~retransmits ~per_sec ~server
    =
  let a = audit_responses ~sent_items ~payloads in
  {
    sent = List.length sent_items;
    corrupted = List.length (List.filter (fun i -> i.corrupt) sent_items);
    disconnects;
    retransmits;
    responses = a.a_responses;
    ok = a.a_ok;
    degraded = a.a_degraded;
    rejected = a.a_rejected;
    unanswered = a.a_unanswered;
    duplicates = a.a_duplicates;
    mismatches = a.a_mismatches;
    per_sec;
    server;
  }

let failures ?(chaos = false) ?(exactly_once = false) o =
  let fail = ref [] in
  let add fmt = Printf.ksprintf (fun s -> fail := s :: !fail) fmt in
  if o.mismatches > 0 then
    add "%d ok response(s) differ from the serial batch bytes" o.mismatches;
  if exactly_once then begin
    (* The crash-restart oracle: after reconnect + retransmit against a
       durable server, every clean instance is answered — exactly once.
       A duplicate can only be counted against a clean run (corruption
       can alias an innocent id). *)
    if o.unanswered > 0 then
      add "%d instance(s) never answered after retransmit" o.unanswered;
    if o.corrupted = 0 && o.duplicates > 0 then
      add "%d duplicate response(s) for already-answered id(s)" o.duplicates
  end;
  if not chaos then begin
    (* Completeness is only ours to assert in-process, where the server
       outlives the plan by construction. An external daemon may be
       drained mid-load (the CI smoke SIGTERMs it on purpose): frames
       still in flight at that moment were never accepted, and the
       server-side [dropped=0] line is the authority on the ones that
       were. *)
    if o.unanswered > 0 && o.server <> None then
      add "%d sent instance(s) never answered" o.unanswered;
    if o.degraded > 0 then
      add "%d instance(s) degraded without chaos injection" o.degraded;
    match o.server with
    | Some s ->
      if s.Server.dropped_disconnect > 0 then
        add "server dropped %d accepted instance(s)" s.Server.dropped_disconnect;
      if s.Server.accepted <> s.Server.responded then
        add "server accepted %d but responded %d" s.Server.accepted
          s.Server.responded
    | None -> ()
  end;
  List.rev !fail

let pp ppf o =
  Format.fprintf ppf
    "sent %d (corrupt %d, disconnects %d, retransmits %d) -> responses %d: ok \
     %d degraded %d rejected %d unanswered %d duplicates %d mismatches %d at \
     %.0f/s"
    o.sent o.corrupted o.disconnects o.retransmits o.responses o.ok o.degraded
    o.rejected o.unanswered o.duplicates o.mismatches o.per_sec

(* ---------- in-process mode ---------- *)

let run_inproc ?chaos ~config ~instances ~families ~n () =
  ignore_sigpipe ();
  let items = plan_items ?chaos ~instances ~families ~n () in
  let c2s_r, c2s_w = Unix.pipe ()
  and s2c_r, s2c_w = Unix.pipe () in
  (* Client halves run on their own domains; the server loop keeps the
     calling domain, exactly as in production. A chaos disconnect in
     pipe mode is a torn tail: the writer stops mid-frame and hangs
     up, which is all a pipe can express; a respond-disconnect sends
     its frame whole and then hangs up. *)
  let writer =
    Domain.spawn (fun () ->
        let sent = ref [] in
        let disconnects = ref 0 in
        (try
           List.iter
             (fun it ->
               if it.disconnect then begin
                 incr disconnects;
                 write_all c2s_w it.wire 0
                   (max 1 (String.length it.wire / 2));
                 raise Exit
               end
               else if it.respond_disconnect then begin
                 incr disconnects;
                 write_all c2s_w it.wire 0 (String.length it.wire);
                 sent := it :: !sent;
                 raise Exit
               end
               else begin
                 write_all c2s_w it.wire 0 (String.length it.wire);
                 sent := it :: !sent
               end)
             items
         with Exit | Server_gone -> ());
        (try Unix.close c2s_w with Unix.Unix_error _ -> ());
        (List.rev !sent, !disconnects))
  in
  let reader = Domain.spawn (fun () -> read_responses s2c_r) in
  let stats = Server.serve_fds config ~in_fd:c2s_r ~out_fd:s2c_w in
  (try Unix.close c2s_r with Unix.Unix_error _ -> ());
  (try Unix.close s2c_w with Unix.Unix_error _ -> ());
  let sent_items, disconnects = Domain.join writer in
  let payloads = Domain.join reader in
  (try Unix.close s2c_r with Unix.Unix_error _ -> ());
  outcome_of ~sent_items ~payloads ~disconnects ~retransmits:0
    ~per_sec:stats.Server.health.Health.per_sec ~server:(Some stats)

(* ---------- socket client mode ---------- *)

let run_socket ?chaos ?(reconnect = 0) ?(retransmit = 0) ?(seed = 0) ~path
    ~instances ~families ~n () =
  ignore_sigpipe ();
  let items = plan_items ?chaos ~instances ~families ~n () in
  let started = Unix.gettimeofday () in
  let collected = ref [] in
  let reader = ref None in
  let retransmits = ref 0 in
  let connect_once () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () ->
      reader := Some (Domain.spawn (fun () -> read_responses fd));
      fd
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  (* Reconnects ride the seeded backoff: the server of a crash-resume
     run is allowed to be dead for a few hundred milliseconds while it
     restarts, and two runs of the same seed wait out the same
     schedule. *)
  let connect () =
    let rec go attempt =
      match connect_once () with
      | fd -> fd
      | exception
          Unix.Unix_error
            ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET), _, _)
        when attempt < reconnect ->
        Unix.sleepf (backoff_s ~seed ~attempt);
        go (attempt + 1)
    in
    go 0
  in
  (* The reader must be joined before its fd is closed: close would
     recycle the fd number under a domain still blocked in [read].
     Shutdown first — that is what wakes the blocked read. *)
  let join_reader () =
    match !reader with
    | None -> ()
    | Some d ->
      collected := Domain.join d @ !collected;
      reader := None
  in
  let sent = ref [] in
  let sent_ids = Hashtbl.create 997 in
  let disconnects = ref 0 in
  let fd = ref (connect ()) in
  let drop_conn ~how =
    (try Unix.shutdown !fd how with Unix.Unix_error _ -> ());
    join_reader ();
    try Unix.close !fd with Unix.Unix_error _ -> ()
  in
  let note_sent it =
    if not (Hashtbl.mem sent_ids it.spec.Instance.id) then begin
      Hashtbl.replace sent_ids it.spec.Instance.id ();
      sent := it :: !sent
    end
  in
  (* One frame, surviving mid-write server death when the reconnect
     budget allows: hang up, back off, reconnect, write the frame again
     from the start (the server sees the torn prefix as a torn stream;
     the durable server dedups the re-sent frame by key). *)
  let send_frame wire =
    let rec go attempt =
      try write_all !fd wire 0 (String.length wire)
      with Server_gone ->
        if attempt >= reconnect then raise Server_gone;
        drop_conn ~how:Unix.SHUTDOWN_ALL;
        Unix.sleepf (backoff_s ~seed ~attempt);
        fd := connect ();
        incr retransmits;
        go (attempt + 1)
    in
    go 0
  in
  (try
     List.iter
       (fun it ->
         if it.disconnect then begin
           (* A real mid-frame hangup: strict prefix, then a new
              connection for the rest of the plan. Without a journal,
              the frames the server had accepted but not answered
              become its dropped_disconnect count, not ours. *)
           incr disconnects;
           (try write_all !fd it.wire 0 (max 1 (String.length it.wire / 2))
            with Server_gone -> ());
           drop_conn ~how:Unix.SHUTDOWN_ALL;
           fd := connect ()
         end
         else if it.respond_disconnect then begin
           (* The frame arrives whole; the client is gone before the
              answer can be written. A durable server journals that
              answer and replays it to the retransmit. *)
           incr disconnects;
           (try write_all !fd it.wire 0 (String.length it.wire)
            with Server_gone -> ());
           note_sent it;
           drop_conn ~how:Unix.SHUTDOWN_ALL;
           fd := connect ()
         end
         else begin
           send_frame it.wire;
           note_sent it
         end)
       items;
     (* Half-close: the server sees EOF, flushes its backlog, and the
        reader domain still gets every response before its own EOF. *)
     drop_conn ~how:Unix.SHUTDOWN_SEND
   with Server_gone | Unix.Unix_error _ -> drop_conn ~how:Unix.SHUTDOWN_ALL);
  (* Retransmit rounds: resend every clean item whose id has no
     response yet, on a fresh connection each round. Against a durable
     server every round is answered from the journal (or by the
     recovered dispatch), so one round usually empties the set. *)
  (try
     let round = ref 0 in
     while !round < retransmit do
       incr round;
       let answered = Hashtbl.create 997 in
       List.iter
         (fun p ->
           match response_parts p with
           | Some id, Some _ -> Hashtbl.replace answered id ()
           | _ -> ())
         !collected;
       let missing =
         List.filter
           (fun (it : item) ->
             (not it.corrupt)
             && not (Hashtbl.mem answered it.spec.Instance.id))
           items
       in
       if missing = [] then round := retransmit
       else begin
         fd := connect ();
         List.iter
           (fun (it : item) ->
             let wire = Frame.encode (Instance.request_json it.spec) in
             send_frame wire;
             incr retransmits;
             note_sent it)
           missing;
         drop_conn ~how:Unix.SHUTDOWN_SEND
       end
     done
   with Server_gone | Unix.Unix_error _ -> drop_conn ~how:Unix.SHUTDOWN_ALL);
  let wall = Unix.gettimeofday () -. started in
  let payloads = !collected in
  let per_sec =
    if wall <= 0. then 0. else float_of_int (List.length payloads) /. wall
  in
  outcome_of ~sent_items:(List.rev !sent) ~payloads ~disconnects:!disconnects
    ~retransmits:!retransmits ~per_sec ~server:None
