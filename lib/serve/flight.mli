(** Flight recorder: a bounded ring of recent service events.

    The serve loop records one entry per admission outcome, response,
    quarantine, and observed signal; the ring keeps the last [capacity]
    of them and overwrites the oldest beyond that, so memory stays
    constant over any uptime. {!dump} renders the retained window as a
    human black box (with a GC and {!Health} snapshot on top), and
    {!to_json} is the payload of the typed [Stats] admin frame — a live
    daemon is inspectable without a restart, and a quarantine leaves a
    readable trail next to the instance journal.

    Owned by the server loop domain; not thread-safe. *)

type entry = {
  seq : int;  (** 0-based position in the recorded stream, never reused *)
  wall_us : float;  (** wall-clock stamp at record time *)
  kind : string;  (** e.g. ["accept"], ["respond"], ["quarantine"] *)
  key : string;  (** instance key, signal name, or client id *)
  detail : string;  (** free-form; may be empty *)
}

type t

val create : ?capacity:int -> unit -> t
(** Ring of the last [capacity] (default 256, min 1) events. *)

val capacity : t -> int

val record : t -> kind:string -> key:string -> detail:string -> unit
(** Append one event, overwriting the oldest when full. One array
    store; cheap enough for every admission. *)

val recorded : t -> int
(** Events recorded over the recorder's lifetime (not just retained). *)

val retained : t -> int
(** Events currently held: [min (recorded t) (capacity t)]. *)

val dropped : t -> int
(** Events overwritten by wraparound: [recorded - retained]. *)

val entries : t -> entry list
(** The retained window, oldest first. *)

val dump : t -> gc:Bap_telemetry.Memprobe.snapshot -> health:Health.summary -> string
(** Human black-box text: a header with recorded/retained/overwritten
    counts, the GC and health snapshots, then one line per retained
    event with its offset from the oldest retained stamp. *)

val to_json : t -> string
(** [{"recorded":N,"dropped":N,"entries":[...]}] — the flight section
    of the [Stats] admin frame. *)
