(** Length-prefixed frame codec for the agreement service.

    A frame is a 4-byte big-endian payload length followed by the
    payload bytes (JSON, by convention — the codec itself is
    payload-agnostic). The length prefix is what lets the stream
    survive a garbage payload: the decoder always knows where the next
    frame starts, so one unparseable instance degrades one response,
    never the connection.

    Two failure shapes are typed instead of raised:

    - {e torn} input — the stream ends mid-prefix or mid-payload, the
      shape a killed client or a mid-write disconnect leaves behind.
      Like the journal's torn tail, the valid prefix of frames is
      delivered and the ragged remainder is counted, not fatal.
    - {e oversized} input — a length prefix above [max_len]. Since the
      bytes that follow cannot be trusted to be a frame boundary, the
      decoder refuses to resynchronise: the connection is poisoned and
      must be dropped (after a typed rejection), never buffered. *)

val default_max_len : int
(** 1 MiB. *)

val header_len : int
(** 4: the big-endian length prefix. *)

val encode : string -> string
(** [encode payload] is the wire form: 4-byte big-endian length +
    payload. Raises [Invalid_argument] on payloads whose length cannot
    be represented (>= 2^31). *)

type decoder
(** Incremental decoder over a byte stream fed in arbitrary chunks. *)

val decoder : ?max_len:int -> unit -> decoder
(** A fresh decoder; [max_len] (default {!default_max_len}) bounds the
    payload length it will accept. *)

type next =
  | Frame of string  (** one complete payload *)
  | Await  (** no complete frame buffered; feed more bytes *)
  | Oversized of int
      (** a length prefix above [max_len]; the stream cannot be
          resynchronised and the decoder stays poisoned *)

val feed : decoder -> bytes -> pos:int -> len:int -> unit
(** Append a chunk of stream bytes. Bytes fed after {!next} returned
    [Oversized] are discarded. *)

val feed_string : decoder -> string -> unit

val next : decoder -> next
(** Pull the next complete frame, if any. *)

val buffered : decoder -> int
(** Bytes fed but not yet consumed by a complete frame — nonzero at
    end-of-stream means the stream was torn mid-frame. *)

val poisoned : decoder -> bool
(** Whether the decoder saw an oversized prefix and refuses more. *)

type tail = Clean | Torn of int | Oversized_tail of int

val decode_all : ?max_len:int -> string -> string list * tail
(** One-shot decode of a complete stream capture: every whole frame in
    order, plus how the stream ended ([Torn n] = [n] trailing bytes
    that do not form a frame). Used by the codec tests; the server uses
    the incremental decoder. *)
