(* Batch dispatcher: admitted entries -> supervised pool tasks ->
   responses in submission order.

   The order guarantee leans on Pool.run_all's contract that result
   slot i belongs to task i whatever domain ran it — pinned by the
   on_result regression test in test_exec.ml — so the response stream
   never leaks the work-stealing schedule. *)

module Pool = Bap_exec.Pool
module Supervisor = Bap_exec.Supervisor
module Tel = Bap_telemetry.Telemetry

type t = { pool : Pool.t; supervisor : Supervisor.t }

let create ~pool ~supervisor = { pool; supervisor }

let run t entries =
  let arr = Array.of_list entries in
  let tasks =
    Array.map
      (fun (e : Admission.entry) () ->
        Supervisor.supervise t.supervisor ~key:(Instance.key e.spec) (fun () ->
            Instance.execute e.spec))
      arr
  in
  let results = Pool.run_all t.pool tasks in
  List.mapi
    (fun i (e : Admission.entry) ->
      let id = e.spec.Instance.id in
      let response =
        match results.(i) with
        | Ok (Supervisor.Completed { value; _ }) ->
          Tel.Metrics.counter "serve.completed" 1;
          Instance.Done { id; metrics = value }
        | Ok (Supervisor.Quarantined { ledger }) ->
          Tel.Metrics.counter "serve.degraded" 1;
          Instance.Degraded { id; attempts = List.length ledger }
        | Error e ->
          (* Unreachable while supervise never raises; folded into the
             same typed degradation rather than killing the server. *)
          Tel.Metrics.counter "serve.degraded" 1;
          ignore e;
          Instance.Degraded { id; attempts = 0 }
      in
      (e, response))
    (Array.to_list arr)
