(* Log-bucket latency histogram: bucket i holds observations with
   ceil(log2(us)) = i, so 64 int refs cover every representable
   latency and a quantile costs one scan. The price is resolution —
   a quantile is its bucket's upper bound, i.e. within 2x of exact —
   which is the right trade for a hot path that must not allocate. *)

module Tel = Bap_telemetry.Telemetry
module Memprobe = Bap_telemetry.Memprobe

let buckets = 64

type t = { counts : int array; mutable total : int; mutable max_us : int }

let create () = { counts = Array.make buckets 0; total = 0; max_us = 0 }

let bucket_of_us us =
  if us <= 1 then 0
  else
    (* ceil(log2 us), capped into the last bucket. *)
    let rec go b v = if v <= 1 || b = buckets - 1 then b else go (b + 1) (v lsr 1) in
    go 0 (us - 1) + 1 |> min (buckets - 1)

let record_latency t ~us =
  let us = int_of_float (Float.max 0. us) in
  t.counts.(bucket_of_us us) <- t.counts.(bucket_of_us us) + 1;
  t.total <- t.total + 1;
  if us > t.max_us then t.max_us <- us;
  Tel.Metrics.observe "serve.latency_us" us

let count t = t.total

let quantile t q =
  if t.total = 0 then 0
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = int_of_float (Float.round (q *. float_of_int t.total)) in
    let rank = max 1 (min t.total rank) in
    let rec go b seen =
      if b >= buckets then t.max_us
      else
        let seen = seen + t.counts.(b) in
        if seen >= rank then (if b = 0 then 1 else 1 lsl b) else go (b + 1) seen
    in
    min (go 0 0) t.max_us
  end

type summary = {
  completed : int;
  p50_us : int;
  p99_us : int;
  max_us : int;
  per_sec : float;
  heap_words : int;
  compactions : int;
}

let summarize t ~wall_s =
  let gc = Memprobe.snapshot () in
  let s =
    {
      completed = t.total;
      p50_us = quantile t 0.5;
      p99_us = quantile t 0.99;
      max_us = t.max_us;
      per_sec =
        (if wall_s <= 0. then 0. else float_of_int t.total /. wall_s);
      heap_words = gc.Memprobe.heap_words;
      compactions = gc.Memprobe.compactions;
    }
  in
  Tel.Metrics.gauge_max "serve.latency_p50_us" s.p50_us;
  Tel.Metrics.gauge_max "serve.latency_p99_us" s.p99_us;
  Tel.Metrics.gauge_max "serve.instances_per_sec" (int_of_float s.per_sec);
  Tel.Metrics.gauge_max "serve.heap_words" s.heap_words;
  Tel.Metrics.gauge_max "serve.compactions" s.compactions;
  s

let pp_summary ppf s =
  Format.fprintf ppf
    "%d instance(s), %.0f/s, latency p50 %dus p99 %dus max %dus, heap %dw, \
     %d compaction(s)"
    s.completed s.per_sec s.p50_us s.p99_us s.max_us s.heap_words
    s.compactions
