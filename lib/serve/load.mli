(** Load generator and byte-identity oracle for the serve loop.

    Drives a stream of generated instances at a server — in-process
    over pipes (the server runs on the calling domain, the client on
    two spawned ones), or as a client of an external daemon's socket —
    and checks the one property chaos must not be able to break:
    {b every [ok] response the service emits carries exactly the bytes
    a serial batch recomputation of that spec produces}.

    Chaos, when given a {!Bap_chaos.Harness.t}, attacks both sides:
    the client corrupts payload bytes and disconnects mid-frame on the
    wire (socket mode), while the server's supervisor gets the same
    schedule's crash/hang injections. Corrupted frames are tracked by
    the client and exempted from the oracle — a flipped byte may still
    parse as a {e different valid spec}, so nothing useful can be
    asserted about its response beyond the server surviving it. *)

type outcome = {
  sent : int;  (** frames fully written to the wire *)
  corrupted : int;  (** frames sent with a chaos-flipped payload byte *)
  disconnects : int;  (** chaos connection closes (mid-frame or on-respond) *)
  retransmits : int;  (** request frames sent again after a reconnect *)
  responses : int;  (** response frames read back *)
  ok : int;
  degraded : int;
  rejected : int;
  unanswered : int;  (** fully-sent clean frames with no response *)
  duplicates : int;  (** extra responses for an already-answered id *)
  mismatches : int;  (** ok responses differing from the batch bytes *)
  per_sec : float;  (** server-side rate in-process, client-side over a socket *)
  server : Server.stats option;  (** in-process mode only *)
}

val plan_specs :
  instances:int -> families:Instance.family list -> n:int -> Instance.spec list
(** The deterministic workload: instance [i] cycles through [families],
    sweeps [f] over [0..t] and advice quality [m] over [0..1], seeded
    by its index. Same arguments, same specs — the anchor of every
    cross-jobs and cross-run comparison. *)

val run_inproc :
  ?chaos:Bap_chaos.Harness.t ->
  config:Server.config ->
  instances:int ->
  families:Instance.family list ->
  n:int ->
  unit ->
  outcome
(** Serve the plan over a pipe pair. Strict oracle when [chaos] is
    absent: every sent frame gets exactly one response, every response
    is [ok] and byte-identical, and the server reports zero drops.
    Under chaos only byte-identity (on clean frames) and server
    survival are asserted; sheds, degrades, and drops are counted and
    reported. *)

val run_socket :
  ?chaos:Bap_chaos.Harness.t ->
  ?reconnect:int ->
  ?retransmit:int ->
  ?seed:int ->
  path:string ->
  instances:int ->
  families:Instance.family list ->
  n:int ->
  unit ->
  outcome
(** Drive an external daemon. The daemon's lifetime is not ours (the
    CI smoke SIGTERMs it mid-load), so completeness is reported rather
    than asserted — but byte-identity of every [ok] response remains a
    hard check. Chaos disconnects really close the socket (mid-frame
    or after the frame, before the response) and reconnect.

    [reconnect] (default 0) is the budget of reconnect attempts per
    failure, waited out with deterministic seeded backoff ([seed]):
    the client of a crash-resume run survives the server's restart
    window. [retransmit] (default 0) is the number of rounds in which
    every clean item whose id is still unanswered is re-sent on a
    fresh connection — against a durable server the journal answers
    them, each exactly once. *)

val failures : ?chaos:bool -> ?exactly_once:bool -> outcome -> string list
(** The oracle verdict: human-readable failure lines, empty on pass.
    [chaos] relaxes completeness exactly as documented above;
    [exactly_once] tightens it into the crash-restart oracle — every
    clean instance answered ([unanswered = 0] even under chaos) and,
    when nothing was corrupted, answered exactly once
    ([duplicates = 0]). *)

val pp : Format.formatter -> outcome -> unit
