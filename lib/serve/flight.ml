(* Flight recorder: a bounded in-memory ring of recent service events —
   the daemon's black box. Recording is one array store and one counter
   bump (no allocation beyond the entry itself, no IO), so every
   admission, response, and quarantine can afford a record. The ring is
   only rendered on demand: a SIGUSR1 dump, a quarantine, or a typed
   [Stats] admin frame.

   Owned by the server loop domain; not thread-safe. Signal handlers
   never touch it — they flip an atomic flag and the loop records on
   its own next head. Wall stamps are fine here: lib/serve is inside
   the D002 clock allowlist, and a black box without timestamps is not
   much of a black box. *)

module Memprobe = Bap_telemetry.Memprobe
module Json = Bap_telemetry.Json

type entry = {
  seq : int;
  wall_us : float;
  kind : string;
  key : string;
  detail : string;
}

type t = { ring : entry array; capacity : int; mutable total : int }

let dummy = { seq = -1; wall_us = 0.; kind = ""; key = ""; detail = "" }

let create ?(capacity = 256) () =
  let capacity = max 1 capacity in
  { ring = Array.make capacity dummy; capacity; total = 0 }

let capacity t = t.capacity

let record t ~kind ~key ~detail =
  let e =
    {
      seq = t.total;
      wall_us = Unix.gettimeofday () *. 1e6;
      kind;
      key;
      detail;
    }
  in
  t.ring.(t.total mod t.capacity) <- e;
  t.total <- t.total + 1

let recorded t = t.total
let retained t = min t.total t.capacity
let dropped t = t.total - retained t

let entries t =
  let n = retained t in
  List.init n (fun i -> t.ring.((t.total - n + i) mod t.capacity))

let dump t ~gc ~health =
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  line "[flight] %d event(s) recorded, %d retained (capacity %d, %d overwritten)"
    t.total (retained t) t.capacity (dropped t);
  line
    "[flight] gc: minor=%.0fw promoted=%.0fw major=%.0fw heap=%dw \
     compactions=%d collections=%d/%d"
    gc.Memprobe.minor_words gc.Memprobe.promoted_words gc.Memprobe.major_words
    gc.Memprobe.heap_words gc.Memprobe.compactions gc.Memprobe.minor_collections
    gc.Memprobe.major_collections;
  line "[flight] health: %s" (Format.asprintf "%a" Health.pp_summary health);
  let es = entries t in
  let t0 = match es with e :: _ -> e.wall_us | [] -> 0. in
  List.iter
    (fun e ->
      line "[flight]   #%d +%.3fms %-10s %s%s" e.seq
        ((e.wall_us -. t0) /. 1e3)
        e.kind e.key
        (if e.detail = "" then "" else " (" ^ e.detail ^ ")"))
    es;
  Buffer.contents b

let entry_json e =
  Printf.sprintf
    "{\"seq\":%d,\"wall_us\":%.0f,\"kind\":\"%s\",\"key\":\"%s\",\"detail\":\"%s\"}"
    e.seq e.wall_us (Json.escape e.kind) (Json.escape e.key)
    (Json.escape e.detail)

let to_json t =
  Printf.sprintf "{\"recorded\":%d,\"dropped\":%d,\"entries\":[%s]}" t.total
    (dropped t)
    (String.concat "," (List.map entry_json (entries t)))
