(* Length-prefixed frames: 4-byte big-endian payload length + payload.

   The decoder is deliberately dumb about payload contents — framing
   and parsing fail independently. A garbage payload costs one typed
   rejection; only a length prefix above the cap poisons the stream,
   because past that point no byte can be trusted to be a boundary.

   Buffer discipline: fed bytes accumulate in one Buffer with a read
   offset; the consumed prefix is compacted away once it crosses a
   threshold, so a long-lived connection never grows its buffer beyond
   (largest frame + one chunk). *)

let default_max_len = 1 lsl 20
let header_len = 4

let encode payload =
  let n = String.length payload in
  if n >= 0x40000000 then invalid_arg "Frame.encode: payload too large";
  let b = Bytes.create (header_len + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string payload 0 b header_len n;
  Bytes.unsafe_to_string b

type decoder = {
  max_len : int;
  buf : Buffer.t;
  mutable off : int; (* consumed prefix of [buf] *)
  mutable dead : bool; (* oversized prefix seen; no resync possible *)
}

type next = Frame of string | Await | Oversized of int

let decoder ?(max_len = default_max_len) () =
  { max_len; buf = Buffer.create 4096; off = 0; dead = false }

let feed d b ~pos ~len = if not d.dead then Buffer.add_subbytes d.buf b pos len
let feed_string d s = if not d.dead then Buffer.add_string d.buf s

let buffered d = Buffer.length d.buf - d.off
let poisoned d = d.dead

(* Drop the consumed prefix once it dominates the buffer: O(1) amortised. *)
let compact d =
  if d.off > 65536 && d.off * 2 > Buffer.length d.buf then begin
    let rest = Buffer.sub d.buf d.off (Buffer.length d.buf - d.off) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.off <- 0
  end

let peek_len d =
  let at i = Char.code (Buffer.nth d.buf (d.off + i)) in
  (at 0 lsl 24) lor (at 1 lsl 16) lor (at 2 lsl 8) lor at 3

let next d =
  if d.dead then Oversized d.max_len
  else if buffered d < header_len then Await
  else begin
    let len = peek_len d in
    if len > d.max_len then begin
      d.dead <- true;
      Buffer.clear d.buf;
      d.off <- 0;
      Oversized len
    end
    else if buffered d < header_len + len then Await
    else begin
      let payload = Buffer.sub d.buf (d.off + header_len) len in
      d.off <- d.off + header_len + len;
      compact d;
      Frame payload
    end
  end

type tail = Clean | Torn of int | Oversized_tail of int

let decode_all ?max_len s =
  let d = decoder ?max_len () in
  feed_string d s;
  let rec go acc =
    match next d with
    | Frame p -> go (p :: acc)
    | Await ->
      let tail = if buffered d = 0 then Clean else Torn (buffered d) in
      (List.rev acc, tail)
    | Oversized n -> (List.rev acc, Oversized_tail n)
  in
  go []
