(** Supervised fan-out of admitted instances over the domain pool.

    A batch of admitted entries becomes one {!Bap_exec.Pool.run_all}
    batch of supervised thunks: each instance runs under the
    supervisor's watchdog deadline with deterministic seeded retry, and
    an instance that exhausts its budget comes back as a [Degraded]
    response — the service-level analogue of the sweep engine's
    quarantine. Responses are returned in submission order, so the
    reply stream is independent of the work-stealing schedule. *)

type t

val create : pool:Bap_exec.Pool.t -> supervisor:Bap_exec.Supervisor.t -> t
(** The pool and supervisor are owned by the caller (the server),
    which shuts them down on drain. *)

val run : t -> Admission.entry list -> (Admission.entry * Instance.response) list
(** Execute a batch; one response per entry, in entry order. Never
    raises from instance code: crashes and timeouts retry, then
    degrade. *)
