(** Agreement instances: the service's unit of work and its wire forms.

    An instance is one complete Byzantine-agreement execution — a
    protocol family plus the parameters that close over everything the
    run depends on (n, f, advice quality, seed). {!execute} is a pure
    function of the spec: the dispatcher running it on any pool domain,
    a batch oracle recomputing it serially, and a resubmitted duplicate
    all produce the same {!metrics}, which is what lets the chaos bench
    assert served responses byte-identical to batch runs.

    Requests and responses travel as JSON payloads inside
    {!Frame}-encoded frames. Parsing distinguishes {e malformed} (not
    JSON / wrong shape — nothing to correlate a response to beyond a
    placeholder id) from {e invalid} (well-formed but outside the
    service envelope — rejected with the client's own id), so one bad
    frame degrades exactly one response. *)

type family =
  | Unauth  (** Alg 1 wrapper, unauthenticated stack (Thm 11) *)
  | Auth  (** Alg 1 wrapper, authenticated stack (Thm 12) *)
  | Es  (** early-stopping phase-king baseline *)
  | Pk  (** plain phase-king baseline *)

type spec = {
  id : int;  (** client correlation id, echoed in the response *)
  family : family;
  n : int;
  f : int;  (** actual faulty processes, [0 <= f <= t] *)
  m : int;  (** target misclassified processes (advice-quality knob) *)
  seed : int;  (** workload RNG seed *)
}

type metrics = { decided : int; rounds : int; msgs : int; agreement : bool }

type reject_reason =
  | Overload  (** admission queue full: shed, never buffered *)
  | Malformed of string  (** frame payload was not a valid request *)
  | Invalid of string  (** parsed, but outside the service envelope *)
  | Draining  (** service is shutting down; resubmit elsewhere *)

type response =
  | Done of { id : int; metrics : metrics }
  | Degraded of { id : int; attempts : int }
      (** the instance exhausted its supervised retry budget and was
          quarantined; the service stays up *)
  | Rejected of { id : int; reason : reject_reason }
      (** [id] is [-1] when the request was too malformed to carry one *)

val max_n : int
(** Largest accepted [n] (an instance is O(n^2)+ simulation work; the
    envelope is part of overload protection). *)

val t_of : family -> n:int -> int
(** The fault threshold the stack is instantiated with — [(n-1)/3]
    except [Auth]'s [9n/20 - 1]. *)

val validate : spec -> (unit, string) result

val family_name : family -> string

val key : spec -> string
(** Canonical identity for supervision, chaos schedules, and dedup:
    every parameter the result depends on, excluding the client id. *)

val parse : string -> (spec, [ `Malformed of string | `Invalid of int * string ]) result
(** Parse and validate one frame payload. *)

type admin = Stats  (** [{"admin":"stats"}]: introspection, not work *)

val parse_admin : string -> admin option
(** Recognise an admin frame. Checked before {!parse}: an admin frame
    is answered from server state (counters, health, GC, flight
    recorder) without touching admission or the journal. [None] means
    "not an admin frame" — the payload then takes the instance path. *)

val execute : spec -> metrics
(** Run the instance to completion. Pure: same spec, same metrics, on
    any domain, at any [--jobs]. Calls [Supervisor.tick] on every
    network edge, so a supervised run observes its deadline mid-round
    while an unsupervised run is unaffected (tick is a no-op there). *)

val request_json : spec -> string
(** The canonical request payload for this spec — what a well-behaved
    client (the load generator, the docs example) puts in a frame. *)

val response_to_json : response -> string
(** Stable rendering: byte-identical responses for equal values. *)

val response_id : string -> int option
(** Correlation id of a response payload, if it parses. *)
