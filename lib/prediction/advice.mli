(** Classification-prediction bit vectors.

    An advice vector [a] for a system of [n] processes assigns each
    process [j] a bit: [get a j = true] means "[p_j] is predicted honest"
    (the paper's [a_i\[j\] = 1]); [false] means predicted faulty. *)

type t

val length : t -> int

val make : int -> bool -> t
(** [make n bit] is the constant vector. *)

val init : int -> (int -> bool) -> t
val get : t -> int -> bool
val set : t -> int -> bool -> t
(** Functional update. *)

val flip : t -> int -> t

val ground_truth : n:int -> faulty:int array -> t
(** The correct classification [c-hat]: honest processes map to [true]. *)

val errors_against : truth:t -> t -> int
(** Hamming distance to the ground truth: the number of incorrect bits. *)

val error_positions : truth:t -> t -> int list
(** Indices of the incorrect bits, ascending. *)

val to_bits : t -> string
(** The 0/1 string of {!pp}, as a value: wire encoding of a vector. *)

val of_bits : string -> t option
(** Inverse of {!to_bits}; [None] if any character is not ['0']/['1'].
    Never raises (used on corrupted wire bytes). *)

val of_bool_array : bool array -> t
val to_bool_array : t -> bool array
val equal : t -> t -> bool
val pp : t Fmt.t
(** Renders as a 0/1 string, e.g. ["110101"]. *)
