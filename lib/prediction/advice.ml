(* Immutable bit vector; advice strings are small (n bits) and copied
   rarely, so a plain bool array behind a functional interface keeps the
   code simple and safe from aliasing bugs. *)
type t = bool array

let length = Array.length
let make n bit = Array.make n bit
let init = Array.init
let get a j = a.(j)

let set a j bit =
  let a' = Array.copy a in
  a'.(j) <- bit;
  a'

let flip a j = set a j (not a.(j))

let ground_truth ~n ~faulty =
  let a = Array.make n true in
  Array.iter (fun j -> a.(j) <- false) faulty;
  a

let errors_against ~truth a =
  if Array.length truth <> Array.length a then invalid_arg "Advice.errors_against";
  let c = ref 0 in
  Array.iteri (fun j bit -> if bit <> truth.(j) then incr c) a;
  !c

let error_positions ~truth a =
  if Array.length truth <> Array.length a then invalid_arg "Advice.error_positions";
  let acc = ref [] in
  for j = Array.length a - 1 downto 0 do
    if a.(j) <> truth.(j) then acc := j :: !acc
  done;
  !acc

let to_bits a =
  String.init (Array.length a) (fun j -> if a.(j) then '1' else '0')

let of_bits s =
  let ok = ref true in
  let a =
    Array.init (String.length s) (fun j ->
        match s.[j] with
        | '1' -> true
        | '0' -> false
        | _ ->
          ok := false;
          false)
  in
  if !ok then Some a else None

let of_bool_array a = Array.copy a
let to_bool_array a = Array.copy a
let equal a b = a = b
let pp ppf a = Array.iter (fun bit -> Fmt.pf ppf "%c" (if bit then '1' else '0')) a
