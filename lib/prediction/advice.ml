(* Immutable bit vector backed by the simulator's flat bitset: 1 bit per
   process instead of a boxed bool array, so an n = 10^4 advice vector is
   ~1.25 KB and equality/Hamming distance run word-at-a-time. The
   functional interface (set/flip copy) keeps aliasing bugs out; advice
   strings are copied rarely. *)
module Bitset = Bap_sim.Bitset

type t = Bitset.t

let length = Bitset.length
let make n bit = Bitset.init n (fun _ -> bit)
let init = Bitset.init
let get = Bitset.get

let set a j bit =
  let a' = Bitset.copy a in
  Bitset.assign a' j bit;
  a'

let flip a j = set a j (not (Bitset.get a j))

let ground_truth ~n ~faulty =
  let a = Bitset.init n (fun _ -> true) in
  Array.iter (fun j -> Bitset.clear a j) faulty;
  a

let errors_against ~truth a =
  if Bitset.length truth <> Bitset.length a then invalid_arg "Advice.errors_against";
  let c = ref 0 in
  for j = 0 to Bitset.length a - 1 do
    if Bitset.get a j <> Bitset.get truth j then incr c
  done;
  !c

let error_positions ~truth a =
  if Bitset.length truth <> Bitset.length a then invalid_arg "Advice.error_positions";
  let acc = ref [] in
  for j = Bitset.length a - 1 downto 0 do
    if Bitset.get a j <> Bitset.get truth j then acc := j :: !acc
  done;
  !acc

let to_bits a = String.init (Bitset.length a) (fun j -> if Bitset.get a j then '1' else '0')

let of_bits s =
  let ok = ref true in
  let a =
    Bitset.init (String.length s) (fun j ->
        match s.[j] with
        | '1' -> true
        | '0' -> false
        | _ ->
          ok := false;
          false)
  in
  if !ok then Some a else None

let of_bool_array a = Bitset.init (Array.length a) (fun j -> a.(j))
let to_bool_array a = Array.init (Bitset.length a) (fun j -> Bitset.get a j)
let equal = Bitset.equal
let pp ppf a = Fmt.pf ppf "%s" (to_bits a)
