(* Classic authenticated Byzantine Broadcast (Dolev-Strong 1983) and the
   standard reduction from Byzantine Agreement to n parallel broadcasts
   (valid for t < n/2). Used as the no-predictions authenticated baseline
   and as the reference point for the message lower-bound experiments:
   the protocol always takes t + 1 rounds, whatever f and whatever the
   prediction quality would have been.

   Broadcast properties for any t < n: all honest processes deliver the
   same value, and an honest sender's value is delivered by everyone.
   The relay argument: a value accepted by an honest process in round
   j <= t carries j signatures and is re-broadcast with j+1; a value
   first seen in round t+1 carries t+1 distinct signatures, one of which
   is honest and therefore already relayed it. *)

module Pki = Bap_crypto.Pki
module Value = Bap_core.Value
module Wire = Bap_core.Wire

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  val rounds : t:int -> int
  (** Exactly [t + 1]. *)

  val broadcast :
    R.ctx -> pki:Pki.t -> key:Pki.key -> t:int -> tag:W.tag -> sender:int -> V.t -> V.t option
  (** One broadcast instance; the value argument is used only by the
      sender. [None] is "no value delivered" (faulty sender). *)

  val agree : R.ctx -> pki:Pki.t -> key:Pki.key -> t:int -> tag:W.tag -> V.t -> V.t
  (** Byzantine agreement by n parallel broadcasts followed by a
      deterministic plurality over the delivered values (requires
      t < n/2 for strong unanimity). Same round count. *)

  val interactive_consistency :
    R.ctx -> pki:Pki.t -> key:Pki.key -> t:int -> tag:W.tag -> V.t -> V.t option array
  (** Interactive consistency (Pease-Shostak-Lamport): all honest
      processes agree on the full vector of inputs, with slot [i]
      holding an honest [p_i]'s actual input ([None] marks senders whose
      broadcast did not deliver). Same round count. *)
end = struct
  let rounds ~t = t + 1

  type instance = {
    sender : int;
    mutable accepted : V.t list;  (* at most two values *)
    mutable fresh : W.ds_chain list;
  }

  let run_instances ctx ~pki ~key ~t ~tag ~senders x =
    let me = R.id ctx in
    let n = R.n ctx in
    let states = List.map (fun s -> { sender = s; accepted = []; fresh = [] }) senders in
    let collect inbox ~length =
      List.iter
        (fun st ->
          let chains = ref [] in
          Bap_sim.Inbox.iter inbox ~f:(fun msgs ->
              List.iter
                (function
                  | W.Ds_chain (tg, s, chain)
                    when tg = tag && s = st.sender
                         && W.valid_ds_chain pki ~sender:st.sender ~length chain ->
                    chains := chain :: !chains
                  | _ -> ())
                msgs);
          st.fresh <- List.rev !chains)
        states
    in
    let root_msgs =
      List.filter_map
        (fun st ->
          if st.sender = me then begin
            st.accepted <- [ x ];
            let link_sig = Pki.sign key (W.ds_root_payload ~sender:me x) in
            Some (W.Ds_chain (tag, me, W.Ds_root { sender = me; value = x; link_sig }))
          end
          else None)
        states
    in
    let inbox = R.broadcast_list ctx root_msgs in
    collect inbox ~length:1;
    for j = 2 to t + 1 do
      let extensions = ref [] in
      List.iter
        (fun st ->
          List.iter
            (fun chain ->
              let v = W.ds_chain_value chain in
              if (not (List.exists (V.equal v) st.accepted)) && List.length st.accepted < 2
              then begin
                st.accepted <- st.accepted @ [ v ];
                if not (List.mem me (W.ds_chain_signers chain)) then begin
                  let link_sig = Pki.sign key (W.ds_link_payload chain) in
                  extensions :=
                    W.Ds_chain (tag, st.sender, W.Ds_link { prev = chain; signer = me; link_sig })
                    :: !extensions
                end
              end)
            st.fresh)
        states;
      let out = List.rev !extensions in
      let inbox = R.broadcast_list ctx out in
      collect inbox ~length:j
    done;
    List.iter
      (fun st ->
        List.iter
          (fun chain ->
            let v = W.ds_chain_value chain in
            if (not (List.exists (V.equal v) st.accepted)) && List.length st.accepted < 2
            then st.accepted <- st.accepted @ [ v ])
          st.fresh)
      states;
    let result = Array.make n None in
    List.iter
      (fun st ->
        result.(st.sender) <-
          (match st.accepted with [ v ] -> Some v | [] | _ :: _ :: _ -> None))
      states;
    result

  let broadcast ctx ~pki ~key ~t ~tag ~sender x =
    (run_instances ctx ~pki ~key ~t ~tag ~senders:[ sender ] x).(sender)

  let interactive_consistency ctx ~pki ~key ~t ~tag x =
    let n = R.n ctx in
    run_instances ctx ~pki ~key ~t ~tag ~senders:(List.init n (fun s -> s)) x

  let agree ctx ~pki ~key ~t ~tag x =
    let delivered = interactive_consistency ctx ~pki ~key ~t ~tag x in
    match Bap_sim.Inbox.plurality (Bap_sim.Inbox.votes delivered) ~compare:V.compare with
    | Some (w, _) -> w
    | None -> x
end
