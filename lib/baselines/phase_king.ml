(* Plain (non-early-stopping) phase-king Byzantine agreement: t + 1
   phases of graded consensus + king, always run to completion. This is
   the Berman-Garay-style O(t)-round baseline the paper's early-stopping
   line of work (and ultimately the predictions result) improves on. *)

module Value = Bap_core.Value
module Wire = Bap_core.Wire

module Make
    (V : Value.S)
    (W : Wire.S with type value = V.t)
    (R : Bap_sim.Runtime.S with type msg = W.t) : sig
  type gc = R.ctx -> tag:W.tag -> V.t -> V.t * int

  val rounds : gc_rounds:int -> t:int -> int
  (** [(t + 1) * (gc_rounds + 1)]. *)

  val run : R.ctx -> gc:gc -> t:int -> base_tag:W.tag -> V.t -> V.t
  (** Requires the gc's own resilience bound (t < n/3 unauthenticated).
      Agreement holds after the first honest king's phase; there is
      always one among t + 1 kings. *)
end = struct
  type gc = R.ctx -> tag:W.tag -> V.t -> V.t * int

  let rounds ~gc_rounds ~t = (t + 1) * (gc_rounds + 1)

  let run ctx ~gc ~t ~base_tag x =
    let n = R.n ctx in
    let me = R.id ctx in
    let v = ref x in
    for p = 1 to t + 1 do
      let tag = base_tag + (2 * (p - 1)) in
      let king = (p - 1) mod n in
      let v1, g = gc ctx ~tag !v in
      v := v1;
      let inbox =
        if me = king then R.broadcast ctx (W.King (tag + 1, !v)) else R.silent_round ctx
      in
      let king_value =
        List.find_map
          (function W.King (tg, w) when tg = tag + 1 -> Some w | _ -> None)
          (Bap_sim.Inbox.get inbox king)
      in
      if g = 0 then v := Option.value king_value ~default:!v
    done;
    !v
end
