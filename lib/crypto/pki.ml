(* Signatures are unforgeable by construction: the [signature] type is
   abstract and its only constructor, [sign], demands the signer's [key].
   The per-PKI [universe] stamp prevents replay across executions. The
   counter is atomic because executions run concurrently on multiple
   domains (lib/exec): with a plain ref, two racing [create]s could mint
   the same universe and signatures would replay across them. *)

let next_universe = Atomic.make 0

type t = { universe : int; size : int }
type key = { key_universe : int; owner : int }
type signature = { sig_universe : int; sig_signer : int; sig_payload : string }

let create ~n =
  if n <= 0 then invalid_arg "Pki.create: n must be positive";
  { universe = Atomic.fetch_and_add next_universe 1 + 1; size = n }

let n t = t.size

let key t i =
  if i < 0 || i >= t.size then invalid_arg "Pki.key: id out of range";
  { key_universe = t.universe; owner = i }

let signer_of_key k = k.owner

let sign k payload =
  { sig_universe = k.key_universe; sig_signer = k.owner; sig_payload = payload }

let signer s = s.sig_signer

let verify t ~signer ~payload s =
  s.sig_universe = t.universe && s.sig_signer = signer && String.equal s.sig_payload payload

let encode s =
  Encode.triple (Encode.int s.sig_universe) (Encode.int s.sig_signer) (Encode.str s.sig_payload)

let equal a b =
  a.sig_universe = b.sig_universe && a.sig_signer = b.sig_signer
  && String.equal a.sig_payload b.sig_payload

let compare a b =
  match Int.compare a.sig_universe b.sig_universe with
  | 0 -> (
    match Int.compare a.sig_signer b.sig_signer with
    | 0 -> String.compare a.sig_payload b.sig_payload
    | c -> c)
  | c -> c

let pp_signature ppf s = Fmt.pf ppf "<sig:%d on %d bytes>" s.sig_signer (String.length s.sig_payload)
