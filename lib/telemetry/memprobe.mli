(** Allocation observatory: per-span GC attribution and an optional
    sampling profiler.

    The probe is off by default; when off, every entry point is one
    atomic load plus a branch and instrumented code emits nothing, so
    results (and traces, when tracing is on) stay byte-identical to an
    uninstrumented build. When on, {!phase} folds per-span GC deltas
    into the {!Telemetry.Metrics} registry under the innermost covering
    span, and callers can stamp spans with {!domain_minor_words} deltas.

    All [Gc] reads in the repo are confined to this module (lint rule
    D002, the same allowlist that pins the wall clock to the timing
    shims). Code outside lib/telemetry reads allocation through this
    interface only. *)

type snapshot = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
}
(** A process-global GC snapshot ([Gc.quick_stat]-backed: cheap, no
    heap walk). Word counters are cumulative since process start;
    [heap_words] and [compactions] are current levels. *)

val snapshot : unit -> snapshot
(** Read the process-global counters. Safe from any domain; other
    domains' allocation is included, so use {!domain_minor_words} for
    per-span attribution instead. *)

val delta : before:snapshot -> after:snapshot -> snapshot
(** Pointwise difference of the cumulative fields; [heap_words] and
    [compactions] keep the [after] levels (a delta still answers
    "where is the heap now"). *)

val enabled : unit -> bool
(** One atomic load: is the probe on? Instrumented code branches on
    this before touching any [Gc] counter or building any attribute. *)

val enable : unit -> unit
(** Turn the probe on and record the process baseline for
    {!process_delta}. Idempotent (re-enabling resets the baseline). *)

val disable : unit -> unit
(** Turn the probe off. Accumulated metrics and samples survive. *)

val process_delta : unit -> snapshot
(** Process-global GC activity since {!enable} (absolute counters if
    the probe was never enabled). The denominator for attribution
    coverage: per-span minor words should account for ~all of it. *)

val domain_minor_words : unit -> float
(** Words allocated on the minor heap {e by the calling domain}
    ([Gc.minor_words]). Domain-local, hence deterministic per span
    regardless of [--jobs]; the primitive behind every per-span
    [minor_words] attribute. *)

val phase : string -> (unit -> 'a) -> 'a
(** [phase name f] runs [f] and, when {!enabled}, folds the GC delta of
    its extent into the metrics registry under [name] with self-time
    semantics: a nested phase's words are subtracted from its parent,
    so every word lands under the innermost covering span exactly once.
    Counters written: [alloc.spans/name], [alloc.minor_words/name]
    (domain-local, exact), [alloc.promoted_words/name],
    [alloc.major_words/name], [alloc.minor_collections/name],
    [alloc.major_collections/name] (process-global deltas, exact at
    [--jobs 1]); histogram [alloc.span_minor_words/name] observes each
    span's {e total} (children included). Exception-safe; when off it
    is exactly [f ()]. *)

val phase_if : bool -> string -> (unit -> 'a) -> 'a
(** [phase_if cond name f] is {!phase} when [cond], else [f ()] — the
    lock-step idiom: measure each protocol phase once (process 0), not
    once per simulated process. *)

val current_phase : unit -> string option
(** Innermost open phase on the calling domain, if any (the sampler's
    attribution key). *)

val start_sampling : ?rate:float -> unit -> bool
(** Start the [Gc.Memprof] sampling profiler at [rate] samples per word
    (default [1e-4]). Returns [false] when the runtime refuses memprof
    (OCaml 5.1 multicore does; 5.2 restored it) — the reason is kept in
    {!sampling_failure} and everything else still works. *)

val stop_sampling : unit -> unit
(** Stop the profiler if it is running. Samples survive. *)

val sampling_failure : unit -> string option
(** Why the last {!start_sampling} returned [false], if it did. *)

val samples : unit -> (string * string * int) list
(** Merged [(phase, allocation site, sample count)] triples from every
    domain, sorted. A site is ["file.ml:line"], or ["<unknown>"] when
    the backtrace carries no location. *)

val flush_samples_to_trace : unit -> unit
(** Emit {!samples} as [alloc.sample] instants (cat ["alloc"]) on the
    caller's current track, sorted — run this before
    [Telemetry.shutdown] so the trace file is self-contained for
    [bap_trace alloc]. *)
