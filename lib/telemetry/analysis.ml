(* Offline analysis of JSONL traces: the engine behind bap_trace.

   The summary reconstructs the paper-facing accounting (rounds,
   messages, bits — per sub-protocol phase) from the trace alone. The
   simulator's round spans carry per-round message/bit counts; the core
   sub-protocol spans carry their round extent as begin/end attributes.
   A sub-protocol that starts when the process has consumed round [r0]
   first affects the wire in round [r0 + 1], so a core span with begin
   attribute [r0] and end attribute [r1] owns rounds [r0 + 1 .. r1];
   each round is attributed to the smallest enclosing extent (innermost
   sub-protocol wins), which mirrors how Stack.messages_by_component
   attributes costs from Wrapper.schedule. *)

module Tel = Telemetry

(* ---------- loading ---------- *)

let value_of_json = function
  | Json.Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then Tel.Int (int_of_float f)
    else Tel.Float f
  | Json.Str s -> Tel.Str s
  | Json.Bool b -> Tel.Bool b
  | Json.Null | Json.List _ | Json.Obj _ -> Tel.Str "<composite>"

let ev_of_json j =
  let str k d = Option.value ~default:d (Json.to_string (Json.member k j)) in
  let ph =
    match str "ph" "i" with
    | "B" -> Tel.Begin
    | "E" -> Tel.End
    | _ -> Tel.Instant
  in
  let attrs =
    match Json.member "args" j with
    | Some (Json.Obj l) -> List.map (fun (k, v) -> (k, value_of_json v)) l
    | _ -> []
  in
  {
    Tel.name = str "name" "";
    cat = str "cat" "";
    ph;
    seq = Option.value ~default:0 (Json.to_int (Json.member "ts" j));
    track = str "track" "main";
    attrs;
    wall_us = Json.to_float (Json.member "wall_us" j);
  }

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match In_channel.input_line ic with
        | None -> List.rev acc
        | Some "" -> go (lineno + 1) acc
        | Some line -> (
          match Json.parse line with
          | j -> go (lineno + 1) (ev_of_json j :: acc)
          | exception Json.Parse msg ->
            failwith (Printf.sprintf "%s:%d: %s" path lineno msg))
      in
      go 1 [])

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  if nn = 0 then None else go 0

(* [wall_us] is always the final field of a line, so cutting from its
   comma to the closing brace removes every nondeterministic byte. *)
let strip_wall text =
  String.split_on_char '\n' text
  |> List.map (fun line ->
         match find_sub line ",\"wall_us\":" with
         | Some i -> String.sub line 0 i ^ "}"
         | None -> line)
  |> String.concat "\n"

(* ---------- summary ---------- *)

type rollup = { spans : int; rounds : int; msgs : int; bits : int }

type summary_data = {
  events : int;
  tracks : int;
  runs : int;
  total_rounds : int;
  total_msgs : int;
  total_bits : int;
  adversary_msgs : int;
  phases : (string * rollup) list;
}

let attr_int name attrs =
  match List.assoc_opt name attrs with
  | Some (Tel.Int i) -> Some i
  | Some (Tel.Float f) -> Some (int_of_float f)
  | _ -> None

let by_track evs =
  let sorted =
    List.stable_sort
      (fun a b ->
        let c = String.compare a.Tel.track b.Tel.track in
        if c <> 0 then c else Int.compare a.Tel.seq b.Tel.seq)
      evs
  in
  let rec split cur cur_name acc = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | e :: rest ->
      if String.equal e.Tel.track cur_name || cur = [] then
        split (e :: cur) e.Tel.track acc rest
      else split [ e ] e.Tel.track (List.rev cur :: acc) rest
  in
  split [] "" [] sorted

type interval = { iname : string; lo : int; hi : int; depth : int; order : int }

let zero = { spans = 0; rounds = 0; msgs = 0; bits = 0 }

let add_rollup a b =
  {
    spans = a.spans + b.spans;
    rounds = a.rounds + b.rounds;
    msgs = a.msgs + b.msgs;
    bits = a.bits + b.bits;
  }

let group_rollups l =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  let rec go acc = function
    | [] -> List.rev acc
    | (k, v) :: rest -> (
      match acc with
      | (k', v') :: tl when String.equal k' k -> go ((k', add_rollup v' v) :: tl) rest
      | _ -> go ((k, v) :: acc) rest)
  in
  go [] sorted

let summarize evs =
  let runs = ref 0 in
  let total_rounds = ref 0 in
  let total_msgs = ref 0 in
  let total_bits = ref 0 in
  let adversary_msgs = ref 0 in
  let contribs = ref [] in
  let tracks = by_track evs in
  List.iter
    (fun track_evs ->
      (* Per-run accumulators, reset at each sim.run boundary. *)
      let round_rows = ref [] in
      let intervals = ref [] in
      let stack = ref [] in
      let cur_round = ref 0 in
      let order = ref 0 in
      let close_interval (iname, lo0, depth, ord) hi =
        intervals := { iname; lo = lo0 + 1; hi; depth; order = ord } :: !intervals
      in
      let finish_run () =
        incr runs;
        (* Spans that never closed (crashed cell) extend to the last
           observed round. *)
        List.iter (fun sp -> close_interval sp !cur_round) !stack;
        stack := [];
        let best r =
          List.fold_left
            (fun best iv ->
              if iv.lo <= r && r <= iv.hi then
                match best with
                | None -> Some iv
                | Some b ->
                  let w iv = iv.hi - iv.lo in
                  if
                    w iv < w b
                    || (w iv = w b
                       && (iv.depth > b.depth
                          || (iv.depth = b.depth && iv.order > b.order)))
                  then Some iv
                  else Some b
              else best)
            None !intervals
        in
        List.iter
          (fun (r, m, b) ->
            let name = match best r with Some iv -> iv.iname | None -> "other" in
            contribs :=
              (name, { zero with rounds = 1; msgs = m; bits = b }) :: !contribs)
          !round_rows;
        List.iter
          (fun iv -> contribs := (iv.iname, { zero with spans = 1 }) :: !contribs)
          !intervals;
        round_rows := [];
        intervals := [];
        cur_round := 0
      in
      List.iter
        (fun e ->
          match (e.Tel.cat, e.Tel.name, e.Tel.ph) with
          | "sim", "sim.run", Tel.Begin ->
            round_rows := [];
            intervals := [];
            stack := [];
            cur_round := 0
          | "sim", "sim.run", Tel.End ->
            let a k = Option.value ~default:0 (attr_int k e.Tel.attrs) in
            total_rounds := !total_rounds + a "rounds";
            total_msgs := !total_msgs + a "msgs";
            total_bits := !total_bits + a "bits";
            adversary_msgs := !adversary_msgs + a "adversary_msgs";
            finish_run ()
          | "sim", "round", Tel.Begin ->
            Option.iter (fun r -> cur_round := r) (attr_int "round" e.Tel.attrs)
          | "sim", "round", Tel.End ->
            let a k = Option.value ~default:0 (attr_int k e.Tel.attrs) in
            round_rows := (!cur_round, a "msgs", a "bits") :: !round_rows
          | "core", name, Tel.Begin ->
            let r0 =
              Option.value ~default:!cur_round (attr_int "round" e.Tel.attrs)
            in
            stack := (name, r0, List.length !stack, !order) :: !stack;
            incr order
          | "core", name, Tel.End -> (
            let hi =
              Option.value ~default:!cur_round (attr_int "round" e.Tel.attrs)
            in
            match !stack with
            | (n, _, _, _) :: _ when not (String.equal n name) ->
              (* Mismatched close (should not happen): drop silently. *)
              ()
            | sp :: rest ->
              stack := rest;
              close_interval sp hi
            | [] -> ())
          | _ -> ())
        track_evs)
    tracks;
  {
    events = List.length evs;
    tracks = List.length tracks;
    runs = !runs;
    total_rounds = !total_rounds;
    total_msgs = !total_msgs;
    total_bits = !total_bits;
    adversary_msgs = !adversary_msgs;
    phases = group_rollups !contribs;
  }

let summary evs =
  let s = summarize evs in
  let head =
    Printf.sprintf
      "trace summary: %d events, %d tracks, %d runs\nrounds %d   messages %d   bits %d   adversary-messages %d\n"
      s.events s.tracks s.runs s.total_rounds s.total_msgs s.total_bits
      s.adversary_msgs
  in
  if s.phases = [] then head ^ "(no phase spans in trace)\n"
  else
    head ^ "\n"
    ^ Bap_stats.Table.render
        ~headers:[ "phase"; "spans"; "rounds"; "msgs"; "bits" ]
        (List.map
           (fun (name, r) ->
             [
               name;
               string_of_int r.spans;
               string_of_int r.rounds;
               string_of_int r.msgs;
               string_of_int r.bits;
             ])
           s.phases)
    ^ "\n"

(* ---------- diff ---------- *)

let diff evs_a evs_b =
  let a = summarize evs_a and b = summarize evs_b in
  let row name va vb =
    [ name; string_of_int va; string_of_int vb; Printf.sprintf "%+d" (vb - va) ]
  in
  let phase_names =
    List.sort_uniq String.compare
      (List.map fst a.phases @ List.map fst b.phases)
  in
  let phase_get phases name =
    Option.value ~default:zero (List.assoc_opt name phases)
  in
  let rows =
    [
      row "events" a.events b.events;
      row "runs" a.runs b.runs;
      row "rounds" a.total_rounds b.total_rounds;
      row "msgs" a.total_msgs b.total_msgs;
      row "bits" a.total_bits b.total_bits;
      row "adversary-msgs" a.adversary_msgs b.adversary_msgs;
    ]
    @ List.concat_map
        (fun name ->
          let ra = phase_get a.phases name and rb = phase_get b.phases name in
          [
            row (name ^ ".rounds") ra.rounds rb.rounds;
            row (name ^ ".msgs") ra.msgs rb.msgs;
          ])
        phase_names
  in
  Bap_stats.Table.render ~headers:[ "metric"; "a"; "b"; "delta" ] rows ^ "\n"

(* ---------- critical path ---------- *)

type cell_timing = { cid : string; dur_us : float; outcome : string }

let cell_timings evs =
  List.concat_map
    (fun track_evs ->
      let open_b = ref None in
      List.filter_map
        (fun e ->
          match (e.Tel.name, e.Tel.ph) with
          | "cell", Tel.Begin ->
            open_b := Some e;
            None
          | "cell", Tel.End -> (
            match !open_b with
            | Some b -> (
              open_b := None;
              match (b.Tel.wall_us, e.Tel.wall_us) with
              | Some w0, Some w1 ->
                let outcome =
                  match List.assoc_opt "outcome" e.Tel.attrs with
                  | Some (Tel.Str s) -> s
                  | _ -> "?"
                in
                Some { cid = e.Tel.track; dur_us = w1 -. w0; outcome }
              | _ -> None)
            | None -> None)
          | _ -> None)
        track_evs)
    (by_track evs)

let critpath ?(top = 15) evs =
  let cells =
    List.sort
      (fun a b -> Float.compare b.dur_us a.dur_us)
      (cell_timings evs)
  in
  match cells with
  | [] ->
    "critpath: no timed cell spans in trace (record with wall-clock enabled, \
     e.g. bap_tables --trace-out)\n"
  | slowest :: _ ->
    let total = List.fold_left (fun acc c -> acc +. c.dur_us) 0. cells in
    let shown = List.filteri (fun i _ -> i < top) cells in
    let bar c =
      let w = int_of_float (c.dur_us /. slowest.dur_us *. 40.) in
      String.make (max 1 w) '#'
    in
    Printf.sprintf
      "critical path: %d timed cells, %.1f ms total cell time; slowest %d:\n\n"
      (List.length cells) (total /. 1e3) (List.length shown)
    ^ Bap_stats.Table.render
        ~headers:[ "cell"; "ms"; "outcome"; "" ]
        (List.map
           (fun c ->
             [
               c.cid;
               Printf.sprintf "%.1f" (c.dur_us /. 1e3);
               c.outcome;
               bar c;
             ])
           shown)
    ^ "\n"
