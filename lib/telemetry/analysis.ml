(* Offline analysis of JSONL traces: the engine behind bap_trace.

   The summary reconstructs the paper-facing accounting (rounds,
   messages, bits — per sub-protocol phase) from the trace alone. The
   simulator's round spans carry per-round message/bit counts; the core
   sub-protocol spans carry their round extent as begin/end attributes.
   A sub-protocol that starts when the process has consumed round [r0]
   first affects the wire in round [r0 + 1], so a core span with begin
   attribute [r0] and end attribute [r1] owns rounds [r0 + 1 .. r1];
   each round is attributed to the smallest enclosing extent (innermost
   sub-protocol wins), which mirrors how Stack.messages_by_component
   attributes costs from Wrapper.schedule. *)

module Tel = Telemetry

(* ---------- loading ---------- *)

let value_of_json = function
  | Json.Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then Tel.Int (int_of_float f)
    else Tel.Float f
  | Json.Str s -> Tel.Str s
  | Json.Bool b -> Tel.Bool b
  | Json.Null | Json.List _ | Json.Obj _ -> Tel.Str "<composite>"

let ev_of_json j =
  let str k d = Option.value ~default:d (Json.to_string (Json.member k j)) in
  let ph =
    match str "ph" "i" with
    | "B" -> Tel.Begin
    | "E" -> Tel.End
    | _ -> Tel.Instant
  in
  let attrs =
    match Json.member "args" j with
    | Some (Json.Obj l) -> List.map (fun (k, v) -> (k, value_of_json v)) l
    | _ -> []
  in
  {
    Tel.name = str "name" "";
    cat = str "cat" "";
    ph;
    seq = Option.value ~default:0 (Json.to_int (Json.member "ts" j));
    track = str "track" "main";
    attrs;
    wall_us = Json.to_float (Json.member "wall_us" j);
  }

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go lineno acc =
        match In_channel.input_line ic with
        | None -> List.rev acc
        | Some "" -> go (lineno + 1) acc
        | Some line -> (
          match Json.parse line with
          | j -> go (lineno + 1) (ev_of_json j :: acc)
          | exception Json.Parse msg ->
            failwith (Printf.sprintf "%s:%d: %s" path lineno msg))
      in
      go 1 [])

let find_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  if nn = 0 then None else go 0

(* [wall_us] is always the final field of a line, so cutting from its
   comma to the closing brace removes every nondeterministic byte. *)
let strip_wall text =
  String.split_on_char '\n' text
  |> List.map (fun line ->
         match find_sub line ",\"wall_us\":" with
         | Some i -> String.sub line 0 i ^ "}"
         | None -> line)
  |> String.concat "\n"

(* ---------- summary ---------- *)

type rollup = { spans : int; rounds : int; msgs : int; bits : int }

type summary_data = {
  events : int;
  tracks : int;
  runs : int;
  total_rounds : int;
  total_msgs : int;
  total_bits : int;
  adversary_msgs : int;
  phases : (string * rollup) list;
}

let attr_int name attrs =
  match List.assoc_opt name attrs with
  | Some (Tel.Int i) -> Some i
  | Some (Tel.Float f) -> Some (int_of_float f)
  | _ -> None

let by_track evs =
  let sorted =
    List.stable_sort
      (fun a b ->
        let c = String.compare a.Tel.track b.Tel.track in
        if c <> 0 then c else Int.compare a.Tel.seq b.Tel.seq)
      evs
  in
  let rec split cur cur_name acc = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | e :: rest ->
      if String.equal e.Tel.track cur_name || cur = [] then
        split (e :: cur) e.Tel.track acc rest
      else split [ e ] e.Tel.track (List.rev cur :: acc) rest
  in
  split [] "" [] sorted

type interval = { iname : string; lo : int; hi : int; depth : int; order : int }

let zero = { spans = 0; rounds = 0; msgs = 0; bits = 0 }

let add_rollup a b =
  {
    spans = a.spans + b.spans;
    rounds = a.rounds + b.rounds;
    msgs = a.msgs + b.msgs;
    bits = a.bits + b.bits;
  }

let group_rollups l =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  let rec go acc = function
    | [] -> List.rev acc
    | (k, v) :: rest -> (
      match acc with
      | (k', v') :: tl when String.equal k' k -> go ((k', add_rollup v' v) :: tl) rest
      | _ -> go ((k, v) :: acc) rest)
  in
  go [] sorted

let summarize evs =
  let runs = ref 0 in
  let total_rounds = ref 0 in
  let total_msgs = ref 0 in
  let total_bits = ref 0 in
  let adversary_msgs = ref 0 in
  let contribs = ref [] in
  let tracks = by_track evs in
  List.iter
    (fun track_evs ->
      (* Per-run accumulators, reset at each sim.run boundary. *)
      let round_rows = ref [] in
      let intervals = ref [] in
      let stack = ref [] in
      let cur_round = ref 0 in
      let order = ref 0 in
      let close_interval (iname, lo0, depth, ord) hi =
        intervals := { iname; lo = lo0 + 1; hi; depth; order = ord } :: !intervals
      in
      let finish_run () =
        incr runs;
        (* Spans that never closed (crashed cell) extend to the last
           observed round. *)
        List.iter (fun sp -> close_interval sp !cur_round) !stack;
        stack := [];
        let best r =
          List.fold_left
            (fun best iv ->
              if iv.lo <= r && r <= iv.hi then
                match best with
                | None -> Some iv
                | Some b ->
                  let w iv = iv.hi - iv.lo in
                  if
                    w iv < w b
                    || (w iv = w b
                       && (iv.depth > b.depth
                          || (iv.depth = b.depth && iv.order > b.order)))
                  then Some iv
                  else Some b
              else best)
            None !intervals
        in
        List.iter
          (fun (r, m, b) ->
            let name = match best r with Some iv -> iv.iname | None -> "other" in
            contribs :=
              (name, { zero with rounds = 1; msgs = m; bits = b }) :: !contribs)
          !round_rows;
        List.iter
          (fun iv -> contribs := (iv.iname, { zero with spans = 1 }) :: !contribs)
          !intervals;
        round_rows := [];
        intervals := [];
        cur_round := 0
      in
      List.iter
        (fun e ->
          match (e.Tel.cat, e.Tel.name, e.Tel.ph) with
          | "sim", "sim.run", Tel.Begin ->
            round_rows := [];
            intervals := [];
            stack := [];
            cur_round := 0
          | "sim", "sim.run", Tel.End ->
            let a k = Option.value ~default:0 (attr_int k e.Tel.attrs) in
            total_rounds := !total_rounds + a "rounds";
            total_msgs := !total_msgs + a "msgs";
            total_bits := !total_bits + a "bits";
            adversary_msgs := !adversary_msgs + a "adversary_msgs";
            finish_run ()
          | "sim", "round", Tel.Begin ->
            Option.iter (fun r -> cur_round := r) (attr_int "round" e.Tel.attrs)
          | "sim", "round", Tel.End ->
            let a k = Option.value ~default:0 (attr_int k e.Tel.attrs) in
            round_rows := (!cur_round, a "msgs", a "bits") :: !round_rows
          | "core", name, Tel.Begin ->
            let r0 =
              Option.value ~default:!cur_round (attr_int "round" e.Tel.attrs)
            in
            stack := (name, r0, List.length !stack, !order) :: !stack;
            incr order
          | "core", name, Tel.End -> (
            let hi =
              Option.value ~default:!cur_round (attr_int "round" e.Tel.attrs)
            in
            match !stack with
            | (n, _, _, _) :: _ when not (String.equal n name) ->
              (* Mismatched close (should not happen): drop silently. *)
              ()
            | sp :: rest ->
              stack := rest;
              close_interval sp hi
            | [] -> ())
          | _ -> ())
        track_evs)
    tracks;
  {
    events = List.length evs;
    tracks = List.length tracks;
    runs = !runs;
    total_rounds = !total_rounds;
    total_msgs = !total_msgs;
    total_bits = !total_bits;
    adversary_msgs = !adversary_msgs;
    phases = group_rollups !contribs;
  }

let summary evs =
  let s = summarize evs in
  let head =
    Printf.sprintf
      "trace summary: %d events, %d tracks, %d runs\nrounds %d   messages %d   bits %d   adversary-messages %d\n"
      s.events s.tracks s.runs s.total_rounds s.total_msgs s.total_bits
      s.adversary_msgs
  in
  if s.phases = [] then head ^ "(no phase spans in trace)\n"
  else
    head ^ "\n"
    ^ Bap_stats.Table.render
        ~headers:[ "phase"; "spans"; "rounds"; "msgs"; "bits" ]
        (List.map
           (fun (name, r) ->
             [
               name;
               string_of_int r.spans;
               string_of_int r.rounds;
               string_of_int r.msgs;
               string_of_int r.bits;
             ])
           s.phases)
    ^ "\n"

(* ---------- diff ---------- *)

let diff evs_a evs_b =
  let a = summarize evs_a and b = summarize evs_b in
  let row name va vb =
    [ name; string_of_int va; string_of_int vb; Printf.sprintf "%+d" (vb - va) ]
  in
  let phase_names =
    List.sort_uniq String.compare
      (List.map fst a.phases @ List.map fst b.phases)
  in
  let phase_get phases name =
    Option.value ~default:zero (List.assoc_opt name phases)
  in
  let rows =
    [
      row "events" a.events b.events;
      row "runs" a.runs b.runs;
      row "rounds" a.total_rounds b.total_rounds;
      row "msgs" a.total_msgs b.total_msgs;
      row "bits" a.total_bits b.total_bits;
      row "adversary-msgs" a.adversary_msgs b.adversary_msgs;
    ]
    @ List.concat_map
        (fun name ->
          let ra = phase_get a.phases name and rb = phase_get b.phases name in
          [
            row (name ^ ".rounds") ra.rounds rb.rounds;
            row (name ^ ".msgs") ra.msgs rb.msgs;
          ])
        phase_names
  in
  Bap_stats.Table.render ~headers:[ "metric"; "a"; "b"; "delta" ] rows ^ "\n"

(* ---------- critical path ---------- *)

type cell_timing = { cid : string; dur_us : float; outcome : string }

let cell_timings evs =
  List.concat_map
    (fun track_evs ->
      let open_b = ref None in
      List.filter_map
        (fun e ->
          match (e.Tel.name, e.Tel.ph) with
          | "cell", Tel.Begin ->
            open_b := Some e;
            None
          | "cell", Tel.End -> (
            match !open_b with
            | Some b -> (
              open_b := None;
              match (b.Tel.wall_us, e.Tel.wall_us) with
              | Some w0, Some w1 ->
                let outcome =
                  match List.assoc_opt "outcome" e.Tel.attrs with
                  | Some (Tel.Str s) -> s
                  | _ -> "?"
                in
                Some { cid = e.Tel.track; dur_us = w1 -. w0; outcome }
              | _ -> None)
            | None -> None)
          | _ -> None)
        track_evs)
    (by_track evs)

(* ---------- allocation report ---------- *)

(* Reconstructs per-phase allocation from the [minor_words] attributes
   the memprobe adds to round / sim.run / cell / sweep End events.

   Attribution mirrors [summarize]: each round's words go to the
   innermost core span whose round extent contains it (or "other");
   what a run allocated outside its rounds (the spawn segment,
   inter-round bookkeeping) stays with "sim.run"; what a cell allocated
   outside its runs (advice construction, row assembly) stays with
   "cell"; and the sweep span's remainder — minus the cells, which run
   on the same domain only under an inline pool — is "harness". Every
   measured word lands in exactly one row, so the rows sum to the
   measured total and the named-span coverage is 1 - other/total. *)

type alloc_rollup = { a_spans : int; a_rounds : int; a_words : int }

type alloc_data = {
  a_events : int;
  a_tracks : int;
  a_runs : int;
  a_rounds : int;
  a_total_words : int;
  a_other_words : int;
  a_process_words : int option;
  a_rows : (string * alloc_rollup) list;  (** sorted by words, descending *)
  a_samples : (string * string * int) list;
      (** (site, phase, samples), descending by samples *)
}

let azero = { a_spans = 0; a_rounds = 0; a_words = 0 }

let add_arollup a b =
  {
    a_spans = a.a_spans + b.a_spans;
    a_rounds = a.a_rounds + b.a_rounds;
    a_words = a.a_words + b.a_words;
  }

let group_arollups l =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  let rec go acc = function
    | [] -> List.rev acc
    | (k, v) :: rest -> (
      match acc with
      | (k', v') :: tl when String.equal k' k ->
        go ((k', add_arollup v' v) :: tl) rest
      | _ -> go ((k, v) :: acc) rest)
  in
  go [] sorted

let alloc_summarize evs =
  let contribs = ref [] in
  let runs = ref 0 in
  let rounds = ref 0 in
  let cells_words = ref 0 in
  let top_runs_words = ref 0 in
  let sweep_words = ref 0 in
  let process_words = ref None in
  let samples = ref [] in
  let tracks = by_track evs in
  List.iter
    (fun track_evs ->
      (* Per-run accumulators (the summarize state machine, with words
         in place of msgs/bits)... *)
      let round_rows = ref [] in
      let intervals = ref [] in
      let stack = ref [] in
      let cur_round = ref 0 in
      let order = ref 0 in
      (* ... and per-track cell scope. *)
      let in_cell = ref false in
      let cell_runs_words = ref 0 in
      let close_interval (iname, lo0, depth, ord) hi =
        intervals := { iname; lo = lo0 + 1; hi; depth; order = ord } :: !intervals
      in
      let finish_run run_words =
        incr runs;
        List.iter (fun sp -> close_interval sp !cur_round) !stack;
        stack := [];
        let best r =
          List.fold_left
            (fun best iv ->
              if iv.lo <= r && r <= iv.hi then
                match best with
                | None -> Some iv
                | Some b ->
                  let w iv = iv.hi - iv.lo in
                  if
                    w iv < w b
                    || (w iv = w b
                       && (iv.depth > b.depth
                          || (iv.depth = b.depth && iv.order > b.order)))
                  then Some iv
                  else Some b
              else best)
            None !intervals
        in
        let rounds_words = ref 0 in
        List.iter
          (fun (r, w) ->
            incr rounds;
            rounds_words := !rounds_words + w;
            let name = match best r with Some iv -> iv.iname | None -> "other" in
            contribs := (name, { azero with a_rounds = 1; a_words = w }) :: !contribs)
          !round_rows;
        List.iter
          (fun iv -> contribs := (iv.iname, { azero with a_spans = 1 }) :: !contribs)
          !intervals;
        contribs :=
          ( "sim.run",
            { azero with a_spans = 1; a_words = run_words - !rounds_words } )
          :: !contribs;
        if !in_cell then cell_runs_words := !cell_runs_words + run_words
        else top_runs_words := !top_runs_words + run_words;
        round_rows := [];
        intervals := [];
        cur_round := 0
      in
      List.iter
        (fun e ->
          let mw () = attr_int "minor_words" e.Tel.attrs in
          match (e.Tel.cat, e.Tel.name, e.Tel.ph) with
          | "sim", "sim.run", Tel.Begin ->
            round_rows := [];
            intervals := [];
            stack := [];
            cur_round := 0
          | "sim", "sim.run", Tel.End ->
            Option.iter (fun w -> finish_run w) (mw ())
          | "sim", "round", Tel.Begin ->
            Option.iter (fun r -> cur_round := r) (attr_int "round" e.Tel.attrs)
          | "sim", "round", Tel.End ->
            Option.iter
              (fun w -> round_rows := (!cur_round, w) :: !round_rows)
              (mw ())
          | "core", name, Tel.Begin ->
            let r0 =
              Option.value ~default:!cur_round (attr_int "round" e.Tel.attrs)
            in
            stack := (name, r0, List.length !stack, !order) :: !stack;
            incr order
          | "core", name, Tel.End -> (
            let hi =
              Option.value ~default:!cur_round (attr_int "round" e.Tel.attrs)
            in
            match !stack with
            | (n, _, _, _) :: _ when not (String.equal n name) -> ()
            | sp :: rest ->
              stack := rest;
              close_interval sp hi
            | [] -> ())
          | "exec", "cell", Tel.Begin ->
            in_cell := true;
            cell_runs_words := 0
          | "exec", "cell", Tel.End ->
            in_cell := false;
            Option.iter
              (fun w ->
                cells_words := !cells_words + w;
                contribs :=
                  ( "cell",
                    { azero with a_spans = 1; a_words = w - !cell_runs_words } )
                  :: !contribs)
              (mw ())
          | "exec", "sweep", Tel.End ->
            Option.iter (fun w -> sweep_words := !sweep_words + w) (mw ())
          | "alloc", "alloc.process", _ ->
            Option.iter (fun w -> process_words := Some w) (mw ())
          | "alloc", "alloc.sample", _ -> (
            let str k =
              match List.assoc_opt k e.Tel.attrs with
              | Some (Tel.Str s) -> Some s
              | _ -> None
            in
            match (str "site", str "phase", attr_int "samples" e.Tel.attrs) with
            | Some site, Some phase, Some n ->
              samples := (site, phase, n) :: !samples
            | _ -> ())
          | _ -> ())
        track_evs)
    tracks;
  (* The sweep's own-domain words, minus the cells (same domain only
     under an inline pool — the subtraction makes the row ~0 under a
     parallel pool instead of double-counting) and minus any runs that
     executed outside cells. Clamped: never negative. *)
  let harness = max 0 (!sweep_words - !cells_words - !top_runs_words) in
  if harness > 0 then
    contribs := ("harness", { azero with a_spans = 1; a_words = harness }) :: !contribs;
  let rows =
    group_arollups !contribs
    |> List.filter (fun (_, r) -> r.a_words > 0 || r.a_spans > 0 || r.a_rounds > 0)
    |> List.stable_sort (fun (_, a) (_, b) -> Int.compare b.a_words a.a_words)
  in
  let other_words =
    match List.assoc_opt "other" rows with Some r -> r.a_words | None -> 0
  in
  {
    a_events = List.length evs;
    a_tracks = List.length tracks;
    a_runs = !runs;
    a_rounds = !rounds;
    a_total_words = !cells_words + !top_runs_words + harness;
    a_other_words = other_words;
    a_process_words = !process_words;
    a_rows = rows;
    a_samples =
      List.stable_sort
        (fun (_, _, a) (_, _, b) -> Int.compare b a)
        (List.sort compare !samples);
  }

let alloc_report ?(top = 15) evs =
  let d = alloc_summarize evs in
  if d.a_total_words = 0 then
    "alloc: no allocation attributes in trace (record one with bap_tables \
     --alloc-out)\n"
  else
    let pct x = 100. *. float_of_int x /. float_of_int d.a_total_words in
    let head =
      Printf.sprintf
        "alloc: %d runs, %d rounds, %d minor words measured across %d tracks\n\
         attributed to named spans: %.1f%% (other %.1f%%)\n"
        d.a_runs d.a_rounds d.a_total_words d.a_tracks
        (pct (d.a_total_words - d.a_other_words))
        (pct d.a_other_words)
    in
    let head =
      match d.a_process_words with
      | Some p when p > 0 ->
        head
        ^ Printf.sprintf "process minor words: %d (span coverage %.1f%%)\n" p
            (100. *. float_of_int d.a_total_words /. float_of_int p)
      | _ -> head
    in
    let widest =
      List.fold_left (fun m (_, r) -> max m r.a_words) 1 d.a_rows
    in
    let bar w =
      let n = int_of_float (float_of_int w /. float_of_int widest *. 40.) in
      String.make (max (min n 40) 1) '#'
    in
    let table =
      Bap_stats.Table.render
        ~headers:[ "phase"; "spans"; "rounds"; "minor_words"; "w/round"; "share"; "" ]
        (List.map
           (fun (name, r) ->
             [
               name;
               string_of_int r.a_spans;
               string_of_int r.a_rounds;
               string_of_int r.a_words;
               (if r.a_rounds > 0 then
                  string_of_int (r.a_words / r.a_rounds)
                else "-");
               Printf.sprintf "%.1f%%" (pct r.a_words);
               bar r.a_words;
             ])
           d.a_rows)
    in
    let sites =
      match d.a_samples with
      | [] -> "(no sampled allocation sites in trace)\n"
      | all ->
        let shown = List.filteri (fun i _ -> i < top) all in
        let total = List.fold_left (fun acc (_, _, n) -> acc + n) 0 all in
        let widest = List.fold_left (fun m (_, _, n) -> max m n) 1 all in
        let sbar n =
          let w = int_of_float (float_of_int n /. float_of_int widest *. 40.) in
          String.make (max (min w 40) 1) '#'
        in
        Printf.sprintf "top sampled allocation sites (%d of %d, %d samples):\n"
          (List.length shown) (List.length all) total
        ^ Bap_stats.Table.render
            ~headers:[ "site"; "phase"; "samples"; "" ]
            (List.map
               (fun (site, phase, n) ->
                 [ site; phase; string_of_int n; sbar n ])
               shown)
        ^ "\n"
    in
    head ^ "\n" ^ table ^ "\n\n" ^ sites

(* Parse the table [alloc_report] renders back into (phase, words)
   rows — the round-trip bap_trace's own tests and scripts rely on.
   Columns are split on runs of two or more spaces (names and sites
   never contain those). *)
let parse_alloc_report text =
  let split_cols line =
    let n = String.length line in
    let out = ref [] and buf = Buffer.create 16 in
    let rec go i =
      if i >= n then begin
        if Buffer.length buf > 0 then out := Buffer.contents buf :: !out
      end
      else if
        line.[i] = ' ' && i + 1 < n && line.[i + 1] = ' '
      then begin
        if Buffer.length buf > 0 then out := Buffer.contents buf :: !out;
        Buffer.clear buf;
        let rec skip j = if j < n && line.[j] = ' ' then skip (j + 1) else j in
        go (skip i)
      end
      else begin
        Buffer.add_char buf line.[i];
        go (i + 1)
      end
    in
    go 0;
    List.rev !out
  in
  let lines = String.split_on_char '\n' text in
  let rec find_table = function
    | [] -> []
    | l :: rest -> (
      match split_cols l with
      | "phase" :: _ :: _ :: "minor_words" :: _ -> (
        match rest with _sep :: rows -> rows | [] -> [])
      | _ -> find_table rest)
  in
  let rec take acc = function
    | [] -> List.rev acc
    | l :: rest -> (
      if String.trim l = "" then List.rev acc
      else
        match split_cols l with
        | name :: _spans :: _rounds :: words :: _ -> (
          match int_of_string_opt words with
          | Some w -> take ((name, w) :: acc) rest
          | None -> take acc rest)
        | _ -> List.rev acc)
  in
  take [] (find_table lines)

let critpath ?(top = 15) evs =
  let cells =
    List.sort
      (fun a b -> Float.compare b.dur_us a.dur_us)
      (cell_timings evs)
  in
  match cells with
  | [] ->
    "critpath: no timed cell spans in trace (record with wall-clock enabled, \
     e.g. bap_tables --trace-out)\n"
  | slowest :: _ ->
    let total = List.fold_left (fun acc c -> acc +. c.dur_us) 0. cells in
    let shown = List.filteri (fun i _ -> i < top) cells in
    let bar c =
      let w = int_of_float (c.dur_us /. slowest.dur_us *. 40.) in
      String.make (max 1 w) '#'
    in
    Printf.sprintf
      "critical path: %d timed cells, %.1f ms total cell time; slowest %d:\n\n"
      (List.length cells) (total /. 1e3) (List.length shown)
    ^ Bap_stats.Table.render
        ~headers:[ "cell"; "ms"; "outcome"; "" ]
        (List.map
           (fun c ->
             [
               c.cid;
               Printf.sprintf "%.1f" (c.dur_us /. 1e3);
               c.outcome;
               bar c;
             ])
           shown)
    ^ "\n"
