(** Offline analysis of JSONL traces (the engine behind [bap_trace]).

    All three reports are deterministic functions of the logical event
    stream: [summary] and [diff] ignore wall-clock fields entirely, and
    [critpath] is the only reader of [wall_us]. *)

type rollup = { spans : int; rounds : int; msgs : int; bits : int }

type summary_data = {
  events : int;
  tracks : int;
  runs : int;  (** completed [sim.run] spans *)
  total_rounds : int;
  total_msgs : int;
  total_bits : int;
  adversary_msgs : int;
  phases : (string * rollup) list;
      (** per sub-protocol phase, sorted by name; each simulated round's
          messages/bits are attributed to the innermost core span whose
          round extent contains it, or to ["other"]. *)
}

val load : string -> Telemetry.event list
(** Parse a JSONL trace file. Raises [Failure] with [file:line: reason]
    on a malformed line. *)

val strip_wall : string -> string
(** Remove every [wall_us] field from JSONL text — the canonical
    preparation before comparing two traces for logical equality. *)

val summarize : Telemetry.event list -> summary_data

val summary : Telemetry.event list -> string
(** Human-readable rollup: headline rounds/messages/bits plus a
    per-phase table. *)

val diff : Telemetry.event list -> Telemetry.event list -> string
(** Regression-style delta table between two traces (headline metrics
    and per-phase rounds/msgs). *)

val critpath : ?top:int -> Telemetry.event list -> string
(** The [top] (default 15) slowest cells by wall time, with ASCII
    timing bars. Requires a trace recorded with wall-clock enabled. *)

type alloc_rollup = { a_spans : int; a_rounds : int; a_words : int }

type alloc_data = {
  a_events : int;
  a_tracks : int;
  a_runs : int;
  a_rounds : int;  (** rounds carrying a [minor_words] attribute *)
  a_total_words : int;  (** sum of all rows — every measured word, once *)
  a_other_words : int;  (** rounds covered by no core span *)
  a_process_words : int option;
      (** the process-wide total, when the trace carries an
          [alloc.process] instant (written by [bap_tables --alloc-out]) *)
  a_rows : (string * alloc_rollup) list;  (** sorted by words, descending *)
  a_samples : (string * string * int) list;
      (** [(site, phase, samples)] from the Memprof profiler, descending *)
}

val alloc_summarize : Telemetry.event list -> alloc_data
(** Per-phase allocation attribution from the [minor_words] attributes
    the memprobe adds to round / sim.run / cell / sweep End events.
    Rounds attribute like {!summarize} (innermost covering core span,
    else ["other"]); a run's words outside its rounds stay with
    ["sim.run"], a cell's outside its runs with ["cell"], the sweep's
    remainder with ["harness"] — so the rows partition the measured
    total. *)

val alloc_report : ?top:int -> Telemetry.event list -> string
(** Human-readable allocation table (exact word counts, words/round,
    share, ASCII bars) plus the [top] (default 15) sampled allocation
    sites when the trace carries any. *)

val parse_alloc_report : string -> (string * int) list
(** Recover [(phase, minor_words)] rows from {!alloc_report} output —
    the round-trip the CLI's tests pin down. *)
