(** Offline analysis of JSONL traces (the engine behind [bap_trace]).

    All three reports are deterministic functions of the logical event
    stream: [summary] and [diff] ignore wall-clock fields entirely, and
    [critpath] is the only reader of [wall_us]. *)

type rollup = { spans : int; rounds : int; msgs : int; bits : int }

type summary_data = {
  events : int;
  tracks : int;
  runs : int;  (** completed [sim.run] spans *)
  total_rounds : int;
  total_msgs : int;
  total_bits : int;
  adversary_msgs : int;
  phases : (string * rollup) list;
      (** per sub-protocol phase, sorted by name; each simulated round's
          messages/bits are attributed to the innermost core span whose
          round extent contains it, or to ["other"]. *)
}

val load : string -> Telemetry.event list
(** Parse a JSONL trace file. Raises [Failure] with [file:line: reason]
    on a malformed line. *)

val strip_wall : string -> string
(** Remove every [wall_us] field from JSONL text — the canonical
    preparation before comparing two traces for logical equality. *)

val summarize : Telemetry.event list -> summary_data

val summary : Telemetry.event list -> string
(** Human-readable rollup: headline rounds/messages/bits plus a
    per-phase table. *)

val diff : Telemetry.event list -> Telemetry.event list -> string
(** Regression-style delta table between two traces (headline metrics
    and per-phase rounds/msgs). *)

val critpath : ?top:int -> Telemetry.event list -> string
(** The [top] (default 15) slowest cells by wall time, with ASCII
    timing bars. Requires a trace recorded with wall-clock enabled. *)
