(* Memprobe: the allocation half of the telemetry spine.

   The span layer (PR 5) attributes rounds, messages and bits to phases;
   this module attributes *allocation* — per-span GC deltas folded into
   the sharded metrics registry under the innermost covering span, plus
   an optional [Gc.Memprof]-backed sampling profiler that maps
   allocation backtraces to phase names.

   Everything is off by default. The fast path of every entry point is
   one [Atomic.get] and a branch; with the probe disabled, instrumented
   code allocates nothing and emits nothing, so tracing-off runs stay
   byte-identical to a build without the probe.

   Two GC primitives, deliberately separated:

   - [Gc.minor_words ()] is *domain-local* in OCaml 5: it counts only
     the words allocated by the calling domain. That makes it the one
     correct primitive for per-span attribution under a domain pool —
     a cell measured on its worker domain sees only its own words, so
     per-span numbers are deterministic and independent of [--jobs].
   - [Gc.quick_stat ()] is *process-global* (domains publish their
     counters into it). It is the right primitive for whole-process
     snapshots — heap size, compactions, promotion totals — and wrong
     for per-span deltas, where other domains' allocation would bleed
     into the interval. Per-phase deltas of its global fields are exact
     at [--jobs 1] and documented as approximate above that.

   All [Gc] reads in the repo are confined to this file: the D002 lint
   rule pins [Gc.quick_stat]/[Gc.minor_words]/[Gc.Memprof.*] to
   lib/telemetry the same way it pins the wall clock to the timing
   shims, so allocation numbers flow through one audited probe. *)

(* ---------- process snapshots (Gc.quick_stat) ---------- *)

type snapshot = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
}

let snapshot () =
  let s = Gc.quick_stat () in
  {
    minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    heap_words = s.Gc.heap_words;
  }

(* Counter fields subtract; level fields (heap, compactions count as a
   level too when read as "current") are kept from [after] so a delta
   still answers "where is the heap now". *)
let delta ~before ~after =
  {
    minor_words = after.minor_words -. before.minor_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    major_words = after.major_words -. before.major_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
    compactions = after.compactions - before.compactions;
    heap_words = after.heap_words;
  }

(* ---------- enable/disable ---------- *)

let on : bool Atomic.t = Atomic.make false
let baseline : snapshot option Atomic.t = Atomic.make None
let enabled () = Atomic.get on

let enable () =
  Atomic.set baseline (Some (snapshot ()));
  Atomic.set on true

let disable () = Atomic.set on false

let process_delta () =
  match Atomic.get baseline with
  | Some before -> delta ~before ~after:(snapshot ())
  | None -> snapshot ()

let domain_minor_words () = Gc.minor_words ()

(* ---------- per-span attribution (the metrics fold) ---------- *)

(* A phase frame remembers where its interval started and accumulates
   its children's totals, so on exit [self = total - children] lands
   under the innermost covering span — the same "innermost wins"
   convention the trace analysis uses for round attribution. Frames
   live on a per-domain stack: spans never migrate domains (a fiber
   runs its whole protocol on one domain; a pool task is a whole cell),
   so no synchronization is needed. *)
type frame = {
  fname : string;
  start_minor : float; (* domain-local *)
  start_global : snapshot; (* process-global; exact at jobs=1 *)
  mutable child_minor : float;
  mutable child_promoted : float;
  mutable child_major : float;
  mutable child_minor_col : int;
  mutable child_major_col : int;
}

let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let current_phase () =
  match !(Domain.DLS.get stack_key) with [] -> None | fr :: _ -> Some fr.fname

let phase name f =
  if not (Atomic.get on) then f ()
  else begin
    let st = Domain.DLS.get stack_key in
    let fr =
      {
        fname = name;
        start_minor = Gc.minor_words ();
        start_global = snapshot ();
        child_minor = 0.;
        child_promoted = 0.;
        child_major = 0.;
        child_minor_col = 0;
        child_major_col = 0;
      }
    in
    st := fr :: !st;
    let finish () =
      match !st with
      | top :: rest when top == fr ->
        st := rest;
        let total_minor = Gc.minor_words () -. fr.start_minor in
        let g = delta ~before:fr.start_global ~after:(snapshot ()) in
        (match rest with
        | parent :: _ ->
          parent.child_minor <- parent.child_minor +. total_minor;
          parent.child_promoted <- parent.child_promoted +. g.promoted_words;
          parent.child_major <- parent.child_major +. g.major_words;
          parent.child_minor_col <- parent.child_minor_col + g.minor_collections;
          parent.child_major_col <- parent.child_major_col + g.major_collections
        | [] -> ());
        let self_minor = total_minor -. fr.child_minor in
        Telemetry.Metrics.counter ("alloc.spans/" ^ name) 1;
        Telemetry.Metrics.counter
          ("alloc.minor_words/" ^ name)
          (int_of_float self_minor);
        Telemetry.Metrics.counter
          ("alloc.promoted_words/" ^ name)
          (int_of_float (g.promoted_words -. fr.child_promoted));
        Telemetry.Metrics.counter
          ("alloc.major_words/" ^ name)
          (int_of_float (g.major_words -. fr.child_major));
        Telemetry.Metrics.counter
          ("alloc.minor_collections/" ^ name)
          (g.minor_collections - fr.child_minor_col);
        Telemetry.Metrics.counter
          ("alloc.major_collections/" ^ name)
          (g.major_collections - fr.child_major_col);
        Telemetry.Metrics.observe
          ("alloc.span_minor_words/" ^ name)
          (int_of_float total_minor)
      | _ ->
        (* Imbalanced unwind (an effect handler crossed the frame):
           drop the frame wherever it sits rather than corrupt the
           stack; its words stay with the enclosing span. *)
        st := List.filter (fun g -> g != fr) !st
    in
    Fun.protect ~finally:finish f
  end

let phase_if cond name f = if cond then phase name f else f ()

(* ---------- sampling profiler (Gc.Memprof) ---------- *)

(* The sampler maps allocation backtraces to the phase on top of the
   sampling domain's frame stack. Callbacks run at allocation points,
   so they must never take a lock a slow path holds: samples accumulate
   in per-domain tables (registered once per domain under a mutex, the
   same discipline as the metrics shards) and are merged on read.

   OCaml 5.1's runtime ships the Memprof interface but refuses to start
   it under multicore ([Failure "Gc.memprof.start: not implemented in
   multicore"]); 5.2 restored it. [start_sampling] therefore reports
   availability instead of assuming it, and every consumer degrades to
   "no sampled sites" with the failure reason in hand. *)

type sample_table = (string * string, int ref) Hashtbl.t

type sampler = {
  tables_mu : Mutex.t;
  mutable tables : sample_table list;
}

let sampler : sampler option Atomic.t = Atomic.make None
let sampling_on : bool Atomic.t = Atomic.make false
let sampling_error : string option Atomic.t = Atomic.make None

let sampler_get () =
  match Atomic.get sampler with
  | Some s -> s
  | None ->
    let s = { tables_mu = Mutex.create (); tables = [] } in
    if Atomic.compare_and_set sampler None (Some s) then s
    else Option.get (Atomic.get sampler)

let table_key : sample_table Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let t : sample_table = Hashtbl.create 64 in
      let s = sampler_get () in
      Mutex.lock s.tables_mu;
      s.tables <- t :: s.tables;
      Mutex.unlock s.tables_mu;
      t)

let site_of callstack =
  match Printexc.backtrace_slots callstack with
  | None -> "<unknown>"
  | Some slots ->
    let rec pick i =
      if i >= Array.length slots then "<unknown>"
      else
        match Printexc.Slot.location slots.(i) with
        | Some l
          when not (Filename.basename l.Printexc.filename = "memprobe.ml") ->
          Printf.sprintf "%s:%d" l.Printexc.filename l.Printexc.line_number
        | _ -> pick (i + 1)
    in
    pick 0

let record_sample (a : Gc.Memprof.allocation) =
  let phase =
    match current_phase () with Some p -> p | None -> "(no phase)"
  in
  let site = site_of a.Gc.Memprof.callstack in
  let t = Domain.DLS.get table_key in
  (match Hashtbl.find_opt t (phase, site) with
  | Some r -> r := !r + a.Gc.Memprof.n_samples
  | None -> Hashtbl.add t (phase, site) (ref a.Gc.Memprof.n_samples));
  None

let start_sampling ?(rate = 1e-4) () =
  if Atomic.get sampling_on then true
  else
    try
      (* 5.1 returns unit, 5.2 returns an abstract [t]; [ignore] keeps
         the call well-typed on both compilers. *)
      ignore
        (Gc.Memprof.start ~sampling_rate:rate ~callstack_size:16
           {
             Gc.Memprof.null_tracker with
             Gc.Memprof.alloc_minor = record_sample;
             alloc_major = record_sample;
           });
      Atomic.set sampling_on true;
      Atomic.set sampling_error None;
      true
    with Failure msg ->
      Atomic.set sampling_error (Some msg);
      false

let stop_sampling () =
  if Atomic.get sampling_on then begin
    Gc.Memprof.stop ();
    Atomic.set sampling_on false
  end

let sampling_failure () = Atomic.get sampling_error

let samples () =
  match Atomic.get sampler with
  | None -> []
  | Some s ->
    let merged : sample_table = Hashtbl.create 64 in
    Mutex.lock s.tables_mu;
    let tables = s.tables in
    Mutex.unlock s.tables_mu;
    List.iter
      (fun t ->
        (* LINT: waive D003 commutative merge; the fold below is sorted *)
        Hashtbl.iter
          (fun key n ->
            match Hashtbl.find_opt merged key with
            | Some r -> r := !r + !n
            | None -> Hashtbl.add merged key (ref !n))
          t)
      tables;
    Hashtbl.fold (fun (phase, site) n acc -> (phase, site, !n) :: acc) merged []
    |> List.sort compare

(* Sampled sites ride the trace as instants on whatever track the
   caller is on, sorted, so a trace file is self-contained for
   [bap_trace alloc] and byte-stable for a fixed sample set. *)
let flush_samples_to_trace () =
  List.iter
    (fun (phase, site, n) ->
      Telemetry.instant ~cat:"alloc" ~name:"alloc.sample"
        ~attrs:(fun () ->
          [
            ("phase", Telemetry.Str phase);
            ("site", Telemetry.Str site);
            ("samples", Telemetry.Int n);
          ])
        ())
    (samples ())
