(* Process-wide instrumentation: structured spans with logical
   timestamps, a sharded metrics registry, and pluggable sinks.

   Determinism contract. Every event carries a per-track logical
   sequence number ([seq]); wall-clock time is an *optional* extra field
   ([wall_us]) that only exists when the caller opted in at [install]
   time. A track is written by exactly one domain at a time (the main
   domain owns "main"; an engine cell owns its own track for the
   duration of [with_track]), so per-track event order is the program
   order of that domain and is identical across [--jobs] settings. The
   canonical stream ([events] / the JSONL flush) lists "main" first and
   the remaining tracks sorted by name, which removes the only other
   source of scheduling dependence. Strip [wall_us] and two traces of
   the same seeded run compare byte-equal.

   This module is the single sanctioned home of the wall clock outside
   the execution layer: lint rule D002 allows [Unix.gettimeofday] in
   lib/telemetry (and nowhere else in lib/) precisely so that timing
   stays confined behind this API.

   Overhead contract. When nothing is installed, [span]/[instant]/
   [Metrics.counter] are one [Atomic.get] plus a branch; attribute
   lists are built by thunks that are never called. *)

type value = Int of int | Float of float | Str of string | Bool of bool
type phase = Begin | End | Instant

type event = {
  name : string;
  cat : string;
  ph : phase;
  seq : int; (* logical timestamp: position within the track *)
  track : string;
  attrs : (string * value) list;
  wall_us : float option;
}

type mode = Counters_only | Memory | Jsonl of string

type track = {
  tname : string;
  tmu : Mutex.t;
  buf : event Queue.t;
  mutable tseq : int;
}

module H = struct
  (* Exact (lossless) histogram summary: merging two summaries gives the
     summary of the concatenated observation streams, so folding the
     per-domain shards in any order yields the same result. *)
  type hist = { count : int; total : int; min_v : int; max_v : int }

  let empty = { count = 0; total = 0; min_v = 0; max_v = 0 }

  let observe h v =
    {
      count = h.count + 1;
      total = h.total + v;
      min_v = (if h.count = 0 then v else min h.min_v v);
      max_v = (if h.count = 0 then v else max h.max_v v);
    }

  let merge a b =
    if a.count = 0 then b
    else if b.count = 0 then a
    else
      {
        count = a.count + b.count;
        total = a.total + b.total;
        min_v = min a.min_v b.min_v;
        max_v = max a.max_v b.max_v;
      }
end

type shard = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, int ref) Hashtbl.t;
  hists : (string, H.hist ref) Hashtbl.t;
}

type state = {
  gen : int;
  mode : mode;
  wall : bool;
  limit : int;
  t0 : float;
  mu : Mutex.t; (* guards [tracks] and [shards] registration *)
  mutable tracks : track list; (* registration order; canonicalised on read *)
  mutable shards : shard list;
  events_total : int Atomic.t;
  dropped_n : int Atomic.t;
}

let state : state option Atomic.t = Atomic.make None
let generation : int Atomic.t = Atomic.make 0

(* Per-domain cache of the current track / metrics shard, tagged with
   the installation generation so a reinstall invalidates stale
   entries. *)
type tls = { mutable g : int; mutable tr : track option; mutable sh : shard option }

let tls_key : tls Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { g = -1; tr = None; sh = None })

let tls_for st =
  let slot = Domain.DLS.get tls_key in
  if slot.g <> st.gen then begin
    slot.g <- st.gen;
    slot.tr <- None;
    slot.sh <- None
  end;
  slot

let new_track name =
  { tname = name; tmu = Mutex.create (); buf = Queue.create (); tseq = 0 }

let find_track st name =
  Mutex.lock st.mu;
  let tr =
    match List.find_opt (fun t -> t.tname = name) st.tracks with
    | Some t -> t
    | None ->
      let t = new_track name in
      st.tracks <- t :: st.tracks;
      t
  in
  Mutex.unlock st.mu;
  tr

let install ?(wall = false) ?(limit = 5_000_000) mode =
  let gen = 1 + Atomic.fetch_and_add generation 1 in
  let st =
    {
      gen;
      mode;
      wall;
      limit;
      t0 = Unix.gettimeofday ();
      mu = Mutex.create ();
      tracks = [ new_track "main" ];
      shards = [];
      events_total = Atomic.make 0;
      dropped_n = Atomic.make 0;
    }
  in
  Atomic.set state (Some st)

let tracing st =
  match st.mode with Counters_only -> false | Memory | Jsonl _ -> true

let enabled () =
  match Atomic.get state with
  | Some st when tracing st -> Some st
  | _ -> None

let cur_track st =
  let slot = tls_for st in
  match slot.tr with
  | Some tr -> tr
  | None ->
    let tr = find_track st "main" in
    slot.tr <- Some tr;
    tr

let with_track name f =
  match enabled () with
  | None -> f ()
  | Some st ->
    let slot = tls_for st in
    let saved = slot.tr in
    slot.tr <- Some (find_track st name);
    Fun.protect ~finally:(fun () -> slot.tr <- saved) f

let emit st tr ~name ~cat ~ph ~attrs =
  if Atomic.fetch_and_add st.events_total 1 >= st.limit then
    Atomic.incr st.dropped_n
  else begin
    let wall_us =
      if st.wall then Some ((Unix.gettimeofday () -. st.t0) *. 1e6) else None
    in
    Mutex.lock tr.tmu;
    let seq = tr.tseq in
    tr.tseq <- seq + 1;
    Queue.push { name; cat; ph; seq; track = tr.tname; attrs; wall_us } tr.buf;
    Mutex.unlock tr.tmu
  end

let eval = function None -> [] | Some f -> f ()

let span ?(cat = "") ?attrs ?end_attrs ~name f =
  match enabled () with
  | None -> f ()
  | Some st -> (
    let tr = cur_track st in
    emit st tr ~name ~cat ~ph:Begin ~attrs:(eval attrs);
    match f () with
    | v ->
      emit st tr ~name ~cat ~ph:End ~attrs:(eval end_attrs);
      v
    | exception e ->
      emit st tr ~name ~cat ~ph:End
        ~attrs:[ ("error", Str (Printexc.to_string e)) ];
      raise e)

let span_if cond ?cat ?attrs ?end_attrs ~name f =
  if cond then span ?cat ?attrs ?end_attrs ~name f else f ()

let instant ?(cat = "") ?attrs ~name () =
  match enabled () with
  | None -> ()
  | Some st ->
    let tr = cur_track st in
    emit st tr ~name ~cat ~ph:Instant ~attrs:(eval attrs)

(* "main" first, the rest sorted by name: track order must not leak the
   work-stealing schedule into the canonical stream. *)
let canonical_tracks st =
  Mutex.lock st.mu;
  let tracks = st.tracks in
  Mutex.unlock st.mu;
  let main, rest = List.partition (fun t -> t.tname = "main") tracks in
  main @ List.sort (fun a b -> String.compare a.tname b.tname) rest

let snapshot_track tr =
  Mutex.lock tr.tmu;
  let evs = List.of_seq (Queue.to_seq tr.buf) in
  Mutex.unlock tr.tmu;
  evs

let events () =
  match Atomic.get state with
  | None -> []
  | Some st -> List.concat_map snapshot_track (canonical_tracks st)

let dropped () =
  match Atomic.get state with
  | None -> 0
  | Some st -> Atomic.get st.dropped_n

let attr_json (k, v) =
  Printf.sprintf "\"%s\":%s" (Json.escape k)
    (match v with
    | Int i -> string_of_int i
    | Float f -> Printf.sprintf "%.6g" f
    | Str s -> Printf.sprintf "\"%s\"" (Json.escape s)
    | Bool b -> string_of_bool b)

(* Chrome trace-event compatible line. [wall_us] is deliberately the
   last field so a determinism check can strip it with one regex. *)
let to_json_line ~tid e =
  let ph = match e.ph with Begin -> "B" | End -> "E" | Instant -> "i" in
  let args =
    match e.attrs with
    | [] -> ""
    | l -> Printf.sprintf ",\"args\":{%s}" (String.concat "," (List.map attr_json l))
  in
  let wall =
    match e.wall_us with
    | None -> ""
    | Some w -> Printf.sprintf ",\"wall_us\":%.3f" w
  in
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%d,\"pid\":0,\"tid\":%d,\"track\":\"%s\"%s%s}"
    (Json.escape e.name) (Json.escape e.cat) ph e.seq tid
    (Json.escape e.track) args wall

let flush_jsonl st path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iteri
        (fun tid tr ->
          List.iter
            (fun e ->
              output_string oc (to_json_line ~tid e);
              output_char oc '\n')
            (snapshot_track tr))
        (canonical_tracks st);
      let d = Atomic.get st.dropped_n in
      if d > 0 then
        output_string oc
          (Printf.sprintf
             "{\"name\":\"telemetry.dropped\",\"cat\":\"meta\",\"ph\":\"i\",\"ts\":0,\"pid\":0,\"tid\":0,\"track\":\"main\",\"args\":{\"dropped\":%d}}\n"
             d))

let shutdown () =
  match Atomic.get state with
  | None -> ()
  | Some st ->
    Atomic.set state None;
    (match st.mode with Jsonl path -> flush_jsonl st path | _ -> ())

(* The signal-path twin of [shutdown], on the journal's [signal_close]
   pattern: a handler may have interrupted the very domain that holds
   one of our mutexes mid-[emit], so every lock here is a [try_lock]
   and a contended track is simply skipped — losing at most the events
   of tracks actively being written at the instant of the signal,
   rather than deadlocking the exit path. The [state] swap is the same
   atomic handoff as [shutdown], so the two can race safely: exactly
   one of them flushes. *)
let signal_shutdown () =
  let cur = Atomic.get state in
  match cur with
  | None -> ()
  | Some st ->
    (* CAS on the very option value read above (physical equality):
       rebuilding [Some st] would always miss. *)
    if Atomic.compare_and_set state cur None then begin
      match st.mode with
      | Jsonl path ->
        let tracks =
          if Mutex.try_lock st.mu then begin
            let t = st.tracks in
            Mutex.unlock st.mu;
            t
          end
          else
            (* Registration lock contended: read the list racily. The
               field only ever grows by consing immutable track values,
               so a stale read misses the newest track at worst. *)
            st.tracks
        in
        let main, rest = List.partition (fun t -> t.tname = "main") tracks in
        let tracks =
          main @ List.sort (fun a b -> String.compare a.tname b.tname) rest
        in
        (try
           let oc = open_out_bin path in
           Fun.protect
             ~finally:(fun () -> close_out oc)
             (fun () ->
               List.iteri
                 (fun tid tr ->
                   if Mutex.try_lock tr.tmu then begin
                     let evs = List.of_seq (Queue.to_seq tr.buf) in
                     Mutex.unlock tr.tmu;
                     List.iter
                       (fun e ->
                         output_string oc (to_json_line ~tid e);
                         output_char oc '\n')
                       evs
                   end)
                 tracks)
         with Sys_error _ -> ())
      | Counters_only | Memory -> ()
    end

module Metrics = struct
  type hist = H.hist = { count : int; total : int; min_v : int; max_v : int }

  type snap = {
    counters : (string * int) list;
    gauges : (string * int) list;
    hists : (string * hist) list;
  }

  let merge_hist = H.merge

  let shard_for st =
    let slot = tls_for st in
    match slot.sh with
    | Some sh -> sh
    | None ->
      let sh : shard =
        {
          counters = Hashtbl.create 16;
          gauges = Hashtbl.create 16;
          hists = Hashtbl.create 16;
        }
      in
      Mutex.lock st.mu;
      st.shards <- sh :: st.shards;
      Mutex.unlock st.mu;
      slot.sh <- Some sh;
      sh

  let bump tbl name f init =
    match Hashtbl.find_opt tbl name with
    | Some r -> r := f !r
    | None -> Hashtbl.replace tbl name (ref init)

  let counter name v =
    match Atomic.get state with
    | None -> ()
    | Some st -> bump (shard_for st).counters name (fun x -> x + v) v

  let gauge_max name v =
    match Atomic.get state with
    | None -> ()
    | Some st -> bump (shard_for st).gauges name (fun x -> max x v) v

  let observe name v =
    match Atomic.get state with
    | None -> ()
    | Some st ->
      bump (shard_for st).hists name
        (fun h -> H.observe h v)
        (H.observe H.empty v)

  let sorted_bindings tbl conv =
    Hashtbl.fold (fun k v acc -> (k, conv v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  (* Fold same-named bindings of a sorted association list. *)
  let group ~merge l =
    let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
    let rec go acc = function
      | [] -> List.rev acc
      | (k, v) :: rest -> (
        match acc with
        | (k', v') :: tl when String.equal k' k -> go ((k', merge v' v) :: tl) rest
        | _ -> go ((k, v) :: acc) rest)
    in
    go [] sorted

  let snapshot () =
    match Atomic.get state with
    | None -> { counters = []; gauges = []; hists = [] }
    | Some st ->
      Mutex.lock st.mu;
      let shards = st.shards in
      Mutex.unlock st.mu;
      let all select conv =
        List.concat_map (fun sh -> sorted_bindings (select sh) conv) shards
      in
      {
        counters = group ~merge:( + ) (all (fun s -> s.counters) (fun r -> !r));
        gauges = group ~merge:max (all (fun s -> s.gauges) (fun r -> !r));
        hists = group ~merge:H.merge (all (fun s -> s.hists) (fun r -> !r));
      }

  let to_json snap =
    let b = Buffer.create 512 in
    let obj name fields render =
      Buffer.add_string b (Printf.sprintf "  \"%s\": {" name);
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\n    \"%s\": %s" (Json.escape k) (render v)))
        fields;
      if fields <> [] then Buffer.add_string b "\n  ";
      Buffer.add_char b '}'
    in
    Buffer.add_string b "{\n  \"version\": 1,\n";
    obj "counters" snap.counters string_of_int;
    Buffer.add_string b ",\n";
    obj "gauges" snap.gauges string_of_int;
    Buffer.add_string b ",\n";
    obj "hists" snap.hists (fun (h : hist) ->
        Printf.sprintf
          "{\"count\": %d, \"total\": %d, \"mean\": %.3f, \"min\": %d, \"max\": %d}"
          h.count h.total
          (if h.count = 0 then 0. else float_of_int h.total /. float_of_int h.count)
          h.min_v h.max_v);
    Buffer.add_string b "\n}\n";
    Buffer.contents b
end
