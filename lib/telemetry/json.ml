(* Minimal JSON: a recursive-descent parser for the subset this project
   emits (no json dependency in the image) plus the escaping helper the
   emitters share. Lifted out of bap_gate so the gate, the telemetry
   sinks, and bap_trace agree on one wire format. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse of string

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char b '\n'
        | Some 't' -> Buffer.add_char b '\t'
        | Some 'r' -> Buffer.add_char b '\r'
        | Some (('"' | '\\' | '/') as c) -> Buffer.add_char b c
        | _ -> fail "unsupported escape");
        advance ();
        go ()
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let is_num c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when is_num c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (
        advance ();
        Obj [])
      else
        let rec fields acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        fields []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (
        advance ();
        List [])
      else
        let rec items acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        items []
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (number ())
    | None -> fail "unexpected end of input"
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int = function Some (Num f) -> Some (int_of_float f) | _ -> None
let to_float = function Some (Num f) -> Some f | _ -> None
let to_bool = function Some (Bool b) -> Some b | _ -> None
let to_string = function Some (Str s) -> Some s | _ -> None
let to_list = function Some (List l) -> Some l | _ -> None

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b
