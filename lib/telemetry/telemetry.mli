(** Structured spans, metrics, and trace sinks.

    The instrumentation layer for the whole stack: the simulator emits
    round spans, lib/core sub-protocols emit phase spans, and the
    execution engine emits cell lifecycle spans. Everything is keyed on
    {e logical} timestamps (per-track sequence numbers); wall-clock time
    is an opt-in extra field so traces stay deterministic by default.

    Nothing here touches stdout: sinks write to memory or to a file, so
    enabling telemetry never perturbs the byte-identical table output.

    When no sink is installed every entry point is a single atomic load
    plus a branch, and attribute thunks are never evaluated. *)

type value = Int of int | Float of float | Str of string | Bool of bool
(** Attribute values. Keep attributes logical (round numbers, message
    counts, outcomes) — never wall time or worker identity, which would
    break cross-[--jobs] trace equality. *)

type phase = Begin | End | Instant

type event = {
  name : string;
  cat : string;
  ph : phase;
  seq : int;  (** logical timestamp: position within the track *)
  track : string;
  attrs : (string * value) list;
  wall_us : float option;  (** only with [install ~wall:true] *)
}

type mode =
  | Counters_only  (** metrics registry live, no events recorded *)
  | Memory  (** events kept in memory; read back with {!events} *)
  | Jsonl of string  (** events flushed to this path at {!shutdown} *)

val install : ?wall:bool -> ?limit:int -> mode -> unit
(** Install a sink process-wide. [wall] (default false) stamps each
    event with microseconds since install. [limit] (default 5M) caps
    the number of recorded events; the overflow is counted in
    {!dropped} and noted in the JSONL flush, and determinism is only
    guaranteed for runs that stay under the cap. Reinstalling replaces
    the previous sink; its unread events are discarded. *)

val shutdown : unit -> unit
(** Uninstall. A [Jsonl] sink writes its file here (canonical track
    order: "main" first, the rest sorted by name). No-op when nothing
    is installed. *)

val signal_shutdown : unit -> unit
(** The signal-safe twin of {!shutdown}, for SIGINT/SIGTERM exit paths
    (the journal's [signal_close] idiom): every lock is a [try_lock],
    so a handler that interrupted a domain mid-emit skips that track
    instead of self-deadlocking. A [Jsonl] sink still gets a valid
    file containing every uncontended track. Races safely with
    {!shutdown} — exactly one of them flushes. *)

val span :
  ?cat:string ->
  ?attrs:(unit -> (string * value) list) ->
  ?end_attrs:(unit -> (string * value) list) ->
  name:string ->
  (unit -> 'a) ->
  'a
(** [span ~name f] brackets [f] with Begin/End events on the current
    track. [attrs] is evaluated at entry, [end_attrs] after [f]
    returns; both are thunks so a disabled sink costs nothing. If [f]
    raises, the End event carries an ["error"] attribute and the
    exception is re-raised. Safe around effect-performing code: the
    fiber may suspend and resume inside the span. *)

val span_if :
  bool ->
  ?cat:string ->
  ?attrs:(unit -> (string * value) list) ->
  ?end_attrs:(unit -> (string * value) list) ->
  name:string ->
  (unit -> 'a) ->
  'a
(** [span_if cond ...] is {!span} when [cond], else just the thunk.
    Used by lock-step protocol code to emit each phase span once (from
    process 0) instead of once per simulated process. *)

val instant :
  ?cat:string ->
  ?attrs:(unit -> (string * value) list) ->
  name:string ->
  unit ->
  unit
(** A single point event on the current track. *)

val with_track : string -> (unit -> 'a) -> 'a
(** [with_track name f] routes events emitted by [f] {e on this domain}
    to track [name] (created on first use). Tracks are owned by one
    domain at a time — the engine gives each executing cell its own
    track named by the cell id, which is what keeps per-track event
    order schedule-independent. *)

val events : unit -> event list
(** Snapshot of recorded events in canonical order ("main" track first,
    then tracks sorted by name; per-track program order). [[]] when no
    sink is installed or in [Counters_only] mode. Read before
    {!shutdown}. *)

val dropped : unit -> int
(** Events discarded because the [limit] was hit. *)

val to_json_line : tid:int -> event -> string
(** One Chrome trace-event-compatible JSON object (no newline). [tid]
    is the canonical track index. [wall_us], when present, is always
    the last field. *)

(** Named counters / gauges / histograms, sharded per domain and merged
    exactly on read — the fold is associative and commutative, so the
    snapshot does not depend on the work-stealing schedule. *)
module Metrics : sig
  type hist = { count : int; total : int; min_v : int; max_v : int }

  type snap = {
    counters : (string * int) list;  (** sorted by name *)
    gauges : (string * int) list;  (** sorted by name; merged with max *)
    hists : (string * hist) list;  (** sorted by name *)
  }

  val counter : string -> int -> unit
  (** Add to a named counter (no-op when telemetry is off). *)

  val gauge_max : string -> int -> unit
  (** Raise a named high-water mark. *)

  val observe : string -> int -> unit
  (** Record one observation into a named histogram. *)

  val merge_hist : hist -> hist -> hist
  (** Exact merge: [merge_hist a b] summarises the concatenation of the
      streams summarised by [a] and [b]. Associative, commutative, with
      the empty histogram as identity. *)

  val snapshot : unit -> snap
  (** Merge all per-domain shards. Call after parallel work quiesces. *)

  val to_json : snap -> string
  (** Stable JSON rendering (keys sorted). *)
end
