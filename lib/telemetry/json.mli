(** Minimal JSON for the project's own wire formats.

    The image has no json library, so everything that emits JSON
    ([bap_tables --stats-json], the JSONL trace sink, metrics snapshots)
    hand-writes it, and everything that reads it back ([bap_gate],
    [bap_trace]) parses with this module. The parser covers exactly the
    subset those emitters produce: objects, arrays, strings with the
    common escapes (newline, tab, quote, backslash, slash), numbers,
    booleans, null. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse of string
(** Raised by {!parse} with a human-readable reason and byte offset. *)

val parse : string -> t
(** Parse one complete JSON value; trailing garbage is an error. *)

val member : string -> t -> t option
(** [member k j] is the field [k] of object [j], if any. *)

val to_int : t option -> int option
val to_float : t option -> float option
val to_bool : t option -> bool option
val to_string : t option -> string option
val to_list : t option -> t list option

val escape : string -> string
(** Escape a string for embedding between double quotes in JSON. *)
