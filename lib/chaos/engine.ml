(* One chaos execution: a protocol, a system configuration, and a fault
   schedule in; a safety verdict out.

   The engine compiles the schedule into the adversary + network-hook
   pair (see {!Injector}), runs the chosen protocol under a delivery
   trace, and passes every observable through the {!Oracle}. Exceptions
   escaping protocol code and round-limit overruns are caught and
   reported as violations rather than crashing the campaign — a fuzzer
   must survive what it finds. *)

module Advice = Bap_prediction.Advice
module Pki = Bap_crypto.Pki
module Trace = Bap_sim.Trace

module Make (V : Bap_core.Value.S) = struct
  module S = Bap_core.Stack.Make (V)
  module Injector = Injector.Make (V) (S.W)
  module Oracle = Oracle.Make (V) (S.W)
  module Pk = Bap_baselines.Phase_king.Make (V) (S.W) (S.R)

  type protocol = Unauth | Auth | Es_baseline | Pk_baseline

  let protocol_name = function
    | Unauth -> "unauth"
    | Auth -> "auth"
    | Es_baseline -> "es"
    | Pk_baseline -> "pk"

  type config = {
    protocol : protocol;
    t : int;
    faulty : int array;
    inputs : V.t array;  (** Length [n]. *)
    advice : Advice.t array;  (** Per-process; ignored by the baselines. *)
    schedule : Schedule.t;
  }

  let n_of cfg = Array.length cfg.inputs

  (* The deterministic worst-case round count of each protocol: every
     implementation in this repository runs a fixed schedule (early
     deciders pad with silent rounds), so exceeding this bound is a
     safety violation, not a slow run. *)
  let round_bound cfg =
    match cfg.protocol with
    | Unauth -> S.Wrapper.rounds (S.unauth_config ~t:cfg.t) ~t:cfg.t
    | Auth ->
      (* Only the round-arithmetic fields of the config are read. *)
      let pki = Pki.create ~n:1 in
      S.Wrapper.rounds (S.auth_config ~pki ~key:(Pki.key pki 0) ~t:cfg.t) ~t:cfg.t
    | Es_baseline ->
      S.Early_stopping.rounds ~gc_rounds:S.Graded_unauth.rounds ~phases:(cfg.t + 1)
    | Pk_baseline -> Pk.rounds ~gc_rounds:S.Graded_unauth.rounds ~t:cfg.t

  type report = {
    violations : Oracle.violation list;
    rounds : int;
    decisions : (int * V.t) list;  (** Honest decisions, ascending id. *)
  }

  let has_equivocation schedule =
    List.exists (function Schedule.Equivocate _ -> true | _ -> false) schedule

  (* [sabotage_validity] is a self-test of the harness, reachable from
     [bap_fuzz --self-test]: it simulates a protocol whose validity
     protection is broken by tampering with the first honest decision
     whenever the schedule contains an equivocation fault. The oracles
     must then fire and the shrinker must reduce the schedule to (about)
     that single fault — proving the detection pipeline is live, not
     vacuously green. *)
  let sabotage ~mutant cfg decisions =
    if not (has_equivocation cfg.schedule) then decisions
    else
      match decisions with
      | (i, v) :: rest -> (i, mutant 1 v) :: rest
      | [] -> []

  let run ?(sabotage_validity = false) ?(with_trace = true) ~mutant cfg =
    let n = n_of cfg in
    let t = cfg.t in
    let bound = round_bound cfg in
    let adversary = Injector.adversary ~mutant cfg.schedule in
    let network = Injector.network cfg.schedule in
    (* Without a trace the runtime may take its counted fast path and
       the monitor oracle is skipped: the decision-level oracles
       (agreement/validity/termination) still run. The model checker
       uses this to afford exhaustive enumeration; the fuzzer keeps the
       full-observer default. *)
    let trace = if with_trace then Some (Trace.create ~limit:2_000_000 ()) else None in
    let max_rounds = bound + 5 in
    let outcome =
      try
        Ok
          (match cfg.protocol with
          | Unauth ->
            let o =
              S.run_unauth ~adversary ?trace ~max_rounds ~network ~t ~faulty:cfg.faulty
                ~inputs:cfg.inputs ~advice:cfg.advice ()
            in
            ( List.map (fun (i, r) -> (i, r.S.Wrapper.value)) (S.R.honest_decisions o),
              o.S.R.rounds )
          | Auth ->
            let o, _pki =
              S.run_auth
                ~adversary:(fun _pki -> adversary)
                ?trace ~max_rounds ~network ~t ~faulty:cfg.faulty ~inputs:cfg.inputs
                ~advice:cfg.advice ()
            in
            ( List.map (fun (i, r) -> (i, r.S.Wrapper.value)) (S.R.honest_decisions o),
              o.S.R.rounds )
          | Es_baseline ->
            let o =
              S.R.run ~max_rounds ?trace ~network ~n ~faulty:cfg.faulty ~adversary
                (fun ctx ->
                  let gc c ~tag v = S.Graded_unauth.run c ~t ~tag v in
                  S.Early_stopping.run ctx ~gc ~gc_rounds:S.Graded_unauth.rounds
                    ~phases:(t + 1) ~base_tag:0
                    cfg.inputs.(S.R.id ctx))
            in
            ( List.map
                (fun (i, r) -> (i, r.S.Early_stopping.value))
                (S.R.honest_decisions o),
              o.S.R.rounds )
          | Pk_baseline ->
            let o =
              S.R.run ~max_rounds ?trace ~network ~n ~faulty:cfg.faulty ~adversary
                (fun ctx ->
                  let gc c ~tag v = S.Graded_unauth.run c ~t ~tag v in
                  Pk.run ctx ~gc ~t ~base_tag:0 cfg.inputs.(S.R.id ctx))
            in
            (S.R.honest_decisions o, o.S.R.rounds))
      with
      | S.R.Round_limit_exceeded r -> Error (Oracle.Termination { rounds = r; bound })
      | exn -> Error (Oracle.Crash { exn = Printexc.to_string exn })
    in
    match outcome with
    | Error v -> { violations = [ v ]; rounds = 0; decisions = [] }
    | Ok (decisions, rounds) ->
      let decisions =
        if sabotage_validity then sabotage ~mutant cfg decisions else decisions
      in
      let violations =
        Oracle.check ~n ~faulty:cfg.faulty ~inputs:cfg.inputs ~bound ~rounds ~decisions
          trace
      in
      { violations; rounds; decisions }

  let pp_config ppf cfg =
    Fmt.pf ppf "@[<v>protocol=%s n=%d t=%d faulty=[%a]@,inputs=[%a]@,advice=[%a]@]"
      (protocol_name cfg.protocol) (n_of cfg) cfg.t
      Fmt.(array ~sep:(any ";") int)
      cfg.faulty
      Fmt.(array ~sep:(any ";") V.pp)
      cfg.inputs
      Fmt.(array ~sep:(any " ") Advice.pp)
      cfg.advice

  let pp_report ppf r =
    Fmt.pf ppf "@[<v>rounds=%d decisions=[%a]@,%a@]" r.rounds
      Fmt.(list ~sep:(any ";") (pair ~sep:(any ":") int V.pp))
      r.decisions
      Fmt.(list ~sep:cut Oracle.pp_violation)
      r.violations
end
