(** Seeded chaos schedules for the execution harness itself.

    Where {!Schedule} injects faults into the *simulated protocol*, this
    module injects them into the *stack that runs the experiments*:
    worker crashes, artificial hangs, and cache-shard corruption, all
    derived purely from (seed, cell key, attempt). Same seed, same
    faults — at any [--jobs] level — so tests can assert the supervisor
    recovers a fault-injected sweep to byte-identical output.

    No dependency on [lib/exec]: the sweep binaries adapt {!fault} to
    [Supervisor.injected]. *)

type fault = Crash | Hang

type frame_fault =
  | Corrupt_payload  (** flip one payload byte before it hits the wire *)
  | Disconnect_mid_frame
      (** close the connection after a strict prefix of the frame *)
  | Disconnect_on_respond
      (** send the frame whole, then close before reading the response
          — the server's answer hits a vanished client *)

type t

val create :
  ?crash_pct:int ->
  ?hang_pct:int ->
  ?doomed_pct:int ->
  ?cache_pct:int ->
  ?faulty_attempts:int ->
  ?frame_corrupt_pct:int ->
  ?disconnect_pct:int ->
  ?respond_disconnect_pct:int ->
  ?kill9_pct:int ->
  seed:int ->
  unit ->
  t
(** Defaults: 25% crash, 10% hang, 0% doomed, 25% cache corruption,
    [faulty_attempts = 2], 0% frame corruption, 0% disconnects (mid-
    frame or on-respond), 0% kill9. A non-doomed cell only faults on
    its first [faulty_attempts] attempts, so any retry budget >= that
    recovers it — the default schedule degrades nothing. [doomed_pct]
    marks cells that fault on {e every} attempt, forcing quarantine.
    The frame percentages drive client-side wire chaos for the serve
    load generator; [kill9_pct] drives the server-side SIGKILL probe.
    Raises [Invalid_argument] on percentages outside 0..100,
    [crash_pct + hang_pct > 100], or
    [frame_corrupt_pct + disconnect_pct + respond_disconnect_pct
    > 100]. *)

val decide : t -> key:string -> attempt:int -> fault option
(** The fault (if any) to inject into this attempt of this cell. Pure:
    depends only on the schedule and its arguments. *)

val doomed : t -> key:string -> bool
(** Whether this cell faults on every attempt under this schedule. *)

val frame_fault : t -> key:string -> frame_fault option
(** The wire-level fault (if any) a chaos client should apply to the
    frame identified by [key]. Pure, keyed on the frame rather than an
    attempt: a corrupted frame is corrupted in every run of the seed,
    which lets the load generator exempt exactly those frames from its
    byte-identity oracle. *)

val kill9 : t -> key:string -> bool
(** Whether the server should die by SIGKILL at the answer point of
    the instance identified by [key] — after execution, before the
    answer is journaled: the worst crash point durability must
    survive. Pure and attempt-free, so a resumed incarnation would
    re-fire on the same keys; run the restart without a kill9
    schedule. *)

val corrupt_byte : t -> key:string -> len:int -> int * int
(** [(offset, mask)] for a [Corrupt_payload] fault on a frame of
    [len] bytes: flip the byte at [offset] with [xor mask]. The mask is
    never 0, so the damage is always visible. Raises
    [Invalid_argument] if [len <= 0]. *)

val corrupt_cache : t -> dir:string -> int
(** Flip one byte in a deterministic subset ([cache_pct]) of the
    [*.rows] shards under [dir], returning how many were damaged —
    exactly the torn-write damage the cache's verify-on-read must absorb
    as misses. Missing directory = 0. *)
