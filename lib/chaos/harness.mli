(** Seeded chaos schedules for the execution harness itself.

    Where {!Schedule} injects faults into the *simulated protocol*, this
    module injects them into the *stack that runs the experiments*:
    worker crashes, artificial hangs, and cache-shard corruption, all
    derived purely from (seed, cell key, attempt). Same seed, same
    faults — at any [--jobs] level — so tests can assert the supervisor
    recovers a fault-injected sweep to byte-identical output.

    No dependency on [lib/exec]: the sweep binaries adapt {!fault} to
    [Supervisor.injected]. *)

type fault = Crash | Hang

type t

val create :
  ?crash_pct:int ->
  ?hang_pct:int ->
  ?doomed_pct:int ->
  ?cache_pct:int ->
  ?faulty_attempts:int ->
  seed:int ->
  unit ->
  t
(** Defaults: 25% crash, 10% hang, 0% doomed, 25% cache corruption,
    [faulty_attempts = 2]. A non-doomed cell only faults on its first
    [faulty_attempts] attempts, so any retry budget >= that recovers it
    — the default schedule degrades nothing. [doomed_pct] marks cells
    that fault on {e every} attempt, forcing quarantine. Raises
    [Invalid_argument] on percentages outside 0..100 or
    [crash_pct + hang_pct > 100]. *)

val decide : t -> key:string -> attempt:int -> fault option
(** The fault (if any) to inject into this attempt of this cell. Pure:
    depends only on the schedule and its arguments. *)

val doomed : t -> key:string -> bool
(** Whether this cell faults on every attempt under this schedule. *)

val corrupt_cache : t -> dir:string -> int
(** Flip one byte in a deterministic subset ([cache_pct]) of the
    [*.rows] shards under [dir], returning how many were damaged —
    exactly the torn-write damage the cache's verify-on-read must absorb
    as misses. Missing directory = 0. *)
