(** The two interpreters of a fault {!Schedule}: Byzantine-side faults
    compile, one combinator each, to a composed [Bap_sim.Adversary.t];
    network-side faults compile to the runtime's [?network] hook. Both
    are pure functions of the schedule value, so a (seed, schedule)
    pair replays bit-identically. *)

module Make (V : Bap_core.Value.S) (W : Bap_core.Wire.S with type value = V.t) : sig
  val crash_at : proc:int -> round:int -> W.t Bap_sim.Adversary.t
  val omit_to : proc:int -> dst:int -> first:int -> last:int -> W.t Bap_sim.Adversary.t

  val equivocate :
    mutant:(int -> V.t -> V.t) ->
    proc:int ->
    first:int ->
    last:int ->
    salt:int ->
    W.t Bap_sim.Adversary.t

  val advice_flip : proc:int -> bit:int -> W.t Bap_sim.Adversary.t

  val corrupt_msg : bit:int -> W.t -> W.t option
  (** One encoded bit flipped; [None] when the result no longer
      decodes (the corrupted message is dropped). *)

  val adversary : mutant:(int -> V.t -> V.t) -> Schedule.t -> W.t Bap_sim.Adversary.t
  (** All Byzantine-side faults of the schedule, composed.
      [mutant salt v] must differ from [v] for equivocation to bite. *)

  val network : Schedule.t -> round:int -> src:int -> dst:int -> W.t list -> W.t list
  (** All network-side faults of the schedule, as the runtime's
      [?network] hook. Touches every edge — this is where
      envelope-probing faults on honest traffic live. *)
end
