(* Serializable fault schedules.

   A schedule is a plain list of fault descriptions — no closures, no
   generator state — so that any chaos execution is (a) replayable
   exactly from the value, (b) shrinkable by list surgery, and (c)
   printable as an OCaml literal that pastes directly into a regression
   test (see {!pp}). The two interpreters live in {!Injector}: the
   Byzantine-side kinds compile to a [Bap_sim.Adversary.t], the
   network-side kinds to the runtime's [?network] hook.

   The paper's model allows the adversary full control over faulty
   processes and gives honest pairs reliable synchronous channels. A
   schedule is {e within the envelope} of that model iff every
   model-breaking fault names a faulty process ({!within_envelope});
   duplication and reordering inside a round are envelope-safe on any
   edge because every protocol in this repository parses inboxes with
   at-most-one-vote-per-sender discipline ([Bap_sim.Inbox.first]).
   Schedules outside the envelope are still expressible — that is how
   tests probe that the oracles actually fire. *)

module Rng = Bap_sim.Rng

type fault =
  | Crash_at of { proc : int; round : int }
      (** [proc] sends nothing from [round] on (crash failure). *)
  | Omit_to of { proc : int; dst : int; first : int; last : int }
      (** [proc] omits all its messages to [dst] in rounds
          [first..last] (send-omission fault). *)
  | Drop of { src : int; dst : int; round : int }
      (** The edge [src -> dst] loses its messages in [round]. *)
  | Duplicate of { src : int; dst : int; round : int }
      (** Every message on the edge is delivered twice. *)
  | Reorder of { src : int; dst : int; round : int }
      (** The within-round delivery order of the edge is reversed. *)
  | Corrupt of { src : int; dst : int; round : int; bit : int }
      (** Every message on the edge has one encoded bit flipped (bit
          index taken mod the message's length); messages that no longer
          decode — including all signature-carrying ones, which have no
          decoder by design — are dropped. *)
  | Equivocate of { proc : int; first : int; last : int; salt : int }
      (** [proc] sends value-carrying messages with a [salt]-mutated
          value to odd recipients in rounds [first..last]. *)
  | Advice_flip of { proc : int; bit : int }
      (** [proc] flips one bit of every advice vector it broadcasts. *)

type t = fault list

let pp_fault ppf = function
  | Crash_at { proc; round } ->
    Fmt.pf ppf "Crash_at { proc = %d; round = %d }" proc round
  | Omit_to { proc; dst; first; last } ->
    Fmt.pf ppf "Omit_to { proc = %d; dst = %d; first = %d; last = %d }" proc dst first
      last
  | Drop { src; dst; round } ->
    Fmt.pf ppf "Drop { src = %d; dst = %d; round = %d }" src dst round
  | Duplicate { src; dst; round } ->
    Fmt.pf ppf "Duplicate { src = %d; dst = %d; round = %d }" src dst round
  | Reorder { src; dst; round } ->
    Fmt.pf ppf "Reorder { src = %d; dst = %d; round = %d }" src dst round
  | Corrupt { src; dst; round; bit } ->
    Fmt.pf ppf "Corrupt { src = %d; dst = %d; round = %d; bit = %d }" src dst round bit
  | Equivocate { proc; first; last; salt } ->
    Fmt.pf ppf "Equivocate { proc = %d; first = %d; last = %d; salt = %d }" proc first
      last salt
  | Advice_flip { proc; bit } ->
    Fmt.pf ppf "Advice_flip { proc = %d; bit = %d }" proc bit

(* Prints as a pasteable OCaml literal:
   [ Crash_at { proc = 1; round = 3 }; Drop { ... } ] *)
let pp ppf = function
  | [] -> Fmt.pf ppf "[]"
  | faults -> Fmt.pf ppf "@[<hv 2>[ %a ]@]" Fmt.(list ~sep:(any ";@ ") pp_fault) faults

let equal (a : t) (b : t) = a = b
let length = List.length

let within_envelope ~is_faulty fault =
  let faulty p = p >= 0 && p < Array.length is_faulty && is_faulty.(p) in
  match fault with
  | Crash_at { proc; _ } | Omit_to { proc; _ } | Equivocate { proc; _ }
  | Advice_flip { proc; _ } ->
    faulty proc
  | Drop { src; _ } | Corrupt { src; _ } -> faulty src
  | Duplicate _ | Reorder _ -> true

(* Random schedule drawn entirely from one [Rng] stream, always within
   the envelope of the given fault set: safety oracles must hold on
   every generated schedule, whatever the draw. *)
let gen rng ~n ~faulty ~rounds ~count =
  let faulty_l = Array.to_list faulty in
  let pick_round () = 1 + Rng.int rng rounds in
  let pick_proc () = Rng.int rng n in
  let pick_other src =
    let d = Rng.int rng (n - 1) in
    if d >= src then d + 1 else d
  in
  let network_fault () =
    match Rng.int rng 2 with
    | 0 ->
      let src = pick_proc () in
      Duplicate { src; dst = pick_other src; round = pick_round () }
    | _ ->
      let src = pick_proc () in
      Reorder { src; dst = pick_other src; round = pick_round () }
  in
  let byzantine_fault proc =
    match Rng.int rng 6 with
    | 0 -> Crash_at { proc; round = pick_round () }
    | 1 ->
      let first = pick_round () in
      Omit_to { proc; dst = pick_other proc; first; last = first + Rng.int rng 10 }
    | 2 -> Drop { src = proc; dst = pick_other proc; round = pick_round () }
    | 3 ->
      Corrupt
        { src = proc; dst = pick_other proc; round = pick_round (); bit = Rng.int rng 4096 }
    | 4 ->
      let first = pick_round () in
      Equivocate { proc; first; last = first + Rng.int rng 10; salt = Rng.int rng 97 }
    | _ -> Advice_flip { proc; bit = Rng.int rng n }
  in
  List.init count (fun _ ->
      match faulty_l with
      | [] -> network_fault ()
      | _ :: _ ->
        if Rng.int rng 4 = 0 then network_fault ()
        else byzantine_fault (Rng.pick rng faulty_l))
