(** Serializable fault schedules.

    A schedule is a plain list of fault descriptions — no closures, no
    generator state — so any chaos execution is replayable exactly from
    the value, shrinkable by list surgery, and printable as an OCaml
    literal that pastes into a regression test. The two interpreters
    live in {!Injector}. *)

type fault =
  | Crash_at of { proc : int; round : int }
      (** [proc] sends nothing from [round] on (crash failure). *)
  | Omit_to of { proc : int; dst : int; first : int; last : int }
      (** [proc] omits all its messages to [dst] in rounds
          [first..last] (send-omission fault). *)
  | Drop of { src : int; dst : int; round : int }
      (** The edge [src -> dst] loses its messages in [round]. *)
  | Duplicate of { src : int; dst : int; round : int }
      (** Every message on the edge is delivered twice. *)
  | Reorder of { src : int; dst : int; round : int }
      (** The within-round delivery order of the edge is reversed. *)
  | Corrupt of { src : int; dst : int; round : int; bit : int }
      (** Every message on the edge has one encoded bit flipped;
          messages that no longer decode are dropped. *)
  | Equivocate of { proc : int; first : int; last : int; salt : int }
      (** [proc] sends value-carrying messages with a [salt]-mutated
          value to odd recipients in rounds [first..last]. *)
  | Advice_flip of { proc : int; bit : int }
      (** [proc] flips one bit of every advice vector it broadcasts. *)

type t = fault list

val pp_fault : Format.formatter -> fault -> unit

val pp : Format.formatter -> t -> unit
(** Prints as a pasteable OCaml literal. *)

val equal : t -> t -> bool
val length : t -> int

val within_envelope : is_faulty:bool array -> fault -> bool
(** Is this fault within the paper's adversary model (every
    model-breaking fault names a faulty process)? Schedules outside the
    envelope are still expressible — that is how tests probe that the
    oracles actually fire. *)

val gen :
  Bap_sim.Rng.t -> n:int -> faulty:int array -> rounds:int -> count:int -> t
(** Random schedule drawn entirely from one [Rng] stream, always within
    the envelope of the given fault set. *)
