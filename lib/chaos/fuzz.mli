(** The randomized robustness campaign over the integer-valued stack:
    generate (protocol, n, t, faulty, inputs, advice, fault-schedule)
    configurations from one [Rng] stream, run each through {!Engine}'s
    oracles, and delta-debug any violating schedule down to a minimal
    reproducing counterexample.

    Everything — generation, execution, shrinking, the campaign
    checksum — is a pure function of the seed, so a campaign's output
    is byte-identical across re-runs and a printed counterexample
    replays forever. *)

module E : module type of Engine.Make (Bap_core.Value.Int)

val mutant : int -> int -> int
(** Deterministic value perturbation for equivocation faults and the
    sabotage self-test. *)

val all_protocols : E.protocol list

val protocol_of_name : string -> E.protocol option
(** Inverse of {!E.protocol_name}; [None] on unknown names. *)

val gen_config : Bap_sim.Rng.t -> protocols:E.protocol list -> E.config
(** One random configuration, schedule included, drawn entirely from
    the given stream. Sizes stay small (n <= 13): the execution space a
    fuzzer explores grows with schedules and fault sets, not with n,
    and small systems hit quorum boundaries far more often. *)

val run_one : ?sabotage:bool -> E.config -> E.report

val shrink : ?sabotage:bool -> E.config -> Schedule.t
(** Minimal schedule still violating some oracle on this
    configuration. *)

type counterexample = {
  run : int;  (** 1-based index of the violating run in the campaign. *)
  config : E.config;
  report : E.report;
  shrunk : Schedule.t;
}

type campaign = {
  runs : int;
  counterexamples : counterexample list;
  checksum : int64;
      (** Folds every run's outcome: the determinism witness. *)
}

val campaign :
  ?sabotage:bool ->
  ?progress:(run:int -> violations:int -> unit) ->
  protocols:E.protocol list ->
  runs:int ->
  seed:int ->
  unit ->
  campaign

val pp_counterexample : Format.formatter -> counterexample -> unit
