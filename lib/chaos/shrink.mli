(** Zeller-Hildebrandt delta debugging (ddmin) over lists, used to
    reduce a violating fault schedule to a minimal reproducing one. The
    procedure is deterministic: candidate order depends only on the
    input list, so a shrink replays identically from the same seed. *)

val chunks : 'a list -> int -> 'a list list
(** [chunks lst n] splits [lst] into [n] contiguous chunks whose sizes
    differ by at most one. *)

val minimize : check:('a list -> bool) -> 'a list -> 'a list
(** [minimize ~check lst] assumes [check lst = true] ("still violates")
    and greedily searches subsets and complements at doubling
    granularity, returning a 1-chunk-minimal sublist on which [check]
    still holds. Worst case O(length lst ^ 2) calls to [check]. *)
