(* The two interpreters of a fault {!Schedule}: Byzantine-side faults
   compile, one combinator each, to a composed [Bap_sim.Adversary.t];
   network-side faults compile to the runtime's [?network] hook. Both
   are pure functions of the schedule value — no hidden randomness — so
   a (seed, schedule) pair replays bit-identically.

   Split of responsibilities: the runtime applies the adversary only to
   the outboxes of *faulty* processes, so [Crash_at]/[Omit_to]/
   [Equivocate]/[Advice_flip] entries naming an honest process are
   silently inert (the model gives the adversary no handle on honest
   code). The network hook, by contrast, touches every edge — that is
   where envelope-probing faults on honest traffic live. *)

module Adversary = Bap_sim.Adversary
module Advice = Bap_prediction.Advice

module Make (V : Bap_core.Value.S) (W : Bap_core.Wire.S with type value = V.t) = struct
  (* -- Byzantine side -- *)

  let crash_at ~proc ~round : W.t Adversary.t =
    {
      Adversary.name = Printf.sprintf "crash(%d@%d)" proc round;
      make =
        (fun ~n:_ ~faulty:_ ->
          let filter view ~src outbox dst =
            if src = proc && view.Adversary.round >= round then [] else outbox dst
          in
          Adversary.handlers ~filter ());
    }

  let omit_to ~proc ~dst:victim ~first ~last : W.t Adversary.t =
    {
      Adversary.name = Printf.sprintf "omit(%d->%d@%d-%d)" proc victim first last;
      make =
        (fun ~n:_ ~faulty:_ ->
          let filter view ~src outbox dst =
            let r = view.Adversary.round in
            if src = proc && dst = victim && first <= r && r <= last then []
            else outbox dst
          in
          Adversary.handlers ~filter ());
    }

  let equivocate ~mutant ~proc ~first ~last ~salt : W.t Adversary.t =
    {
      Adversary.name = Printf.sprintf "equivocate(%d@%d-%d)" proc first last;
      make =
        (fun ~n:_ ~faulty:_ ->
          let filter view ~src outbox dst =
            let r = view.Adversary.round in
            if src = proc && first <= r && r <= last && dst mod 2 = 1 then
              List.map
                (function
                  | W.Gc_init (tg, v) -> W.Gc_init (tg, mutant salt v)
                  | W.Gc_echo (tg, v) -> W.Gc_echo (tg, mutant salt v)
                  | W.King (tg, v) -> W.King (tg, mutant salt v)
                  | W.Conc (tg, v, l) -> W.Conc (tg, mutant salt v, l)
                  | m -> m)
                (outbox dst)
            else outbox dst
          in
          Adversary.handlers ~filter ());
    }

  let advice_flip ~proc ~bit : W.t Adversary.t =
    {
      Adversary.name = Printf.sprintf "advice-flip(%d:%d)" proc bit;
      make =
        (fun ~n:_ ~faulty:_ ->
          let filter _view ~src outbox dst =
            if src = proc then
              List.map
                (function
                  | W.Advice a when Advice.length a > 0 ->
                    W.Advice (Advice.flip a (bit mod Advice.length a))
                  | m -> m)
                (outbox dst)
            else outbox dst
          in
          Adversary.handlers ~filter ());
    }

  (* [mutant salt v] must differ from [v] for the equivocation to bite;
     the engine supplies a domain-appropriate one. *)
  let adversary ~mutant schedule : W.t Adversary.t =
    schedule
    |> List.filter_map (function
         | Schedule.Crash_at { proc; round } -> Some (crash_at ~proc ~round)
         | Schedule.Omit_to { proc; dst; first; last } ->
           Some (omit_to ~proc ~dst ~first ~last)
         | Schedule.Equivocate { proc; first; last; salt } ->
           Some (equivocate ~mutant ~proc ~first ~last ~salt)
         | Schedule.Advice_flip { proc; bit } -> Some (advice_flip ~proc ~bit)
         | Schedule.Drop _ | Schedule.Duplicate _ | Schedule.Reorder _
         | Schedule.Corrupt _ ->
           None)
    |> Adversary.compose

  (* -- Network side -- *)

  let flip_bit bytes bit =
    let len = String.length bytes in
    if len = 0 then bytes
    else begin
      let bit = bit mod (8 * len) in
      let b = Bytes.of_string bytes in
      Bytes.set b (bit / 8)
        (Char.chr (Char.code (Bytes.get b (bit / 8)) lxor (1 lsl (bit mod 8))));
      Bytes.to_string b
    end

  (* Corruption goes through the byte codec: encode, flip one bit,
     decode. A message that no longer parses is dropped — the model's
     clean failure for a garbled packet — and signature-carrying
     messages always drop because a corrupted signed message can never
     verify (signatures have no decoder by design). *)
  let corrupt_msg ~bit m =
    match W.encode_plain m with
    | None -> None
    | Some bytes -> W.decode_plain (flip_bit bytes bit)

  let network schedule ~round ~src ~dst msgs =
    (* Self-delivery is process-local state, not network traffic. *)
    if src = dst || msgs = [] then msgs
    else
      List.fold_left
        (fun msgs fault ->
          match fault with
          | Schedule.Drop f when f.src = src && f.dst = dst && f.round = round -> []
          | Schedule.Duplicate f when f.src = src && f.dst = dst && f.round = round ->
            msgs @ msgs
          | Schedule.Reorder f when f.src = src && f.dst = dst && f.round = round ->
            List.rev msgs
          | Schedule.Corrupt f when f.src = src && f.dst = dst && f.round = round ->
            List.filter_map (corrupt_msg ~bit:f.bit) msgs
          | _ -> msgs)
        msgs schedule
end
