(* The bounded fault-schedule decision space.

   {!Schedule.gen} samples faults from an *unbounded* alphabet (any
   round, any corruption bit, any salt); a model checker needs the same
   alphabet made finite and totally ordered, so that "every adversary
   behaviour" is a well-defined enumeration. [alphabet] lists every
   candidate fault within the given bounds, in a fixed deterministic
   order; [schedules] is the decision tree of all subsets of at most
   [max_faults] of them, kept in alphabet order.

   Keeping generation order = alphabet order matters for soundness of
   deduplication downstream: the two interpreters in {!Injector} fold
   over the schedule in list order, so enumerating *sets* (indices
   strictly increasing) rather than sequences never loses a behaviour
   that reordering could produce — every fault kind here either
   commutes with the others on the same edge or acts on disjoint
   edges/rounds.

   Every fault in the space is within the adversary's envelope (it
   names a faulty source), so the safety oracles must hold on every
   leaf; that is exactly the checker's claim. *)

module Decision = Bap_sim.Decision

type bounds = {
  horizon : int;  (** Fault rounds are drawn from [1..horizon]. *)
  max_faults : int;  (** At most this many faults per schedule. *)
  salts : int;  (** Equivocation salts are drawn from [1..salts]. *)
  corrupt_bits : int;  (** Corruption bit indices from [0..corrupt_bits-1]. *)
}

let default_bounds = { horizon = 4; max_faults = 1; salts = 1; corrupt_bits = 1 }

(* Every candidate fault, ordered: by faulty process, then by kind
   (crash, omit, equivocate, advice-flip, drop, corrupt, duplicate,
   reorder), then by round, destination, salt and bit — all ascending.
   The order is part of the contract: a schedule enumerated by
   {!schedules} lists its faults in this order, and the claims table in
   EXPERIMENTS.md counts leaves of exactly this alphabet. *)
let alphabet ~n ~faulty bounds =
  let faulty = Array.to_list faulty |> List.sort_uniq Int.compare in
  let rounds = List.init bounds.horizon (fun r -> r + 1) in
  let others p = List.init n Fun.id |> List.filter (fun d -> d <> p) in
  let per_proc p =
    List.concat
      [
        List.map (fun round -> Schedule.Crash_at { proc = p; round }) rounds;
        List.concat_map
          (fun dst ->
            List.map
              (fun r -> Schedule.Omit_to { proc = p; dst; first = r; last = r })
              rounds)
          (others p);
        List.concat_map
          (fun r ->
            List.map
              (fun s -> Schedule.Equivocate { proc = p; first = r; last = r; salt = s })
              (List.init bounds.salts (fun s -> s + 1)))
          rounds;
        List.map (fun bit -> Schedule.Advice_flip { proc = p; bit }) (List.init n Fun.id);
        List.concat_map
          (fun dst -> List.map (fun round -> Schedule.Drop { src = p; dst; round }) rounds)
          (others p);
        List.concat_map
          (fun dst ->
            List.concat_map
              (fun round ->
                List.map
                  (fun bit -> Schedule.Corrupt { src = p; dst; round; bit })
                  (List.init bounds.corrupt_bits Fun.id))
              rounds)
          (others p);
        List.concat_map
          (fun dst ->
            List.map (fun round -> Schedule.Duplicate { src = p; dst; round }) rounds)
          (others p);
        List.concat_map
          (fun dst ->
            List.map (fun round -> Schedule.Reorder { src = p; dst; round }) rounds)
          (others p);
      ]
  in
  List.concat_map per_proc faulty

(* All subsets of at most [max_faults] alphabet entries, in alphabet
   order — {!Decision.subsets} is the shared subset semantics, so the
   checker's fault space and the configuration space enumerate the same
   way. *)
let schedules ~n ~faulty bounds =
  Decision.subsets ~label:"fault" ~limit:bounds.max_faults (alphabet ~n ~faulty bounds)
