(* Chaos for the harness itself: PR 1 made the simulated protocol
   fault-injectable; this schedule attacks the execution stack that runs
   it. Faults are derived purely from (seed, cell key, attempt), so two
   runs of the same seed inject exactly the same crashes and hangs at
   any --jobs level — which is what lets the tests assert that a
   fault-injected sweep recovers to byte-identical output.

   The recovery guarantee is built into the schedule: a non-doomed cell
   only faults on its first [faulty_attempts] attempts, so any retry
   budget >= faulty_attempts recovers every such cell. Doomed cells
   (off by default) fault on every attempt — they exercise the
   quarantine / DEGRADED path. *)

type fault = Crash | Hang

type frame_fault =
  | Corrupt_payload
  | Disconnect_mid_frame
  | Disconnect_on_respond

type t = {
  seed : int;
  crash_pct : int;
  hang_pct : int;
  doomed_pct : int;
  cache_pct : int;
  faulty_attempts : int;
  frame_corrupt_pct : int;
  disconnect_pct : int;
  respond_disconnect_pct : int;
  kill9_pct : int;
}

let create ?(crash_pct = 25) ?(hang_pct = 10) ?(doomed_pct = 0)
    ?(cache_pct = 25) ?(faulty_attempts = 2) ?(frame_corrupt_pct = 0)
    ?(disconnect_pct = 0) ?(respond_disconnect_pct = 0) ?(kill9_pct = 0) ~seed
    () =
  let pct name v =
    if v < 0 || v > 100 then
      invalid_arg (Printf.sprintf "Harness.create: %s = %d not in 0..100" name v)
  in
  pct "crash_pct" crash_pct;
  pct "hang_pct" hang_pct;
  pct "doomed_pct" doomed_pct;
  pct "cache_pct" cache_pct;
  pct "frame_corrupt_pct" frame_corrupt_pct;
  pct "disconnect_pct" disconnect_pct;
  pct "respond_disconnect_pct" respond_disconnect_pct;
  pct "kill9_pct" kill9_pct;
  if crash_pct + hang_pct > 100 then
    invalid_arg "Harness.create: crash_pct + hang_pct > 100";
  if frame_corrupt_pct + disconnect_pct + respond_disconnect_pct > 100 then
    invalid_arg
      "Harness.create: frame_corrupt_pct + disconnect_pct + \
       respond_disconnect_pct > 100";
  if faulty_attempts < 0 then invalid_arg "Harness.create: faulty_attempts < 0";
  {
    seed;
    crash_pct;
    hang_pct;
    doomed_pct;
    cache_pct;
    faulty_attempts;
    frame_corrupt_pct;
    disconnect_pct;
    respond_disconnect_pct;
    kill9_pct;
  }

let djb2 s =
  String.fold_left (fun h c -> ((h * 33) + Char.code c) land max_int) 5381 s

let roll t ~salt ~key = djb2 (Printf.sprintf "%d|%s|%s" t.seed salt key) mod 100

let doomed t ~key = roll t ~salt:"doom" ~key < t.doomed_pct

let decide t ~key ~attempt =
  if doomed t ~key then Some Crash
  else if attempt >= t.faulty_attempts then None
  else
    let r = roll t ~salt:(string_of_int attempt) ~key in
    if r < t.crash_pct then Some Crash
    else if r < t.crash_pct + t.hang_pct then Some Hang
    else None

(* Frame-level chaos for the serve load generator. The decision is
   keyed on the frame (not the attempt): a corrupted frame stays
   corrupted, a doomed write stays doomed, at any --jobs level. The
   client applies the damage — the server under test only ever sees
   its consequences. *)

let frame_fault t ~key =
  let r = roll t ~salt:"frame" ~key in
  if r < t.frame_corrupt_pct then Some Corrupt_payload
  else if r < t.frame_corrupt_pct + t.disconnect_pct then
    Some Disconnect_mid_frame
  else if
    r < t.frame_corrupt_pct + t.disconnect_pct + t.respond_disconnect_pct
  then Some Disconnect_on_respond
  else None

(* Server-side SIGKILL chaos: the probe is polled once per instance at
   the answer point (after execution, before the respond record), so a
   hit crashes the server at the worst moment durability must survive —
   work done, answer not yet journaled. Keyed on the instance key only:
   a resumed incarnation must pass the probe for the *same* keys it
   recovered, so the driver disables kill9 on restart. *)
let kill9 t ~key = t.kill9_pct > 0 && roll t ~salt:"kill9" ~key < t.kill9_pct

let corrupt_byte t ~key ~len =
  if len <= 0 then invalid_arg "Harness.corrupt_byte: len <= 0";
  let off = djb2 (Printf.sprintf "%d|frameoff|%s" t.seed key) mod len in
  (* Mask is never 0, so the byte always changes and the corruption is
     guaranteed visible to the codec or the JSON parser. *)
  let mask = 1 + (djb2 (Printf.sprintf "%d|framemask|%s" t.seed key) mod 255) in
  (off, mask)

let corrupt_cache t ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then 0
  else begin
    let shards =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".rows")
      |> List.sort String.compare
    in
    List.fold_left
      (fun n shard ->
        if roll t ~salt:"cache" ~key:shard < t.cache_pct then begin
          let p = Filename.concat dir shard in
          (* Flip one byte in place: enough to break the entry's digest
             check, exactly the damage verify-on-read must absorb. *)
          match
            let fd = Unix.openfile p [ Unix.O_RDWR ] 0o644 in
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () ->
                let size = (Unix.fstat fd).Unix.st_size in
                if size = 0 then false
                else begin
                  let off = djb2 (Printf.sprintf "%d|off|%s" t.seed shard) mod size in
                  ignore (Unix.lseek fd off Unix.SEEK_SET);
                  let b = Bytes.create 1 in
                  if Unix.read fd b 0 1 <> 1 then false
                  else begin
                    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xff));
                    ignore (Unix.lseek fd off Unix.SEEK_SET);
                    ignore (Unix.write fd b 0 1);
                    true
                  end
                end)
          with
          | true -> n + 1
          | false -> n
          | exception Unix.Unix_error _ -> n
        end
        else n)
      0 shards
  end
