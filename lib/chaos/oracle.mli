(** Safety oracles: the properties that must hold on every execution,
    whatever the adversary, the advice, or the fault schedule — the
    paper's unconditional guarantees (Theorems 11-12), checked
    mechanically on each chaos run. *)

module Make (V : Bap_core.Value.S) (W : Bap_core.Wire.S with type value = V.t) : sig
  type violation =
    | Agreement of { decisions : (int * V.t) list }
    | Validity of { expected : V.t; decisions : (int * V.t) list }
    | Termination of { rounds : int; bound : int }
    | Monitor_unsound of { honest_flagged : (int * string) list }
    | Crash of { exn : string }

  val pp_violation : Format.formatter -> violation -> unit

  val check_agreement : (int * V.t) list -> violation list
  val check_validity :
    inputs:V.t array -> is_faulty:bool array -> (int * V.t) list -> violation list
  val check_termination : rounds:int -> bound:int -> violation list
  val check_monitor : n:int -> is_faulty:bool array -> W.t Bap_sim.Trace.t -> violation list

  val check :
    n:int ->
    faulty:int array ->
    inputs:V.t array ->
    bound:int ->
    rounds:int ->
    decisions:(int * V.t) list ->
    W.t Bap_sim.Trace.t option ->
    violation list
  (** All four oracles on one execution's observables. [trace] is
      optional so callers without delivery recording still get the
      decision-level checks. *)
end
