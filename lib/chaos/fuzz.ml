(* The randomized robustness campaign over the integer-valued stack:
   generate (protocol, n, t, faulty, inputs, advice, fault-schedule)
   configurations from one [Rng] stream, run each through {!Engine}'s
   oracles, and delta-debug any violating schedule down to a minimal
   reproducing counterexample.

   Everything — generation, execution, shrinking, the campaign checksum
   — is a pure function of the seed, so a campaign's output is
   byte-identical across re-runs and a printed counterexample replays
   forever. *)

module V = Bap_core.Value.Int
module E = Engine.Make (V)
module Rng = Bap_sim.Rng
module Gen = Bap_prediction.Gen

(* Deterministic value perturbation for equivocation faults and the
   sabotage self-test; stays clear of the generated input domain [0,3)
   often enough to stress value-validation paths. *)
let mutant salt v = v + 1 + (salt mod 7)

let all_protocols = [ E.Unauth; E.Auth; E.Es_baseline; E.Pk_baseline ]

let protocol_of_name = function
  | "unauth" -> Some E.Unauth
  | "auth" -> Some E.Auth
  | "es" -> Some E.Es_baseline
  | "pk" -> Some E.Pk_baseline
  | _ -> None

(* One random configuration. Sizes stay small (n <= 13): the execution
   space a fuzzer explores grows with schedules and fault sets, not with
   n, and small systems hit quorum boundaries (n = 3t + 1, n = 2t + 1)
   far more often. *)
let gen_config rng ~protocols =
  let protocol = Rng.pick rng protocols in
  let n = 4 + Rng.int rng 10 in
  let t_cap =
    match protocol with
    | E.Auth -> (n - 1) / 2 (* t < n/2 *)
    | E.Unauth | E.Es_baseline | E.Pk_baseline -> (n - 1) / 3 (* t < n/3 *)
  in
  let t = Rng.int rng (t_cap + 1) in
  let f = Rng.int rng (t + 1) in
  let faulty = Array.of_list (Rng.sample_without_replacement rng f n) in
  let inputs = Array.init n (fun _ -> Rng.int rng 3) in
  let advice =
    match Rng.int rng 4 with
    | 0 -> Gen.perfect ~n ~faulty
    | 1 -> Gen.generate ~rng ~n ~faulty ~budget:(Rng.int rng ((n * n / 2) + 1)) Gen.Uniform
    | 2 -> Gen.generate ~rng ~n ~faulty ~budget:(Rng.int rng (n + 1)) Gen.Focused
    | _ -> Gen.generate ~rng ~n ~faulty ~budget:0 Gen.All_wrong
  in
  let cfg =
    { E.protocol; t; faulty; inputs; advice; schedule = [] }
  in
  let schedule =
    Schedule.gen rng ~n ~faulty ~rounds:(E.round_bound cfg) ~count:(Rng.int rng 13)
  in
  { cfg with E.schedule }

let run_one ?(sabotage = false) cfg = E.run ~sabotage_validity:sabotage ~mutant cfg

(* Minimal schedule still violating some oracle on this configuration. *)
let shrink ?(sabotage = false) cfg =
  Shrink.minimize
    ~check:(fun schedule ->
      (run_one ~sabotage { cfg with E.schedule }).E.violations <> [])
    cfg.E.schedule

type counterexample = {
  run : int;  (** 1-based index of the violating run in the campaign. *)
  config : E.config;
  report : E.report;
  shrunk : Schedule.t;
}

type campaign = {
  runs : int;
  counterexamples : counterexample list;
  checksum : int64;  (** Folds every run's outcome: the determinism witness. *)
}

(* splitmix64-style mixing of each run's observables. *)
let mix h x =
  let h = Int64.add (Int64.logxor h (Int64.of_int x)) 0x9E3779B97F4A7C15L in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 30)) 0xBF58476D1CE4E5B9L in
  Int64.logxor h (Int64.shift_right_logical h 27)

let fingerprint h (r : E.report) =
  let h = mix h r.E.rounds in
  let h = List.fold_left (fun h (i, v) -> mix (mix h i) v) h r.E.decisions in
  mix h (List.length r.E.violations)

let campaign ?(sabotage = false) ?(progress = fun ~run:_ ~violations:_ -> ())
    ~protocols ~runs ~seed () =
  let rng = Rng.create seed in
  let counterexamples = ref [] in
  let checksum = ref 0L in
  for run = 1 to runs do
    let config = gen_config rng ~protocols in
    let report = run_one ~sabotage config in
    checksum := fingerprint !checksum report;
    if report.E.violations <> [] then begin
      let shrunk = shrink ~sabotage config in
      counterexamples := { run; config; report; shrunk } :: !counterexamples
    end;
    progress ~run ~violations:(List.length !counterexamples)
  done;
  { runs; counterexamples = List.rev !counterexamples; checksum = !checksum }

let pp_counterexample ppf { run; config; report; shrunk } =
  Fmt.pf ppf
    "@[<v>violation at run %d:@,%a@,%a@,shrunk schedule (%d of %d faults):@,%a@]" run
    E.pp_config config E.pp_report report (Schedule.length shrunk)
    (Schedule.length config.E.schedule)
    Schedule.pp shrunk
