(** One chaos execution: a protocol, a system configuration, and a fault
    {!Schedule} in; a safety verdict out. Exceptions escaping protocol
    code and round-limit overruns become violations, never crashes — a
    fuzzer must survive what it finds. *)

module Make (V : Bap_core.Value.S) : sig
  (** The oracle verdicts, re-exported so campaign reports are
      self-contained. See {!Oracle} for the checking functions. *)
  module Oracle : sig
    type violation =
      | Agreement of { decisions : (int * V.t) list }
      | Validity of { expected : V.t; decisions : (int * V.t) list }
      | Termination of { rounds : int; bound : int }
      | Monitor_unsound of { honest_flagged : (int * string) list }
      | Crash of { exn : string }

    val pp_violation : Format.formatter -> violation -> unit
  end

  type protocol = Unauth | Auth | Es_baseline | Pk_baseline

  val protocol_name : protocol -> string

  type config = {
    protocol : protocol;
    t : int;
    faulty : int array;
    inputs : V.t array;  (** Length [n]. *)
    advice : Bap_prediction.Advice.t array;
        (** Per-process; ignored by the baselines. *)
    schedule : Schedule.t;
  }

  val n_of : config -> int

  val round_bound : config -> int
  (** The deterministic worst-case round count of the configured
      protocol: every implementation in this repository runs a fixed
      schedule, so exceeding this bound is a safety violation, not a
      slow run. *)

  type report = {
    violations : Oracle.violation list;
    rounds : int;
    decisions : (int * V.t) list;  (** Honest decisions, ascending id. *)
  }

  val run :
    ?sabotage_validity:bool ->
    ?with_trace:bool ->
    mutant:(int -> V.t -> V.t) ->
    config ->
    report
  (** Compile the schedule into adversary + network hook, execute, and
      check every oracle. [sabotage_validity] deliberately tampers with
      the first honest decision when the schedule equivocates — the
      harness self-test proving the oracles are live, not vacuously
      green. [mutant salt v] must differ from [v] for equivocation to
      bite. [with_trace] (default [true]) records a delivery trace and
      runs the monitor-soundness oracle; the model checker turns it off
      so the runtime can take its counted fast path — the decision-level
      oracles (agreement, validity, termination) still run. *)

  val pp_config : Format.formatter -> config -> unit
  val pp_report : Format.formatter -> report -> unit
end
