(* Safety oracles: the properties that must hold on *every* execution,
   whatever the adversary, the advice, or the fault schedule — the
   paper's unconditional guarantees (Theorems 11-12), checked
   mechanically on each chaos run.

   - agreement: all honest decisions are equal;
   - validity (strong unanimity): if every honest input is v, every
     honest decision is v;
   - termination-within-bound: the run used at most the protocol's
     deterministic round schedule (and no process overran the runtime's
     round limit or crashed — a raised exception in protocol code is
     itself a robustness violation, reported as [Crash]);
   - monitor soundness: the network-tap observer of
     [lib/monitor/observer.ml] never flags an honest process. In the
     authenticated stack this doubles as a no-forgery check: an honest
     process flagged for equivocation or a conflicting chain root would
     mean a message carrying its identity that it never signed. *)

module Trace = Bap_sim.Trace

module Make (V : Bap_core.Value.S) (W : Bap_core.Wire.S with type value = V.t) = struct
  module Observer = Bap_monitor.Observer.Make (V) (W)

  type violation =
    | Agreement of { decisions : (int * V.t) list }
    | Validity of { expected : V.t; decisions : (int * V.t) list }
    | Termination of { rounds : int; bound : int }
    | Monitor_unsound of { honest_flagged : (int * string) list }
    | Crash of { exn : string }

  let pp_violation ppf = function
    | Agreement { decisions } ->
      Fmt.pf ppf "agreement: honest decisions differ: %a"
        Fmt.(list ~sep:(any "; ") (pair ~sep:(any ":") int V.pp))
        decisions
    | Validity { expected; decisions } ->
      Fmt.pf ppf "validity: unanimous honest input %a but decisions %a" V.pp expected
        Fmt.(list ~sep:(any "; ") (pair ~sep:(any ":") int V.pp))
        decisions
    | Termination { rounds; bound } ->
      Fmt.pf ppf "termination: ran %d rounds, bound %d" rounds bound
    | Monitor_unsound { honest_flagged } ->
      Fmt.pf ppf "monitor flagged honest process(es): %a"
        Fmt.(list ~sep:(any "; ") (pair ~sep:(any " ") int (quote string)))
        honest_flagged
    | Crash { exn } -> Fmt.pf ppf "protocol code raised: %s" exn

  let check_agreement decisions =
    match decisions with
    | [] | [ _ ] -> []
    | (_, v) :: rest ->
      if List.for_all (fun (_, w) -> V.equal v w) rest then []
      else [ Agreement { decisions } ]

  let check_validity ~inputs ~is_faulty decisions =
    let honest_inputs =
      Array.to_list inputs
      |> List.filteri (fun i _ -> not is_faulty.(i))
      |> List.sort_uniq V.compare
    in
    match honest_inputs with
    | [ v ] ->
      if List.for_all (fun (_, w) -> V.equal v w) decisions then []
      else [ Validity { expected = v; decisions } ]
    | _ -> []

  let check_termination ~rounds ~bound =
    if rounds <= bound then [] else [ Termination { rounds; bound } ]

  let check_monitor ~n ~is_faulty trace =
    let verdict = Observer.observe ~n trace in
    let honest_flagged =
      List.filter (fun (who, _) -> not is_faulty.(who)) verdict.Observer.evidence
    in
    if honest_flagged = [] then [] else [ Monitor_unsound { honest_flagged } ]

  (* All four oracles on one execution's observables. [trace] is
     optional so callers without delivery recording still get the
     decision-level checks. *)
  let check ~n ~faulty ~inputs ~bound ~rounds ~decisions trace =
    let is_faulty = Array.make n false in
    Array.iter (fun j -> is_faulty.(j) <- true) faulty;
    check_agreement decisions
    @ check_validity ~inputs ~is_faulty decisions
    @ check_termination ~rounds ~bound
    @ match trace with None -> [] | Some tr -> check_monitor ~n ~is_faulty tr
end
