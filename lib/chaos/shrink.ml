(* Zeller-Hildebrandt delta debugging (ddmin) over lists, used to
   reduce a violating fault schedule to a minimal reproducing one. The
   procedure is deterministic: candidate order depends only on the input
   list, so a shrink replays identically from the same seed. *)

(* Split [lst] into [n] contiguous chunks, sizes differing by at most 1. *)
let chunks lst n =
  let len = List.length lst in
  let base = len / n and extra = len mod n in
  let rec take k l acc =
    if k = 0 then (List.rev acc, l)
    else match l with [] -> (List.rev acc, []) | x :: tl -> take (k - 1) tl (x :: acc)
  in
  let rec go lst i acc =
    if i >= n then List.rev acc
    else
      let size = base + if i < extra then 1 else 0 in
      let c, rest = take size lst [] in
      go rest (i + 1) (c :: acc)
  in
  go lst 0 []

(* [minimize ~check lst] assumes [check lst = true] ("still violates")
   and greedily searches subsets and complements at doubling
   granularity, returning a 1-chunk-minimal sublist on which [check]
   still holds. Worst case O(len^2) calls to [check]. *)
let minimize ~check lst =
  if check [] then []
  else
    let rec loop current n =
      if List.length current <= 1 then current
      else
        let cs = chunks current n in
        match List.find_opt check cs with
        | Some c -> loop c 2
        | None -> (
          let complements =
            List.mapi
              (fun i _ -> List.concat (List.filteri (fun j _ -> j <> i) cs))
              cs
          in
          match List.find_opt check complements with
          | Some c -> loop c (max (n - 1) 2)
          | None ->
            let len = List.length current in
            if n < len then loop current (min (2 * n) len) else current)
    in
    loop lst 2
