(** The bounded fault-schedule decision space.

    Where {!Schedule.gen} samples faults from an unbounded alphabet,
    this module makes the alphabet finite and totally ordered so that
    "every adversary behaviour within the bounds" is a well-defined
    enumeration — the model checker's ground truth. All faults name a
    faulty source process, i.e. stay within the adversary envelope of
    the paper's model, so the safety oracles must hold on every leaf. *)

type bounds = {
  horizon : int;  (** Fault rounds are drawn from [1..horizon]. *)
  max_faults : int;  (** At most this many faults per schedule. *)
  salts : int;  (** Equivocation salts are drawn from [1..salts]. *)
  corrupt_bits : int;  (** Corruption bit indices from [0..corrupt_bits-1]. *)
}

val default_bounds : bounds
(** [{ horizon = 4; max_faults = 1; salts = 1; corrupt_bits = 1 }]. *)

val alphabet : n:int -> faulty:int array -> bounds -> Schedule.fault list
(** Every candidate fault within the bounds, in a fixed deterministic
    order (by process, kind, round, destination, salt, bit). Empty when
    [faulty] is empty: an adversary with no corrupted process has no
    choices. *)

val schedules : n:int -> faulty:int array -> bounds -> Schedule.t Bap_sim.Decision.t
(** The decision tree whose leaves are exactly the subsets of at most
    [bounds.max_faults] alphabet entries, each schedule listing its
    faults in alphabet order. The empty schedule (fault-free run) is
    always a leaf. *)
