(* Benchmark harness.

   Regenerates every experiment table (E1-E13, the reproduction of the
   paper's theorems - see DESIGN.md and EXPERIMENTS.md), then runs
   Bechamel wall-clock micro-benchmarks, one per protocol of the paper.

   Usage: dune exec bench/main.exe
            [-- --full | --tables-only | --bench-only | --jobs N | --no-cache]
   Default is the quick sweep; --full runs the paper-sized sweeps.
   --jobs N fans the experiment cells out over N domains (lib/exec) and
   additionally reports parallel-vs-serial wall-clock and speedup from
   fresh uncached sweeps. *)

open Bap_experiments.Common
module Pki = Bap_crypto.Pki
module Engine = Bap_exec.Engine
module Pool = Bap_exec.Pool
module Cache = Bap_exec.Cache
module Tel = Bap_telemetry.Telemetry

let stage = Bechamel.Staged.stage

(* One micro-benchmark per protocol family, all on the same moderate
   configuration so relative costs are comparable. Each run is a full
   n-process synchronous execution. *)
let benches () =
  let n = 31 in
  let t = (n - 1) / 3 in
  let f = t / 2 in
  let rng = Rng.create 4242 in
  let w = make_workload ~rng ~n ~t ~f ~target_misclassified:2 () in
  let faulty = w.faulty and inputs = w.inputs and advice = w.advice in
  let module T = Bechamel.Test in
  T.make_grouped ~name:"bap"
    [
      T.make ~name:"classify (Alg 2)"
        (stage (fun () ->
             S.R.run ~n ~faulty ~adversary:Adversary.silent (fun ctx ->
                 S.Classify_p.run ctx advice.(S.R.id ctx))));
      T.make ~name:"graded-consensus unauth (Thm 7)"
        (stage (fun () ->
             S.R.run ~n ~faulty ~adversary:Adversary.silent (fun ctx ->
                 S.Graded_unauth.run ctx ~t ~tag:0 inputs.(S.R.id ctx))));
      T.make ~name:"graded-consensus auth (Thm 8)"
        (stage (fun () ->
             let pki = Pki.create ~n in
             S.R.run ~n ~faulty ~adversary:Adversary.silent (fun ctx ->
                 let i = S.R.id ctx in
                 S.Graded_auth.run ctx ~pki ~key:(Pki.key pki i) ~t ~tag:0 inputs.(i))));
      T.make ~name:"conditional BA unauth (Alg 5)"
        (stage (fun () ->
             S.R.run ~n ~faulty ~adversary:Adversary.silent (fun ctx ->
                 let i = S.R.id ctx in
                 let c = S.Classify_p.run ctx advice.(i) in
                 S.Ba_class_unauth.run ctx ~t ~k:1 ~base_tag:0 inputs.(i) c)));
      T.make ~name:"conditional BA auth (Alg 7)"
        (stage (fun () ->
             let pki = Pki.create ~n in
             S.R.run ~n ~faulty ~adversary:Adversary.silent (fun ctx ->
                 let i = S.R.id ctx in
                 let c = S.Classify_p.run ctx advice.(i) in
                 S.Ba_class_auth.run ctx ~pki ~key:(Pki.key pki i) ~t ~k:1 ~base_tag:0
                   inputs.(i) c)));
      T.make ~name:"early-stopping BA (Thm 9)"
        (stage (fun () ->
             S.R.run ~n ~faulty ~adversary:Adversary.silent (fun ctx ->
                 let gc c ~tag v = S.Graded_unauth.run c ~t ~tag v in
                 S.Early_stopping.run ctx ~gc ~gc_rounds:2 ~phases:(t + 1) ~base_tag:0
                   inputs.(S.R.id ctx))));
      T.make ~name:"wrapper unauth (Alg 1, Thm 11)"
        (stage (fun () ->
             S.run_unauth ~t ~faulty ~inputs ~advice ~adversary:Adversary.silent ()));
      T.make ~name:"wrapper auth (Alg 1, Thm 12)"
        (stage (fun () -> S.run_auth ~t ~faulty ~inputs ~advice ()));
      T.make ~name:"dolev-strong BA baseline"
        (stage (fun () -> B.run_dolev_strong ~t ~faulty ~inputs ()));
    ]

let run_benches () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] (benches ()) in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  in
  Printf.printf "\n== Bechamel micro-benchmarks (one full n=31 execution per run) ==\n";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, ns) -> Printf.printf "%-45s %10.2f ms/execution\n" name (ns /. 1e6))
    (List.sort compare !rows)

let int_flag args name ~default =
  let rec find = function
    | f :: v :: _ when f = name -> (
      match int_of_string_opt v with Some n -> max 1 n | None -> default)
    | _ :: rest -> find rest
    | [] -> default
  in
  find args

let string_flag args name =
  let rec find = function
    | f :: v :: _ when f = name -> Some v
    | _ :: rest -> find rest
    | [] -> None
  in
  find args

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* CI gate: the telemetry spine must cost < 5% wall-clock when recording
   a full JSONL trace of the quick sweep. min-of-3 on each side filters
   scheduler noise; both sides are fresh uncached sweeps so cache state
   cannot tilt the comparison. Exit 1 on regression. *)
let trace_overhead ~jobs =
  let trace_path = Filename.concat (Filename.get_temp_dir_name ()) "bap_overhead.jsonl" in
  let sweep () =
    Pool.with_pool ~jobs (fun pool ->
        Bap_experiments.Runner.run_all ~quick:true ~pool ~render:false ())
  in
  let min_of_3 f =
    let walls = List.init 3 (fun _ -> (f ()).Engine.wall) in
    List.fold_left Float.min infinity walls
  in
  let off = min_of_3 sweep in
  let on_ =
    min_of_3 (fun () ->
        Tel.install ~wall:true (Tel.Jsonl trace_path);
        Fun.protect ~finally:Tel.shutdown sweep)
  in
  (try Sys.remove trace_path with Sys_error _ -> ());
  let overhead = (on_ -. off) /. Float.max 1e-9 off in
  Printf.printf
    "trace overhead: off %.2fs  on %.2fs  overhead %+.1f%% (budget 5%%)\n"
    off on_ (100. *. overhead);
  if overhead > 0.05 then begin
    Printf.printf "FAILED: tracing overhead above budget\n";
    exit 1
  end

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let tables_only = List.mem "--tables-only" args in
  let bench_only = List.mem "--bench-only" args in
  let no_cache = List.mem "--no-cache" args in
  let jobs = int_flag args "--jobs" ~default:1 in
  let trace_out = string_flag args "--trace-out" in
  let metrics_json = string_flag args "--metrics-json" in
  let quick = not full in
  if List.mem "--trace-overhead" args then begin
    trace_overhead ~jobs;
    exit 0
  end;
  (match trace_out with
  | Some path -> Tel.install ~wall:true (Tel.Jsonl path)
  | None -> if metrics_json <> None then Tel.install Tel.Counters_only);
  if not bench_only then begin
    Printf.printf "Experiment tables (E1-E13; see DESIGN.md and EXPERIMENTS.md)%s\n"
      (if full then " [full sweeps]" else " [quick sweeps; pass --full for paper-sized]");
    let cache = if no_cache then None else Some (Cache.create ~dir:Cache.default_dir ()) in
    let stats =
      Pool.with_pool ~jobs (fun pool ->
          Bap_experiments.Runner.run_all ~quick ~pool ?cache ())
    in
    Printf.printf "\n== Experiment sweep wall-clock ==\n%s\n"
      (Format.asprintf "%a" Engine.pp_stats stats);
    if jobs > 1 then begin
      (* Fresh, uncached sweeps in both modes: the honest speedup of the
         work-stealing pool on this machine, unpolluted by cache hits. *)
      let timed ~jobs =
        Pool.with_pool ~jobs (fun pool ->
            Bap_experiments.Runner.run_all ~quick ~pool ~render:false ())
      in
      let par = timed ~jobs in
      let ser = timed ~jobs:1 in
      Printf.printf "serial   (--jobs 1): %.2fs\nparallel (--jobs %d): %.2fs\nspeedup: %.2fx\n"
        ser.Engine.wall jobs par.Engine.wall
        (ser.Engine.wall /. Float.max 1e-9 par.Engine.wall)
    end
  end;
  if not tables_only then run_benches ();
  (match metrics_json with
  | Some path -> write_file path (Tel.Metrics.to_json (Tel.Metrics.snapshot ()))
  | None -> ());
  Tel.shutdown ()
