(* Benchmark harness.

   Regenerates every experiment table (E1-E13, the reproduction of the
   paper's theorems - see DESIGN.md and EXPERIMENTS.md), then runs
   Bechamel wall-clock micro-benchmarks, one per protocol of the paper.

   Usage: dune exec bench/main.exe
            [-- --full | --tables-only | --bench-only | --jobs N | --no-cache]
   Default is the quick sweep; --full runs the paper-sized sweeps.
   --jobs N fans the experiment cells out over N domains (lib/exec) and
   additionally reports parallel-vs-serial wall-clock and speedup from
   fresh uncached sweeps. *)

open Bap_experiments.Common
module Pki = Bap_crypto.Pki
module Engine = Bap_exec.Engine
module Pool = Bap_exec.Pool
module Cache = Bap_exec.Cache
module Tel = Bap_telemetry.Telemetry
module Memprobe = Bap_telemetry.Memprobe

let stage = Bechamel.Staged.stage

(* One micro-benchmark per protocol family, all on the same moderate
   configuration so relative costs are comparable. Each run is a full
   n-process synchronous execution. *)
let benches () =
  let n = 31 in
  let t = (n - 1) / 3 in
  let f = t / 2 in
  let rng = Rng.create 4242 in
  let w = make_workload ~rng ~n ~t ~f ~target_misclassified:2 () in
  let faulty = w.faulty and inputs = w.inputs and advice = w.advice in
  let module T = Bechamel.Test in
  T.make_grouped ~name:"bap"
    [
      T.make ~name:"classify (Alg 2)"
        (stage (fun () ->
             S.R.run ~n ~faulty ~adversary:Adversary.silent (fun ctx ->
                 S.Classify_p.run ctx advice.(S.R.id ctx))));
      T.make ~name:"graded-consensus unauth (Thm 7)"
        (stage (fun () ->
             S.R.run ~n ~faulty ~adversary:Adversary.silent (fun ctx ->
                 S.Graded_unauth.run ctx ~t ~tag:0 inputs.(S.R.id ctx))));
      T.make ~name:"graded-consensus auth (Thm 8)"
        (stage (fun () ->
             let pki = Pki.create ~n in
             S.R.run ~n ~faulty ~adversary:Adversary.silent (fun ctx ->
                 let i = S.R.id ctx in
                 S.Graded_auth.run ctx ~pki ~key:(Pki.key pki i) ~t ~tag:0 inputs.(i))));
      T.make ~name:"conditional BA unauth (Alg 5)"
        (stage (fun () ->
             S.R.run ~n ~faulty ~adversary:Adversary.silent (fun ctx ->
                 let i = S.R.id ctx in
                 let c = S.Classify_p.run ctx advice.(i) in
                 S.Ba_class_unauth.run ctx ~t ~k:1 ~base_tag:0 inputs.(i) c)));
      T.make ~name:"conditional BA auth (Alg 7)"
        (stage (fun () ->
             let pki = Pki.create ~n in
             S.R.run ~n ~faulty ~adversary:Adversary.silent (fun ctx ->
                 let i = S.R.id ctx in
                 let c = S.Classify_p.run ctx advice.(i) in
                 S.Ba_class_auth.run ctx ~pki ~key:(Pki.key pki i) ~t ~k:1 ~base_tag:0
                   inputs.(i) c)));
      T.make ~name:"early-stopping BA (Thm 9)"
        (stage (fun () ->
             S.R.run ~n ~faulty ~adversary:Adversary.silent (fun ctx ->
                 let gc c ~tag v = S.Graded_unauth.run c ~t ~tag v in
                 S.Early_stopping.run ctx ~gc ~gc_rounds:2 ~phases:(t + 1) ~base_tag:0
                   inputs.(S.R.id ctx))));
      T.make ~name:"wrapper unauth (Alg 1, Thm 11)"
        (stage (fun () ->
             S.run_unauth ~t ~faulty ~inputs ~advice ~adversary:Adversary.silent ()));
      T.make ~name:"wrapper auth (Alg 1, Thm 12)"
        (stage (fun () -> S.run_auth ~t ~faulty ~inputs ~advice ()));
      T.make ~name:"dolev-strong BA baseline"
        (stage (fun () -> B.run_dolev_strong ~t ~faulty ~inputs ()));
    ]

let run_benches () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] (benches ()) in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      instance raw
  in
  Printf.printf "\n== Bechamel micro-benchmarks (one full n=31 execution per run) ==\n";
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] -> rows := (name, ns) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, ns) -> Printf.printf "%-45s %10.2f ms/execution\n" name (ns /. 1e6))
    (List.sort compare !rows)

let int_flag args name ~default =
  let rec find = function
    | f :: v :: _ when f = name -> (
      match int_of_string_opt v with Some n -> max 1 n | None -> default)
    | _ :: rest -> find rest
    | [] -> default
  in
  find args

(* Like [int_flag] but 0 is a meaningful value (e.g. --retransmit 0). *)
let nat_flag args name ~default =
  let rec find = function
    | f :: v :: _ when f = name -> (
      match int_of_string_opt v with Some n -> max 0 n | None -> default)
    | _ :: rest -> find rest
    | [] -> default
  in
  find args

let string_flag args name =
  let rec find = function
    | f :: v :: _ when f = name -> Some v
    | _ :: rest -> find rest
    | [] -> None
  in
  find args

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

(* Serve load generator: drive generated instances at the service loop
   (in-process over pipes, or an external daemon's socket with
   --serve-socket) and run the byte-identity oracle — every ok response
   must carry exactly the bytes a serial batch recomputation produces.
   --harness-chaos SEED turns the same run hostile: corrupted payload
   bytes and mid-frame disconnects on the wire, crash/hang injection in
   the server's supervisor. Exit 1 on any oracle failure. *)
let serve_bench args ~jobs =
  let module Load = Bap_servelib.Load in
  let module Server = Bap_servelib.Server in
  let module Instance = Bap_servelib.Instance in
  let module Harness = Bap_chaos.Harness in
  let instances = int_flag args "--instances" ~default:2000 in
  let n = int_flag args "--n" ~default:4 in
  let socket = string_flag args "--serve-socket" in
  (* Client resilience (socket mode): --reconnect N retries a dead
     server with deterministic seeded backoff, --retransmit N re-sends
     unanswered ids on fresh connections, --exactly-once tightens the
     oracle into the crash-restart property (no loss, no duplicates).
     That triple is what the serve-crash CI job drives against a
     SIGKILLed-and-resumed daemon. *)
  let reconnect = nat_flag args "--reconnect" ~default:0 in
  let retransmit = nat_flag args "--retransmit" ~default:0 in
  let client_seed = nat_flag args "--client-seed" ~default:0 in
  let exactly_once = List.mem "--exactly-once" args in
  let families =
    match string_flag args "--families" with
    | None -> [ Instance.Unauth; Instance.Es; Instance.Pk ]
    | Some s ->
      String.split_on_char ',' s
      |> List.filter_map (fun f ->
             match String.trim f with
             | "unauth" -> Some Instance.Unauth
             | "auth" -> Some Instance.Auth
             | "es" -> Some Instance.Es
             | "pk" -> Some Instance.Pk
             | "" -> None
             | other ->
               Printf.eprintf "unknown family %S ignored\n" other;
               None)
  in
  let chaos =
    match string_flag args "--harness-chaos" with
    | None -> None
    | Some s ->
      let seed = Option.value ~default:0 (int_of_string_opt s) in
      (* Disconnects only make sense where reconnecting does (sockets);
         in pipe mode a hangup would just truncate the whole plan.
         Crash/hang rates are milder than the sweep harness defaults:
         every hang costs a full watchdog timeout of wall-clock, and a
         load test runs thousands of instances, not dozens of cells. *)
      let disconnect_pct = if socket = None then 0 else 3 in
      let respond_disconnect_pct = if socket = None then 0 else 2 in
      Some
        (Harness.create ~seed ~crash_pct:6 ~hang_pct:1 ~doomed_pct:2
           ~frame_corrupt_pct:5 ~disconnect_pct ~respond_disconnect_pct ())
  in
  let outcome =
    match socket with
    | Some path ->
      Load.run_socket ?chaos ~reconnect ~retransmit ~seed:client_seed ~path
        ~instances ~families ~n ()
    | None ->
      let inject =
        Option.map
          (fun h ~key ~attempt ->
            match Harness.decide h ~key ~attempt with
            | Some Harness.Crash -> Some Bap_exec.Supervisor.Inject_crash
            | Some Harness.Hang -> Some Bap_exec.Supervisor.Inject_hang
            | None -> None)
          chaos
      in
      let config =
        {
          Server.default_config with
          Server.jobs;
          queue_capacity = max instances 1;
          batch = 256;
          inject;
          (* Short deadline: chaos hangs spin until the watchdog fires,
             so the timeout is pure added wall-clock per injected hang. *)
          timeout_s = Some 0.25;
        }
      in
      Load.run_inproc ?chaos ~config ~instances ~families ~n ()
  in
  Printf.printf "serve: %s\n" (Format.asprintf "%a" Load.pp outcome);
  Printf.printf "serve_throughput: %.0f instances/sec (jobs %d, n %d)\n"
    outcome.Load.per_sec jobs n;
  (match outcome.Load.server with
  | Some s -> print_endline (Server.report s)
  | None -> ());
  match Load.failures ~chaos:(chaos <> None) ~exactly_once outcome with
  | [] ->
    print_endline "serve oracle: PASS";
    0
  | fs ->
    List.iter (fun f -> Printf.printf "serve oracle FAILED: %s\n" f) fs;
    1

(* CI gate: the telemetry spine must cost < 5% wall-clock when recording
   a full JSONL trace of the quick sweep. min-of-3 on each side filters
   scheduler noise; both sides are fresh uncached sweeps so cache state
   cannot tilt the comparison. Exit 1 on regression.

   With [alloc] the "on" side also runs the allocation probe (per-span
   GC deltas folded into metrics, minor_words span attributes) — the
   same budget, so the observatory earns its keep the way tracing does. *)
let trace_overhead ~jobs ~alloc =
  let trace_path = Filename.concat (Filename.get_temp_dir_name ()) "bap_overhead.jsonl" in
  let sweep () =
    Pool.with_pool ~jobs (fun pool ->
        Bap_experiments.Runner.run_all ~quick:true ~pool ~render:false ())
  in
  let min_of_3 f =
    let walls = List.init 3 (fun _ -> (f ()).Engine.wall) in
    List.fold_left Float.min infinity walls
  in
  let off = min_of_3 sweep in
  let on_ =
    min_of_3 (fun () ->
        Tel.install ~wall:true (Tel.Jsonl trace_path);
        if alloc then Memprobe.enable ();
        Fun.protect
          ~finally:(fun () ->
            if alloc then Memprobe.disable ();
            Tel.shutdown ())
          sweep)
  in
  (try Sys.remove trace_path with Sys_error _ -> ());
  let overhead = (on_ -. off) /. Float.max 1e-9 off in
  Printf.printf
    "%s overhead: off %.2fs  on %.2fs  overhead %+.1f%% (budget 5%%)\n"
    (if alloc then "trace+alloc" else "trace")
    off on_ (100. *. overhead);
  if overhead > 0.05 then begin
    Printf.printf "FAILED: %s overhead above budget\n"
      (if alloc then "tracing+allocation-probe" else "tracing");
    exit 1
  end

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let tables_only = List.mem "--tables-only" args in
  let bench_only = List.mem "--bench-only" args in
  let no_cache = List.mem "--no-cache" args in
  let jobs = int_flag args "--jobs" ~default:1 in
  let trace_out = string_flag args "--trace-out" in
  let metrics_json = string_flag args "--metrics-json" in
  let quick = not full in
  if List.mem "--trace-overhead" args then begin
    trace_overhead ~jobs ~alloc:(List.mem "--alloc" args);
    exit 0
  end;
  if List.mem "--serve" args then exit (serve_bench args ~jobs);
  (match trace_out with
  | Some path -> Tel.install ~wall:true (Tel.Jsonl path)
  | None -> if metrics_json <> None then Tel.install Tel.Counters_only);
  if not bench_only then begin
    Printf.printf "Experiment tables (E1-E13; see DESIGN.md and EXPERIMENTS.md)%s\n"
      (if full then " [full sweeps]" else " [quick sweeps; pass --full for paper-sized]");
    let cache = if no_cache then None else Some (Cache.create ~dir:Cache.default_dir ()) in
    let stats =
      Pool.with_pool ~jobs (fun pool ->
          Bap_experiments.Runner.run_all ~quick ~pool ?cache ())
    in
    Printf.printf "\n== Experiment sweep wall-clock ==\n%s\n"
      (Format.asprintf "%a" Engine.pp_stats stats);
    if jobs > 1 then begin
      (* Fresh, uncached sweeps in both modes: the honest speedup of the
         work-stealing pool on this machine, unpolluted by cache hits. *)
      let timed ~jobs =
        Pool.with_pool ~jobs (fun pool ->
            Bap_experiments.Runner.run_all ~quick ~pool ~render:false ())
      in
      let par = timed ~jobs in
      let ser = timed ~jobs:1 in
      Printf.printf "serial   (--jobs 1): %.2fs\nparallel (--jobs %d): %.2fs\nspeedup: %.2fx\n"
        ser.Engine.wall jobs par.Engine.wall
        (ser.Engine.wall /. Float.max 1e-9 par.Engine.wall)
    end
  end;
  if not tables_only then run_benches ();
  (match metrics_json with
  | Some path -> write_file path (Tel.Metrics.to_json (Tel.Metrics.snapshot ()))
  | None -> ());
  Tel.shutdown ()
