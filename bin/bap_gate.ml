(* CLI: the bench-regression gate.

   Runs a fixed, deterministic smoke sweep over both protocol stacks and
   the no-prediction baselines — every cell an independent job fanned
   out over the lib/exec domain pool — and compares the resulting
   rounds/messages metrics against a committed baseline
   (BENCH_BASELINE.json):

   - any drift in a correctness-bearing metric (decided round, total
     rounds, honest messages, agreement) FAILS the gate: the sweep is a
     pure function of the seeds, so a changed number means changed
     protocol behaviour, not noise;
   - wall-clock is machine-dependent, so a >20% regression against the
     baseline's reference time only WARNS (as a GitHub Actions
     ::warning:: annotation when running in CI).

   The gate also maintains the bench trajectory (BENCH_HISTORY.jsonl):
   one dated JSON line per run with the sweep wall clock, the serve
   throughput, the n=1000 scale-probe time, the crash-restart recovery
   time, and the allocation probe's minor words per round. Drift
   against the previous trajectory point is warn-only.

   Allocation is gated the same warn-only way: a pinned E1-style probe
   measures domain-local minor words per simulated round — exactly
   reproducible on one machine and one compiler, but legitimately
   different across OCaml versions, so a regression annotates instead
   of failing.

   Usage:
     dune exec bin/bap_gate.exe -- --write             # baseline + trajectory
     dune exec bin/bap_gate.exe -- --check --jobs 2    # CI gate
     dune exec bin/bap_gate.exe -- --check --history BENCH_HISTORY.jsonl *)

open Cmdliner
module Pool = Bap_exec.Pool
module Supervisor = Bap_exec.Supervisor
open Bap_experiments.Common

type metrics = {
  id : string;
  decided : int; (* first decision round; -1 where not applicable *)
  rounds : int;
  msgs : int;
  ok : bool;
}

(* ---------- the probe sweep ---------- *)

let unauth_cell ~n ~f ~m () =
  let t = (n - 1) / 3 in
  let rng = Rng.create ((61 * f) + (7 * m) + n) in
  let w = make_workload ~rng ~n ~t ~f ~target_misclassified:m () in
  let adversary =
    Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -1_000_000 - r)
  in
  let d, rounds, msgs, ok, _ = run_unauth ~adversary w in
  { id = Printf.sprintf "unauth,n=%d,f=%d,m=%d" n f m; decided = d; rounds; msgs; ok }

let auth_cell ~n ~f ~m () =
  let t = max 1 ((9 * n / 20) - 1) in
  let rng = Rng.create ((53 * f) + (11 * m) + n) in
  let w = make_workload ~rng ~n ~t ~f ~target_misclassified:m () in
  let adversary pki = Adv.prediction_attacker_auth ~pki ~v0:0 ~v1:1 in
  let d, rounds, msgs, ok, _ = run_auth ~adversary w in
  { id = Printf.sprintf "auth,n=%d,f=%d,m=%d" n f m; decided = d; rounds; msgs; ok }

let baseline_cell ~proto ~n ~f () =
  let t = (n - 1) / 3 in
  let rng = Rng.create (19 * n + f) in
  let w = make_workload ~rng ~n ~t ~f ~target_misclassified:0 () in
  let r =
    match proto with
    | `Es ->
      B.run_early_stopping ~t ~faulty:w.faulty ~inputs:w.inputs
        ~adversary:Bap_sim.Adversary.silent ()
    | `Pk ->
      B.run_phase_king ~t ~faulty:w.faulty ~inputs:w.inputs
        ~adversary:Bap_sim.Adversary.silent ()
  in
  {
    id =
      Printf.sprintf "%s,n=%d,f=%d" (match proto with `Es -> "es" | `Pk -> "pk") n f;
    decided = r.B.decided_round;
    rounds = r.B.rounds;
    msgs = r.B.messages;
    ok = r.B.agreement;
  }

let sweep_cells () =
  List.concat
    [
      List.concat_map
        (fun n ->
          let t = (n - 1) / 3 in
          List.concat_map
            (fun f -> List.map (fun m -> unauth_cell ~n ~f ~m) [ 0; 2 ])
            [ 0; t / 2; t ])
        [ 16; 25; 31 ];
      List.concat_map
        (fun n ->
          let t = max 1 ((9 * n / 20) - 1) in
          List.concat_map
            (fun f -> List.map (fun m -> auth_cell ~n ~f ~m) [ 0; 2 ])
            [ 0; t / 2 ])
        [ 11; 17 ];
      List.concat_map
        (fun proto ->
          List.map (fun f -> baseline_cell ~proto ~n:25 ~f) [ 0; 4 ])
        [ `Es; `Pk ];
    ]

(* Each probe cell runs supervised (one retry, no injection): a
   transient crash re-runs once, and a genuinely broken cell becomes a
   typed gate failure listing which probes died — exit 1 with the cells
   named, not a stack trace that hides how much of the sweep was fine. *)
let run_sweep ~jobs =
  let cells = Array.of_list (sweep_cells ()) in
  let t0 = Unix.gettimeofday () in
  let config = { Supervisor.default_config with retries = 1 } in
  let outcomes =
    Supervisor.with_supervisor config (fun sup ->
        let tasks =
          Array.mapi
            (fun i cell () ->
              Supervisor.supervise sup ~key:(Printf.sprintf "gate/%d" i) cell)
            cells
        in
        Pool.with_pool ~jobs (fun pool -> Pool.run_all pool tasks))
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let metrics, failed =
    Array.to_list outcomes
    |> List.mapi (fun i r -> (i, r))
    |> List.partition_map (fun (i, r) ->
           match r with
           | Ok (Supervisor.Completed { value; _ }) -> Either.Left value
           | Ok (Supervisor.Quarantined { ledger }) ->
             Either.Right
               (Format.asprintf "probe cell gate/%d: %a" i
                  (fun ppf -> Supervisor.pp_ledger ppf)
                  ledger)
           | Error e ->
             Either.Right
               (Printf.sprintf "probe cell gate/%d: harness error %s" i
                  (Printexc.to_string e)))
  in
  (metrics, failed, wall_ms)

(* ---------- JSON (hand-rolled: no json dependency in the image) ---------- *)

(* The serve probe: a quick in-process run of the service loop with
   the byte-identity oracle on. Throughput is environment-dependent and
   therefore warn-only, like the wall-clock reference; an oracle
   failure is correctness and fails the gate like any drifted cell. *)
type serve_ref = { s_per_sec : float; s_jobs : int; s_instances : int }

let measure_serve { s_jobs; s_instances; _ } =
  let module Server = Bap_servelib.Server in
  let module Load = Bap_servelib.Load in
  let config =
    {
      Server.default_config with
      Server.jobs = s_jobs;
      queue_capacity = max 1 s_instances;
      batch = 256;
    }
  in
  let o =
    Load.run_inproc ~config ~instances:s_instances
      ~families:[ Bap_servelib.Instance.Pk ] ~n:4 ()
  in
  (o.Bap_servelib.Load.per_sec, Load.failures o)

(* The allocation probe: a pinned E1-style slice of the sweep, run
   inline on the calling domain so Gc.minor_words (via the memprobe's
   domain-local reader) counts exactly this work and nothing else.
   Minor words per round is a pure function of the compiled code — the
   alloc-regression signal ISSUE 10's observatory gates on. *)
let measure_alloc () =
  let module Memprobe = Bap_telemetry.Memprobe in
  let cells =
    [
      unauth_cell ~n:25 ~f:4 ~m:0;
      unauth_cell ~n:25 ~f:4 ~m:2;
      unauth_cell ~n:31 ~f:10 ~m:0;
    ]
  in
  let mw0 = Memprobe.domain_minor_words () in
  let rounds = List.fold_left (fun acc cell -> acc + (cell ()).rounds) 0 cells in
  let words = Memprobe.domain_minor_words () -. mw0 in
  if rounds <= 0 then begin
    Printf.printf "FAILED: alloc probe simulated 0 rounds\n";
    exit 1
  end;
  words /. float_of_int rounds

let json_of ~metrics ~wall_ms ~serve ~alloc =
  let cell m =
    Printf.sprintf
      "    {\"id\": %S, \"decided\": %d, \"rounds\": %d, \"msgs\": %d, \"ok\": %b}"
      m.id m.decided m.rounds m.msgs m.ok
  in
  let serve_field =
    match serve with
    | None -> ""
    | Some s ->
      Printf.sprintf
        ",\n  \"serve\": {\"instances_per_sec\": %.0f, \"jobs\": %d, \
         \"instances\": %d, \"families\": \"pk\", \"n\": 4}"
        s.s_per_sec s.s_jobs s.s_instances
  in
  let alloc_field =
    match alloc with
    | None -> ""
    | Some w -> Printf.sprintf ",\n  \"alloc_minor_words_per_round\": %.1f" w
  in
  Printf.sprintf
    "{\n  \"version\": 1,\n  \"wall_ms\": %.1f%s%s,\n  \"cells\": [\n%s\n  ]\n}\n"
    wall_ms serve_field alloc_field
    (String.concat ",\n" (List.map cell metrics))

(* JSON parsing lives in lib/telemetry (shared with the trace sinks and
   bap_trace); this alias keeps the call sites below unchanged. *)
module Json = Bap_telemetry.Json

let parse_baseline text =
  let open Json in
  let j = parse text in
  let wall_ms = to_float (member "wall_ms" j) in
  let cells =
    match to_list (member "cells" j) with
    | None -> invalid_arg "baseline: missing cells"
    | Some cs ->
      List.map
        (fun c ->
          match
            ( to_string (member "id" c),
              to_int (member "decided" c),
              to_int (member "rounds" c),
              to_int (member "msgs" c),
              to_bool (member "ok" c) )
          with
          | Some id, Some decided, Some rounds, Some msgs, Some ok ->
            { id; decided; rounds; msgs; ok }
          | _ -> invalid_arg "baseline: malformed cell")
        cs
  in
  let serve =
    match member "serve" j with
    | None -> None
    | Some s ->
      (match
         ( to_float (member "instances_per_sec" s),
           to_int (member "jobs" s),
           to_int (member "instances" s) )
       with
      | Some s_per_sec, Some s_jobs, Some s_instances ->
        Some { s_per_sec; s_jobs; s_instances }
      | _ -> invalid_arg "baseline: malformed serve reference")
  in
  (* Absent in baselines from before the allocation observatory; None
     simply skips the alloc drift warning. *)
  let alloc = to_float (member "alloc_minor_words_per_round" j) in
  (cells, wall_ms, serve, alloc)

(* ---------- the gate ---------- *)

let in_ci () = Sys.getenv_opt "GITHUB_ACTIONS" = Some "true"

let warn fmt =
  Printf.ksprintf
    (fun msg ->
      if in_ci () then Printf.printf "::warning title=bench-regression::%s\n" msg
      else Printf.printf "WARNING: %s\n" msg)
    fmt

(* ---------- the bench trajectory (BENCH_HISTORY.jsonl) ---------- *)

(* One dated line per gate run: the probe-sweep wall clock, the serve
   throughput, and the n=1000 scale-probe time. All three are
   machine-dependent, so the trajectory is warn-only — the point is a
   recorded curve over commits, not a pass/fail bar. *)
type history_entry = {
  h_date : string;
  h_wall_ms : float;
  h_serve_per_sec : float;
  h_scale_n1000_ms : float;
  h_recovery_ms : float;
      (* crash-restart recovery probe; 0.0 in entries from before the
         instance journal existed *)
  h_alloc_words_per_round : float;
      (* allocation probe; 0.0 in entries from before the allocation
         observatory existed *)
}

let today () =
  let tm = Unix.gmtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

(* The recovery probe: craft an instance journal holding accepted-but-
   unanswered instances, then time a --resume server recovering them
   over an immediately-EOF stream — the restart-to-ready cost of a
   SIGKILLed service, isolated from any client traffic. Recovery that
   loses or invents instances is correctness and fails the gate. *)
let measure_recovery () =
  let module Server = Bap_servelib.Server in
  let module SJournal = Bap_servelib.Journal in
  let module Load = Bap_servelib.Load in
  let k = 64 in
  let path = Filename.temp_file "bap_gate_recovery" ".journal" in
  let j = SJournal.open_ ~path () in
  List.iter
    (fun spec -> ignore (SJournal.accept j spec))
    (Load.plan_specs ~instances:k ~families:[ Bap_servelib.Instance.Pk ] ~n:4);
  SJournal.close j;
  let null_r, null_w = Unix.pipe () and out_r, out_w = Unix.pipe () in
  Unix.close null_w (* immediate EOF: wall time is pure recovery *);
  let cfg =
    {
      Server.default_config with
      Server.journal_path = Some path;
      resume = true;
      batch = 256;
      queue_capacity = max 1 k;
    }
  in
  let t0 = Unix.gettimeofday () in
  let stats = Server.serve_fds cfg ~in_fd:null_r ~out_fd:out_w in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ null_r; out_r; out_w ];
  (try Sys.remove path with Sys_error _ -> ());
  if
    stats.Server.recovered <> k
    || stats.Server.accepted <> k
    || stats.Server.responded <> k
  then begin
    Printf.printf
      "FAILED: recovery probe recovered %d / accepted %d / responded %d of %d \
       journaled instance(s)\n"
      stats.Server.recovered stats.Server.accepted stats.Server.responded k;
    exit 1
  end;
  ms

let measure_scale () =
  let r = Scale_probe.run ~n:1000 ~f:0 () in
  if not (r.Scale_probe.agreement && r.Scale_probe.decided) then begin
    Printf.printf "FAILED: scale probe n=1000 (agreement=%b decided=%b)\n"
      r.Scale_probe.agreement r.Scale_probe.decided;
    exit 1
  end;
  r.Scale_probe.wall_ms

let last_history_entry path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let last =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let last = ref None in
          (try
             while true do
               let line = input_line ic in
               if String.trim line <> "" then last := Some line
             done
           with End_of_file -> ());
          !last)
    in
    match last with
    | None -> None
    | Some line -> (
      let open Json in
      match parse line with
      | exception Parse _ -> None
      | j -> (
        match
          ( to_string (member "date" j),
            to_float (member "wall_ms" j),
            to_float (member "serve_per_sec" j),
            to_float (member "scale_n1000_ms" j) )
        with
        | Some h_date, Some h_wall_ms, Some h_serve_per_sec, Some h_scale_n1000_ms
          ->
          (* recovery_ms arrived with the instance journal and the alloc
             probe with the allocation observatory; entries from before
             either default to 0 (which disables that drift warning). *)
          let h_recovery_ms =
            Option.value ~default:0. (to_float (member "recovery_ms" j))
          in
          let h_alloc_words_per_round =
            Option.value ~default:0.
              (to_float (member "alloc_minor_words_per_round" j))
          in
          Some
            {
              h_date;
              h_wall_ms;
              h_serve_per_sec;
              h_scale_n1000_ms;
              h_recovery_ms;
              h_alloc_words_per_round;
            }
        | _ -> None))
  end

let append_history ~path e =
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc
        (Printf.sprintf
           "{\"date\": %S, \"wall_ms\": %.1f, \"serve_per_sec\": %.0f, \
            \"scale_n1000_ms\": %.1f, \"recovery_ms\": %.1f, \
            \"alloc_minor_words_per_round\": %.1f}\n"
           e.h_date e.h_wall_ms e.h_serve_per_sec e.h_scale_n1000_ms
           e.h_recovery_ms e.h_alloc_words_per_round))

(* Measure the scale probe, warn against the previous trajectory point,
   and append the new one. *)
let record_history ~path ~wall_ms ~serve_per_sec ~alloc_words_per_round =
  let scale_ms = measure_scale () in
  let recovery_ms = measure_recovery () in
  (match last_history_entry path with
  | None ->
    (* Satellite of ISSUE 10: an empty or missing trajectory is a seed,
       not an error — say so instead of silently skipping the drift
       checks. *)
    Printf.printf
      "bap_gate: no prior trajectory point in %s; seeding the first one \
       (drift warnings begin with the next run)\n"
      path
  | Some prev ->
    if wall_ms > 1.2 *. prev.h_wall_ms then
      warn "gate sweep %.0f ms is %.0f%% over the last trajectory point (%s: %.0f ms)"
        wall_ms
        ((wall_ms /. prev.h_wall_ms -. 1.) *. 100.)
        prev.h_date prev.h_wall_ms;
    if prev.h_serve_per_sec > 0. && serve_per_sec < 0.8 *. prev.h_serve_per_sec
    then
      warn "serve %.0f/s is %.0f%% under the last trajectory point (%s: %.0f/s)"
        serve_per_sec
        ((1. -. (serve_per_sec /. prev.h_serve_per_sec)) *. 100.)
        prev.h_date prev.h_serve_per_sec;
    if scale_ms > 1.2 *. prev.h_scale_n1000_ms then
      warn
        "scale probe (n=1000) %.0f ms is %.0f%% over the last trajectory point \
         (%s: %.0f ms)"
        scale_ms
        ((scale_ms /. prev.h_scale_n1000_ms -. 1.) *. 100.)
        prev.h_date prev.h_scale_n1000_ms;
    if prev.h_recovery_ms > 0. && recovery_ms > 1.5 *. prev.h_recovery_ms then
      warn
        "crash-restart recovery %.0f ms is %.0f%% over the last trajectory \
         point (%s: %.0f ms)"
        recovery_ms
        ((recovery_ms /. prev.h_recovery_ms -. 1.) *. 100.)
        prev.h_date prev.h_recovery_ms;
    if
      prev.h_alloc_words_per_round > 0.
      && alloc_words_per_round > 1.1 *. prev.h_alloc_words_per_round
    then
      warn
        "alloc probe %.0f minor words/round is %.0f%% over the last \
         trajectory point (%s: %.0f)"
        alloc_words_per_round
        ((alloc_words_per_round /. prev.h_alloc_words_per_round -. 1.) *. 100.)
        prev.h_date prev.h_alloc_words_per_round);
  append_history ~path
    {
      h_date = today ();
      h_wall_ms = wall_ms;
      h_serve_per_sec = serve_per_sec;
      h_scale_n1000_ms = scale_ms;
      h_recovery_ms = recovery_ms;
      h_alloc_words_per_round = alloc_words_per_round;
    };
  Printf.printf
    "bap_gate: appended trajectory point to %s (scale n=1000: %.0f ms, \
     recovery: %.0f ms, alloc: %.0f words/round)\n"
    path scale_ms recovery_ms alloc_words_per_round

let check ~baseline_file ~history ~jobs =
  let text =
    let ic = open_in_bin baseline_file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let expected, base_wall, serve_ref, base_alloc = parse_baseline text in
  let actual, failed, wall_ms = run_sweep ~jobs in
  if failed <> [] then begin
    List.iter (fun msg -> Printf.printf "QUARANTINED %s\n" msg) failed;
    Printf.printf "FAILED: %d probe cell(s) died despite retry\n"
      (List.length failed)
  end;
  let drift = ref [] in
  let index = List.map (fun m -> (m.id, m)) actual in
  List.iter
    (fun e ->
      match List.assoc_opt e.id index with
      | None -> drift := Printf.sprintf "cell %s: missing from sweep" e.id :: !drift
      | Some a ->
        if (a.decided, a.rounds, a.msgs, a.ok) <> (e.decided, e.rounds, e.msgs, e.ok)
        then
          drift :=
            Printf.sprintf
              "cell %s: (decided,rounds,msgs,ok) = (%d,%d,%d,%b), baseline (%d,%d,%d,%b)"
              e.id a.decided a.rounds a.msgs a.ok e.decided e.rounds e.msgs e.ok
            :: !drift)
    expected;
  List.iter
    (fun a ->
      if not (List.exists (fun e -> e.id = a.id) expected) then
        drift := Printf.sprintf "cell %s: not in baseline (run --write?)" a.id :: !drift)
    actual;
  Printf.printf "bap_gate: %d cells in %.0f ms (--jobs %d), baseline %s\n"
    (List.length actual) wall_ms jobs baseline_file;
  (match base_wall with
  | Some base when wall_ms > 1.2 *. base ->
    warn "wall-clock %.0f ms is %.0f%% over the baseline's %.0f ms reference" wall_ms
      ((wall_ms /. base -. 1.) *. 100.)
      base
  | _ -> ());
  let serve_measured = ref None in
  (match serve_ref with
  | None -> ()
  | Some r ->
    let per_sec, oracle_failures = measure_serve r in
    serve_measured := Some per_sec;
    Printf.printf
      "bap_gate: serve %.0f instances/sec (--jobs %d, baseline %.0f)\n" per_sec
      r.s_jobs r.s_per_sec;
    List.iter
      (fun f -> drift := Printf.sprintf "serve oracle: %s" f :: !drift)
      oracle_failures;
    if per_sec < 0.8 *. r.s_per_sec then
      warn "serve throughput %.0f/s is %.0f%% under the baseline's %.0f/s"
        per_sec
        ((1. -. (per_sec /. r.s_per_sec)) *. 100.)
        r.s_per_sec);
  let alloc_words = measure_alloc () in
  (match base_alloc with
  | None ->
    Printf.printf
      "bap_gate: alloc probe %.0f minor words/round (no baseline yet — run \
       --write to record one)\n"
      alloc_words
  | Some base ->
    Printf.printf "bap_gate: alloc probe %.0f minor words/round (baseline %.0f)\n"
      alloc_words base;
    if base > 0. && alloc_words > 1.1 *. base then
      warn
        "alloc probe %.0f minor words/round is %.0f%% over the baseline's %.0f"
        alloc_words
        ((alloc_words /. base -. 1.) *. 100.)
        base);
  (match history with
  | None -> ()
  | Some path ->
    let per_sec =
      match !serve_measured with
      | Some p -> p
      | None -> fst (measure_serve { s_per_sec = 0.; s_jobs = 1; s_instances = 3000 })
    in
    record_history ~path ~wall_ms ~serve_per_sec:per_sec
      ~alloc_words_per_round:alloc_words);
  match (List.rev !drift, failed) with
  | [], [] ->
    Printf.printf "ok: all %d correctness metrics match the baseline\n"
      (List.length expected);
    0
  | ds, _ ->
    List.iter (fun d -> Printf.printf "DRIFT %s\n" d) ds;
    if ds <> [] then
      Printf.printf "FAILED: %d cell(s) drifted from %s\n" (List.length ds)
        baseline_file;
    1

let write ~baseline_file ~history ~jobs =
  let metrics, failed, wall_ms = run_sweep ~jobs in
  if failed <> [] then begin
    List.iter (fun msg -> Printf.printf "QUARANTINED %s\n" msg) failed;
    Printf.printf "refusing to write a baseline from a degraded sweep\n";
    exit 1
  end;
  let serve =
    let r = { s_per_sec = 0.; s_jobs = 1; s_instances = 3000 } in
    let per_sec, oracle_failures = measure_serve r in
    if oracle_failures <> [] then begin
      List.iter (fun f -> Printf.printf "serve oracle: %s\n" f) oracle_failures;
      Printf.printf "refusing to write a baseline from a failing serve loop\n";
      exit 1
    end;
    Some { r with s_per_sec = per_sec }
  in
  let alloc_words = measure_alloc () in
  let oc = open_out_bin baseline_file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (json_of ~metrics ~wall_ms ~serve ~alloc:(Some alloc_words)));
  Printf.printf
    "bap_gate: wrote %d cells to %s (%.0f ms, serve %.0f/s, alloc %.0f \
     words/round)\n"
    (List.length metrics) baseline_file wall_ms
    (match serve with Some s -> s.s_per_sec | None -> 0.)
    alloc_words;
  (* --write always extends the trajectory: a fresh baseline is exactly
     the moment a new point belongs on the curve. *)
  let path = Option.value history ~default:"BENCH_HISTORY.jsonl" in
  record_history ~path ~wall_ms
    ~serve_per_sec:(match serve with Some s -> s.s_per_sec | None -> 0.)
    ~alloc_words_per_round:alloc_words;
  0

(* ---------- the stats gate ---------- *)

(* Consume a bap_tables --stats-json report and mirror bap_tables' own
   exit discipline: 4 when the sweep was DEGRADED (quarantined cells),
   0 when clean. Lets CI gate on a sweep that ran elsewhere. *)
let check_stats ~stats_file =
  let text =
    let ic = open_in_bin stats_file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let open Json in
  match parse text with
  | exception Parse msg ->
    Printf.printf "bap_gate: %s: unparseable stats: %s\n" stats_file msg;
    1
  | j ->
    let field k = Option.value ~default:0 (to_int (member k j)) in
    let quarantined = Option.value ~default:[] (to_list (member "quarantined" j)) in
    Printf.printf
      "bap_gate: stats %s: %d cells (%d executed, %d cache hits, %d journal \
       hits) on %d job(s), %d retried\n"
      stats_file (field "total_cells") (field "executed") (field "cache_hits")
      (field "journal_hits") (field "jobs") (field "retried");
    if quarantined = [] then begin
      Printf.printf "ok: sweep clean\n";
      0
    end
    else begin
      List.iter
        (fun q ->
          Printf.printf "QUARANTINED %s/%s\n"
            (Option.value ~default:"?" (to_string (member "exp_id" q)))
            (Option.value ~default:"?" (to_string (member "key" q))))
        quarantined;
      Printf.printf "FAILED: sweep DEGRADED (%d cell(s) quarantined)\n"
        (List.length quarantined);
      4
    end

let run mode baseline_file history jobs stats_file =
  Supervisor.install_exit_handlers ();
  let jobs = max 1 jobs in
  match (stats_file, mode) with
  | Some stats_file, _ -> check_stats ~stats_file
  | None, `Write -> write ~baseline_file ~history ~jobs
  | None, `Check -> check ~baseline_file ~history ~jobs

let cmd =
  let mode =
    Arg.(
      value
      & vflag `Check
          [
            (`Check, info [ "check" ] ~doc:"Compare the sweep against the baseline (default).");
            (`Write, info [ "write" ] ~doc:"Regenerate the baseline file from this machine.");
          ])
  in
  let baseline =
    Arg.(
      value
      & opt string "BENCH_BASELINE.json"
      & info [ "baseline" ] ~docv:"FILE" ~doc:"Baseline file.")
  in
  let history =
    Arg.(
      value
      & opt (some string) None
      & info [ "history" ] ~docv:"FILE"
          ~doc:
            "Bench-trajectory file (JSONL, one dated entry per run). --write \
             always appends to it (default BENCH_HISTORY.jsonl); --check \
             appends only when this flag names a file. Drift against the \
             previous entry warns, never fails.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker domains for the sweep.")
  in
  let stats_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "check-stats" ] ~docv:"FILE"
          ~doc:
            "Instead of sweeping, read a bap_tables --stats-json report and \
             exit 4 if that sweep was DEGRADED (quarantined cells), 0 if \
             clean.")
  in
  Cmd.v
    (Cmd.info "bap_gate"
       ~doc:"Bench-regression gate: deterministic smoke sweep vs committed baseline")
    Term.(const run $ mode $ baseline $ history $ jobs $ stats_file)

let () = exit (Cmd.eval' cmd)
