(* CLI: randomized chaos campaign over the protocol stack.

   Generates (protocol, n, t, faulty, inputs, advice, fault-schedule)
   configurations, checks the safety oracles (agreement, validity,
   termination bound, monitor soundness) on every execution, and
   delta-debugs any violation to a minimal schedule printed as a
   pasteable OCaml value. Output is a pure function of the seed:
   re-running the same command yields byte-identical bytes.

   Examples:
     dune exec bin/bap_fuzz.exe -- --runs 500 --seed 1
     dune exec bin/bap_fuzz.exe -- --runs 200 --protocols unauth,auth,es,pk
     dune exec bin/bap_fuzz.exe -- --runs 100 --self-test   # prove the oracles fire *)

module Fuzz = Bap_chaos.Fuzz
module Schedule = Bap_chaos.Schedule
module Harness = Bap_chaos.Harness
module Supervisor = Bap_exec.Supervisor
module Tel = Bap_telemetry.Telemetry
open Cmdliner

let parse_protocols s =
  let names = String.split_on_char ',' s |> List.filter (fun x -> x <> "") in
  let ps = List.filter_map Fuzz.protocol_of_name names in
  if List.length ps <> List.length names || ps = [] then
    Error (`Msg (Printf.sprintf "unknown protocol list %S (use unauth,auth,es,pk)" s))
  else Ok ps

(* Under --harness-chaos the whole campaign runs as one supervised cell.
   Injected faults fire *before* the campaign function runs, so the
   failed attempts print nothing: stdout for the surviving attempt is
   byte-identical to a chaos-free run of the same seed, and the recovery
   story goes to stderr. The schedule (crash 80% / hang 20%, faulty for
   the first two attempts) guarantees attempts 0-1 fault and attempt 2
   runs clean, well inside the retry budget of 4. *)
let supervised_campaign ~chaos_seed f =
  match chaos_seed with
  | None -> Some (f ())
  | Some seed ->
    let h = Harness.create ~crash_pct:80 ~hang_pct:20 ~faulty_attempts:2 ~seed () in
    let inject ~key ~attempt =
      match Harness.decide h ~key ~attempt with
      | Some Harness.Crash -> Some Supervisor.Inject_crash
      | Some Harness.Hang -> Some Supervisor.Inject_hang
      | None -> None
    in
    let config =
      { Supervisor.retries = 4; timeout_s = Some 2.0; seed; inject = Some inject }
    in
    Supervisor.with_supervisor config (fun sup ->
        match Supervisor.supervise sup ~key:"bap-fuzz/campaign" f with
        | Supervisor.Completed { value; attempts; ledger } ->
          if ledger <> [] then
            Fmt.epr "[chaos] campaign recovered after %d attempt(s): %a@."
              attempts
              (fun ppf -> Supervisor.pp_ledger ppf)
              ledger;
          Some value
        | Supervisor.Quarantined { ledger } ->
          Fmt.epr "[chaos] campaign QUARANTINED: %a@."
            (fun ppf -> Supervisor.pp_ledger ppf)
            ledger;
          None)

(* Replay checker counterexamples: load the JSON bap_check wrote, rerun
   each configuration through the exact engine entry points the fuzzer
   uses, and ddmin-shrink any reproduced violation. Exit 0 iff every
   counterexample in the file still violates — the round-trip proof
   that checker findings are fuzzer findings. *)
let run_replay path =
  match Bap_checklib.Counterexample.load ~path with
  | Error msg ->
    Fmt.epr "bap_fuzz --replay: %s@." msg;
    3
  | Ok cexs ->
    Fmt.pr "bap_fuzz: replaying %d counterexample(s) from %s@." (List.length cexs)
      path;
    let reproduced = ref 0 in
    List.iteri
      (fun i (cex : Bap_checklib.Counterexample.t) ->
        let sabotage = cex.Bap_checklib.Counterexample.sabotage in
        let config = cex.Bap_checklib.Counterexample.config in
        let report = Fuzz.run_one ~sabotage config in
        Fmt.pr "replay %d:%s@,%a@,%a@." (i + 1)
          (if sabotage then " (sabotage)" else "")
          Fuzz.E.pp_config config Fuzz.E.pp_report report;
        if report.Fuzz.E.violations <> [] then begin
          incr reproduced;
          let shrunk = Fuzz.shrink ~sabotage config in
          Fmt.pr "shrunk schedule (%d of %d faults):@,%a@." (Schedule.length shrunk)
            (Schedule.length config.Fuzz.E.schedule)
            Schedule.pp shrunk
        end
        else Fmt.pr "replay %d: NO violation reproduced@." (i + 1))
      cexs;
    let total = List.length cexs in
    if !reproduced = total && total > 0 then begin
      Fmt.pr "ok: %d/%d counterexample(s) reproduced@." !reproduced total;
      0
    end
    else begin
      Fmt.pr "FAILED: %d/%d counterexample(s) reproduced@." !reproduced total;
      2
    end

let run_campaign runs seed protocols self_test quiet chaos_seed =
  Supervisor.install_exit_handlers
    ~on_signal:(fun ~signal_name ->
      Fmt.epr "@.[%s] campaign interrupted; re-run the same command to \
               reproduce (output is a pure function of the seed)@."
        signal_name)
    ();
  Fmt.pr "bap_fuzz: runs=%d seed=%d protocols=[%s]%s@." runs seed
    (String.concat "," (List.map Fuzz.E.protocol_name protocols))
    (if self_test then " self-test" else "");
  let progress ~run ~violations =
    if (not quiet) && run mod 100 = 0 then
      Fmt.pr "  progress: %d runs, %d violation(s)@." run violations
  in
  match
    supervised_campaign ~chaos_seed (fun () ->
        Fuzz.campaign ~sabotage:self_test ~progress ~protocols ~runs ~seed ())
  with
  | None -> 4
  | Some c ->
  List.iter (fun cx -> Fmt.pr "%a@." Fuzz.pp_counterexample cx) c.Fuzz.counterexamples;
  Fmt.pr "checksum=%Lx@." c.Fuzz.checksum;
  let n_cx = List.length c.Fuzz.counterexamples in
  if self_test then begin
    (* The harness must detect its own sabotage and shrink it small. *)
    let shrunk_ok =
      c.Fuzz.counterexamples <> []
      && List.for_all (fun cx -> Schedule.length cx.Fuzz.shrunk <= 5) c.Fuzz.counterexamples
    in
    if shrunk_ok then begin
      Fmt.pr "self-test ok: %d runs, %d sabotage(s) caught, all shrunk to <= 5 faults@."
        c.Fuzz.runs n_cx;
      0
    end
    else begin
      Fmt.pr "self-test FAILED: %d runs, %d counterexample(s)@." c.Fuzz.runs n_cx;
      2
    end
  end
  else if n_cx = 0 then begin
    Fmt.pr "ok: %d runs, 0 safety violations@." c.Fuzz.runs;
    0
  end
  else begin
    Fmt.pr "FAILED: %d runs, %d safety violation(s)@." c.Fuzz.runs n_cx;
    2
  end

let run runs seed protocols self_test quiet chaos_seed trace_out metrics_json replay
    =
  (* Telemetry goes to files only: campaign stdout stays a pure function
     of the seed. *)
  (match trace_out with
  | Some path -> Tel.install ~wall:true (Tel.Jsonl path)
  | None -> if metrics_json <> None then Tel.install Tel.Counters_only);
  let code =
    match replay with
    | Some path -> run_replay path
    | None -> run_campaign runs seed protocols self_test quiet chaos_seed
  in
  (match metrics_json with
  | Some path ->
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Tel.Metrics.to_json (Tel.Metrics.snapshot ())))
  | None -> ());
  Tel.shutdown ();
  code

let cmd =
  let runs =
    Arg.(value & opt int 500 & info [ "runs" ] ~doc:"Number of random configurations.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Campaign seed.") in
  let protocols =
    Arg.(
      value
      & opt (conv (parse_protocols, fun ppf ps ->
                 Fmt.pf ppf "%s" (String.concat "," (List.map Fuzz.E.protocol_name ps))))
          [ Fuzz.E.Unauth; Fuzz.E.Auth ]
      & info [ "protocols" ]
          ~doc:"Comma-separated subset of unauth,auth,es,pk to fuzz.")
  in
  let self_test =
    Arg.(
      value & flag
      & info [ "self-test" ]
          ~doc:
            "Sabotage the harness (tamper one honest decision whenever the schedule \
             equivocates) and require the oracles to catch it and the shrinker to \
             reduce it to <= 5 faults. Exit 0 iff the sabotage was caught.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Suppress the periodic progress lines.")
  in
  let chaos_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "harness-chaos" ] ~docv:"SEED"
          ~doc:
            "Run the campaign under the harness supervisor with injected \
             crashes and hangs from a seeded schedule. The campaign's stdout \
             stays byte-identical to a chaos-free run; the recovery ledger \
             goes to stderr. Exit 4 if even the retry budget cannot save it.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a JSONL telemetry trace of every simulated execution in \
             the campaign. Analyse with bap_trace. Never touches stdout.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"Write the merged metrics registry as JSON after the campaign.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a counterexample file written by bap_check --cex-out: rerun \
             every configuration through the fuzzer's engine entry points and \
             ddmin-shrink each reproduced violation. Exit 0 iff all reproduce.")
  in
  Cmd.v
    (Cmd.info "bap_fuzz" ~doc:"Chaos-fuzz the Byzantine agreement stack's safety oracles")
    Term.(
      const run $ runs $ seed $ protocols $ self_test $ quiet $ chaos_seed
      $ trace_out $ metrics_json $ replay)

let () = exit (Cmd.eval' cmd)
