(* CLI: regenerate the experiment tables (E1-E13, see DESIGN.md and
   EXPERIMENTS.md).

   Every experiment cell is an independent deterministic job, so the
   sweep fans out over a work-stealing domain pool and memoises cell
   results content-addressed under results/cache/ (keyed on the binary's
   digest: rebuilding invalidates, re-running hits). The tables on
   stdout are byte-identical whatever --jobs or the cache state; timing
   goes to stderr.

   Every sweep also keeps a write-ahead journal (results/sweep.journal):
   each finished cell is flushed as it completes, so a killed run
   resumes with --resume and reproduces the uninterrupted tables
   exactly. Cells run supervised — crashes and watchdog timeouts are
   retried up to --retries; cells that exhaust the budget are
   quarantined and the sweep finishes DEGRADED (exit 4) with partial
   tables instead of dying. --harness-chaos SEED turns the chaos layer
   against the harness itself.

   Examples:
     dune exec bin/bap_tables.exe                 # quick sweeps
     dune exec bin/bap_tables.exe -- --full       # paper-sized sweeps
     dune exec bin/bap_tables.exe -- --full --jobs 8
     dune exec bin/bap_tables.exe -- --only E5 --no-cache
     dune exec bin/bap_tables.exe -- --resume     # continue a killed sweep
     dune exec bin/bap_tables.exe -- --harness-chaos 7 --timeout 2 *)

open Cmdliner
module Engine = Bap_exec.Engine
module Pool = Bap_exec.Pool
module Cache = Bap_exec.Cache
module Journal = Bap_exec.Journal
module Supervisor = Bap_exec.Supervisor
module Harness = Bap_chaos.Harness
module Tel = Bap_telemetry.Telemetry
module Memprobe = Bap_telemetry.Memprobe

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let shell_quote a =
  let plain = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
    | '-' | '_' | '.' | '/' | '=' | ':' | ',' | '+' | '%' | '@' -> true
    | _ -> false
  in
  if a <> "" && String.for_all plain a then a else Filename.quote a

let resume_command () =
  let args = Array.to_list Sys.argv in
  let args = args @ if List.mem "--resume" args then [] else [ "--resume" ] in
  String.concat " " (List.map shell_quote args)

let run full only jobs no_cache cache_dir retries timeout journal_path no_journal
    resume chaos_seed trace_out alloc_out metrics_json stats_json =
  (* Telemetry writes only to the named files, never stdout, so the
     tables stay byte-identical whether or not tracing is on. *)
  (match (alloc_out, trace_out) with
  | Some path, _ | None, Some path -> Tel.install ~wall:true (Tel.Jsonl path)
  | None, None -> if metrics_json <> None then Tel.install Tel.Counters_only);
  (* --alloc-out: same JSONL trace, plus the allocation probe (spans
     gain minor_words attributes, the metrics registry gains alloc.*
     counters) and — where the runtime supports Memprof — the sampling
     profiler. *)
  if alloc_out <> None then begin
    Memprobe.enable ();
    if not (Memprobe.start_sampling ()) then
      Option.iter
        (fun msg -> Fmt.epr "[alloc] sampling profiler unavailable: %s@." msg)
        (Memprobe.sampling_failure ())
  end;
  let quick = not full in
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let cache = if no_cache then None else Some (Cache.create ~dir:cache_dir ()) in
  let fingerprint =
    match cache with Some c -> Cache.fingerprint c | None -> Cache.code_fingerprint ()
  in
  let chaos = Option.map (fun seed -> Harness.create ~seed ()) chaos_seed in
  (* Chaos implies a watchdog: injected hangs need a deadline to die by. *)
  let timeout =
    match (timeout, chaos) with None, Some _ -> Some 5.0 | t, _ -> t
  in
  (match (chaos, cache) with
  | Some h, Some c ->
    let damaged = Harness.corrupt_cache h ~dir:(Cache.dir c) in
    if damaged > 0 then Fmt.epr "[chaos] corrupted %d cache shard(s)@." damaged
  | _ -> ());
  let journal =
    if no_journal then None
    else Some (Journal.open_ ~resume ~path:journal_path ~fingerprint ())
  in
  (match journal with
  | Some j when resume ->
    Fmt.epr "[journal] resumed %d cell(s) from %s@." (Journal.entries j)
      (Journal.path j)
  | _ -> ());
  Supervisor.install_exit_handlers
    ~on_signal:(fun ~signal_name ->
      match journal with
      | Some j ->
        (* Non-blocking: the handler may have interrupted Journal.append
           on this very thread, which already holds the journal lock. *)
        Journal.signal_close j;
        Fmt.epr "@.[%s] journal flushed: %d cell(s) in %s@.resume with:  %s@."
          signal_name (Journal.entries j) (Journal.path j) (resume_command ())
      | None -> Fmt.epr "@.[%s] no journal in play; nothing to resume@." signal_name)
    ();
  let inject =
    Option.map
      (fun h ~key ~attempt ->
        match Harness.decide h ~key ~attempt with
        | Some Harness.Crash -> Some Supervisor.Inject_crash
        | Some Harness.Hang -> Some Supervisor.Inject_hang
        | None -> None)
      chaos
  in
  let config =
    {
      Supervisor.retries;
      timeout_s = timeout;
      seed = (match chaos_seed with Some s -> s | None -> 0);
      inject;
    }
  in
  let final_stats = ref None in
  let code =
    Supervisor.with_supervisor config (fun supervisor ->
        Pool.with_pool ~jobs (fun pool ->
            let stats =
              match only with
              | None ->
                Some
                  (Bap_experiments.Runner.run_all ~quick ~pool ?cache ?journal
                     ~supervisor ())
              | Some id -> (
                match
                  Bap_experiments.Runner.run_one ~quick ~pool ?cache ?journal
                    ~supervisor id
                with
                | Some stats -> Some stats
                | None ->
                  Fmt.epr "unknown experiment %S; known: %s@." id
                    (String.concat ", "
                       (List.map (fun (i, _, _) -> i) Bap_experiments.Runner.all));
                  exit 1)
            in
            Option.iter Journal.close journal;
            match stats with
            | None -> 0
            | Some s ->
              final_stats := Some s;
              Fmt.epr "[exec] %a@." (fun ppf -> Engine.pp_stats ppf) s;
              List.iter
                (fun (cid, ledger) ->
                  Fmt.epr "[supervisor] %s: %a@." cid
                    (fun ppf -> Supervisor.pp_ledger ppf)
                    ledger)
                s.Engine.ledgers;
              if Engine.degraded s then begin
                List.iter
                  (fun (exp_id, key) ->
                    Fmt.epr "[supervisor] QUARANTINED %s/%s@." exp_id key)
                  s.Engine.quarantined;
                4
              end
              else 0))
  in
  (* Flush the telemetry artifacts before a DEGRADED exit: a partial
     sweep's trace is exactly the one worth inspecting. *)
  (match metrics_json with
  | Some path -> write_file path (Tel.Metrics.to_json (Tel.Metrics.snapshot ()))
  | None -> ());
  (match (stats_json, !final_stats) with
  | Some path, Some s -> write_file path (Engine.stats_json s)
  | _ -> ());
  (* The alloc trace is self-contained: merged Memprof samples flush as
     sorted instants, and an alloc.process instant records the
     process-wide total so `bap_trace alloc` can report what share of
     all allocation its spans explain. Emitted after the pool quiesces,
     so every domain's counters are published. *)
  if alloc_out <> None then begin
    Memprobe.stop_sampling ();
    Memprobe.flush_samples_to_trace ();
    let d = Memprobe.process_delta () in
    Tel.instant ~cat:"alloc" ~name:"alloc.process"
      ~attrs:(fun () ->
        [
          ("minor_words", Tel.Int (int_of_float d.Memprobe.minor_words));
          ("promoted_words", Tel.Int (int_of_float d.Memprobe.promoted_words));
          ("major_words", Tel.Int (int_of_float d.Memprobe.major_words));
          ("minor_collections", Tel.Int d.Memprobe.minor_collections);
          ("major_collections", Tel.Int d.Memprobe.major_collections);
          ("compactions", Tel.Int d.Memprobe.compactions);
          ("heap_words", Tel.Int d.Memprobe.heap_words);
        ])
      ();
    Memprobe.disable ()
  end;
  Tel.shutdown ();
  if code <> 0 then exit code

let cmd =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Paper-sized sweeps (slower).")
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~doc:"Run a single experiment (E1..E13).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the cell sweep (default: the recommended \
             domain count of this machine). 1 forces the serial path.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Recompute every cell, bypassing the result cache.")
  in
  let cache_dir =
    Arg.(
      value
      & opt string Cache.default_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Result cache directory.")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Extra attempts for a crashed or timed-out cell before it is \
             quarantined.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:
            "Per-attempt watchdog deadline. Cooperative: cells observe it at \
             their next supervision tick. Defaults to none (5.0 under \
             --harness-chaos).")
  in
  let journal_path =
    Arg.(
      value
      & opt string Journal.default_path
      & info [ "journal" ] ~docv:"PATH" ~doc:"Write-ahead journal for the sweep.")
  in
  let no_journal =
    Arg.(value & flag & info [ "no-journal" ] ~doc:"Disable the sweep journal.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume a killed sweep from its journal: cells already recorded \
             are replayed, only the rest run. Output is byte-identical to an \
             uninterrupted run.")
  in
  let chaos_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "harness-chaos" ] ~docv:"SEED"
          ~doc:
            "Inject worker crashes, hangs, and cache-shard corruption into the \
             harness itself from a seeded schedule. The default schedule only \
             faults early attempts, so the supervised sweep recovers to \
             byte-identical tables.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a JSONL telemetry trace (Chrome trace-event compatible) of \
             the sweep: round/phase spans from the simulator, cell lifecycle \
             spans from the engine. Analyse with bap_trace. Never touches \
             stdout.")
  in
  let alloc_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "alloc-out" ] ~docv:"FILE"
          ~doc:
            "Like --trace-out, with the allocation probe on: spans carry \
             per-phase/per-cell minor-word deltas, Memprof samples (where the \
             runtime supports them) ride along as instants, and the trace is \
             self-contained for bap_trace alloc. Never touches stdout; table \
             bytes are unchanged.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:
            "Write the merged metrics registry (counters, gauges, histograms) \
             as JSON after the sweep.")
  in
  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:
            "Write Engine.stats (cache/journal hits, retries, quarantined \
             cells, ledgers, wall, jobs) as JSON. Consumable by bap_gate \
             --check-stats.")
  in
  Cmd.v
    (Cmd.info "bap_tables" ~doc:"Regenerate the reproduction experiment tables")
    Term.(
      const run $ full $ only $ jobs $ no_cache $ cache_dir $ retries $ timeout
      $ journal_path $ no_journal $ resume $ chaos_seed $ trace_out $ alloc_out
      $ metrics_json $ stats_json)

let () = exit (Cmd.eval cmd)
