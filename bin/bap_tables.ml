(* CLI: regenerate the experiment tables (E1-E13, see DESIGN.md and
   EXPERIMENTS.md).

   Every experiment cell is an independent deterministic job, so the
   sweep fans out over a work-stealing domain pool and memoises cell
   results content-addressed under results/cache/ (keyed on the binary's
   digest: rebuilding invalidates, re-running hits). The tables on
   stdout are byte-identical whatever --jobs or the cache state; timing
   goes to stderr.

   Examples:
     dune exec bin/bap_tables.exe                 # quick sweeps
     dune exec bin/bap_tables.exe -- --full       # paper-sized sweeps
     dune exec bin/bap_tables.exe -- --full --jobs 8
     dune exec bin/bap_tables.exe -- --only E5 --no-cache *)

open Cmdliner
module Engine = Bap_exec.Engine
module Pool = Bap_exec.Pool
module Cache = Bap_exec.Cache

let run full only jobs no_cache cache_dir =
  let quick = not full in
  let jobs = match jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let cache = if no_cache then None else Some (Cache.create ~dir:cache_dir ()) in
  Pool.with_pool ~jobs (fun pool ->
      let stats =
        match only with
        | None -> Some (Bap_experiments.Runner.run_all ~quick ~pool ?cache ())
        | Some id -> (
          match Bap_experiments.Runner.run_one ~quick ~pool ?cache id with
          | Some stats -> Some stats
          | None ->
            Fmt.epr "unknown experiment %S; known: %s@." id
              (String.concat ", "
                 (List.map (fun (i, _, _) -> i) Bap_experiments.Runner.all));
            exit 1)
      in
      Option.iter
        (fun s -> Fmt.epr "[exec] %a@." (fun ppf -> Engine.pp_stats ppf) s)
        stats)

let cmd =
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Paper-sized sweeps (slower).")
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~doc:"Run a single experiment (E1..E13).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the cell sweep (default: the recommended \
             domain count of this machine). 1 forces the serial path.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Recompute every cell, bypassing the result cache.")
  in
  let cache_dir =
    Arg.(
      value
      & opt string Cache.default_dir
      & info [ "cache-dir" ] ~docv:"DIR" ~doc:"Result cache directory.")
  in
  Cmd.v
    (Cmd.info "bap_tables" ~doc:"Regenerate the reproduction experiment tables")
    Term.(const run $ full $ only $ jobs $ no_cache $ cache_dir)

let () = exit (Cmd.eval cmd)
