(* Scale probe: run one wrapper instance at large n through the
   scalable core and report wall-clock + accounting. CI's scale-smoke
   job runs this at n=2000 under a timeout; developers use it to
   measure the n-scaling curve locally. Exits non-zero if the run
   fails to decide or to agree, so CI fails loud. *)

let run n f mode json =
  let mode = match mode with "concrete" -> `Concrete | _ -> `Auto in
  let r = Scale_probe.run ~mode ~n ~f () in
  if json then
    Printf.printf
      "{\"n\": %d, \"f\": %d, \"rounds\": %d, \"msgs\": %d, \"bits\": %d, \
       \"agreement\": %b, \"decided\": %b, \"wall_ms\": %.1f}\n"
      r.Scale_probe.n r.f r.rounds r.msgs r.bits r.agreement r.decided r.wall_ms
  else print_endline (Scale_probe.pp_line r);
  if r.Scale_probe.agreement && r.decided then 0
  else (
    Printf.eprintf "bap_scale: FAILED (agreement=%b decided=%b)\n" r.agreement
      r.decided;
    1)

open Cmdliner

let n_arg =
  Arg.(value & opt int 1000 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let f_arg =
  Arg.(
    value & opt int 0
    & info [ "f" ] ~docv:"F"
        ~doc:"Number of silent faulty processes (clamped to (n-1)/3).")

let mode_arg =
  Arg.(
    value
    & opt (enum [ ("counted", "counted"); ("concrete", "concrete") ]) "counted"
    & info [ "mode" ] ~docv:"MODE"
        ~doc:"Engine selection: the counted fast path or the concrete \
              per-pair reference.")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit the result as one JSON object.")

let cmd =
  let doc = "time one large-n wrapper instance through the scalable core" in
  let info = Cmd.info "bap_scale" ~doc in
  Cmd.v info Term.(const run $ n_arg $ f_arg $ mode_arg $ json_arg)

let () = exit (Cmd.eval' cmd)
