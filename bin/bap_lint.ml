(* CLI: the project-invariant static-analysis gate.

   Walks every .ml under lib/, bin/, test/ and enforces the rule
   catalog of lib/lint (determinism, cell purity, domain safety,
   layering; see DESIGN.md "Static analysis"). A committed
   lint-baseline.json grandfathers pre-existing findings, so the gate
   fails only on new violations.

   Usage:
     dune exec bin/bap_lint.exe --                      # gate (human output)
     dune exec bin/bap_lint.exe -- --json               # machine-readable
     dune exec bin/bap_lint.exe -- --update-baseline    # regenerate grandfather file
     dune exec bin/bap_lint.exe -- --rules              # print the catalog *)

open Cmdliner
module Baseline = Bap_lintlib.Baseline
module Engine = Bap_lintlib.Engine
module Finding = Bap_lintlib.Finding
module Report = Bap_lintlib.Report

let list_rules () =
  List.iter
    (fun (r : Finding.rule) ->
      Printf.printf "%s  [%s]  %s\n" r.Finding.id
        (Finding.severity_to_string r.Finding.severity)
        r.Finding.summary)
    Finding.catalog;
  0

let run mode root baseline_file json =
  let baseline_file =
    match baseline_file with
    | Some f -> f
    | None -> Filename.concat root "lint-baseline.json"
  in
  match mode with
  | `Rules -> list_rules ()
  | `Update ->
    let findings = Engine.lint_tree ~root in
    Baseline.save baseline_file findings;
    Printf.printf "bap_lint: wrote %d finding(s) to %s\n" (List.length findings)
      baseline_file;
    0
  | `Check ->
    let findings = Engine.lint_tree ~root in
    let baseline = Baseline.load baseline_file in
    let diff = Baseline.diff ~baseline findings in
    if json then print_string (Report.to_json diff)
    else Report.pp_human Format.std_formatter diff;
    if diff.Baseline.fresh = [] then 0 else 1

let cmd =
  let mode =
    Arg.(
      value
      & vflag `Check
          [
            (`Check, info [ "check" ] ~doc:"Lint and compare against the baseline (default).");
            ( `Update,
              info [ "update-baseline" ]
                ~doc:"Regenerate the baseline from the current findings." );
            (`Rules, info [ "rules" ] ~doc:"Print the rule catalog and exit.");
          ])
  in
  let root =
    Arg.(
      value & opt string "."
      & info [ "root" ] ~docv:"DIR" ~doc:"Repository root to scan (lib/, bin/, test/).")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"Baseline file (default: ROOT/lint-baseline.json).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  Cmd.v
    (Cmd.info "bap_lint"
       ~doc:
         "Static-analysis gate: determinism, cell purity, domain safety and layering \
          invariants over the repo's own sources")
    Term.(const run $ mode $ root $ baseline $ json)

let () = exit (Cmd.eval' cmd)
