(* One large-n wrapper instance through the scalable core, timed.

   Shared by bap_scale (the CI scale-smoke probe) and bap_gate --write
   (the recorded bench trajectory): both need the same deterministic
   workload so the numbers are comparable across machines and commits.
   The workload is the unauthenticated stack with perfect advice and
   [f] silent faults — the configuration whose counted-path cost is
   dominated by the protocol itself rather than by per-pair adversary
   calls, i.e. the scaling regime the paper's message-complexity claims
   are about. *)

module V = Bap_core.Value.Int
module S = Bap_core.Stack.Make (V)
module Gen = Bap_prediction.Gen
module Rng = Bap_sim.Rng

type result = {
  n : int;
  f : int;
  rounds : int;
  msgs : int;
  bits : int;
  agreement : bool;
  decided : bool;  (* every honest process returned *)
  wall_ms : float;
}

let run ?(mode = `Auto) ~n ~f () =
  let t = (n - 1) / 3 in
  let f = min f t in
  let rng = Rng.create ((17 * n) + f) in
  let faulty = Array.of_list (Rng.sample_without_replacement rng f n) in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.init n (fun i -> i mod 2) in
  let t0 = Unix.gettimeofday () in
  let o =
    S.run_unauth ~mode ~adversary:Bap_sim.Adversary.silent ~t ~faulty ~inputs ~advice ()
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let honest = List.length (S.R.honest_decisions o) in
  {
    n;
    f;
    rounds = o.S.R.rounds;
    msgs = o.S.R.honest_sent;
    bits = o.S.R.honest_bits;
    agreement = S.agreement o;
    decided = honest = n - f;
    wall_ms;
  }

let pp_line r =
  Printf.sprintf
    "bap_scale: n=%d f=%d rounds=%d msgs=%d bits=%d agreement=%b decided=%b wall_ms=%.1f"
    r.n r.f r.rounds r.msgs r.bits r.agreement r.decided r.wall_ms
