(* CLI: the always-on agreement service.

   Reads length-prefixed JSON frames — one agreement instance each —
   from stdin (default) or a Unix-domain socket, multiplexes them over
   the lib/exec domain pool under supervision, and writes one response
   frame per request in arrival order. Overload is shed with typed
   rejections, poisoned instances degrade instead of aborting, and
   SIGTERM/SIGINT drain gracefully (finish the accepted backlog, flush
   telemetry, exit 143/130).

   Examples:
     dune exec bin/bap_serve.exe < frames.bin > responses.bin
     dune exec bin/bap_serve.exe -- --socket /tmp/bap.sock --jobs 4
     dune exec bench/main.exe -- --serve --jobs 4      # load generator

   Request payload:  {"id":1,"family":"unauth","n":16,"f":2,"m":0,"seed":7}
   Response payload: {"id":1,"status":"ok","decided":78,...}            *)

open Cmdliner
module Server = Bap_servelib.Server
module Harness = Bap_chaos.Harness
module Supervisor = Bap_exec.Supervisor
module Tel = Bap_telemetry.Telemetry

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let run socket jobs queue batch retries timeout max_frame chaos_seed kill9_pct
    journal resume flight_capacity flight_dump trace_out metrics_json quiet =
  (match trace_out with
  | Some path -> Tel.install ~wall:true (Tel.Jsonl path)
  | None -> if metrics_json <> None then Tel.install Tel.Counters_only);
  let chaos = Option.map (fun seed -> Harness.create ~seed ()) chaos_seed in
  let inject =
    Option.map
      (fun h ~key ~attempt ->
        match Harness.decide h ~key ~attempt with
        | Some Harness.Crash -> Some Supervisor.Inject_crash
        | Some Harness.Hang -> Some Supervisor.Inject_hang
        | None -> None)
      chaos
  in
  (* A kill9 hit is a real SIGKILL to self: the hard-crash leg of the
     serve-crash CI job. The probe fires at the answer point — work
     done, respond record not yet journaled — which is exactly the
     window --resume must cover. *)
  let kill9 =
    if kill9_pct <= 0 then None
    else begin
      let h =
        Harness.create ~crash_pct:0 ~hang_pct:0 ~cache_pct:0 ~kill9_pct
          ~seed:(Option.value ~default:0 chaos_seed)
          ()
      in
      Some
        (fun ~key ->
          if Harness.kill9 h ~key then begin
            Fmt.epr "[serve] chaos: SIGKILL at %s@." key;
            Unix.kill (Unix.getpid ()) Sys.sigkill
          end;
          false)
    end
  in
  let cfg =
    {
      Server.jobs = max 1 jobs;
      queue_capacity = max 1 queue;
      batch = max 1 batch;
      retries = max 0 retries;
      timeout_s = timeout;
      max_frame;
      seed = Option.value ~default:0 chaos_seed;
      inject;
      journal_path = journal;
      resume;
      kill9;
      flight_capacity = max 1 flight_capacity;
      flight_dump;
    }
  in
  Server.install_signal_handlers ();
  let stats =
    match socket with
    | Some path ->
      if not quiet then Fmt.epr "[serve] listening on %s (--jobs %d)@." path cfg.Server.jobs;
      Server.serve_socket cfg ~path
    | None -> Server.serve_fds cfg ~in_fd:Unix.stdin ~out_fd:Unix.stdout
  in
  (match metrics_json with
  | Some path -> write_file path (Tel.Metrics.to_json (Tel.Metrics.snapshot ()))
  | None -> ());
  (* Telemetry flushes before the exit code is decided: an interrupted
     service's trace is exactly the one worth reading. *)
  Tel.shutdown ();
  if not quiet then Fmt.epr "%s@." (Server.report stats);
  exit stats.Server.exit_code

let cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve a Unix-domain socket (clients sequentially) instead of \
             stdin/stdout.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Worker domains for instance execution.")
  in
  let queue =
    Arg.(
      value & opt int 1024
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission queue capacity. Requests past it are shed with a typed \
             overload rejection, never buffered.")
  in
  let batch =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"N" ~doc:"Max instances per pool dispatch.")
  in
  let retries =
    Arg.(
      value & opt int 2
      & info [ "retries" ] ~docv:"N"
          ~doc:"Supervised retry budget before an instance degrades.")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) (Some 10.)
      & info [ "timeout" ] ~docv:"SECS"
          ~doc:"Per-attempt watchdog deadline for one instance.")
  in
  let max_frame =
    Arg.(
      value
      & opt int Bap_servelib.Frame.default_max_len
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:
            "Frame payload cap. An oversized length prefix poisons its \
             connection (typed rejection, then close) — the stream cannot \
             be resynchronised past it.")
  in
  let chaos_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "harness-chaos" ] ~docv:"SEED"
          ~doc:
            "Inject seeded crashes and hangs into instance attempts; the \
             default schedule faults only early attempts, so supervised \
             retry recovers every instance.")
  in
  let kill9 =
    Arg.(
      value & opt int 0
      & info [ "kill9" ] ~docv:"PCT"
          ~doc:
            "Seeded SIGKILL-self chaos: each instance has a PCT% chance of \
             killing the server dead at its answer point (after execution, \
             before the answer is journaled). Pair with --journal, then \
             restart with --resume — and without --kill9, or the same keys \
             re-fire. Seeded by --harness-chaos (default seed 0).")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:
            "Write-ahead instance journal: every admitted instance is logged \
             at accept and its answer is flushed to PATH before the response \
             frame is written, so a SIGKILL loses nothing accepted.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Replay the journal's valid prefix before serving: re-dispatch \
             every accepted-unanswered instance and answer retransmits of \
             already-answered ones from the journal, exactly once. Requires \
             --journal.")
  in
  let flight_capacity =
    Arg.(
      value & opt int 256
      & info [ "flight-capacity" ] ~docv:"N"
          ~doc:
            "Flight-recorder ring size: the last N service events \
             (admissions, responses, quarantines) are retained in memory for \
             SIGUSR1 dumps and the stats admin frame.")
  in
  let flight_dump =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dump" ] ~docv:"FILE"
          ~doc:
            "Where flight-recorder dumps land beside stderr (SIGUSR1 and \
             quarantine both dump). Defaults to the journal path plus \
             $(b,.flight) when --journal is set.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Write a JSONL telemetry trace of the service run.")
  in
  let metrics_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE"
          ~doc:"Write the merged metrics registry as JSON on exit.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress the stderr report.")
  in
  Cmd.v
    (Cmd.info "bap_serve"
       ~doc:
         "Always-on agreement service: streamed instances over the domain \
          pool; degrades, sheds, and drains — never aborts")
    Term.(
      const run $ socket $ jobs $ queue $ batch $ retries $ timeout $ max_frame
      $ chaos_seed $ kill9 $ journal $ resume $ flight_capacity $ flight_dump
      $ trace_out $ metrics_json $ quiet)

let () = exit (Cmd.eval' cmd)
