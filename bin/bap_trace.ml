(* CLI: analyse JSONL telemetry traces produced with --trace-out.

   Four reports over the logical event stream:

     summary  per-phase rollup of rounds / messages / bits — reconstructs
              the paper-facing accounting (E1's headline numbers) from
              the trace alone;
     diff     regression-style delta table between two traces;
     critpath the slowest cells by wall time, with ASCII timing bars
              (needs a trace recorded with wall-clock stamps, which
              --trace-out always enables);
     alloc    per-phase minor-word attribution with allocation bars and
              the top Memprof-sampled sites (needs a trace recorded with
              the allocation probe on, e.g. bap_tables --alloc-out).

   Examples:
     dune exec bin/bap_tables.exe -- --trace-out sweep.jsonl
     dune exec bin/bap_trace.exe -- summary sweep.jsonl
     dune exec bin/bap_trace.exe -- diff before.jsonl after.jsonl
     dune exec bin/bap_trace.exe -- critpath sweep.jsonl --top 10
     dune exec bin/bap_tables.exe -- --alloc-out alloc.jsonl
     dune exec bin/bap_trace.exe -- alloc alloc.jsonl *)

open Cmdliner
module Analysis = Bap_telemetry.Analysis

let with_trace path f =
  match Analysis.load path with
  | events -> f events
  | exception Failure msg ->
    Printf.eprintf "bap_trace: %s\n" msg;
    exit 1
  | exception Sys_error msg ->
    Printf.eprintf "bap_trace: %s\n" msg;
    exit 1

let trace_arg ~pos:p ~docv =
  Arg.(required & pos p (some file) None & info [] ~docv ~doc:"JSONL trace file.")

let summary_cmd =
  let run file = with_trace file (fun evs -> print_string (Analysis.summary evs)) in
  Cmd.v
    (Cmd.info "summary" ~doc:"Per-phase round/message/bit rollup of one trace")
    Term.(const run $ trace_arg ~pos:0 ~docv:"TRACE")

let diff_cmd =
  let run a b =
    with_trace a (fun ea ->
        with_trace b (fun eb -> print_string (Analysis.diff ea eb)))
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"Delta table between two traces (a vs b)")
    Term.(const run $ trace_arg ~pos:0 ~docv:"TRACE_A" $ trace_arg ~pos:1 ~docv:"TRACE_B")

let critpath_cmd =
  let top =
    Arg.(
      value & opt int 15
      & info [ "top" ] ~docv:"N" ~doc:"How many of the slowest cells to show.")
  in
  let run file top =
    with_trace file (fun evs -> print_string (Analysis.critpath ~top evs))
  in
  Cmd.v
    (Cmd.info "critpath" ~doc:"Slowest cells by wall time, with timing bars")
    Term.(const run $ trace_arg ~pos:0 ~docv:"TRACE" $ top)

let alloc_cmd =
  let top =
    Arg.(
      value & opt int 15
      & info [ "top" ]
          ~docv:"N"
          ~doc:"How many of the hottest sampled allocation sites to show.")
  in
  let run file top =
    with_trace file (fun evs -> print_string (Analysis.alloc_report ~top evs))
  in
  Cmd.v
    (Cmd.info "alloc"
       ~doc:
         "Per-phase minor-word attribution (allocation bars, top sampled \
          sites); record the trace with bap_tables --alloc-out")
    Term.(const run $ trace_arg ~pos:0 ~docv:"TRACE" $ top)

let cmd =
  Cmd.group
    (Cmd.info "bap_trace" ~doc:"Analyse JSONL telemetry traces (see --trace-out)")
    [ summary_cmd; diff_cmd; critpath_cmd; alloc_cmd ]

let () = exit (Cmd.eval cmd)
