(* CLI: exhaustive bounded model checking of the protocol stack.

   Where bap_fuzz samples the configuration space from a seed, bap_check
   exhausts it: for small n and bounded fault/advice budgets it walks
   EVERY (faulty set, input vector, advice-error placement, fault
   schedule) within the bounds and verifies the agreement / validity /
   round-bound oracles on each one. Violations serialize as JSON
   counterexamples that [bap_fuzz --replay] reruns and ddmin-shrinks.

   Examples:
     dune exec bin/bap_check.exe -- -n 4 -t 1 --budget 1 --stats
     dune exec bin/bap_check.exe -- --protocols es,pk -n 5 --horizon 3
     dune exec bin/bap_check.exe -- --self-test --cex-out cex.json
     dune exec bin/bap_fuzz.exe -- --replay cex.json *)

module Fuzz = Bap_chaos.Fuzz
module Space = Bap_chaos.Space
module Universe = Bap_checklib.Universe
module Explore = Bap_checklib.Explore
module Counterexample = Bap_checklib.Counterexample
module Tel = Bap_telemetry.Telemetry
open Cmdliner

let parse_protocols s =
  let names = String.split_on_char ',' s |> List.filter (fun x -> x <> "") in
  let ps = List.filter_map Fuzz.protocol_of_name names in
  if List.length ps <> List.length names || ps = [] then
    Error (`Msg (Printf.sprintf "unknown protocol list %S (use unauth,auth,es,pk)" s))
  else Ok ps

let protocols_conv =
  Arg.conv
    ( parse_protocols,
      fun ppf ps ->
        Fmt.pf ppf "%s" (String.concat "," (List.map Fuzz.E.protocol_name ps)) )

let order_conv =
  Arg.conv
    ( (function
      | "dfs" -> Ok Explore.Dfs
      | "bfs" -> Ok Explore.Bfs
      | s -> Error (`Msg (Printf.sprintf "unknown order %S (use dfs or bfs)" s))),
      fun ppf -> function
        | Explore.Dfs -> Fmt.string ppf "dfs"
        | Explore.Bfs -> Fmt.string ppf "bfs" )

let stats_json_string per_protocol =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\"protocols\":{";
  List.iteri
    (fun i (name, (s : Explore.stats)) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\"%s\":{\"leaves\":%d,\"states\":%d,\"symmetry_hits\":%d,\
            \"frontier_peak\":%d,\"violations\":%d}"
           name s.Explore.leaves s.Explore.states s.Explore.symmetry_hits
           s.Explore.frontier_peak s.Explore.violations))
    per_protocol;
  Buffer.add_string b "},\"metrics\":";
  Buffer.add_string b (Tel.Metrics.to_json (Tel.Metrics.snapshot ()));
  Buffer.add_string b "}\n";
  Buffer.contents b

let run protocols n t budget horizon max_faults salts corrupt_bits order no_symmetry
    self_test quiet stats stats_json cex_out =
  Tel.install Tel.Counters_only;
  let bounds =
    { Space.horizon; max_faults; salts; corrupt_bits }
  in
  Fmt.pr "bap_check: n=%d t=%d budget=%d horizon=%d max_faults=%d protocols=[%s]%s@." n
    t budget horizon max_faults
    (String.concat "," (List.map Fuzz.E.protocol_name protocols))
    (if self_test then " self-test" else "");
  let all_cexs = ref [] in
  let per_protocol =
    List.map
      (fun protocol ->
        let params =
          { (Universe.default_params ~protocol ~n ~t) with
            Universe.budget;
            bounds;
          }
        in
        let progress ~leaves ~states:_ ~violations =
          if (not quiet) && leaves mod 20_000 = 0 then
            Fmt.pr "  %s: %d leaves, %d violation(s)@."
              (Fuzz.E.protocol_name protocol) leaves violations
        in
        let result =
          Explore.run ~order ~symmetry:(not no_symmetry) ~sabotage:self_test
            ~progress params
        in
        let name = Fuzz.E.protocol_name protocol in
        if stats || not quiet then
          Fmt.pr "  %s: %a@." name Explore.pp_stats result.Explore.stats;
        List.iter
          (fun cex ->
            if not quiet then begin
              Fmt.pr "violation (%s):@,%a@,%a@." name Fuzz.E.pp_config
                cex.Explore.config Fuzz.E.pp_report cex.Explore.report
            end;
            all_cexs :=
              Counterexample.of_explore ~sabotage:self_test cex :: !all_cexs)
          result.Explore.counterexamples;
        (name, result.Explore.stats))
      protocols
  in
  let cexs = List.rev !all_cexs in
  (match cex_out with
  | Some path ->
    Counterexample.write ~path cexs;
    Fmt.pr "wrote %d counterexample(s) to %s@." (List.length cexs) path
  | None -> ());
  (match stats_json with
  | Some path ->
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (stats_json_string per_protocol))
  | None -> ());
  Tel.shutdown ();
  let total_states = List.fold_left (fun a (_, s) -> a + s.Explore.states) 0 per_protocol in
  let n_cx = List.length cexs in
  if self_test then
    if n_cx > 0 then begin
      Fmt.pr "self-test ok: %d states, %d planted violation(s) caught@." total_states
        n_cx;
      0
    end
    else begin
      Fmt.pr "self-test FAILED: %d states, sabotage went undetected@." total_states;
      2
    end
  else if n_cx = 0 then begin
    Fmt.pr "ok: %d states exhaustively verified, 0 violations@." total_states;
    0
  end
  else begin
    Fmt.pr "FAILED: %d safety violation(s) in %d states@." n_cx total_states;
    2
  end

let cmd =
  let protocols =
    Arg.(
      value
      & opt protocols_conv Fuzz.all_protocols
      & info [ "protocols" ]
          ~doc:"Comma-separated subset of unauth,auth,es,pk to check.")
  in
  let n = Arg.(value & opt int 4 & info [ "n" ] ~doc:"System size (keep <= 7).") in
  let t =
    Arg.(
      value & opt int 1
      & info [ "t" ] ~doc:"Fault tolerance; faulty sets range over size <= t.")
  in
  let budget =
    Arg.(
      value & opt int 1
      & info [ "budget" ]
          ~doc:"Advice error budget B: at most this many wrong bits across honest \
                processes' advice vectors.")
  in
  let horizon =
    Arg.(
      value
      & opt int Space.default_bounds.Space.horizon
      & info [ "horizon" ] ~doc:"Fault rounds range over 1..horizon.")
  in
  let max_faults =
    Arg.(
      value
      & opt int Space.default_bounds.Space.max_faults
      & info [ "max-faults" ] ~doc:"At most this many schedule faults per run.")
  in
  let salts =
    Arg.(
      value
      & opt int Space.default_bounds.Space.salts
      & info [ "salts" ] ~doc:"Equivocation salts range over 1..salts.")
  in
  let corrupt_bits =
    Arg.(
      value
      & opt int Space.default_bounds.Space.corrupt_bits
      & info [ "corrupt-bits" ] ~doc:"Corruption bit indices range over 0..corrupt-bits-1.")
  in
  let order =
    Arg.(
      value & opt order_conv Explore.Dfs
      & info [ "order" ]
          ~doc:"Exploration order: dfs streams leaves in O(depth) memory; bfs \
                sweeps fault-count layers (fault-free first) and reports the \
                materialised frontier peak.")
  in
  let no_symmetry =
    Arg.(
      value & flag
      & info [ "no-symmetry" ]
          ~doc:"Disable the process-permutation symmetry reduction (run every \
                leaf).")
  in
  let self_test =
    Arg.(
      value & flag
      & info [ "self-test" ]
          ~doc:
            "Plant the harness sabotage bug (tamper one honest decision whenever \
             the schedule equivocates) and require the checker to find it. Exit 0 \
             iff at least one violation was caught.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet" ] ~doc:"Only the summary lines.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print per-protocol exploration stats (also on by default unless \
                --quiet).")
  in
  let stats_json =
    Arg.(
      value
      & opt (some string) None
      & info [ "stats-json" ] ~docv:"FILE"
          ~doc:"Write per-protocol stats plus the merged metrics registry as JSON.")
  in
  let cex_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "cex-out" ] ~docv:"FILE"
          ~doc:"Write every counterexample as JSON; replay with bap_fuzz --replay.")
  in
  Cmd.v
    (Cmd.info "bap_check"
       ~doc:"Exhaustively model-check the Byzantine agreement stack within bounds")
    Term.(
      const run $ protocols $ n $ t $ budget $ horizon $ max_faults $ salts
      $ corrupt_bits $ order $ no_symmetry $ self_test $ quiet $ stats $ stats_json
      $ cex_out)

let () = exit (Cmd.eval' cmd)
