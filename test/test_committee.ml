(* Lemma 24, measured directly: run only Algorithm 7's committee
   election (each honest process sends signed votes to the first 2k+1
   identifiers of its ordering; a process with t+1 votes holds a
   certificate) and check |C| <= 3k+1, |C inter F| <= k and
   |C inter H| >= k+1 whenever k bounds the misclassifications and
   2k+1 <= n - t - k. *)

open Helpers
module Gen = Bap_prediction.Gen
module C = Bap_core.Classification

(* One election: returns (certified ids, faulty set, k_A). *)
let run_election ~n ~t ~k ~f ~m ~seed =
  let rng = Rng.create seed in
  let faulty = Array.of_list (Rng.sample_without_replacement rng f n) in
  let per = max 1 (C.majority_threshold n - f) in
  let advice =
    if m = 0 then Gen.perfect ~n ~faulty
    else Gen.generate ~rng ~n ~faulty ~budget:(m * per) (Gen.Targeted per)
  in
  let pki = Pki.create ~n in
  let adversary = Adv.advice_liar in
  let outcome =
    run_protocol ~adversary ~n ~faulty (fun ctx ->
        let i = S.R.id ctx in
        let key = Pki.key pki i in
        let c = S.Classify_p.run ctx advice.(i) in
        let order = C.pi c in
        let l_set = List.init ((2 * k) + 1) (fun j -> order.(j)) in
        let votes =
          List.map
            (fun j -> (j, S.W.Committee_vote (0, Pki.sign key (S.W.committee_payload j))))
            l_set
        in
        let inbox = S.R.send_to ctx votes in
        let supporters =
          Array.mapi
            (fun sender msgs ->
              List.exists
                (function
                  | S.W.Committee_vote (_, s) ->
                    Pki.verify pki ~signer:sender ~payload:(S.W.committee_payload i) s
                  | _ -> false)
                msgs)
            (Bap_sim.Inbox.to_array inbox)
        in
        Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 supporters >= t + 1)
  in
  (* The committee also includes faulty processes with enough votes; the
     puppets ran the same code, so read their results too. *)
  let certified =
    List.filteri (fun _ _ -> true) (List.init n Fun.id)
    |> List.filter (fun i ->
           match outcome.S.R.decisions.(i) with Some b -> b | None -> false)
  in
  let rng2 = Rng.create seed in
  ignore rng2;
  let honest_classifications =
    (* Re-derive k_A by rerunning classification alone. *)
    let o2 =
      run_protocol ~adversary ~n ~faulty (fun ctx ->
          S.Classify_p.run ctx advice.(S.R.id ctx))
    in
    S.R.honest_decisions o2
  in
  let k_a, _, _ = C.k_counts ~n ~faulty ~honest_classifications in
  (certified, faulty, k_a)

let prop_lemma24 =
  qcheck ~count:40 ~name:"Lemma 24: committee size and composition"
    QCheck2.Gen.(
      let* t = int_range 1 5 in
      let* f = int_range 0 t in
      let* k = int_range 1 3 in
      let* m = int_range 0 k in
      let* seed = int_range 0 1_000_000 in
      (* ensure 2k+1 <= n - t - k and t < n/2 *)
      let n = max ((3 * k) + t + 2) ((2 * t) + 2) in
      return (n, t, k, f, m, seed))
    (fun (n, t, k, f, m, seed) ->
      let certified, faulty, k_a = run_election ~n ~t ~k ~f ~m ~seed in
      if k_a > k then true (* precondition violated: nothing claimed *)
      else begin
        let is_faulty = Array.make n false in
        Array.iter (fun j -> is_faulty.(j) <- true) faulty;
        let c_f = List.length (List.filter (fun i -> is_faulty.(i)) certified) in
        let c_h = List.length certified - c_f in
        List.length certified <= (3 * k) + 1 && c_f <= k && c_h >= k + 1
      end)

let test_perfect_advice_committee_honest () =
  let certified, faulty, k_a = run_election ~n:14 ~t:4 ~k:1 ~f:4 ~m:0 ~seed:5 in
  Alcotest.(check int) "no misclassification" 0 k_a;
  let is_faulty = Array.make 14 false in
  Array.iter (fun j -> is_faulty.(j) <- true) faulty;
  Alcotest.(check bool) "committee all honest" true
    (List.for_all (fun i -> not is_faulty.(i)) certified);
  Alcotest.(check int) "committee is the 2k+1 most trusted" 3 (List.length certified)

let suite =
  [
    prop_lemma24;
    Alcotest.test_case "perfect advice elects honest committee" `Quick
      test_perfect_advice_committee_honest;
  ]
