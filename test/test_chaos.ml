(* Chaos-layer regression tests: hand-picked hard fault schedules that
   must never violate the safety oracles, determinism of the whole
   fuzzing pipeline (same seed => same schedules, same verdicts, same
   campaign checksum), the ddmin shrinker, and the sabotage self-test
   that proves the oracles are live. *)

open Helpers
module Schedule = Bap_chaos.Schedule
module Shrink = Bap_chaos.Shrink
module Fuzz = Bap_chaos.Fuzz
module E = Fuzz.E

let violation = Alcotest.testable E.Oracle.pp_violation ( = )

let run_clean ~protocol ~t ~faulty ~inputs schedule =
  let n = Array.length inputs in
  let cfg =
    { E.protocol; t; faulty; inputs; advice = Gen.perfect ~n ~faulty; schedule }
  in
  let r = Fuzz.run_one cfg in
  Alcotest.(check (list violation))
    (Printf.sprintf "no violations (%s)" (E.protocol_name protocol))
    [] r.E.violations

(* Regression 1: crash + omission storm against the unauthenticated
   protocol at the n = 3t + 1 quorum boundary — both faulty processes
   stay half-alive, starving two honest receivers for the whole run. *)
let test_crash_omission_storm () =
  let schedule =
    Schedule.
      [
        Crash_at { proc = 0; round = 4 };
        Omit_to { proc = 3; dst = 1; first = 1; last = 60 };
        Omit_to { proc = 3; dst = 2; first = 1; last = 60 };
        Omit_to { proc = 0; dst = 4; first = 1; last = 3 };
        Drop { src = 3; dst = 4; round = 2 };
      ]
  in
  run_clean ~protocol:E.Unauth ~t:2 ~faulty:[| 0; 3 |]
    ~inputs:[| 1; 0; 1; 0; 1; 1; 0 |] schedule;
  run_clean ~protocol:E.Es_baseline ~t:2 ~faulty:[| 0; 3 |]
    ~inputs:[| 1; 0; 1; 0; 1; 1; 0 |] schedule

(* Regression 2: equivocation + payload corruption against the
   authenticated protocol at the n = 2t + 1 boundary — a sustained
   split-world sender plus bit-flips on the second traitor's edges. *)
let test_equivocation_corruption () =
  let schedule =
    Schedule.
      [
        Equivocate { proc = 1; first = 1; last = 40; salt = 5 };
        Corrupt { src = 4; dst = 0; round = 2; bit = 17 };
        Corrupt { src = 4; dst = 2; round = 3; bit = 999 };
        Advice_flip { proc = 4; bit = 0 };
        Reorder { src = 2; dst = 3; round = 1 };
      ]
  in
  run_clean ~protocol:E.Auth ~t:2 ~faulty:[| 1; 4 |] ~inputs:[| 0; 2; 0; 1; 2 |]
    schedule;
  run_clean ~protocol:E.Unauth ~t:2 ~faulty:[| 1; 4 |]
    ~inputs:[| 0; 2; 0; 1; 2; 1; 0 |] schedule

(* Regression 3: duplication and reordering on *honest* edges — the
   envelope-safe network faults — plus a first-round crash, checked on
   every protocol including both baselines. *)
let test_honest_edge_chaos () =
  let schedule =
    Schedule.
      [
        Duplicate { src = 0; dst = 1; round = 1 };
        Duplicate { src = 1; dst = 0; round = 2 };
        Reorder { src = 3; dst = 0; round = 1 };
        Reorder { src = 1; dst = 3; round = 3 };
        Advice_flip { proc = 2; bit = 1 };
        Crash_at { proc = 2; round = 1 };
      ]
  in
  List.iter
    (fun protocol ->
      run_clean ~protocol ~t:1 ~faulty:[| 2 |] ~inputs:[| 1; 1; 0; 1 |] schedule)
    Fuzz.all_protocols

(* Same seed => identical schedule values. *)
let test_schedule_gen_deterministic () =
  let gen seed =
    let rng = Rng.create seed in
    Schedule.gen rng ~n:9 ~faulty:[| 1; 5 |] ~rounds:30 ~count:12
  in
  Alcotest.(check bool) "same seed, same schedule" true
    (Schedule.equal (gen 42) (gen 42));
  Alcotest.(check bool) "different seed, different schedule" false
    (Schedule.equal (gen 42) (gen 43))

(* Generated schedules always stay within the model envelope, so the
   oracles must hold on every draw. *)
let prop_gen_within_envelope =
  qcheck ~count:60 ~name:"generated schedules stay within the envelope"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 4 + Rng.int rng 10 in
      let f = Rng.int rng (((n - 1) / 3) + 1) in
      let faulty = random_faulty rng ~n ~f in
      let is_faulty = is_faulty_array ~n faulty in
      Schedule.gen rng ~n ~faulty ~rounds:20 ~count:12
      |> List.for_all (Schedule.within_envelope ~is_faulty))

(* Same seed => same verdicts and same campaign checksum; and a clean
   campaign across all four protocols finds nothing. *)
let test_campaign_deterministic () =
  let go seed = Fuzz.campaign ~protocols:Fuzz.all_protocols ~runs:60 ~seed () in
  let c1 = go 7 and c2 = go 7 and c3 = go 8 in
  Alcotest.(check int) "no violations" 0 (List.length c1.Fuzz.counterexamples);
  Alcotest.(check int64) "same seed, same checksum" c1.Fuzz.checksum c2.Fuzz.checksum;
  Alcotest.(check bool) "different seed, different checksum" false
    (Int64.equal c1.Fuzz.checksum c3.Fuzz.checksum)

(* ddmin on a plain list: the minimum hitting both required elements. *)
let test_ddmin_minimal () =
  let check l = List.mem 3 l && List.mem 17 l in
  let shrunk = Shrink.minimize ~check (List.init 25 Fun.id) in
  Alcotest.(check (list int)) "exact minimum" [ 3; 17 ] (List.sort compare shrunk);
  Alcotest.(check (list int)) "empty stays empty" []
    (Shrink.minimize ~check:(fun _ -> true) [])

(* The intentionally-broken harness (sabotage tampers an honest decision
   whenever the schedule equivocates): the oracle must fire and the
   shrinker must strip the seven-fault schedule down to the single
   equivocation that triggers it. *)
let test_sabotage_caught_and_shrunk () =
  let schedule =
    Schedule.
      [
        Duplicate { src = 0; dst = 1; round = 1 };
        Crash_at { proc = 2; round = 5 };
        Omit_to { proc = 2; dst = 4; first = 2; last = 9 };
        Reorder { src = 4; dst = 3; round = 2 };
        Equivocate { proc = 2; first = 1; last = 6; salt = 11 };
        Drop { src = 2; dst = 1; round = 3 };
        Advice_flip { proc = 2; bit = 0 };
      ]
  in
  let cfg =
    {
      E.protocol = E.Unauth;
      t = 1;
      faulty = [| 2 |];
      inputs = [| 1; 1; 0; 1; 1 |];
      advice = Gen.perfect ~n:5 ~faulty:[| 2 |];
      schedule;
    }
  in
  let r = Fuzz.run_one ~sabotage:true cfg in
  Alcotest.(check bool) "oracle fires on sabotage" true (r.E.violations <> []);
  let shrunk = Fuzz.shrink ~sabotage:true cfg in
  Alcotest.(check int) "shrunk to the single trigger" 1 (Schedule.length shrunk);
  Alcotest.(check bool) "the trigger is the equivocation" true
    (List.exists (function Schedule.Equivocate _ -> true | _ -> false) shrunk);
  let replay = Fuzz.run_one ~sabotage:true { cfg with E.schedule = shrunk } in
  Alcotest.(check bool) "shrunk schedule still violates" true
    (replay.E.violations <> []);
  (* Without sabotage the very same schedule is harmless. *)
  Alcotest.(check (list violation)) "clean without sabotage" []
    (Fuzz.run_one cfg).E.violations

let suite =
  [
    Alcotest.test_case "crash + omission storm is safe" `Quick
      test_crash_omission_storm;
    Alcotest.test_case "equivocation + corruption is safe" `Quick
      test_equivocation_corruption;
    Alcotest.test_case "honest-edge duplication/reorder is safe" `Quick
      test_honest_edge_chaos;
    Alcotest.test_case "schedule generation is deterministic" `Quick
      test_schedule_gen_deterministic;
    prop_gen_within_envelope;
    Alcotest.test_case "campaign is deterministic" `Quick test_campaign_deterministic;
    Alcotest.test_case "ddmin finds the exact minimum" `Quick test_ddmin_minimal;
    Alcotest.test_case "sabotage is caught and shrunk" `Quick
      test_sabotage_caught_and_shrunk;
  ]
