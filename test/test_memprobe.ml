(* The allocation observatory (lib/telemetry/memprobe): the probe must
   never perturb results at any --jobs, its per-phase counters must obey
   the same exact merge laws as every other metric, and the alloc report
   must round-trip through its own parser. *)

module Tel = Bap_telemetry.Telemetry
module Memprobe = Bap_telemetry.Memprobe
module Analysis = Bap_telemetry.Analysis
module Pool = Bap_exec.Pool
module Plan = Bap_exec.Plan
module Engine = Bap_exec.Engine
module Rng = Bap_sim.Rng
module V = Bap_core.Value.Int
module S = Bap_core.Stack.Make (V)

(* Unique per call without reading the clock (same idiom as test_exec). *)
let temp_seq = Atomic.make 0

let temp_file ext =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "bap-mem-test-%d-%d%s" (Unix.getpid ())
       (Atomic.fetch_and_add temp_seq 1)
       ext)

let with_tel ?wall mode f =
  Tel.install ?wall mode;
  Fun.protect ~finally:Tel.shutdown f

(* Every test leaves the probe off, whatever happens inside. *)
let with_probe f =
  Memprobe.enable ();
  Fun.protect ~finally:Memprobe.disable f

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* One small but non-trivial execution of the full unauth stack. *)
let small_run seed =
  let n = 7 in
  let t = 2 in
  let faulty = [| 3 |] in
  let rng = Rng.create seed in
  let inputs = Array.init n (fun _ -> Rng.int rng 2) in
  let advice = Bap_prediction.Gen.perfect ~n ~faulty in
  S.run_unauth ~t ~faulty ~inputs ~advice ~adversary:Bap_sim.Adversary.silent ()

(* ---------- probe on/off: results byte-identical ---------- *)

(* A sweep whose rendered rows capture the protocol results verbatim:
   the cross-check surface for "the probe changed nothing". *)
let sweep_rows ~jobs =
  let out = ref [] in
  let cell seed =
    Plan.row_cell
      (Printf.sprintf "seed=%d" seed)
      (fun () ->
        let o = small_run seed in
        [
          Printf.sprintf "%d,%d,%d" o.S.R.rounds o.S.R.honest_sent
            o.S.R.honest_bits;
        ])
  in
  let plan =
    {
      Plan.exp_id = "MEM";
      scope = "unit";
      cells = List.map cell (List.init 6 (fun i -> 700 + i));
      render = (fun rows -> out := rows);
    }
  in
  Pool.with_pool ~jobs (fun pool -> ignore (Engine.run ~pool [ plan ]));
  !out

let render_rows rows =
  String.concat "\n"
    (List.map
       (fun (key, rs) -> key ^ ": " ^ String.concat ";" (List.concat rs))
       rows)

let test_probe_identity () =
  (* jobs 1 and jobs 8, probe off then on: the rendered sweep output is
     byte-identical in all four corners. *)
  let off1 = render_rows (sweep_rows ~jobs:1) in
  let off8 = render_rows (sweep_rows ~jobs:8) in
  let on1, on8 =
    with_probe (fun () -> (render_rows (sweep_rows ~jobs:1),
                           render_rows (sweep_rows ~jobs:8)))
  in
  Alcotest.(check bool) "sweep produced rows" true (off1 <> "");
  Alcotest.(check string) "probe-off: jobs 1 = jobs 8" off1 off8;
  Alcotest.(check string) "probe on = probe off (jobs 1)" off1 on1;
  Alcotest.(check string) "probe on = probe off (jobs 8)" off1 on8

let test_probe_off_trace_clean () =
  (* With the probe off the trace carries no allocation attribute at
     all — the byte-identity guarantee for traces, not just results. *)
  let lines ~probe =
    with_tel Tel.Memory (fun () ->
        if probe then
          with_probe (fun () -> ignore (small_run 11))
        else ignore (small_run 11);
        List.mapi (fun i e -> Tel.to_json_line ~tid:i e) (Tel.events ()))
  in
  let off = String.concat "\n" (lines ~probe:false) in
  let on = String.concat "\n" (lines ~probe:true) in
  Alcotest.(check bool) "probe-off trace has no minor_words" false
    (contains off "minor_words");
  Alcotest.(check bool) "probe-on trace attributes allocation" true
    (contains on "minor_words")

(* ---------- metric merge laws for the alloc counters ---------- *)

(* Allocate an exactly countable amount on the minor heap: n conses,
   3 words each. Kept opaque so flambda cannot erase it. *)
let churn n =
  let rec build acc i = if i = 0 then acc else build (i :: acc) (i - 1) in
  ignore (Sys.opaque_identity (build [] n))

let test_alloc_counters_merge () =
  with_tel Tel.Counters_only (fun () ->
      with_probe (fun () ->
          Pool.with_pool ~jobs:4 (fun pool ->
              let tasks =
                Array.init 100 (fun i () ->
                    Memprobe.phase "load" (fun () -> churn 1000);
                    i)
              in
              ignore (Pool.run_all pool tasks)));
      let s = Tel.Metrics.snapshot () in
      Alcotest.(check (option int)) "span count sums exactly across domains"
        (Some 100)
        (List.assoc_opt "alloc.spans/load" s.Tel.Metrics.counters);
      match List.assoc_opt "alloc.minor_words/load" s.Tel.Metrics.counters with
      | None -> Alcotest.fail "alloc.minor_words/load missing"
      | Some w ->
        (* 100 spans x 1000 conses x 3 words each, plus closure noise:
           the merged total must carry at least the guaranteed part. *)
        Alcotest.(check bool)
          (Printf.sprintf "merged minor words cover the churn (%d)" w)
          true
          (w >= 100 * 1000 * 3))

let test_alloc_self_time () =
  (* Self-time semantics: a nested phase's words are subtracted from
     its parent, so every word lands under the innermost covering span
     exactly once — while the parent's histogram still observes the
     inclusive total. *)
  with_tel Tel.Counters_only (fun () ->
      with_probe (fun () ->
          Memprobe.phase "outer" (fun () ->
              Memprobe.phase "inner" (fun () -> churn 30_000)));
      let s = Tel.Metrics.snapshot () in
      let counter name =
        Option.value ~default:0
          (List.assoc_opt name s.Tel.Metrics.counters)
      in
      let inner = counter "alloc.minor_words/inner" in
      let outer = counter "alloc.minor_words/outer" in
      Alcotest.(check bool)
        (Printf.sprintf "inner self-time carries the churn (%d)" inner)
        true
        (inner >= 30_000 * 3);
      Alcotest.(check bool)
        (Printf.sprintf "outer self-time excludes the child (%d)" outer)
        true
        (outer < 30_000);
      match List.assoc_opt "alloc.span_minor_words/outer" s.Tel.Metrics.hists with
      | None -> Alcotest.fail "outer span histogram missing"
      | Some h ->
        Alcotest.(check bool) "outer histogram is inclusive of the child" true
          (h.Tel.Metrics.total >= inner))

(* ---------- the alloc report parses its own output ---------- *)

let test_alloc_report_roundtrip () =
  let path = temp_file ".jsonl" in
  Tel.install ~wall:true (Tel.Jsonl path);
  with_probe (fun () -> ignore (small_run 11));
  Tel.shutdown ();
  let evs = Analysis.load path in
  let d = Analysis.alloc_summarize evs in
  Alcotest.(check bool) "rounds carry attribution" true (d.Analysis.a_rounds > 0);
  Alcotest.(check bool) "words were measured" true (d.Analysis.a_total_words > 0);
  Alcotest.(check bool) "per-phase rows present" true (d.Analysis.a_rows <> []);
  (* The rows partition the measured total: every word lands once. *)
  let row_sum =
    List.fold_left (fun acc (_, r) -> acc + r.Analysis.a_words) 0 d.Analysis.a_rows
  in
  Alcotest.(check int) "rows partition the total" d.Analysis.a_total_words row_sum;
  (* The human-facing table round-trips through its own parser with the
     exact same numbers. *)
  let report = Analysis.alloc_report evs in
  let parsed = Analysis.parse_alloc_report report in
  Alcotest.(check bool) "parser recovered rows" true (parsed <> []);
  List.iter
    (fun (name, words) ->
      match List.assoc_opt name d.Analysis.a_rows with
      | Some r -> Alcotest.(check int) ("row " ^ name) r.Analysis.a_words words
      | None -> Alcotest.failf "parsed row %s not in alloc_summarize" name)
    parsed;
  Alcotest.(check int) "parser recovered every row"
    (List.length d.Analysis.a_rows)
    (List.length parsed);
  Sys.remove path

let suite =
  [
    Alcotest.test_case "probe on/off: sweep rows byte-identical (jobs 1/8)"
      `Quick test_probe_identity;
    Alcotest.test_case "probe off: trace carries no alloc attribute" `Quick
      test_probe_off_trace_clean;
    Alcotest.test_case "alloc counters merge exactly across domains" `Quick
      test_alloc_counters_merge;
    Alcotest.test_case "self-time: words land under the innermost span" `Quick
      test_alloc_self_time;
    Alcotest.test_case "alloc report parses its own output" `Quick
      test_alloc_report_roundtrip;
  ]
