module Inbox = Bap_sim.Inbox
module Bitset = Bap_sim.Bitset

let parse = function `A x -> Some x | `B -> None

(* The same six-sender inbox in both representations: senders 0 and 2
   broadcast [`A 1], sender 4 sent [`B; `A 3], sender 1 is a per-sender
   direct entry, senders 3 and 5 sent nothing. Every reading operation
   must agree between the two. *)
let slots = [| [ `A 1 ]; [ `A 7; `A 8 ]; [ `A 1 ]; []; [ `B; `A 3 ]; [] |]
let concrete () = Inbox.concrete (Array.copy slots)

let counted () =
  Inbox.counted ~n:6
    ~groups:
      [|
        ([ `A 1 ], Bitset.of_list 6 [ 0; 2 ]); ([ `B; `A 3 ], Bitset.of_list 6 [ 4 ]);
      |]
    ~direct:[| (1, [ `A 7; `A 8 ]) |]

let both name check =
  check (name ^ " (concrete)") (concrete ());
  check (name ^ " (counted)") (counted ())

let test_get () =
  both "get" (fun name inbox ->
      Array.iteri
        (fun s expected ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s sender %d" name s)
            (List.filter_map parse expected)
            (List.filter_map parse (Inbox.get inbox s)))
        slots)

let test_to_array () =
  both "to_array" (fun name inbox ->
      Alcotest.(check (array (list int)))
        name
        (Array.map (List.filter_map parse) slots)
        (Array.map (List.filter_map parse) (Inbox.to_array inbox)))

let test_iteri () =
  both "iteri" (fun name inbox ->
      let seen = ref [] in
      Inbox.iteri inbox ~f:(fun s msgs -> seen := (s, List.length msgs) :: !seen);
      Alcotest.(check (list (pair int int)))
        name
        [ (0, 1); (1, 2); (2, 1); (3, 0); (4, 2); (5, 0) ]
        (List.rev !seen))

let test_first_takes_one_per_sender () =
  both "first" (fun name inbox ->
      let got = Inbox.votes_to_array (Inbox.first inbox ~f:parse) in
      Alcotest.(check (array (option int)))
        name
        [| Some 1; Some 7; Some 1; None; Some 3; None |]
        got)

let test_firsti () =
  both "firsti" (fun name inbox ->
      let got =
        Inbox.votes_to_array
          (Inbox.firsti inbox ~f:(fun s m -> if s = 1 then None else parse m))
      in
      Alcotest.(check (array (option int)))
        name
        [| Some 1; None; Some 1; None; Some 3; None |]
        got)

let test_all_keeps_everything () =
  both "all" (fun name inbox ->
      Alcotest.(check (array (list int)))
        name
        [| [ 1 ]; [ 7; 8 ]; [ 1 ]; []; [ 3 ]; [] |]
        (Inbox.all inbox ~f:parse))

let test_count_and_plurality () =
  both "count/plurality" (fun name inbox ->
      let votes = Inbox.first inbox ~f:parse in
      Alcotest.(check int) (name ^ " count 1") 2 (Inbox.count votes ~eq:Int.equal 1);
      Alcotest.(check int) (name ^ " count 9") 0 (Inbox.count votes ~eq:Int.equal 9);
      Alcotest.(check (option (pair int int)))
        (name ^ " plurality")
        (Some (1, 2))
        (Inbox.plurality votes ~compare:Int.compare))

let test_senders_and_restrict () =
  both "senders/restrict" (fun name inbox ->
      let votes = Inbox.first inbox ~f:parse in
      Alcotest.(check (list int)) (name ^ " senders") [ 0; 1; 2; 4 ] (Inbox.senders votes);
      let kept = Inbox.restrict votes ~keep:(Bitset.of_list 6 [ 1; 2; 3 ]) in
      Alcotest.(check (list int)) (name ^ " restricted") [ 1; 2 ] (Inbox.senders kept);
      Alcotest.(check (array (option int)))
        (name ^ " restricted votes")
        [| None; Some 7; Some 1; None; None; None |]
        (Inbox.votes_to_array kept))

let test_fold_weighted () =
  both "fold_weighted" (fun name inbox ->
      let votes = Inbox.first inbox ~f:parse in
      let total, weight =
        Inbox.fold_weighted votes ~init:(0, 0) ~f:(fun (s, w) v mult ->
            (s + (v * mult), w + mult))
      in
      Alcotest.(check (pair int int)) name (12, 4) (total, weight))

let test_votes_mapi () =
  both "votes_mapi" (fun name inbox ->
      let votes = Inbox.first inbox ~f:parse in
      let doubled =
        Inbox.votes_mapi votes ~f:(fun s v ->
            match v with Some x when s <> 1 -> Some (2 * x) | _ -> None)
      in
      Alcotest.(check (array (option int)))
        name
        [| Some 2; None; Some 2; None; Some 6; None |]
        (Inbox.votes_to_array doubled))

let test_plain_votes () =
  let votes = Inbox.votes [| Some 5; Some 3; Some 5; Some 3; Some 1 |] in
  (* tie between 5 and 3 broken towards the smaller value *)
  Alcotest.(check (option (pair int int)))
    "tie to smallest"
    (Some (3, 2))
    (Inbox.plurality votes ~compare:Int.compare);
  Alcotest.(check (option (pair int int)))
    "all none" None
    (Inbox.plurality (Inbox.votes [| None; None |]) ~compare:Int.compare);
  Alcotest.(check (list int))
    "sender ids" [ 0; 2; 4 ]
    (Inbox.senders (Inbox.votes [| Some 'x'; None; Some 'y'; None; Some 'z' |]))

let suite =
  [
    Alcotest.test_case "get on both representations" `Quick test_get;
    Alcotest.test_case "to_array" `Quick test_to_array;
    Alcotest.test_case "iteri visits every slot" `Quick test_iteri;
    Alcotest.test_case "first takes one per sender" `Quick test_first_takes_one_per_sender;
    Alcotest.test_case "firsti is sender-aware" `Quick test_firsti;
    Alcotest.test_case "all keeps everything" `Quick test_all_keeps_everything;
    Alcotest.test_case "count and plurality" `Quick test_count_and_plurality;
    Alcotest.test_case "senders and restrict" `Quick test_senders_and_restrict;
    Alcotest.test_case "fold_weighted" `Quick test_fold_weighted;
    Alcotest.test_case "votes_mapi" `Quick test_votes_mapi;
    Alcotest.test_case "plain vote arrays" `Quick test_plain_votes;
  ]
