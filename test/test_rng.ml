module Rng = Bap_sim.Rng

let test_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let va = List.init 10 (fun _ -> Rng.int64 a) in
  let vb = List.init 10 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "streams differ" false (va = vb)

let test_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.int64 a) (Rng.int64 b)

let test_split_diverges () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let va = List.init 10 (fun _ -> Rng.int64 a) in
  let vb = List.init 10 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" false (va = vb)

let test_int_range () =
  let rng = Rng.create 99 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let test_int_rejects_nonpositive () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_bool_mixes () =
  let rng = Rng.create 11 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool rng then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 300 && !trues < 700)

let test_shuffle_permutation () =
  let rng = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_pick_member () =
  let rng = Rng.create 4 in
  let l = [ 3; 1; 4; 1; 5 ] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "member" true (List.mem (Rng.pick rng l) l)
  done

let test_pick_empty () =
  let rng = Rng.create 4 in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick rng []))

let test_sample_without_replacement () =
  let rng = Rng.create 8 in
  for _ = 1 to 50 do
    let s = Rng.sample_without_replacement rng 10 30 in
    Alcotest.(check int) "size" 10 (List.length s);
    Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare s));
    List.iter (fun x -> Alcotest.(check bool) "range" true (x >= 0 && x < 30)) s;
    Alcotest.(check (list int)) "sorted" (List.sort compare s) s
  done

let test_sample_all () =
  let rng = Rng.create 8 in
  Alcotest.(check (list int)) "k = n" (List.init 5 Fun.id)
    (Rng.sample_without_replacement rng 5 5)

(* Pinned splitmix64 outputs. Every experiment seed flows through these
   draws; a silent change to the generator would shift every table while
   still "looking random", so the exact values are regression-pinned. *)
let test_pinned_outputs () =
  let r = Rng.create 42 in
  List.iter
    (fun expected -> Alcotest.(check int64) "seed 42 stream" expected (Rng.int64 r))
    [ 0xbdd732262feb6e95L; 0x28efe333b266f103L; 0x47526757130f9f52L; 0x581ce1ff0e4ae394L ];
  let r2 = Rng.create 2024 in
  let i1 = Rng.int r2 100 in
  let i2 = Rng.int r2 100 in
  let i3 = Rng.int r2 100 in
  Alcotest.(check (list int)) "seed 2024 ints" [ 30; 21; 35 ] [ i1; i2; i3 ];
  let r3 = Rng.create 7 in
  Alcotest.(check (float 1e-15)) "seed 7 float" 0.38982974839127149 (Rng.float r3);
  let b1 = Rng.bool r3 in
  let b2 = Rng.bool r3 in
  let b3 = Rng.bool r3 in
  Alcotest.(check (list bool)) "seed 7 bools" [ false; false; true ] [ b1; b2; b3 ]

(* Generator state is per-instance, never global: jobs running
   concurrently on separate domains, each with its own [create], must
   draw exactly the stream a serial run draws — no interleaving, no
   cross-domain contamination. *)
let test_domains_do_not_interleave () =
  let draws = 1_000 in
  let serial seed =
    let r = Rng.create seed in
    List.init draws (fun _ -> Rng.int64 r)
  in
  let expected = List.init 8 (fun d -> serial (1000 + d)) in
  let domains =
    List.init 8 (fun d -> Domain.spawn (fun () -> serial (1000 + d)))
  in
  let got = List.map Domain.join domains in
  List.iteri
    (fun i (e, g) ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d stream identical to serial" i)
        true (e = g))
    (List.combine expected got)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "different seeds differ" `Quick test_different_seeds;
    Alcotest.test_case "copy is independent" `Quick test_copy_independent;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "int stays in range" `Quick test_int_range;
    Alcotest.test_case "int rejects non-positive bound" `Quick test_int_rejects_nonpositive;
    Alcotest.test_case "float stays in [0,1)" `Quick test_float_range;
    Alcotest.test_case "bool mixes" `Quick test_bool_mixes;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
    Alcotest.test_case "pick returns members" `Quick test_pick_member;
    Alcotest.test_case "pick rejects empty" `Quick test_pick_empty;
    Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
    Alcotest.test_case "sample k = n" `Quick test_sample_all;
    Alcotest.test_case "pinned seed outputs" `Quick test_pinned_outputs;
    Alcotest.test_case "per-job state across domains" `Quick test_domains_do_not_interleave;
  ]
