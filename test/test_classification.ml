(* Unit and property tests for Section 6: the voting rule, the pi
   ordering, and executable versions of Lemmas 1-6. *)

module C = Bap_core.Classification
module Advice = Bap_prediction.Advice
module Gen = Bap_prediction.Gen
module Quality = Bap_prediction.Quality
module Rng = Bap_sim.Rng
open Helpers

let test_majority_threshold () =
  Alcotest.(check int) "n=4" 3 (C.majority_threshold 4);
  Alcotest.(check int) "n=5" 3 (C.majority_threshold 5);
  Alcotest.(check int) "n=6" 4 (C.majority_threshold 6);
  Alcotest.(check int) "n=7" 4 (C.majority_threshold 7)

let test_vote_basic () =
  let n = 5 in
  let yes = Advice.make n true and no = Advice.make n false in
  (* 3 of 5 say everyone honest -> all classified honest. *)
  let c = C.vote ~n (Bap_sim.Inbox.votes [| Some yes; Some yes; Some yes; Some no; Some no |]) in
  Alcotest.(check string) "all honest" "11111" (Fmt.str "%a" Advice.pp c);
  (* 2 of 5 only -> all classified faulty. *)
  let c = C.vote ~n (Bap_sim.Inbox.votes [| Some yes; Some yes; Some no; Some no; Some no |]) in
  Alcotest.(check string) "all faulty" "00000" (Fmt.str "%a" Advice.pp c)

let test_vote_ignores_missing_and_malformed () =
  let n = 4 in
  let yes = Advice.make n true in
  let short = Advice.make 2 true in
  (* Only 2 valid yes-votes out of n = 4: threshold is 3, so faulty. *)
  let c = C.vote ~n (Bap_sim.Inbox.votes [| Some yes; Some yes; None; Some short |]) in
  Alcotest.(check string) "missing votes are not yes" "0000" (Fmt.str "%a" Advice.pp c)

let test_pi_ordering () =
  let c = Advice.of_bool_array [| false; true; true; false; true |] in
  Alcotest.(check (array int)) "honest asc then faulty asc" [| 1; 2; 4; 0; 3 |] (C.pi c)

let test_position () =
  let c = Advice.of_bool_array [| false; true; true; false; true |] in
  Alcotest.(check int) "honest front" 0 (C.position c 1);
  Alcotest.(check int) "faulty back" 3 (C.position c 0);
  Alcotest.(check int) "last faulty" 4 (C.position c 3)

let test_misclassified_by () =
  let faulty = [| 0; 3 |] in
  let c = Advice.of_bool_array [| true; true; true; false; false |] in
  (* 0 is faulty but classified honest; 4 is honest but classified faulty. *)
  Alcotest.(check (list int)) "positions" [ 0; 4 ] (C.misclassified_by ~faulty c)

let test_union_and_counts () =
  let n = 5 in
  let faulty = [| 0 |] in
  let truth = Advice.ground_truth ~n ~faulty in
  let c1 = Advice.flip truth 0 (* trusts faulty 0 *) in
  let c2 = Advice.flip truth 4 (* suspects honest 4 *) in
  let honest_classifications = [ (1, c1); (2, c2); (3, truth) ] in
  Alcotest.(check (list int)) "union" [ 0; 4 ]
    (C.misclassified_union ~n ~faulty ~honest_classifications);
  let k_a, k_f, k_h = C.k_counts ~n ~faulty ~honest_classifications in
  Alcotest.(check (list int)) "counts" [ 2; 1; 1 ] [ k_a; k_f; k_h ]

(* Run Algorithm 2 over generated advice and return the honest
   processes' classifications. *)
let classify_execution ~n ~t:_ ~faulty advice =
  let outcome =
    run_protocol ~n ~faulty (fun ctx -> S.Classify_p.run ctx advice.(S.R.id ctx))
  in
  S.R.honest_decisions outcome

(* Lemma 1: with f < n/2 - eps, at most B / (ceil(n/2) - f) processes are
   misclassified. *)
let lemma1 =
  qcheck ~count:60 ~name:"Lemma 1: k_A <= B / (ceil(n/2) - f)"
    QCheck2.Gen.(
      let* n, t, faulty, seed = config_gen ~t_of_n:(fun n -> (n - 1) / 3) () in
      let* budget = int_range 0 (2 * n) in
      let* placement = oneofl [ Gen.Uniform; Gen.Focused; Gen.Scattered ] in
      return (n, t, faulty, seed, budget, placement))
    (fun (n, t, faulty, seed, budget, placement) ->
      let rng = Rng.create seed in
      let advice = Gen.generate ~rng ~n ~faulty ~budget placement in
      let b = (Quality.measure ~n ~faulty advice).Quality.b in
      let honest_classifications = classify_execution ~n ~t ~faulty advice in
      let k_a, _, _ = C.k_counts ~n ~faulty ~honest_classifications in
      let f = Array.length faulty in
      let denom = ((n + 1) / 2) - f in
      denom <= 0 || k_a <= b / denom)

(* Observations 1-2 in contrapositive: with perfect advice nothing is
   misclassified, whatever the faulty processes broadcast. *)
let perfect_advice_classifies_perfectly =
  qcheck ~count:40 ~name:"perfect advice yields zero misclassifications"
    (config_gen ~t_of_n:(fun n -> (n - 1) / 3) ())
    (fun (n, _t, faulty, _) ->
      let advice = Gen.perfect ~n ~faulty in
      let outcome =
        run_protocol ~n ~faulty ~adversary:Adv.advice_liar (fun ctx ->
            S.Classify_p.run ctx advice.(S.R.id ctx))
      in
      let honest_classifications = S.R.honest_decisions outcome in
      let k_a, _, _ = C.k_counts ~n ~faulty ~honest_classifications in
      k_a = 0)

(* Lemma 2: a properly classified process sits within m positions of its
   true position, where m = #misclassifications of that vector. *)
let lemma2 =
  qcheck ~count:60 ~name:"Lemma 2: position shift bounded by m"
    QCheck2.Gen.(
      let* n = int_range 5 20 in
      let* f = int_range 0 (n / 3) in
      let* seed = int_range 0 1_000_000 in
      return (n, f, seed))
    (fun (n, f, seed) ->
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f in
      let truth = Advice.ground_truth ~n ~faulty in
      (* Random vector c obtained by flipping some bits of the truth. *)
      let flips = Rng.int rng (n + 1) in
      let c = ref truth in
      for _ = 1 to flips do
        c := Advice.flip !c (Rng.int rng n)
      done;
      let c = !c in
      let m = Advice.errors_against ~truth c in
      List.for_all
        (fun i ->
          if Advice.get c i = Advice.get truth i then
            abs (C.position c i - C.position truth i) <= m
          else true)
        (List.init n Fun.id))

(* Lemma 4: two honest processes that both misclassify a faulty process
   as honest place it within k_A - 1 positions of each other. *)
let lemma4 =
  qcheck ~count:60 ~name:"Lemma 4: misclassified positions differ by < k_A"
    QCheck2.Gen.(
      let* n, t, faulty, seed = config_gen ~min_n:10 ~t_of_n:(fun n -> (n - 1) / 3) () in
      let* budget = int_range 0 (2 * n) in
      return (n, t, faulty, seed, budget))
    (fun (n, t, faulty, seed, budget) ->
      let rng = Rng.create seed in
      let advice = Gen.generate ~rng ~n ~faulty ~budget Gen.Focused in
      let honest_classifications = classify_execution ~n ~t ~faulty advice in
      let k_a, _, _ = C.k_counts ~n ~faulty ~honest_classifications in
      let is_faulty = is_faulty_array ~n faulty in
      List.for_all
        (fun j ->
          if not is_faulty.(j) then true
          else begin
            let positions =
              List.filter_map
                (fun (_, c) ->
                  if Advice.get c j then Some (C.position c j) else None)
                honest_classifications
            in
            match positions with
            | [] -> true
            | p :: rest ->
              List.for_all
                (fun q -> abs (p - q) <= max 0 (k_a - 1))
                rest
          end)
        (List.init n Fun.id))

(* Lemma 5 (core set): for any window of size 3k+1 ending at position
   <= n - t - k_A, at least 2k+1 identifiers are common to every honest
   ordering, and with k_A <= k they are honest. *)
let lemma5 =
  qcheck ~count:60 ~name:"Lemma 5: common window retains size - k_A members"
    QCheck2.Gen.(
      let* n, t, faulty, seed = config_gen ~min_n:10 ~t_of_n:(fun n -> (n - 1) / 4) () in
      let* budget = int_range 0 n in
      return (n, t, faulty, seed, budget))
    (fun (n, t, faulty, seed, budget) ->
      let rng = Rng.create seed in
      let advice = Gen.generate ~rng ~n ~faulty ~budget Gen.Uniform in
      let honest_classifications = classify_execution ~n ~t ~faulty advice in
      match honest_classifications with
      | [] -> true
      | _ ->
        let k_a, _, _ = C.k_counts ~n ~faulty ~honest_classifications in
        let is_faulty = is_faulty_array ~n faulty in
        (* Check every window of width k_a+1 .. keep it cheap: width w =
           min n (3 k_a + 1). *)
        let w = min n ((3 * k_a) + 1) in
        let valid = ref true in
        let l = ref 0 in
        while !valid && !l + w <= n - t - k_a do
          let r = !l + w - 1 in
          let common = C.common_window ~honest_classifications ~l:!l ~r in
          if List.length common < w - k_a then valid := false;
          (* All common members in this prefix range must be honest. *)
          if List.exists (fun id -> is_faulty.(id)) common then valid := false;
          l := !l + w
        done;
        !valid)

(* Lemma 6: at most r + k_H processes appear within the first r
   positions of their own ordering. *)
let lemma6 =
  qcheck ~count:60 ~name:"Lemma 6: self-inclusion bounded by r + k_H"
    QCheck2.Gen.(
      let* n, t, faulty, seed = config_gen ~min_n:10 ~t_of_n:(fun n -> (n - 1) / 4) () in
      let* budget = int_range 0 n in
      return (n, t, faulty, seed, budget))
    (fun (n, t, faulty, seed, budget) ->
      let rng = Rng.create seed in
      let advice = Gen.generate ~rng ~n ~faulty ~budget Gen.Uniform in
      let honest_classifications = classify_execution ~n ~t ~faulty advice in
      let _, _, k_h = C.k_counts ~n ~faulty ~honest_classifications in
      let ok = ref true in
      let r = max 1 ((n - t) / 2) in
      if r <= n - t - k_h then begin
        let self_included =
          List.filter (fun (i, c) -> C.position c i < r) honest_classifications
        in
        if List.length self_included > r + k_h then ok := false
      end;
      !ok)

let suite =
  [
    Alcotest.test_case "majority threshold" `Quick test_majority_threshold;
    Alcotest.test_case "voting rule" `Quick test_vote_basic;
    Alcotest.test_case "vote ignores missing/malformed" `Quick
      test_vote_ignores_missing_and_malformed;
    Alcotest.test_case "pi ordering" `Quick test_pi_ordering;
    Alcotest.test_case "position" `Quick test_position;
    Alcotest.test_case "misclassified_by" `Quick test_misclassified_by;
    Alcotest.test_case "union and counts" `Quick test_union_and_counts;
    lemma1;
    perfect_advice_classifies_perfectly;
    lemma2;
    lemma4;
    lemma5;
    lemma6;
  ]
