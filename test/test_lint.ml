(* The linter linted: every rule id must fire on a minimal positive
   fixture and stay quiet on the idiomatic negative, including the
   allowlist and waiver-comment paths. Fixtures are inline source
   snippets — they only need to parse, not typecheck, which keeps each
   one focused on exactly the shape the rule inspects. *)

module Finding = Bap_lintlib.Finding
module Engine = Bap_lintlib.Engine
module Rules = Bap_lintlib.Rules
module Source = Bap_lintlib.Source
module Baseline = Bap_lintlib.Baseline

let lint ~path text = Engine.lint_string ~path text
let ids fs = List.sort_uniq String.compare (List.map (fun f -> f.Finding.rule_id) fs)
let check_ids name expected fs =
  Alcotest.(check (list string)) name expected (ids fs)

(* ---------- D001: stdlib Random ---------- *)

let test_d001 () =
  check_ids "Random.int in lib/core fires" [ "D001" ]
    (lint ~path:"lib/core/x.ml" "let f () = Random.int 3");
  check_ids "Random.self_init in bin fires" [ "D001" ]
    (lint ~path:"bin/x.ml" "let () = Random.self_init ()");
  check_ids "rng.ml is the one sanctioned home" []
    (lint ~path:"lib/sim/rng.ml" "let f () = Random.int 3");
  check_ids "Rng stream is the idiom" []
    (lint ~path:"lib/core/x.ml" "let f rng = Rng.int rng 3")

let test_d001_location () =
  match lint ~path:"lib/core/x.ml" "let a = 1\nlet f () = Random.bits ()" with
  | [ f ] ->
    Alcotest.(check string) "rule" "D001" f.Finding.rule_id;
    Alcotest.(check int) "line" 2 f.Finding.line
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

(* ---------- D002: wall clock ---------- *)

let test_d002 () =
  check_ids "gettimeofday in lib/monitor fires" [ "D002" ]
    (lint ~path:"lib/monitor/x.ml" "let f () = Unix.gettimeofday ()");
  check_ids "Sys.time in test fires" [ "D002" ]
    (lint ~path:"test/x.ml" "let f () = Sys.time ()");
  check_ids "lib/exec is the timing shim" []
    (lint ~path:"lib/exec/engine.ml" "let f () = Unix.gettimeofday ()");
  check_ids "bin reports wall-clock" []
    (lint ~path:"bin/bap_gate.ml" "let f () = Unix.gettimeofday ()");
  check_ids "lib/telemetry stamps wall_us" []
    (lint ~path:"lib/telemetry/telemetry.ml" "let f () = Unix.gettimeofday ()");
  check_ids "lib/serve measures service latency" []
    (lint ~path:"lib/serve/server.ml" "let now_us () = Unix.gettimeofday () *. 1e6");
  check_ids "serve waiver does not leak to its neighbours" [ "D002" ]
    (lint ~path:"lib/baselines/baseline_runs.ml" "let f () = Unix.gettimeofday ()");
  check_ids "telemetry waiver does not leak to lib/sim" [ "D002" ]
    (lint ~path:"lib/sim/runtime.ml" "let f () = Unix.gettimeofday ()")

(* The Gc leg of D002: allocation counters are read only through the
   lib/telemetry memprobe. *)
let test_d002_gc () =
  check_ids "Gc.quick_stat in lib/core fires" [ "D002" ]
    (lint ~path:"lib/core/x.ml" "let f () = Gc.quick_stat ()");
  check_ids "Gc.minor_words in bin fires" [ "D002" ]
    (lint ~path:"bin/bap_tables.ml" "let f () = Gc.minor_words ()");
  check_ids "Gc.Memprof.start in lib/exec fires" [ "D002" ]
    (lint ~path:"lib/exec/engine.ml"
       "let f cb = Gc.Memprof.start ~sampling_rate:1e-4 cb");
  check_ids "lib/telemetry is the memprobe's home" []
    (lint ~path:"lib/telemetry/memprobe.ml" "let f () = Gc.quick_stat ()");
  (* A local module happening to be named Gc is not the runtime's Gc:
     the rule matches the catalogued functions, not the bare head. *)
  check_ids "local module Gc stays quiet" []
    (lint ~path:"lib/core/ba.ml"
       "module Gc = Graded_core_set.Make (V)\nlet f x = Gc.run x")

(* ---------- D003: Hashtbl iteration order ---------- *)

let test_d003 () =
  check_ids "bare fold fires" [ "D003" ]
    (lint ~path:"lib/core/x.ml"
       "let f t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []");
  check_ids "fold piped through sort is the idiom" []
    (lint ~path:"lib/core/x.ml"
       "let f t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [] |> List.sort compare");
  check_ids "fold under an applied sort is fine" []
    (lint ~path:"lib/core/x.ml"
       "let f t = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t [])");
  check_ids "sort_uniq counts as a sort" []
    (lint ~path:"lib/core/x.ml"
       "let f t = Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort_uniq compare");
  check_ids "Hashtbl.iter always fires" [ "D003" ]
    (lint ~path:"lib/core/x.ml" "let f t = Hashtbl.iter (fun _ v -> ignore v) t");
  check_ids "a sort elsewhere does not bless a fold inside a lambda" [ "D003" ]
    (lint ~path:"lib/core/x.ml"
       "let f ts = List.sort compare (List.concat_map (fun t -> Hashtbl.fold (fun k _ \
        acc -> k :: acc) t []) ts)")

let test_d003_waiver () =
  check_ids "waiver comment above suppresses" []
    (lint ~path:"lib/core/x.ml"
       "(* LINT: waive D003 commutative sum *)\n\
        let f t = Hashtbl.fold (fun _ v acc -> acc + v) t 0");
  check_ids "waiver for another rule does not" [ "D003" ]
    (lint ~path:"lib/core/x.ml"
       "(* LINT: waive S001 wrong id *)\n\
        let f t = Hashtbl.fold (fun _ v acc -> acc + v) t 0")

(* ---------- D004: polymorphic compare / Hashtbl.hash ---------- *)

let test_d004 () =
  check_ids "= on a qualified constructor fires" [ "D004" ]
    (lint ~path:"lib/core/x.ml" "let f m v = m = W.Advice v");
  check_ids "compare on a protocol record fires" [ "D004" ]
    (lint ~path:"lib/core/x.ml" "let f s = compare s { proc = 1; round = 2 }");
  check_ids "Hashtbl.hash fires anywhere" [ "D004" ]
    (lint ~path:"lib/experiments/x.ml" "let f name = Hashtbl.hash name");
  check_ids "= on primitives is fine" []
    (lint ~path:"lib/core/x.ml" "let f x = x = 3");
  check_ids "unqualified option comparison is fine" []
    (lint ~path:"lib/core/x.ml" "let f x = x = Some 3");
  check_ids "compare as a sort argument is fine" []
    (lint ~path:"lib/core/x.ml" "let f xs = List.sort compare xs")

(* ---------- D005: Marshal ---------- *)

let test_d005 () =
  check_ids "Marshal outside the cache fires" [ "D005" ]
    (lint ~path:"lib/core/x.ml" "let f v = Marshal.to_string v []");
  check_ids "lib/exec/cache.ml is the one home" []
    (lint ~path:"lib/exec/cache.ml" "let f v = Marshal.to_string v []")

(* ---------- P001: prints in cell bodies ---------- *)

let test_p001 () =
  check_ids "print inside a cell body fires" [ "P001" ]
    (lint ~path:"lib/experiments/e99.ml"
       "let c = Plan.row_cell \"k\" (fun () -> Printf.printf \"x\"; [])");
  check_ids "print in render is the design" []
    (lint ~path:"lib/experiments/e99.ml"
       "let plan = { Plan.exp_id = \"E99\"; render = (fun _ -> Printf.printf \"t\") }");
  check_ids "print function merely passed along still fires" [ "P001" ]
    (lint ~path:"lib/experiments/e99.ml"
       "let c = Plan.cell \"k\" (fun () -> List.iter print_endline [])");
  check_ids "cells outside lib/experiments are not cells" []
    (lint ~path:"test/x.ml"
       "let c = Plan.row_cell \"k\" (fun () -> Printf.printf \"x\"; [])")

(* ---------- S001: top-level mutable state ---------- *)

let test_s001 () =
  check_ids "top-level Hashtbl fires" [ "S001" ]
    (lint ~path:"lib/crypto/x.ml" "let table = Hashtbl.create 8");
  check_ids "top-level ref fires" [ "S001" ]
    (lint ~path:"lib/crypto/x.ml" "let counter = ref 0");
  check_ids "top-level lazy fires" [ "S001" ]
    (lint ~path:"lib/crypto/x.ml" "let v = lazy (compute ())");
  check_ids "ref hidden in a tuple fires" [ "S001" ]
    (lint ~path:"lib/crypto/x.ml" "let pair = (ref 0, 1)");
  check_ids "functor-body state fires too" [ "S001" ]
    (lint ~path:"lib/crypto/x.ml"
       "module Make (V : S) = struct let seen = Hashtbl.create 8 end");
  check_ids "Atomic is the sanctioned form" []
    (lint ~path:"lib/crypto/x.ml" "let counter = Atomic.make 0");
  check_ids "state local to a function is fine" []
    (lint ~path:"lib/crypto/x.ml" "let f () = let t = Hashtbl.create 8 in t");
  check_ids "bin is single-domain driver code" []
    (lint ~path:"bin/x.ml" "let table = Hashtbl.create 8")

let test_s001_waiver () =
  check_ids "same-line waiver suppresses" []
    (lint ~path:"lib/crypto/x.ml"
       "let table = Hashtbl.create 8 (* LINT: waive S001 written once before spawn *)")

(* ---------- L001: layering ---------- *)

let test_l001 () =
  check_ids "core reaching into exec fires" [ "L001" ]
    (lint ~path:"lib/core/x.ml" "let f = Bap_exec.Plan.scope_of_quick");
  check_ids "sim reaching into chaos fires" [ "L001" ]
    (lint ~path:"lib/sim/x.ml" "module S = Bap_chaos.Schedule");
  check_ids "experiments may use exec" []
    (lint ~path:"lib/experiments/x.ml" "let f = Bap_exec.Plan.scope_of_quick");
  check_ids "core using sim is the layering" []
    (lint ~path:"lib/core/x.ml" "module R = Bap_sim.Runtime")

(* ---------- L002: interface hygiene (file-set rule) ---------- *)

let test_l002 () =
  check_ids "core module without mli fires" [ "L002" ]
    (Rules.check_interfaces ~mls:[ "lib/core/foo.ml" ] ~mlis:[]);
  check_ids "mli present is quiet" []
    (Rules.check_interfaces ~mls:[ "lib/core/foo.ml" ] ~mlis:[ "lib/core/foo.mli" ]);
  check_ids "chaos is interface-complete" [ "L002" ]
    (Rules.check_interfaces ~mls:[ "lib/chaos/foo.ml" ] ~mlis:[]);
  check_ids "serve is interface-complete" [ "L002" ]
    (Rules.check_interfaces ~mls:[ "lib/serve/foo.ml" ] ~mlis:[]);
  check_ids "monitor is not (yet) interface-complete" []
    (Rules.check_interfaces ~mls:[ "lib/monitor/foo.ml" ] ~mlis:[])

(* ---------- C001: adversary decisions outside the Decision tree ---------- *)

let test_c001 () =
  check_ids "Rng draw in adversary behavior fires" [ "C001" ]
    (lint ~path:"lib/sim/adversary.ml" "let f rng = Rng.int rng 3");
  check_ids "qualified Rng draw in the fault injector fires" [ "C001" ]
    (lint ~path:"lib/chaos/injector.ml" "let f rng = Bap_sim.Rng.pick rng [ 1; 2 ]");
  check_ids "Rng draw in the checker's choice space fires" [ "C001" ]
    (lint ~path:"lib/chaos/space.ml" "let f rng = Rng.bool rng");
  check_ids "Rng draw in the checker fires" [ "C001" ]
    (lint ~path:"lib/check/explore.ml" "let f rng = Rng.int rng 2");
  check_ids "Decision nodes are the idiom" []
    (lint ~path:"lib/chaos/space.ml"
       "let f () = Decision.choose ~label:\"salt\" ~arity:2 (fun i -> Decision.return i)");
  check_ids "Decision.sample is the sanctioned bridge" []
    (lint ~path:"lib/sim/decision.ml" "let sample rng t = Rng.int rng 3");
  check_ids "the sampled schedule generator stays legal" []
    (lint ~path:"lib/chaos/schedule.ml" "let gen rng = Rng.int rng 6")

let test_c001_waiver () =
  check_ids "waiver comment above suppresses" []
    (lint ~path:"lib/sim/adversary.ml"
       "(* LINT: waive C001 tie-break seeded from the schedule, replay-stable *)\n\
        let f rng = Rng.int rng 3");
  check_ids "waiver for another rule does not" [ "C001" ]
    (lint ~path:"lib/sim/adversary.ml"
       "(* LINT: waive D001 wrong id *)\n\
        let f rng = Rng.int rng 3")

(* ---------- R001: exception-swallowing handlers ---------- *)

let test_r001 () =
  check_ids "bare catch-all fires" [ "R001" ]
    (lint ~path:"lib/core/x.ml" "let f g = try g () with _ -> 0");
  check_ids "named binder discarded to unit fires" [ "R001" ]
    (lint ~path:"lib/core/x.ml" "let f g = try g () with e -> ()");
  check_ids "catch-all through an or-pattern fires" [ "R001" ]
    (lint ~path:"lib/core/x.ml" "let f g = try g () with Not_found | _ -> 0");
  check_ids "exception case in a match fires" [ "R001" ]
    (lint ~path:"lib/core/x.ml"
       "let f g = match g () with x -> x | exception _ -> 0");
  check_ids "typed handler is the idiom" []
    (lint ~path:"lib/core/x.ml" "let f g = try g () with Not_found -> 0");
  check_ids "binding and using the exception is fine" []
    (lint ~path:"lib/exec/x.ml" "let f g = try Ok (g ()) with e -> Error e");
  check_ids "typed exception case is fine" []
    (lint ~path:"lib/core/x.ml"
       "let f g = match g () with x -> x | exception Not_found -> 0");
  check_ids "the supervisor is the sanctioned home" []
    (lint ~path:"lib/exec/supervisor.ml" "let f g = try g () with _ -> 0")

let test_r001_waiver () =
  check_ids "waiver suppresses the guard idiom" []
    (lint ~path:"lib/exec/x.ml"
       "(* LINT: waive R001 keeps worker domains alive *)\n\
        let guarded cb i = try cb i with _ -> ()")

(* ---------- X001: parse failures surface as findings ---------- *)

let test_x001 () =
  check_ids "unparsable source is itself a finding" [ "X001" ]
    (lint ~path:"lib/core/x.ml" "let let let")

(* ---------- baseline round-trip and diff ---------- *)

let test_baseline_roundtrip () =
  let fs =
    [
      Finding.v ~rule_id:"D001" ~file:"lib/core/x.ml" ~line:3 ~col:4 "m";
      Finding.v ~rule_id:"L002" ~file:"lib/core/y.ml" ~line:1 ~col:0 "m";
    ]
  in
  let entries = Baseline.of_json (Baseline.to_json (List.map Baseline.entry_of_finding fs)) in
  Alcotest.(check int) "round-trips both entries" 2 (List.length entries);
  let diff = Baseline.diff ~baseline:entries fs in
  Alcotest.(check int) "all grandfathered" 2 diff.Baseline.grandfathered;
  Alcotest.(check int) "nothing fresh" 0 (List.length diff.Baseline.fresh);
  (* A new finding at another site is fresh; a retired one is stale. *)
  let fs' =
    [
      List.hd fs;
      Finding.v ~rule_id:"D003" ~file:"lib/core/z.ml" ~line:9 ~col:2 "m";
    ]
  in
  let diff' = Baseline.diff ~baseline:entries fs' in
  Alcotest.(check int) "one fresh" 1 (List.length diff'.Baseline.fresh);
  Alcotest.(check string) "fresh is the new rule" "D003"
    (List.hd diff'.Baseline.fresh).Finding.rule_id;
  Alcotest.(check int) "one stale" 1 (List.length diff'.Baseline.stale)

(* ---------- the repo gate itself ---------- *)

(* The acceptance property of the whole PR: linting the checked-out
   tree reports nothing outside the committed baseline. Run from the
   dune sandbox the sources are not all present, so this only runs when
   the tree is visible (developer checkout / lint alias). *)
let test_repo_is_clean () =
  let root = ".." in
  if
    Sys.file_exists (Filename.concat root "lib")
    && Sys.file_exists (Filename.concat root "lint-baseline.json")
  then begin
    let findings = Engine.lint_tree ~root in
    let baseline = Baseline.load (Filename.concat root "lint-baseline.json") in
    let diff = Baseline.diff ~baseline findings in
    Alcotest.(check (list string)) "no findings outside the baseline" []
      (List.map (Format.asprintf "%a" Finding.pp) diff.Baseline.fresh)
  end

let suite =
  [
    Alcotest.test_case "D001 rng" `Quick test_d001;
    Alcotest.test_case "D001 location" `Quick test_d001_location;
    Alcotest.test_case "D002 clock" `Quick test_d002;
    Alcotest.test_case "D002 gc counters" `Quick test_d002_gc;
    Alcotest.test_case "D003 hashtbl order" `Quick test_d003;
    Alcotest.test_case "D003 waiver" `Quick test_d003_waiver;
    Alcotest.test_case "D004 poly compare" `Quick test_d004;
    Alcotest.test_case "D005 marshal" `Quick test_d005;
    Alcotest.test_case "P001 cell purity" `Quick test_p001;
    Alcotest.test_case "S001 global state" `Quick test_s001;
    Alcotest.test_case "S001 waiver" `Quick test_s001_waiver;
    Alcotest.test_case "L001 layering" `Quick test_l001;
    Alcotest.test_case "L002 interfaces" `Quick test_l002;
    Alcotest.test_case "C001 adversary decisions" `Quick test_c001;
    Alcotest.test_case "C001 waiver" `Quick test_c001_waiver;
    Alcotest.test_case "R001 exception swallowing" `Quick test_r001;
    Alcotest.test_case "R001 waiver" `Quick test_r001_waiver;
    Alcotest.test_case "X001 parse failure" `Quick test_x001;
    Alcotest.test_case "baseline round-trip" `Quick test_baseline_roundtrip;
    Alcotest.test_case "repo lints clean" `Quick test_repo_is_clean;
  ]
