module Table = Bap_stats.Table
module Summary = Bap_stats.Summary

let test_table_alignment () =
  let rendered =
    Table.render ~headers:[ "a"; "bee" ] [ [ "xx"; "y" ]; [ "1"; "22222" ] ]
  in
  let lines = String.split_on_char '\n' rendered in
  Alcotest.(check int) "4 lines" 4 (List.length lines);
  (* Every line has the same width. *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_pads_short_rows () =
  let rendered = Table.render ~headers:[ "a"; "b"; "c" ] [ [ "only" ] ] in
  Alcotest.(check bool) "renders" true (String.length rendered > 0)

let test_summary () =
  let s = Summary.of_ints [ 1; 2; 3; 4 ] in
  Alcotest.(check int) "count" 4 s.Summary.count;
  Alcotest.(check int) "min" 1 s.Summary.min;
  Alcotest.(check int) "max" 4 s.Summary.max;
  Alcotest.(check int) "total" 10 s.Summary.total;
  Alcotest.(check (float 0.001)) "mean" 2.5 s.Summary.mean

let test_summary_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Summary.of_ints: empty") (fun () ->
      ignore (Summary.of_ints []))

let test_mean_string () =
  Alcotest.(check string) "one decimal" "2.5" (Summary.mean_string [ 1; 2; 3; 4 ])

let test_summary_merge () =
  (* Merging per-job partial aggregates must equal aggregating the
     concatenated samples, whatever the split. *)
  let xs = [ 5; 1; 9; 2 ] and ys = [ 7; 3 ] in
  let merged = Summary.merge (Summary.of_ints xs) (Summary.of_ints ys) in
  let whole = Summary.of_ints (xs @ ys) in
  Alcotest.(check int) "count" whole.Summary.count merged.Summary.count;
  Alcotest.(check int) "min" whole.Summary.min merged.Summary.min;
  Alcotest.(check int) "max" whole.Summary.max merged.Summary.max;
  Alcotest.(check int) "total" whole.Summary.total merged.Summary.total;
  Alcotest.(check (float 1e-9)) "mean" whole.Summary.mean merged.Summary.mean;
  let parts = List.map (fun x -> Summary.of_ints [ x ]) (xs @ ys) in
  let folded = Summary.merge_all parts in
  Alcotest.(check (float 1e-9)) "merge_all mean" whole.Summary.mean folded.Summary.mean;
  Alcotest.(check int) "merge_all total" whole.Summary.total folded.Summary.total;
  Alcotest.check_raises "merge_all empty"
    (Invalid_argument "Summary.merge_all: empty") (fun () ->
      ignore (Summary.merge_all []))

let test_value_modules () =
  let module VI = Bap_core.Value.Int in
  let module VB = Bap_core.Value.Bool in
  let module VS = Bap_core.Value.String in
  Alcotest.(check bool) "int equal" true (VI.equal 3 3);
  Alcotest.(check bool) "int encode injective" false (VI.encode 1 = VI.encode 11);
  Alcotest.(check bool) "bool encode" true (VB.encode true <> VB.encode false);
  Alcotest.(check int) "string compare" 0 (VS.compare "x" "x")

let suite =
  [
    Alcotest.test_case "table alignment" `Quick test_table_alignment;
    Alcotest.test_case "table pads short rows" `Quick test_table_pads_short_rows;
    Alcotest.test_case "summary" `Quick test_summary;
    Alcotest.test_case "summary rejects empty" `Quick test_summary_empty;
    Alcotest.test_case "mean string" `Quick test_mean_string;
    Alcotest.test_case "summary merge" `Quick test_summary_merge;
    Alcotest.test_case "value domains" `Quick test_value_modules;
  ]
