(* The bounded trace recorder. *)

module Trace = Bap_sim.Trace

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let ev i = Trace.Decide { who = i; round = i }

let test_records_in_order () =
  let t = Trace.create () in
  Trace.record t (ev 1);
  Trace.record t (Trace.Round_begin 2);
  Trace.record t (ev 3);
  match Trace.events t with
  | [ Trace.Decide { who = 1; _ }; Trace.Round_begin 2; Trace.Decide { who = 3; _ } ] -> ()
  | _ -> Alcotest.fail "order lost"

let test_limit_drops_and_counts () =
  let t = Trace.create ~limit:2 () in
  for i = 1 to 5 do
    Trace.record t (ev i)
  done;
  Alcotest.(check int) "kept limit" 2 (List.length (Trace.events t));
  Alcotest.(check int) "dropped counted" 3 (Trace.dropped t)

let test_pp_renders () =
  let t = Trace.create () in
  Trace.record t (Trace.Round_begin 1);
  Trace.record t (Trace.Deliver { src = 0; dst = 1; msg = "hello"; byzantine = true });
  Trace.record t (ev 2);
  let rendered = Fmt.str "%a" (Trace.pp Fmt.string) t in
  Alcotest.(check bool) "round header" true (contains rendered "round 1");
  Alcotest.(check bool) "byz marker" true (contains rendered "[byz]");
  Alcotest.(check bool) "decide line" true (contains rendered "process 2")

let test_pp_reports_drops () =
  let t = Trace.create ~limit:1 () in
  Trace.record t (ev 1);
  Trace.record t (ev 2);
  let rendered = Fmt.str "%a" (Trace.pp Fmt.string) t in
  Alcotest.(check bool) "drop note" true (contains rendered "1 events dropped")

(* A trace that dropped *everything* must still render the drop note —
   this used to come out as an empty string because the note rode on the
   last kept event. *)
let test_pp_drops_only () =
  let t = Trace.create ~limit:0 () in
  Trace.record t (ev 1);
  Trace.record t (ev 2);
  let rendered = Fmt.str "%a" (Trace.pp Fmt.string) t in
  Alcotest.(check bool) "drop note without events" true
    (contains rendered "2 events dropped")

let test_pp_round_end () =
  let t = Trace.create () in
  Trace.record t (Trace.Round_begin 3);
  Trace.record t (ev 1);
  Trace.record t (Trace.Round_end 3);
  let rendered = Fmt.str "%a" (Trace.pp Fmt.string) t in
  Alcotest.(check bool) "round end marker" true (contains rendered "round 3 ends")

let suite =
  [
    Alcotest.test_case "records in order" `Quick test_records_in_order;
    Alcotest.test_case "limit drops and counts" `Quick test_limit_drops_and_counts;
    Alcotest.test_case "pretty printer" `Quick test_pp_renders;
    Alcotest.test_case "pretty printer reports drops" `Quick test_pp_reports_drops;
    Alcotest.test_case "pretty printer drops-only trace" `Quick test_pp_drops_only;
    Alcotest.test_case "pretty printer round end" `Quick test_pp_round_end;
  ]
