(* QCheck round-trips for the flat bitset against the obvious bool-array
   model: every operation the scalable core relies on (set/get,
   popcount, ascending iteration order, intersection, union, reset)
   must agree with the model on random contents. *)

module Bitset = Bap_sim.Bitset

let qcheck = Helpers.qcheck

(* (length, member list) with members possibly repeated. *)
let contents_gen =
  QCheck2.Gen.(
    let* n = int_range 0 200 in
    let* members = list_size (int_range 0 50) (int_range 0 (max 0 (n - 1))) in
    return (n, if n = 0 then [] else members))

let model ~n members =
  let a = Array.make n false in
  List.iter (fun j -> a.(j) <- true) members;
  a

let model_list m =
  let acc = ref [] in
  Array.iteri (fun j b -> if b then acc := j :: !acc) m;
  List.rev !acc

let prop_of_list_to_list =
  qcheck ~count:200 ~name:"of_list/to_list = sorted dedup" contents_gen
    (fun (n, members) ->
      let m = model ~n members in
      Bitset.to_list (Bitset.of_list n members) = model_list m)

let prop_get_matches_model =
  qcheck ~count:200 ~name:"get agrees with bool-array model" contents_gen
    (fun (n, members) ->
      let m = model ~n members in
      let b = Bitset.of_list n members in
      Array.for_all (fun j -> j) (Array.init n (fun j -> Bitset.get b j = m.(j))))

let prop_cardinal =
  qcheck ~count:200 ~name:"cardinal = popcount of model" contents_gen
    (fun (n, members) ->
      let m = model ~n members in
      Bitset.cardinal (Bitset.of_list n members)
      = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 m)

let prop_fold_ascending =
  qcheck ~count:200 ~name:"fold and iter visit ascending" contents_gen
    (fun (n, members) ->
      let b = Bitset.of_list n members in
      let folded = List.rev (Bitset.fold b ~init:[] ~f:(fun acc j -> j :: acc)) in
      let itered =
        let acc = ref [] in
        Bitset.iter b ~f:(fun j -> acc := j :: !acc);
        List.rev !acc
      in
      folded = Bitset.to_list b && itered = Bitset.to_list b)

let prop_set_clear_assign =
  qcheck ~count:200 ~name:"set/clear/assign track the model"
    QCheck2.Gen.(
      let* n = int_range 1 150 in
      let* ops = list_size (int_range 0 60) (pair (int_range 0 (n - 1)) bool) in
      return (n, ops))
    (fun (n, ops) ->
      let b = Bitset.create n in
      let m = Array.make n false in
      List.iter
        (fun (j, bit) ->
          m.(j) <- bit;
          if bit then Bitset.set b j else Bitset.clear b j)
        ops;
      let b2 = Bitset.create n in
      List.iter
        (fun (j, bit) ->
          Bitset.assign b2 j bit)
        ops;
      Bitset.to_list b = model_list m && Bitset.equal b b2)

let prop_inter_union =
  qcheck ~count:200 ~name:"inter/union_into match set algebra"
    QCheck2.Gen.(
      let* n = int_range 1 150 in
      let* xs = list_size (int_range 0 40) (int_range 0 (n - 1)) in
      let* ys = list_size (int_range 0 40) (int_range 0 (n - 1)) in
      return (n, xs, ys))
    (fun (n, xs, ys) ->
      let bx = Bitset.of_list n xs and by = Bitset.of_list n ys in
      let inter_ok =
        Bitset.to_list (Bitset.inter bx by)
        = List.filter (fun j -> List.mem j ys) (Bitset.to_list bx)
      in
      let u = Bitset.copy bx in
      Bitset.union_into ~into:u by;
      let union_ok =
        Bitset.to_list u = List.sort_uniq Int.compare (Bitset.to_list bx @ Bitset.to_list by)
      in
      inter_ok && union_ok)

let prop_copy_independent =
  qcheck ~count:100 ~name:"copy is independent; reset empties" contents_gen
    (fun (n, members) ->
      let b = Bitset.of_list n members in
      let c = Bitset.copy b in
      Bitset.reset c;
      Bitset.is_empty c
      && Bitset.cardinal c = 0
      && Bitset.to_list b = Bitset.to_list (Bitset.of_list n members))

let test_bounds () =
  let b = Bitset.of_list 10 [ 3; 7 ] in
  Alcotest.(check bool) "mem in range" true (Bitset.mem b 3);
  Alcotest.(check bool) "mem out of range is false" false (Bitset.mem b 10);
  Alcotest.(check bool) "mem negative is false" false (Bitset.mem b (-1));
  Alcotest.check_raises "get out of range"
    (Invalid_argument "Bitset.get: index 10 out of [0, 10)") (fun () ->
      ignore (Bitset.get b 10));
  Alcotest.check_raises "negative length"
    (Invalid_argument "Bitset.create: negative length") (fun () ->
      ignore (Bitset.create (-1)))

let test_word_boundaries () =
  (* Exercise lengths around the word size explicitly. *)
  List.iter
    (fun n ->
      let everything = List.init n Fun.id in
      let b = Bitset.of_list n everything in
      Alcotest.(check int) (Printf.sprintf "full cardinal n=%d" n) n (Bitset.cardinal b);
      Alcotest.(check bool)
        (Printf.sprintf "full to_list n=%d" n)
        true
        (Bitset.to_list b = everything))
    [ 0; 1; Bitset.bits_per_word - 1; Bitset.bits_per_word; Bitset.bits_per_word + 1; 130 ]

let suite =
  [
    prop_of_list_to_list;
    prop_get_matches_model;
    prop_cardinal;
    prop_fold_ascending;
    prop_set_clear_assign;
    prop_inter_union;
    prop_copy_independent;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "word-boundary lengths" `Quick test_word_boundaries;
  ]
