(* The agreement service (lib/serve): frame codec round-trips and
   hostile-input tolerance, typed admission, dispatch determinism
   across --jobs, the end-to-end loop with its byte-identity oracle,
   and graceful drain. *)

module Frame = Bap_servelib.Frame
module Instance = Bap_servelib.Instance
module Admission = Bap_servelib.Admission
module Dispatch = Bap_servelib.Dispatch
module Server = Bap_servelib.Server
module Load = Bap_servelib.Load
module Journal = Bap_servelib.Journal
module Health = Bap_servelib.Health
module Pool = Bap_exec.Pool
module Supervisor = Bap_exec.Supervisor
module Harness = Bap_chaos.Harness

(* ---------- codec: property tests ---------- *)

let payload_gen = QCheck.string_of_size (QCheck.Gen.int_range 0 2048)

let qcheck_roundtrip =
  QCheck.Test.make ~count:200 ~name:"frame: encode/decode_all round-trip"
    (QCheck.list_of_size (QCheck.Gen.int_range 0 20) payload_gen)
    (fun payloads ->
      let wire = String.concat "" (List.map Frame.encode payloads) in
      let decoded, tail = Frame.decode_all wire in
      decoded = payloads && tail = Frame.Clean)

(* Cutting the stream anywhere must yield a clean prefix of frames plus
   a typed torn tail — and feeding the remainder to the same decoder
   must recover every remaining frame. The exact shape a mid-write
   disconnect leaves behind. *)
let qcheck_torn_resume =
  QCheck.Test.make ~count:200 ~name:"frame: torn at any split, resumes"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 10) (string_of_size (Gen.int_range 0 256)))
        (float_bound_inclusive 1.))
    (fun (payloads, frac) ->
      let wire = String.concat "" (List.map Frame.encode payloads) in
      let cut = int_of_float (frac *. float_of_int (String.length wire)) in
      let cut = max 0 (min (String.length wire) cut) in
      let dec = Frame.decoder () in
      let collect () =
        let rec go acc =
          match Frame.next dec with
          | Frame.Frame p -> go (p :: acc)
          | Frame.Await | Frame.Oversized _ -> List.rev acc
        in
        go []
      in
      Frame.feed_string dec (String.sub wire 0 cut);
      let before = collect () in
      let buffered_at_cut = Frame.buffered dec in
      Frame.feed_string dec (String.sub wire cut (String.length wire - cut));
      let after = collect () in
      (* Decoded frames form a prefix at the cut and the remainder
         recovers everything; the one-shot decoder agrees on the torn
         prefix, typing the ragged tail instead of raising. *)
      let oneshot, tail = Frame.decode_all (String.sub wire 0 cut) in
      before @ after = payloads
      && oneshot = before
      && (match tail with
         | Frame.Clean -> buffered_at_cut = 0
         | Frame.Torn n -> n = buffered_at_cut && n > 0
         | Frame.Oversized_tail _ -> false))

let test_oversized_poisons () =
  let dec = Frame.decoder ~max_len:64 () in
  Frame.feed_string dec (Frame.encode (String.make 65 'x'));
  (match Frame.next dec with
  | Frame.Oversized n -> Alcotest.(check int) "reported length" 65 n
  | _ -> Alcotest.fail "oversized prefix not detected");
  Alcotest.(check bool) "decoder poisoned" true (Frame.poisoned dec);
  (* Bytes after the poison are discarded, not misparsed: the length
     prefix can no longer be trusted to mark a boundary. *)
  Frame.feed_string dec (Frame.encode "ok");
  (match Frame.next dec with
  | Frame.Oversized _ -> ()
  | Frame.Frame _ -> Alcotest.fail "poisoned decoder resynchronised"
  | Frame.Await -> Alcotest.fail "poisoned decoder went quiet");
  match Frame.decode_all ~max_len:64 (Frame.encode (String.make 65 'x')) with
  | [], Frame.Oversized_tail 65 -> ()
  | _ -> Alcotest.fail "decode_all disagrees on oversized tail"

let test_garbage_payload_is_one_rejection () =
  (* The codec is payload-agnostic: garbage bytes in a well-formed
     frame arrive intact, and parsing turns them into exactly one
     malformed rejection with the placeholder id. *)
  let garbage = "\x00\xff{not json\x01" in
  let frames, tail = Frame.decode_all (Frame.encode garbage) in
  Alcotest.(check int) "delivered" 1 (List.length frames);
  Alcotest.(check bool) "clean tail" true (tail = Frame.Clean);
  match Instance.parse (List.hd frames) with
  | Error (`Malformed _) -> ()
  | Error (`Invalid _) -> Alcotest.fail "garbage misread as a valid shape"
  | Ok _ -> Alcotest.fail "garbage parsed as a spec"

let test_header_garbage_is_oversized () =
  (* High random bytes where a length prefix belongs decode as an
     enormous length: the typed Oversized path, not an allocation. *)
  match Frame.decode_all ("\xde\xad\xbe\xef" ^ String.make 40 'z') with
  | [], Frame.Oversized_tail _ -> ()
  | _ -> Alcotest.fail "garbage header should poison the stream"

(* ---------- request parsing ---------- *)

let test_request_roundtrip () =
  List.iter
    (fun family ->
      let spec =
        { Instance.id = 9; family; n = 10; f = 2; m = 1; seed = 123 }
      in
      match Instance.parse (Instance.request_json spec) with
      | Ok s -> Alcotest.(check bool) "spec round-trips" true (s = spec)
      | Error _ -> Alcotest.fail "canonical request failed to parse")
    [ Instance.Unauth; Instance.Auth; Instance.Es; Instance.Pk ]

let test_invalid_envelope () =
  let base = { Instance.id = 1; family = Instance.Pk; n = 10; f = 2; m = 0; seed = 0 } in
  let invalids =
    [
      { base with Instance.n = 3 } (* below minimum *);
      { base with Instance.n = Instance.max_n + 1 };
      { base with Instance.f = 99 } (* above threshold *);
      { base with Instance.id = -2 };
      { base with Instance.m = 11 } (* more misclassified than processes *);
    ]
  in
  List.iter
    (fun s ->
      match Instance.parse (Instance.request_json s) with
      | Error (`Invalid (id, _)) ->
        Alcotest.(check int) "rejection carries client id" s.Instance.id id
      | Ok _ -> Alcotest.fail "out-of-envelope spec accepted"
      | Error (`Malformed _) -> Alcotest.fail "invalid misreported as malformed")
    invalids

(* ---------- admission ---------- *)

let spec_i i = { Instance.id = i; family = Instance.Pk; n = 4; f = 0; m = 0; seed = i }

let test_admission_sheds_overload () =
  let a = Admission.create ~capacity:3 in
  let offers = List.init 5 (fun i -> Admission.offer a ~now_us:0. (spec_i i)) in
  let enq = List.filter (fun d -> d = Admission.Enqueued) offers in
  let shed =
    List.filter (function Admission.Shed Instance.Overload -> true | _ -> false) offers
  in
  Alcotest.(check int) "capacity admitted" 3 (List.length enq);
  Alcotest.(check int) "excess shed as Overload" 2 (List.length shed);
  Alcotest.(check int) "depth bounded" 3 (Admission.depth a);
  (* FIFO: the batch comes back in arrival order. *)
  let batch = Admission.take_batch a ~max:10 in
  Alcotest.(check (list int)) "FIFO order" [ 0; 1; 2 ]
    (List.map (fun (e : Admission.entry) -> e.Admission.spec.Instance.id) batch);
  (* Shedding freed nothing permanently: capacity is available again. *)
  Alcotest.(check bool) "post-batch offer admitted" true
    (Admission.offer a ~now_us:0. (spec_i 9) = Admission.Enqueued)

let test_admission_draining_gate () =
  let a = Admission.create ~capacity:8 in
  ignore (Admission.offer a ~now_us:0. (spec_i 0));
  Admission.start_drain a;
  (match Admission.offer a ~now_us:0. (spec_i 1) with
  | Admission.Shed Instance.Draining -> ()
  | _ -> Alcotest.fail "offer after drain not shed as Draining");
  (* The accepted backlog survives the gate flip. *)
  Alcotest.(check int) "backlog intact" 1 (Admission.depth a);
  Alcotest.(check int) "accepted_total counts only admissions" 1
    (Admission.accepted_total a)

(* ---------- dispatch determinism ---------- *)

let dispatch_specs =
  List.init 12 (fun i ->
      let fam = [ Instance.Pk; Instance.Es; Instance.Unauth ] in
      {
        Instance.id = i;
        family = List.nth fam (i mod 3);
        n = 4;
        f = i mod 2;
        m = 0;
        seed = 100 + i;
      })

let run_dispatch ~jobs ~inject =
  let scfg = { Supervisor.retries = 2; timeout_s = Some 5.; seed = 0; inject } in
  Supervisor.with_supervisor scfg (fun sup ->
      Pool.with_pool ~jobs (fun pool ->
          let d = Dispatch.create ~pool ~supervisor:sup in
          let entries =
            List.map (fun s -> { Admission.spec = s; arrival_us = 0. }) dispatch_specs
          in
          List.map
            (fun (_, r) -> Instance.response_to_json r)
            (Dispatch.run d entries)))

let test_dispatch_jobs_invariant () =
  let a = run_dispatch ~jobs:1 ~inject:None in
  let b = run_dispatch ~jobs:4 ~inject:None in
  Alcotest.(check (list string)) "responses byte-identical across jobs" a b

let test_dispatch_degrades_doomed () =
  (* An instance that faults on every attempt must come back Degraded
     in its own slot — and leave every other response untouched. *)
  let doomed_key = Instance.key (List.nth dispatch_specs 5) in
  let inject ~key ~attempt:_ =
    if key = doomed_key then Some Supervisor.Inject_crash else None
  in
  let clean = run_dispatch ~jobs:2 ~inject:None in
  let faulted = run_dispatch ~jobs:2 ~inject:(Some inject) in
  let module Json = Bap_telemetry.Json in
  List.iteri
    (fun i (c, f) ->
      if i = 5 then begin
        let j = Json.parse f in
        Alcotest.(check (option string))
          "doomed instance degraded" (Some "degraded")
          (Json.to_string (Json.member "status" j));
        Alcotest.(check (option int))
          "degraded response keeps the client id" (Some 5)
          (Json.to_int (Json.member "id" j))
      end
      else Alcotest.(check string) "other slots untouched" c f)
    (List.combine clean faulted)

(* ---------- end-to-end over pipes ---------- *)

let quiet_config ~jobs =
  {
    Server.default_config with
    Server.jobs;
    queue_capacity = 512;
    batch = 32;
    timeout_s = Some 5.;
  }

let test_end_to_end_clean () =
  let o =
    Load.run_inproc ~config:(quiet_config ~jobs:2) ~instances:120
      ~families:[ Instance.Pk; Instance.Es ] ~n:4 ()
  in
  (match Load.failures o with
  | [] -> ()
  | fs -> Alcotest.fail (String.concat "; " fs));
  Alcotest.(check int) "all answered ok" 120 o.Load.ok

let test_end_to_end_chaos () =
  (* Corrupt frames on the wire plus crash/hang injection server-side:
     the loop must survive, answer everything it accepted, and keep
     clean responses byte-identical to the serial batch. *)
  let chaos =
    Harness.create ~seed:5 ~crash_pct:10 ~hang_pct:2 ~doomed_pct:4
      ~frame_corrupt_pct:10 ()
  in
  let inject ~key ~attempt =
    match Harness.decide chaos ~key ~attempt with
    | Some Harness.Crash -> Some Supervisor.Inject_crash
    | Some Harness.Hang -> Some Supervisor.Inject_hang
    | None -> None
  in
  let config =
    {
      (quiet_config ~jobs:2) with
      Server.inject = Some inject;
      timeout_s = Some 0.25;
    }
  in
  let o =
    Load.run_inproc ~chaos ~config ~instances:150
      ~families:[ Instance.Pk; Instance.Es ] ~n:4 ()
  in
  (match Load.failures ~chaos:true o with
  | [] -> ()
  | fs -> Alcotest.fail (String.concat "; " fs));
  Alcotest.(check bool) "some frames were corrupted" true (o.Load.corrupted > 0);
  Alcotest.(check bool) "server survived to report" true
    (Option.is_some o.Load.server);
  match o.Load.server with
  | Some s ->
    Alcotest.(check int) "every accepted instance answered"
      s.Server.accepted s.Server.responded
  | None -> ()

let test_drain_answers_backlog () =
  (* A drain request mid-stream: the server stops admitting, finishes
     what it accepted, and returns the requested exit code — while the
     client half of the pipe is still open. *)
  let c2s_r, c2s_w = Unix.pipe () in
  let s2c_r, s2c_w = Unix.pipe () in
  let server =
    Domain.spawn (fun () ->
        Server.serve_fds (quiet_config ~jobs:1) ~in_fd:c2s_r ~out_fd:s2c_w)
  in
  let specs = List.init 5 spec_i in
  List.iter
    (fun s ->
      let wire = Frame.encode (Instance.request_json s) in
      let b = Bytes.of_string wire in
      ignore (Unix.write c2s_w b 0 (Bytes.length b)))
    specs;
  (* Read all five responses back: proof the backlog was answered. *)
  let dec = Frame.decoder () in
  let buf = Bytes.create 4096 in
  let got = ref [] in
  while List.length !got < 5 do
    (match Unix.read s2c_r buf 0 (Bytes.length buf) with
    | 0 -> Alcotest.fail "server closed before answering backlog"
    | k -> Frame.feed dec buf ~pos:0 ~len:k);
    let rec drain () =
      match Frame.next dec with
      | Frame.Frame p ->
        got := p :: !got;
        drain ()
      | Frame.Await | Frame.Oversized _ -> ()
    in
    drain ()
  done;
  Server.request_drain ~code:143;
  let stats = Domain.join server in
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ c2s_r; c2s_w; s2c_r; s2c_w ];
  Alcotest.(check int) "exit code from drain request" 143 stats.Server.exit_code;
  Alcotest.(check int) "nothing dropped" 0 stats.Server.dropped_disconnect;
  Alcotest.(check int) "all answered" 5 stats.Server.responded;
  (* Responses are correct, not merely present. *)
  List.iter
    (fun p ->
      match Instance.response_id p with
      | Some id when id >= 0 && id < 5 -> ()
      | _ -> Alcotest.fail "response for unknown id")
    !got

(* ---------- frame decoder state isolation ---------- *)

let test_decoder_state_isolation () =
  (* Two connections, two decoders: an oversized prefix poisoning one
     must not perturb the other's torn-tail resume — decoder state is
     per-connection, never shared. *)
  let a = Frame.decoder ~max_len:64 () in
  let b = Frame.decoder ~max_len:64 () in
  let wire = Frame.encode "payload-one" ^ Frame.encode "payload-two" in
  let cut = String.length wire - 3 in
  Frame.feed_string b (String.sub wire 0 cut);
  (match Frame.next b with
  | Frame.Frame p -> Alcotest.(check string) "b decodes its first frame" "payload-one" p
  | _ -> Alcotest.fail "b lost its first frame");
  (* Poison a while b is holding a torn tail. *)
  Frame.feed_string a (Frame.encode (String.make 65 'x'));
  (match Frame.next a with
  | Frame.Oversized _ -> ()
  | _ -> Alcotest.fail "a not poisoned by the oversized prefix");
  Alcotest.(check bool) "a poisoned" true (Frame.poisoned a);
  Alcotest.(check bool) "b unaffected" false (Frame.poisoned b);
  (* b resumes its torn frame as if a did not exist. *)
  Frame.feed_string b (String.sub wire cut 3);
  (match Frame.next b with
  | Frame.Frame p -> Alcotest.(check string) "b resumes the torn frame" "payload-two" p
  | _ -> Alcotest.fail "b failed to resume after a was poisoned");
  (match Frame.next b with
  | Frame.Await -> ()
  | _ -> Alcotest.fail "b has trailing junk");
  (* And a stays dead: poison does not leak out, or heal, across
     another decoder's traffic. *)
  Frame.feed_string a (Frame.encode "ok");
  match Frame.next a with
  | Frame.Oversized _ -> ()
  | _ -> Alcotest.fail "a resynchronised across b's traffic"

(* ---------- health quantile edges ---------- *)

let test_health_quantile_edges () =
  (* Zero samples: quantiles are 0, never a scan off the end. *)
  let h0 = Health.create () in
  Alcotest.(check int) "empty count" 0 (Health.count h0);
  Alcotest.(check int) "empty quantile" 0 (Health.quantile h0 0.5);
  let s0 = Health.summarize h0 ~wall_s:1.0 in
  Alcotest.(check int) "empty p99" 0 s0.Health.p99_us;
  Alcotest.(check int) "empty max" 0 s0.Health.max_us;
  (* One sample: every quantile is that sample (the bucket bound is
     capped at the observed max), including clamped out-of-range q. *)
  let h1 = Health.create () in
  Health.record_latency h1 ~us:100.;
  List.iter
    (fun q ->
      Alcotest.(check int) "single-sample quantile" 100 (Health.quantile h1 q))
    [ -1.; 0.; 0.5; 0.99; 1.; 2. ];
  (* All-equal: p50 = p99 = max exactly, not merely within a bucket. *)
  let h2 = Health.create () in
  for _ = 1 to 1000 do
    Health.record_latency h2 ~us:250.
  done;
  let s2 = Health.summarize h2 ~wall_s:2.0 in
  Alcotest.(check int) "all-equal p50" 250 s2.Health.p50_us;
  Alcotest.(check int) "all-equal p99" 250 s2.Health.p99_us;
  Alcotest.(check int) "all-equal max" 250 s2.Health.max_us;
  Alcotest.(check (float 0.001)) "per_sec" 500. s2.Health.per_sec

(* ---------- the instance journal ---------- *)

let with_temp_path prefix f =
  let path = Filename.temp_file prefix ".tmp" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_journal_exactly_once () =
  with_temp_path "bap_journal" (fun path ->
      let j = Journal.open_ ~path () in
      Alcotest.(check bool) "fresh journal active" true (Journal.active j);
      let s0 = spec_i 0 and s1 = spec_i 1 in
      (match Journal.accept j s0 with
      | `Logged -> ()
      | _ -> Alcotest.fail "first accept not `Logged");
      (match Journal.accept j s0 with
      | `Duplicate -> ()
      | _ -> Alcotest.fail "re-accept of a pending key not `Duplicate");
      (match Journal.accept j s1 with
      | `Logged -> ()
      | _ -> Alcotest.fail "distinct key not `Logged");
      Journal.respond j ~key:(Instance.key s0) "answer-bytes-0";
      (* First answer wins: a second respond must not change the bytes. *)
      Journal.respond j ~key:(Instance.key s0) "other-bytes";
      (match Journal.accept j s0 with
      | `Replay b ->
        Alcotest.(check string) "replay is the first journaled answer"
          "answer-bytes-0" b
      | _ -> Alcotest.fail "re-accept of an answered key not `Replay");
      Alcotest.(check int) "accepted" 2 (Journal.accepted j);
      Alcotest.(check int) "answered" 1 (Journal.answered j);
      Journal.close j;
      (* The next incarnation: answered keys replay the same bytes,
         pending keys surface as recovered, counts are the union. *)
      let j2 = Journal.open_ ~resume:true ~path () in
      Alcotest.(check int) "accepted survives reopen" 2 (Journal.accepted j2);
      Alcotest.(check int) "answered survives reopen" 1 (Journal.answered j2);
      (match Journal.recovered j2 with
      | [ (k, s) ] ->
        Alcotest.(check string) "recovered the pending key" (Instance.key s1) k;
        Alcotest.(check bool) "recovered spec round-trips" true (s = s1)
      | l ->
        Alcotest.fail
          (Printf.sprintf "recovered %d pending, want exactly 1" (List.length l)));
      (match Journal.accept j2 s0 with
      | `Replay b ->
        Alcotest.(check string) "replay across incarnations" "answer-bytes-0" b
      | _ -> Alcotest.fail "answered key lost across reopen");
      Journal.respond j2 ~key:(Instance.key s1) "answer-bytes-1";
      Alcotest.(check int) "recovery answered" 2 (Journal.answered j2);
      Journal.close j2)

let test_journal_degrades_loud () =
  (* An unwritable journal path (here: a directory) must degrade to
     "no durability" without failing the server — while the in-memory
     exactly-once table keeps working. The WAL side of the degradation
     is loud (stderr + wal.degraded telemetry); what we can assert
     in-process is that [active] reports the truth. *)
  let dir = Filename.temp_file "bap_wal" ".dir" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () -> try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () ->
      let j = Journal.open_ ~path:dir () in
      Alcotest.(check bool) "unwritable path degrades" false (Journal.active j);
      (match Journal.accept j (spec_i 3) with
      | `Logged -> ()
      | _ -> Alcotest.fail "accept on a degraded journal");
      Journal.respond j ~key:(Instance.key (spec_i 3)) "bytes";
      (match Journal.accept j (spec_i 3) with
      | `Replay b -> Alcotest.(check string) "in-memory replay" "bytes" b
      | _ -> Alcotest.fail "degraded journal lost its table");
      Alcotest.(check int) "answered tracked in memory" 1 (Journal.answered j);
      Journal.close j)

(* ---------- explicit drop accounting ---------- *)

let write_request fd s =
  let wire = Frame.encode (Instance.request_json s) in
  let b = Bytes.of_string wire in
  ignore (Unix.write fd b 0 (Bytes.length b))

let test_dropped_disconnect_explicit () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  (* The client vanishes before any response can be delivered: close
     the response pipe's read half up front. Without a journal every
     accepted instance's answer is lost — and each loss must be counted
     at its drop site, never derived as accepted - responded. *)
  let run ~journal_path =
    let c2s_r, c2s_w = Unix.pipe () in
    let s2c_r, s2c_w = Unix.pipe () in
    Unix.close s2c_r;
    List.iter (write_request c2s_w) (List.init 3 spec_i);
    Unix.close c2s_w;
    let cfg = { (quiet_config ~jobs:1) with Server.journal_path } in
    let stats = Server.serve_fds cfg ~in_fd:c2s_r ~out_fd:s2c_w in
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ c2s_r; s2c_w ];
    stats
  in
  let bare = run ~journal_path:None in
  Alcotest.(check int) "bare: all three accepted" 3 bare.Server.accepted;
  Alcotest.(check int) "bare: none responded" 0 bare.Server.responded;
  Alcotest.(check int) "bare: every drop explicitly counted" 3
    bare.Server.dropped_disconnect;
  Alcotest.(check bool) "bare: not durable" false bare.Server.durable;
  (* The same vanish with a journal drops nothing: the answers are
     durable instead of delivered, and responded says so. *)
  with_temp_path "bap_drop" (fun jpath ->
      let durable = run ~journal_path:(Some jpath) in
      Alcotest.(check int) "durable: nothing dropped" 0
        durable.Server.dropped_disconnect;
      Alcotest.(check int) "durable: all answered into the journal" 3
        durable.Server.responded;
      Alcotest.(check bool) "durable flag" true durable.Server.durable)

(* ---------- crash-restart: the exactly-once oracle ---------- *)

let test_crash_restart_exactly_once () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  with_temp_path "bap_crash" (fun jpath ->
      with_temp_path "bap_sock" (fun spath ->
          let instances = 50 in
          let base =
            {
              (quiet_config ~jobs:2) with
              Server.journal_path = Some jpath;
              timeout_s = Some 5.;
            }
          in
          (* Incarnation 1 dies at its 8th answer point — work done,
             respond record not yet journaled: the exact window
             durability must cover. *)
          let hits = ref 0 in
          let cfg1 =
            {
              base with
              Server.kill9 =
                Some
                  (fun ~key:_ ->
                    incr hits;
                    !hits = 8);
            }
          in
          let inc1 =
            Domain.spawn (fun () ->
                match Server.serve_socket cfg1 ~path:spath with
                | _ -> None
                | exception Server.Kill9 key -> Some key)
          in
          (* The client rides out the crash window: seeded-backoff
             reconnects plus id-based retransmit rounds. *)
          let client =
            Domain.spawn (fun () ->
                Load.run_socket ~reconnect:400 ~retransmit:6 ~seed:11
                  ~path:spath ~instances
                  ~families:[ Instance.Pk; Instance.Es ]
                  ~n:4 ())
          in
          (match Domain.join inc1 with
          | Some _key -> ()
          | None -> Alcotest.fail "incarnation 1 outlived its kill point");
          (* Incarnation 2: resume from the journal, no chaos. It must
             re-dispatch the accepted-unanswered backlog before serving
             and answer retransmits of answered keys from the journal. *)
          let inc2 =
            Domain.spawn (fun () ->
                Server.serve_socket { base with Server.resume = true } ~path:spath)
          in
          let o = Domain.join client in
          Server.request_drain ~code:0;
          let stats2 = Domain.join inc2 in
          (* The oracle: union of responses across incarnations is
             exactly one byte-identical answer per instance. *)
          (match Load.failures ~exactly_once:true o with
          | [] -> ()
          | fs -> Alcotest.fail (String.concat "; " fs));
          Alcotest.(check int) "every instance answered ok" instances o.Load.ok;
          Alcotest.(check int) "no duplicates" 0 o.Load.duplicates;
          Alcotest.(check bool) "the crash forced reconnects" true
            (o.Load.retransmits > 0);
          Alcotest.(check bool) "incarnation 2 durable" true stats2.Server.durable;
          Alcotest.(check bool) "incarnation 2 recovered the backlog" true
            (stats2.Server.recovered > 0);
          Alcotest.(check bool) "retransmits answered from the journal" true
            (stats2.Server.replayed > 0);
          Alcotest.(check int) "journal union: accepted = responded"
            stats2.Server.accepted stats2.Server.responded;
          Alcotest.(check int) "journal union covers the whole plan" instances
            stats2.Server.accepted;
          Alcotest.(check int) "nothing dropped across incarnations" 0
            stats2.Server.dropped_disconnect))

(* ---------- the flight recorder ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

module Flight = Bap_servelib.Flight
module Memprobe = Bap_telemetry.Memprobe

let test_flight_wraparound () =
  let t = Flight.create ~capacity:4 () in
  Alcotest.(check int) "fresh ring is empty" 0 (List.length (Flight.entries t));
  for i = 0 to 9 do
    Flight.record t ~kind:"k" ~key:(Printf.sprintf "key%d" i) ~detail:""
  done;
  Alcotest.(check int) "recorded counts everything" 10 (Flight.recorded t);
  Alcotest.(check int) "retained is the capacity" 4 (Flight.retained t);
  Alcotest.(check int) "dropped = recorded - retained" 6 (Flight.dropped t);
  Alcotest.(check (list int)) "oldest-first window of the last 4" [ 6; 7; 8; 9 ]
    (List.map (fun e -> e.Flight.seq) (Flight.entries t));
  (* The dump renders the same window and admits the overwrites. *)
  let h = Bap_servelib.Health.create () in
  let text =
    Flight.dump t ~gc:(Memprobe.snapshot ())
      ~health:(Bap_servelib.Health.summarize h ~wall_s:1.)
  in
  Alcotest.(check bool) "dump admits overwrites" true
    (contains text "6 overwritten");
  Alcotest.(check bool) "dump holds the oldest retained key" true
    (contains text "key6");
  Alcotest.(check bool) "dump dropped the overwritten key" false
    (contains text "key5");
  (* And the JSON form round-trips through the project parser. *)
  let module Json = Bap_telemetry.Json in
  let j = Json.parse (Flight.to_json t) in
  Alcotest.(check (option int)) "json recorded" (Some 10)
    (Json.to_int (Json.member "recorded" j));
  Alcotest.(check (option int)) "json dropped" (Some 6)
    (Json.to_int (Json.member "dropped" j));
  match Json.to_list (Json.member "entries" j) with
  | Some es -> Alcotest.(check int) "json window size" 4 (List.length es)
  | None -> Alcotest.fail "entries missing from flight json"

let test_flight_sigusr1_dump () =
  (* The live-inspection round-trip: SIGUSR1 lands while the loop is
     serving, the next loop head dumps the black box to the flight
     file, and the stream itself is untouched. *)
  with_temp_path "bap_flight" (fun dump_path ->
      Sys.remove dump_path;
      Server.install_signal_handlers ();
      let c2s_r, c2s_w = Unix.pipe () in
      let s2c_r, s2c_w = Unix.pipe () in
      let cfg =
        { (quiet_config ~jobs:1) with Server.flight_dump = Some dump_path }
      in
      let server =
        Domain.spawn (fun () -> Server.serve_fds cfg ~in_fd:c2s_r ~out_fd:s2c_w)
      in
      List.iter
        (fun s ->
          let wire = Frame.encode (Instance.request_json s) in
          let b = Bytes.of_string wire in
          ignore (Unix.write c2s_w b 0 (Bytes.length b)))
        (List.init 2 spec_i);
      (* Read both responses first: the server is provably live and past
         its startup (which discards stale pre-start signals). *)
      let dec = Frame.decoder () in
      let buf = Bytes.create 4096 in
      let got = ref 0 in
      while !got < 2 do
        (match Unix.read s2c_r buf 0 (Bytes.length buf) with
        | 0 -> Alcotest.fail "server closed before answering"
        | k -> Frame.feed dec buf ~pos:0 ~len:k);
        let rec drain () =
          match Frame.next dec with
          | Frame.Frame _ ->
            incr got;
            drain ()
          | Frame.Await | Frame.Oversized _ -> ()
        in
        drain ()
      done;
      Unix.kill (Unix.getpid ()) Sys.sigusr1;
      (* The dump lands at the next loop head; wait for the file rather
         than racing the signal's delivery point. *)
      let rec await tries =
        if Sys.file_exists dump_path then ()
        else if tries = 0 then Alcotest.fail "flight dump never appeared"
        else begin
          (try ignore (Unix.select [] [] [] 0.05)
           with Unix.Unix_error (Unix.EINTR, _, _) -> ());
          await (tries - 1)
        end
      in
      await 100;
      Unix.close c2s_w;
      let stats = Domain.join server in
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ c2s_r; s2c_r; s2c_w ];
      Alcotest.(check int) "stream served to completion" 2 stats.Server.responded;
      Alcotest.(check int) "nothing dropped" 0 stats.Server.dropped_disconnect;
      let text = read_file dump_path in
      Alcotest.(check bool) "dump names the signal" true (contains text "sigusr1");
      Alcotest.(check bool) "dump carries the gc snapshot" true
        (contains text "[flight] gc:");
      Alcotest.(check bool) "dump carries the health snapshot" true
        (contains text "[flight] health:"))

let test_flight_quarantine_dump () =
  (* A quarantined instance is the crash-adjacent event: the black box
     must be written at that moment, not only on demand. *)
  with_temp_path "bap_flightq" (fun dump_path ->
      Sys.remove dump_path;
      let c2s_r, c2s_w = Unix.pipe () in
      let s2c_r, s2c_w = Unix.pipe () in
      let wire = Frame.encode (Instance.request_json (spec_i 0)) in
      ignore
        (Unix.write c2s_w (Bytes.of_string wire) 0 (String.length wire));
      Unix.close c2s_w;
      let cfg =
        {
          (quiet_config ~jobs:1) with
          Server.flight_dump = Some dump_path;
          inject = Some (fun ~key:_ ~attempt:_ -> Some Supervisor.Inject_crash);
          retries = 1;
        }
      in
      let stats = Server.serve_fds cfg ~in_fd:c2s_r ~out_fd:s2c_w in
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ c2s_r; s2c_r; s2c_w ];
      Alcotest.(check int) "instance degraded, not lost" 1 stats.Server.degraded;
      Alcotest.(check bool) "quarantine dumped the black box" true
        (Sys.file_exists dump_path);
      let text = read_file dump_path in
      Alcotest.(check bool) "dump names the quarantine" true
        (contains text "quarantine");
      Alcotest.(check bool) "dump retains the admission" true
        (contains text "accept"))

let test_admin_stats_frame () =
  (* {"admin":"stats"} answered from server state: a typed Stats frame
     with counters, health, gc, and the flight window — and no effect
     on the instance ledger. *)
  let c2s_r, c2s_w = Unix.pipe () in
  let s2c_r, s2c_w = Unix.pipe () in
  let frames =
    [ Instance.request_json (spec_i 0); "{\"admin\":\"stats\"}" ]
  in
  List.iter
    (fun p ->
      let wire = Frame.encode p in
      ignore (Unix.write c2s_w (Bytes.of_string wire) 0 (String.length wire)))
    frames;
  Unix.close c2s_w;
  let stats = Server.serve_fds (quiet_config ~jobs:1) ~in_fd:c2s_r ~out_fd:s2c_w in
  Unix.close s2c_w;
  let dec = Frame.decoder () in
  let buf = Bytes.create 65536 in
  let rec slurp () =
    match Unix.read s2c_r buf 0 (Bytes.length buf) with
    | 0 -> ()
    | k ->
      Frame.feed dec buf ~pos:0 ~len:k;
      slurp ()
  in
  slurp ();
  let rec collect acc =
    match Frame.next dec with
    | Frame.Frame p -> collect (p :: acc)
    | Frame.Await | Frame.Oversized _ -> List.rev acc
  in
  let responses = collect [] in
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    [ c2s_r; s2c_r ];
  Alcotest.(check int) "one response per frame" 2 (List.length responses);
  Alcotest.(check int) "admin frame not counted as accepted" 1
    stats.Server.accepted;
  let module Json = Bap_telemetry.Json in
  let stats_resp =
    List.find
      (fun p ->
        match Json.to_string (Json.member "status" (Json.parse p)) with
        | Some "stats" -> true
        | _ -> false)
      responses
  in
  let j = Json.parse stats_resp in
  Alcotest.(check (option int)) "stats sees the accepted instance" (Some 1)
    (Json.to_int (Json.member "accepted" j));
  (match Json.member "gc" j with
  | Some _ -> ()
  | None -> Alcotest.fail "stats frame missing the gc snapshot");
  (match Json.member "health" j with
  | Some _ -> ()
  | None -> Alcotest.fail "stats frame missing the health snapshot");
  match Option.bind (Json.member "flight" j) (Json.member "recorded") with
  | Some r -> (
    match Json.to_int (Some r) with
    | Some n when n >= 1 -> ()
    | _ -> Alcotest.fail "flight window empty in stats frame")
  | None -> Alcotest.fail "stats frame missing the flight window"

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_torn_resume;
    Alcotest.test_case "frame: oversized prefix poisons the stream" `Quick
      test_oversized_poisons;
    Alcotest.test_case "frame: garbage payload = one rejection" `Quick
      test_garbage_payload_is_one_rejection;
    Alcotest.test_case "frame: garbage header = typed oversized" `Quick
      test_header_garbage_is_oversized;
    Alcotest.test_case "instance: request round-trip, all families" `Quick
      test_request_roundtrip;
    Alcotest.test_case "instance: envelope rejections carry the id" `Quick
      test_invalid_envelope;
    Alcotest.test_case "admission: sheds overload, stays FIFO" `Quick
      test_admission_sheds_overload;
    Alcotest.test_case "admission: draining gate" `Quick
      test_admission_draining_gate;
    Alcotest.test_case "dispatch: jobs 1 = jobs 4, byte-identical" `Quick
      test_dispatch_jobs_invariant;
    Alcotest.test_case "dispatch: doomed instance degrades alone" `Quick
      test_dispatch_degrades_doomed;
    Alcotest.test_case "serve: end-to-end clean oracle" `Quick
      test_end_to_end_clean;
    Alcotest.test_case "serve: end-to-end chaos oracle" `Quick
      test_end_to_end_chaos;
    Alcotest.test_case "serve: drain answers the backlog" `Quick
      test_drain_answers_backlog;
    Alcotest.test_case "frame: poison is per-decoder state" `Quick
      test_decoder_state_isolation;
    Alcotest.test_case "health: quantile edges (0, 1, all-equal)" `Quick
      test_health_quantile_edges;
    Alcotest.test_case "journal: accept/respond/replay across reopen" `Quick
      test_journal_exactly_once;
    Alcotest.test_case "journal: unwritable path degrades loudly" `Quick
      test_journal_degrades_loud;
    Alcotest.test_case "serve: disconnect drops are explicit, journal drops none"
      `Quick test_dropped_disconnect_explicit;
    Alcotest.test_case "serve: crash-restart answers exactly once" `Quick
      test_crash_restart_exactly_once;
    Alcotest.test_case "flight: ring wraparound keeps the newest window" `Quick
      test_flight_wraparound;
    Alcotest.test_case "flight: SIGUSR1 dumps mid-stream, stream unharmed" `Quick
      test_flight_sigusr1_dump;
    Alcotest.test_case "flight: quarantine dumps the black box" `Quick
      test_flight_quarantine_dump;
    Alcotest.test_case "serve: admin stats frame outside the ledger" `Quick
      test_admin_stats_frame;
  ]
