(* Harness-level behaviour of Stack.Make: argument validation, metric
   helpers, value-domain genericity. *)

open Helpers
module Gen = Bap_prediction.Gen

let test_check_args_advice_length () =
  Alcotest.check_raises "advice length"
    (Invalid_argument "Stack: advice length <> inputs length") (fun () ->
      ignore
        (S.run_unauth ~t:1 ~faulty:[||] ~inputs:(Array.make 4 0)
           ~advice:(Array.make 3 (Advice.make 4 true))
           ()))

let test_check_args_faulty_count () =
  Alcotest.check_raises "too many faulty"
    (Invalid_argument "Stack: more faulty processes than t") (fun () ->
      ignore
        (S.run_unauth ~t:1 ~faulty:[| 0; 1 |] ~inputs:(Array.make 7 0)
           ~advice:(Array.make 7 (Advice.make 7 true))
           ()))

let test_decision_round_le_rounds () =
  let n = 10 and t = 3 in
  let faulty = [| 0 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.init n (fun i -> i mod 2) in
  let o = S.run_unauth ~t ~faulty ~inputs ~advice () in
  Alcotest.(check bool) "decided before returning" true
    (S.decision_round o <= o.S.R.rounds && S.decision_round o > 0)

let test_auth_returns_usable_pki () =
  let n = 7 and t = 2 in
  let faulty = [| 0 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.make n 5 in
  let o, pki = S.run_auth ~t ~faulty ~inputs ~advice () in
  Alcotest.(check bool) "agreement" true (S.agreement o);
  Alcotest.(check int) "pki size" n (Pki.n pki)

let test_string_stack () =
  let module VS = Bap_core.Value.String in
  let module SS = Bap_core.Stack.Make (VS) in
  let n = 7 and t = 2 in
  let faulty = [| 1 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.init n (fun i -> if i mod 2 = 0 then "alpha" else "beta") in
  let o = SS.run_unauth ~t ~faulty ~inputs ~advice () in
  Alcotest.(check bool) "agreement over strings" true (SS.agreement o);
  match SS.R.honest_decisions o with
  | (_, r) :: _ ->
    Alcotest.(check bool) "decision is an input" true
      (List.mem r.SS.Wrapper.value [ "alpha"; "beta" ])
  | [] -> Alcotest.fail "no decisions"

let test_bool_stack () =
  let module VB = Bap_core.Value.Bool in
  let module SB = Bap_core.Stack.Make (VB) in
  let n = 7 and t = 2 in
  let faulty = [||] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.make n true in
  let o = SB.run_unauth ~t ~faulty ~inputs ~advice () in
  Alcotest.(check bool) "validity over bools" true
    (SB.unanimous_validity ~inputs ~faulty o)

let test_messages_by_component_auth () =
  let n = 9 and t = 3 in
  let faulty = [| 0 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.init n (fun i -> i mod 2) in
  let o, pki = S.run_auth ~t ~faulty ~inputs ~advice () in
  let cfg = S.auth_config ~pki ~key:(Pki.key pki 0) ~t in
  let by = S.messages_by_component cfg ~t o in
  let total = List.fold_left (fun acc (_, c) -> acc + c) 0 by in
  Alcotest.(check int) "partition" o.S.R.honest_sent total

(* The per-component totals come out of a Hashtbl fold; the stack must
   sort the (label, count) rows so the attribution is a reproducible
   value, not an artifact of hashing. Pin the order and stability. *)
let test_messages_by_component_order () =
  let n = 9 and t = 3 in
  let faulty = [| 0 |] in
  let advice = Gen.perfect ~n ~faulty in
  let inputs = Array.init n (fun i -> i mod 2) in
  let attribute () =
    let o, pki = S.run_auth ~t ~faulty ~inputs ~advice () in
    let cfg = S.auth_config ~pki ~key:(Pki.key pki 0) ~t in
    S.messages_by_component cfg ~t o
  in
  let by1 = attribute () and by2 = attribute () in
  Alcotest.(check (list (pair string int)))
    "rows in label order" (List.sort compare by1) by1;
  Alcotest.(check (list (pair string int))) "same run, same rows" by1 by2

let test_wrapper_rounds_formula () =
  (* The run never exceeds the wrapper's static round bound. *)
  let n = 13 and t = 4 in
  let faulty = Array.init t Fun.id in
  let rng = Rng.create 3 in
  let advice = Gen.generate ~rng ~n ~faulty ~budget:(n * n) Gen.All_wrong in
  let inputs = Array.init n (fun i -> i mod 2) in
  let o =
    S.run_unauth ~t ~faulty ~inputs ~advice
      ~adversary:(Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -r))
      ()
  in
  let cfg = S.unauth_config ~t in
  Alcotest.(check bool) "bounded by schedule" true
    (o.S.R.rounds <= S.Wrapper.rounds cfg ~t);
  Alcotest.(check bool) "agreement" true (S.agreement o)

let suite =
  [
    Alcotest.test_case "advice length validated" `Quick test_check_args_advice_length;
    Alcotest.test_case "faulty count validated" `Quick test_check_args_faulty_count;
    Alcotest.test_case "decision round within run" `Quick test_decision_round_le_rounds;
    Alcotest.test_case "auth harness returns pki" `Quick test_auth_returns_usable_pki;
    Alcotest.test_case "string-valued stack" `Quick test_string_stack;
    Alcotest.test_case "bool-valued stack" `Quick test_bool_stack;
    Alcotest.test_case "auth message attribution partitions" `Quick
      test_messages_by_component_auth;
    Alcotest.test_case "message attribution order is deterministic" `Quick
      test_messages_by_component_order;
    Alcotest.test_case "runs bounded by wrapper schedule" `Quick test_wrapper_rounds_formula;
  ]
