(* The supervision layer (lib/exec/supervisor + journal + the engine's
   degraded mode): chaos-injected sweeps recover to identical output at
   any --jobs, kill-and-resume via the journal is byte-identical, retry
   ledgers are deterministic per seed, and budget exhaustion degrades
   the table instead of aborting the sweep. *)

module Pool = Bap_exec.Pool
module Cache = Bap_exec.Cache
module Plan = Bap_exec.Plan
module Engine = Bap_exec.Engine
module Journal = Bap_exec.Journal
module Supervisor = Bap_exec.Supervisor
module Harness = Bap_chaos.Harness
module Table = Bap_stats.Table

(* Unique per call without reading the clock (D002): pid + counter. *)
let temp_seq = Atomic.make 0

let temp_path prefix =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ())
       (Atomic.fetch_and_add temp_seq 1))

(* An 8-cell plan of real computation, keyed k=0..k=7. *)
let plan () =
  let cell k =
    Plan.cell (Printf.sprintf "k=%d" k) (fun () ->
        let rng = Bap_sim.Rng.create (1000 + k) in
        [ [ string_of_int k; string_of_int (Bap_sim.Rng.int rng 1_000_000) ] ])
  in
  {
    Plan.exp_id = "TESTS";
    scope = "unit";
    cells = List.map cell (List.init 8 Fun.id);
    render = ignore;
  }

let collect ?cache ?journal ?supervisor ~jobs () =
  let rows = ref [] in
  let p = { (plan ()) with Plan.render = (fun r -> rows := r) } in
  let stats =
    Pool.with_pool ~jobs (fun pool ->
        Engine.run ~pool ?cache ?journal ?supervisor [ p ])
  in
  (!rows, stats)

let chaos_inject h ~key ~attempt =
  match Harness.decide h ~key ~attempt with
  | Some Harness.Crash -> Some Supervisor.Inject_crash
  | Some Harness.Hang -> Some Supervisor.Inject_hang
  | None -> None

let chaos_config ?(retries = 3) ?(timeout_s = Some 0.05) ?(seed = 7) h =
  { Supervisor.retries; timeout_s; seed; inject = Some (chaos_inject h) }

(* (a) Determinism under injected faults: jobs=1 equals jobs=8 equals
   the fault-free run, because the default schedule only faults the
   first two attempts of any cell. *)
let test_chaos_jobs1_equals_jobs8 () =
  let baseline, _ = collect ~jobs:1 () in
  let run_chaos jobs =
    let h = Harness.create ~crash_pct:40 ~hang_pct:20 ~faulty_attempts:2 ~seed:7 () in
    Supervisor.with_supervisor (chaos_config h) (fun sup ->
        collect ~supervisor:sup ~jobs ())
  in
  let rows1, s1 = run_chaos 1 in
  let rows8, s8 = run_chaos 8 in
  Alcotest.(check bool) "rows non-empty" true (baseline <> []);
  Alcotest.(check bool) "chaos jobs=1 = fault-free" true (rows1 = baseline);
  Alcotest.(check bool) "chaos jobs=8 = fault-free" true (rows8 = baseline);
  Alcotest.(check bool) "no quarantine at jobs=1" false (Engine.degraded s1);
  Alcotest.(check bool) "no quarantine at jobs=8" false (Engine.degraded s8);
  Alcotest.(check bool) "faults actually fired" true (s1.Engine.retried > 0)

(* (b) Kill-and-resume: truncate the journal mid-file (what SIGKILL
   leaves behind, including a torn record) and resume — rows identical,
   only the missing cells recomputed. *)
let test_journal_kill_and_resume () =
  let jpath = temp_path "bap-journal-test" in
  let fingerprint = "test-build" in
  let j1 = Journal.open_ ~path:jpath ~fingerprint () in
  let baseline, s0 = collect ~journal:j1 ~jobs:2 () in
  Journal.close j1;
  Alcotest.(check int) "all cells executed once" 8 s0.Engine.executed;
  (* Simulate the kill: keep ~60% of the bytes, tearing the last record. *)
  let size = (Unix.stat jpath).Unix.st_size in
  Unix.truncate jpath (size * 6 / 10);
  let j2 = Journal.open_ ~resume:true ~path:jpath ~fingerprint () in
  let resumed = Journal.entries j2 in
  Alcotest.(check bool) "journal kept a strict prefix" true
    (resumed > 0 && resumed < 8);
  let rows2, s2 = collect ~journal:j2 ~jobs:2 () in
  Journal.close j2;
  Alcotest.(check bool) "resumed rows byte-identical" true (rows2 = baseline);
  Alcotest.(check int) "journal hits = surviving prefix" resumed
    s2.Engine.journal_hits;
  Alcotest.(check int) "only the lost cells re-ran" (8 - resumed)
    s2.Engine.executed;
  (* Third run: everything now journaled, nothing executes. *)
  let j3 = Journal.open_ ~resume:true ~path:jpath ~fingerprint () in
  let rows3, s3 = collect ~journal:j3 ~jobs:1 () in
  Journal.close j3;
  Alcotest.(check bool) "fully-journaled rows identical" true (rows3 = baseline);
  Alcotest.(check int) "nothing re-ran" 0 s3.Engine.executed;
  (* A journal from another build must be discarded wholesale. *)
  let j4 = Journal.open_ ~resume:true ~path:jpath ~fingerprint:"other-build" () in
  Alcotest.(check int) "stale fingerprint loads nothing" 0 (Journal.entries j4);
  Journal.close j4;
  Sys.remove jpath

(* Concurrent appends from many domains: the dedup table must be
   serialised by the journal lock (OCaml 5 Hashtbl is not domain-safe),
   and signal_close must stay safe and idempotent alongside close. *)
let test_journal_concurrent_append () =
  let jpath = temp_path "bap-journal-conc" in
  let fingerprint = "test-build" in
  let j = Journal.open_ ~path:jpath ~fingerprint () in
  let per_domain = 200 and domains = 6 in
  let worker d () =
    for i = 0 to per_domain - 1 do
      (* Half the addresses are shared across domains so the dedup path
         runs under real contention, not just the happy path. *)
      let addr =
        if i mod 2 = 0 then Printf.sprintf "shared-%d" i
        else Printf.sprintf "own-%d-%d" d i
      in
      Journal.append j addr [ [ string_of_int d; string_of_int i ] ]
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (worker d)) in
  List.iter Domain.join ds;
  let expected = (per_domain / 2) + (domains * per_domain / 2) in
  Alcotest.(check int) "every distinct address recorded once" expected
    (Journal.entries j);
  Journal.signal_close j;
  Journal.signal_close j;
  Journal.close j;
  (* What signal_close left on disk is a valid resumable journal. *)
  let j2 = Journal.open_ ~resume:true ~path:jpath ~fingerprint () in
  Alcotest.(check int) "resume sees every record" expected (Journal.entries j2);
  Journal.close j2;
  Sys.remove jpath

(* (c) Retry ledgers are a pure function of the seed. *)
let test_ledger_deterministic () =
  let run () =
    let h = Harness.create ~crash_pct:40 ~hang_pct:20 ~faulty_attempts:2 ~seed:7 () in
    Supervisor.with_supervisor (chaos_config h) (fun sup ->
        let _, stats = collect ~supervisor:sup ~jobs:4 () in
        stats.Engine.ledgers)
  in
  let l1 = run () and l2 = run () in
  Alcotest.(check bool) "some cell failed at least once" true
    (List.exists (fun (_, l) -> l <> []) l1);
  Alcotest.(check bool) "ledgers identical across re-runs" true (l1 = l2);
  let show (cid, l) = Format.asprintf "%s: %a" cid Supervisor.pp_ledger l in
  Alcotest.(check (list string))
    "ledger text identical" (List.map show l1) (List.map show l2);
  (* And the backoff values themselves are pure. *)
  List.iter
    (fun attempt ->
      Alcotest.(check int)
        (Printf.sprintf "backoff attempt %d pure" attempt)
        (Supervisor.backoff_ms ~seed:7 ~key:"TESTS/unit/k=3" ~attempt)
        (Supervisor.backoff_ms ~seed:7 ~key:"TESTS/unit/k=3" ~attempt))
    [ 0; 1; 2; 3 ]

(* (d) Budget exhaustion quarantines the cell and degrades the table —
   the sweep still completes and renders the other seven cells. *)
let test_quarantine_degrades_not_aborts () =
  let inject ~key ~attempt:_ =
    (* One cell is doomed on every attempt; the rest run clean. *)
    if String.length key >= 3 && String.sub key (String.length key - 3) 3 = "k=3"
    then Some Supervisor.Inject_crash
    else None
  in
  let config =
    { Supervisor.retries = 1; timeout_s = None; seed = 0; inject = Some inject }
  in
  let rows, stats =
    Supervisor.with_supervisor config (fun sup -> collect ~supervisor:sup ~jobs:4 ())
  in
  Alcotest.(check bool) "sweep completed degraded" true (Engine.degraded stats);
  Alcotest.(check (list (pair string string)))
    "exactly the doomed cell quarantined"
    [ ("TESTS", "k=3") ]
    stats.Engine.quarantined;
  Alcotest.(check int) "the other seven cells rendered" 7 (List.length rows);
  Alcotest.(check bool) "k=3 absent from render input" true
    (not (List.mem_assoc "k=3" rows));
  (* Its ledger shows both attempts died the typed way. *)
  (match List.assoc_opt "TESTS/unit/k=3" stats.Engine.ledgers with
  | Some ledger ->
    Alcotest.(check int) "1 try + 1 retry" 2 (List.length ledger);
    List.iter
      (fun r ->
        match r.Supervisor.kind with
        | Supervisor.Crashed _ -> ()
        | Supervisor.Timed_out _ -> Alcotest.fail "expected Crashed")
      ledger
  | None -> Alcotest.fail "quarantined cell has no ledger");
  let banner = Table.degraded_banner ~exp_id:"TESTS" ~quarantined:[ "k=3" ] in
  Alcotest.(check bool) "banner says DEGRADED" true
    (String.length banner > 0
    &&
    let re = "DEGRADED" in
    let rec find i =
      i + String.length re <= String.length banner
      && (String.sub banner i (String.length re) = re || find (i + 1))
    in
    find 0)

(* A real (not injected) hang: the cell loops on Supervisor.tick and the
   watchdog cancels it past the deadline. *)
let test_watchdog_cancels_cooperative_hang () =
  let config =
    { Supervisor.retries = 0; timeout_s = Some 0.05; seed = 0; inject = None }
  in
  Supervisor.with_supervisor config (fun sup ->
      match
        Supervisor.supervise sup ~key:"hang" (fun () ->
            while true do
              Supervisor.tick ();
              Unix.sleepf 0.001
            done)
      with
      | Supervisor.Completed _ -> Alcotest.fail "hung cell cannot complete"
      | Supervisor.Quarantined { ledger } -> (
        match ledger with
        | [ { Supervisor.kind = Supervisor.Timed_out t; _ } ] ->
          Alcotest.(check (float 0.001)) "deadline recorded" 0.05 t
        | _ -> Alcotest.fail "expected exactly one Timed_out attempt"))

(* A real raise (not injected) is retried and recovers. *)
let test_real_crash_recovers () =
  let attempts = Atomic.make 0 in
  let config =
    { Supervisor.retries = 2; timeout_s = None; seed = 0; inject = None }
  in
  Supervisor.with_supervisor config (fun sup ->
      match
        Supervisor.supervise sup ~key:"flaky" (fun () ->
            if Atomic.fetch_and_add attempts 1 < 2 then failwith "transient";
            42)
      with
      | Supervisor.Completed { value; attempts = n; ledger } ->
        Alcotest.(check int) "value survives" 42 value;
        Alcotest.(check int) "third attempt succeeded" 3 n;
        Alcotest.(check int) "two failures on the ledger" 2 (List.length ledger)
      | Supervisor.Quarantined _ -> Alcotest.fail "budget was sufficient")

let suite =
  [
    Alcotest.test_case "chaos: jobs=1 = jobs=8 = fault-free" `Quick
      test_chaos_jobs1_equals_jobs8;
    Alcotest.test_case "journal: kill, resume, byte-identical" `Quick
      test_journal_kill_and_resume;
    Alcotest.test_case "journal: concurrent append + signal_close" `Quick
      test_journal_concurrent_append;
    Alcotest.test_case "ledger: stable across re-runs of a seed" `Quick
      test_ledger_deterministic;
    Alcotest.test_case "quarantine: DEGRADED table, not abort" `Quick
      test_quarantine_degrades_not_aborts;
    Alcotest.test_case "watchdog: cancels a cooperative hang" `Quick
      test_watchdog_cancels_cooperative_hang;
    Alcotest.test_case "retry: real crash recovers within budget" `Quick
      test_real_crash_recovers;
  ]
