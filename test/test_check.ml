(* The checker stack end to end: Decision-tree laws, universe
   well-formedness, Canon's soundness as an engine-level equivariance,
   and the headline pipeline — a sabotaged protocol must yield a
   counterexample that serializes, replays under the fuzzer with the
   same violation, and ddmin-shrinks. *)

open Helpers
module D = Bap_sim.Decision
module Fuzz = Bap_chaos.Fuzz
module E = Fuzz.E
module Schedule = Bap_chaos.Schedule
module U = Bap_checklib.Universe
module Explore = Bap_checklib.Explore
module Canon = Bap_checklib.Canon
module Cx = Bap_checklib.Counterexample

(* -- Decision-tree laws -- *)

(* A lopsided tree: branch 20 is shallower than its siblings, so the
   laws are exercised on uneven depths. 8 + 2 + 8 = 18 leaves. *)
let demo_tree =
  D.pick ~label:"a" [ 10; 20; 30 ] (fun a ->
      D.pick ~label:"b" [ 1; 2 ] (fun b ->
          if a = 20 then D.return (a + b)
          else D.pick ~label:"c" [ 100; 200; 300; 400 ] (fun c -> D.return (a + b + c))))

let leaves tree =
  let acc = ref [] in
  D.iter (fun v ~path -> acc := (v, path) :: !acc) tree;
  List.rev !acc

let test_decision_laws () =
  let ls = leaves demo_tree in
  Alcotest.(check int) "count = leaves iter visits" (D.count demo_tree) (List.length ls);
  Alcotest.(check int) "18 leaves" 18 (List.length ls);
  Alcotest.(check int) "depth is the longest chain" 3 (D.depth demo_tree);
  (* iter streams lowest branch index first: paths ascend lexicographically. *)
  let paths = List.map snd ls in
  Alcotest.(check bool) "iter order is lexicographic" true
    (List.sort compare paths = paths);
  (* Every enumerated path replays to its own leaf. *)
  List.iter
    (fun (v, path) ->
      match D.follow demo_tree path with
      | Some v' -> Alcotest.(check int) "follow returns iter's leaf" v v'
      | None -> Alcotest.fail "follow ran off the tree on an iter path")
    ls;
  (* Paths that run off the tree are rejected, not misread. *)
  Alcotest.(check bool) "short path is no leaf" true (D.follow demo_tree [ 0 ] = None);
  Alcotest.(check bool) "wide index rejected" true (D.follow demo_tree [ 5; 0; 0 ] = None);
  Alcotest.(check bool) "long path rejected" true
    (D.follow demo_tree [ 0; 0; 0; 0 ] = None)

let test_decision_sample () =
  (* Sampling is the fuzzer's semantics of the same tree: every sampled
     (leaf, path) must agree with replay, and a fixed seed must be
     reproducible. *)
  for seed = 0 to 49 do
    let v, path = D.sample (Rng.create seed) demo_tree in
    (match D.follow demo_tree path with
    | Some v' -> Alcotest.(check int) "sampled path replays to sampled leaf" v v'
    | None -> Alcotest.fail "sampled path ran off the tree");
    let v2, path2 = D.sample (Rng.create seed) demo_tree in
    Alcotest.(check int) "same seed, same leaf" v v2;
    Alcotest.(check (list int)) "same seed, same path" path path2
  done

let test_subsets () =
  let items = [ 'a'; 'b'; 'c'; 'd' ] in
  let tree = D.subsets ~label:"s" ~limit:2 items in
  let ls = List.map fst (leaves tree) in
  (* C(4,0) + C(4,1) + C(4,2) = 11 *)
  Alcotest.(check int) "binomial leaf count" 11 (List.length ls);
  Alcotest.(check bool) "empty subset present" true (List.mem [] ls);
  Alcotest.(check int) "subsets are distinct" 11
    (List.length (List.sort_uniq compare ls));
  let rec subseq xs ys =
    match (xs, ys) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs', y :: ys' -> if x = y then subseq xs' ys' else subseq xs ys'
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) "within limit" true (List.length s <= 2);
      Alcotest.(check bool) "input order preserved" true (subseq s items))
    ls

(* -- Universe well-formedness -- *)

let es_params = U.default_params ~protocol:E.Es_baseline ~n:4 ~t:1

let test_universe_distinct () =
  (* "Every leaf is a distinct configuration": raw (uncanonicalized)
     keys must never collide across the enumeration. *)
  let seen = Hashtbl.create 4096 in
  let dups = ref 0 and total = ref 0 in
  D.iter
    (fun cfg ~path:_ ->
      incr total;
      let k = Canon.key cfg in
      if Hashtbl.mem seen k then incr dups else Hashtbl.add seen k ())
    (U.configs es_params);
  Alcotest.(check int) "no duplicate configurations" 0 !dups;
  Alcotest.(check bool) "universe is non-trivial" true (!total > 1000)

let test_universe_advice_collapses_for_baselines () =
  (* The baselines ignore advice, so raising the budget must not
     multiply their universe. *)
  Alcotest.(check bool) "baseline ignores advice" false (U.uses_advice E.Es_baseline);
  Alcotest.(check bool) "wrapper uses advice" true (U.uses_advice E.Unauth);
  let count p = D.count (U.configs p) in
  Alcotest.(check int) "budget is a no-op for es"
    (count es_params)
    (count { es_params with U.budget = 3 })

(* -- Canon: symmetry reduction is sound at the engine level -- *)

let test_canon_equivariance () =
  (* For every leaf whose canonical representative differs, the engine
     must give the representative the same verdict — this is the fact
     that makes dedup-by-canonical-key sound. Run under sabotage so the
     comparison is not vacuously 0 = 0. *)
  let checked = ref 0 and rewritten = ref 0 in
  D.iter
    (fun cfg ~path:_ ->
      let canon = Canon.canonicalize cfg in
      let k = Canon.key cfg and ck = Canon.key canon in
      Alcotest.(check string) "canonicalize is idempotent" ck
        (Canon.key (Canon.canonicalize canon));
      if k <> ck && !rewritten < 150 then begin
        incr rewritten;
        let a = Fuzz.run_one ~sabotage:true cfg in
        let b = Fuzz.run_one ~sabotage:true canon in
        incr checked;
        Alcotest.(check int) "same violation count" (List.length a.E.violations)
          (List.length b.E.violations);
        Alcotest.(check int) "same round count" a.E.rounds b.E.rounds
      end)
    (U.configs es_params);
  Alcotest.(check bool) "equivariance was actually exercised" true (!checked > 10)

(* -- Explorer verdicts and bookkeeping -- *)

let test_explore_clean () =
  let r = Explore.run es_params in
  Alcotest.(check int) "clean protocol: no violations" 0 r.Explore.stats.violations;
  Alcotest.(check bool) "no counterexamples" true (r.Explore.counterexamples = []);
  Alcotest.(check int) "leaves = states + symmetry hits"
    r.Explore.stats.leaves
    (r.Explore.stats.states + r.Explore.stats.symmetry_hits);
  Alcotest.(check bool) "symmetry found representatives" true
    (r.Explore.stats.symmetry_hits > 0);
  Alcotest.(check bool) "frontier tracked" true (r.Explore.stats.frontier_peak >= 1)

let test_explore_symmetry_consistent () =
  (* Dedup may drop duplicate *witnesses*, never the existence of a
     violation: both modes must catch the planted bug, and reduction
     can only shrink the state count. *)
  let sym = Explore.run ~sabotage:true es_params in
  let nosym = Explore.run ~symmetry:false ~sabotage:true es_params in
  Alcotest.(check bool) "sabotage caught with symmetry" true
    (sym.Explore.stats.violations > 0);
  Alcotest.(check bool) "sabotage caught without symmetry" true
    (nosym.Explore.stats.violations > 0);
  Alcotest.(check int) "same universe either way" sym.Explore.stats.leaves
    nosym.Explore.stats.leaves;
  Alcotest.(check bool) "reduction never adds states" true
    (sym.Explore.stats.states <= nosym.Explore.stats.states);
  Alcotest.(check int) "no reduction, no hits" 0 nosym.Explore.stats.symmetry_hits

(* -- The headline round-trip: checker -> JSON -> fuzzer -> ddmin -- *)

let violation_kind = function
  | E.Oracle.Agreement _ -> "agreement"
  | E.Oracle.Validity _ -> "validity"
  | E.Oracle.Termination _ -> "termination"
  | E.Oracle.Monitor_unsound _ -> "monitor"
  | E.Oracle.Crash _ -> "crash"

let kinds (r : E.report) =
  List.sort_uniq String.compare (List.map violation_kind r.E.violations)

let test_counterexample_roundtrip () =
  let result = Explore.run ~sabotage:true es_params in
  let cex =
    match result.Explore.counterexamples with
    | [] -> Alcotest.fail "sabotaged explorer found no counterexample"
    | c :: _ -> c
  in
  let cx = Cx.of_explore ~sabotage:true cex in
  (* Serialize, parse, and re-serialize byte-identically. *)
  let file = Cx.file_to_string [ cx ] in
  let cx' =
    match Cx.of_string file with
    | Error e -> Alcotest.fail ("counterexample file did not parse: " ^ e)
    | Ok [ c ] -> c
    | Ok l -> Alcotest.fail (Printf.sprintf "expected 1 counterexample, got %d" (List.length l))
  in
  Alcotest.(check string) "round-trip is byte-identical" file (Cx.file_to_string [ cx' ]);
  Alcotest.(check bool) "sabotage flag survives" true cx'.Cx.sabotage;
  Alcotest.(check string) "config survives" (Canon.key cex.Explore.config)
    (Canon.key cx'.Cx.config);
  Alcotest.(check (list int)) "universe path survives" cex.Explore.path cx'.Cx.path;
  (* A bare object (hand-trimmed repro) parses too. *)
  (match Cx.of_string (Cx.to_json cx) with
  | Ok [ _ ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "bare counterexample object rejected");
  (* Replay under the fuzzer's entry point: the parsed configuration
     must reproduce the violation the checker reported. *)
  let replay = Fuzz.run_one ~sabotage:cx'.Cx.sabotage cx'.Cx.config in
  Alcotest.(check bool) "replay violates" true (replay.E.violations <> []);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "replay reproduces %s violation" k)
        true
        (List.mem k (kinds replay)))
    (kinds cex.Explore.report);
  (* ddmin: the shrunk schedule is no longer and still violating. *)
  let shrunk = Fuzz.shrink ~sabotage:true cex.Explore.config in
  Alcotest.(check bool) "shrunk schedule is no longer" true
    (Schedule.length shrunk <= Schedule.length cex.Explore.config.E.schedule);
  let reshrunk = Fuzz.run_one ~sabotage:true { cex.Explore.config with E.schedule = shrunk } in
  Alcotest.(check bool) "shrunk schedule still violates" true
    (reshrunk.E.violations <> [])

let suite =
  [
    Alcotest.test_case "decision laws: count/iter/follow" `Quick test_decision_laws;
    Alcotest.test_case "decision sample = seeded replay" `Quick test_decision_sample;
    Alcotest.test_case "subsets combinator" `Quick test_subsets;
    Alcotest.test_case "universe leaves are distinct" `Quick test_universe_distinct;
    Alcotest.test_case "advice collapses for baselines" `Quick
      test_universe_advice_collapses_for_baselines;
    Alcotest.test_case "canon is an engine equivariance" `Quick test_canon_equivariance;
    Alcotest.test_case "clean explore: zero violations" `Quick test_explore_clean;
    Alcotest.test_case "symmetry on/off agree on verdicts" `Quick
      test_explore_symmetry_consistent;
    Alcotest.test_case "counterexample round-trips through the fuzzer" `Quick
      test_counterexample_roundtrip;
  ]
