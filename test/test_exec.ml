(* The execution engine (lib/exec): work-stealing pool semantics,
   parallel determinism of the experiment cells, and the content
   addressed result cache. *)

module Pool = Bap_exec.Pool
module Cache = Bap_exec.Cache
module Plan = Bap_exec.Plan
module Engine = Bap_exec.Engine
module Rng = Bap_sim.Rng

(* ---------- pool ---------- *)

let test_pool_runs_all_in_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let tasks = Array.init 100 (fun i () -> i * i) in
      let results = Pool.run_all pool tasks in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v -> Alcotest.(check int) "slot matches task" (i * i) v
          | Error _ -> Alcotest.fail "unexpected task error")
        results)

let test_pool_inline_matches_parallel () =
  let mk () = Array.init 50 (fun i () -> Printf.sprintf "r%d" (i * 3)) in
  let serial = Pool.with_pool ~jobs:1 (fun p -> Pool.run_all p (mk ())) in
  let par = Pool.with_pool ~jobs:8 (fun p -> Pool.run_all p (mk ())) in
  Alcotest.(check bool) "same results" true (serial = par)

exception Boom of int

let test_pool_survives_worker_exception () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let tasks =
        Array.init 20 (fun i () -> if i mod 5 = 0 then raise (Boom i) else i)
      in
      let results = Pool.run_all pool tasks in
      Array.iteri
        (fun i r ->
          match (r, i mod 5 = 0) with
          | Error (Boom j), true -> Alcotest.(check int) "own exception" i j
          | Ok v, false -> Alcotest.(check int) "own result" i v
          | _ -> Alcotest.fail "exception landed in the wrong slot")
        results;
      (* The failing batch must not wedge or poison the pool. *)
      let again = Pool.run_all pool (Array.init 10 (fun i () -> i + 1)) in
      Array.iteri
        (fun i r -> Alcotest.(check bool) "pool reusable" true (r = Ok (i + 1)))
        again)

let test_pool_shutdown_is_clean_and_final () =
  let pool = Pool.create ~jobs:4 in
  ignore (Pool.run_all pool (Array.init 8 (fun i () -> i)));
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.check_raises "after shutdown"
    (Invalid_argument "Pool.run_all: pool is shut down") (fun () ->
      ignore (Pool.run_all pool [| (fun () -> 0) |]))

(* Regression pin for the ?on_result callback contract the serve
   dispatcher leans on: the hook fires exactly once per slot, with the
   slot's own task index and final value, at every --jobs level. The
   *arrival order* of callbacks is schedule-dependent and deliberately
   unasserted; the (index -> value) mapping must not be. *)
let test_pool_on_result_deterministic () =
  let observe ~jobs =
    let mu = Mutex.create () in
    let seen = ref [] in
    let fired = Array.make 60 0 in
    Pool.with_pool ~jobs (fun pool ->
        let tasks =
          Array.init 60 (fun i () ->
              if i mod 7 = 3 then raise (Boom i) else i * 11)
        in
        let results =
          Pool.run_all pool tasks ~on_result:(fun i ->
              Mutex.lock mu;
              fired.(i) <- fired.(i) + 1;
              seen := i :: !seen;
              Mutex.unlock mu)
        in
        Array.iter
          (fun c -> Alcotest.(check int) "fired exactly once" 1 c)
          fired;
        (* The callback ran after the slot write: pairing each index
           with its final slot value must agree across jobs levels. *)
        List.map
          (fun i ->
            ( i,
              match results.(i) with
              | Ok v -> string_of_int v
              | Error e -> Printexc.to_string e ))
          (List.sort compare !seen))
  in
  Alcotest.(check bool)
    "same fingerprint->result mapping at --jobs 1 and --jobs 8" true
    (observe ~jobs:1 = observe ~jobs:8)

(* ---------- parallel determinism on real simulation work ---------- *)

(* A miniature experiment: each cell derives its own Rng from its key
   and runs a real unauthenticated execution, like every E* cell does. *)
let sim_plan () =
  let module V = Bap_core.Value.Int in
  let module S = Bap_core.Stack.Make (V) in
  let n = 13 in
  let t = (n - 1) / 3 in
  let cell seed =
    Plan.row_cell (Printf.sprintf "seed=%d" seed) (fun () ->
        let rng = Rng.create seed in
        let f = Rng.int rng (t + 1) in
        let faulty = Array.init f Fun.id in
        let inputs = Array.init n (fun _ -> Rng.int rng 2) in
        let advice = Bap_prediction.Gen.perfect ~n ~faulty in
        let o =
          S.run_unauth ~t ~faulty ~inputs ~advice ~adversary:Bap_sim.Adversary.silent ()
        in
        [
          string_of_int (S.decision_round o);
          string_of_int o.S.R.rounds;
          string_of_int o.S.R.honest_sent;
          string_of_bool (S.agreement o);
        ])
  in
  {
    Plan.exp_id = "TEST";
    scope = "unit";
    cells = List.map cell (List.init 12 (fun i -> 100 + i));
    render = ignore;
  }

let collect plan ~jobs =
  let rows = ref [] in
  let plan = { plan with Plan.render = (fun results -> rows := results) } in
  Pool.with_pool ~jobs (fun pool -> ignore (Engine.run ~pool [ plan ]));
  !rows

let test_parallel_determinism () =
  let serial = collect (sim_plan ()) ~jobs:1 in
  let par = collect (sim_plan ()) ~jobs:8 in
  Alcotest.(check bool) "rows non-empty" true (serial <> []);
  Alcotest.(check bool) "--jobs 1 = --jobs 8" true (serial = par)

(* ---------- cache ---------- *)

(* Unique per call without reading the clock: pid + an in-process
   counter is collision-free and keeps the test binary deterministic. *)
let temp_dir_seq = Atomic.make 0

let temp_cache_dir () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "bap-cache-test-%d-%d" (Unix.getpid ())
       (Atomic.fetch_and_add temp_dir_seq 1))

let counting_plan counter =
  let cell k =
    Plan.row_cell (Printf.sprintf "k=%d" k) (fun () ->
        incr counter;
        [ string_of_int (k * 7); "x" ^ string_of_int k ])
  in
  {
    Plan.exp_id = "TESTC";
    scope = "unit";
    cells = List.map cell [ 1; 2; 3; 4; 5 ];
    render = ignore;
  }

let test_cache_hits_and_fingerprint_invalidation () =
  let dir = temp_cache_dir () in
  let ran = ref 0 in
  let cache_a = Cache.create ~fingerprint:"code-A" ~dir () in
  let s1 = Engine.run ~cache:cache_a [ counting_plan ran ] in
  Alcotest.(check int) "cold run computes every cell" 5 !ran;
  Alcotest.(check int) "cold run reports no hits" 0 s1.Engine.cache_hits;
  (* Same fingerprint: all hits, nothing recomputed, same rows. *)
  let rows_of c plan =
    let got = ref [] in
    let plan = { plan with Plan.render = (fun r -> got := r) } in
    ignore (Engine.run ~cache:c [ plan ]);
    !got
  in
  let warm = rows_of cache_a (counting_plan ran) in
  Alcotest.(check int) "warm run computes nothing" 5 !ran;
  let fresh = ref 0 in
  let expected = rows_of (Cache.create ~fingerprint:"code-A" ~dir ()) (counting_plan fresh) in
  Alcotest.(check bool) "warm rows equal cached rows" true (warm = expected);
  (* Changed code fingerprint: every entry invalid, all cells rerun. *)
  let cache_b = Cache.create ~fingerprint:"code-B" ~dir () in
  let reran = ref 0 in
  let s2 = Engine.run ~cache:cache_b [ counting_plan reran ] in
  Alcotest.(check int) "fingerprint change recomputes" 5 !reran;
  Alcotest.(check int) "no stale hits across fingerprints" 0 s2.Engine.cache_hits

let test_cache_corrupt_entry_is_a_miss () =
  let dir = temp_cache_dir () in
  let c = Cache.create ~fingerprint:"code-A" ~dir () in
  let k = Cache.key c ~exp_id:"X" ~scope:"s" ~cell_key:"c" in
  Cache.store c k [ [ "a"; "b" ]; [ "tab\there"; "nl\nthere" ] ];
  (match Cache.find c k with
  | Some rows ->
    Alcotest.(check bool) "round-trips escapes" true
      (rows = [ [ "a"; "b" ]; [ "tab\there"; "nl\nthere" ] ])
  | None -> Alcotest.fail "stored entry not found");
  (* Truncate the entry on disk: must behave as a miss, not an error —
     and the damaged shard must be deleted and counted, not left to
     cost a failed decode on every future run. *)
  let path = Filename.concat dir (k ^ ".rows") in
  let oc = open_out_bin path in
  output_string oc "bap-cache 1\n2\n";
  close_out oc;
  Alcotest.(check int) "no corruption seen yet" 0 (Cache.corrupt_count c);
  Alcotest.(check bool) "corrupt entry is a miss" true (Cache.find c k = None);
  Alcotest.(check int) "corrupt entry counted" 1 (Cache.corrupt_count c);
  Alcotest.(check bool) "corrupt entry deleted" false (Sys.file_exists path);
  Alcotest.(check bool) "second lookup a plain miss" true (Cache.find c k = None);
  Alcotest.(check int) "plain miss not double-counted" 1 (Cache.corrupt_count c);
  (* A single flipped byte inside field text (what Harness.corrupt_cache
     injects) must also fail the digest check. *)
  Cache.store c k [ [ "payload" ] ];
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let b = Bytes.of_string text in
  let off = Bytes.length b - 2 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  Alcotest.(check bool) "bit-flipped entry is a miss" true (Cache.find c k = None);
  Alcotest.(check int) "bit flip counted" 2 (Cache.corrupt_count c)

let suite =
  [
    Alcotest.test_case "pool: results land in task order" `Quick test_pool_runs_all_in_order;
    Alcotest.test_case "pool: inline = parallel" `Quick test_pool_inline_matches_parallel;
    Alcotest.test_case "pool: survives worker exception" `Quick
      test_pool_survives_worker_exception;
    Alcotest.test_case "pool: shutdown clean, idempotent, final" `Quick
      test_pool_shutdown_is_clean_and_final;
    Alcotest.test_case "pool: on_result once per slot, jobs 1 = jobs 8" `Quick
      test_pool_on_result_deterministic;
    Alcotest.test_case "engine: --jobs 1 = --jobs 8 on real cells" `Quick
      test_parallel_determinism;
    Alcotest.test_case "cache: hit on same code, invalidate on new code" `Quick
      test_cache_hits_and_fingerprint_invalidation;
    Alcotest.test_case "cache: corrupt entry degrades to miss" `Quick
      test_cache_corrupt_entry_is_a_miss;
  ]
