(* The network-tap monitor: soundness (honest processes are never
   flagged), per-class detection, and the repeated-slot feedback loop. *)

open Helpers
module Observer = Bap_monitor.Observer.Make (V) (S.W)
module Repeated = Bap_monitor.Repeated.Make (V)
module Gen = Bap_prediction.Gen
module Trace = Bap_sim.Trace

let run_traced ?(adversary = Adversary.passive) ~n ~t ~f ~budget () =
  let rng = Rng.create (n + t + f + budget) in
  let faulty = Array.init f Fun.id in
  let inputs = Array.init n (fun _ -> Rng.int rng 2) in
  let advice = Gen.generate ~rng ~n ~faulty ~budget Gen.Uniform in
  let trace = Trace.create ~limit:5_000_000 () in
  let o = S.run_unauth ~trace ~t ~faulty ~inputs ~advice ~adversary () in
  (Observer.observe ~n trace, o, faulty)

let test_clean_run_no_suspects () =
  let verdict, _, _ = run_traced ~n:13 ~t:4 ~f:0 ~budget:5 () in
  Alcotest.(check (list int)) "nobody flagged" [] verdict.Observer.suspects

let test_passive_faults_undetectable () =
  let verdict, _, _ =
    run_traced ~adversary:Adversary.passive ~n:13 ~t:4 ~f:3 ~budget:0 ()
  in
  Alcotest.(check (list int)) "protocol-followers invisible" []
    verdict.Observer.suspects

let test_silent_faults_caught () =
  let verdict, _, _ =
    run_traced ~adversary:Adversary.silent ~n:13 ~t:4 ~f:3 ~budget:0 ()
  in
  Alcotest.(check (list int)) "all silent faults flagged" [ 0; 1; 2 ]
    verdict.Observer.suspects

let test_equivocators_caught () =
  let verdict, _, _ =
    run_traced ~adversary:(Adv.equivocate ~v0:0 ~v1:1) ~n:13 ~t:4 ~f:3 ~budget:0 ()
  in
  Alcotest.(check (list int)) "equivocators flagged" [ 0; 1; 2 ]
    verdict.Observer.suspects

(* The evidence list is assembled from a Hashtbl fold, whose visitation
   order is unspecified; the observer must sort it so that verdicts are
   reproducible values. Pin the order and the run-to-run stability. *)
let test_evidence_order_deterministic () =
  let observe () =
    let verdict, _, _ =
      run_traced ~adversary:Adversary.silent ~n:13 ~t:4 ~f:3 ~budget:0 ()
    in
    verdict
  in
  let v1 = observe () and v2 = observe () in
  Alcotest.(check (list (pair int string)))
    "evidence in (who, reason) order" (List.sort compare v1.Observer.evidence)
    v1.Observer.evidence;
  Alcotest.(check (list (pair int string)))
    "same run, same evidence" v1.Observer.evidence v2.Observer.evidence;
  Alcotest.(check (list int))
    "suspects are the evidence keys"
    (List.map fst v1.Observer.evidence)
    v1.Observer.suspects

let test_splitter_caught_via_degenerate_l () =
  (* With uninformed (all-honest) advice the faulty processes sit in the
     leader blocks, where the splitter's degenerate conciliation
     messages leave fingerprints. *)
  let n = 31 and t = 10 and f = 10 in
  let faulty = Array.init f Fun.id in
  let rng = Rng.create 12 in
  let inputs = Array.init n (fun _ -> Rng.int rng 2) in
  let advice = Array.make n (Advice.make n true) in
  let trace = Trace.create ~limit:5_000_000 () in
  let _ =
    S.run_unauth ~trace ~t ~faulty ~inputs ~advice
      ~adversary:(Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -r))
      ()
  in
  let verdict = Observer.observe ~n trace in
  Alcotest.(check bool) "splitter leaves fingerprints" true
    (verdict.Observer.suspects <> []);
  List.iter
    (fun who -> Alcotest.(check bool) "only faulty flagged" true (who < f))
    verdict.Observer.suspects

(* Soundness property: whatever the adversary does, only faulty
   processes are ever flagged. *)
let prop_soundness =
  qcheck ~count:30 ~name:"monitor never flags an honest process"
    QCheck2.Gen.(
      let* n = int_range 9 20 in
      let t = (n - 1) / 3 in
      let* f = int_range 0 t in
      let* which = int_range 0 4 in
      let* budget = int_range 0 n in
      return (n, t, f, which, budget))
    (fun (n, t, f, which, budget) ->
      let adversary =
        match which with
        | 0 -> Adversary.passive
        | 1 -> Adversary.silent
        | 2 -> Adv.equivocate ~v0:0 ~v1:1
        | 3 -> Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -r)
        | _ -> Adv.echo_chaos ~v0:0 ~v1:1
      in
      let verdict, _, faulty = run_traced ~adversary ~n ~t ~f ~budget () in
      List.for_all (fun who -> Array.mem who faulty) verdict.Observer.suspects)

let test_advice_of_verdict () =
  let advice =
    Observer.advice_of_verdict ~n:5 { Observer.suspects = [ 1; 3 ]; evidence = [] }
  in
  Alcotest.(check int) "one vector per process" 5 (Array.length advice);
  Alcotest.(check string) "suspects predicted faulty" "10101"
    (Fmt.str "%a" Advice.pp advice.(0))

let test_repeated_slots_improve () =
  let n = 21 and t = 6 and f = 6 in
  let faulty = Array.init f Fun.id in
  let rng = Rng.create 8 in
  let inputs = Array.init n (fun _ -> Rng.int rng 2) in
  let module RAdv = Bap_adversary.Strategies.Make (V) (Repeated.S.W) in
  let results =
    Repeated.run_slots ~slots:3 ~t ~faulty ~inputs
      ~adversary:(RAdv.equivocate ~v0:0 ~v1:1) ()
  in
  (match results with
  | [ s1; s2; s3 ] ->
    Alcotest.(check bool) "all slots agree" true
      (s1.Repeated.agreement && s2.Repeated.agreement && s3.Repeated.agreement);
    Alcotest.(check int) "slot 1 starts uninformed" (f * (n - f)) s1.Repeated.b;
    Alcotest.(check bool) "suspicion grows" true
      (List.length s2.Repeated.suspected >= List.length s1.Repeated.new_suspects);
    Alcotest.(check bool) "advice improves" true (s2.Repeated.b <= s1.Repeated.b)
  | _ -> Alcotest.fail "expected 3 slots");
  ()

module Reputation = Bap_monitor.Reputation

let test_reputation_threshold () =
  let rep = Reputation.create ~n:5 () in
  Alcotest.(check (list int)) "fresh tracker trusts everyone" [] (Reputation.suspects rep);
  Reputation.observe rep ~suspects:[ 2 ];
  Alcotest.(check (list int)) "one incident crosses 0.9" [ 2 ] (Reputation.suspects rep);
  Alcotest.(check (float 0.001)) "score" 1.0 (Reputation.score rep 2)

let test_reputation_decay_forgives () =
  let rep = Reputation.create ~decay:0.5 ~threshold:0.4 ~n:5 () in
  Reputation.observe rep ~suspects:[ 1 ];
  Alcotest.(check (list int)) "flagged" [ 1 ] (Reputation.suspects rep);
  (* Two clean executions halve the score twice: 1.0 -> 0.5 -> 0.25. *)
  Reputation.observe rep ~suspects:[];
  Alcotest.(check (list int)) "still flagged" [ 1 ] (Reputation.suspects rep);
  Reputation.observe rep ~suspects:[];
  Alcotest.(check (list int)) "forgiven" [] (Reputation.suspects rep)

let test_reputation_persistent_attacker () =
  let rep = Reputation.create ~decay:0.5 ~threshold:0.4 ~n:5 () in
  for _ = 1 to 10 do
    Reputation.observe rep ~suspects:[ 3 ]
  done;
  Alcotest.(check (list int)) "never forgiven while active" [ 3 ]
    (Reputation.suspects rep);
  Alcotest.(check bool) "score converges below 2" true (Reputation.score rep 3 < 2.0)

let test_reputation_advice () =
  let rep = Reputation.create ~n:4 () in
  Reputation.observe rep ~suspects:[ 0; 3 ];
  let advice = Reputation.advice rep in
  Alcotest.(check string) "advice vector" "0110" (Fmt.str "%a" Advice.pp advice.(1))

let test_repeated_with_reputation_and_slot_inputs () =
  let n = 21 and t = 6 and f = 6 in
  let faulty = Array.init f Fun.id in
  let rng = Rng.create 9 in
  let inputs_for_slot slot = Array.init n (fun i -> (i + slot) mod 2) in
  ignore rng;
  let module RAdv = Bap_adversary.Strategies.Make (V) (Repeated.S.W) in
  let reputation = Reputation.create ~n () in
  let results =
    Repeated.run_slots ~slots:3 ~t ~faulty ~inputs:(inputs_for_slot 1) ~inputs_for_slot
      ~reputation ~adversary:(RAdv.equivocate ~v0:0 ~v1:1) ()
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "agreement" true r.Repeated.agreement;
      Alcotest.(check bool) "decision present" true (Option.is_some r.Repeated.decision))
    results;
  (* The equivocators are flagged in slot 1 and stay flagged. *)
  match results with
  | _ :: s2 :: _ ->
    Alcotest.(check int) "reputation carries over" f (List.length s2.Repeated.suspected)
  | _ -> Alcotest.fail "expected 3 slots"

let suite =
  [
    Alcotest.test_case "clean run has no suspects" `Quick test_clean_run_no_suspects;
    Alcotest.test_case "passive faults are invisible" `Quick
      test_passive_faults_undetectable;
    Alcotest.test_case "silent faults caught" `Quick test_silent_faults_caught;
    Alcotest.test_case "equivocators caught" `Quick test_equivocators_caught;
    Alcotest.test_case "evidence order is deterministic" `Quick
      test_evidence_order_deterministic;
    Alcotest.test_case "splitter caught via degenerate leader sets" `Quick
      test_splitter_caught_via_degenerate_l;
    prop_soundness;
    Alcotest.test_case "advice from verdict" `Quick test_advice_of_verdict;
    Alcotest.test_case "repeated slots improve" `Quick test_repeated_slots_improve;
    Alcotest.test_case "reputation threshold" `Quick test_reputation_threshold;
    Alcotest.test_case "reputation decay forgives" `Quick test_reputation_decay_forgives;
    Alcotest.test_case "reputation tracks persistent attackers" `Quick
      test_reputation_persistent_attacker;
    Alcotest.test_case "reputation advice" `Quick test_reputation_advice;
    Alcotest.test_case "repeated slots with reputation" `Quick
      test_repeated_with_reputation_and_slot_inputs;
  ]
