let () =
  Alcotest.run "bap"
    [
      ("rng", Test_rng.suite);
      ("inbox", Test_inbox.suite);
      ("runtime", Test_runtime.suite);
      ("trace", Test_trace.suite);
      ("pki", Test_pki.suite);
      ("advice", Test_advice.suite);
      ("classification", Test_classification.suite);
      ("graded-unauth", Test_graded_unauth.suite);
      ("graded-core-set", Test_graded_core_set.suite);
      ("graded-auth", Test_graded_auth.suite);
      ("gradecast", Test_gradecast.suite);
      ("conciliate", Test_conciliate.suite);
      ("conciliate-graph", Test_conciliate_graph.suite);
      ("ba-class-unauth", Test_ba_class_unauth.suite);
      ("bb-committee", Test_bb_committee.suite);
      ("ba-class-auth", Test_ba_class_auth.suite);
      ("committee", Test_committee.suite);
      ("early-stopping", Test_early_stopping.suite);
      ("wrapper-unauth", Test_wrapper_unauth.suite);
      ("wrapper-auth", Test_wrapper_auth.suite);
      ("baselines", Test_baselines.suite);
      ("lowerbound", Test_lowerbound.suite);
      ("wire", Test_wire.suite);
      ("stats", Test_stats.suite);
      ("adversary", Test_adversary.suite);
      ("stack", Test_stack.suite);
      ("monitor", Test_monitor.suite);
      ("value-predictions", Test_value_predictions.suite);
      ("differential", Test_differential.suite);
      ("wire-fuzz", Test_wire_fuzz.suite);
      ("chaos", Test_chaos.suite);
      ("determinism", Test_determinism.suite);
      ("ablation", Test_ablation.suite);
      ("scaling", Test_scaling.suite);
    ]
