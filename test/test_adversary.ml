(* Unit tests for the adversary strategy library: each strategy rewrites
   exactly what it claims to rewrite. *)

open Helpers
module W = S.W

(* Run one round in which every process broadcasts [msg] and return what
   process [observer] received from [faulty_id]. *)
let observe ?(rounds = 1) ~adversary ~msg ~faulty_id ~observer () =
  let n = 6 in
  let outcome =
    run_protocol ~adversary ~n ~faulty:[| faulty_id |] (fun ctx ->
        let received = ref [] in
        for _ = 1 to rounds do
          let inbox = S.R.broadcast ctx msg in
          received := !received @ Bap_sim.Inbox.get inbox faulty_id
        done;
        !received)
  in
  List.assoc observer (S.R.honest_decisions outcome)

let test_advice_liar_rewrites_advice () =
  let n = 6 in
  let truth = Advice.ground_truth ~n ~faulty:[| 0 |] in
  let got =
    observe ~adversary:Adv.advice_liar ~msg:(W.Advice truth) ~faulty_id:0 ~observer:3 ()
  in
  match got with
  | [ W.Advice lie ] ->
    (* The lie claims the faulty process is honest and everyone else
       faulty. *)
    Alcotest.(check bool) "faulty claimed honest" true (Advice.get lie 0);
    for j = 1 to n - 1 do
      Alcotest.(check bool) "honest claimed faulty" false (Advice.get lie j)
    done
  | _ -> Alcotest.fail "expected exactly one advice message"

let test_advice_liar_keeps_other_messages () =
  let got =
    observe ~adversary:Adv.advice_liar ~msg:(W.Gc_init (3, 42)) ~faulty_id:0 ~observer:1 ()
  in
  Alcotest.(check bool) "gc message untouched" true (got = [ W.Gc_init (3, 42) ])

let test_equivocate_parity () =
  let even =
    observe ~adversary:(Adv.equivocate ~v0:7 ~v1:8) ~msg:(W.Gc_init (0, 1)) ~faulty_id:1
      ~observer:2 ()
  in
  let odd =
    observe ~adversary:(Adv.equivocate ~v0:7 ~v1:8) ~msg:(W.Gc_init (0, 1)) ~faulty_id:1
      ~observer:3 ()
  in
  Alcotest.(check bool) "even gets v0" true (even = [ W.Gc_init (0, 7) ]);
  Alcotest.(check bool) "odd gets v1" true (odd = [ W.Gc_init (0, 8) ])

let test_value_push () =
  let got =
    observe ~adversary:(Adv.value_push ~v:9) ~msg:(W.Gc_echo (5, 1)) ~faulty_id:2
      ~observer:4 ()
  in
  Alcotest.(check bool) "pushed" true (got = [ W.Gc_echo (5, 9) ])

let test_staggered_crash_schedule () =
  (* Two faulty processes, interval 2: the first goes silent after round
     2, the second after round 4. *)
  let n = 5 in
  let adversary = Adv.staggered_crash ~interval:2 in
  let outcome =
    run_protocol ~adversary ~n ~faulty:[| 0; 1 |] (fun ctx ->
        let seen = ref [] in
        for _ = 1 to 5 do
          let inbox = S.R.broadcast ctx (W.Gc_init (0, 1)) in
          seen :=
            ( List.length (Bap_sim.Inbox.get inbox 0),
              List.length (Bap_sim.Inbox.get inbox 1) )
            :: !seen
        done;
        List.rev !seen)
    |> S.R.honest_decisions
  in
  let per_round = List.assoc 2 outcome in
  Alcotest.(check (list (pair int int)))
    "silence schedule"
    [ (1, 1); (1, 1); (0, 1); (0, 1); (0, 0) ]
    per_round

let test_liar_then_silent () =
  let n = 6 in
  let truth = Advice.ground_truth ~n ~faulty:[| 0 |] in
  let adversary = Adv.advice_liar_then_silent in
  let outcome =
    run_protocol ~adversary ~n ~faulty:[| 0 |] (fun ctx ->
        let r1 = S.R.broadcast ctx (W.Advice truth) in
        let r2 = S.R.broadcast ctx (W.Gc_init (0, 1)) in
        ( List.length (Bap_sim.Inbox.get r1 0),
          List.length (Bap_sim.Inbox.get r2 0) ))
    |> S.R.honest_decisions
  in
  List.iter
    (fun (_, (lied, silent)) ->
      Alcotest.(check (pair int int)) "lie then silence" (1, 0) (lied, silent))
    outcome

let test_adaptive_splitter_never_completes_quorum () =
  (* With honest processes split 50/50, the splitter's votes must never
     let any value reach n - t at any receiver. *)
  let n = 12 and t = 3 in
  let adversary = Adv.adaptive_splitter ~n_minus_t:(n - t) ~junk:(fun r -> -r) in
  let outcome =
    run_protocol ~adversary ~n ~faulty:[| 0; 1; 2 |] (fun ctx ->
        let i = S.R.id ctx in
        let inbox = S.R.broadcast ctx (W.Gc_init (0, i mod 2)) in
        let votes =
          Bap_sim.Inbox.first inbox ~f:(function W.Gc_init (_, v) -> Some v | _ -> None)
        in
        let count v = Bap_sim.Inbox.count votes ~eq:Int.equal v in
        max (count 0) (count 1))
  in
  List.iter
    (fun (_, top) -> Alcotest.(check bool) "below quorum" true (top < n - t))
    (S.R.honest_decisions outcome)

let test_drop_to () =
  let adversary = Adversary.drop_to (fun r -> r = 3) in
  let to_victim =
    observe ~adversary ~msg:(W.Gc_init (0, 5)) ~faulty_id:0 ~observer:3 ()
  in
  let to_other =
    observe ~adversary ~msg:(W.Gc_init (0, 5)) ~faulty_id:0 ~observer:2 ()
  in
  Alcotest.(check int) "victim starved" 0 (List.length to_victim);
  Alcotest.(check int) "others served" 1 (List.length to_other)

let test_king_killer () =
  let got =
    observe ~adversary:Adv.king_killer ~msg:(W.King (0, 5)) ~faulty_id:0 ~observer:1 ()
  in
  let kept =
    observe ~adversary:Adv.king_killer ~msg:(W.Gc_init (0, 5)) ~faulty_id:0 ~observer:1 ()
  in
  Alcotest.(check int) "king dropped" 0 (List.length got);
  Alcotest.(check int) "other messages kept" 1 (List.length kept)

let test_vote_withholder () =
  let n = 6 in
  let pki = Bap_crypto.Pki.create ~n in
  let vote = W.Committee_vote (0, Bap_crypto.Pki.sign (Bap_crypto.Pki.key pki 0) "x") in
  let got = observe ~adversary:Adv.vote_withholder ~msg:vote ~faulty_id:0 ~observer:1 () in
  Alcotest.(check int) "vote withheld" 0 (List.length got)

let test_flip_flop () =
  let n = 5 in
  let outcome =
    run_protocol ~adversary:Adv.flip_flop ~n ~faulty:[| 0 |] (fun ctx ->
        let seen = ref [] in
        for _ = 1 to 4 do
          let inbox = S.R.broadcast ctx (W.Gc_init (0, 1)) in
          seen := List.length (Bap_sim.Inbox.get inbox 0) :: !seen
        done;
        List.rev !seen)
  in
  Alcotest.(check (list int)) "odd rounds silent" [ 0; 1; 0; 1 ]
    (List.assoc 1 (S.R.honest_decisions outcome))

let test_partition () =
  let adversary = Adv.partition ~targets:[ 3; 4 ] in
  let starved = observe ~adversary ~msg:(W.Gc_init (0, 1)) ~faulty_id:0 ~observer:3 () in
  let served = observe ~adversary ~msg:(W.Gc_init (0, 1)) ~faulty_id:0 ~observer:2 () in
  Alcotest.(check int) "target starved" 0 (List.length starved);
  Alcotest.(check int) "others served" 1 (List.length served)

let suite =
  [
    Alcotest.test_case "advice liar rewrites advice" `Quick test_advice_liar_rewrites_advice;
    Alcotest.test_case "advice liar keeps other messages" `Quick
      test_advice_liar_keeps_other_messages;
    Alcotest.test_case "equivocate splits by parity" `Quick test_equivocate_parity;
    Alcotest.test_case "value push" `Quick test_value_push;
    Alcotest.test_case "staggered crash schedule" `Quick test_staggered_crash_schedule;
    Alcotest.test_case "liar then silent" `Quick test_liar_then_silent;
    Alcotest.test_case "adaptive splitter stays below quorum" `Quick
      test_adaptive_splitter_never_completes_quorum;
    Alcotest.test_case "drop_to starves only the target" `Quick test_drop_to;
    Alcotest.test_case "king killer" `Quick test_king_killer;
    Alcotest.test_case "vote withholder" `Quick test_vote_withholder;
    Alcotest.test_case "flip flop alternates" `Quick test_flip_flop;
    Alcotest.test_case "partition" `Quick test_partition;
  ]
