(* Fuzzing the wire validators: random structural mutations of valid
   certificates and chains must always be rejected (no mutation may
   slip through), and the unmutated originals must always verify. *)

open Helpers
module W = S.W

let make_cert pki ~quorum ~member =
  {
    W.cc_member = member;
    cc_sigs =
      List.init quorum (fun j -> (j, Pki.sign (Pki.key pki j) (W.committee_payload member)));
  }

let make_chain pki ~quorum ~sender ~signers v =
  let cert = make_cert pki ~quorum ~member:sender in
  let root =
    let link_sig = Pki.sign (Pki.key pki sender) (W.chain_root_payload v cert) in
    W.Chain_root { value = v; cert; link_sig }
  in
  List.fold_left
    (fun chain signer ->
      let cert = make_cert pki ~quorum ~member:signer in
      let link_sig = Pki.sign (Pki.key pki signer) (W.chain_link_payload chain cert) in
      W.Chain_link { prev = chain; signer; cert; link_sig })
    root signers

(* Structural mutations of a chain; each must invalidate it. *)
let rec flip_root_value = function
  | W.Chain_root r -> W.Chain_root { r with value = r.value + 1 }
  | W.Chain_link l -> W.Chain_link { l with prev = flip_root_value l.prev }

let rec swap_root_cert pki ~quorum = function
  | W.Chain_root r ->
    W.Chain_root { r with cert = make_cert pki ~quorum ~member:(r.cert.W.cc_member + 1) }
  | W.Chain_link l -> W.Chain_link { l with prev = swap_root_cert pki ~quorum l.prev }

let mutate rng pki ~quorum chain =
  match Rng.int rng 5 with
  | 0 -> ("value flip", flip_root_value chain)
  | 1 -> ("foreign root cert", swap_root_cert pki ~quorum chain)
  | 2 -> (
    (* Re-sign the tip with the wrong key. *)
    match chain with
    | W.Chain_link l ->
      ( "wrong tip signer key",
        W.Chain_link
          {
            l with
            link_sig =
              Pki.sign (Pki.key pki ((l.signer + 1) mod Pki.n pki))
                (W.chain_link_payload l.prev l.cert);
          } )
    | W.Chain_root r ->
      ( "wrong root signer key",
        W.Chain_root
          {
            r with
            link_sig =
              Pki.sign
                (Pki.key pki ((r.cert.W.cc_member + 1) mod Pki.n pki))
                (W.chain_root_payload r.value r.cert);
          } ))
  | 3 -> (
    (* Truncate a certificate below quorum. *)
    match chain with
    | W.Chain_link l ->
      ( "underfull tip cert",
        W.Chain_link { l with cert = { l.cert with W.cc_sigs = List.tl l.cert.W.cc_sigs } } )
    | W.Chain_root r ->
      ( "underfull root cert",
        W.Chain_root { r with cert = { r.cert with W.cc_sigs = List.tl r.cert.W.cc_sigs } } ))
  | _ ->
    (* Extend with a duplicate signer (the chain's own starter): breaks
       the distinct-signers requirement whatever the chain shape. *)
    let sender = W.chain_sender chain in
    let cert = make_cert pki ~quorum ~member:sender in
    ( "duplicate signer",
      W.Chain_link
        {
          prev = chain;
          signer = sender;
          cert;
          link_sig = Pki.sign (Pki.key pki sender) (W.chain_link_payload chain cert);
        } )

let prop_mutations_rejected =
  qcheck ~count:100 ~name:"all chain mutations rejected"
    QCheck2.Gen.(
      let* seed = int_range 0 1_000_000 in
      let* len = int_range 1 4 in
      return (seed, len))
    (fun (seed, len) ->
      let rng = Rng.create seed in
      let n = 10 and quorum = 3 in
      let pki = Pki.create ~n in
      let sender = 0 in
      let signers = List.init (len - 1) (fun i -> i + 1) in
      let chain = make_chain pki ~quorum ~sender ~signers 42 in
      (* Sanity: the original is valid. *)
      if not (W.valid_chain pki ~quorum ~sender ~length:len chain) then false
      else begin
        let name, mutated = mutate rng pki ~quorum chain in
        let still_valid =
          W.valid_chain pki ~quorum ~sender ~length:(W.chain_length mutated) mutated
        in
        if still_valid then
          QCheck2.Test.fail_reportf "mutation %S accepted" name
        else true
      end)

let prop_ds_tamper_rejected =
  qcheck ~count:100 ~name:"DS chain value tampering rejected"
    QCheck2.Gen.(
      let* seed = int_range 0 1_000_000 in
      let* len = int_range 1 5 in
      let* v = int_range 0 100 in
      return (seed, len, v))
    (fun (_seed, len, v) ->
      let n = 8 in
      let pki = Pki.create ~n in
      let root =
        let link_sig = Pki.sign (Pki.key pki 0) (W.ds_root_payload ~sender:0 v) in
        W.Ds_root { sender = 0; value = v; link_sig }
      in
      let chain =
        List.fold_left
          (fun c signer ->
            let link_sig = Pki.sign (Pki.key pki signer) (W.ds_link_payload c) in
            W.Ds_link { prev = c; signer; link_sig })
          root
          (List.init (len - 1) (fun i -> i + 1))
      in
      let tampered =
        let rec go = function
          | W.Ds_root r -> W.Ds_root { r with value = r.value + 1 }
          | W.Ds_link l -> W.Ds_link { l with prev = go l.prev }
        in
        go chain
      in
      W.valid_ds_chain pki ~sender:0 ~length:len chain
      && not (W.valid_ds_chain pki ~sender:0 ~length:len tampered))

(* -- plain-message codec under corruption -- *)

module Injector = Bap_chaos.Injector.Make (V) (W)

(* Random signature-free messages (the domain of [encode_plain]). *)
let gen_plain rng =
  let value () = Rng.int rng 100 in
  let tag () = Rng.int rng 1000 in
  match Rng.int rng 5 with
  | 0 ->
    let bits = String.init (1 + Rng.int rng 12) (fun _ -> if Rng.bool rng then '1' else '0') in
    W.Advice (Option.get (Advice.of_bits bits))
  | 1 -> W.Gc_init (tag (), value ())
  | 2 -> W.Gc_echo (tag (), value ())
  | 3 -> W.King (tag (), value ())
  | _ -> W.Conc (tag (), value (), List.init (Rng.int rng 6) (fun _ -> Rng.int rng 50))

let prop_plain_roundtrip =
  qcheck ~count:200 ~name:"plain codec round-trips uncorrupted messages"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let m = gen_plain rng in
      match W.encode_plain m with
      | None -> false
      | Some bytes -> W.decode_plain bytes = Some m)

let prop_corruption_total =
  qcheck ~count:300 ~name:"corrupted payloads decode cleanly or drop, never raise"
    QCheck2.Gen.(
      let* seed = int_range 0 1_000_000 in
      let* bit = int_range 0 8192 in
      return (seed, bit))
    (fun (seed, bit) ->
      let rng = Rng.create seed in
      let m = gen_plain rng in
      match Injector.corrupt_msg ~bit m with
      | None -> true (* garbled beyond parsing: clean drop *)
      | Some m' ->
        (* Whatever survives the bit-flip must itself be a well-formed
           plain message: re-encoding and re-decoding is the identity. *)
        (match W.encode_plain m' with
        | None -> false
        | Some bytes -> W.decode_plain bytes = Some m'))

let prop_signed_always_drop =
  qcheck ~count:50 ~name:"corrupting signature-carrying messages always drops"
    QCheck2.Gen.(int_range 0 8192)
    (fun bit ->
      let pki = Pki.create ~n:4 in
      let m = W.Committee_vote (7, Pki.sign (Pki.key pki 0) "payload") in
      Injector.corrupt_msg ~bit m = None)

let suite =
  [
    prop_mutations_rejected;
    prop_ds_tamper_rejected;
    prop_plain_roundtrip;
    prop_corruption_total;
    prop_signed_always_drop;
  ]
