(* The telemetry spine (lib/telemetry): spans and metrics must never
   perturb results, logical traces must not depend on --jobs, and the
   JSONL round-trip through Analysis must reproduce the simulator's own
   accounting exactly. *)

module Tel = Bap_telemetry.Telemetry
module Analysis = Bap_telemetry.Analysis
module Json = Bap_telemetry.Json
module Pool = Bap_exec.Pool
module Plan = Bap_exec.Plan
module Engine = Bap_exec.Engine
module Rng = Bap_sim.Rng
module V = Bap_core.Value.Int
module S = Bap_core.Stack.Make (V)

(* Unique per call without reading the clock (same idiom as test_exec). *)
let temp_seq = Atomic.make 0

let temp_file ext =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "bap-tel-test-%d-%d%s" (Unix.getpid ())
       (Atomic.fetch_and_add temp_seq 1)
       ext)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* One small but non-trivial execution of the full unauth stack:
   7 processes, one faulty, perfect advice. *)
let small_run () =
  let n = 7 in
  let t = 2 in
  let faulty = [| 3 |] in
  let rng = Rng.create 11 in
  let inputs = Array.init n (fun _ -> Rng.int rng 2) in
  let advice = Bap_prediction.Gen.perfect ~n ~faulty in
  S.run_unauth ~t ~faulty ~inputs ~advice ~adversary:Bap_sim.Adversary.silent ()

let with_tel ?wall mode f =
  Tel.install ?wall mode;
  Fun.protect ~finally:Tel.shutdown f

(* ---------- off by default ---------- *)

let test_off_by_default () =
  Alcotest.(check (list reject)) "no sink, no events" [] (Tel.events ());
  let bare = small_run () in
  let traced = with_tel Tel.Memory (fun () -> small_run ()) in
  Alcotest.(check bool) "tracing does not change decisions" true
    (bare.S.R.decisions = traced.S.R.decisions);
  Alcotest.(check int) "tracing does not change rounds" bare.S.R.rounds traced.S.R.rounds;
  Alcotest.(check int) "tracing does not change msgs" bare.S.R.honest_sent
    traced.S.R.honest_sent;
  Alcotest.(check (list reject)) "shutdown clears events" [] (Tel.events ())

(* ---------- logical determinism ---------- *)

let canonical_lines evs = List.mapi (fun i e -> Tel.to_json_line ~tid:i e) evs

let test_trace_reproducible () =
  let a = with_tel Tel.Memory (fun () -> ignore (small_run ()); Tel.events ()) in
  let b = with_tel Tel.Memory (fun () -> ignore (small_run ()); Tel.events ()) in
  Alcotest.(check bool) "events non-empty" true (a <> []);
  Alcotest.(check (list string)) "identical logical trace" (canonical_lines a)
    (canonical_lines b)

(* The engine gives every executing cell its own track, so the canonical
   event stream must be a pure function of the plan, not of --jobs or
   the steal schedule. *)
let sim_plan () =
  let cell seed =
    Plan.row_cell (Printf.sprintf "seed=%d" seed) (fun () ->
        let o = small_run () in
        ignore o;
        let rng = Rng.create seed in
        [ string_of_int (Rng.int rng 1000) ])
  in
  {
    Plan.exp_id = "TEL";
    scope = "unit";
    cells = List.map cell (List.init 8 (fun i -> 500 + i));
    render = ignore;
  }

let sweep_events ~jobs =
  with_tel Tel.Memory (fun () ->
      Pool.with_pool ~jobs (fun pool -> ignore (Engine.run ~pool [ sim_plan () ]));
      Tel.events ())

let test_trace_jobs_independent () =
  let serial = sweep_events ~jobs:1 in
  let par = sweep_events ~jobs:4 in
  Alcotest.(check bool) "events non-empty" true (serial <> []);
  Alcotest.(check (list string)) "--jobs 1 trace = --jobs 4 trace"
    (canonical_lines serial) (canonical_lines par)

(* ---------- JSONL round-trip ---------- *)

let test_jsonl_roundtrip () =
  let path = temp_file ".jsonl" in
  Tel.install ~wall:true (Tel.Jsonl path);
  let o = small_run () in
  Tel.shutdown ();
  let evs = Analysis.load path in
  let s = Analysis.summarize evs in
  Alcotest.(check int) "one run" 1 s.Analysis.runs;
  Alcotest.(check int) "rounds survive the round-trip" o.S.R.rounds
    s.Analysis.total_rounds;
  Alcotest.(check int) "msgs survive the round-trip" o.S.R.honest_sent
    s.Analysis.total_msgs;
  Alcotest.(check int) "bits survive the round-trip" o.S.R.honest_bits
    s.Analysis.total_bits;
  Alcotest.(check int) "adversary msgs survive" o.S.R.adversary_sent
    s.Analysis.adversary_msgs;
  let phase_msgs =
    List.fold_left (fun acc (_, r) -> acc + r.Analysis.msgs) 0 s.Analysis.phases
  in
  Alcotest.(check int) "every message attributed to a phase" o.S.R.honest_sent
    phase_msgs;
  (* The human-facing report carries the same headline numbers. *)
  let txt = Analysis.summary evs in
  let contains needle hay =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Alcotest.(check bool) "summary states the message total" true
    (contains (Printf.sprintf "messages %d" o.S.R.honest_sent) txt);
  Sys.remove path

(* Stripping wall_us is the canonical preparation for comparing traces:
   it must remove every stamp and leave the logical stream loadable and
   unchanged. *)
let test_strip_wall () =
  let path = temp_file ".jsonl" in
  Tel.install ~wall:true (Tel.Jsonl path);
  ignore (small_run ());
  Tel.shutdown ();
  let text = read_file path in
  let stripped = Analysis.strip_wall text in
  let contains needle hay =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  Alcotest.(check bool) "wall stamps present before" true (contains "wall_us" text);
  Alcotest.(check bool) "wall stamps gone after" false (contains "wall_us" stripped);
  let path2 = temp_file ".jsonl" in
  write_file path2 stripped;
  let a = Analysis.summarize (Analysis.load path) in
  let b = Analysis.summarize (Analysis.load path2) in
  Alcotest.(check bool) "stripping preserves the logical stream" true (a = b);
  Sys.remove path;
  Sys.remove path2

(* ---------- metrics ---------- *)

let test_metrics_merge_hist () =
  let open Tel.Metrics in
  let h xs =
    List.fold_left
      (fun acc x ->
        {
          count = acc.count + 1;
          total = acc.total + x;
          min_v = min acc.min_v x;
          max_v = max acc.max_v x;
        })
      { count = 0; total = 0; min_v = max_int; max_v = min_int }
      xs
  in
  let a = h [ 3; 9; 1 ] and b = h [ 4 ] and c = h [ 7; 7 ] in
  let empty = h [] in
  Alcotest.(check bool) "associative" true
    (merge_hist (merge_hist a b) c = merge_hist a (merge_hist b c));
  Alcotest.(check bool) "commutative" true (merge_hist a b = merge_hist b a);
  Alcotest.(check bool) "empty is identity" true (merge_hist a empty = a);
  Alcotest.(check bool) "merge = concat" true (merge_hist a c = h [ 3; 9; 1; 7; 7 ])

let test_metrics_cross_domain () =
  with_tel Tel.Counters_only (fun () ->
      Pool.with_pool ~jobs:4 (fun pool ->
          let tasks =
            Array.init 100 (fun i () ->
                Tel.Metrics.counter "test.ticks" 1;
                Tel.Metrics.observe "test.size" i;
                Tel.Metrics.gauge_max "test.peak" i;
                i)
          in
          ignore (Pool.run_all pool tasks));
      let s = Tel.Metrics.snapshot () in
      Alcotest.(check (option int)) "counter sums across domains" (Some 100)
        (List.assoc_opt "test.ticks" s.Tel.Metrics.counters);
      Alcotest.(check (option int)) "gauge keeps the max" (Some 99)
        (List.assoc_opt "test.peak" s.Tel.Metrics.gauges);
      match List.assoc_opt "test.size" s.Tel.Metrics.hists with
      | None -> Alcotest.fail "histogram missing"
      | Some h ->
        Alcotest.(check int) "hist count" 100 h.Tel.Metrics.count;
        Alcotest.(check int) "hist total" (99 * 100 / 2) h.Tel.Metrics.total;
        Alcotest.(check int) "hist min" 0 h.Tel.Metrics.min_v;
        Alcotest.(check int) "hist max" 99 h.Tel.Metrics.max_v)

let jint j path =
  let v =
    List.fold_left (fun acc k -> Option.bind acc (Json.member k)) (Some j) path
  in
  match Json.to_int v with
  | Some n -> n
  | None -> Alcotest.failf "missing int field %s" (String.concat "." path)

let test_metrics_json_parses () =
  with_tel Tel.Counters_only (fun () ->
      Tel.Metrics.counter "a.b" 7;
      Tel.Metrics.observe "c.d" 3;
      let j = Json.parse (Tel.Metrics.to_json (Tel.Metrics.snapshot ())) in
      Alcotest.(check int) "counter round-trips" 7 (jint j [ "counters"; "a.b" ]);
      Alcotest.(check int) "hist count round-trips" 1 (jint j [ "hists"; "c.d"; "count" ]))

(* ---------- Engine.stats_json ---------- *)

let test_stats_json_parses () =
  let stats = Pool.with_pool ~jobs:2 (fun pool -> Engine.run ~pool [ sim_plan () ]) in
  let j = Json.parse (Engine.stats_json stats) in
  Alcotest.(check int) "total cells" 8 (jint j [ "total_cells" ]);
  Alcotest.(check int) "executed" 8 (jint j [ "executed" ]);
  Alcotest.(check int) "jobs" 2 (jint j [ "jobs" ]);
  match Json.to_list (Json.member "quarantined" j) with
  | Some [] -> ()
  | Some qs -> Alcotest.failf "unexpected quarantined cells: %d" (List.length qs)
  | None -> Alcotest.fail "quarantined field missing"

(* The signal exit path: a handler cannot take blocking locks, so the
   supervisor's SIGINT/SIGTERM route flushes through signal_shutdown.
   It must produce the same valid JSONL a normal shutdown writes when
   uncontended, and leave nothing installed behind it. *)
let test_signal_shutdown_flushes () =
  let path = temp_file ".jsonl" in
  Tel.install (Tel.Jsonl path);
  Tel.span ~cat:"t" ~name:"work" (fun () -> Tel.instant ~cat:"t" ~name:"mark" ());
  Tel.signal_shutdown ();
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Alcotest.(check int) "span begin/end + instant" 3 (List.length !lines);
  List.iter (fun l -> ignore (Json.parse l)) !lines;
  (* The state handoff happened: the regular shutdown is now a no-op
     and does not rewrite the file. *)
  Sys.remove path;
  Tel.shutdown ();
  Alcotest.(check bool) "no double flush" false (Sys.file_exists path)

let suite =
  [
    Alcotest.test_case "off by default, results identical" `Quick test_off_by_default;
    Alcotest.test_case "signal_shutdown: lock-free flush, single handoff" `Quick
      test_signal_shutdown_flushes;
    Alcotest.test_case "logical trace reproducible" `Quick test_trace_reproducible;
    Alcotest.test_case "trace independent of --jobs" `Quick test_trace_jobs_independent;
    Alcotest.test_case "JSONL round-trip matches simulator accounting" `Quick
      test_jsonl_roundtrip;
    Alcotest.test_case "strip_wall removes stamps only" `Quick test_strip_wall;
    Alcotest.test_case "histogram merge is exact" `Quick test_metrics_merge_hist;
    Alcotest.test_case "metrics merge across domains" `Quick test_metrics_cross_domain;
    Alcotest.test_case "metrics JSON parses" `Quick test_metrics_json_parses;
    Alcotest.test_case "stats JSON parses" `Quick test_stats_json_parses;
  ]
