module R = Bap_sim.Runtime.Make (struct
  type t = string
end)

module Adversary = Bap_sim.Adversary
module Inbox = Bap_sim.Inbox
module Trace = Bap_sim.Trace

let run ?(adversary = Adversary.passive) ?max_rounds ?trace ~n ~faulty body =
  R.run ?max_rounds ?trace ~n ~faulty ~adversary body

let test_broadcast_delivery () =
  let outcome =
    run ~n:4 ~faulty:[||] (fun ctx ->
        let inbox = R.broadcast ctx (Printf.sprintf "from-%d" (R.id ctx)) in
        Array.to_list (Array.map List.length (Inbox.to_array inbox)))
  in
  Array.iter
    (function
      | Some counts -> Alcotest.(check (list int)) "one msg from everyone" [ 1; 1; 1; 1 ] counts
      | None -> Alcotest.fail "no decision")
    outcome.R.decisions

let test_self_delivery_not_counted () =
  let outcome = run ~n:5 ~faulty:[||] (fun ctx -> ignore (R.broadcast ctx "x")) in
  Alcotest.(check int) "n*(n-1) messages" (5 * 4) outcome.R.honest_sent;
  Alcotest.(check (array int)) "received per process" (Array.make 5 4)
    outcome.R.honest_received

let test_lockstep_rounds () =
  let outcome =
    run ~n:3 ~faulty:[||] (fun ctx ->
        let r1 = R.round ctx in
        ignore (R.silent_round ctx);
        let r2 = R.round ctx in
        ignore (R.silent_round ctx);
        (r1, r2, R.round ctx))
  in
  Array.iter
    (function
      | Some (r1, r2, r3) ->
        Alcotest.(check (list int)) "rounds advance" [ 0; 1; 2 ] [ r1; r2; r3 ]
      | None -> Alcotest.fail "no decision")
    outcome.R.decisions;
  Alcotest.(check int) "two rounds total" 2 outcome.R.rounds

let test_immediate_return () =
  let outcome = run ~n:3 ~faulty:[||] (fun ctx -> R.id ctx * 10) in
  Alcotest.(check int) "zero rounds" 0 outcome.R.rounds;
  Alcotest.(check (array int)) "decided at round 0" [| 0; 0; 0 |] outcome.R.decision_round

let test_staggered_return () =
  let outcome =
    run ~n:4 ~faulty:[||] (fun ctx ->
        R.skip ctx (R.id ctx);
        R.id ctx)
  in
  Alcotest.(check int) "last return" 3 outcome.R.rounds;
  Alcotest.(check (array int)) "per-process return rounds" [| 0; 1; 2; 3 |]
    outcome.R.decision_round

let test_max_rounds () =
  Alcotest.check_raises "limit" (R.Round_limit_exceeded 5) (fun () ->
      ignore
        (run ~max_rounds:5 ~n:2 ~faulty:[||] (fun ctx ->
             while true do
               ignore (R.silent_round ctx)
             done)))

let test_silent_adversary_mutes () =
  let outcome =
    run ~n:4 ~faulty:[| 0 |] ~adversary:Adversary.silent (fun ctx ->
        let inbox = R.broadcast ctx "hi" in
        List.length (Inbox.get inbox 0))
  in
  List.iter
    (fun (_, from_faulty) -> Alcotest.(check int) "nothing from faulty" 0 from_faulty)
    (R.honest_decisions outcome);
  Alcotest.(check int) "adversary sent nothing" 0 outcome.R.adversary_sent

let test_passive_adversary_follows () =
  let outcome =
    run ~n:4 ~faulty:[| 0 |] ~adversary:Adversary.passive (fun ctx ->
        let inbox = R.broadcast ctx "hi" in
        List.length (Inbox.get inbox 0))
  in
  List.iter
    (fun (_, from_faulty) -> Alcotest.(check int) "puppet message arrives" 1 from_faulty)
    (R.honest_decisions outcome)

let test_inject_validation () =
  let bad =
    Adversary.custom "bad" (fun ~n:_ ~faulty:_ _view ->
        [ { Adversary.src = 1; dst = 0; payload = "forged" } ])
  in
  Alcotest.check_raises "non-faulty source rejected"
    (Invalid_argument "Runtime.run: adversary injected from non-faulty source 1 (round 1)")
    (fun () ->
      ignore (run ~n:3 ~faulty:[| 2 |] ~adversary:bad (fun ctx -> R.silent_round ctx)))

let test_inject_src_out_of_range () =
  let bad =
    Adversary.custom "bad" (fun ~n:_ ~faulty:_ _view ->
        [ { Adversary.src = 7; dst = 0; payload = "forged" } ])
  in
  Alcotest.check_raises "out-of-range source rejected"
    (Invalid_argument
       "Runtime.run: adversary injected from out-of-range source 7 (round 1)")
    (fun () ->
      ignore (run ~n:3 ~faulty:[| 2 |] ~adversary:bad (fun ctx -> R.silent_round ctx)))

let test_inject_dst_out_of_range () =
  (* Previously dropped silently; now a loud error. *)
  let bad =
    Adversary.custom "bad" (fun ~n:_ ~faulty:_ _view ->
        [ { Adversary.src = 2; dst = -1; payload = "lost" } ])
  in
  Alcotest.check_raises "out-of-range destination rejected"
    (Invalid_argument
       "Runtime.run: adversary injected to out-of-range destination -1 (round 1)")
    (fun () ->
      ignore (run ~n:3 ~faulty:[| 2 |] ~adversary:bad (fun ctx -> R.silent_round ctx)))

let test_network_hook () =
  (* Drop edge 0 -> 1 in round 1, duplicate edge 0 -> 2; self-deliveries
     and other edges untouched. Metrics must reflect post-hook traffic. *)
  let network ~round ~src ~dst msgs =
    if round = 1 && src = 0 && dst = 1 then []
    else if round = 1 && src = 0 && dst = 2 then msgs @ msgs
    else msgs
  in
  let outcome =
    R.run ~network ~n:3 ~faulty:[||] ~adversary:Adversary.passive (fun ctx ->
        let inbox = R.broadcast ctx "x" in
        List.length (Inbox.get inbox 0))
  in
  Alcotest.(check (list (pair int int)))
    "per-process deliveries from p0"
    [ (0, 1); (1, 0); (2, 2) ]
    (R.honest_decisions outcome);
  (* p0: 1 (to p2 doubled... dropped to p1) -> 0 + 2 = 2; p1, p2: 2 each. *)
  Alcotest.(check int) "accounting is post-hook" 6 outcome.R.honest_sent

let test_compose_adversaries () =
  (* First stage rewrites, second stage drops to one recipient: both
     effects visible, applied left to right. *)
  let upcase =
    Adversary.rewrite "upcase" (fun _view ~src:_ ~dst:_ m ->
        [ String.uppercase_ascii m ])
  in
  let drop_to_0 =
    Adversary.rewrite "drop0" (fun _view ~src:_ ~dst m -> if dst = 0 then [] else [ m ])
  in
  let outcome =
    run ~n:3 ~faulty:[| 1 |]
      ~adversary:(Adversary.compose [ upcase; drop_to_0 ])
      (fun ctx ->
        let inbox = R.broadcast ctx "hi" in
        Inbox.get inbox 1)
  in
  Alcotest.(check (list string)) "dropped for p0" []
    (List.assoc 0 (R.honest_decisions outcome));
  Alcotest.(check (list string)) "rewritten for p2" [ "HI" ]
    (List.assoc 2 (R.honest_decisions outcome))

let test_inject_delivery () =
  let chatty =
    Adversary.custom "chatty" (fun ~n:_ ~faulty:_ view ->
        if view.Adversary.round = 1 then
          [ { Adversary.src = 2; dst = 0; payload = "boo" } ]
        else [])
  in
  let outcome =
    run ~n:3 ~faulty:[| 2 |] ~adversary:chatty (fun ctx ->
        let inbox = R.silent_round ctx in
        Inbox.get inbox 2)
  in
  Alcotest.(check (list string)) "victim got it"
    [ "boo" ]
    (List.assoc 0 (R.honest_decisions outcome));
  Alcotest.(check (list string)) "bystander did not" []
    (List.assoc 1 (R.honest_decisions outcome));
  Alcotest.(check int) "counted as adversary msg" 1 outcome.R.adversary_sent

let test_rewrite_adversary () =
  let flip = Adversary.rewrite "flip" (fun _view ~src:_ ~dst:_ _m -> [ "flipped" ]) in
  let outcome =
    run ~n:3 ~faulty:[| 1 |] ~adversary:flip (fun ctx ->
        let inbox = R.broadcast ctx "original" in
        Inbox.get inbox 1)
  in
  Alcotest.(check (list string)) "rewritten" [ "flipped" ]
    (List.assoc 0 (R.honest_decisions outcome))

let test_filter_in_only_faulty () =
  let deaf =
    {
      Adversary.name = "deaf-faulty";
      make =
        (fun ~n:_ ~faulty:_ ->
          Adversary.handlers ~filter_in:(fun _view ~dst:_ ~src:_ _msgs -> []) ());
    }
  in
  let outcome =
    run ~n:3 ~faulty:[| 1 |] ~adversary:deaf (fun ctx ->
        let inbox = R.broadcast ctx "ping" in
        Array.fold_left (fun acc l -> acc + List.length l) 0 (Inbox.to_array inbox))
  in
  (* Honest processes hear everyone (incl. the puppet, whose outbox is
     untouched); the puppet itself hears nothing. *)
  List.iter
    (fun (_, total) -> Alcotest.(check int) "honest hear 3" 3 total)
    (R.honest_decisions outcome);
  Alcotest.(check (option int)) "puppet heard nothing" (Some 0) outcome.R.decisions.(1)

let test_rushing_adversary_sees_current_round () =
  (* The adversary echoes back the exact message an honest process sends
     in the same round: only possible for a rushing adversary. *)
  let mirror =
    Adversary.custom "mirror" (fun ~n:_ ~faulty:_ view ->
        match view.Adversary.honest_out ~sender:0 ~recipient:1 with
        | m :: _ -> [ { Adversary.src = 2; dst = 1; payload = "saw:" ^ m } ]
        | [] -> [])
  in
  let outcome =
    run ~n:3 ~faulty:[| 2 |] ~adversary:mirror (fun ctx ->
        let inbox = R.broadcast ctx (Printf.sprintf "r%d-p%d" (R.round ctx + 1) (R.id ctx)) in
        Inbox.get inbox 2)
  in
  Alcotest.(check (list string)) "echo of same-round message" [ "saw:r1-p0" ]
    (List.assoc 1 (R.honest_decisions outcome))

let test_per_round_counts () =
  let outcome =
    run ~n:3 ~faulty:[||] (fun ctx ->
        ignore (R.broadcast ctx "a");
        ignore (R.silent_round ctx);
        ignore (R.broadcast ctx "b"))
  in
  Alcotest.(check (array int)) "per round" [| 6; 0; 6 |] outcome.R.honest_per_round;
  Alcotest.(check int) "total" 12 outcome.R.honest_sent

let test_send_to_sparse () =
  let outcome =
    run ~n:4 ~faulty:[||] (fun ctx ->
        let inbox =
          if R.id ctx = 0 then R.send_to ctx [ (2, "direct"); (2, "second") ]
          else R.silent_round ctx
        in
        List.length (Inbox.get inbox 0))
  in
  Alcotest.(check (option int)) "recipient got both" (Some 2) outcome.R.decisions.(2);
  Alcotest.(check (option int)) "others got none" (Some 0) outcome.R.decisions.(1);
  Alcotest.(check int) "two messages" 2 outcome.R.honest_sent

let test_trace_records () =
  let trace = Trace.create () in
  ignore
    (run ~n:2 ~faulty:[||] ~trace (fun ctx -> ignore (R.broadcast ctx "x")));
  let events = Trace.events trace in
  let rounds = List.length (List.filter (function Trace.Round_begin _ -> true | _ -> false) events) in
  let delivers = List.length (List.filter (function Trace.Deliver _ -> true | _ -> false) events) in
  let decides = List.length (List.filter (function Trace.Decide _ -> true | _ -> false) events) in
  Alcotest.(check int) "one round" 1 rounds;
  Alcotest.(check int) "four deliveries (incl self)" 4 delivers;
  Alcotest.(check int) "two decisions" 2 decides

let test_trace_round_ends_balanced () =
  let trace = Trace.create () in
  ignore
    (run ~n:3 ~faulty:[||] ~trace (fun ctx ->
         ignore (R.broadcast ctx "a");
         ignore (R.broadcast ctx "b")));
  let events = Trace.events trace in
  let count p = List.length (List.filter p events) in
  let begins = count (function Trace.Round_begin _ -> true | _ -> false) in
  let ends = count (function Trace.Round_end _ -> true | _ -> false) in
  Alcotest.(check int) "two rounds" 2 begins;
  Alcotest.(check int) "every round closed" begins ends

let test_honest_decisions_excludes_faulty () =
  let outcome = run ~n:4 ~faulty:[| 1; 3 |] (fun ctx -> R.id ctx) in
  Alcotest.(check (list (pair int int))) "only honest" [ (0, 0); (2, 2) ]
    (R.honest_decisions outcome)

let test_faulty_id_out_of_range () =
  Alcotest.check_raises "checked" (Invalid_argument "Runtime.run: faulty id out of range")
    (fun () -> ignore (run ~n:3 ~faulty:[| 5 |] (fun _ -> ())))

let suite =
  [
    Alcotest.test_case "broadcast delivers to everyone" `Quick test_broadcast_delivery;
    Alcotest.test_case "self delivery not counted" `Quick test_self_delivery_not_counted;
    Alcotest.test_case "lockstep round numbering" `Quick test_lockstep_rounds;
    Alcotest.test_case "immediate return" `Quick test_immediate_return;
    Alcotest.test_case "staggered returns" `Quick test_staggered_return;
    Alcotest.test_case "round limit enforced" `Quick test_max_rounds;
    Alcotest.test_case "silent adversary mutes puppets" `Quick test_silent_adversary_mutes;
    Alcotest.test_case "passive adversary follows protocol" `Quick
      test_passive_adversary_follows;
    Alcotest.test_case "inject from honest source rejected" `Quick test_inject_validation;
    Alcotest.test_case "inject from out-of-range source rejected" `Quick
      test_inject_src_out_of_range;
    Alcotest.test_case "inject to out-of-range destination rejected" `Quick
      test_inject_dst_out_of_range;
    Alcotest.test_case "network hook perturbs edges" `Quick test_network_hook;
    Alcotest.test_case "compose chains adversaries" `Quick test_compose_adversaries;
    Alcotest.test_case "inject delivers to target only" `Quick test_inject_delivery;
    Alcotest.test_case "rewrite adversary transforms" `Quick test_rewrite_adversary;
    Alcotest.test_case "filter_in affects only faulty inboxes" `Quick
      test_filter_in_only_faulty;
    Alcotest.test_case "adversary is rushing" `Quick test_rushing_adversary_sees_current_round;
    Alcotest.test_case "per-round message counts" `Quick test_per_round_counts;
    Alcotest.test_case "sparse send_to" `Quick test_send_to_sparse;
    Alcotest.test_case "trace records events" `Quick test_trace_records;
    Alcotest.test_case "trace round begins/ends balanced" `Quick
      test_trace_round_ends_balanced;
    Alcotest.test_case "honest_decisions excludes faulty" `Quick
      test_honest_decisions_excludes_faulty;
    Alcotest.test_case "faulty ids validated" `Quick test_faulty_id_out_of_range;
  ]
