(* Differential tests for the scalable core: the counted fast path must
   be byte-identical to the concrete per-pair reference engine — same
   decisions, same rounds, and the exact same message/bit accounting —
   across all four protocol families, under both the curated adversary
   pool and randomly generated chaos schedules. Plus regression pins for
   the concrete path's arena reuse and injection delivery order. *)

open Helpers
module Gen = Bap_prediction.Gen
module Inbox = Bap_sim.Inbox
module Schedule = Bap_chaos.Schedule
module Inj = Bap_chaos.Injector.Make (V) (S.W)
module Ds = Bap_baselines.Dolev_strong.Make (V) (S.W) (S.R)
module Pk = Bap_baselines.Phase_king.Make (V) (S.W) (S.R)

let outcomes_equal (a : 'r S.R.outcome) (b : 'r S.R.outcome) =
  a.S.R.n = b.S.R.n
  && a.S.R.faulty = b.S.R.faulty
  && a.S.R.decisions = b.S.R.decisions
  && a.S.R.decision_round = b.S.R.decision_round
  && a.S.R.rounds = b.S.R.rounds
  && a.S.R.honest_sent = b.S.R.honest_sent
  && a.S.R.honest_per_round = b.S.R.honest_per_round
  && a.S.R.honest_received = b.S.R.honest_received
  && a.S.R.honest_bits = b.S.R.honest_bits
  && a.S.R.adversary_sent = b.S.R.adversary_sent

let unauth_adversaries =
  [|
    (fun _rng -> Adversary.passive);
    (fun _rng -> Adversary.silent);
    (fun _rng -> Adversary.silent_after 3);
    (fun _rng -> Adv.equivocate ~v0:0 ~v1:1);
    (fun _rng -> Adv.value_push ~v:1);
    (fun _rng -> Adv.advice_liar);
    (fun _rng -> Adv.echo_chaos ~v0:0 ~v1:1);
    (fun _rng -> Adv.staggered_crash ~interval:5);
    (fun _rng -> Adv.king_killer);
    (fun _rng -> Adv.flip_flop);
    (fun rng -> Adv.adaptive_splitter ~n_minus_t:(4 + Rng.int rng 8) ~junk:(fun r -> -r));
  |]

let placements = [| Gen.Uniform; Gen.Focused; Gen.Scattered; Gen.All_wrong |]

let diff_gen =
  QCheck2.Gen.(
    let* n = int_range 7 13 in
    let t = (n - 1) / 3 in
    let* f = int_range 0 t in
    let* seed = int_range 0 1_000_000 in
    let* adv = int_range 0 (Array.length unauth_adversaries - 1) in
    let* placement = int_range 0 (Array.length placements - 1) in
    let* budget = int_range 0 (2 * n) in
    return (n, t, f, seed, adv, placement, budget))

let setup (n, _t, f, seed, _adv, placement, budget) =
  let rng = Rng.create seed in
  let faulty = random_faulty rng ~n ~f in
  let advice = Gen.generate ~rng ~n ~faulty ~budget placements.(placement) in
  let inputs = Array.init n (fun _ -> Rng.int rng 3) in
  (rng, faulty, advice, inputs)

let prop_wrapper_unauth =
  qcheck ~count:60 ~name:"wrapper-unauth: counted == concrete" diff_gen
    (fun ((n, t, _, _, adv, _, _) as cfg) ->
      let rng, faulty, advice, inputs = setup cfg in
      (* Built once: strategies like adaptive_splitter draw their
         parameters from the rng, so building twice would hand the two
         engines different adversaries. *)
      let adversary = unauth_adversaries.(adv) rng in
      let counted = S.run_unauth ~adversary ~t ~faulty ~inputs ~advice () in
      let concrete =
        S.run_unauth ~adversary ~mode:`Concrete ~t ~faulty ~inputs ~advice ()
      in
      ignore n;
      outcomes_equal counted concrete)

let prop_wrapper_auth =
  qcheck ~count:30 ~name:"wrapper-auth: counted == concrete" diff_gen
    (fun ((n, _, _, _, adv, _, _) as cfg) ->
      let rng, faulty, advice, inputs = setup cfg in
      let t = (n - 1) / 2 in
      let adversary =
        if adv mod 2 = 0 then fun pki -> Adv.prediction_attacker_auth ~pki ~v0:0 ~v1:1
        else fun _pki -> unauth_adversaries.(adv) rng
      in
      let counted, _ = S.run_auth ~adversary ~t ~faulty ~inputs ~advice () in
      let concrete, _ =
        S.run_auth ~adversary ~mode:`Concrete ~t ~faulty ~inputs ~advice ()
      in
      outcomes_equal counted concrete)

let run_baseline ?mode ~n ~faulty ~adversary body =
  S.R.run ?mode ~msg_size:S.W.size_bits ~group_key:S.W.encode_plain ~n ~faulty
    ~adversary body

let prop_dolev_strong =
  qcheck ~count:30 ~name:"dolev-strong: counted == concrete" diff_gen
    (fun ((n, _, _, _, adv, _, _) as cfg) ->
      let rng, faulty, _, inputs = setup cfg in
      let t = (n - 1) / 2 in
      let adversary = unauth_adversaries.(adv) rng in
      let body pki ctx =
        let i = S.R.id ctx in
        Ds.agree ctx ~pki ~key:(Pki.key pki i) ~t ~tag:0 inputs.(i)
      in
      let counted =
        let pki = Pki.create ~n in
        run_baseline ~n ~faulty ~adversary (body pki)
      in
      let concrete =
        let pki = Pki.create ~n in
        run_baseline ~mode:`Concrete ~n ~faulty ~adversary (body pki)
      in
      outcomes_equal counted concrete)

let prop_phase_king =
  qcheck ~count:30 ~name:"phase-king: counted == concrete" diff_gen
    (fun ((n, t, _, _, adv, _, _) as cfg) ->
      let rng, faulty, _, inputs = setup cfg in
      let adversary = unauth_adversaries.(adv) rng in
      let body ctx =
        let gc ctx ~tag v = S.Graded_unauth.run ctx ~t ~tag v in
        Pk.run ctx ~gc ~t ~base_tag:0 inputs.(S.R.id ctx)
      in
      let counted = run_baseline ~n ~faulty ~adversary body in
      let concrete = run_baseline ~mode:`Concrete ~n ~faulty ~adversary body in
      outcomes_equal counted concrete)

let prop_chaos_schedules =
  qcheck ~count:40 ~name:"fuzzed chaos schedules: counted == concrete"
    QCheck2.Gen.(
      let* n = int_range 7 13 in
      let t = (n - 1) / 3 in
      let* f = int_range 1 (max 1 t) in
      let* seed = int_range 0 1_000_000 in
      let* count = int_range 1 8 in
      return (n, t, f, seed, count))
    (fun (n, t, f, seed, count) ->
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f in
      let advice = Gen.perfect ~n ~faulty in
      let inputs = Array.init n (fun _ -> Rng.int rng 3) in
      let schedule = Schedule.gen rng ~n ~faulty ~rounds:40 ~count in
      let adversary = Inj.adversary ~mutant:Bap_chaos.Fuzz.mutant schedule in
      let counted = S.run_unauth ~adversary ~t ~faulty ~inputs ~advice () in
      let concrete =
        S.run_unauth ~adversary ~mode:`Concrete ~t ~faulty ~inputs ~advice ()
      in
      outcomes_equal counted concrete)

(* -- arena reuse and delivery-order regression pins -- *)

module IR = Bap_sim.Runtime.Make (struct
  type t = int
end)

(* Messages are tagged with their round; if a cleared arena (or a reused
   counted-path buffer) ever leaked, a stale tag would show up. *)
let no_leak_body rounds ctx =
  let me = IR.id ctx in
  let ok = ref true in
  for r = 1 to rounds do
    let inbox =
      if (me + r) mod 3 = 0 then IR.broadcast ctx ((r * 1000) + me)
      else IR.silent_round ctx
    in
    Inbox.iter inbox ~f:(List.iter (fun m -> if m / 1000 <> r then ok := false))
  done;
  !ok

let leak_gen =
  QCheck2.Gen.(
    let* n = int_range 2 9 in
    let* f = int_range 0 (max 0 ((n - 1) / 3)) in
    let* seed = int_range 0 1_000_000 in
    let* concrete = bool in
    return (n, f, seed, concrete))

let prop_arena_no_leak =
  qcheck ~count:80 ~name:"arena reuse never leaks a previous round" leak_gen
    (fun (n, f, seed, concrete) ->
      let rng = Rng.create seed in
      let faulty = random_faulty rng ~n ~f in
      let mode = if concrete then `Concrete else `Auto in
      let outcome =
        IR.run ~mode ~n ~faulty ~adversary:Bap_sim.Adversary.passive
          (no_leak_body 12)
      in
      List.for_all snd (IR.honest_decisions outcome))

let inject_order_adversary =
  {
    Bap_sim.Adversary.name = "ordered-inject";
    make =
      (fun ~n:_ ~faulty:_ ->
        Bap_sim.Adversary.handlers
          ~inject:(fun view ->
            if view.Bap_sim.Adversary.round = 1 then
              [
                { Bap_sim.Adversary.src = 2; dst = 0; payload = 10 };
                { Bap_sim.Adversary.src = 2; dst = 0; payload = 11 };
                { Bap_sim.Adversary.src = 3; dst = 0; payload = 20 };
                { Bap_sim.Adversary.src = 2; dst = 0; payload = 12 };
              ]
            else [])
          ());
  }

let test_inject_order mode () =
  (* The puppets' own broadcasts come first, then the injected messages
     in injection order — pinned so D003-style reordering can't creep
     in. *)
  let outcome =
    IR.run ~mode ~n:5 ~faulty:[| 2; 3 |] ~adversary:inject_order_adversary
      (fun ctx ->
        let inbox = IR.broadcast ctx (100 + IR.id ctx) in
        (Inbox.get inbox 2, Inbox.get inbox 3))
  in
  let from2, from3 =
    match outcome.IR.decisions.(0) with Some d -> d | None -> Alcotest.fail "no decision"
  in
  Alcotest.(check (list int)) "broadcast then injects, in order" [ 102; 10; 11; 12 ] from2;
  Alcotest.(check (list int)) "second faulty sender" [ 103; 20 ] from3;
  let from2', _ =
    match outcome.IR.decisions.(1) with Some d -> d | None -> Alcotest.fail "no decision"
  in
  Alcotest.(check (list int)) "bystander got only the broadcast" [ 102 ] from2'

let test_counted_shares_inbox () =
  (* Sanity: with pure broadcasts and no adversary the counted engine
     groups everything — agreement-relevant reads still see all n
     senders. *)
  let outcome =
    IR.run ~n:6 ~faulty:[||] ~adversary:Bap_sim.Adversary.passive (fun ctx ->
        let inbox = IR.broadcast ctx 7 in
        let votes = Inbox.first inbox ~f:(fun m -> Some m) in
        (Inbox.count votes ~eq:Int.equal 7, Inbox.senders votes))
  in
  Array.iter
    (function
      | Some (c, senders) ->
        Alcotest.(check int) "all senders counted" 6 c;
        Alcotest.(check (list int)) "ascending senders" [ 0; 1; 2; 3; 4; 5 ] senders
      | None -> Alcotest.fail "no decision")
    outcome.IR.decisions

let suite =
  [
    prop_wrapper_unauth;
    prop_wrapper_auth;
    prop_dolev_strong;
    prop_phase_king;
    prop_chaos_schedules;
    prop_arena_no_leak;
    Alcotest.test_case "inject order pinned (concrete)" `Quick
      (test_inject_order `Concrete);
    Alcotest.test_case "inject order pinned (counted)" `Quick (test_inject_order `Auto);
    Alcotest.test_case "counted shares one inbox" `Quick test_counted_shares_inbox;
  ]
