lib/crypto/pki.mli: Fmt
