lib/crypto/pki.ml: Encode Fmt Int String
