lib/crypto/encode.mli:
