lib/crypto/encode.ml: List String
