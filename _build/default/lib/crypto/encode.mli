(** Canonical, injective string encodings for signed payloads.

    Signatures bind a process to a byte string, so every protocol payload
    must be serialised injectively: distinct structured values must map to
    distinct strings, otherwise a signature on one value would verify for
    another. These combinators length-prefix every field, which guarantees
    injectivity by construction. *)

val int : int -> string
val str : string -> string
val pair : string -> string -> string
val triple : string -> string -> string -> string
val list : string list -> string
val tagged : string -> string -> string
(** [tagged tag body] distinguishes payload kinds; two [tagged] values are
    equal only if both tag and body are. *)
