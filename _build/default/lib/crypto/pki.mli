(** Simulated public-key infrastructure with unforgeable signatures.

    The paper (Section 8.1) assumes each process can sign messages and
    every process can verify every signature, with forgery impossible for
    computationally bounded adversaries. We realise exactly that property
    {e within the API}: a signature value can only be produced by calling
    {!sign} with the signer's {!key}, both types are abstract, and keys are
    handed out by the harness — honest keys to honest protocol code, faulty
    keys to the adversary. Each {!create} mints a fresh key universe, so
    signatures never replay across executions. *)

type t
(** One execution's PKI. *)

type key
(** Signing capability for a single process. *)

type signature

val create : n:int -> t
(** Fresh PKI for processes [0 .. n-1]. *)

val n : t -> int

val key : t -> int -> key
(** [key t i] is process [i]'s signing key. The harness must give this
    only to process [i]'s protocol code (or to the adversary when [i] is
    faulty). *)

val signer_of_key : key -> int

val sign : key -> string -> signature
(** Sign a canonical payload (see {!Encode}). *)

val signer : signature -> int
(** Claimed signer; trustworthy only in combination with {!verify}. *)

val verify : t -> signer:int -> payload:string -> signature -> bool
(** True iff the signature was produced by [sign (key t signer) payload]
    under this very PKI. *)

val encode : signature -> string
(** Injective encoding of a signature value, for embedding inside other
    signed payloads (e.g. signature chains). Not a constructor: decoding
    is deliberately not provided. *)

val equal : signature -> signature -> bool
val compare : signature -> signature -> int
val pp_signature : signature Fmt.t
