(* Every field is rendered as <decimal length> ':' <bytes>, netstring
   style, so concatenation is unambiguous. *)
let field s = string_of_int (String.length s) ^ ":" ^ s

let str s = field s
let int i = field (string_of_int i)
let pair a b = field a ^ field b
let triple a b c = field a ^ field b ^ field c
let list items = field (string_of_int (List.length items)) ^ String.concat "" (List.map field items)
let tagged tag body = pair tag body
