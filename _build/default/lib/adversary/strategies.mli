(** Byzantine attack strategies against the protocol stack's wire format.

    All strategies are rushing (they see the honest messages of the
    current round before fixing their own) and compose with the generic
    adversaries of {!Bap_sim.Adversary} (passive, silent, crash
    variants). Every strategy preserves the runtime's authenticated-
    channel discipline: faulty processes can only speak as themselves. *)

module Make (V : Bap_core.Value.S) (W : Bap_core.Wire.S with type value = V.t) : sig
  type t = W.t Bap_sim.Adversary.t

  val equivocate : v0:V.t -> v1:V.t -> t
  (** Replace the value of every value-carrying message with [v0]
      towards even recipients and [v1] towards odd ones: the classic
      split attack on threshold counting. *)

  val value_push : v:V.t -> t
  (** Always vote/echo the fixed value [v], trying to drag agreement to
      it; strong unanimity must resist it. *)

  val advice_liar : t
  (** Behave honestly except in the advice round, where every honest
      process is declared faulty and every faulty one honest. *)

  val advice_liar_then_silent : t
  (** {!advice_liar} in round 1, then total silence: the worst pure
      attack on the classification machinery. *)

  val prediction_attacker : v0:V.t -> v1:V.t -> t
  (** {!advice_liar} in round 1, then per-recipient equivocation on
      every value message, with conciliation messages revealed to half
      the processes only. *)

  val prediction_attacker_auth : pki:Bap_crypto.Pki.t -> v0:V.t -> v1:V.t -> t
  (** Authenticated-stack variant: additionally deals conflicting signed
      gradecast values, equivocates committee-broadcast chain roots
      (re-signed for real with the faulty members' keys) and splits the
      final announcements. Needs the execution's PKI to sign. *)

  val adaptive_splitter : n_minus_t:int -> junk:(int -> V.t) -> t
  (** The strongest implemented adversary for the unauthenticated stack:
      counts the honest votes of each round and adds just enough faulty
      votes for the minority value to keep every count below the
      [n_minus_t] quorum; stays silent in core-set rounds; and reveals a
      fresh below-domain value [junk round] to half the processes in
      conciliation rounds, declaring a degenerate leader set. [junk]
      must be injective and below the honest value domain in
      [V.compare] order. *)

  val echo_chaos : v0:V.t -> v1:V.t -> t
  (** Scan the instance tags honest processes use this round and inject
      conflicting recipient-split values under the same tags. *)

  val staggered_crash : interval:int -> t
  (** Crash failures one per [interval] rounds: the classic worst case
      for early stopping (kings die one phase at a time). *)

  val king_killer : t
  (** Follow the protocol but never send king broadcasts. *)

  val vote_withholder : t
  (** Follow the protocol but withhold committee votes (Algorithm 7's
      election round). *)

  val chain_dropper : t
  (** Certified committee members that never relay chain extensions:
      exercises the redundancy of the Dolev-Strong relay argument. *)

  val partition : targets:int list -> t
  (** One-way partition: say nothing to the target set, behave normally
      towards everyone else. *)

  val flip_flop : t
  (** Intermittent faults: honest on even rounds, silent on odd ones. *)

  val committee_infiltrator : pki:Bap_crypto.Pki.t -> v0:V.t -> v1:V.t -> t
  (** A certified faulty committee member equivocates its broadcast
      chain roots between [v0] and [v1], re-signing each for real. *)
end
