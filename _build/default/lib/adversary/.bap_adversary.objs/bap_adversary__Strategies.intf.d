lib/adversary/strategies.mli: Bap_core Bap_crypto Bap_sim
