lib/adversary/strategies.ml: Array Bap_core Bap_crypto Bap_prediction Bap_sim Hashtbl List Option Printf
