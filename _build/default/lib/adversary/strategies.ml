(* Protocol-aware Byzantine strategies against the stack's wire format.

   Each strategy is a [Bap_sim.Adversary.t]; they compose with the
   generic ones (silent, crash, passive) from the simulator. All are
   rushing: they see the honest messages of the current round before
   choosing their own. *)

module Adversary = Bap_sim.Adversary
module Advice = Bap_prediction.Advice
module Pki = Bap_crypto.Pki
module Value = Bap_core.Value
module Wire = Bap_core.Wire

module Make (V : Value.S) (W : Wire.S with type value = V.t) = struct
  type t = W.t Adversary.t

  (* Replace the value of every value-carrying puppet message with a
     recipient-dependent value: the classic equivocation that splits
     threshold-counting protocols. *)
  let equivocate ~v0 ~v1 : t =
    let pick dst = if dst mod 2 = 0 then v0 else v1 in
    Adversary.rewrite "equivocate" (fun _view ~src:_ ~dst -> function
      | W.Gc_init (tg, _) -> [ W.Gc_init (tg, pick dst) ]
      | W.Gc_echo (tg, _) -> [ W.Gc_echo (tg, pick dst) ]
      | W.Conc (tg, _, l) -> [ W.Conc (tg, pick dst, l) ]
      | W.King (tg, _) -> [ W.King (tg, pick dst) ]
      | m -> [ m ])

  (* Always vote/echo a fixed value, trying to drag agreement to it
     (tests strong unanimity under pressure). *)
  let value_push ~v : t =
    Adversary.rewrite "value-push" (fun _view ~src:_ ~dst:_ -> function
      | W.Gc_init (tg, _) -> [ W.Gc_init (tg, v) ]
      | W.Gc_echo (tg, _) -> [ W.Gc_echo (tg, v) ]
      | W.Conc (tg, _, l) -> [ W.Conc (tg, v, l) ]
      | W.King (tg, _) -> [ W.King (tg, v) ]
      | m -> [ m ])

  (* Lie in the classification round: claim every faulty process is
     honest and every honest process is faulty; behave normally
     otherwise. This maximises the damage of the voting phase given the
     faulty processes' free votes. *)
  let advice_liar : t =
    {
      Adversary.name = "advice-liar";
      make =
        (fun ~n ~faulty ->
          let is_faulty = Array.make n false in
          Array.iter (fun j -> is_faulty.(j) <- true) faulty;
          let lie = Advice.init n (fun j -> is_faulty.(j)) in
          let filter _view ~src:_ outbox dst =
            List.map
              (function W.Advice _ -> W.Advice lie | m -> m)
              (outbox dst)
          in
          Adversary.handlers ~filter ());
    }

  (* Worst case for the classification machinery: lie maximally in the
     advice round, then deny all further participation. *)
  let advice_liar_then_silent : t =
    {
      Adversary.name = "advice-liar-then-silent";
      make =
        (fun ~n ~faulty ->
          let is_faulty = Array.make n false in
          Array.iter (fun j -> is_faulty.(j) <- true) faulty;
          let lie = Advice.init n (fun j -> is_faulty.(j)) in
          let filter view ~src:_ outbox dst =
            if view.Adversary.round = 1 then
              List.map (function W.Advice _ -> W.Advice lie | m -> m) (outbox dst)
            else []
          in
          Adversary.handlers ~filter ());
    }

  (* The strongest generic attack on the wrapper: lie maximally in the
     advice round, then equivocate recipient-dependently in every value
     message. Combined with a fault set covering the first king slots,
     this forces the early-stopping component through f phases and keeps
     the conditional BA split while k is below the misclassification
     level. *)
  let prediction_attacker ~v0 ~v1 : t =
    {
      Adversary.name = "prediction-attacker";
      make =
        (fun ~n ~faulty ->
          let is_faulty = Array.make n false in
          Array.iter (fun j -> is_faulty.(j) <- true) faulty;
          let lie = Advice.init n (fun j -> is_faulty.(j)) in
          let pick dst = if dst mod 2 = 0 then v0 else v1 in
          let filter view ~src:_ outbox dst =
            if view.Adversary.round = 1 then
              List.map (function W.Advice _ -> W.Advice lie | m -> m) (outbox dst)
            else
              List.concat_map
                (function
                  | W.Gc_init (tg, _) -> [ W.Gc_init (tg, pick dst) ]
                  | W.Gc_echo (tg, _) -> [ W.Gc_echo (tg, pick dst) ]
                  | W.Conc (tg, _, l) ->
                    (* Reveal a minimal value to half the processes only,
                       so the leader-graph minima diverge. *)
                    if dst mod 2 = 0 then [ W.Conc (tg, v0, l) ] else []
                  | W.King (tg, _) -> [ W.King (tg, pick dst) ]
                  | m -> [ m ])
                (outbox dst)
          in
          Adversary.handlers ~filter ());
    }

  (* Authenticated-stack variant of {!prediction_attacker}: additionally
     equivocates inside the committee broadcasts (re-signing chain roots
     per recipient) and in the final announcements. *)
  let prediction_attacker_auth ~pki ~v0 ~v1 : t =
    {
      Adversary.name = "prediction-attacker-auth";
      make =
        (fun ~n ~faulty ->
          let is_faulty = Array.make n false in
          Array.iter (fun j -> is_faulty.(j) <- true) faulty;
          let keys = Hashtbl.create 8 in
          Array.iter (fun j -> Hashtbl.replace keys j (Pki.key pki j)) faulty;
          let lie = Advice.init n (fun j -> is_faulty.(j)) in
          let pick dst = if dst mod 2 = 0 then v0 else v1 in
          let filter view ~src outbox dst =
            if view.Adversary.round = 1 then
              List.map (function W.Advice _ -> W.Advice lie | m -> m) (outbox dst)
            else
              List.concat_map
                (function
                  | W.King _ -> []
                  | W.Gcast_init (tg, sv) when sv.W.sv_dealer = src ->
                    (* Deal a recipient-dependent value so no dealer
                       quorum can complete through this process. *)
                    let key = Hashtbl.find keys src in
                    let v = pick dst in
                    let sv' =
                      {
                        W.sv_dealer = src;
                        sv_value = v;
                        sv_sig = Pki.sign key (W.dealer_payload ~dealer:src v);
                      }
                    in
                    [ W.Gcast_init (tg, sv') ]
                  | W.Bb_chain (tg, s, W.Chain_root { value = _; cert; link_sig = _ })
                    when s = src ->
                    let key = Hashtbl.find keys src in
                    let v = pick dst in
                    let link_sig = Pki.sign key (W.chain_root_payload v cert) in
                    [ W.Bb_chain (tg, s, W.Chain_root { value = v; cert; link_sig }) ]
                  | W.Final_value (tg, _, cert) -> [ W.Final_value (tg, pick dst, cert) ]
                  | m -> [ m ])
                (outbox dst)
          in
          Adversary.handlers ~filter ());
    }

  (* The adaptive worst-case adversary for the unauthenticated stack.
     Being rushing, it counts the honest votes of the current round and
     chooses its own so that no graded-consensus threshold is ever
     crossed while the honest processes are still split:

     - advice round: lie maximally;
     - plain graded-consensus init rounds (all honest broadcast): vote
       for the minority value, but only with as many faulty processes as
       keeps every count below n - t;
     - graded-consensus echo rounds and king rounds: silence;
     - core-set rounds (few honest senders): silence, except that in
       conciliation rounds the faulty leaders reveal a junk value far
       below the honest domain to half the processes, which drags the
       leader-graph minima apart. *)
  let adaptive_splitter ~n_minus_t ~junk : t =
    (* [junk round] must be injective in [round] and below the honest
       value domain (w.r.t. V.compare). *)
    {
      Adversary.name = "adaptive-splitter";
      make =
        (fun ~n ~faulty ->
          let is_faulty = Array.make n false in
          Array.iter (fun j -> is_faulty.(j) <- true) faulty;
          let lie = Advice.init n (fun j -> is_faulty.(j)) in
          let rank = Hashtbl.create 8 in
          Array.iteri (fun idx j -> Hashtbl.replace rank j idx) faulty;
          let filter view ~src outbox dst =
            if view.Adversary.round = 1 then
              List.map (function W.Advice _ -> W.Advice lie | m -> m) (outbox dst)
            else begin
              (* Tally the honest Gc_init votes of this round. *)
              let votes = ref [] in
              let senders = ref 0 in
              for sender = 0 to n - 1 do
                if not is_faulty.(sender) then
                  List.iter
                    (function
                      | W.Gc_init (_, v) ->
                        incr senders;
                        votes :=
                          (match List.assoc_opt v !votes with
                          | Some c -> (v, c + 1) :: List.remove_assoc v !votes
                          | None -> (v, 1) :: !votes)
                      | _ -> ())
                    (view.Adversary.honest_out ~sender ~recipient:sender)
              done;
              let plain_gc = !senders >= n_minus_t in
              let minority =
                match List.sort (fun (_, a) (_, b) -> compare a b) !votes with
                | (v, c) :: _ -> Some (v, c)
                | [] -> None
              in
              List.concat_map
                (function
                  | W.Gc_init (tg, _) when plain_gc -> (
                    match minority with
                    | Some (v, c) ->
                      let allowed = max 0 (n_minus_t - 1 - c) in
                      let r = Option.value (Hashtbl.find_opt rank src) ~default:0 in
                      if r < allowed then [ W.Gc_init (tg, v) ] else []
                    | None -> [])
                  | W.Gc_init _ -> []
                  | W.Gc_echo _ -> []
                  | W.King _ -> []
                  | W.Conc (tg, _, _) ->
                    (* Reveal a fresh below-domain value to half the
                       processes, declaring only ourselves as leader set:
                       the receiving half adopts it through the
                       leader-graph minimum, the other half never sees
                       it. A fresh value per round prevents honest
                       carriers from re-unifying the halves later. *)
                    if dst mod 2 = 0 then
                      [ W.Conc (tg, junk view.Adversary.round, [ src ]) ]
                    else []
                  | m -> [ m ])
                (outbox dst)
            end
          in
          Adversary.handlers ~filter ());
    }

  (* Follow the protocol except in king rounds: a faulty king whose
     broadcast simply vanishes, the minimal attack on the rotating-king
     early stopping. *)
  let king_killer : t =
    Adversary.rewrite "king-killer" (fun _view ~src:_ ~dst:_ -> function
      | W.King _ -> []
      | m -> [ m ])

  (* Withhold committee votes (Algorithm 7's election round): honest
     processes that depend on faulty votes to reach the t+1 quorum are
     denied their certificates. *)
  let vote_withholder : t =
    Adversary.rewrite "vote-withholder" (fun _view ~src:_ ~dst:_ -> function
      | W.Committee_vote _ -> []
      | m -> [ m ])

  (* Certified committee members that refuse to relay message chains:
     tests the redundancy of the Dolev-Strong relay argument (honest
     members must suffice). *)
  let chain_dropper : t =
    Adversary.rewrite "chain-dropper" (fun _view ~src:_ ~dst:_ -> function
      | W.Bb_chain (_, _, W.Chain_link _) -> []
      | W.Ds_chain (_, _, W.Ds_link _) -> []
      | m -> [ m ])

  (* One-way partition: the faulty processes stop talking to a target
     set while behaving normally towards everyone else. *)
  let partition ~targets : t =
    Adversary.rewrite "partition" (fun _view ~src:_ ~dst -> function
      | m when List.mem dst targets -> ignore m; []
      | m -> [ m ])

  (* Intermittent faults: follow the protocol on even rounds, stay
     silent on odd ones. *)
  let flip_flop : t =
    {
      Adversary.name = "flip-flop";
      make =
        (fun ~n:_ ~faulty:_ ->
          let filter view ~src:_ outbox dst =
            if view.Adversary.round mod 2 = 0 then outbox dst else []
          in
          Adversary.handlers ~filter ());
    }

  (* Scan the tags the honest processes are using this round and inject
     conflicting values under the same tags, recipient-split. A generic
     attack on every quorum count in the unauthenticated stack. *)
  let echo_chaos ~v0 ~v1 : t =
    {
      Adversary.name = "echo-chaos";
      make =
        (fun ~n ~faulty ->
          let inject view =
            let pick dst = if dst mod 2 = 0 then v0 else v1 in
            (* Collect the distinct (constructor, tag) shapes honest
               processes use this round. *)
            let shapes = ref [] in
            let note shape = if not (List.mem shape !shapes) then shapes := shape :: !shapes in
            for sender = 0 to n - 1 do
              (* Honest value messages are broadcasts, so sampling two
                 recipients per sender sees every shape in use. *)
              List.iter
                (fun recipient ->
                  List.iter
                    (fun m ->
                      match m with
                      | W.Gc_init (tg, _) -> note (`Init tg)
                      | W.Gc_echo (tg, _) -> note (`Echo tg)
                      | W.Conc (tg, _, l) -> note (`Conc (tg, l))
                      | W.King (tg, _) -> note (`King tg)
                      | _ -> ())
                    (view.Adversary.honest_out ~sender ~recipient))
                [ 0; min 1 (n - 1) ]
            done;
            let sends = ref [] in
            Array.iter
              (fun src ->
                for dst = 0 to n - 1 do
                  List.iter
                    (fun shape ->
                      let payload =
                        match shape with
                        | `Init tg -> W.Gc_init (tg, pick dst)
                        | `Echo tg -> W.Gc_echo (tg, pick dst)
                        | `Conc (tg, l) -> W.Conc (tg, pick dst, l)
                        | `King tg -> W.King (tg, pick dst)
                      in
                      sends := { Adversary.src; dst; payload } :: !sends)
                    !shapes
                done)
              faulty;
            !sends
          in
          Adversary.handlers ~filter:(fun _ ~src:_ _ _ -> []) ~inject ());
    }

  (* Crash failures staggered one per interval: the classic worst case
     for early-stopping protocols (each phase loses one more king). *)
  let staggered_crash ~interval : t =
    {
      Adversary.name = Printf.sprintf "staggered-crash-%d" interval;
      make =
        (fun ~n:_ ~faulty ->
          let index = Hashtbl.create 8 in
          Array.iteri (fun idx j -> Hashtbl.replace index j idx) faulty;
          let filter view ~src outbox dst =
            let idx = Option.value (Hashtbl.find_opt index src) ~default:0 in
            let crash_round = (idx + 1) * interval in
            if view.Adversary.round <= crash_round then outbox dst else []
          in
          Adversary.handlers ~filter ());
    }

  (* Authenticated attack: faulty committee members equivocate inside
     the Byzantine broadcasts - each certified faulty sender starts two
     different chains. Requires the faulty processes' keys. *)
  let committee_infiltrator ~pki ~v0 ~v1 : t =
    {
      Adversary.name = "committee-infiltrator";
      make =
        (fun ~n ~faulty ->
          ignore n;
          let keys = Hashtbl.create 8 in
          Array.iter (fun j -> Hashtbl.replace keys j (Pki.key pki j)) faulty;
          let filter _view ~src outbox dst =
            (* The puppet behaves normally except that its own root
               chains carry a recipient-dependent value, signed for
               real with the faulty member's key. *)
            List.map
              (fun m ->
                match m with
                | W.Bb_chain (tg, s, W.Chain_root { value = _; cert; link_sig = _ })
                  when s = src ->
                  let key = Hashtbl.find keys src in
                  let alt = if dst mod 2 = 0 then v0 else v1 in
                  let link_sig = Pki.sign key (W.chain_root_payload alt cert) in
                  W.Bb_chain (tg, s, W.Chain_root { value = alt; cert; link_sig })
                | m -> m)
              (outbox dst)
          in
          Adversary.handlers ~filter ());
    }
end
