(** Aligned ASCII tables for experiment output. *)

val render : headers:string list -> string list list -> string
(** Pads every column to its widest cell; rows shorter than the header
    are padded with empty cells. *)

val print : headers:string list -> string list list -> unit
(** [render] to stdout, followed by a newline. *)
