lib/stats/table.ml: Array List String
