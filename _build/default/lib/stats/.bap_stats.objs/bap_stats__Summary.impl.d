lib/stats/summary.ml: Fmt List Printf
