lib/stats/series.mli:
