lib/stats/summary.mli: Fmt
