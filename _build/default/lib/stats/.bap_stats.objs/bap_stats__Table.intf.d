lib/stats/table.mli:
