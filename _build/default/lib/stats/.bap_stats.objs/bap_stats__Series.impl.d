lib/stats/series.ml: List
