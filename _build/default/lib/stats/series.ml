let linear_fit points =
  match points with
  | [] | [ _ ] -> invalid_arg "Series.linear_fit: need at least two points"
  | _ ->
    let n = float_of_int (List.length points) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
    let denom = (n *. sxx) -. (sx *. sx) in
    if abs_float denom < 1e-12 then invalid_arg "Series.linear_fit: degenerate x";
    let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
    let intercept = (sy -. (slope *. sx)) /. n in
    (slope, intercept)

let loglog_slope points =
  let logged =
    List.map
      (fun (x, y) ->
        if x <= 0.0 || y <= 0.0 then invalid_arg "Series.loglog_slope: non-positive";
        (log x, log y))
      points
  in
  fst (linear_fit logged)
