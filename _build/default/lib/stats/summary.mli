(** Small numeric aggregates over repeated trials. *)

type t = { count : int; mean : float; min : int; max : int; total : int }

val of_ints : int list -> t
(** Raises [Invalid_argument] on the empty list. *)

val pp : t Fmt.t
val mean_string : int list -> string
(** Mean with one decimal, e.g. ["12.3"]. *)
