(** Least-squares fitting for scaling checks.

    The experiments assert complexity *shapes* (messages ~ n^2, bits ~
    n^4, ...). {!loglog_slope} turns such a claim into a number: fit
    log y = a + s log x and return the exponent [s], so a test can
    assert it lies in the expected band. *)

val linear_fit : (float * float) list -> float * float
(** [(slope, intercept)] of the least-squares line through the points.
    Requires at least two points with distinct x. *)

val loglog_slope : (float * float) list -> float
(** Slope of the log-log fit: the empirical scaling exponent. All
    coordinates must be positive. *)
