(* E6 (Theorem 14): even with 100% correct predictions the protocol
   sends Omega(t^2) messages. We sweep t, run the wrapper with perfect
   advice and f = 0 (the adversary cannot even act), and audit the
   execution against the Dolev-Reischuk dichotomy: pay ceil(t/2) *
   floor(t/2) messages or leave some process isolable. The second table
   runs the proof's indistinguishability construction against a cheap
   prediction-trusting protocol and shows the resulting agreement
   violation. *)

open Common
module Message_lb = Bap_lowerbound.Message_lb

let run ?(quick = false) () =
  let sizes = if quick then [ 13; 22; 31 ] else [ 13; 22; 31; 46; 61 ] in
  header "E6  message lower bound audit  (perfect predictions, f=0)";
  let rows =
    List.map
      (fun n ->
        let t = (n - 1) / 3 in
        let rng = Rng.create (3000 + n) in
        let w = make_workload ~rng ~n ~t ~f:0 ~target_misclassified:0 () in
        let _, _, msgs, correct, o = run_unauth ~adversary:Adversary.passive w in
        let audit =
          Message_lb.audit ~honest_sent:msgs ~honest_received:o.S.R.honest_received ~t
        in
        [
          fi n;
          fi t;
          fi msgs;
          fi audit.Message_lb.threshold;
          fi (snd audit.Message_lb.min_received);
          fi audit.Message_lb.isolation_threshold;
          (if audit.Message_lb.paid then "yes" else "NO");
          (if correct then "yes" else "NO");
        ])
      sizes
  in
  Table.print
    ~headers:
      [ "n"; "t"; "msgs"; "t^2/4"; "min-received"; "isolation-thr"; "paid"; "correct" ]
    rows;
  (* The proof construction against an under-communicating protocol. *)
  let demo = Message_lb.Demo.run ~n:(List.hd sizes) in
  Printf.printf
    "\nDolev-Reischuk demo vs cheap prediction-trusting broadcast (n=%d):\n"
    (List.hd sizes);
  Printf.printf "  E_good: all honest decide %d\n"
    (snd (List.hd demo.Message_lb.Demo.good_decisions));
  Printf.printf "  E_bad:  starved process %d decides %d, everyone else decides 1\n"
    demo.Message_lb.Demo.starved
    (List.assoc demo.Message_lb.Demo.starved demo.Message_lb.Demo.bad_decisions);
  Printf.printf "  agreement broken: %b  (hence Omega(n + t^2) messages are necessary)\n"
    demo.Message_lb.Demo.agreement_broken
