(* Run the experiment suite (E1-E8 from DESIGN.md). [quick] shrinks the
   sweeps to bench-friendly sizes. *)

let all = [
  ("E1", "unauth rounds vs B (Thm 11)", E1_rounds_unauth.run);
  ("E2", "auth rounds vs B (Thm 12)", E2_rounds_auth.run);
  ("E3", "unauth messages vs n (Thm 11)", E3_messages_unauth.run);
  ("E4", "auth messages vs n (Thm 12)", E4_messages_auth.run);
  ("E5", "round lower bound (Thm 13)", E5_round_lb.run);
  ("E6", "message lower bound (Thm 14)", E6_message_lb.run);
  ("E7", "classification quality (Lemma 1)", E7_classification.run);
  ("E8", "predictions vs baselines", E8_crossover.run);
  ("E9", "classification-vote ablation", E9_voting_ablation.run);
  ("E10", "communication complexity in bits", E10_communication.run);
  ("E11", "learned advice across slots", E11_learned_advice.run);
  ("E12", "value predictions (extension)", E12_value_predictions.run);
  ("E13", "component ablation of Algorithm 1", E13_component_ablation.run);
]

let run_all ?quick () = List.iter (fun (_, _, run) -> run ?quick ()) all

let run_one ?quick id =
  match List.find_opt (fun (eid, _, _) -> String.lowercase_ascii eid = String.lowercase_ascii id) all with
  | Some (_, _, run) ->
    run ?quick ();
    true
  | None -> false
