lib/experiments/e11_learned_advice.ml: Array Bap_adversary Bap_core Bap_monitor Common Fun List Printf Rng Table
