lib/experiments/e8_crossover.ml: Adv B Bap_sim Common List Printf Rng Table
