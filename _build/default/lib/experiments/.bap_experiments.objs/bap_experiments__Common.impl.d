lib/experiments/common.ml: Array Bap_adversary Bap_baselines Bap_core Bap_prediction Bap_sim Bap_stats Fun Option Printf
