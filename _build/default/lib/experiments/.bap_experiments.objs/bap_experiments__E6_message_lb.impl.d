lib/experiments/e6_message_lb.ml: Adversary Bap_lowerbound Common List Printf Rng S Table
