lib/experiments/e7_classification.ml: Adv Array Common Gen Hashtbl List Printf Quality Rng Table
