lib/experiments/e3_messages_unauth.ml: Adv Common List Option Rng S Table
