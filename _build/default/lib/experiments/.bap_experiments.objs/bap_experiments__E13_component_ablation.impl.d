lib/experiments/e13_component_ablation.ml: Adv Common List Printf Rng S Table
