lib/experiments/e12_value_predictions.ml: Adv Array Common List Printf Rng S Table
