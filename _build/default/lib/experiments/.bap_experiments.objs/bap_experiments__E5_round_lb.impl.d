lib/experiments/e5_round_lb.ml: Adv Bap_lowerbound Common List Printf Rng Table
