lib/experiments/e1_rounds_unauth.ml: Adv Common List Printf Rng Summary Table
