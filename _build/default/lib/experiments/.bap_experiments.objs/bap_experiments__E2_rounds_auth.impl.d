lib/experiments/e2_rounds_auth.ml: Adv Common List Printf Rng Summary Table
