lib/experiments/e9_voting_ablation.ml: Adv Array Bap_core Common Fun Gen List Printf Quality Rng S Table
