lib/experiments/e4_messages_auth.ml: Adv Common List Printf Rng Table
