lib/experiments/e10_communication.ml: Adv Common List Rng S Table
