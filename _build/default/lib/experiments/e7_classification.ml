(* E7 (Lemma 1 and Lemma 5): the classification protocol misclassifies
   at most O(B/n) processes, and every window of leader positions keeps
   a large common core across the honest orderings. Sweeps the error
   budget under the three placements. *)

open Common

let run ?(quick = false) () =
  let n = if quick then 31 else 61 in
  let t = (n - 1) / 3 in
  let f = t in
  header
    (Printf.sprintf "E7  classification quality vs B  (n=%d, t=f=%d, lying faulty)" n t);
  let rows = ref [] in
  List.iter
    (fun (placement, name) ->
      List.iter
        (fun budget ->
          let rng = Rng.create (budget + Hashtbl.hash name) in
          let faulty = Array.of_list (Rng.sample_without_replacement rng f n) in
          let advice = Gen.generate ~rng ~n ~faulty ~budget placement in
          let b = (Quality.measure ~n ~faulty advice).Quality.b in
          let w = { n; t; faulty; inputs = Array.make n 0; advice; b } in
          let k_a = measure_k_a ~adversary:Adv.advice_liar_then_silent w in
          let bound = b / max 1 (((n + 1) / 2) - f) in
          rows :=
            [
              name;
              fi b;
              ff (float_of_int b /. float_of_int n);
              fi k_a;
              fi bound;
              (if k_a <= bound then "yes" else "NO");
            ]
            :: !rows)
        [ 0; n / 2; n; 2 * n; 4 * n ])
    [ (Gen.Uniform, "uniform"); (Gen.Focused, "focused"); (Gen.Scattered, "scattered") ];
  Table.print
    ~headers:[ "placement"; "B"; "B/n"; "k_A"; "B/(n/2 - f)"; "k_A <= bound" ]
    (List.rev !rows)
