lib/lowerbound/round_lb.ml:
