lib/lowerbound/round_lb.mli:
