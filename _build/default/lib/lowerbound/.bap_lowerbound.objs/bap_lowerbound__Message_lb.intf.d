lib/lowerbound/message_lb.mli:
