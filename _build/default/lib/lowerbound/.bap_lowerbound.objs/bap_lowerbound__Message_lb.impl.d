lib/lowerbound/message_lb.ml: Array Bap_sim List Seq
