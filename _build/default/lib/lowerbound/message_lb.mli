(** Theorem 14: the Omega(n + t^2) message lower bound, which holds even
    in executions whose predictions are 100% correct.

    A lower bound cannot be "run", but its proof mechanics can be:

    - {!bound} and {!audit} check that a protocol execution with perfect
      predictions pays the price the theorem demands: either the total
      honest message count reaches [ceil(t/2) * floor(t/2)], or some
      process receives fewer than [ceil(t/2)] honest messages - in which
      case the Dolev-Reischuk adversary could have isolated it.

    - {!Demo} executes the proof's indistinguishability construction
      against a deliberately under-communicating protocol ("trust the
      prediction, skip the quadratic communication") and exhibits the
      resulting agreement violation: the honest process [q] that the
      adversary starves decides differently from everyone else. *)

val bound : t:int -> int
(** [ceil(t/2) * floor(t/2)], i.e. Theta(t^2). *)

type audit_result = {
  total_sent : int;
  threshold : int;  (** The t^2/4 bound. *)
  min_received : int * int;  (** (process, count): least-contacted process. *)
  isolation_threshold : int;  (** ceil(t/2): below this a process is isolable. *)
  isolable : int list;
      (** Processes receiving fewer than [isolation_threshold] honest
          messages - candidates for the adversary's starvation attack. *)
  paid : bool;
      (** True iff the execution pays the Dolev-Reischuk price: total
          above the bound or nobody isolable. *)
}

val audit : honest_sent:int -> honest_received:int array -> t:int -> audit_result

module Demo : sig
  (** The construction of Theorem 14 run against a cheap
      prediction-trusting broadcast protocol (the sender broadcasts once
      and everyone decides what they heard, falling back to the
      prediction's default when silent - O(n) messages). *)

  type outcome = {
    good_decisions : (int * int) list;  (** E_good: honest id, decision. *)
    bad_decisions : (int * int) list;  (** E_bad after the isolation attack. *)
    starved : int;  (** The process q the adversary isolates in E_bad. *)
    agreement_broken : bool;
        (** True (the theorem's point): q decides the prediction default
            while everyone else decides the sender's value. *)
  }

  val run : n:int -> outcome
  (** Requires n >= 3. *)
end
