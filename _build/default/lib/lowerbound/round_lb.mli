(** Theorem 13: the round lower bound for Byzantine agreement with
    classification predictions.

    For every deterministic algorithm and every [f <= t < n-1] there is
    an execution with [f] faults taking at least
    [min (f+2) (t+1) (B/(n-f)+2) (B/(n-t)+1)] rounds. The proof reduces
    to the classic early-stopping bound by simulating an algorithm
    without predictions; this module provides the bound itself plus the
    parameters of the simulated system, so experiments can compare the
    measured decision round of any implementation against the bound. *)

val bound : n:int -> t:int -> f:int -> b:int -> int
(** The lower bound [min {f+2, t+1, floor(b/(n-f))+2, floor(b/(n-t))+1}].
    Requires [0 <= f <= t < n-1]. *)

type simulated_system = {
  n' : int;  (** Processes in the prediction-free simulated system. *)
  t' : int;
  f' : int;
  crashed_upfront : int;
      (** Processes the simulation treats as crashed from round 0 -
          [x = f - floor(B/(n-f))] in the proof of Theorem 13. *)
}

val simulation : n:int -> t:int -> f:int -> b:int -> simulated_system
(** The parameters of the reduction used in the proof when
    [b < f * (n - f)]; with larger [b] the simulated system equals the
    original one ([crashed_upfront = 0]). *)
