let bound ~n ~t ~f ~b =
  if not (0 <= f && f <= t && t < n - 1) then invalid_arg "Round_lb.bound";
  let by_faults = min (f + 2) (t + 1) in
  let by_advice = min ((b / (n - f)) + 2) ((b / (n - t)) + 1) in
  min by_faults by_advice

type simulated_system = { n' : int; t' : int; f' : int; crashed_upfront : int }

let simulation ~n ~t ~f ~b =
  if not (0 <= f && f <= t && t < n - 1) then invalid_arg "Round_lb.simulation";
  if b >= f * (n - f) then { n' = n; t' = t; f' = f; crashed_upfront = 0 }
  else begin
    let x = f - (b / (n - f)) in
    { n' = n - x; t' = t - x; f' = f - x; crashed_upfront = x }
  end
