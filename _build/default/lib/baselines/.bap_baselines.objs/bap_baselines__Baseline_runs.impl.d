lib/baselines/baseline_runs.ml: Array Bap_core Bap_crypto Bap_sim Dolev_strong Fun List Phase_king
