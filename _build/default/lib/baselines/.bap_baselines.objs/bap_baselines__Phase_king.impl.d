lib/baselines/phase_king.ml: Array Bap_core Bap_sim List Option
