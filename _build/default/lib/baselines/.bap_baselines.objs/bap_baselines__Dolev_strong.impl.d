lib/baselines/dolev_strong.ml: Array Bap_core Bap_crypto Bap_sim List
