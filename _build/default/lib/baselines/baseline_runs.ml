(* One-call harnesses for the no-prediction baselines, used by the
   examples and the experiment sweeps as comparison points:

   - early-stopping phase king  (O(f) rounds; the paper's status quo),
   - plain phase king           (always Theta(t) rounds),
   - Dolev-Strong agreement     (authenticated, always t+1 rounds).

   Each harness instantiates its own protocol stack and returns a plain
   summary record, so callers never mix runtime instances. *)

module Adversary = Bap_sim.Adversary
module Pki = Bap_crypto.Pki
module Value = Bap_core.Value

module Make (V : Value.S) = struct
  module S = Bap_core.Stack.Make (V)
  module Ds = Dolev_strong.Make (V) (S.W) (S.R)
  module Pk = Phase_king.Make (V) (S.W) (S.R)

  type summary = {
    rounds : int;  (** Rounds until the last honest process returned. *)
    decided_round : int;
        (** Rounds until the last honest decision was fixed (equals
            [rounds] for protocols without early stopping). *)
    messages : int;  (** Honest messages sent. *)
    agreement : bool;
    validity : bool;  (** Strong unanimity when honest inputs agree. *)
    decisions : (int * V.t) list;
  }

  let summarize ~inputs ~faulty (outcome : _ S.R.outcome) ~decision_of ~decided_round_of =
    let decisions =
      List.map (fun (i, r) -> (i, decision_of r)) (S.R.honest_decisions outcome)
    in
    let agreement =
      match decisions with
      | [] -> true
      | (_, v) :: rest -> List.for_all (fun (_, w) -> V.equal v w) rest
    in
    let is_faulty = Array.make (Array.length inputs) false in
    Array.iter (fun j -> is_faulty.(j) <- true) faulty;
    let honest_inputs =
      Array.to_list inputs
      |> List.filteri (fun i _ -> not is_faulty.(i))
      |> List.sort_uniq V.compare
    in
    let validity =
      match honest_inputs with
      | [ v ] -> List.for_all (fun (_, w) -> V.equal v w) decisions
      | _ -> true
    in
    let decided_round =
      List.fold_left
        (fun acc (_, r) -> max acc (decided_round_of r))
        0
        (S.R.honest_decisions outcome)
    in
    {
      rounds = outcome.S.R.rounds;
      decided_round;
      messages = outcome.S.R.honest_sent;
      agreement;
      validity;
      decisions;
    }

  let run_early_stopping ?(adversary = Adversary.passive) ?max_rounds ~t ~faulty ~inputs ()
      =
    let n = Array.length inputs in
    let outcome =
      S.R.run ?max_rounds ~n ~faulty ~adversary (fun ctx ->
          let gc c ~tag v = S.Graded_unauth.run c ~t ~tag v in
          S.Early_stopping.run ctx ~gc ~gc_rounds:S.Graded_unauth.rounds ~phases:(t + 1)
            ~base_tag:0
            inputs.(S.R.id ctx))
    in
    summarize ~inputs ~faulty outcome
      ~decision_of:(fun r -> r.S.Early_stopping.value)
      ~decided_round_of:(fun r ->
        if r.S.Early_stopping.decided_round = 0 then outcome.S.R.rounds
        else r.S.Early_stopping.decided_round)

  let run_phase_king ?(adversary = Adversary.passive) ?max_rounds ~t ~faulty ~inputs () =
    let n = Array.length inputs in
    let outcome =
      S.R.run ?max_rounds ~n ~faulty ~adversary (fun ctx ->
          let gc c ~tag v = S.Graded_unauth.run c ~t ~tag v in
          Pk.run ctx ~gc ~t ~base_tag:0 inputs.(S.R.id ctx))
    in
    summarize ~inputs ~faulty outcome ~decision_of:Fun.id
      ~decided_round_of:(fun _ -> outcome.S.R.rounds)

  (* Interactive consistency: every honest process ends with the same
     vector, whose honest slots hold the true inputs. *)
  let run_interactive_consistency ?adversary ?max_rounds ~t ~faulty ~inputs () =
    let n = Array.length inputs in
    let pki = Pki.create ~n in
    let adversary =
      match adversary with Some make -> make pki | None -> Adversary.passive
    in
    let outcome =
      S.R.run ?max_rounds ~n ~faulty ~adversary (fun ctx ->
          let key = Pki.key pki (S.R.id ctx) in
          Ds.interactive_consistency ctx ~pki ~key ~t ~tag:0 inputs.(S.R.id ctx))
    in
    S.R.honest_decisions outcome

  let run_dolev_strong ?adversary ?max_rounds ~t ~faulty ~inputs () =
    let n = Array.length inputs in
    let pki = Pki.create ~n in
    let adversary =
      match adversary with Some make -> make pki | None -> Adversary.passive
    in
    let outcome =
      S.R.run ?max_rounds ~n ~faulty ~adversary (fun ctx ->
          let key = Pki.key pki (S.R.id ctx) in
          Ds.agree ctx ~pki ~key ~t ~tag:0 inputs.(S.R.id ctx))
    in
    summarize ~inputs ~faulty outcome ~decision_of:Fun.id
      ~decided_round_of:(fun _ -> outcome.S.R.rounds)
end
