(* Repeated agreement with a learning monitor: the full feedback loop
   the paper's introduction sketches. A sequence of agreement instances
   ("slots", e.g. blocks of a ledger) runs over the same cluster; the
   network-tap {!Observer} watches each execution and feeds its
   suspicions into the next slot's predictions. Detectable misbehaviour
   is therefore self-defeating: it speeds up every subsequent slot. *)

module Advice = Bap_prediction.Advice
module Quality = Bap_prediction.Quality
module Trace = Bap_sim.Trace

module Make (V : Bap_core.Value.S) = struct
  module S = Bap_core.Stack.Make (V)
  module Observer = Observer.Make (V) (S.W)

  type slot_result = {
    slot : int;
    b : int;  (** Incorrect advice bits going into this slot. *)
    decision : V.t option;  (** The agreed value (None if no honest process). *)
    decided_round : int;
    messages : int;
    agreement : bool;
    new_suspects : (int * string) list;  (** Evidence found in this slot. *)
    suspected : int list;  (** Cumulative suspicion after this slot. *)
  }

  let run_slots ?(trace_limit = 5_000_000) ?inputs_for_slot ?reputation ~slots ~t ~faulty
      ~inputs ~adversary () =
    let n = Array.length inputs in
    let suspected = ref [] in
    let results = ref [] in
    for slot = 1 to slots do
      let inputs =
        match inputs_for_slot with Some f -> f slot | None -> inputs
      in
      let current_suspects =
        match reputation with
        | Some rep -> Reputation.suspects rep
        | None -> !suspected
      in
      let advice =
        Observer.advice_of_verdict ~n
          { Observer.suspects = current_suspects; evidence = [] }
      in
      let b = (Quality.measure ~n ~faulty advice).Quality.b in
      let trace = Trace.create ~limit:trace_limit () in
      let outcome = S.run_unauth ~trace ~t ~faulty ~inputs ~advice ~adversary () in
      let verdict = Observer.observe ~n trace in
      let fresh =
        List.filter
          (fun (who, _) -> not (List.mem who current_suspects))
          verdict.evidence
      in
      suspected := List.sort_uniq compare (!suspected @ verdict.Observer.suspects);
      (match reputation with
      | Some rep -> Reputation.observe rep ~suspects:verdict.Observer.suspects
      | None -> ());
      results :=
        {
          slot;
          b;
          decision =
            (match S.R.honest_decisions outcome with
            | (_, r) :: _ -> Some r.S.Wrapper.value
            | [] -> None);
          decided_round = S.decision_round outcome;
          messages = outcome.S.R.honest_sent;
          agreement = S.agreement outcome;
          new_suspects = fresh;
          suspected =
            (match reputation with Some rep -> Reputation.suspects rep | None -> !suspected);
        }
        :: !results
    done;
    List.rev !results
end
